// bench_test.go provides one testing.B benchmark per table and figure of
// the paper's evaluation, plus ingest-throughput benchmarks for every
// sketch. The figure benchmarks run the corresponding experiment at a
// reduced scale and report its headline numbers via b.ReportMetric, so
//
//	go test -bench=Fig -benchmem
//
// regenerates the whole evaluation in miniature; use cmd/fcmbench for the
// full-size tables.
package fcm_test

import (
	"encoding/binary"
	"strconv"
	"sync"
	"testing"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/cmsketch"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/elastic"
	"github.com/fcmsketch/fcm/internal/exp"
	"github.com/fcmsketch/fcm/internal/trace"
	"github.com/fcmsketch/fcm/internal/univmon"
)

// benchOptions is the reduced scale used by the figure benchmarks.
func benchOptions() exp.Options {
	return exp.Options{Scale: 0.01, Seed: 1, EMIterations: 3}
}

// runExperiment executes one experiment per benchmark iteration and
// reports a metric extracted from its first table.
func runExperiment(b *testing.B, id string, metric func(tables []*exp.Table) (string, float64)) {
	b.Helper()
	e, err := exp.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var name string
	var value float64
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if metric != nil {
			name, value = metric(tables)
		}
	}
	if name != "" {
		b.ReportMetric(value, name)
	}
}

// cell parses a numeric table cell.
func cell(b *testing.B, t *exp.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell %d,%d of %s: %v", row, col, t.ID, err)
	}
	return v
}

func BenchmarkFig6DataPlaneQueries(b *testing.B) {
	runExperiment(b, "fig6", func(ts []*exp.Table) (string, float64) {
		// ARE of the 8-ary FCM (row k=8, column FCM).
		return "fcm8_ARE", cell(b, ts[0], 2, 4)
	})
}

func BenchmarkFig7ControlPlaneQueries(b *testing.B) {
	runExperiment(b, "fig7", func(ts []*exp.Table) (string, float64) {
		return "fcm8_WMRE", cell(b, ts[0], 2, 2)
	})
}

func BenchmarkFig8DegreeHistogram(b *testing.B) {
	runExperiment(b, "fig8", func(ts []*exp.Table) (string, float64) {
		return "deg1_counters", cell(b, ts[0], 0, 3)
	})
}

func BenchmarkFig9EM(b *testing.B) {
	runExperiment(b, "fig9", func(ts []*exp.Table) (string, float64) {
		return "fcm_m_sec_per_iter", cell(b, ts[0], 2, 1)
	})
}

func BenchmarkFig10ZipfFlowSize(b *testing.B) {
	runExperiment(b, "fig10", func(ts []*exp.Table) (string, float64) {
		// Normalized ARE of FCM8 at alpha=1.1 (row 2, first alpha column).
		return "fcm8_norm_ARE", cell(b, ts[0], 2, 1)
	})
}

func BenchmarkFig11ZipfFSD(b *testing.B) {
	runExperiment(b, "fig11", func(ts []*exp.Table) (string, float64) {
		return "fcm8_norm_WMRE", cell(b, ts[0], 2, 1)
	})
}

func BenchmarkTable3Trees(b *testing.B) {
	runExperiment(b, "table3", func(ts []*exp.Table) (string, float64) {
		// FCM with 2 trees: ARE column.
		return "fcm_2trees_ARE", cell(b, ts[0], 0, 2)
	})
}

func BenchmarkFig12MemorySweep(b *testing.B) {
	runExperiment(b, "fig12", func(ts []*exp.Table) (string, float64) {
		// ARE at the 1.5MB point (row 2), FCM column.
		return "fcm_ARE_1.5MB", cell(b, ts[0], 2, 1)
	})
}

func BenchmarkFig13SoftwareVsTofino(b *testing.B) {
	runExperiment(b, "fig13", func(ts []*exp.Table) (string, float64) {
		return "fcm_hw_ARE", cell(b, ts[0], 1, 2)
	})
}

func BenchmarkFig14HardwareComparison(b *testing.B) {
	runExperiment(b, "fig14", func(ts []*exp.Table) (string, float64) {
		// AAE table: CM(2)+TopK row 2 normalized against FCM row 0.
		return "cm2_over_fcm_AAE", cell(b, ts[1], 2, 1) / cell(b, ts[1], 0, 1)
	})
}

func BenchmarkTable4Resources(b *testing.B) {
	runExperiment(b, "table4", nil)
}

func BenchmarkTable5Comparison(b *testing.B) {
	runExperiment(b, "table5", nil)
}

func BenchmarkAppCTCAM(b *testing.B) {
	runExperiment(b, "appc", func(ts []*exp.Table) (string, float64) {
		return "tcam_max_extra_RE", cell(b, ts[0], 3, 1)
	})
}

func BenchmarkThm51Bound(b *testing.B) {
	runExperiment(b, "thm51", func(ts []*exp.Table) (string, float64) {
		return "violation_fraction", cell(b, ts[0], 6, 1)
	})
}

// ---------------------------------------------------------------------------
// Ingest throughput: packets/second for every structure on the same trace
// (the accuracy–complexity trade-off discussion of §8.3).
// ---------------------------------------------------------------------------

// benchTrace is shared across the throughput benchmarks.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	tr, err := trace.CAIDALike(200_000, 3)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchIngest(b *testing.B, u interface{ Update([]byte, uint64) }) {
	b.Helper()
	tr := benchTrace(b)
	keys := make([][]byte, tr.NumFlows())
	for i := range tr.Keys {
		keys[i] = tr.Keys[i].Bytes()
	}
	order := tr.Order
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Update(keys[order[i%len(order)]], 1)
	}
}

func BenchmarkIngestFCM(b *testing.B) {
	s, err := fcm.NewSketch(fcm.Config{MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, s)
}

// BenchmarkIngestFCMPerTree is the same workload with PerTreeHash set:
// the difference against BenchmarkIngestFCM is the hot-path saving of
// one-pass multi-index hashing.
func BenchmarkIngestFCMPerTree(b *testing.B) {
	s, err := fcm.NewSketch(fcm.Config{MemoryBytes: 1 << 20, PerTreeHash: true})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, s)
}

// BenchmarkUpdateBatchFCM measures the batched ingest path per packet:
// 256 keys per UpdateBatch call, allocation-free.
func BenchmarkUpdateBatchFCM(b *testing.B) {
	s, err := fcm.NewSketch(fcm.Config{MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	tr := benchTrace(b)
	const batch = 256
	keys := make([][]byte, batch)
	order := tr.Order
	pos := 0
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if left := b.N - done; left < n {
			n = left
		}
		for i := 0; i < n; i++ {
			keys[i] = tr.Keys[order[pos]].Bytes()
			if pos++; pos == len(order) {
				pos = 0
			}
		}
		s.UpdateBatch(keys[:n], 1)
		done += n
	}
}

// BenchmarkReplayTraceFCM is the end-to-end replay loop (trace → batched
// sketch ingest); ns/op is per packet and allocs/op must be 0.
func BenchmarkReplayTraceFCM(b *testing.B) {
	s, err := fcm.NewSketch(fcm.Config{MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	tr := benchTrace(b)
	r := trace.NewBatchReplayer(256)
	r.Replay(tr, s) // warm-up: replayer buffer at capacity
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += tr.NumPackets() {
		r.Replay(tr, s)
	}
}

// BenchmarkUninstrumentedUpdate / BenchmarkInstrumentedUpdate quantify the
// telemetry plane's hot-path contract: attaching core.Stats (the atomic
// counters behind fcm_sketch_updates_total and the promotion/saturation
// series) must cost <=5% ingest throughput. Occupancy and cardinality
// scans run at scrape time and are deliberately absent from this path.
func benchTelemetry(b *testing.B, instrumented bool) {
	b.Helper()
	s, err := fcm.NewSketch(fcm.Config{MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if instrumented {
		s.Core().SetStats(core.NewStats(s.Core().Depth()))
	}
	benchIngest(b, s)
}

func BenchmarkUninstrumentedUpdate(b *testing.B) { benchTelemetry(b, false) }
func BenchmarkInstrumentedUpdate(b *testing.B)   { benchTelemetry(b, true) }

func BenchmarkIngestFCMTopK(b *testing.B) {
	s, err := fcm.NewTopK(fcm.TopKConfig{Config: fcm.Config{MemoryBytes: 1 << 20}})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, s)
}

func BenchmarkIngestCM(b *testing.B) {
	s, err := cmsketch.New(cmsketch.Config{MemoryBytes: 1 << 20, Rows: 3})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, s)
}

func BenchmarkIngestElastic(b *testing.B) {
	s, err := elastic.New(elastic.Config{MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, s)
}

func BenchmarkIngestUnivMon(b *testing.B) {
	s, err := univmon.New(univmon.Config{MemoryBytes: 1 << 20, Levels: 16, HeapSize: 2000})
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, s)
}

// ---------------------------------------------------------------------------
// Sharded concurrent ingest: throughput of fcm.Sharded with one writer
// goroutine per shard, and collection racing ingest. Speedup over the
// 1-shard run depends on GOMAXPROCS; the exact-merge property holds
// regardless (see TestShardedBitIdenticalToSerial).
// ---------------------------------------------------------------------------

func benchShardedUpdate(b *testing.B, shards int) {
	b.Helper()
	sh, err := fcm.NewSharded(fcm.Config{MemoryBytes: 1 << 20}, shards)
	if err != nil {
		b.Fatal(err)
	}
	tr := benchTrace(b)
	keys := make([][]byte, tr.NumFlows())
	for i := range tr.Keys {
		keys[i] = tr.Keys[i].Bytes()
	}
	order := tr.Order
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns shard w and replays an equal slice of b.N.
			n := b.N / shards
			if w == 0 {
				n += b.N % shards
			}
			for i := 0; i < n; i++ {
				sh.UpdateShard(w, keys[order[(w+i*shards)%len(order)]], 1)
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkShardedUpdate1(b *testing.B) { benchShardedUpdate(b, 1) }
func BenchmarkShardedUpdate2(b *testing.B) { benchShardedUpdate(b, 2) }
func BenchmarkShardedUpdate4(b *testing.B) { benchShardedUpdate(b, 4) }
func BenchmarkShardedUpdate8(b *testing.B) { benchShardedUpdate(b, 8) }

// BenchmarkShardedCollectWhileIngesting measures snapshot cost with four
// writers continuously feeding the shards — the copy-on-read collection
// path that replaced the global-mutex server.
func BenchmarkShardedCollectWhileIngesting(b *testing.B) {
	const shards = 4
	sh, err := fcm.NewSharded(fcm.Config{MemoryBytes: 1 << 20}, shards)
	if err != nil {
		b.Fatal(err)
	}
	tr := benchTrace(b)
	keys := make([][]byte, tr.NumFlows())
	for i := range tr.Keys {
		keys[i] = tr.Keys[i].Bytes()
	}
	order := tr.Order
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					sh.UpdateShard(w, keys[order[(w+i*shards)%len(order)]], 1)
				}
			}
		}(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sh.Snapshot() == nil {
			b.Fatal("nil snapshot")
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkEstimateFCMvsCM compares query latency.
func BenchmarkEstimateFCM(b *testing.B) {
	s, err := fcm.NewSketch(fcm.Config{MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	var key [4]byte
	for i := 0; i < 200_000; i++ {
		binary.BigEndian.PutUint32(key[:], uint32(i%50_000))
		s.Update(key[:], 1)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint32(key[:], uint32(i%50_000))
		sink += s.Estimate(key[:])
	}
	_ = sink
}
