// Heavy-hitter detection on a pcap trace: this example generates a
// CAIDA-like capture, writes it to disk as a real pcap file, reads it back
// through the pcap/packet parsing path, and detects heavy hitters with
// FCM+TopK — comparing precision and recall against the exact answer.
//
//	go run ./examples/heavyhitter [trace.pcap]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/packet"
	"github.com/fcmsketch/fcm/internal/trace"
)

func main() {
	path := filepath.Join(os.TempDir(), "fcm-heavyhitter.pcap")
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else if err := generate(path); err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	tr, skipped, err := trace.ReadPcap(f, packet.KeySrcIP)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d packets, %d source-IP flows (%d frames skipped)\n",
		path, tr.NumPackets(), tr.NumFlows(), skipped)

	// 0.05% of the trace, the paper's heavy-hitter threshold.
	threshold := uint64(tr.NumPackets() / 2000)
	if threshold == 0 {
		threshold = 1
	}

	tk, err := fcm.NewTopK(fcm.TopKConfig{
		Config:      fcm.Config{MemoryBytes: 512 << 10},
		TopKEntries: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr.ForEachPacket(func(_ int, key []byte) { tk.Update(key, 1) })

	reported := tk.HeavyHitters(threshold)
	truth := map[string]uint64{}
	for i, k := range tr.Keys {
		if uint64(tr.Sizes[i]) >= threshold {
			truth[string(k.Bytes())] = uint64(tr.Sizes[i])
		}
	}
	tp := 0
	for k := range reported {
		if _, ok := truth[k]; ok {
			tp++
		}
	}
	fmt.Printf("threshold %d packets: %d true heavy hitters, %d reported, %d correct\n",
		threshold, len(truth), len(reported), tp)
	if len(reported) > 0 && len(truth) > 0 {
		p := float64(tp) / float64(len(reported))
		r := float64(tp) / float64(len(truth))
		fmt.Printf("precision %.3f  recall %.3f  F1 %.3f\n", p, r, 2*p*r/(p+r))
	}

	fmt.Println("\ntop reported flows:")
	n := 0
	for k, c := range reported {
		key := packet.Key{Len: uint8(len(k))}
		copy(key.Buf[:], k)
		fmt.Printf("  %-16s estimated %d (true %d)\n", key, c, truth[k])
		if n++; n == 5 {
			break
		}
	}
}

// generate writes a fresh CAIDA-like pcap.
func generate(path string) error {
	tr, err := trace.CAIDALike(500_000, 7)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WritePcap(f, 0, 15e9); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
