// PISA pipeline placement: compile FCM-Sketch, FCM+TopK and the
// CM(d)+TopK emulation of ElasticSketch onto the Tofino-like resource
// model and print each program's stage-by-stage allocation (§8.3), then
// verify on live traffic that the pipeline's FCM data plane is
// bit-identical to the software sketch (§8.2.1).
//
//	go run ./examples/pipeline
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/pisa"
)

func main() {
	const mem = 1_300_000 // the paper's hardware configuration

	for _, cfg := range []pisa.SwitchConfig{
		{Program: pisa.ProgramFCM, MemoryBytes: mem},
		{Program: pisa.ProgramFCMTopK, MemoryBytes: mem, TopKEntries: 16384},
		{Program: pisa.ProgramCMTopK, MemoryBytes: mem, CMRows: 2, TopKEntries: 16384},
	} {
		sw, err := pisa.NewSwitch(cfg)
		if err != nil {
			log.Fatal(err)
		}
		a := sw.Allocation()
		fmt.Printf("== %s: %d physical stages ==\n", a.Name, a.NumStages())
		u := a.Utilization()
		names := make([]string, 0, len(u))
		for n := range u {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-14s %6.2f%% of pipeline\n", n, u[n]*100)
		}
		fmt.Println()
	}

	// Bit-identical check: hardware vs software FCM on the same stream.
	sw, err := pisa.NewSwitch(pisa.SwitchConfig{
		Program: pisa.ProgramFCM, MemoryBytes: mem, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	soft, err := fcm.NewSketch(fcm.Config{MemoryBytes: mem, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var key [4]byte
	for i := 0; i < 2_000_000; i++ {
		binary.BigEndian.PutUint32(key[:], uint32(rng.Intn(100_000)))
		sw.Update(key[:], 1)
		soft.Update(key[:], 1)
	}
	mismatches := 0
	for id := uint32(0); id < 100_000; id++ {
		binary.BigEndian.PutUint32(key[:], id)
		if sw.Estimate(key[:]) != soft.Estimate(key[:]) {
			mismatches++
		}
	}
	fmt.Printf("hardware vs software FCM on 2M packets: %d query mismatches (want 0)\n", mismatches)

	card, err := sw.Cardinality()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCAM cardinality: %.0f (true 100000, table %d entries)\n",
		card, sw.TCAM().Entries())
}
