// Quickstart: build an FCM-Sketch, feed it a skewed flow mix, and run every
// data-plane query (flow size, heavy-hitter check, cardinality) plus the
// control-plane flow-size distribution and entropy.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"github.com/fcmsketch/fcm"
)

func flowKey(id uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], id)
	return b[:]
}

func main() {
	// A sketch with the paper's defaults: two 8-ary trees of 8/16/32-bit
	// counters, sized to 256KB.
	sk, err := fcm.NewSketch(fcm.Config{MemoryBytes: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate skewed traffic: 10 elephants of ~50K packets, 50K mice.
	rng := rand.New(rand.NewSource(42))
	truth := make(map[uint32]uint64)
	for flow := uint32(0); flow < 10; flow++ {
		n := uint64(40_000 + rng.Intn(20_000))
		sk.Update(flowKey(flow), n)
		truth[flow] = n
	}
	for flow := uint32(1000); flow < 51_000; flow++ {
		n := uint64(1 + rng.Intn(4))
		sk.Update(flowKey(flow), n)
		truth[flow] = n
	}

	fmt.Println("== data-plane queries ==")
	for flow := uint32(0); flow < 3; flow++ {
		fmt.Printf("flow %d: estimated %d (true %d)\n",
			flow, sk.Estimate(flowKey(flow)), truth[flow])
	}
	fmt.Printf("flow 1000 (mouse): estimated %d (true %d)\n",
		sk.Estimate(flowKey(1000)), truth[1000])
	fmt.Printf("is flow 0 a heavy hitter at 10K? %v\n",
		sk.IsHeavyHitter(flowKey(0), 10_000))
	fmt.Printf("cardinality: %.0f (true %d)\n", sk.Cardinality(), len(truth))

	fmt.Println("\n== control-plane queries (EM) ==")
	dist, err := sk.FlowSizeDistribution(&fcm.EMOptions{Iterations: 5})
	if err != nil {
		log.Fatal(err)
	}
	for size := 1; size <= 4; size++ {
		fmt.Printf("flows of size %d: estimated %.0f\n", size, dist[size])
	}
	fmt.Printf("entropy: %.3f bits\n", fcm.EntropyOf(dist))

	// FCM+TopK pins heavy flows exactly and can enumerate them.
	fmt.Println("\n== FCM+TopK ==")
	tk, err := fcm.NewTopK(fcm.TopKConfig{Config: fcm.Config{MemoryBytes: 256 << 10}})
	if err != nil {
		log.Fatal(err)
	}
	for flow, n := range truth {
		tk.Update(flowKey(flow), n)
	}
	hh := tk.HeavyHitters(10_000)
	fmt.Printf("heavy hitters ≥ 10K: %d flows (true 10)\n", len(hh))
}
