// Entropy-based anomaly detection with heavy-change localization (§4.4):
// the Framework watches windows of traffic; a DDoS-like burst in window 3
// collapses the flow entropy, and heavy-change detection pinpoints the
// responsible keys by comparing count queries across adjacent windows.
//
//	go run ./examples/anomaly
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"github.com/fcmsketch/fcm"
)

func flowKey(id uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], id)
	return b[:]
}

func main() {
	fw, err := fcm.NewFramework(fcm.Config{MemoryBytes: 256 << 10})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))

	// Candidate keys for heavy-change localization: in practice the union
	// of both windows' heavy hitters; here the busiest background flows
	// plus the attacker.
	var candidates [][]byte
	for id := uint32(0); id < 64; id++ {
		candidates = append(candidates, flowKey(id))
	}
	attacker := flowKey(0xDDD0)
	candidates = append(candidates, attacker)

	baseline := func() {
		// 20K background flows, mildly skewed.
		for i := 0; i < 200_000; i++ {
			id := uint32(rng.Intn(20_000))
			if rng.Intn(4) == 0 {
				id = uint32(rng.Intn(64)) // busier head flows
			}
			fw.Update(flowKey(id), 1)
		}
	}

	fmt.Println("window  packets   entropy   verdict")
	var prevEntropy float64
	for window := 1; window <= 5; window++ {
		baseline()
		if window == 3 {
			// DDoS burst: one source floods 150K packets.
			fw.Update(attacker, 150_000)
		}
		h, err := fw.Entropy(&fcm.EMOptions{Iterations: 4})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ok"
		if prevEntropy > 0 && h < prevEntropy*0.8 {
			verdict = "ANOMALY: entropy collapsed"
		}
		fmt.Printf("%6d  %8d  %8.3f  %s\n", window, fw.WindowPackets(), h, verdict)

		if verdict != "ok" {
			changes, err := fw.HeavyChanges(candidates, 50_000)
			if err != nil {
				log.Fatal(err)
			}
			for _, c := range changes {
				fmt.Printf("        heavy change: key %x delta %+d (%d -> %d)\n",
					c.Key, c.Delta(), c.Previous, c.Current)
			}
		}
		prevEntropy = h
		fw.Rotate()
	}
}
