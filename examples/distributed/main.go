// Network-wide monitoring: three simulated switches sketch disjoint parts
// of the traffic with identically-configured FCM-Sketches; the control
// plane collects their register snapshots over TCP, merges them exactly
// (merge ≡ sketching the union of the streams), and answers global queries
// — per-flow counts across paths, total cardinality, and the network-wide
// flow-size distribution via EM.
//
// The collection path is deliberately unreliable: every switch's listener
// is wrapped in a deterministic fault injector (mid-frame resets and
// bit-flip corruption), so the run demonstrates the hardened client —
// per-operation deadlines, reconnect, retry with capped backoff — and the
// CRC-32C snapshot trailer that turns corruption into a clean retry
// instead of silently poisoned merges.
//
// One shared telemetry registry instruments all three servers and
// clients, labeled switch="0".."2", and the run closes by printing the
// collection-plane series — the same exposition a Prometheus scrape of a
// real deployment would return.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/faultnet"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/trace"
)

func main() {
	cfg := fcm.Config{MemoryBytes: 256 << 10, Seed: 99}
	reg := telemetry.NewRegistry()

	// One trace split across three switches (e.g. ECMP paths).
	tr, err := trace.CAIDALike(600_000, 4)
	if err != nil {
		log.Fatal(err)
	}
	const switches = 3
	sketches := make([]*fcm.Sketch, switches)
	servers := make([]*collect.Server, switches)
	injectors := make([]*faultnet.Injector, switches)
	for i := range sketches {
		sk, err := fcm.NewSketch(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sketches[i] = sk
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		// A deterministic chaos layer between switch and controller:
		// connections are reset mid-frame or have a bit flipped in
		// transit, per the drawn plan.
		inj := faultnet.New(faultnet.Config{
			Seed:          int64(1000 + i),
			ResetProb:     0.3,
			ResetAfterMax: 4096,
			CorruptProb:   0.3,
		})
		injectors[i] = inj
		servers[i] = collect.Serve(faultnet.Listen(ln, inj), collect.NewLockedSketch(sk.Core()), collect.ServerConfig{})
		servers[i].Instrument(reg, fmt.Sprintf(`switch="%d"`, i))
		defer servers[i].Close()
	}

	// Packets hash-spread across switches (each packet seen once).
	packets := make([]uint64, switches)
	i := 0
	tr.ForEachPacket(func(_ int, key []byte) {
		sketches[i%switches].Update(key, 1)
		packets[i%switches]++
		i++
	})
	fmt.Printf("replayed %d packets across %d switches\n", tr.NumPackets(), switches)

	// Control plane: a Framework aggregates the network-wide window; each
	// switch is collected over the faulty link and absorbed into it.
	global, err := fcm.NewFramework(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i, srv := range servers {
		cl, err := collect.NewClient(collect.ClientConfig{
			Addr:        srv.Addr(),
			DialTimeout: 2 * time.Second,
			IOTimeout:   2 * time.Second,
			MaxRetries:  20,
			BackoffBase: 5 * time.Millisecond,
			JitterSeed:  7,
		})
		if err != nil {
			log.Fatal(err)
		}
		cl.Instrument(reg, fmt.Sprintf(`switch="%d"`, i))
		snap, err := cl.ReadSketch()
		st := cl.Stats()
		cl.Close()
		if err != nil {
			log.Fatal(err)
		}
		remote, err := snap.Restore(hashing.NewBobFamily(0xfc3141 ^ cfg.Seed))
		if err != nil {
			log.Fatal(err)
		}
		local, err := fcm.NewSketch(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := local.Core().Merge(remote); err != nil {
			log.Fatal(err)
		}
		if err := global.Absorb(local, packets[i]); err != nil {
			log.Fatal(err)
		}
		fs := injectors[i].Stats()
		fmt.Printf("collected and absorbed switch %d (%s): %d dials, %d retries through %d resets + %d corrupted writes\n",
			i, srv.Addr(), st.Dials, st.Retries, fs.Resets, fs.Corrupted)
	}

	// Global queries on the aggregated window.
	topKey := tr.Keys[0]
	fmt.Printf("\nglobal count of the top flow %s: %d (true %d)\n",
		topKey, global.Estimate(topKey.Bytes()), tr.Sizes[0])
	fmt.Printf("global cardinality: %.0f (true %d)\n", global.Cardinality(), tr.NumFlows())
	fmt.Printf("window packets absorbed: %d\n", global.WindowPackets())

	dist, err := global.FlowSizeDistribution(&fcm.EMOptions{Iterations: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network-wide flow size distribution (head):")
	for size := 1; size <= 4; size++ {
		fmt.Printf("  size %d: %.0f flows\n", size, dist[size])
	}

	// The same registry a /metrics endpoint would serve: per-switch
	// collection-plane counters, labeled.
	fmt.Println("\ncollection-plane telemetry (Prometheus exposition):")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fmt.Fprintln(os.Stdout, "  "+line)
	}
}
