// Network-wide monitoring: three simulated switches sketch disjoint parts
// of the traffic with identically-configured FCM-Sketches; the control
// plane collects their register snapshots over TCP, merges them exactly
// (merge ≡ sketching the union of the streams), and answers global queries
// — per-flow counts across paths, total cardinality, and the network-wide
// flow-size distribution via EM.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/trace"
)

func main() {
	cfg := fcm.Config{MemoryBytes: 256 << 10, Seed: 99}

	// One trace split across three switches (e.g. ECMP paths).
	tr, err := trace.CAIDALike(600_000, 4)
	if err != nil {
		log.Fatal(err)
	}
	const switches = 3
	sketches := make([]*fcm.Sketch, switches)
	servers := make([]*collect.Server, switches)
	for i := range sketches {
		sk, err := fcm.NewSketch(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sketches[i] = sk
		srv, err := collect.NewServer("127.0.0.1:0", collect.NewLockedSketch(sk.Core()))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers[i] = srv
	}

	// Packets hash-spread across switches (each packet seen once).
	i := 0
	tr.ForEachPacket(func(_ int, key []byte) {
		sketches[i%switches].Update(key, 1)
		i++
	})
	fmt.Printf("replayed %d packets across %d switches\n", tr.NumPackets(), switches)

	// Control plane: collect every switch over TCP and merge.
	global, err := fcm.NewSketch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i, srv := range servers {
		cl, err := collect.Dial(srv.Addr(), time.Second)
		if err != nil {
			log.Fatal(err)
		}
		snap, err := cl.ReadSketch()
		cl.Close()
		if err != nil {
			log.Fatal(err)
		}
		remote, err := snap.Restore(hashing.NewBobFamily(0xfc3141 ^ cfg.Seed))
		if err != nil {
			log.Fatal(err)
		}
		if err := global.Core().Merge(remote); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("collected and merged switch %d (%s)\n", i, srv.Addr())
	}

	// Global queries on the merged sketch.
	topKey := tr.Keys[0]
	fmt.Printf("\nglobal count of the top flow %s: %d (true %d)\n",
		topKey, global.Estimate(topKey.Bytes()), tr.Sizes[0])
	fmt.Printf("global cardinality: %.0f (true %d)\n", global.Cardinality(), tr.NumFlows())

	dist, err := global.FlowSizeDistribution(&fcm.EMOptions{Iterations: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network-wide flow size distribution (head):")
	for size := 1; size <= 4; size++ {
		fmt.Printf("  size %d: %.0f flows\n", size, dist[size])
	}
}
