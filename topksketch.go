package fcm

import (
	"fmt"

	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/sketch"
	"github.com/fcmsketch/fcm/internal/topk"
)

// TopKConfig parameterizes FCM+TopK (§6): an ElasticSketch-style Top-K
// heavy-flow filter in front of an FCM-Sketch holding the residual flows.
type TopKConfig struct {
	// Config sizes the backing FCM-Sketch. MemoryBytes is the TOTAL
	// budget: the Top-K table is carved out first and the sketch gets
	// the remainder. The paper's default arity under a filter is 16.
	Config
	// TopKEntries is the filter size (paper software default: 4096
	// entries in a single level).
	TopKEntries int
	// TopKLevels is the filter depth (default 1).
	TopKLevels int
	// KeySize is the flow-key length in bytes for memory accounting
	// (default 4, source IP).
	KeySize int
	// NoEviction selects the Tofino-feasible filter variant of §8.1.
	NoEviction bool
}

// TopKSketch is FCM+TopK. Heavy flows are pinned with exact counts in the
// filter; everything else lands in the FCM-Sketch. Unlike the plain
// Sketch, it can enumerate its heavy hitters.
type TopKSketch struct {
	cfg    TopKConfig
	filter *topk.Filter
	sketch *Sketch
}

// NewTopK builds an FCM+TopK instance.
func NewTopK(cfg TopKConfig) (*TopKSketch, error) {
	if cfg.K == 0 {
		cfg.K = 16 // §7.4's recommendation under a Top-K filter
	}
	entries := cfg.TopKEntries
	if entries == 0 {
		entries = 4096
	}
	levels := cfg.TopKLevels
	if levels == 0 {
		levels = 1
	}
	filter, err := topk.New(topk.Config{
		Levels:          levels,
		EntriesPerLevel: entries,
		KeySize:         cfg.KeySize,
		NoEviction:      cfg.NoEviction,
		Hash:            hashing.NewBobFamily(0x70fcb ^ cfg.Seed),
	})
	if err != nil {
		return nil, fmt.Errorf("fcm: topk filter: %w", err)
	}
	sketchCfg := cfg.Config
	if sketchCfg.MemoryBytes > 0 {
		sketchCfg.MemoryBytes -= filter.MemoryBytes()
		if sketchCfg.MemoryBytes <= 0 {
			return nil, fmt.Errorf("fcm: memory %dB leaves nothing for the sketch after a %dB filter",
				cfg.MemoryBytes, filter.MemoryBytes())
		}
	}
	sk, err := NewSketch(sketchCfg)
	if err != nil {
		return nil, err
	}
	cfg.TopKEntries = entries
	cfg.TopKLevels = levels
	cfg.Config = sk.Config()
	return &TopKSketch{cfg: cfg, filter: filter, sketch: sk}, nil
}

// Update records inc occurrences of key.
func (t *TopKSketch) Update(key []byte, inc uint64) {
	rk, rc := t.filter.Update(key, inc)
	if rc != 0 {
		t.sketch.Update(rk, rc)
	}
}

// Estimate returns the combined count estimate for key.
func (t *TopKSketch) Estimate(key []byte) uint64 {
	count, found, flagged := t.filter.Lookup(key)
	if !found {
		return t.sketch.Estimate(key)
	}
	if flagged {
		return count + t.sketch.Estimate(key)
	}
	return count
}

// HeavyHitters enumerates the filter's resident flows whose total estimate
// reaches threshold, keyed by the raw flow-key bytes.
func (t *TopKSketch) HeavyHitters(threshold uint64) map[string]uint64 {
	hh := make(map[string]uint64)
	t.filter.Entries(func(key []byte, count uint64, flagged bool) {
		if flagged {
			count += t.sketch.Estimate(key)
		}
		if count >= threshold {
			hh[string(key)] = count
		}
	})
	return hh
}

// Cardinality estimates distinct flows: Linear Counting on the sketch plus
// residents that never touched it.
func (t *TopKSketch) Cardinality() float64 {
	n := t.sketch.Cardinality()
	t.filter.Entries(func(_ []byte, _ uint64, flagged bool) {
		if !flagged {
			n++
		}
	})
	return n
}

// FlowSizeDistribution runs EM on the residual sketch and adds the filter
// residents exactly — the FCM+TopK estimator evaluated in §7.
func (t *TopKSketch) FlowSizeDistribution(opt *EMOptions) ([]float64, error) {
	var o EMOptions
	if opt != nil {
		o = *opt
	}
	s := t.sketch.s
	res, err := em.Run(em.Config{
		W1:          s.LeafWidth(),
		Theta1:      s.StageMax(0),
		Iterations:  o.Iterations,
		Workers:     o.Workers,
		OnIteration: o.OnIteration,
	}, s.VirtualCounters())
	if err != nil {
		return nil, fmt.Errorf("fcm: %w", err)
	}
	dist := res.Dist
	t.filter.Entries(func(key []byte, count uint64, flagged bool) {
		total := count
		if flagged {
			total += t.sketch.Estimate(key)
		}
		if total == 0 {
			return
		}
		for uint64(len(dist)) <= total {
			dist = append(dist, 0)
		}
		dist[total]++
	})
	return dist, nil
}

// MemoryBytes returns the combined footprint of filter and sketch.
func (t *TopKSketch) MemoryBytes() int {
	return t.filter.MemoryBytes() + t.sketch.MemoryBytes()
}

// FilterMemoryBytes returns the Top-K table's share.
func (t *TopKSketch) FilterMemoryBytes() int { return t.filter.MemoryBytes() }

// Sketch returns the backing FCM-Sketch (residual flows).
func (t *TopKSketch) Sketch() *Sketch { return t.sketch }

// Filter exposes the Top-K filter for the PISA compiler and collectors.
func (t *TopKSketch) Filter() *topk.Filter { return t.filter }

// Reset clears both parts for the next measurement window.
func (t *TopKSketch) Reset() {
	t.filter.Reset()
	t.sketch.Reset()
}

// MergeFrom implements the sketch.Mergeable contract for FCM+TopK. The
// residual FCM-Sketches merge exactly; the other filter's resident flows
// are then re-inserted through this filter's normal update path, so
// evictions spill into the sketch exactly as if those packets had arrived
// here. Unlike Sketch.Merge this is approximate (eviction order depends on
// arrival order), but estimates remain one-sided for unflagged residents.
func (t *TopKSketch) MergeFrom(other sketch.Estimator) error {
	o, ok := other.(*TopKSketch)
	if !ok {
		return fmt.Errorf("fcm: cannot merge %T into *fcm.TopKSketch", other)
	}
	if !configsEqual(t.cfg.Config, o.cfg.Config) ||
		t.cfg.TopKEntries != o.cfg.TopKEntries || t.cfg.TopKLevels != o.cfg.TopKLevels ||
		t.cfg.NoEviction != o.cfg.NoEviction {
		return fmt.Errorf("fcm: topk merge config mismatch: %+v vs %+v", t.cfg, o.cfg)
	}
	if err := t.sketch.Merge(o.sketch); err != nil {
		return err
	}
	o.filter.Entries(func(key []byte, count uint64, _ bool) {
		if count == 0 {
			return
		}
		rk, rc := t.filter.Update(key, count)
		if rc != 0 {
			t.sketch.Update(rk, rc)
		}
	})
	return nil
}
