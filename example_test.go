package fcm_test

import (
	"fmt"
	"log"

	"github.com/fcmsketch/fcm"
)

// ExampleSketch demonstrates the data-plane queries: count estimation,
// the heavy-hitter check and cardinality.
func ExampleSketch() {
	sk, err := fcm.NewSketch(fcm.Config{LeafWidth: 8192, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sk.Update([]byte("10.0.0.1"), 12000) // an elephant
	sk.Update([]byte("10.0.0.2"), 3)     // a mouse

	fmt.Println("elephant:", sk.Estimate([]byte("10.0.0.1")))
	fmt.Println("mouse:", sk.Estimate([]byte("10.0.0.2")))
	fmt.Println("heavy at 10K:", sk.IsHeavyHitter([]byte("10.0.0.1"), 10000))
	// Output:
	// elephant: 12000
	// mouse: 3
	// heavy at 10K: true
}

// ExampleTopKSketch shows FCM+TopK enumerating its heavy hitters, which a
// plain sketch cannot do.
func ExampleTopKSketch() {
	tk, err := fcm.NewTopK(fcm.TopKConfig{
		Config:      fcm.Config{LeafWidth: 4096, Seed: 1},
		TopKEntries: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	tk.Update([]byte("big"), 5000)
	for i := 0; i < 100; i++ {
		tk.Update([]byte{byte(i)}, 1)
	}
	hh := tk.HeavyHitters(1000)
	fmt.Println("heavy hitters:", len(hh), "count:", hh["big"])
	// Output:
	// heavy hitters: 1 count: 5000
}

// ExampleFramework shows windowed measurement with heavy-change detection.
func ExampleFramework() {
	fw, err := fcm.NewFramework(fcm.Config{LeafWidth: 4096, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fw.Update([]byte("flowA"), 100)
	fw.Rotate()
	fw.Update([]byte("flowA"), 900) // 9x burst

	changes, err := fw.HeavyChanges([][]byte{[]byte("flowA")}, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d change, delta %+d\n", len(changes), changes[0].Delta())
	// Output:
	// 1 change, delta +800
}

// ExampleEntropyOf computes flow entropy from a size distribution.
func ExampleEntropyOf() {
	// Four flows of one packet each: two bits of entropy.
	dist := []float64{0, 4}
	fmt.Printf("%.1f bits\n", fcm.EntropyOf(dist))
	// Output:
	// 2.0 bits
}
