package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fcmsketch/fcm/internal/exp"
)

func TestWriteCSV(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "csv")
	tab := &exp.Table{ID: "demo", Headers: []string{"a", "b"}}
	tab.AddRow("x", 1.5)
	if err := writeCSV(dir, tab); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "demo.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "a,b") || !strings.Contains(got, "x,1.5") {
		t.Errorf("csv contents:\n%s", got)
	}
}

func TestWriteCSVBadDir(t *testing.T) {
	// A file where the directory should be must fail.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	tab := &exp.Table{ID: "demo", Headers: []string{"a"}}
	if err := writeCSV(f, tab); err == nil {
		t.Error("expected mkdir error")
	}
}
