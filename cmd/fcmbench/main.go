// Command fcmbench regenerates the tables and figures of the FCM-Sketch
// paper's evaluation (§7 and §8).
//
// Usage:
//
//	fcmbench -list
//	fcmbench -run fig6
//	fcmbench -run fig6,fig7,table4 -scale 0.1
//	fcmbench -run all -scale 1.0 -csv out/
//
// -scale 1.0 runs the paper's full 20M-packet / 1.5MB configuration (slow);
// the default 0.1 preserves every comparison's shape in a tenth of the time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/exp"
	"github.com/fcmsketch/fcm/internal/telemetry"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Float64("scale", 0.1, "workload/memory scale (1.0 = paper scale)")
		seed     = flag.Int64("seed", 31337, "trace and hashing seed")
		iters    = flag.Int("iters", 5, "EM iterations")
		workers  = flag.Int("workers", 0, "EM worker goroutines (0 = all cores)")
		shards   = flag.Int("shards", 0, "max shard count for the shardedspeed sweep (0 = 8)")
		batch    = flag.Int("batch", 0, "keys per UpdateBatch for the hotpath experiment (0 = 256)")
		hashMode = flag.String("hash-mode", "", "hotpath hash modes: onepass, pertree or both (default both)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		verbose  = flag.Bool("v", false, "print progress while running")
		debug    = flag.String("debug-addr", "", "serve /metrics, /healthz and /debug/pprof while experiments run")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range exp.List() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Description)
		}
		if *run == "" && !*list {
			fmt.Println("\nselect with -run <id>[,<id>...] or -run all")
		}
		return
	}

	opts := exp.Options{
		Scale:        *scale,
		Seed:         *seed,
		EMIterations: *iters,
		Workers:      *workers,
		Shards:       *shards,
		BatchSize:    *batch,
		HashMode:     *hashMode,
	}
	if *verbose {
		opts.Log = os.Stderr
	}

	// Live introspection while long experiment sweeps run: pprof for CPU
	// profiles, /metrics for EM iteration counts and latency.
	if *debug != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterProcessMetrics(reg)
		telemetry.RegisterBuildInfo(reg, telemetry.Build())
		opts.EMMetrics = em.NewMetrics(reg)
		addr, shutdown, err := telemetry.Serve(*debug,
			telemetry.NewMux(reg, "fcmbench", nil))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fcmbench: %v\n", err)
			os.Exit(1)
		}
		defer shutdown() //nolint:errcheck // exiting anyway
		fmt.Fprintf(os.Stderr, "debug endpoints on %s\n", addr)
	}

	var ids []string
	if *run == "all" {
		for _, e := range exp.List() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	exitCode := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, err := exp.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 1
			continue
		}
		// Label the run so -debug-addr CPU profiles attribute samples to
		// the experiment that burned them.
		var tables []*exp.Table
		pprof.Do(context.Background(),
			pprof.Labels("subsystem", "bench", "experiment", id),
			func(context.Context) { tables, err = e.Run(opts) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			exitCode = 1
			continue
		}
		for _, t := range tables {
			if err := t.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "%s: printing: %v\n", id, err)
				exitCode = 1
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
					exitCode = 1
				}
			}
		}
	}
	os.Exit(exitCode)
}

// writeCSV stores one table as <dir>/<id>.csv.
func writeCSV(dir string, t *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
