// Command fcmagg runs the middle tier of a collection tree: it polls a
// region of fcmswitch instances (staggered over the interval, fan-in
// bounded, codec v3 deltas by default), keeps each member's latest sketch,
// and serves the exact merge of the region on its own collection address —
// so a controller polls one aggregator instead of N switches, and can
// itself collect deltas of the merged state.
//
// The tree is lossless: FCM merge is exact, commutative and associative,
// so aggregating per region and merging regions at the controller is
// register-bit-identical to merging every switch flat. If an aggregator
// dies, the controller re-homes its members (their addresses are in the
// aggregator's /healthz) and the numbers cannot change — only the
// collection path does.
//
// With -window the aggregator also keeps a sliding-window ring over
// collection rounds: members are polled in reset mode (each snapshot is
// one interval's traffic), each round's newly arrived snapshots are merged
// and filed as one window (a snapshot joins exactly one window, so members
// that miss a poll are never double-counted), and /debug/overtime on the
// required telemetry address answers
// over-time queries — per-key counts, cardinality, entropy and flow-size
// distribution over any lookback — plus FCMW window-frame export.
//
// Usage:
//
//	fcmagg -members 10.0.0.1:9401,10.0.0.2:9401 -listen 127.0.0.1:9411
//	fcmagg -members @region0.txt -interval 5s -max-in-flight 8 -delta=false
//	fcmagg -members ... -listen :9411 -telemetry-addr :9412
//	fcmagg -members ... -telemetry-addr :9412 -window -window-buckets 512
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/insight"
	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
	"github.com/fcmsketch/fcm/internal/window"
)

func main() {
	var (
		members  = flag.String("members", "", "comma-separated member switch addresses, or @file with one address per line (required)")
		interval = flag.Duration("interval", 5*time.Second, "member collection period (first collections are staggered across one interval)")
		timeout  = flag.Duration("timeout", 0, "per-member I/O deadline (default: the interval)")
		retries  = flag.Int("retries", 1, "extra in-collect attempts per member read")
		delta    = flag.Bool("delta", true, "collect members with the codec v3 delta protocol (falls back to v2 against old switches)")
		inFlight = flag.Int("max-in-flight", 8, "max concurrent member collections (fan-in bound)")
		jitter   = flag.Int64("jitter-seed", 1, "stagger jitter seed (decorrelates aggregators sharing an interval)")
		listen   = flag.String("listen", "", "serve the merged region's registers on this TCP address")
		readTO   = flag.Duration("read-timeout", 10*time.Second, "collection server per-frame read deadline")
		writeTO  = flag.Duration("write-timeout", 10*time.Second, "collection server per-frame write deadline")
		idleTO   = flag.Duration("idle-timeout", 2*time.Minute, "close collection connections idle this long")
		maxConns = flag.Int("max-conns", 64, "max simultaneous collection connections (excess rejected and counted)")
		maxSess  = flag.Int("max-sessions", 64, "max tracked codec v3 delta sessions (LRU-evicted beyond this)")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/pprof, /debug/traces and /debug/insight on this HTTP address")
		windowed = flag.Bool("window", false, "file each collection round's merged region sketch into a sliding-window ring and serve over-time queries on /debug/overtime (forces reset-mode member polls)")
		winMax   = flag.Int("window-buckets", 256, "over-time ring: windows of history retained (older rounds coarsen into wider buckets, then drop)")
		winSpan  = flag.Int("window-span-cap", 3, "over-time ring: buckets per coarsening level before two merge into the next (1 = most aggressive)")
		flightOn = flag.Bool("flight-recorder", true, "capture flight-recorder traces of member polls and serve requests (/debug/traces)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("fcmagg " + telemetry.Build().String())
		return
	}
	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logJSON)

	if *windowed && *telAddr == "" {
		fatalf("-window requires -telemetry-addr: over-time queries are only served on /debug/overtime, so a ring without a telemetry address would retain history nothing can read")
	}

	addrs, err := parseMembers(*members)
	if err != nil {
		fatalf("%v", err)
	}
	memberCfgs := make([]collect.PollerConfig, len(addrs))
	for i, a := range addrs {
		// Windowed aggregation needs per-interval member snapshots: reset
		// mode rotates each switch after a successful read, so the next
		// read is exactly one round's traffic.
		memberCfgs[i] = collect.PollerConfig{Addr: a, Reset: *windowed}
	}

	recorder := tracing.NewRecorder(tracing.RecorderConfig{})
	recorder.SetEnabled(*flightOn)

	agg, err := collect.NewAggregator(collect.AggregatorConfig{
		Members:     memberCfgs,
		Interval:    *interval,
		Timeout:     *timeout,
		Retries:     *retries,
		Delta:       *delta,
		MaxInFlight: *inFlight,
		JitterSeed:  *jitter,
		TrackRounds: *windowed,
		Logger:      logger,
		Tracer:      recorder,
		OnMemberState: func(addr string, from, to collect.State) {
			fmt.Fprintf(os.Stderr, "fcmagg: member %s: %s -> %s\n", addr, from, to)
		},
	})
	if err != nil {
		fatalf("%v", err)
	}

	// The over-time ring files one window per collection round, fed by
	// DrainRound so every member snapshot lands in exactly one window —
	// a member that misses a poll contributes nothing that round, not its
	// previous (already filed) snapshot again.
	var ring *window.Ring
	if *windowed {
		ring = window.NewCollector(window.Config{
			BucketDuration: *interval,
			MaxWindows:     *winMax,
			SpanCap:        *winSpan,
		})
	}

	var srv *collect.Server
	if *listen != "" {
		srv, err = collect.NewServerConfig(*listen, agg, collect.ServerConfig{
			ReadTimeout:  *readTO,
			WriteTimeout: *writeTO,
			IdleTimeout:  *idleTO,
			MaxConns:     *maxConns,
			MaxSessions:  *maxSess,
			Logger:       logger,
			Tracer:       recorder,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("serving merged region on %s\n", srv.Addr())
	}

	if *telAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterProcessMetrics(reg)
		telemetry.RegisterBuildInfo(reg, telemetry.Build())
		agg.Instrument(reg, "")
		recorder.Instrument(reg)
		if srv != nil {
			srv.Instrument(reg, "")
		}
		if ring != nil {
			ring.Instrument(reg)
		}
		mux := telemetry.NewMux(reg, "fcmagg", func() map[string]any {
			st := agg.Stats()
			extra := map[string]any{
				"members":           strings.Join(agg.MemberAddrs(), ","),
				"members_reporting": st.MembersReporting,
				"generation":        st.Generation,
			}
			if srv != nil {
				extra["collect_addr"] = srv.Addr()
			}
			return extra
		}, telemetryPaths(ring != nil)...)
		mux.Handle("/debug/traces", recorder)
		mux.Handle("/debug/insight", insight.FleetHandler(agg.InsightReport))
		if ring != nil {
			mux.Handle("/debug/overtime", window.Handler(ring))
		}
		addr, shutdownTel, err := telemetry.Serve(*telAddr, mux)
		if err != nil {
			fatalf("%v", err)
		}
		defer shutdownTel() //nolint:errcheck // exiting anyway
		fmt.Printf("telemetry on %s\n", addr)
	}

	logger.Info("fcmagg starting", telemetry.Build().LogGroup(),
		"members", len(addrs), "interval", *interval, "delta", *delta)
	if err := agg.Start(); err != nil {
		fatalf("%v", err)
	}
	var stopFiling chan struct{}
	if ring != nil {
		stopFiling = make(chan struct{})
		go fileRounds(ring, agg, *interval, stopFiling, logger)
		fmt.Printf("over-time ring enabled: %d windows of %s history, span cap %d\n",
			*winMax, *interval, *winSpan)
	}
	fmt.Printf("aggregating %d members every %s; SIGINT to stop\n", len(addrs), *interval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	if stopFiling != nil {
		close(stopFiling)
	}
	agg.Stop()
	if srv != nil {
		srv.Close() //nolint:errcheck // exiting anyway
	}
	st := agg.Stats()
	fmt.Printf("stopped: %d/%d members reporting, %d member snapshots folded, %d merges served\n",
		st.MembersReporting, st.Members, st.MemberSnapshots, st.Merges)
	if fr := agg.InsightReport(); len(fr.Members) > 0 {
		fmt.Println()
		insight.WriteFleetText(os.Stdout, fr)
	}
}

// telemetryPaths lists the extra mux paths /healthz advertises, with the
// over-time endpoint included only when the ring is enabled.
func telemetryPaths(overtime bool) []string {
	paths := []string{"/debug/traces", "/debug/insight"}
	if overtime {
		paths = append(paths, "/debug/overtime")
	}
	return paths
}

// fileRounds files one window per collection round into the over-time
// ring: each tick drains the member snapshots absorbed since the last tick
// (reset-mode, so each is one interval's traffic) and appends their exact
// merge as the round's window. DrainRound folds each snapshot exactly
// once, so a member whose poll failed this round is simply absent — its
// previous snapshot is not re-filed, which would double-count its traffic
// in every over-time answer. Rounds where no member reported file nothing;
// the next filed window's time span covers the gap, so Coverage stays
// honest.
func fileRounds(ring *window.Ring, agg *collect.Aggregator, interval time.Duration, stop <-chan struct{}, logger *slog.Logger) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	lastTime := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		sk := agg.DrainRound()
		if sk == nil {
			continue
		}
		now := time.Now()
		if err := ring.FileWindow(sk, lastTime, now, sk.TotalCount(0)); err != nil {
			// Geometry drift mid-reconfiguration: drop the round rather
			// than poison the ring. The drained snapshots are consumed
			// either way — retrying them later would double-count once
			// the ring accepts again.
			logger.Warn("over-time ring rejected round", "err", err)
			lastTime = now
			continue
		}
		lastTime = now
	}
}

// parseMembers expands the -members flag: a comma-separated list, or
// @path naming a file with one address per line (# comments allowed).
func parseMembers(spec string) ([]string, error) {
	if spec == "" {
		return nil, fmt.Errorf("-members is required")
	}
	var raw []string
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("reading member file: %w", err)
		}
		raw = strings.Split(string(data), "\n")
	} else {
		raw = strings.Split(spec, ",")
	}
	addrs := make([]string, 0, len(raw))
	for _, a := range raw {
		a = strings.TrimSpace(a)
		if a == "" || strings.HasPrefix(a, "#") {
			continue
		}
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no member addresses in %q", spec)
	}
	return addrs, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fcmagg: "+format+"\n", args...)
	os.Exit(1)
}
