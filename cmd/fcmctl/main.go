// Command fcmctl is the control-plane collector: it dials a running
// fcmswitch, pulls the FCM-Sketch registers in batch, converts them to
// virtual counters and runs the EM estimator — printing cardinality, the
// estimated flow-size distribution head, and entropy (§4).
//
// Collection is hardened for real networks: per-operation I/O deadlines,
// and (for the idempotent register read) automatic reconnect with capped
// exponential backoff. With -poll the collector runs the periodic loop of
// §4.4 instead of a one-shot read, tracking the switch's health
// (healthy/degraded/down) and reporting windows that were skipped while it
// was unreachable.
//
// Usage:
//
//	fcmctl -connect 127.0.0.1:9401
//	fcmctl -connect 127.0.0.1:9401 -iters 10 -reset
//	fcmctl -connect 127.0.0.1:9401 -poll 5s -reset -retries 2
//	fcmctl -metrics 127.0.0.1:9402
//	fcmctl -traces 127.0.0.1:9402
//	fcmctl -insight 127.0.0.1:9402
//	fcmctl -over-time 127.0.0.1:9412 -lookback 8
//	fcmctl -over-time 127.0.0.1:9412 -lookback 1m -key 0a000001 -em 5
//
// With -metrics it scrapes a switch's telemetry endpoint instead of its
// registers: the /healthz identity line followed by every metric series,
// pretty-printed for humans (ci scripts grep the raw series names).
// With -traces it renders the endpoint's flight-recorder traces slowest
// first with delta fallback reasons highlighted; with -insight it renders
// the live accuracy self-report (error bounds, cardinality validity,
// saturation forecast) of a switch or a whole aggregated fleet.
// With -over-time it queries a windowed endpoint's sliding-window ring
// (/debug/overtime): -lookback selects the trailing history as a window
// count ("8") or duration ("1m"), -key adds a per-flow estimate, -em adds
// the EM entropy and flow-size distribution over exactly that span.
package main

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/insight"
	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
	"github.com/fcmsketch/fcm/internal/window"
)

func main() {
	var (
		addr     = flag.String("connect", "127.0.0.1:9401", "fcmswitch collection address")
		iters    = flag.Int("iters", 5, "EM iterations")
		workers  = flag.Int("workers", 0, "EM worker goroutines (0 = all cores)")
		reset    = flag.Bool("reset", false, "reset the data plane after collecting (window rotation)")
		head     = flag.Int("head", 10, "print the first N sizes of the estimated distribution")
		dialTO   = flag.Duration("timeout", 5*time.Second, "connection dial timeout")
		ioTO     = flag.Duration("io-timeout", 5*time.Second, "per-read/write deadline on the wire")
		retries  = flag.Int("retries", 2, "extra attempts for the register read (reconnect + backoff)")
		delta    = flag.Bool("delta", false, "use the codec v3 delta protocol: after the first full snapshot only changed registers cross the wire (falls back to v2 against old switches)")
		poll     = flag.Duration("poll", 0, "collect repeatedly at this interval instead of once")
		metrics  = flag.String("metrics", "", "scrape and pretty-print a telemetry endpoint (host:port) instead of collecting")
		traces   = flag.String("traces", "", "fetch a telemetry endpoint's flight-recorder traces (/debug/traces), slowest first, fallback reasons highlighted")
		insights = flag.String("insight", "", "fetch a telemetry endpoint's live accuracy self-report (/debug/insight)")
		overTime = flag.String("over-time", "", "query a windowed telemetry endpoint's over-time ring (/debug/overtime)")
		lookback = flag.String("lookback", "0", "over-time lookback: a window count (\"8\", 0 = all) or a duration (\"90s\")")
		keyHex   = flag.String("key", "", "over-time: also estimate this hex-encoded flow key over the lookback")
		emOver   = flag.Int("em", 0, "over-time: run N EM iterations for entropy + FSD over the lookback (0 = skip)")
		logLevel = flag.String("log-level", "warn", "log verbosity in -poll mode: debug | info | warn | error")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("fcmctl " + telemetry.Build().String())
		return
	}
	if *metrics != "" {
		if err := scrapeMetrics(os.Stdout, *metrics); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *traces != "" {
		if err := showTraces(os.Stdout, *traces); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *insights != "" {
		if err := showInsight(os.Stdout, *insights); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *overTime != "" {
		if err := showOverTime(os.Stdout, *overTime, *lookback, *keyHex, *emOver); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if *poll > 0 {
		level, err := telemetry.ParseLevel(*logLevel)
		if err != nil {
			fatalf("%v", err)
		}
		runPoller(*addr, *poll, *ioTO, *retries, *reset, *delta,
			telemetry.NewLogger(os.Stderr, level, false))
		return
	}

	cl, err := collect.NewClient(collect.ClientConfig{
		Addr:        *addr,
		DialTimeout: *dialTO,
		IOTimeout:   *ioTO,
		MaxRetries:  *retries,
		Delta:       *delta,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer cl.Close()

	start := time.Now()
	snap, err := cl.ReadSketch()
	if err != nil {
		fatalf("reading sketch: %v", err)
	}
	if st := cl.Stats(); st.Retries > 0 {
		fmt.Fprintf(os.Stderr, "fcmctl: read needed %d retries over %d dials\n", st.Retries, st.Dials)
	}
	fmt.Printf("collected %d-tree %d-ary sketch (w1=%d) in %s\n",
		snap.Trees, snap.K, snap.W1, time.Since(start).Round(time.Millisecond))

	report(snap, *iters, *workers, *head)

	if *reset {
		if err := cl.ResetSketch(); err != nil {
			fatalf("reset: %v", err)
		}
		fmt.Println("data plane reset for the next window")
	}
}

// runPoller is the -poll mode: the §4.4 periodic collection loop with
// health tracking and skipped-window reporting. It runs until SIGINT or
// SIGTERM.
func runPoller(addr string, interval, timeout time.Duration, retries int, reset, delta bool, logger *slog.Logger) {
	logger.Info("fcmctl poller starting", telemetry.Build().LogGroup(), "addr", addr)
	p, err := collect.NewPoller(collect.PollerConfig{
		Addr:     addr,
		Interval: interval,
		Timeout:  timeout,
		Retries:  retries,
		Reset:    reset,
		Delta:    delta,
		Logger:   logger,
		OnWindow: func(snap *collect.Snapshot, skipped int) {
			sk, err := snap.Restore(nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fcmctl: restoring window: %v\n", err)
				return
			}
			note := ""
			if skipped > 0 {
				note = fmt.Sprintf(" (folds %d skipped windows)", skipped)
			}
			fmt.Printf("%s window: cardinality %.0f%s\n",
				time.Now().Format(time.TimeOnly), sk.Cardinality(), note)
		},
		OnError: func(err error) {
			fmt.Fprintf(os.Stderr, "fcmctl: collection failed: %v\n", err)
		},
		OnStateChange: func(from, to collect.State) {
			fmt.Fprintf(os.Stderr, "fcmctl: switch %s: %s -> %s\n", addr, from, to)
		},
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := p.Start(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("polling %s every %s; SIGINT to stop\n", addr, interval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	p.Stop()
	st := p.Stats()
	fmt.Printf("stopped: %d windows collected, %d failures, %d skipped windows, final state %s\n",
		st.Collected, st.Failed, st.SkippedWindows, st.State)
}

// report runs the control-plane estimators over a collected snapshot.
func report(snap *collect.Snapshot, iters, workers, head int) {
	sk, err := snap.Restore(nil)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("cardinality (linear counting): %.0f\n", sk.Cardinality())

	vcs := sk.VirtualCounters()
	start := time.Now()
	res, err := em.Run(em.Config{
		W1:         snap.W1,
		Theta1:     sk.StageMax(0),
		Iterations: iters,
		Workers:    workers,
	}, vcs)
	if err != nil {
		fatalf("EM: %v", err)
	}
	fmt.Printf("EM (%d iterations) in %s: %.0f flows estimated\n",
		res.Iterations, time.Since(start).Round(time.Millisecond), res.N)

	fmt.Println("flow size distribution (head):")
	for size := 1; size <= head && size < len(res.Dist); size++ {
		fmt.Printf("  size %3d: %10.1f flows\n", size, res.Dist[size])
	}
	h := fcm.EntropyOf(res.Dist)
	if !math.IsNaN(h) {
		fmt.Printf("entropy estimate: %.4f bits\n", h)
	}
}

// scrapeMetrics pulls /healthz and /metrics from a telemetry endpoint and
// renders them: one identity line, then every series grouped by family.
// Series lines keep their exact exposition-format form at the start of the
// line so scripts can grep them.
func scrapeMetrics(w io.Writer, addr string) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	cl := &http.Client{Timeout: 10 * time.Second}

	var health telemetry.Health
	if err := getJSON(cl, base+"/healthz", &health); err != nil {
		return fmt.Errorf("scraping %s/healthz: %w", base, err)
	}
	fmt.Fprintf(w, "status=%s component=%s uptime=%s version=%s revision=%s go=%s\n",
		health.Status, health.Component,
		(time.Duration(health.UptimeSeconds * float64(time.Second))).Round(time.Millisecond),
		health.Build.Version, health.Build.Short(), health.Build.GoVersion)
	if len(health.Extra) > 0 {
		keys := make([]string, 0, len(health.Extra))
		for k := range health.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s=%v", k, health.Extra[k])
		}
		fmt.Fprintln(w)
	}

	resp, err := cl.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping %s/metrics: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scraping %s/metrics: HTTP %d", base, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			// The help text becomes the family's heading comment.
			fmt.Fprintf(w, "# %s\n", strings.SplitN(line, " ", 4)[3])
		case strings.HasPrefix(line, "# TYPE "):
		default:
			fmt.Fprintln(w, line)
		}
	}
	return nil
}

// baseURL normalizes a host:port telemetry address into an http URL.
func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// showTraces is the -traces subcommand: it pulls /debug/traces and
// renders the retained traces slowest first, then summarizes the delta
// fallback reasons seen across them — the first thing to look at when a
// fleet's wire bytes jump.
func showTraces(w io.Writer, addr string) error {
	base := baseURL(addr)
	cl := &http.Client{Timeout: 10 * time.Second}
	var ex tracing.Export
	if err := getJSON(cl, base+"/debug/traces", &ex); err != nil {
		return fmt.Errorf("fetching %s/debug/traces: %w", base, err)
	}
	tracing.WriteText(w, ex)

	// Highlight fallback reasons: any span annotated fallback=<reason>
	// marks a poll that degraded from a delta to a full snapshot.
	reasons := map[string]int{}
	for _, t := range ex.Traces {
		for _, sp := range t.Spans {
			if r, ok := sp.Attrs["fallback"]; ok {
				reasons[r]++
			}
		}
	}
	if len(reasons) > 0 {
		keys := make([]string, 0, len(reasons))
		for k := range reasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "FALLBACKS (delta degraded to full snapshot):\n")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-20s %d trace(s)\n", k, reasons[k])
		}
	}
	return nil
}

// showInsight is the -insight subcommand: it pulls /debug/insight and
// renders the accuracy self-report — a fleet rollup when the endpoint is
// an aggregator, a single report when it is a switch.
func showInsight(w io.Writer, addr string) error {
	base := baseURL(addr)
	cl := &http.Client{Timeout: 10 * time.Second}
	resp, err := cl.Get(base + "/debug/insight")
	if err != nil {
		return fmt.Errorf("fetching %s/debug/insight: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching %s/debug/insight: HTTP %d", base, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var fleet insight.FleetReport
	if err := json.Unmarshal(body, &fleet); err != nil {
		return fmt.Errorf("decoding insight report: %w", err)
	}
	if fleet.Region != nil || len(fleet.Members) > 0 {
		insight.WriteFleetText(w, fleet)
		return nil
	}
	var rep insight.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("decoding insight report: %w", err)
	}
	insight.WriteText(w, rep)
	return nil
}

// showOverTime is the -over-time subcommand: it queries /debug/overtime
// on a windowed endpoint (an fcmagg started with -window) and renders the
// coverage the ring actually folded, the answers, and the ring occupancy.
func showOverTime(w io.Writer, addr, lookback, keyHex string, emIters int) error {
	base := baseURL(addr)
	q := url.Values{}
	if d, err := time.ParseDuration(lookback); err == nil {
		q.Set("duration", d.String())
	} else if n, err := strconv.Atoi(lookback); err == nil && n >= 0 {
		if n > 0 {
			q.Set("windows", strconv.Itoa(n))
		}
	} else {
		return fmt.Errorf("bad -lookback %q: want a window count or a duration", lookback)
	}
	if keyHex != "" {
		if _, err := hex.DecodeString(keyHex); err != nil {
			return fmt.Errorf("bad -key hex: %w", err)
		}
		q.Set("key", keyHex)
	}
	if emIters > 0 {
		q.Set("em", strconv.Itoa(emIters))
	}
	cl := &http.Client{Timeout: 30 * time.Second}
	var resp window.QueryResponse
	if err := getJSON(cl, base+"/debug/overtime?"+q.Encode(), &resp); err != nil {
		return fmt.Errorf("querying %s/debug/overtime: %w", base, err)
	}

	cov := resp.Coverage
	live := ""
	if cov.IncludesLive {
		live = " + live"
	}
	fmt.Fprintf(w, "coverage: %d windows in %d buckets%s, generations [%d,%d], %d packets\n",
		cov.Windows, cov.Buckets, live, cov.FirstGeneration, cov.LastGeneration, cov.Packets)
	if !cov.From.IsZero() {
		fmt.Fprintf(w, "span: %s .. %s (%s)\n",
			cov.From.Format(time.TimeOnly), cov.To.Format(time.TimeOnly),
			cov.To.Sub(cov.From).Round(time.Second))
	}
	fmt.Fprintf(w, "cardinality (linear counting): %.0f\n", resp.Cardinality)
	if resp.Estimate != nil {
		fmt.Fprintf(w, "flow %s: %d packets over the lookback\n", resp.Key, *resp.Estimate)
	}
	if resp.Entropy != nil {
		fmt.Fprintf(w, "entropy estimate: %.4f bits\n", *resp.Entropy)
		fmt.Fprintln(w, "flow size distribution (head):")
		for size := 1; size < len(resp.FSDHead); size++ {
			fmt.Fprintf(w, "  size %3d: %10.1f flows\n", size, resp.FSDHead[size])
		}
	}
	if len(resp.Buckets) > 0 {
		fmt.Fprintf(w, "ring: %d buckets\n", len(resp.Buckets))
		for _, b := range resp.Buckets {
			fmt.Fprintf(w, "  level %d  span %3d  generations [%d,%d]  %d packets\n",
				b.Level, b.Span, b.FirstGeneration, b.Generation, b.Packets)
		}
	}
	return nil
}

func getJSON(cl *http.Client, url string, v any) error {
	resp, err := cl.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fcmctl: "+format+"\n", args...)
	os.Exit(1)
}
