// Command fcmctl is the control-plane collector: it dials a running
// fcmswitch, pulls the FCM-Sketch registers in batch, converts them to
// virtual counters and runs the EM estimator — printing cardinality, the
// estimated flow-size distribution head, and entropy (§4).
//
// Usage:
//
//	fcmctl -connect 127.0.0.1:9401
//	fcmctl -connect 127.0.0.1:9401 -iters 10 -reset
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/em"
)

func main() {
	var (
		addr    = flag.String("connect", "127.0.0.1:9401", "fcmswitch collection address")
		iters   = flag.Int("iters", 5, "EM iterations")
		workers = flag.Int("workers", 0, "EM worker goroutines (0 = all cores)")
		reset   = flag.Bool("reset", false, "reset the data plane after collecting (window rotation)")
		head    = flag.Int("head", 10, "print the first N sizes of the estimated distribution")
	)
	flag.Parse()

	cl, err := collect.Dial(*addr, 5*time.Second)
	if err != nil {
		fatalf("%v", err)
	}
	defer cl.Close()

	start := time.Now()
	snap, err := cl.ReadSketch()
	if err != nil {
		fatalf("reading sketch: %v", err)
	}
	fmt.Printf("collected %d-tree %d-ary sketch (w1=%d) in %s\n",
		snap.Trees, snap.K, snap.W1, time.Since(start).Round(time.Millisecond))

	sk, err := snap.Restore(nil)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("cardinality (linear counting): %.0f\n", sk.Cardinality())

	vcs := sk.VirtualCounters()
	start = time.Now()
	res, err := em.Run(em.Config{
		W1:         snap.W1,
		Theta1:     sk.StageMax(0),
		Iterations: *iters,
		Workers:    *workers,
	}, vcs)
	if err != nil {
		fatalf("EM: %v", err)
	}
	fmt.Printf("EM (%d iterations) in %s: %.0f flows estimated\n",
		res.Iterations, time.Since(start).Round(time.Millisecond), res.N)

	fmt.Println("flow size distribution (head):")
	for size := 1; size <= *head && size < len(res.Dist); size++ {
		fmt.Printf("  size %3d: %10.1f flows\n", size, res.Dist[size])
	}
	h := fcm.EntropyOf(res.Dist)
	if !math.IsNaN(h) {
		fmt.Printf("entropy estimate: %.4f bits\n", h)
	}

	if *reset {
		if err := cl.ResetSketch(); err != nil {
			fatalf("reset: %v", err)
		}
		fmt.Println("data plane reset for the next window")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fcmctl: "+format+"\n", args...)
	os.Exit(1)
}
