// Command fcmctl is the control-plane collector: it dials a running
// fcmswitch, pulls the FCM-Sketch registers in batch, converts them to
// virtual counters and runs the EM estimator — printing cardinality, the
// estimated flow-size distribution head, and entropy (§4).
//
// Collection is hardened for real networks: per-operation I/O deadlines,
// and (for the idempotent register read) automatic reconnect with capped
// exponential backoff. With -poll the collector runs the periodic loop of
// §4.4 instead of a one-shot read, tracking the switch's health
// (healthy/degraded/down) and reporting windows that were skipped while it
// was unreachable.
//
// Usage:
//
//	fcmctl -connect 127.0.0.1:9401
//	fcmctl -connect 127.0.0.1:9401 -iters 10 -reset
//	fcmctl -connect 127.0.0.1:9401 -poll 5s -reset -retries 2
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/em"
)

func main() {
	var (
		addr    = flag.String("connect", "127.0.0.1:9401", "fcmswitch collection address")
		iters   = flag.Int("iters", 5, "EM iterations")
		workers = flag.Int("workers", 0, "EM worker goroutines (0 = all cores)")
		reset   = flag.Bool("reset", false, "reset the data plane after collecting (window rotation)")
		head    = flag.Int("head", 10, "print the first N sizes of the estimated distribution")
		dialTO  = flag.Duration("timeout", 5*time.Second, "connection dial timeout")
		ioTO    = flag.Duration("io-timeout", 5*time.Second, "per-read/write deadline on the wire")
		retries = flag.Int("retries", 2, "extra attempts for the register read (reconnect + backoff)")
		poll    = flag.Duration("poll", 0, "collect repeatedly at this interval instead of once")
	)
	flag.Parse()

	if *poll > 0 {
		runPoller(*addr, *poll, *ioTO, *retries, *reset)
		return
	}

	cl, err := collect.NewClient(collect.ClientConfig{
		Addr:        *addr,
		DialTimeout: *dialTO,
		IOTimeout:   *ioTO,
		MaxRetries:  *retries,
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer cl.Close()

	start := time.Now()
	snap, err := cl.ReadSketch()
	if err != nil {
		fatalf("reading sketch: %v", err)
	}
	if st := cl.Stats(); st.Retries > 0 {
		fmt.Fprintf(os.Stderr, "fcmctl: read needed %d retries over %d dials\n", st.Retries, st.Dials)
	}
	fmt.Printf("collected %d-tree %d-ary sketch (w1=%d) in %s\n",
		snap.Trees, snap.K, snap.W1, time.Since(start).Round(time.Millisecond))

	report(snap, *iters, *workers, *head)

	if *reset {
		if err := cl.ResetSketch(); err != nil {
			fatalf("reset: %v", err)
		}
		fmt.Println("data plane reset for the next window")
	}
}

// runPoller is the -poll mode: the §4.4 periodic collection loop with
// health tracking and skipped-window reporting. It runs until SIGINT or
// SIGTERM.
func runPoller(addr string, interval, timeout time.Duration, retries int, reset bool) {
	p, err := collect.NewPoller(collect.PollerConfig{
		Addr:     addr,
		Interval: interval,
		Timeout:  timeout,
		Retries:  retries,
		Reset:    reset,
		OnWindow: func(snap *collect.Snapshot, skipped int) {
			sk, err := snap.Restore(nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fcmctl: restoring window: %v\n", err)
				return
			}
			note := ""
			if skipped > 0 {
				note = fmt.Sprintf(" (folds %d skipped windows)", skipped)
			}
			fmt.Printf("%s window: cardinality %.0f%s\n",
				time.Now().Format(time.TimeOnly), sk.Cardinality(), note)
		},
		OnError: func(err error) {
			fmt.Fprintf(os.Stderr, "fcmctl: collection failed: %v\n", err)
		},
		OnStateChange: func(from, to collect.State) {
			fmt.Fprintf(os.Stderr, "fcmctl: switch %s: %s -> %s\n", addr, from, to)
		},
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := p.Start(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("polling %s every %s; SIGINT to stop\n", addr, interval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	p.Stop()
	st := p.Stats()
	fmt.Printf("stopped: %d windows collected, %d failures, %d skipped windows, final state %s\n",
		st.Collected, st.Failed, st.SkippedWindows, st.State)
}

// report runs the control-plane estimators over a collected snapshot.
func report(snap *collect.Snapshot, iters, workers, head int) {
	sk, err := snap.Restore(nil)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("cardinality (linear counting): %.0f\n", sk.Cardinality())

	vcs := sk.VirtualCounters()
	start := time.Now()
	res, err := em.Run(em.Config{
		W1:         snap.W1,
		Theta1:     sk.StageMax(0),
		Iterations: iters,
		Workers:    workers,
	}, vcs)
	if err != nil {
		fatalf("EM: %v", err)
	}
	fmt.Printf("EM (%d iterations) in %s: %.0f flows estimated\n",
		res.Iterations, time.Since(start).Round(time.Millisecond), res.N)

	fmt.Println("flow size distribution (head):")
	for size := 1; size <= head && size < len(res.Dist); size++ {
		fmt.Printf("  size %3d: %10.1f flows\n", size, res.Dist[size])
	}
	h := fcm.EntropyOf(res.Dist)
	if !math.IsNaN(h) {
		fmt.Printf("entropy estimate: %.4f bits\n", h)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fcmctl: "+format+"\n", args...)
	os.Exit(1)
}
