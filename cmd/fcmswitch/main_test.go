package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/fcmsketch/fcm/internal/pisa"
	"github.com/fcmsketch/fcm/internal/trace"
)

func TestLoadTraceSynthetic(t *testing.T) {
	tr, err := loadTrace("", 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumPackets() < 9000 {
		t.Errorf("packets %d", tr.NumPackets())
	}
}

func TestLoadTracePcap(t *testing.T) {
	src, err := trace.CAIDALike(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.WritePcap(f, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tr, err := loadTrace(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumPackets() != src.NumPackets() {
		t.Errorf("packets %d want %d", tr.NumPackets(), src.NumPackets())
	}
	if _, err := loadTrace(filepath.Join(t.TempDir(), "missing"), 0, 0); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestPrintAllocation(t *testing.T) {
	sw, err := pisa.NewSwitch(pisa.SwitchConfig{Program: pisa.ProgramFCM, MemoryBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	// printAllocation writes to stdout; just make sure it doesn't panic
	// and the allocation is sane.
	if sw.Allocation().NumStages() != 4 {
		t.Errorf("stages %d", sw.Allocation().NumStages())
	}
	printAllocation(sw.Allocation())
}
