// Command fcmswitch runs the simulated PISA switch: it replays a trace
// through the compiled FCM data plane, prints the pipeline's resource
// allocation, and serves the sketch registers over TCP for a control-plane
// collector (see cmd/fcmctl for the collector side).
//
// Usage:
//
//	fcmswitch -pcap trace.pcap -listen 127.0.0.1:9401
//	fcmswitch -packets 1000000 -program fcm+topk -mem 1300000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/packet"
	"github.com/fcmsketch/fcm/internal/pisa"
	"github.com/fcmsketch/fcm/internal/trace"
)

func main() {
	var (
		pcapPath = flag.String("pcap", "", "replay this pcap file (otherwise synthesize)")
		packets  = flag.Int("packets", 1_000_000, "synthetic packet count when no pcap is given")
		seed     = flag.Int64("seed", 1, "synthetic trace seed")
		program  = flag.String("program", "fcm", "data plane: fcm | fcm+topk | cm+topk")
		mem      = flag.Int("mem", 1_300_000, "sketch memory in bytes (paper hardware: 1.3MB)")
		listen   = flag.String("listen", "", "serve sketch registers on this TCP address")
		hhThresh = flag.Uint64("hh", 0, "print heavy hitters at this threshold (TopK programs)")
		emitP4   = flag.Bool("emit-p4", false, "print the generated P4 program for the FCM geometry and exit")
	)
	flag.Parse()

	var prog pisa.Program
	switch *program {
	case "fcm":
		prog = pisa.ProgramFCM
	case "fcm+topk":
		prog = pisa.ProgramFCMTopK
	case "cm+topk":
		prog = pisa.ProgramCMTopK
	default:
		fatalf("unknown program %q", *program)
	}

	sw, err := pisa.NewSwitch(pisa.SwitchConfig{Program: prog, MemoryBytes: *mem})
	if err != nil {
		fatalf("%v", err)
	}
	if *emitP4 {
		if sw.Sketch() == nil {
			fatalf("-emit-p4 requires an FCM program")
		}
		src, err := pisa.GenerateP4(pisa.FCMGeometry{
			Trees:     sw.Sketch().NumTrees(),
			K:         sw.Sketch().K(),
			LeafWidth: sw.Sketch().LeafWidth(),
			Widths:    sw.Sketch().Widths(),
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(src)
		return
	}
	printAllocation(sw.Allocation())

	tr, err := loadTrace(*pcapPath, *packets, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("replaying %d packets / %d flows through %s...\n",
		tr.NumPackets(), tr.NumFlows(), sw.Allocation().Name)

	var srv *collect.Server
	if *listen != "" && sw.Sketch() != nil {
		srv, err = collect.NewServer(*listen, sw.Sketch())
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("serving registers on %s\n", srv.Addr())
	}

	tr.ForEachPacket(func(_ int, key []byte) {
		if srv != nil {
			srv.Lock()
			sw.Update(key, 1)
			srv.Unlock()
		} else {
			sw.Update(key, 1)
		}
	})
	fmt.Println("replay done")

	if card, err := sw.Cardinality(); err == nil {
		fmt.Printf("data-plane cardinality (TCAM): %.0f (true %d)\n", card, tr.NumFlows())
	}
	if *hhThresh > 0 {
		hh := sw.HeavyHitters(*hhThresh)
		fmt.Printf("heavy hitters ≥ %d: %d flows\n", *hhThresh, len(hh))
	}

	if srv != nil {
		fmt.Println("replay complete; serving until SIGINT/SIGTERM")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		srv.Close() //nolint:errcheck // exiting anyway
	}
}

// loadTrace reads a pcap or synthesizes a CAIDA-like trace.
func loadTrace(path string, packets int, seed int64) (*trace.Trace, error) {
	if path == "" {
		return trace.CAIDALike(packets, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, skipped, err := trace.ReadPcap(f, packet.KeySrcIP)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "warning: skipped %d unparseable frames\n", skipped)
	}
	return tr, nil
}

// printAllocation renders the compiled pipeline placement.
func printAllocation(a *pisa.Allocation) {
	fmt.Printf("%s compiled to %d physical stages\n", a.Name, a.NumStages())
	u := a.Utilization()
	names := make([]string, 0, len(u))
	for n := range u {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-14s %6.2f%%\n", n, u[n]*100)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fcmswitch: "+format+"\n", args...)
	os.Exit(1)
}
