// Command fcmswitch runs the simulated PISA switch: it replays a trace
// through the compiled FCM data plane, prints the pipeline's resource
// allocation, and serves the sketch registers over TCP for a control-plane
// collector (see cmd/fcmctl for the collector side).
//
// With -shards N the FCM program replays through the sharded concurrent
// ingest engine: N writer goroutines each own one shard, and collection
// serves exact-merge snapshots that are bit-identical to a serial replay —
// per the paper's §5 merge property. Collection never blocks ingest: a
// shard is locked only while its registers are copied.
//
// Usage:
//
//	fcmswitch -pcap trace.pcap -listen 127.0.0.1:9401
//	fcmswitch -packets 1000000 -program fcm -shards 4 -listen 127.0.0.1:9401
//	fcmswitch -packets 1000000 -program fcm+topk -mem 1300000
//	fcmswitch -listen 127.0.0.1:9401 -telemetry-addr 127.0.0.1:9402
//
// With -telemetry-addr the switch serves live introspection over HTTP:
// /metrics (Prometheus text or ?format=json), /healthz (build + config),
// and /debug/pprof. The sketch's self-telemetry — per-level occupancy,
// overflow promotions, saturations, per-shard ingest rates, snapshot and
// rotation latency — is computed lock-free on the hot path and scanned at
// scrape time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"sort"
	"sync"
	"syscall"
	"time"

	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/engine"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/insight"
	"github.com/fcmsketch/fcm/internal/packet"
	"github.com/fcmsketch/fcm/internal/pisa"
	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
	"github.com/fcmsketch/fcm/internal/trace"
)

func main() {
	var (
		pcapPath = flag.String("pcap", "", "replay this pcap file (otherwise synthesize)")
		packets  = flag.Int("packets", 1_000_000, "synthetic packet count when no pcap is given")
		seed     = flag.Int64("seed", 1, "synthetic trace seed")
		program  = flag.String("program", "fcm", "data plane: fcm | fcm+topk | cm+topk")
		mem      = flag.Int("mem", 1_300_000, "sketch memory in bytes (paper hardware: 1.3MB)")
		shards   = flag.Int("shards", 1, "concurrent ingest shards (fcm program only; exact merge keeps results bit-identical)")
		listen   = flag.String("listen", "", "serve sketch registers on this TCP address")
		readTO   = flag.Duration("read-timeout", 10*time.Second, "collection server per-frame read deadline")
		writeTO  = flag.Duration("write-timeout", 10*time.Second, "collection server per-frame write deadline")
		idleTO   = flag.Duration("idle-timeout", 2*time.Minute, "close collection connections idle this long")
		maxConns = flag.Int("max-conns", 64, "max simultaneous collection connections (excess connections are rejected and counted)")
		maxSess  = flag.Int("max-sessions", 64, "max tracked codec v3 delta sessions (LRU-evicted beyond this; an evicted collector just gets one full snapshot)")
		hhThresh = flag.Uint64("hh", 0, "print heavy hitters at this threshold (TopK programs)")
		emitP4   = flag.Bool("emit-p4", false, "print the generated P4 program for the FCM geometry and exit")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/pprof, /debug/traces and /debug/insight on this HTTP address")
		flightOn = flag.Bool("flight-recorder", true, "capture flight-recorder traces of collection requests (served at /debug/traces)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatalf("%v", err)
	}
	logger := telemetry.NewLogger(os.Stderr, level, *logJSON)
	logger.Info("fcmswitch starting", telemetry.Build().LogGroup(),
		"program", *program, "shards", *shards, "mem", *mem)

	var prog pisa.Program
	switch *program {
	case "fcm":
		prog = pisa.ProgramFCM
	case "fcm+topk":
		prog = pisa.ProgramFCMTopK
	case "cm+topk":
		prog = pisa.ProgramCMTopK
	default:
		fatalf("unknown program %q", *program)
	}
	if *shards < 1 {
		fatalf("-shards must be ≥ 1, got %d", *shards)
	}
	if *shards > 1 && prog != pisa.ProgramFCM {
		fatalf("-shards applies to the fcm program only (TopK filters are single-writer)")
	}

	sw, err := pisa.NewSwitch(pisa.SwitchConfig{Program: prog, MemoryBytes: *mem})
	if err != nil {
		fatalf("%v", err)
	}
	if *emitP4 {
		if sw.Sketch() == nil {
			fatalf("-emit-p4 requires an FCM program")
		}
		src, err := pisa.GenerateP4(pisa.FCMGeometry{
			Trees:     sw.Sketch().NumTrees(),
			K:         sw.Sketch().K(),
			LeafWidth: sw.Sketch().LeafWidth(),
			Widths:    sw.Sketch().Widths(),
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(src)
		return
	}
	printAllocation(sw.Allocation())

	tr, err := loadTrace(*pcapPath, *packets, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("replaying %d packets / %d flows through %s...\n",
		tr.NumPackets(), tr.NumFlows(), sw.Allocation().Name)

	// Pick the data-plane source: a sharded engine for the plain FCM
	// program, a locked single-writer sketch otherwise. Both serve
	// copy-on-read snapshots, so collection never holds a lock across an
	// encode or a network write.
	var src collect.Source
	var eng *engine.Engine
	var locked *collect.LockedSketch
	if prog == pisa.ProgramFCM {
		eng, err = shardedEngine(sw, *shards, 0)
		if err != nil {
			fatalf("%v", err)
		}
		src = eng
	} else if sw.Sketch() != nil {
		locked = collect.NewLockedSketch(sw.Sketch())
		src = locked
	}

	// The flight recorder is nil-safe end to end: with -flight-recorder
	// =false the recorder stays disabled and every span call no-ops.
	recorder := tracing.NewRecorder(tracing.RecorderConfig{})
	recorder.SetEnabled(*flightOn)

	var srv *collect.Server
	if *listen != "" && src != nil {
		srv, err = collect.NewServerConfig(*listen, src, collect.ServerConfig{
			ReadTimeout:  *readTO,
			WriteTimeout: *writeTO,
			IdleTimeout:  *idleTO,
			MaxConns:     *maxConns,
			MaxSessions:  *maxSess,
			Logger:       logger,
			Tracer:       recorder,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("serving registers on %s\n", srv.Addr())
	}

	// Live introspection: registry + HTTP endpoints, wired before the
	// replay so ingest runs fully instrumented.
	if *telAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterProcessMetrics(reg)
		telemetry.RegisterBuildInfo(reg, telemetry.Build())
		recorder.Instrument(reg)
		var prober *insight.Prober
		switch {
		case eng != nil:
			eng.Instrument(reg)
			prober = eng.InstrumentInsight(reg, insight.Config{}, 0)
		case locked != nil:
			engine.InstrumentSketch(reg, sw.Sketch(), locked.SnapshotSketch)
			an := insight.NewAnalyzer(insight.Config{})
			prober = insight.NewProber(an, func() insight.Observation {
				return insight.Observe(locked.SnapshotSketch())
			}, 0)
			insight.Instrument(reg, sw.Sketch().Depth(), prober.Report)
		}
		if srv != nil {
			srv.Instrument(reg, "")
		}
		mux := telemetry.NewMux(reg, "fcmswitch", func() map[string]any {
			extra := map[string]any{
				"program": *program,
				"shards":  *shards,
			}
			if srv != nil {
				extra["collect_addr"] = srv.Addr()
				st := srv.Stats()
				extra["collect_reads"] = st.Reads
				extra["collect_conns"] = st.Conns
			}
			return extra
		}, "/debug/traces", "/debug/insight")
		mux.Handle("/debug/traces", recorder)
		if prober != nil {
			mux.Handle("/debug/insight", insight.Handler(prober.Report))
		}
		addr, shutdownTel, err := telemetry.Serve(*telAddr, mux)
		if err != nil {
			fatalf("%v", err)
		}
		defer shutdownTel() //nolint:errcheck // exiting anyway
		fmt.Printf("telemetry on %s\n", addr)
		logger.Info("telemetry endpoints up", "addr", addr)
	}

	switch {
	case eng != nil:
		replaySharded(tr, eng)
		// Fold the merged shards back into the switch's own sketch so the
		// data-plane reports below read the same registers a serial replay
		// would have produced (exact merge ⇒ bit-identical).
		merged := eng.SnapshotSketch()
		for t := 0; t < merged.NumTrees(); t++ {
			for l := 0; l < merged.Depth(); l++ {
				if err := sw.Sketch().SetStageValues(t, l, merged.StageValues(t, l)); err != nil {
					fatalf("%v", err)
				}
			}
		}
	case locked != nil && (srv != nil || *telAddr != ""):
		// Concurrent readers exist (collection or telemetry scrapes):
		// updates must serialize against snapshot copies.
		tr.ForEachPacket(func(_ int, key []byte) {
			locked.Lock()
			sw.Update(key, 1)
			locked.Unlock()
		})
	default:
		tr.ForEachPacket(func(_ int, key []byte) { sw.Update(key, 1) })
	}
	fmt.Println("replay done")

	if card, err := sw.Cardinality(); err == nil {
		fmt.Printf("data-plane cardinality (TCAM): %.0f (true %d)\n", card, tr.NumFlows())
	}
	if *hhThresh > 0 {
		hh := sw.HeavyHitters(*hhThresh)
		fmt.Printf("heavy hitters ≥ %d: %d flows\n", *hhThresh, len(hh))
	}

	if srv != nil || *telAddr != "" {
		fmt.Println("replay complete; serving until SIGINT/SIGTERM")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		if srv != nil {
			srv.Close() //nolint:errcheck // exiting anyway
		}
	}
}

// shardedEngine builds an ingest engine whose shards replicate the
// switch's FCM geometry and hash family, so the exact merge of the shards
// is bit-identical to the switch's own sketch fed serially.
func shardedEngine(sw *pisa.Switch, shards int, seed uint32) (*engine.Engine, error) {
	sk := sw.Sketch()
	return engine.New(engine.Config{
		Shards: shards,
		Build: func() (*core.Sketch, error) {
			return core.New(core.Config{
				K:         sk.K(),
				Trees:     sk.NumTrees(),
				Widths:    sk.Widths(),
				LeafWidth: sk.LeafWidth(),
				Hash:      hashing.NewBobFamily(0xfc3141 ^ seed),
			})
		},
	})
}

// replaySharded splits the replay across one writer goroutine per shard
// (shard-ownership mode: the per-shard lock is uncontended). The packet
// partition is arbitrary — the exact merge makes the result independent of
// which shard absorbed which packet.
func replaySharded(tr *trace.Trace, eng *engine.Engine) {
	n := eng.NumShards()
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Label the writer so CPU/goroutine profiles attribute ingest
			// cost per shard (pprof label sets survive into the profile).
			pprof.Do(context.Background(),
				pprof.Labels("subsystem", "engine", "op", "shard_writer", "shard", fmt.Sprint(w)),
				func(context.Context) {
					i := 0
					tr.ForEachPacket(func(_ int, key []byte) {
						if i%n == w {
							eng.UpdateShard(w, key, 1)
						}
						i++
					})
				})
		}(w)
	}
	wg.Wait()
}

// loadTrace reads a pcap or synthesizes a CAIDA-like trace.
func loadTrace(path string, packets int, seed int64) (*trace.Trace, error) {
	if path == "" {
		return trace.CAIDALike(packets, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, skipped, err := trace.ReadPcap(f, packet.KeySrcIP)
	if err != nil {
		return nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "warning: skipped %d unparseable frames\n", skipped)
	}
	return tr, nil
}

// printAllocation renders the compiled pipeline placement.
func printAllocation(a *pisa.Allocation) {
	fmt.Printf("%s compiled to %d physical stages\n", a.Name, a.NumStages())
	u := a.Utilization()
	names := make([]string, 0, len(u))
	for n := range u {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-14s %6.2f%%\n", n, u[n]*100)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fcmswitch: "+format+"\n", args...)
	os.Exit(1)
}
