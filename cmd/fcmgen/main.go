// Command fcmgen generates synthetic packet traces in pcap format: either
// CAIDA-like backbone traffic (rank-Zipf flow sizes, the §7.2 workload) or
// the i.i.d. truncated-power-law traces of §7.4.
//
// Usage:
//
//	fcmgen -o trace.pcap -packets 1000000
//	fcmgen -o zipf.pcap -model size -alpha 1.5 -packets 500000
//	fcmgen -o trace.pcap -packets 1000000 -predict-mem 1300000
//
// With -predict-mem the generated trace is additionally replayed through
// an FCM sketch of that size (the paper's 2-tree 8-ary geometry) and the
// insight accuracy self-report is printed — the offline twin of a running
// switch's /debug/insight, for sizing memory before deployment.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/insight"
	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/trace"
)

func main() {
	var (
		out     = flag.String("o", "trace.pcap", "output pcap path")
		packets = flag.Int("packets", 1_000_000, "approximate packet count")
		model   = flag.String("model", "caida", "flow-size model: caida | rank | size")
		alpha   = flag.Float64("alpha", 1.3, "Zipf skewness (rank/size models)")
		avg     = flag.Float64("avg", 50, "average flow size in packets")
		seed    = flag.Int64("seed", 1, "generation seed")
		stats   = flag.Bool("stats", true, "print trace statistics")
		predict = flag.Int("predict-mem", 0, "replay the trace through an FCM sketch of this many bytes and print its predicted accuracy report (0 = off)")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("fcmgen " + telemetry.Build().String())
		return
	}

	var (
		tr  *trace.Trace
		err error
	)
	switch *model {
	case "caida":
		tr, err = trace.CAIDALike(*packets, *seed)
	case "rank":
		tr, err = trace.Generate(trace.Config{
			Model: trace.ModelRankZipf, Alpha: *alpha,
			TotalPackets: *packets, AvgFlowSize: *avg, Seed: *seed, Shuffle: true,
		})
	case "size":
		tr, err = trace.Generate(trace.Config{
			Model: trace.ModelSizeZipf, Alpha: *alpha,
			TotalPackets: *packets, AvgFlowSize: *avg, Seed: *seed, Shuffle: true,
		})
	default:
		err = fmt.Errorf("unknown model %q (caida, rank, size)", *model)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fcmgen:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fcmgen:", err)
		os.Exit(1)
	}
	// Spread timestamps over a 15-second window like the CAIDA cuts.
	if err := tr.WritePcap(f, 0, 15e9); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "fcmgen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "fcmgen:", err)
		os.Exit(1)
	}

	if *stats {
		fmt.Printf("wrote %s: %d packets, %d flows, max flow %d packets, avg %.1f\n",
			*out, tr.NumPackets(), tr.NumFlows(), tr.MaxSize(),
			float64(tr.NumPackets())/float64(tr.NumFlows()))
	}

	if *predict > 0 {
		if err := predictAccuracy(tr, *predict); err != nil {
			fmt.Fprintln(os.Stderr, "fcmgen:", err)
			os.Exit(1)
		}
	}
}

// predictAccuracy replays the generated trace through the paper's default
// FCM geometry at the given memory budget and prints the insight
// self-report the deployed switch would serve at /debug/insight — §5's
// error bound, linear-counting validity, and saturation state, evaluated
// for this workload before any hardware is provisioned.
func predictAccuracy(tr *trace.Trace, memBytes int) error {
	sk, err := core.New(core.Config{
		K:           8,
		Trees:       2,
		MemoryBytes: memBytes,
		Hash:        hashing.NewBobFamily(0xfc3141),
	})
	if err != nil {
		return fmt.Errorf("building %dB sketch: %w", memBytes, err)
	}
	sk.SetStats(core.NewStats(sk.Depth()))
	tr.ForEachPacket(func(_ int, key []byte) { sk.Update(key, 1) })

	obs := insight.Observe(sk)
	obs.ExactMaxDegree = sk.MaxDegree()
	rep := insight.NewAnalyzer(insight.Config{}).Note(obs)
	fmt.Printf("\npredicted accuracy at %d bytes (k=8, 2 trees):\n", memBytes)
	insight.WriteText(os.Stdout, rep)
	return nil
}
