// Command fcmgen generates synthetic packet traces in pcap format: either
// CAIDA-like backbone traffic (rank-Zipf flow sizes, the §7.2 workload) or
// the i.i.d. truncated-power-law traces of §7.4.
//
// Usage:
//
//	fcmgen -o trace.pcap -packets 1000000
//	fcmgen -o zipf.pcap -model size -alpha 1.5 -packets 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/trace"
)

func main() {
	var (
		out     = flag.String("o", "trace.pcap", "output pcap path")
		packets = flag.Int("packets", 1_000_000, "approximate packet count")
		model   = flag.String("model", "caida", "flow-size model: caida | rank | size")
		alpha   = flag.Float64("alpha", 1.3, "Zipf skewness (rank/size models)")
		avg     = flag.Float64("avg", 50, "average flow size in packets")
		seed    = flag.Int64("seed", 1, "generation seed")
		stats   = flag.Bool("stats", true, "print trace statistics")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("fcmgen " + telemetry.Build().String())
		return
	}

	var (
		tr  *trace.Trace
		err error
	)
	switch *model {
	case "caida":
		tr, err = trace.CAIDALike(*packets, *seed)
	case "rank":
		tr, err = trace.Generate(trace.Config{
			Model: trace.ModelRankZipf, Alpha: *alpha,
			TotalPackets: *packets, AvgFlowSize: *avg, Seed: *seed, Shuffle: true,
		})
	case "size":
		tr, err = trace.Generate(trace.Config{
			Model: trace.ModelSizeZipf, Alpha: *alpha,
			TotalPackets: *packets, AvgFlowSize: *avg, Seed: *seed, Shuffle: true,
		})
	default:
		err = fmt.Errorf("unknown model %q (caida, rank, size)", *model)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fcmgen:", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fcmgen:", err)
		os.Exit(1)
	}
	// Spread timestamps over a 15-second window like the CAIDA cuts.
	if err := tr.WritePcap(f, 0, 15e9); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "fcmgen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "fcmgen:", err)
		os.Exit(1)
	}

	if *stats {
		fmt.Printf("wrote %s: %d packets, %d flows, max flow %d packets, avg %.1f\n",
			*out, tr.NumPackets(), tr.NumFlows(), tr.MaxSize(),
			float64(tr.NumPackets())/float64(tr.NumFlows()))
	}
}
