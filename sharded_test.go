package fcm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// shardedGeometries spans small/medium geometries with different arities,
// tree counts and stage ladders, exercising the merge carry logic at every
// stage width.
var shardedGeometries = []Config{
	{LeafWidth: 512, K: 8, Trees: 2, Widths: []int{8, 16, 32}, Seed: 7},
	{LeafWidth: 256, K: 4, Trees: 3, Widths: []int{4, 8, 16, 32}, Seed: 11},
	{LeafWidth: 64, K: 2, Trees: 1, Widths: []int{2, 4, 8}, Seed: 13},
}

// zipfStream builds a deterministic skewed stream of (key, inc) pairs. The
// tiny leaf counters in the test geometries overflow quickly, so merges
// must carry correctly across every stage.
func zipfStream(seed int64, flows, packets int) (keys [][]byte, incs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(flows-1))
	for i := 0; i < packets; i++ {
		k := make([]byte, 4)
		binary.BigEndian.PutUint32(k, uint32(z.Uint64()))
		keys = append(keys, k)
		incs = append(incs, uint64(rng.Intn(3)+1))
	}
	return keys, incs
}

// requireSameRegisters fails unless a and b hold bit-identical counters.
func requireSameRegisters(t *testing.T, a, b *Sketch) {
	t.Helper()
	ac, bc := a.Core(), b.Core()
	if ac.NumTrees() != bc.NumTrees() || ac.Depth() != bc.Depth() {
		t.Fatalf("geometry mismatch: %dx%d vs %dx%d", ac.NumTrees(), ac.Depth(), bc.NumTrees(), bc.Depth())
	}
	for tree := 0; tree < ac.NumTrees(); tree++ {
		for l := 0; l < ac.Depth(); l++ {
			av, bv := ac.StageValues(tree, l), bc.StageValues(tree, l)
			for i := range av {
				if av[i] != bv[i] {
					t.Fatalf("tree %d stage %d node %d: %d vs %d", tree, l, i, av[i], bv[i])
				}
			}
		}
	}
}

// TestShardedBitIdenticalToSerial is the public-API merge-equivalence
// property test: across geometries and shard counts, a Sharded fed by
// key-affinity and by explicit shard ownership must snapshot bit-identical
// to a serial Sketch that saw the same stream (§5's exact merge).
func TestShardedBitIdenticalToSerial(t *testing.T) {
	for gi, cfg := range shardedGeometries {
		for _, shards := range []int{1, 2, 3, 5, 8} {
			t.Run(fmt.Sprintf("geom%d/shards%d", gi, shards), func(t *testing.T) {
				serial, err := NewSketch(cfg)
				if err != nil {
					t.Fatal(err)
				}
				sh, err := NewSharded(cfg, shards)
				if err != nil {
					t.Fatal(err)
				}
				keys, incs := zipfStream(int64(gi*100+shards), 2000, 20_000)
				for i, k := range keys {
					serial.Update(k, incs[i])
					if i%2 == 0 {
						sh.Update(k, incs[i]) // key-affinity path
					} else {
						sh.UpdateShard(i%shards, k, incs[i]) // ownership path
					}
				}
				requireSameRegisters(t, sh.Snapshot(), serial)
				// Derived queries agree too.
				if got, want := sh.Cardinality(), serial.Cardinality(); got != want {
					t.Errorf("cardinality %f vs serial %f", got, want)
				}
			})
		}
	}
}

// TestShardedConcurrentWritersAndSnapshots runs more than four concurrent
// writers against a Sharded while snapshots are taken in parallel, then
// checks the final snapshot is bit-identical to a serial replay. Run under
// -race this is the data-race gate for the engine.
func TestShardedConcurrentWritersAndSnapshots(t *testing.T) {
	cfg := Config{LeafWidth: 1024, Seed: 3}
	const writers = 6
	const perWriter = 10_000
	sh, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	streams := make([][][]byte, writers)
	for w := range streams {
		keys, _ := zipfStream(int64(w), 1500, perWriter)
		streams[w] = keys
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, k := range streams[w] {
				sh.Update(k, 1)
			}
		}(w)
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := sh.Snapshot()
				if snap.Core().TotalCount(0) > uint64(writers*perWriter) {
					t.Error("snapshot observed more packets than were sent")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()

	serial, err := NewSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, keys := range streams {
		for _, k := range keys {
			serial.Update(k, 1)
		}
	}
	requireSameRegisters(t, sh.Snapshot(), serial)
}

// TestFrameworkRotateUnderConcurrentUpdate checks the windowing invariant:
// with updates racing Rotate, every update lands in exactly one window, so
// the per-window estimates of a lone flow key sum to the total sent. A
// single flow cannot collide with itself, so FCM counts it exactly.
func TestFrameworkRotateUnderConcurrentUpdate(t *testing.T) {
	fw, err := NewShardedFramework(Config{LeafWidth: 256, Seed: 17}, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte{10, 0, 0, 1}
	const writers = 4
	const perWriter = 5_000

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fw.UpdateShard(w, key, 1)
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var collected uint64
	for rotating := true; rotating; {
		select {
		case <-done:
			rotating = false
		default:
		}
		fw.Rotate()
		collected += fw.PreviousEstimate(key)
	}
	// One final rotation after all writers finished drains the last window.
	fw.Rotate()
	collected += fw.PreviousEstimate(key)
	if want := uint64(writers * perWriter); collected != want {
		t.Fatalf("windows sum to %d updates, want %d", collected, want)
	}
}

// TestConfigWidthsNotAliased is the regression test for the Widths slice
// aliasing fix: mutating the caller's slice after construction must not
// change the sketch's geometry or hashing.
func TestConfigWidthsNotAliased(t *testing.T) {
	widths := []int{8, 16, 32}
	cfg := Config{LeafWidth: 128, Widths: widths}
	sk, err := NewSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sk.Update([]byte("flow"), 300) // overflows an 8-bit leaf
	widths[0] = 2                  // caller scribbles on its slice

	if got := sk.Config().Widths[0]; got != 8 {
		t.Fatalf("sketch config widths[0] = %d after caller mutation, want 8", got)
	}
	if got := sk.Core().Widths()[0]; got != 8 {
		t.Fatalf("core widths[0] = %d after caller mutation, want 8", got)
	}
	if got := sk.Estimate([]byte("flow")); got != 300 {
		t.Fatalf("estimate %d after caller mutation, want 300", got)
	}
	// Same mutated slice reused for a Sharded: also unaffected.
	widths[0] = 8
	sh, err := NewSharded(Config{LeafWidth: 128, Widths: widths}, 2)
	if err != nil {
		t.Fatal(err)
	}
	widths[1] = 4
	if got := sh.Config().Widths[1]; got != 16 {
		t.Fatalf("sharded config widths[1] = %d after caller mutation, want 16", got)
	}
}

// TestMergeFromContracts exercises the Mergeable surface of the public
// types: exact merges across Sketch and Sharded, and the config/type
// mismatch errors.
func TestMergeFromContracts(t *testing.T) {
	cfg := Config{LeafWidth: 512, Seed: 23}
	keysA, incsA := zipfStream(1, 1000, 8_000)
	keysB, incsB := zipfStream(2, 1000, 8_000)

	serial, err := NewSketch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keysA {
		serial.Update(k, incsA[i])
	}
	for i, k := range keysB {
		serial.Update(k, incsB[i])
	}

	// Sketch ← Sketch.
	a, _ := NewSketch(cfg)
	b, _ := NewSketch(cfg)
	for i, k := range keysA {
		a.Update(k, incsA[i])
	}
	for i, k := range keysB {
		b.Update(k, incsB[i])
	}
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	requireSameRegisters(t, a, serial)

	// Sharded ← Sharded and Sharded ← Sketch.
	sa, _ := NewSharded(cfg, 3)
	sb, _ := NewSharded(cfg, 2)
	for i, k := range keysA {
		sa.Update(k, incsA[i])
	}
	for i, k := range keysB {
		sb.Update(k, incsB[i])
	}
	if err := sa.MergeFrom(sb); err != nil {
		t.Fatal(err)
	}
	requireSameRegisters(t, sa.Snapshot(), serial)

	sc, _ := NewSharded(cfg, 2)
	single, _ := NewSketch(cfg)
	for i, k := range keysA {
		sc.Update(k, incsA[i])
	}
	for i, k := range keysB {
		single.Update(k, incsB[i])
	}
	if err := sc.MergeFrom(single); err != nil {
		t.Fatal(err)
	}
	requireSameRegisters(t, sc.Snapshot(), serial)

	// Mismatches are rejected.
	other, _ := NewSketch(Config{LeafWidth: 256, Seed: 23})
	if err := a.MergeFrom(other); err == nil {
		t.Error("merge across geometries should fail")
	}
	diffSeed, _ := NewSketch(Config{LeafWidth: 512, Seed: 99})
	if err := a.MergeFrom(diffSeed); err == nil {
		t.Error("merge across seeds should fail")
	}
	tk, _ := NewTopK(TopKConfig{Config: Config{MemoryBytes: 64 << 10}})
	if err := a.MergeFrom(tk); err == nil {
		t.Error("merge across concrete types should fail")
	}
}

// TestTopKMergeFrom checks the approximate FCM+TopK merge: residents of the
// source filter are re-inserted, residual sketches merge exactly, and a
// filter-pinned heavy flow keeps a one-sided estimate.
func TestTopKMergeFrom(t *testing.T) {
	cfg := TopKConfig{Config: Config{MemoryBytes: 64 << 10, Seed: 31}, TopKEntries: 64}
	a, err := NewTopK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTopK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy := []byte{192, 168, 0, 1}
	keysA, _ := zipfStream(5, 500, 4_000)
	keysB, _ := zipfStream(6, 500, 4_000)
	for _, k := range keysA {
		a.Update(k, 1)
	}
	for _, k := range keysB {
		b.Update(k, 1)
	}
	a.Update(heavy, 5_000)
	b.Update(heavy, 7_000)

	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(heavy); got < 12_000 {
		t.Errorf("merged heavy estimate %d < true 12000 (must stay one-sided)", got)
	}
	// Config mismatch rejected.
	c, _ := NewTopK(TopKConfig{Config: Config{MemoryBytes: 64 << 10, Seed: 31}, TopKEntries: 128})
	if err := a.MergeFrom(c); err == nil {
		t.Error("merge across filter sizes should fail")
	}
}
