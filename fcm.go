// Package fcm is the public API of the FCM framework — a Go implementation
// of "FCM-Sketch: Generic Network Measurements with Data Plane Support"
// (Song, Kannan, Low, Chan; CoNEXT 2020).
//
// The data-plane structure is FCM-Sketch: a k-ary tree of counter stages in
// which many small counters at the leaves overflow into progressively fewer
// and larger counters, with the counter's maximum value doubling as the
// overflow indicator. It answers per-flow counts, heavy-hitter checks and
// Linear-Counting cardinality at update speed and can replace Count-Min in
// any application that uses one.
//
// The control-plane side (Framework) converts a collected sketch into
// virtual counters and runs Expectation-Maximization to recover the flow
// size distribution, entropy, and heavy changes across windows.
//
// A quick tour:
//
//	sk, _ := fcm.NewSketch(fcm.Config{MemoryBytes: 1 << 20})
//	sk.Update(flowKey, 1)
//	size := sk.Estimate(flowKey)
//	n := sk.Cardinality()
//
//	fw, _ := fcm.NewFramework(fcm.Config{MemoryBytes: 1 << 20})
//	fw.Update(flowKey, 1)
//	dist, _ := fw.FlowSizeDistribution(nil)
//	h, _ := fw.Entropy(nil)
//
// For the highest accuracy on heavy-tailed traffic, combine FCM-Sketch
// with the Top-K filter of ElasticSketch (§6 of the paper):
//
//	tk, _ := fcm.NewTopK(fcm.TopKConfig{Config: fcm.Config{MemoryBytes: 1 << 20}})
//	tk.Update(flowKey, 1)
//	hh := tk.HeavyHitters(10000)
package fcm

import (
	"fmt"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/sketch"
)

// Config parameterizes an FCM-Sketch. The zero value of every field selects
// the paper's defaults (§7.2): two 8-ary trees of 8/16/32-bit stages.
type Config struct {
	// MemoryBytes is the total counter budget. Exactly one of MemoryBytes
	// and LeafWidth must be positive.
	MemoryBytes int
	// LeafWidth sets w1 (stage-1 nodes per tree) directly instead of
	// solving it from MemoryBytes.
	LeafWidth int
	// K is the tree arity (default 8; the paper recommends 8 for plain
	// FCM and 16 under a Top-K filter).
	K int
	// Trees is the number of independent trees (default 2).
	Trees int
	// Widths is the per-stage counter width in bits, leaves first
	// (default 8,16,32).
	Widths []int
	// Seed derives the hash functions; sketches with equal seeds and
	// geometry are mergeable snapshots of each other.
	Seed uint32
	// PerTreeHash forces one independent hash evaluation per tree instead
	// of the default one-pass mode, which derives every tree's index from
	// a single two-lane hash of the key. The modes place counters
	// differently, so sketches built in different modes do not merge.
	PerTreeHash bool
}

// withDefaults fills zero fields with the paper's defaults. Widths is
// defensively copied so a caller mutating its slice after NewSketch cannot
// corrupt the sketch geometry.
func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 8
	}
	if c.Trees == 0 {
		c.Trees = 2
	}
	if len(c.Widths) == 0 {
		c.Widths = core.DefaultWidths()
	} else {
		c.Widths = append([]int(nil), c.Widths...)
	}
	return c
}

// coreConfig converts to the internal configuration.
func (c Config) coreConfig() core.Config {
	return core.Config{
		K:           c.K,
		Trees:       c.Trees,
		Widths:      c.Widths,
		MemoryBytes: c.MemoryBytes,
		LeafWidth:   c.LeafWidth,
		Hash:        hashing.NewBobFamily(0xfc3141 ^ c.Seed),
		PerTreeHash: c.PerTreeHash,
	}
}

// Sketch is an FCM-Sketch: the data-plane structure of the paper. It is
// not safe for concurrent use; multi-writer pipelines should use Sharded,
// whose per-shard ingest plus exact merge is bit-identical to feeding one
// Sketch serially.
type Sketch struct {
	cfg Config
	s   *core.Sketch
}

// NewSketch builds an FCM-Sketch.
func NewSketch(cfg Config) (*Sketch, error) {
	cfg = cfg.withDefaults()
	s, err := core.New(cfg.coreConfig())
	if err != nil {
		return nil, fmt.Errorf("fcm: %w", err)
	}
	return &Sketch{cfg: cfg, s: s}, nil
}

// Update records inc occurrences of key (1 for packet counting, the byte
// count for volume counting).
func (s *Sketch) Update(key []byte, inc uint64) { s.s.Update(key, inc) }

// UpdateBatch records inc occurrences of every key in keys, equivalent to
// calling Update once per key but with per-call overheads amortized across
// the batch. Key slices are not retained; callers may reuse the buffers.
func (s *Sketch) UpdateBatch(keys [][]byte, inc uint64) { s.s.UpdateBatch(keys, inc) }

// Estimate returns the count-query estimate for key. The estimate is
// one-sided: it never underestimates (Theorem 5.1 bounds the excess).
func (s *Sketch) Estimate(key []byte) uint64 { return s.s.Estimate(key) }

// Cardinality estimates the number of distinct keys seen, using Linear
// Counting over the stage-1 arrays (§3.3).
func (s *Sketch) Cardinality() float64 { return s.s.Cardinality() }

// IsHeavyHitter reports whether key's estimate has reached threshold — the
// data-plane heavy-hitter check of §3.3.
func (s *Sketch) IsHeavyHitter(key []byte, threshold uint64) bool {
	return s.s.Estimate(key) >= threshold
}

// HeavyHitters scans candidate keys and returns those whose estimates reach
// threshold. Like Count-Min, a plain FCM-Sketch cannot enumerate keys; the
// candidates come from the application (or use TopKSketch, which can).
func (s *Sketch) HeavyHitters(candidates [][]byte, threshold uint64) map[string]uint64 {
	hh := make(map[string]uint64)
	for _, k := range candidates {
		if est := s.s.Estimate(k); est >= threshold {
			hh[string(k)] = est
		}
	}
	return hh
}

// MemoryBytes returns the counter storage footprint as the paper accounts
// it: the configured bit cost of every stage.
func (s *Sketch) MemoryBytes() int { return s.s.MemoryBytes() }

// ResidentBytes returns the bytes of counter storage actually allocated:
// typed lanes cost 1, 2 or 4 bytes per node depending on stage width.
func (s *Sketch) ResidentBytes() int { return s.s.ResidentBytes() }

// Reset clears all counters for the next measurement window.
func (s *Sketch) Reset() { s.s.Reset() }

// Config returns the effective configuration (with defaults applied).
func (s *Sketch) Config() Config { return s.cfg }

// Core exposes the underlying sketch for the control-plane collector and
// the PISA compiler. Most applications never need it.
func (s *Sketch) Core() *core.Sketch { return s.s }

// Merge folds another sketch into s. The merge is exact: the result is
// bit-identical to a sketch that ingested both streams, which makes
// per-switch or per-shard collection composable in the control plane.
// Both sketches must have been built with identical configurations
// (including Seed, so the hash functions match).
func (s *Sketch) Merge(o *Sketch) error {
	if !configsEqual(s.cfg, o.Config()) {
		return fmt.Errorf("fcm: merge config mismatch: %+v vs %+v", s.cfg, o.Config())
	}
	return s.s.Merge(o.s)
}

// MergeFrom implements the sketch.Mergeable contract: it folds other —
// which must be another *Sketch with an identical configuration — into s.
// See Merge for the exactness guarantee.
func (s *Sketch) MergeFrom(other sketch.Estimator) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("fcm: cannot merge %T into *fcm.Sketch", other)
	}
	return s.Merge(o)
}

// Snapshot returns a consistent deep copy of the sketch that the caller
// owns: counters are copied, hash functions shared. The snapshot answers
// every query (including control-plane EM) independently of the original.
func (s *Sketch) Snapshot() *Sketch {
	return &Sketch{cfg: s.cfg, s: s.s.Clone()}
}

// SnapshotEstimator implements the sketch.Snapshotter contract.
func (s *Sketch) SnapshotEstimator() sketch.Estimator { return s.Snapshot() }

// configsEqual compares configurations field by field (Config contains a
// slice, so == is not available).
func configsEqual(a, b Config) bool {
	if a.MemoryBytes != b.MemoryBytes || a.LeafWidth != b.LeafWidth ||
		a.K != b.K || a.Trees != b.Trees || a.Seed != b.Seed ||
		a.PerTreeHash != b.PerTreeHash || len(a.Widths) != len(b.Widths) {
		return false
	}
	for i := range a.Widths {
		if a.Widths[i] != b.Widths[i] {
			return false
		}
	}
	return true
}

// EMOptions tunes the control-plane EM estimator. The zero value selects
// the paper's configuration.
type EMOptions struct {
	// Iterations is the number of EM rounds (default 8; the paper's
	// error stabilizes within 5).
	Iterations int
	// Workers is the parallelism: 0 = all cores (the paper's FCM(m)),
	// 1 = single-threaded (FCM(s)).
	Workers int
	// OnIteration observes the intermediate distribution estimates.
	OnIteration func(iter int, dist []float64)
}

// FlowSizeDistribution converts the sketch to virtual counters (§4.1) and
// runs EM (§4.2) to estimate the flow-size distribution. dist[j] is the
// estimated number of flows with exactly j packets.
func (s *Sketch) FlowSizeDistribution(opt *EMOptions) ([]float64, error) {
	var o EMOptions
	if opt != nil {
		o = *opt
	}
	res, err := em.Run(em.Config{
		W1:          s.s.LeafWidth(),
		Theta1:      s.s.StageMax(0),
		Iterations:  o.Iterations,
		Workers:     o.Workers,
		OnIteration: o.OnIteration,
	}, s.s.VirtualCounters())
	if err != nil {
		return nil, fmt.Errorf("fcm: %w", err)
	}
	return res.Dist, nil
}
