package fcm

import "github.com/fcmsketch/fcm/internal/sketch"

// Compile-time checks that the public types satisfy the shared sketch
// contracts of internal/sketch. The experiment harness, the collection
// path and the sharded engine consume these interfaces rather than
// concrete types, so a regression here is a build failure, not a runtime
// surprise.
var (
	_ sketch.Sketch       = (*Sketch)(nil)
	_ sketch.BatchUpdater = (*Sketch)(nil)
	_ sketch.Mergeable    = (*Sketch)(nil)
	_ sketch.Snapshotter  = (*Sketch)(nil)

	_ sketch.Sketch    = (*TopKSketch)(nil)
	_ sketch.Mergeable = (*TopKSketch)(nil)

	_ sketch.Sketch       = (*Sharded)(nil)
	_ sketch.BatchUpdater = (*Sharded)(nil)
	_ sketch.Mergeable    = (*Sharded)(nil)
	_ sketch.Snapshotter  = (*Sharded)(nil)

	_ sketch.Updater              = (*Framework)(nil)
	_ sketch.Estimator            = (*Framework)(nil)
	_ sketch.CardinalityEstimator = (*Framework)(nil)
)
