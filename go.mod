module github.com/fcmsketch/fcm

go 1.22
