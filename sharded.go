package fcm

import (
	"fmt"
	"sync"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/engine"
	"github.com/fcmsketch/fcm/internal/sketch"
)

// Sharded is a multi-writer FCM-Sketch: N identically-configured shards
// fed concurrently, merged exactly (§5 of the paper) into read snapshots
// on demand. Because FCM's merge is exact, a snapshot is register-bit-
// identical to a single Sketch that ingested the whole stream serially —
// sharding changes throughput, never accuracy.
//
// Writers choose between two modes:
//
//   - Update routes each key to a fixed shard by an independent hash
//     (key affinity), so any goroutine may call it at any time.
//   - UpdateShard lets each writer goroutine own one shard outright; the
//     per-shard lock is then uncontended and ingest scales with writers.
//
// Readers call Snapshot (or any query method, which snapshots internally)
// and never stall ingest: a shard is locked only while its registers are
// copied. Snapshots are cached and reused until the next update.
type Sharded struct {
	cfg Config
	eng *engine.Engine

	// snapMu guards the cached merged snapshot; cachedGen is the engine
	// generation the cache was built at.
	snapMu    sync.Mutex
	cached    *Sketch
	cachedGen uint64
	hasCache  bool
}

// NewSharded builds a sharded sketch with the given number of shards
// (1..1024; 0 selects 1). Every shard uses cfg's geometry and seed, so
// shards — and snapshots — are mergeable with any single Sketch built
// from the same cfg.
func NewSharded(cfg Config, shards int) (*Sharded, error) {
	cfg = cfg.withDefaults()
	eng, err := engine.New(engine.Config{
		Shards: shards,
		Build: func() (*core.Sketch, error) {
			return core.New(cfg.coreConfig())
		},
	})
	if err != nil {
		return nil, fmt.Errorf("fcm: %w", err)
	}
	return &Sharded{cfg: cfg, eng: eng}, nil
}

// Update records inc occurrences of key on its key-affinity shard. Safe
// for any number of concurrent callers.
func (s *Sharded) Update(key []byte, inc uint64) { s.eng.Update(key, inc) }

// UpdateShard records inc occurrences of key on shard i — the ownership
// path for pipelines that dedicate one shard per writer goroutine.
// i must be in [0, Shards()).
func (s *Sharded) UpdateShard(i int, key []byte, inc uint64) {
	s.eng.UpdateShard(i, key, inc)
}

// UpdateBatch records inc occurrences of every key in keys, each routed to
// its key-affinity shard. For sustained batched ingest prefer
// Engine().NewBatcher, which groups keys per shard and takes each shard
// lock once per batch rather than once per key.
func (s *Sharded) UpdateBatch(keys [][]byte, inc uint64) {
	for _, k := range keys {
		s.eng.Update(k, inc)
	}
}

// UpdateShardBatch records inc occurrences of every key in keys on shard i
// under one lock acquisition — the batched ownership path.
func (s *Sharded) UpdateShardBatch(i int, keys [][]byte, inc uint64) {
	s.eng.UpdateShardBatch(i, keys, inc)
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.eng.NumShards() }

// ShardOf returns the key-affinity shard index for key.
func (s *Sharded) ShardOf(key []byte) int { return s.eng.ShardOf(key) }

// Snapshot returns the exact merge of all shards as a Sketch the caller
// owns. Consecutive calls with no intervening updates return the same
// cached snapshot, so query-heavy phases (EM, candidate scans) cost one
// merge, not one per query.
func (s *Sharded) Snapshot() *Sketch {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.hasCache && s.eng.Generation() == s.cachedGen {
		return s.cached
	}
	merged, gen := s.eng.Snapshot()
	s.cached = &Sketch{cfg: s.cfg, s: merged}
	s.cachedGen = gen
	s.hasCache = true
	return s.cached
}

// SnapshotEstimator implements the sketch.Snapshotter contract.
func (s *Sharded) SnapshotEstimator() sketch.Estimator { return s.Snapshot() }

// Rotate closes the measurement window: every shard is snapshotted and
// cleared, and the exact merge of the closed window is returned. Updates
// racing with Rotate land in exactly one of the two windows.
func (s *Sharded) Rotate() *Sketch {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	merged := s.eng.Rotate()
	s.hasCache = false
	return &Sketch{cfg: s.cfg, s: merged}
}

// Estimate answers the count query on the current merged snapshot. For
// many queries in a row, take one Snapshot and query it directly.
func (s *Sharded) Estimate(key []byte) uint64 { return s.Snapshot().Estimate(key) }

// Cardinality estimates distinct keys over the merged snapshot.
func (s *Sharded) Cardinality() float64 { return s.Snapshot().Cardinality() }

// FlowSizeDistribution runs the control-plane EM estimator (§4.2) on the
// merged snapshot.
func (s *Sharded) FlowSizeDistribution(opt *EMOptions) ([]float64, error) {
	return s.Snapshot().FlowSizeDistribution(opt)
}

// MemoryBytes returns the combined counter footprint of all shards (each
// shard replicates the configured geometry).
func (s *Sharded) MemoryBytes() int { return s.eng.MemoryBytes() }

// ResidentBytes returns the combined bytes of counter storage actually
// allocated across all shards (the typed-lane footprint).
func (s *Sharded) ResidentBytes() int { return s.eng.ResidentBytes() }

// Reset clears every shard for the next measurement window.
func (s *Sharded) Reset() {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.eng.Reset()
	s.hasCache = false
}

// Config returns the effective configuration (defaults applied).
func (s *Sharded) Config() Config { return s.cfg }

// Engine exposes the underlying sharded engine, e.g. to serve it with
// internal/collect.NewServer (the engine satisfies collect.Source). Most
// applications never need it.
func (s *Sharded) Engine() *engine.Engine { return s.eng }

// MergeFrom implements the sketch.Mergeable contract: it folds another
// *Sharded (or a plain *Sketch) with the same configuration into shard 0.
// The merge is exact, like Sketch.Merge.
func (s *Sharded) MergeFrom(other sketch.Estimator) error {
	var osk *Sketch
	switch o := other.(type) {
	case *Sharded:
		if !configsEqual(s.cfg, o.cfg) {
			return fmt.Errorf("fcm: merge config mismatch: %+v vs %+v", s.cfg, o.cfg)
		}
		osk = o.Snapshot()
	case *Sketch:
		if !configsEqual(s.cfg, o.Config()) {
			return fmt.Errorf("fcm: merge config mismatch: %+v vs %+v", s.cfg, o.Config())
		}
		osk = o
	default:
		return fmt.Errorf("fcm: cannot merge %T into *fcm.Sharded", other)
	}
	// Fold through the ownership path of shard 0: UpdateShard and Merge
	// commute with the per-shard lock, so concurrent writers stay safe.
	return s.mergeIntoShard0(osk)
}

// mergeIntoShard0 merges o's registers into shard 0 under its lock.
func (s *Sharded) mergeIntoShard0(o *Sketch) error {
	return s.eng.MergeShard(0, o.s)
}
