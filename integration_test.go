// End-to-end integration tests: trace generation → pcap on disk → parse →
// public API → metrics against exact ground truth, plus the TCP
// collection path from a live sketch to a control-plane EM run.
package fcm_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/exact"
	"github.com/fcmsketch/fcm/internal/metrics"
	"github.com/fcmsketch/fcm/internal/packet"
	"github.com/fcmsketch/fcm/internal/trace"
)

func TestEndToEndPcapPipeline(t *testing.T) {
	// Generate a CAIDA-like trace and persist it as a real pcap file.
	tr, err := trace.CAIDALike(120_000, 21)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "e2e.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WritePcap(f, 0, 15e9); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Read it back through the parsing path.
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, skipped, err := trace.ReadPcap(f, packet.KeySrcIP)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d frames skipped", skipped)
	}
	if loaded.NumPackets() != tr.NumPackets() {
		t.Fatalf("packets %d want %d", loaded.NumPackets(), tr.NumPackets())
	}

	// Feed the framework and score against exact ground truth.
	fw, err := fcm.NewFramework(fcm.Config{MemoryBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	truth := exact.New()
	loaded.ForEachPacket(func(id int, key []byte) {
		fw.Update(key, 1)
		truth.UpdateKey(loaded.Keys[id], 1)
	})

	// Flow-size ARE must be modest at this memory.
	var tv, ev []float64
	for i, k := range loaded.Keys {
		tv = append(tv, float64(loaded.Sizes[i]))
		ev = append(ev, float64(fw.Estimate(k.Bytes())))
	}
	if are := metrics.ARE(tv, ev); are > 1.5 {
		t.Errorf("end-to-end ARE %f too high", are)
	}
	// Cardinality within 5%.
	if re := metrics.RE(float64(truth.Cardinality()), fw.Cardinality()); re > 0.05 {
		t.Errorf("cardinality RE %f", re)
	}
	// Entropy via EM within 10%.
	h, err := fw.Entropy(&fcm.EMOptions{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if re := metrics.RE(truth.Entropy(), h); re > 0.1 {
		t.Errorf("entropy RE %f (est %f true %f)", re, h, truth.Entropy())
	}
}

func TestEndToEndCollection(t *testing.T) {
	// Live sketch served over TCP; controller collects and runs EM.
	sk, err := fcm.NewSketch(fcm.Config{MemoryBytes: 32 << 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.CAIDALike(60_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	ls := collect.NewLockedSketch(sk.Core())
	srv, err := collect.NewServer("127.0.0.1:0", ls)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tr.ForEachPacket(func(_ int, key []byte) {
		ls.Lock()
		sk.Update(key, 1)
		ls.Unlock()
	})

	cl, err := collect.Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	snap, err := cl.ReadSketch()
	if err != nil {
		t.Fatal(err)
	}

	// Control-plane cardinality from the snapshot matches the live one.
	restored, err := snap.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(restored.Cardinality()-sk.Cardinality()) > 1e-9 {
		t.Errorf("snapshot cardinality %f vs live %f", restored.Cardinality(), sk.Cardinality())
	}

	// FSD WMRE from the collected snapshot is as good as from the live
	// sketch (they are the same registers).
	liveDist, err := sk.FlowSizeDistribution(&fcm.EMOptions{Iterations: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	vcs, err := snap.VirtualCounters()
	if err != nil {
		t.Fatal(err)
	}
	if len(vcs) != 2 {
		t.Fatalf("trees %d", len(vcs))
	}
	truthDist := make([]float64, tr.MaxSize()+1)
	for _, s := range tr.Sizes {
		truthDist[s]++
	}
	if w := metrics.WMRE(truthDist, liveDist); w > 0.6 {
		t.Errorf("live WMRE %f", w)
	}
}

func TestFrameworkMultiWindowE2E(t *testing.T) {
	fw, err := fcm.NewFramework(fcm.Config{MemoryBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.CAIDALike(80_000, 13)
	if err != nil {
		t.Fatal(err)
	}
	windows := tr.Windows(4)
	truthPrev, truthCur := exact.New(), exact.New()
	for w, win := range windows {
		if w > 0 {
			fw.Rotate()
			truthPrev, truthCur = truthCur, exact.New()
		}
		win.ForEachPacket(func(id int, key []byte) {
			fw.Update(key, 1)
			truthCur.UpdateKey(win.Keys[id], 1)
		})
	}
	// Heavy changes between windows 3 and 4 against exact computation:
	// every exact heavy change must be detected (estimates only
	// overestimate, so recall is guaranteed modulo threshold noise).
	const thr = 60
	exactHC := exact.HeavyChanges(truthPrev, truthCur, thr)
	candidates := make([][]byte, 0, tr.NumFlows())
	for i := range tr.Keys {
		candidates = append(candidates, tr.Keys[i].Bytes())
	}
	got, err := fw.HeavyChanges(candidates, thr)
	if err != nil {
		t.Fatal(err)
	}
	gotSet := map[string]bool{}
	for _, c := range got {
		gotSet[c.Key] = true
	}
	missed := 0
	for k := range exactHC {
		if !gotSet[string(k.Bytes())] {
			missed++
		}
	}
	if len(exactHC) == 0 {
		t.Skip("no exact heavy changes at this threshold; trace too uniform")
	}
	if frac := float64(missed) / float64(len(exactHC)); frac > 0.2 {
		t.Errorf("missed %d/%d exact heavy changes", missed, len(exactHC))
	}
}
