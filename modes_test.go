package fcm_test

import (
	"strings"
	"testing"

	fcm "github.com/fcmsketch/fcm"
)

// The public API must surface the hash-mode seam everywhere sketches can
// be combined: Sketch.Merge, Sharded.MergeFrom and Framework.Absorb. A
// mode or seed mismatch silently accepted at any of these would corrupt
// merged windows, so each is pinned here.

func newModeSketch(t *testing.T, perTree bool, seed uint32) *fcm.Sketch {
	t.Helper()
	s, err := fcm.NewSketch(fcm.Config{LeafWidth: 512, Seed: seed, PerTreeHash: perTree})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSketchMergeRefusesModeMismatch(t *testing.T) {
	a := newModeSketch(t, false, 3)
	b := newModeSketch(t, true, 3)
	err := a.Merge(b)
	if err == nil {
		t.Fatal("Merge accepted a per-tree sketch into a one-pass sketch")
	}
	if !strings.Contains(err.Error(), "config mismatch") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestSketchMergeRefusesSeedMismatch(t *testing.T) {
	a := newModeSketch(t, false, 3)
	b := newModeSketch(t, false, 4)
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge accepted sketches with different seeds")
	}
}

func TestShardedMergeFromRefusesModeMismatch(t *testing.T) {
	sh, err := fcm.NewSharded(fcm.Config{LeafWidth: 512, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.MergeFrom(newModeSketch(t, true, 3)); err == nil {
		t.Fatal("MergeFrom accepted a per-tree sketch into a one-pass sharded sketch")
	}
	if err := sh.MergeFrom(newModeSketch(t, false, 9)); err == nil {
		t.Fatal("MergeFrom accepted a sketch with a different seed")
	}
	if err := sh.MergeFrom(newModeSketch(t, false, 3)); err != nil {
		t.Fatalf("MergeFrom refused a compatible sketch: %v", err)
	}
}

func TestFrameworkAbsorbRefusesModeMismatch(t *testing.T) {
	fw, err := fcm.NewFramework(fcm.Config{LeafWidth: 512, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Absorb(newModeSketch(t, true, 3), 10); err == nil {
		t.Fatal("Absorb accepted a per-tree sketch into a one-pass framework")
	}
	if err := fw.Absorb(newModeSketch(t, false, 5), 10); err == nil {
		t.Fatal("Absorb accepted a sketch with a different seed")
	}
	remote := newModeSketch(t, false, 3)
	remote.Update([]byte{1, 2, 3, 4}, 7)
	if err := fw.Absorb(remote, 7); err != nil {
		t.Fatalf("Absorb refused a compatible sketch: %v", err)
	}
	if got := fw.Estimate([]byte{1, 2, 3, 4}); got < 7 {
		t.Fatalf("absorbed count not visible: estimate %d < 7", got)
	}
}
