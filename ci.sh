#!/bin/sh
# ci.sh — the repository's one-command gate: static checks, then the full
# test suite under the race detector (the sharded engine and the collect
# server are exercised by multi-writer tests, so -race is the contract).
set -eux

go vet ./...
go build ./...
go test -race ./...

# Chaos gate: the fault-injection suite under -race, run explicitly (and
# without test caching) so collection-plane robustness cannot silently
# rot. Fault schedules are drawn from fixed seeds baked into the tests
# (chaosSeed=42 and per-test constants), so failures reproduce exactly.
go test -race -count=1 \
  -run 'Chaos|Blackhole|AcceptLoop|MaxConns|Idle|Skipped|Retries|StalledPeer|Stop' \
  ./internal/collect/ ./internal/faultnet/
