#!/bin/sh
# ci.sh — the repository's one-command gate: static checks, then the full
# test suite under the race detector (the sharded engine and the collect
# server are exercised by multi-writer tests, so -race is the contract).
set -eux

go vet ./...
go build ./...
go test -race ./...

# Chaos gate: the fault-injection suite under -race, run explicitly (and
# without test caching) so collection-plane robustness cannot silently
# rot. Fault schedules are drawn from fixed seeds baked into the tests
# (chaosSeed=42 and per-test constants), so failures reproduce exactly.
go test -race -count=1 \
  -run 'Chaos|Blackhole|AcceptLoop|MaxConns|Idle|Skipped|Retries|StalledPeer|Stop' \
  ./internal/collect/ ./internal/faultnet/

# Hot-path gate, part 1: the zero-allocation contract of the batched
# ingest path, uncached so it cannot rot behind the test cache. These
# tests pin AllocsPerRun == 0 on core.UpdateBatch, the engine batcher,
# trace replay (batched and unbatched) and the streaming pcap replay.
go test -count=1 -run 'Allocs' \
  ./internal/engine/ ./internal/trace/

# Hot-path gate, part 2: bench smoke. One iteration of every ingest
# benchmark — not a perf measurement (CI boxes are noisy), just a gate
# that the benchmarks still compile and run, so the numbers recorded in
# BENCH_hotpath.json and BENCH_compact.json stay regenerable.
go test -run 'NOMATCH' -bench 'IngestFCM|UpdateBatchFCM|ReplayTraceFCM' \
  -benchtime 1x .

# Fold-path gate, part 1: the word-wide (SWAR) merge plane must stay
# bit-identical to the exported scalar reference walk — the merge/diff
# suites (geometry sweep, cross-layout seam, equality prescreen) run under
# -race and uncached, alongside the difftest SWAR-vs-scalar invariant via
# the battery below.
go test -race -count=1 \
  -run 'MergeMatchesScalar|FirstRegisterDiffPrescreen|Merge' \
  ./internal/core/
# Fold-path gate, part 2: the zero-allocation contracts of the fold plane,
# uncached — Merge's carry scratch, the serve path's snapshot+encode
# scratch, and the append-style frame encoders.
go test -count=1 -run 'TestMergeAllocs|TestServeEncodeAllocs|TestDeltaAppendEncodeMatchesEncode' \
  ./internal/core/ ./internal/collect/
# Fold-path gate, part 3: bench smoke — one iteration of the fold
# benchmarks so the numbers in BENCH_foldpath.json stay regenerable.
go test -run 'NOMATCH' -bench 'MergePair|EqualRegisters' -benchtime 1x ./internal/core/
go test -run 'NOMATCH' -bench 'AbsorbFleet|DiffSnapshots|StateCRC' -benchtime 1x ./internal/collect/

# Lane-layout gate: the compact typed counter slabs (uint8/uint16/uint32
# lanes) must stay register-exact against the 32-bit widening shim on every
# path, under -race and uncached. Covers the in-package lane suite
# (boundaries at 254/65534, resident-byte arithmetic, cross-layout merge and
# clone), the difftest wide-shim invariant, the layout-independent codec
# golden vector, and the resident-bytes telemetry gauges.
go test -race -count=1 \
  -run 'WideShim|CompactEqualsWide|TypedLanes|LaneRange|SaturationBoundaries|AcrossLayouts|SharesLayout|LayoutIndependent|ResidentBytes' \
  ./internal/core/ ./internal/collect/ ./internal/engine/

# Fleet gate: the 200+-switch two-level aggregation test under -race and
# uncached — delta sessions end to end through faultnet faults, an
# aggregator outage with member re-homing, heal, injected generation
# loss, and bit-identity against a flat merge throughout. Also pins the
# codec v3 golden vectors and the delta protocol suite alongside it.
go test -race -count=1 \
  -run 'Fleet|Delta|Aggregator|Scheduler|Gate' \
  ./internal/collect/

# Differential gate: the oracle-backed equivalence and metamorphic suite
# (internal/difftest) under -race and uncached. This is the proof that all
# four ingest paths — serial, batched, sharded, PISA — stay bit-identical
# and one-sided against the exact oracle; every trial derives from a
# printed seed, so any failure reproduces with -seed.
go test -race -count=1 ./internal/difftest/

# Fuzz gate, part 1: the checked-in seed corpora must exist, be non-empty
# and match the in-code seed definitions (TestSeedCorpora enforces
# staleness; the explicit file check below catches an accidentally pruned
# checkout before go test would silently fuzz from nothing).
for target in FuzzSketchOps FuzzPcapIngest FuzzEMInput FuzzWindowOps; do
  dir="internal/difftest/testdata/fuzz/$target"
  [ -d "$dir" ]
  [ -n "$(ls -A "$dir")" ]
done
dir="internal/collect/testdata/fuzz/FuzzDeltaFrame"
[ -d "$dir" ]
[ -n "$(ls -A "$dir")" ]
go test -count=1 -run 'TestSeedCorpora' ./internal/difftest/
go test -count=1 -run 'TestWindowSeedCorpus' ./internal/difftest/
go test -count=1 -run 'TestDeltaSeedCorpus' ./internal/collect/

# Fuzz gate, part 2: short smoke runs of every native fuzz target — the
# state-machine fuzzer over the ingest ops, the pcap differential fuzzer
# and the EM input fuzzer — plus the collect codec fuzzers that predate
# them. Ten seconds each is not a soak; it gates that the targets still
# build, the corpora still replay, and nothing shallow regressed.
go test -run NOMATCH -fuzz '^FuzzSketchOps$' -fuzztime 10s ./internal/difftest/
go test -run NOMATCH -fuzz '^FuzzPcapIngest$' -fuzztime 10s ./internal/difftest/
go test -run NOMATCH -fuzz '^FuzzEMInput$' -fuzztime 10s ./internal/difftest/
go test -run NOMATCH -fuzz '^FuzzDeltaFrame$' -fuzztime 10s ./internal/collect/
go test -run NOMATCH -fuzz '^FuzzWindowOps$' -fuzztime 10s ./internal/difftest/

# Window gate, part 1: the windowed differential battery under -race and
# uncached — every over-time query must equal the same query against a
# serial ingest of the concatenated covering windows, bit-exact, including
# with rotations racing live writers; plus the in-package ring suite
# (attach/retention/lookback/handler/telemetry) and the windowed snapshot
# codec golden vectors with their every-bit-flip rejection sweep.
go test -race -count=1 -run 'Window' \
  ./internal/difftest/ ./internal/window/ ./internal/collect/

# Window gate, part 2: the over-time query-throughput floor at the full
# 64-bucket lookback (TestOverTimeQueryFloor requires >= 100 queries/s on
# the test geometry; BENCH_overtime.json records the real numbers), and a
# bench smoke so those numbers stay regenerable.
go test -count=1 -run 'TestOverTimeQueryFloor' ./internal/window/
go test -run NOMATCH -bench 'QueryOverTime|Rotate' -benchtime 1x ./internal/window/

# Telemetry gate, part 1: the telemetry-plane suites race-enabled and
# uncached — registry/export correctness and exposition linting, the
# flight recorder (internal/telemetry/tracing), the accuracy self-report
# (internal/insight), engine instrumentation, and the poller health-cycle
# test that drives healthy->degraded->down->healthy through faultnet and
# asserts transition counters and log records. The fleet tracing test
# (full poll trace: gate wait -> client attempt -> decode -> delta apply
# -> absorb -> deliver) rides the Trac pattern.
go test -race -count=1 ./internal/telemetry/... ./internal/insight/
go test -race -count=1 -run 'Telemetry|Instrument|Trac|Insight' \
  ./internal/engine/ ./internal/collect/

# Telemetry gate, part 2: end-to-end smoke. Boot a switch with live
# endpoints, scrape /metrics through fcmctl, and require the key series
# of every subsystem to be present in the exposition.
TMP=$(mktemp -d)
SWITCH_PID=
cleanup() {
  [ -n "$SWITCH_PID" ] && kill "$SWITCH_PID" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT
go build -o "$TMP/fcmswitch" ./cmd/fcmswitch
go build -o "$TMP/fcmctl" ./cmd/fcmctl
"$TMP/fcmswitch" -packets 50000 -shards 2 -listen 127.0.0.1:0 \
  -telemetry-addr 127.0.0.1:0 >"$TMP/switch.out" 2>"$TMP/switch.err" &
SWITCH_PID=$!
ADDR=
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^telemetry on //p' "$TMP/switch.out")
  if [ -n "$ADDR" ]; then break; fi
  sleep 0.2
done
[ -n "$ADDR" ]
"$TMP/fcmctl" -metrics "$ADDR" >"$TMP/scrape.out"
for series in fcm_build_info fcm_sketch_updates_total \
    fcm_sketch_level_occupancy fcm_engine_shard_updates_total \
    fcm_engine_shards fcm_collect_server_conns_total \
    fcm_tracing_enabled fcm_traces_retained \
    fcm_insight_error_bound_packets fcm_insight_saturation_forecast_windows \
    go_goroutines process_uptime_seconds; do
  grep -q "^$series" "$TMP/scrape.out"
done

# Boot-scrape the observability endpoints: fcmctl fetches /debug/traces
# and /debug/insight and unmarshals each response, so this fails on
# anything but well-formed JSON; the greps pin the rendered reports.
"$TMP/fcmctl" -traces "$ADDR" >"$TMP/traces.out"
grep -q '^traces: ' "$TMP/traces.out"
"$TMP/fcmctl" -insight "$ADDR" >"$TMP/insight.out"
grep -q '^insight @ window' "$TMP/insight.out"
grep -q 'error:' "$TMP/insight.out"
kill "$SWITCH_PID"
SWITCH_PID=
