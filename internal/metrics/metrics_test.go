package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestARE(t *testing.T) {
	truth := []float64{10, 20, 0, 40}
	est := []float64{11, 18, 5, 40}
	// |1|/10 + |2|/20 + skip + 0 → (0.1+0.1)/3 flows counted
	want := (0.1 + 0.1 + 0) / 3
	if got := ARE(truth, est); math.Abs(got-want) > 1e-12 {
		t.Errorf("ARE = %f, want %f", got, want)
	}
	if ARE(nil, nil) != 0 {
		t.Error("empty ARE should be 0")
	}
	if ARE([]float64{0}, []float64{5}) != 0 {
		t.Error("all-zero-truth ARE should be 0")
	}
}

func TestAAE(t *testing.T) {
	truth := []float64{10, 20, 30}
	est := []float64{12, 19, 30}
	want := (2.0 + 1.0 + 0.0) / 3
	if got := AAE(truth, est); math.Abs(got-want) > 1e-12 {
		t.Errorf("AAE = %f, want %f", got, want)
	}
	if AAE(nil, nil) != 0 {
		t.Error("empty AAE should be 0")
	}
}

func TestMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ARE": func() { ARE([]float64{1}, nil) },
		"AAE": func() { AAE([]float64{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestRE(t *testing.T) {
	if got := RE(100, 90); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RE = %f", got)
	}
	if got := RE(0, 0); got != 0 {
		t.Errorf("RE(0,0) = %f", got)
	}
	if got := RE(0, 1); !math.IsInf(got, 1) {
		t.Errorf("RE(0,1) = %f, want +Inf", got)
	}
}

func TestF1(t *testing.T) {
	p, r := PrecisionRecall(8, 10, 16)
	if p != 0.8 || r != 0.5 {
		t.Errorf("P=%f R=%f", p, r)
	}
	want := 2 * 0.8 * 0.5 / 1.3
	if got := F1(p, r); math.Abs(got-want) > 1e-12 {
		t.Errorf("F1 = %f want %f", got, want)
	}
	if F1(0, 0) != 0 {
		t.Error("F1(0,0) should be 0")
	}
	p, r = PrecisionRecall(0, 0, 0)
	if p != 0 || r != 0 {
		t.Errorf("degenerate PR = %f,%f", p, r)
	}
}

func TestF1Sets(t *testing.T) {
	truth := map[string]int{"a": 1, "b": 2, "c": 3}
	reported := map[string]bool{"a": true, "b": true, "x": true}
	// tp=2, P=2/3, R=2/3 → F1 = 2/3
	if got := F1Sets(truth, reported); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1Sets = %f", got)
	}
	if got := F1Sets(truth, truth); got != 1 {
		t.Errorf("perfect F1Sets = %f", got)
	}
	if got := F1Sets(truth, map[string]bool{}); got != 0 {
		t.Errorf("empty report F1Sets = %f", got)
	}
}

func TestWMRE(t *testing.T) {
	truth := []float64{0, 10, 5} // sizes 1,2
	est := []float64{0, 8, 5, 1} // sizes 1,2,3 (padded comparison)
	num := math.Abs(10.0-8) + math.Abs(5.0-5) + math.Abs(0.0-1)
	den := (10.0+8)/2 + (5.0+5)/2 + (0.0+1)/2
	if got := WMRE(truth, est); math.Abs(got-num/den) > 1e-12 {
		t.Errorf("WMRE = %f want %f", got, num/den)
	}
	if WMRE(nil, nil) != 0 {
		t.Error("empty WMRE should be 0")
	}
}

func TestWMREIdentical(t *testing.T) {
	f := func(raw []uint8) bool {
		d := make([]float64, len(raw)+1)
		for i, v := range raw {
			d[i+1] = float64(v)
		}
		return WMRE(d, d) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWMREBounded(t *testing.T) {
	// WMRE is at most 2 (disjoint supports).
	truth := []float64{0, 10, 0}
	est := []float64{0, 0, 10}
	if got := WMRE(truth, est); math.Abs(got-2) > 1e-12 {
		t.Errorf("disjoint WMRE = %f, want 2", got)
	}
}

func TestAREQuickNonNegative(t *testing.T) {
	f := func(a, b []uint8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		truth := make([]float64, n)
		est := make([]float64, n)
		for i := 0; i < n; i++ {
			truth[i] = float64(a[i])
			est[i] = float64(b[i])
		}
		return ARE(truth, est) >= 0 && AAE(truth, est) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
