// Package metrics implements the evaluation metrics of the FCM paper
// (§7.2, Table 2): ARE, AAE, F1-score, WMRE and RE.
package metrics

import "math"

// ARE is the Average Relative Error: (1/N) Σ |est−true|/true. Flows with a
// true count of zero are skipped (they cannot be normalized).
func ARE(truth, est []float64) float64 {
	if len(truth) != len(est) {
		panic("metrics: ARE length mismatch")
	}
	sum, n := 0.0, 0
	for i := range truth {
		if truth[i] == 0 {
			continue
		}
		sum += math.Abs(est[i]-truth[i]) / truth[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AAE is the Average Absolute Error: (1/N) Σ |est−true|.
func AAE(truth, est []float64) float64 {
	if len(truth) != len(est) {
		panic("metrics: AAE length mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	sum := 0.0
	for i := range truth {
		sum += math.Abs(est[i] - truth[i])
	}
	return sum / float64(len(truth))
}

// RE is the Relative Error of a scalar estimate: |est−true|/true.
func RE(truth, est float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// PrecisionRecall scores a reported set against a true set (both given as
// membership maps keyed by any comparable type is not expressible here, so
// the harness passes counts: true positives, reported, actual).
func PrecisionRecall(truePositives, reported, actual int) (precision, recall float64) {
	if reported > 0 {
		precision = float64(truePositives) / float64(reported)
	}
	if actual > 0 {
		recall = float64(truePositives) / float64(actual)
	}
	return precision, recall
}

// F1 combines precision and recall: 2PR/(P+R).
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// F1Sets computes the F1 score directly from a true set and a reported set
// represented as maps from an opaque string key to anything truthy.
func F1Sets[K comparable, A, B any](truth map[K]A, reported map[K]B) float64 {
	tp := 0
	for k := range reported {
		if _, ok := truth[k]; ok {
			tp++
		}
	}
	p, r := PrecisionRecall(tp, len(reported), len(truth))
	return F1(p, r)
}

// WMRE is the Weighted Mean Relative Error between two flow-size
// distributions (Kumar et al. [38]):
//
//	WMRE = Σ_i |n_i − n̂_i| / Σ_i (n_i + n̂_i)/2
//
// The shorter slice is implicitly zero-padded.
func WMRE(truth, est []float64) float64 {
	n := len(truth)
	if len(est) > n {
		n = len(est)
	}
	num, den := 0.0, 0.0
	at := func(s []float64, i int) float64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	for i := 1; i < n; i++ {
		ti, ei := at(truth, i), at(est, i)
		num += math.Abs(ti - ei)
		den += (ti + ei) / 2
	}
	if den == 0 {
		return 0
	}
	return num / den
}
