package cmsketch

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTest(t testing.TB, mem int, conservative bool) *Sketch {
	t.Helper()
	s, err := New(Config{MemoryBytes: mem, Rows: 3, Conservative: conservative})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func k(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 100, Rows: 0}); err == nil {
		t.Error("expected error for zero rows")
	}
	if _, err := New(Config{MemoryBytes: 4, Rows: 3}); err == nil {
		t.Error("expected error for too little memory")
	}
}

func TestExactWhenSparse(t *testing.T) {
	// With few flows and plenty of memory, estimates are exact.
	for _, cu := range []bool{false, true} {
		s := newTest(t, 1<<16, cu)
		for i := uint64(0); i < 10; i++ {
			for j := uint64(0); j <= i; j++ {
				s.Update(k(i), 1)
			}
		}
		for i := uint64(0); i < 10; i++ {
			if got := s.Estimate(k(i)); got != i+1 {
				t.Errorf("cu=%v flow %d: got %d want %d", cu, i, got, i+1)
			}
		}
	}
}

func TestNeverUnderestimates(t *testing.T) {
	for _, cu := range []bool{false, true} {
		s := newTest(t, 1<<10, cu) // tiny: force collisions
		truth := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 5000; i++ {
			id := uint64(rng.Intn(300))
			truth[id]++
			s.Update(k(id), 1)
		}
		for id, c := range truth {
			if got := s.Estimate(k(id)); got < c {
				t.Fatalf("cu=%v: flow %d underestimated: %d < %d", cu, id, got, c)
			}
		}
	}
}

func TestCUNotWorseThanCM(t *testing.T) {
	cm := newTest(t, 1<<12, false)
	cu := newTest(t, 1<<12, true)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		id := uint64(rng.Intn(2000))
		truth[id]++
		cm.Update(k(id), 1)
		cu.Update(k(id), 1)
	}
	var errCM, errCU float64
	for id, c := range truth {
		errCM += float64(cm.Estimate(k(id)) - c)
		errCU += float64(cu.Estimate(k(id)) - c)
	}
	if errCU > errCM {
		t.Errorf("CU total error %f exceeds CM %f", errCU, errCM)
	}
	if errCM == 0 {
		t.Error("test not exercising collisions; shrink memory")
	}
}

func TestIncrementBySize(t *testing.T) {
	s := newTest(t, 1<<16, false)
	s.Update(k(1), 1000)
	s.Update(k(1), 500)
	if got := s.Estimate(k(1)); got != 1500 {
		t.Errorf("weighted update = %d, want 1500", got)
	}
}

func TestSaturation(t *testing.T) {
	for _, cu := range []bool{false, true} {
		s := newTest(t, 1<<10, cu)
		s.Update(k(1), 1<<33) // exceeds 32-bit
		if got := s.Estimate(k(1)); got != 0xffffffff {
			t.Errorf("cu=%v: saturated estimate = %d", cu, got)
		}
		s.Update(k(1), 10) // must not wrap
		if got := s.Estimate(k(1)); got != 0xffffffff {
			t.Errorf("cu=%v: post-saturation estimate = %d", cu, got)
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := newTest(t, 12000, false)
	if s.MemoryBytes() > 12000 {
		t.Errorf("memory %d exceeds budget", s.MemoryBytes())
	}
	if s.Width() != 1000 || s.Rows() != 3 {
		t.Errorf("geometry w=%d d=%d", s.Width(), s.Rows())
	}
}

func TestReset(t *testing.T) {
	s := newTest(t, 1<<12, false)
	s.Update(k(1), 7)
	s.Reset()
	if got := s.Estimate(k(1)); got != 0 {
		t.Errorf("after reset estimate = %d", got)
	}
}

func TestRowAccess(t *testing.T) {
	s := newTest(t, 1<<12, false)
	s.Update(k(1), 3)
	total := uint64(0)
	for r := 0; r < s.Rows(); r++ {
		for _, v := range s.Row(r) {
			total += uint64(v)
		}
	}
	if total != 3*uint64(s.Rows()) {
		t.Errorf("row sum %d, want %d", total, 3*s.Rows())
	}
}

func TestQuickOverestimate(t *testing.T) {
	s := newTest(t, 1<<10, false)
	truth := map[string]uint64{}
	f := func(key []byte, inc8 uint8) bool {
		inc := uint64(inc8) + 1
		s.Update(key, inc)
		truth[string(key)] += inc
		return s.Estimate(key) >= truth[string(key)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpdateCM(b *testing.B) { benchUpdate(b, false) }
func BenchmarkUpdateCU(b *testing.B) { benchUpdate(b, true) }

func benchUpdate(b *testing.B, cu bool) {
	s := newTest(b, 1<<20, cu)
	var key [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i%100000))
		s.Update(key[:], 1)
	}
}

func BenchmarkEstimateCM(b *testing.B) {
	s := newTest(b, 1<<20, false)
	var key [8]byte
	for i := 0; i < 100000; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i))
		s.Update(key[:], 1)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i%100000))
		sink += s.Estimate(key[:])
	}
	_ = sink
}
