// Package cmsketch implements the Count-Min sketch (Cormode &
// Muthukrishnan [22]) and its Conservative-Update variant (CU, Estan &
// Varghese [26]) — the primary baselines of the FCM paper. Counters are
// 32-bit, rows are chosen by independent hash functions, matching §7.1's
// implementation notes (3 rows of 32-bit counters by default).
package cmsketch

import (
	"fmt"

	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/sketch"
)

// Compile-time contract checks.
var (
	_ sketch.Estimator  = (*Sketch)(nil)
	_ sketch.Sized      = (*Sketch)(nil)
	_ sketch.Resettable = (*Sketch)(nil)
	_ sketch.Mergeable  = (*Sketch)(nil)
)

// Sketch is a d×w Count-Min sketch.
type Sketch struct {
	rows    [][]uint32
	hashers []hashing.Hasher
	w       int
	max     uint32 // counter saturation value (2^bits − 1)
	bits    int
	// conservative enables CU updates: only the minimal counters are
	// incremented, which keeps the one-sided error but reduces it.
	conservative bool
}

// Config parameterizes the sketch.
type Config struct {
	// MemoryBytes is the total counter budget; the per-row width is
	// MemoryBytes·8/(Bits·Rows).
	MemoryBytes int
	// Rows is the number of counter arrays d (the paper uses 3).
	Rows int
	// Bits is the counter width (8, 16 or 32; default 32). ElasticSketch's
	// light part uses 8-bit counters that saturate.
	Bits int
	// Conservative selects CU update semantics.
	Conservative bool
	// Hash provides the d independent hash functions; nil selects BobHash
	// with a fixed seed.
	Hash hashing.Family
}

// New builds a Count-Min (or CU) sketch from cfg.
func New(cfg Config) (*Sketch, error) {
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("cmsketch: Rows must be positive, got %d", cfg.Rows)
	}
	bits := cfg.Bits
	if bits == 0 {
		bits = 32
	}
	switch bits {
	case 8, 16, 32:
	default:
		return nil, fmt.Errorf("cmsketch: Bits must be 8, 16 or 32, got %d", bits)
	}
	w := cfg.MemoryBytes * 8 / (bits * cfg.Rows)
	if w < 1 {
		return nil, fmt.Errorf("cmsketch: memory %dB too small for %d rows", cfg.MemoryBytes, cfg.Rows)
	}
	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0x5ca1ab1e)
	}
	max := uint32(0xffffffff)
	if bits < 32 {
		max = 1<<uint(bits) - 1
	}
	s := &Sketch{w: w, max: max, bits: bits, conservative: cfg.Conservative}
	for i := 0; i < cfg.Rows; i++ {
		s.rows = append(s.rows, make([]uint32, w))
		s.hashers = append(s.hashers, fam.New(i))
	}
	return s, nil
}

// Update implements sketch.Updater.
func (s *Sketch) Update(key []byte, inc uint64) {
	if s.conservative {
		s.updateConservative(key, inc)
		return
	}
	for r, row := range s.rows {
		i := hashing.Reduce(s.hashers[r].Hash(key), s.w)
		row[i] = satAdd(row[i], inc, s.max)
	}
}

// updateConservative raises each counter only up to min+inc, the CU rule.
func (s *Sketch) updateConservative(key []byte, inc uint64) {
	var idx [16]int
	n := len(s.rows)
	min := s.max
	for r := 0; r < n; r++ {
		i := hashing.Reduce(s.hashers[r].Hash(key), s.w)
		idx[r] = i
		if v := s.rows[r][i]; v < min {
			min = v
		}
	}
	target := satAdd(min, inc, s.max)
	for r := 0; r < n; r++ {
		if s.rows[r][idx[r]] < target {
			s.rows[r][idx[r]] = target
		}
	}
}

// Estimate implements sketch.Estimator: the minimum over rows.
func (s *Sketch) Estimate(key []byte) uint64 {
	min := s.max
	for r, row := range s.rows {
		i := hashing.Reduce(s.hashers[r].Hash(key), s.w)
		if v := row[i]; v < min {
			min = v
		}
	}
	return uint64(min)
}

// MemoryBytes implements sketch.Sized.
func (s *Sketch) MemoryBytes() int { return len(s.rows) * s.w * s.bits / 8 }

// Bits returns the configured counter width.
func (s *Sketch) Bits() int { return s.bits }

// Saturated reports whether the counter value v is at the saturation cap.
func (s *Sketch) Saturated(v uint64) bool { return v >= uint64(s.max) }

// Width returns the per-row counter count.
func (s *Sketch) Width() int { return s.w }

// Rows returns the number of counter arrays.
func (s *Sketch) Rows() int { return len(s.rows) }

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for _, row := range s.rows {
		for i := range row {
			row[i] = 0
		}
	}
}

// Row exposes a row's counters (read-only use) for control-plane analysis
// such as MRAC-style EM on a single row.
func (s *Sketch) Row(r int) []uint32 { return s.rows[r] }

// MergeFrom implements sketch.Mergeable: counter-wise saturating addition.
// For plain CM the merge is exact (the merged sketch equals one that
// ingested both streams); for CU it is the standard upper bound, since CU's
// update rule depends on arrival interleaving.
func (s *Sketch) MergeFrom(other sketch.Estimator) error {
	o, ok := other.(*Sketch)
	if !ok {
		return fmt.Errorf("cmsketch: cannot merge %T into *cmsketch.Sketch", other)
	}
	if len(s.rows) != len(o.rows) || s.w != o.w || s.bits != o.bits || s.conservative != o.conservative {
		return fmt.Errorf("cmsketch: merge config mismatch: %dx%d/%db vs %dx%d/%db",
			len(s.rows), s.w, s.bits, len(o.rows), o.w, o.bits)
	}
	for r, row := range s.rows {
		for i, v := range o.rows[r] {
			row[i] = satAdd(row[i], uint64(v), s.max)
		}
	}
	return nil
}

// satAdd adds inc to v, saturating at max.
func satAdd(v uint32, inc uint64, max uint32) uint32 {
	sum := uint64(v) + inc
	if sum > uint64(max) {
		return max
	}
	return uint32(sum)
}
