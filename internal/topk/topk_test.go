package topk

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func k(i uint64) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

func newTest(t testing.TB, levels, entries int, noEvict bool) *Filter {
	t.Helper()
	f, err := New(Config{Levels: levels, EntriesPerLevel: entries, NoEviction: noEvict})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{Levels: 0, EntriesPerLevel: 8}); err == nil {
		t.Error("expected levels error")
	}
	if _, err := New(Config{Levels: 1, EntriesPerLevel: 0}); err == nil {
		t.Error("expected entries error")
	}
	if _, err := New(Config{Levels: 1, EntriesPerLevel: 8, KeySize: 20}); err == nil {
		t.Error("expected key size error")
	}
}

func TestResidentAbsorbs(t *testing.T) {
	f := newTest(t, 1, 64, false)
	for i := 0; i < 100; i++ {
		if rk, rc := f.Update(k(1), 1); rc != 0 {
			t.Fatalf("resident flow leaked (%v, %d)", rk, rc)
		}
	}
	count, found, flagged := f.Lookup(k(1))
	if !found || count != 100 || flagged {
		t.Errorf("lookup = (%d, %v, %v)", count, found, flagged)
	}
}

func TestUnknownNotFound(t *testing.T) {
	f := newTest(t, 1, 64, false)
	f.Update(k(1), 1)
	if _, found, _ := f.Lookup(k(2)); found {
		t.Error("unknown flow reported as resident")
	}
}

func TestVoteFailGoesToLight(t *testing.T) {
	// Single bucket: second flow's packets must bypass while the vote
	// ratio stays below λ.
	f := newTest(t, 1, 1, false)
	for i := 0; i < 100; i++ {
		f.Update(k(1), 1)
	}
	rk, rc := f.Update(k(2), 1)
	if rc != 1 || rc != 0 && binary.LittleEndian.Uint32(rk) != 2 {
		t.Errorf("vote-fail residual = (%v, %d), want key 2 count 1", rk, rc)
	}
	if c, found, _ := f.Lookup(k(1)); !found || c != 100 {
		t.Errorf("resident disturbed: (%d, %v)", c, found)
	}
}

func TestOstracismEviction(t *testing.T) {
	// λ=8: a small resident is evicted once negatives pile up 8×.
	f := newTest(t, 1, 1, false)
	f.Update(k(1), 1) // resident with pos=1
	var evicted bool
	for i := 0; i < 10; i++ {
		rk, rc := f.Update(k(2), 1)
		if rc == 0 {
			// Newcomer won the bucket.
			evicted = true
			break
		}
		_ = rk
	}
	if !evicted {
		t.Fatal("eviction never happened")
	}
	if _, found, _ := f.Lookup(k(1)); found {
		t.Error("evicted flow still resident in single-level filter")
	}
	count, found, flagged := f.Lookup(k(2))
	if !found || !flagged {
		t.Errorf("newcomer (count=%d found=%v flagged=%v), want resident+flagged", count, found, flagged)
	}
}

func TestEvictionCascadesToNextLevel(t *testing.T) {
	f := newTest(t, 2, 1, false)
	f.Update(k(1), 1)
	// Evict flow 1 from level 1; it must land in level 2.
	for i := 0; i < 10; i++ {
		f.Update(k(2), 1)
	}
	if _, found, _ := f.Lookup(k(1)); !found {
		t.Error("evicted flow lost instead of cascading to level 2")
	}
	if _, found, _ := f.Lookup(k(2)); !found {
		t.Error("newcomer not resident at level 1")
	}
}

func TestLastLevelEvictionFlushes(t *testing.T) {
	f := newTest(t, 1, 1, false)
	f.Update(k(1), 5)
	var flushedKey uint32
	var flushedCount uint64
	for i := 0; i < 100; i++ {
		rk, rc := f.Update(k(2), 1)
		if rc > 1 {
			flushedKey = binary.LittleEndian.Uint32(rk)
			flushedCount = rc
			break
		}
	}
	if flushedKey != 1 || flushedCount != 5 {
		t.Errorf("flushed (%d, %d), want old resident (1, 5)", flushedKey, flushedCount)
	}
}

func TestNoEvictionVariant(t *testing.T) {
	f := newTest(t, 1, 1, true)
	f.Update(k(1), 3)
	for i := 0; i < 100; i++ {
		rk, rc := f.Update(k(2), 1)
		if rc != 1 || binary.LittleEndian.Uint32(rk) != 2 {
			t.Fatalf("no-eviction residual (%v, %d)", rk, rc)
		}
	}
	if c, found, _ := f.Lookup(k(1)); !found || c != 3 {
		t.Errorf("resident = (%d, %v), must be untouched", c, found)
	}
}

func TestHeavyFlowsSurvive(t *testing.T) {
	f := newTest(t, 1, 4096, false)
	rng := rand.New(rand.NewSource(1))
	stream := make([]uint64, 0, 120000)
	for h := uint64(0); h < 30; h++ {
		for i := 0; i < 2000; i++ {
			stream = append(stream, h)
		}
	}
	for m := 0; m < 60000; m++ {
		stream = append(stream, 100+uint64(rng.Intn(40000)))
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, id := range stream {
		f.Update(k(id), 1)
	}
	kept := 0
	for h := uint64(0); h < 30; h++ {
		if c, found, _ := f.Lookup(k(h)); found && c > 1000 {
			kept++
		}
	}
	if kept < 28 {
		t.Errorf("only %d/30 heavy flows kept with high count", kept)
	}
}

func TestEntriesAndLen(t *testing.T) {
	f := newTest(t, 2, 64, false)
	f.Update(k(1), 2)
	f.Update(k(2), 3)
	if f.Len() != 2 {
		t.Errorf("len %d", f.Len())
	}
	total := uint64(0)
	f.Entries(func(key []byte, count uint64, flagged bool) {
		total += count
	})
	if total != 5 {
		t.Errorf("entries total %d", total)
	}
}

func TestMemoryBytes(t *testing.T) {
	f := newTest(t, 2, 100, false)
	if got := f.MemoryBytes(); got != 2*100*13 {
		t.Errorf("memory %d want %d", got, 2*100*13)
	}
	if BucketBytes(0) != 13 || BucketBytes(13) != 22 {
		t.Errorf("bucket bytes: %d %d", BucketBytes(0), BucketBytes(13))
	}
}

func TestReset(t *testing.T) {
	f := newTest(t, 1, 8, false)
	f.Update(k(1), 9)
	f.Reset()
	if f.Len() != 0 {
		t.Error("entries remain after reset")
	}
}
