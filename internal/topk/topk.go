// Package topk implements the Top-K heavy-flow filter of ElasticSketch
// (Yang et al., SIGCOMM 2018 [59]) used both by the Elastic baseline and by
// FCM+TopK (§6). Buckets vote: a resident flow accumulates positive votes,
// non-resident arrivals accumulate negative votes, and when the ratio
// crosses λ (=8) the resident is evicted ("ostracism") with its count
// flushed to the light part. A multi-level filter cascades evictions into
// the next level; the single-level no-eviction variant models the Tofino
// implementation of §8.1 (duplicate hash table + stateful ALUs).
package topk

import (
	"fmt"

	"github.com/fcmsketch/fcm/internal/hashing"
)

// entry is one bucket.
type entry struct {
	key  [13]byte
	klen uint8
	flag bool // resident flow may have earlier packets in the light part
	pos  uint64
	neg  uint64
}

func (e *entry) matches(key []byte) bool {
	if e.klen == 0 || int(e.klen) != len(key) {
		return false
	}
	for i, b := range key {
		if e.key[i] != b {
			return false
		}
	}
	return true
}

// Config parameterizes the filter.
type Config struct {
	// Levels is the number of bucket arrays (ElasticSketch software: 4;
	// FCM+TopK and all hardware variants: 1).
	Levels int
	// EntriesPerLevel is the bucket count per level.
	EntriesPerLevel int
	// Lambda is the eviction vote ratio λ (default 8).
	Lambda int
	// KeySize is the flow-key byte length for memory accounting
	// (default 4).
	KeySize int
	// NoEviction selects the Tofino-feasible variant: buckets never
	// evict; colliding packets bypass straight to the light part.
	NoEviction bool
	// Hash supplies per-level hash functions; nil selects BobHash.
	Hash hashing.Family
}

// Filter is a Top-K heavy-flow filter.
type Filter struct {
	levels  [][]entry
	hashers []hashing.Hasher
	lambda  uint64
	keySize int
	noEvict bool

	// residKey is the buffer backing the residual key returned by Update.
	residKey [13]byte
}

// New builds a filter.
func New(cfg Config) (*Filter, error) {
	if cfg.Levels <= 0 {
		return nil, fmt.Errorf("topk: Levels must be positive, got %d", cfg.Levels)
	}
	if cfg.EntriesPerLevel <= 0 {
		return nil, fmt.Errorf("topk: EntriesPerLevel must be positive, got %d", cfg.EntriesPerLevel)
	}
	lambda := cfg.Lambda
	if lambda <= 0 {
		lambda = 8
	}
	ks := cfg.KeySize
	if ks == 0 {
		ks = 4
	}
	if ks > 13 {
		return nil, fmt.Errorf("topk: KeySize %d exceeds 13", ks)
	}
	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0x70b4b1e)
	}
	f := &Filter{lambda: uint64(lambda), keySize: ks, noEvict: cfg.NoEviction}
	for i := 0; i < cfg.Levels; i++ {
		f.levels = append(f.levels, make([]entry, cfg.EntriesPerLevel))
		f.hashers = append(f.hashers, fam.New(i))
	}
	return f, nil
}

// Update processes one arrival. The returned residual (key, count) must be
// added to the light part by the caller; count 0 means the filter absorbed
// the arrival. The residual key slice is only valid until the next call.
func (f *Filter) Update(key []byte, inc uint64) ([]byte, uint64) {
	return f.insert(0, key, inc, false)
}

// insert places (key, inc) at the given level, cascading evictions.
func (f *Filter) insert(level int, key []byte, inc uint64, fromEviction bool) ([]byte, uint64) {
	if level >= len(f.levels) {
		return key, inc
	}
	i := hashing.Reduce(f.hashers[level].Hash(key), len(f.levels[level]))
	e := &f.levels[level][i]
	switch {
	case e.matches(key):
		e.pos += inc
		return nil, 0
	case e.klen == 0:
		copy(e.key[:], key)
		e.klen = uint8(len(key))
		e.pos = inc
		e.neg = 0
		e.flag = fromEviction
		return nil, 0
	case f.noEvict:
		// Hardware variant: resident keeps the bucket; bypass.
		return key, inc
	}
	e.neg += inc
	if e.neg < f.lambda*e.pos {
		// Vote failed: the arrival goes to the light part.
		return key, inc
	}
	// Ostracism: evict the resident into the next level (or the light
	// part from the last level) and install the newcomer. The newcomer's
	// earlier packets live in the light part, so it is flagged.
	var evKey [13]byte
	evLen := e.klen
	copy(evKey[:], e.key[:e.klen])
	evCount := e.pos
	copy(e.key[:], key)
	e.klen = uint8(len(key))
	e.pos = inc
	e.neg = 1
	e.flag = true
	rk, rc := f.insert(level+1, evKey[:evLen], evCount, true)
	if rc != 0 {
		copy(f.residKey[:], rk)
		return f.residKey[:len(rk)], rc
	}
	return nil, 0
}

// Lookup returns the filter's count for key, whether the key is resident,
// and whether its flag is set (earlier packets may be in the light part).
func (f *Filter) Lookup(key []byte) (count uint64, found, flagged bool) {
	for lvl, buckets := range f.levels {
		i := hashing.Reduce(f.hashers[lvl].Hash(key), len(buckets))
		e := &buckets[i]
		if e.matches(key) {
			return e.pos, true, e.flag
		}
	}
	return 0, false, false
}

// Entries calls fn for every resident flow.
func (f *Filter) Entries(fn func(key []byte, count uint64, flagged bool)) {
	for lvl := range f.levels {
		for i := range f.levels[lvl] {
			e := &f.levels[lvl][i]
			if e.klen > 0 {
				fn(e.key[:e.klen], e.pos, e.flag)
			}
		}
	}
}

// Len returns the number of resident flows.
func (f *Filter) Len() int {
	n := 0
	for lvl := range f.levels {
		for i := range f.levels[lvl] {
			if f.levels[lvl][i].klen > 0 {
				n++
			}
		}
	}
	return n
}

// MemoryBytes implements sketch.Sized: each bucket costs key + vote+ +
// vote− + flag = KeySize + 9 bytes.
func (f *Filter) MemoryBytes() int {
	n := 0
	for _, l := range f.levels {
		n += len(l)
	}
	return n * (f.keySize + 9)
}

// BucketBytes returns the per-bucket cost used by MemoryBytes, so callers
// can size a filter for a byte budget.
func BucketBytes(keySize int) int {
	if keySize == 0 {
		keySize = 4
	}
	return keySize + 9
}

// Reset implements sketch.Resettable.
func (f *Filter) Reset() {
	for lvl := range f.levels {
		for i := range f.levels[lvl] {
			f.levels[lvl][i] = entry{}
		}
	}
}
