package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	for _, nanos := range []bool{false, true} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, LinkEthernet, 65535, nanos)
		if err != nil {
			t.Fatal(err)
		}
		type pkt struct {
			ts   int64
			orig int
			data []byte
		}
		pkts := []pkt{
			{1_500_000_000_000_000_000, 64, []byte{1, 2, 3, 4}},
			{1_500_000_000_123_456_000, 1500, bytes.Repeat([]byte{0xab}, 128)},
			{1_500_000_001_000_000_789, 40, []byte{}},
		}
		for _, p := range pkts {
			if err := w.Write(p.ts, p.orig, p.data); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if r.Header().LinkType != LinkEthernet {
			t.Errorf("link type %d", r.Header().LinkType)
		}
		if r.Header().Nanos != nanos {
			t.Errorf("nanos flag %v want %v", r.Header().Nanos, nanos)
		}
		for i, p := range pkts {
			rec, err := r.Next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			wantTS := p.ts
			if !nanos {
				wantTS = wantTS / 1e3 * 1e3 // microsecond truncation
			}
			if rec.TS != wantTS {
				t.Errorf("record %d: ts %d want %d", i, rec.TS, wantTS)
			}
			if int(rec.OrigLen) != p.orig {
				t.Errorf("record %d: origlen %d want %d", i, rec.OrigLen, p.orig)
			}
			if !bytes.Equal(rec.Data, p.data) {
				t.Errorf("record %d: data mismatch", i)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Errorf("expected EOF, got %v", err)
		}
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian microsecond file with one record.
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], MagicMicros)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkRaw)
	buf.Write(hdr[:])
	var rh [16]byte
	binary.BigEndian.PutUint32(rh[0:4], 100)  // sec
	binary.BigEndian.PutUint32(rh[4:8], 7)    // usec
	binary.BigEndian.PutUint32(rh[8:12], 3)   // caplen
	binary.BigEndian.PutUint32(rh[12:16], 60) // origlen
	buf.Write(rh[:])
	buf.Write([]byte{9, 8, 7})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().LinkType != LinkRaw {
		t.Errorf("linktype %d", r.Header().LinkType)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.TS != 100*1e9+7*1e3 {
		t.Errorf("ts %d", rec.TS)
	}
	if rec.OrigLen != 60 || !bytes.Equal(rec.Data, []byte{9, 8, 7}) {
		t.Errorf("record %+v", rec)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBuffer(make([]byte, 24))
	if _, err := NewReader(buf); err != ErrBadMagic {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xd4, 0xc3})
	if _, err := NewReader(buf); err == nil {
		t.Error("expected error for truncated header")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkEthernet, 65535, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(0, 100, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Cut the stream mid-record.
	cut := buf.Bytes()[:24+16+10]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("expected error reading truncated record body")
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkEthernet, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{1}, 100)
	if err := w.Write(0, 100, data); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 16 || rec.OrigLen != 100 {
		t.Errorf("caplen %d origlen %d", len(rec.Data), rec.OrigLen)
	}
}

func TestRetain(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkEthernet, 65535, false)
	w.Write(0, 1, []byte{1})
	w.Write(0, 1, []byte{2})
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r.Retain()
	a, _ := r.Next()
	b, _ := r.Next()
	if a.Data[0] != 1 || b.Data[0] != 2 {
		t.Errorf("retained buffers overwritten: %v %v", a.Data, b.Data)
	}
}

func TestFileHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.pcap")
	w, closeFn, err := CreateFile(path, LinkRaw, 262144, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(42, 3, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	r, c, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.TS != 42 || !bytes.Equal(rec.Data, []byte{1, 2, 3}) {
		t.Errorf("record %+v", rec)
	}
	if _, _, err := OpenFile(filepath.Join(t.TempDir(), "missing.pcap")); err == nil {
		t.Error("expected error for missing file")
	}
	if !os.IsNotExist(err) && err != nil {
		t.Logf("open error (ok): %v", err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(tsRaw uint32, data []byte) bool {
		ts := int64(tsRaw) * 1e3 // microsecond-aligned, in range
		var buf bytes.Buffer
		w, err := NewWriter(&buf, LinkEthernet, 65535, false)
		if err != nil {
			return false
		}
		if err := w.Write(ts, len(data), data); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		rec, err := r.Next()
		if err != nil {
			return false
		}
		return rec.TS == ts && bytes.Equal(rec.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
