// Package pcap reads and writes classic libpcap capture files without any
// external dependency. It understands both byte orders and both the
// microsecond (0xa1b2c3d4) and nanosecond (0xa1b23c4d) timestamp magics,
// which covers the CAIDA trace format the FCM paper evaluates on.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Magic numbers for the classic pcap format.
const (
	MagicMicros = 0xa1b2c3d4
	MagicNanos  = 0xa1b23c4d
)

// LinkType values (subset relevant to IP traces).
const (
	// LinkEthernet is DLT_EN10MB.
	LinkEthernet = 1
	// LinkRaw is DLT_RAW: packets start directly at the IP header, the
	// format CAIDA anonymized traces use.
	LinkRaw = 101
)

// Header is the per-file pcap global header.
type Header struct {
	// Nanos is true when timestamps carry nanosecond resolution.
	Nanos bool
	// VersionMajor and VersionMinor are the pcap format version (2.4).
	VersionMajor, VersionMinor uint16
	// SnapLen is the per-packet capture limit.
	SnapLen uint32
	// LinkType identifies the layer-2 framing.
	LinkType uint32
}

// Record is one captured packet record.
type Record struct {
	// TS is the capture time in nanoseconds since the Unix epoch.
	TS int64
	// OrigLen is the packet's original wire length.
	OrigLen uint32
	// Data is the captured bytes (possibly truncated to SnapLen).
	Data []byte
}

// ErrBadMagic indicates the file does not start with a known pcap magic.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Reader decodes a pcap stream record by record.
type Reader struct {
	r     *bufio.Reader
	order binary.ByteOrder
	hdr   Header
	buf   []byte
	// rh is the record-header scratch buffer. It lives on the Reader
	// (already heap-resident) because a stack [16]byte would escape into
	// io.ReadFull's interface argument and cost one allocation per record.
	rh [16]byte
	// reuse controls whether Next may return a buffer that is overwritten
	// by the following Next call. It is on by default for speed; callers
	// that retain packet bytes should call Retain.
	reuse bool
}

// NewReader parses the global header from r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var raw [24]byte
	if _, err := io.ReadFull(br, raw[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	var order binary.ByteOrder
	var nanos bool
	switch binary.LittleEndian.Uint32(raw[0:4]) {
	case MagicMicros:
		order = binary.LittleEndian
	case MagicNanos:
		order, nanos = binary.LittleEndian, true
	default:
		switch binary.BigEndian.Uint32(raw[0:4]) {
		case MagicMicros:
			order = binary.BigEndian
		case MagicNanos:
			order, nanos = binary.BigEndian, true
		default:
			return nil, ErrBadMagic
		}
	}
	rd := &Reader{r: br, order: order, reuse: true}
	rd.hdr = Header{
		Nanos:        nanos,
		VersionMajor: order.Uint16(raw[4:6]),
		VersionMinor: order.Uint16(raw[6:8]),
		SnapLen:      order.Uint32(raw[16:20]),
		LinkType:     order.Uint32(raw[20:24]),
	}
	return rd, nil
}

// Header returns the decoded global header.
func (r *Reader) Header() Header { return r.hdr }

// Retain disables buffer reuse: every Record.Data returned after this call
// is a fresh allocation the caller may keep.
func (r *Reader) Retain() { r.reuse = false }

// Next returns the next record, or io.EOF at the end of the stream. Unless
// Retain was called, the returned Data is only valid until the next call.
func (r *Reader) Next() (Record, error) {
	if _, err := io.ReadFull(r.r, r.rh[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := r.order.Uint32(r.rh[0:4])
	frac := r.order.Uint32(r.rh[4:8])
	capLen := r.order.Uint32(r.rh[8:12])
	origLen := r.order.Uint32(r.rh[12:16])
	// Bound the allocation by the declared snap length; a header with
	// SnapLen 0 or an absurd one (crafted or corrupt files) gets a sane
	// cap — real captures snap at 65535, modern tcpdump at 262144 — so a
	// forged record length cannot demand gigabytes.
	lim := r.hdr.SnapLen
	if lim == 0 || lim > 1<<20 {
		lim = 1 << 20
	}
	if capLen > lim+65535 {
		return Record{}, fmt.Errorf("pcap: implausible capture length %d", capLen)
	}
	var data []byte
	if r.reuse {
		if cap(r.buf) < int(capLen) {
			// Round up so mixed frame sizes settle on one buffer after a
			// few growths instead of reallocating per larger packet.
			n := 2048
			for n < int(capLen) {
				n *= 2
			}
			r.buf = make([]byte, n)
		}
		data = r.buf[:capLen]
	} else {
		data = make([]byte, capLen)
	}
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: reading %d packet bytes: %w", capLen, err)
	}
	ts := int64(sec) * 1e9
	if r.hdr.Nanos {
		ts += int64(frac)
	} else {
		ts += int64(frac) * 1e3
	}
	return Record{TS: ts, OrigLen: origLen, Data: data}, nil
}

// Writer encodes pcap records. It always writes little-endian files.
type Writer struct {
	w     *bufio.Writer
	nanos bool
	snap  uint32
}

// NewWriter writes a global header to w and returns a Writer. linkType is
// typically LinkEthernet or LinkRaw; nanos selects nanosecond timestamps.
func NewWriter(w io.Writer, linkType uint32, snapLen uint32, nanos bool) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [24]byte
	magic := uint32(MagicMicros)
	if nanos {
		magic = MagicNanos
	}
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2)
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], linkType)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	return &Writer{w: bw, nanos: nanos, snap: snapLen}, nil
}

// Write appends one record. Data longer than the snap length is truncated;
// origLen records the wire length.
func (w *Writer) Write(tsNanos int64, origLen int, data []byte) error {
	if w.snap > 0 && len(data) > int(w.snap) {
		data = data[:w.snap]
	}
	var rh [16]byte
	sec := tsNanos / 1e9
	frac := tsNanos % 1e9
	if !w.nanos {
		frac /= 1e3
	}
	binary.LittleEndian.PutUint32(rh[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(rh[4:8], uint32(frac))
	binary.LittleEndian.PutUint32(rh[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(rh[12:16], uint32(origLen))
	if _, err := w.w.Write(rh[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// OpenFile opens path and returns a Reader plus a closer for the file.
func OpenFile(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

// CreateFile creates path and returns a Writer plus a flush-and-close
// function.
func CreateFile(path string, linkType uint32, snapLen uint32, nanos bool) (*Writer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w, err := NewWriter(f, linkType, snapLen, nanos)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	closeFn := func() error {
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return w, closeFn, nil
}
