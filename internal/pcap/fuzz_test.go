package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzReader checks the reader never panics or over-allocates on arbitrary
// byte streams.
func FuzzReader(f *testing.F) {
	// Seed with a valid one-record little-endian file.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkEthernet, 65535, false)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Write(1, 4, []byte{1, 2, 3, 4}); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// A big-endian header.
	var be [24]byte
	binary.BigEndian.PutUint32(be[0:4], MagicNanos)
	f.Add(be[:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					return
				}
				break
			}
		}
	})
}
