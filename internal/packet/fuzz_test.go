package packet

import "testing"

// FuzzParseEthernet checks the L2–L4 parser never panics on arbitrary
// frames and that successfully parsed frames re-encode parseably.
func FuzzParseEthernet(f *testing.F) {
	f.Add(EncodeEthernetIPv4(FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 1234, DstPort: 80, Proto: ProtoTCP,
	}, 8))
	f.Add([]byte{})
	f.Add(make([]byte, 14))
	f.Add(make([]byte, 60))

	f.Fuzz(func(t *testing.T, frame []byte) {
		tu, err := ParseEthernet(frame)
		if err != nil {
			return
		}
		// A parsed TCP/UDP tuple must survive a re-encode round trip.
		if tu.Proto == ProtoTCP || tu.Proto == ProtoUDP {
			again, err := ParseEthernet(EncodeEthernetIPv4(tu, 0))
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if again != tu {
				t.Fatalf("round trip mismatch: %+v vs %+v", again, tu)
			}
		}
	})
}

// FuzzParseIPv4 covers the bare IPv4 entry point.
func FuzzParseIPv4(f *testing.F) {
	f.Add(make([]byte, 20))
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, b []byte) {
		ParseIPv4(b) //nolint:errcheck // looking for panics only
		ParseIPv6(b) //nolint:errcheck
	})
}
