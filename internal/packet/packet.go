// Package packet defines flow keys and the link/network/transport header
// parsing and encoding needed to ingest pcap traces. The FCM paper keys
// flows by source IP (§7.2); the package also supports the full 5-tuple for
// applications that need finer classification.
package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Proto identifies a transport protocol by its IP protocol number.
type Proto uint8

// Common IP protocol numbers.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// FiveTuple is the classic flow 5-tuple. Addresses are stored as 4-byte
// IPv4 values; IPv6 addresses are folded to their low 4 bytes when building
// a FiveTuple from a parsed packet (the traces used in the paper are IPv4).
type FiveTuple struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Proto   Proto
}

// String implements fmt.Stringer.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%s",
		netip.AddrFrom4(t.SrcIP), t.SrcPort, netip.AddrFrom4(t.DstIP), t.DstPort, t.Proto)
}

// KeyKind selects how a packet is mapped to a flow key.
type KeyKind int

// Supported flow-key granularities.
const (
	// KeySrcIP keys flows by the 4-byte source IP — the paper's default.
	KeySrcIP KeyKind = iota
	// KeyDstIP keys flows by destination IP.
	KeyDstIP
	// KeySrcDst keys flows by the (src, dst) pair.
	KeySrcDst
	// KeyFiveTuple keys flows by the full 5-tuple.
	KeyFiveTuple
)

// KeySize returns the encoded byte length of keys of this kind.
func (k KeyKind) KeySize() int {
	switch k {
	case KeySrcIP, KeyDstIP:
		return 4
	case KeySrcDst:
		return 8
	case KeyFiveTuple:
		return 13
	default:
		return 4
	}
}

// Key is an encoded flow key. Keys are comparable and usable as map keys.
// Only the first Len bytes are meaningful.
type Key struct {
	Buf [13]byte
	Len uint8
}

// Bytes returns the key's byte representation, suitable for hashing.
func (k *Key) Bytes() []byte { return k.Buf[:k.Len] }

// String implements fmt.Stringer.
func (k Key) String() string {
	switch k.Len {
	case 4:
		return netip.AddrFrom4([4]byte(k.Buf[0:4])).String()
	case 8:
		return netip.AddrFrom4([4]byte(k.Buf[0:4])).String() + "->" +
			netip.AddrFrom4([4]byte(k.Buf[4:8])).String()
	case 13:
		return fmt.Sprintf("%s:%d->%s:%d/%s",
			netip.AddrFrom4([4]byte(k.Buf[0:4])),
			binary.BigEndian.Uint16(k.Buf[8:10]),
			netip.AddrFrom4([4]byte(k.Buf[4:8])),
			binary.BigEndian.Uint16(k.Buf[10:12]),
			Proto(k.Buf[12]))
	default:
		return fmt.Sprintf("key(%x)", k.Buf[:k.Len])
	}
}

// KeyOf builds the key of the requested kind from a 5-tuple.
func KeyOf(t FiveTuple, kind KeyKind) Key {
	var k Key
	switch kind {
	case KeySrcIP:
		copy(k.Buf[0:4], t.SrcIP[:])
		k.Len = 4
	case KeyDstIP:
		copy(k.Buf[0:4], t.DstIP[:])
		k.Len = 4
	case KeySrcDst:
		copy(k.Buf[0:4], t.SrcIP[:])
		copy(k.Buf[4:8], t.DstIP[:])
		k.Len = 8
	case KeyFiveTuple:
		copy(k.Buf[0:4], t.SrcIP[:])
		copy(k.Buf[4:8], t.DstIP[:])
		binary.BigEndian.PutUint16(k.Buf[8:10], t.SrcPort)
		binary.BigEndian.PutUint16(k.Buf[10:12], t.DstPort)
		k.Buf[12] = byte(t.Proto)
		k.Len = 13
	}
	return k
}

// Packet is a decoded packet: its flow 5-tuple and wire length. The sketch
// layer counts either packets or bytes depending on configuration.
type Packet struct {
	Tuple FiveTuple
	// Len is the original (wire) length in bytes.
	Len int
	// TS is the capture timestamp in nanoseconds since the epoch.
	TS int64
}

// Key returns the packet's flow key of the given kind.
func (p *Packet) Key(kind KeyKind) Key { return KeyOf(p.Tuple, kind) }

// ---------------------------------------------------------------------------
// Header parsing
// ---------------------------------------------------------------------------

// EtherTypes understood by the parser.
const (
	etherTypeIPv4 = 0x0800
	etherTypeIPv6 = 0x86dd
	etherTypeVLAN = 0x8100
	etherHdrLen   = 14
)

// ErrTruncated is returned when a frame is too short for its headers.
type ErrTruncated struct{ Layer string }

// Error implements error.
func (e *ErrTruncated) Error() string { return "packet: truncated " + e.Layer + " header" }

// ErrUnsupported is returned for frames the parser does not understand
// (non-IP ethertypes, unknown IP versions).
type ErrUnsupported struct{ What string }

// Error implements error.
func (e *ErrUnsupported) Error() string { return "packet: unsupported " + e.What }

// ParseEthernet decodes an Ethernet II frame down to the transport layer
// and returns the flow 5-tuple. VLAN (802.1Q) tags are skipped. Port fields
// are zero for non-TCP/UDP payloads.
func ParseEthernet(frame []byte) (FiveTuple, error) {
	if len(frame) < etherHdrLen {
		return FiveTuple{}, &ErrTruncated{"ethernet"}
	}
	etherType := binary.BigEndian.Uint16(frame[12:14])
	off := etherHdrLen
	for etherType == etherTypeVLAN {
		if len(frame) < off+4 {
			return FiveTuple{}, &ErrTruncated{"vlan"}
		}
		etherType = binary.BigEndian.Uint16(frame[off+2 : off+4])
		off += 4
	}
	switch etherType {
	case etherTypeIPv4:
		return ParseIPv4(frame[off:])
	case etherTypeIPv6:
		return ParseIPv6(frame[off:])
	default:
		return FiveTuple{}, &ErrUnsupported{fmt.Sprintf("ethertype 0x%04x", etherType)}
	}
}

// ParseIPv4 decodes an IPv4 packet (starting at the IP header) into a flow
// 5-tuple.
func ParseIPv4(b []byte) (FiveTuple, error) {
	if len(b) < 20 {
		return FiveTuple{}, &ErrTruncated{"ipv4"}
	}
	if b[0]>>4 != 4 {
		return FiveTuple{}, &ErrUnsupported{"ip version"}
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		return FiveTuple{}, &ErrTruncated{"ipv4 options"}
	}
	var t FiveTuple
	t.Proto = Proto(b[9])
	copy(t.SrcIP[:], b[12:16])
	copy(t.DstIP[:], b[16:20])
	// Fragments past the first have no transport header.
	fragOff := binary.BigEndian.Uint16(b[6:8]) & 0x1fff
	if fragOff == 0 {
		fillPorts(&t, b[ihl:])
	}
	return t, nil
}

// ParseIPv6 decodes an IPv6 packet into a flow 5-tuple. The 16-byte
// addresses are folded to their low 4 bytes so the key layout matches IPv4.
// Extension headers are not traversed; packets whose next header is not
// TCP/UDP get zero ports.
func ParseIPv6(b []byte) (FiveTuple, error) {
	if len(b) < 40 {
		return FiveTuple{}, &ErrTruncated{"ipv6"}
	}
	if b[0]>>4 != 6 {
		return FiveTuple{}, &ErrUnsupported{"ip version"}
	}
	var t FiveTuple
	t.Proto = Proto(b[6])
	copy(t.SrcIP[:], b[8+12:8+16])
	copy(t.DstIP[:], b[24+12:24+16])
	fillPorts(&t, b[40:])
	return t, nil
}

// fillPorts extracts src/dst ports for TCP and UDP payloads.
func fillPorts(t *FiveTuple, l4 []byte) {
	switch t.Proto {
	case ProtoTCP, ProtoUDP:
		if len(l4) >= 4 {
			t.SrcPort = binary.BigEndian.Uint16(l4[0:2])
			t.DstPort = binary.BigEndian.Uint16(l4[2:4])
		}
	}
}

// ---------------------------------------------------------------------------
// Header encoding (used by the trace generator to emit valid pcap frames)
// ---------------------------------------------------------------------------

// EncodeEthernetIPv4 builds a minimal but well-formed Ethernet+IPv4+TCP/UDP
// frame for the given tuple with payloadLen payload bytes (zeros). The
// result parses back to the same tuple via ParseEthernet.
func EncodeEthernetIPv4(t FiveTuple, payloadLen int) []byte {
	l4len := 0
	switch t.Proto {
	case ProtoTCP:
		l4len = 20
	case ProtoUDP:
		l4len = 8
	}
	ipLen := 20 + l4len + payloadLen
	frame := make([]byte, etherHdrLen+ipLen)

	// Ethernet: locally administered MACs, IPv4 ethertype.
	copy(frame[0:6], []byte{0x02, 0, 0, 0, 0, 0x02})
	copy(frame[6:12], []byte{0x02, 0, 0, 0, 0, 0x01})
	binary.BigEndian.PutUint16(frame[12:14], etherTypeIPv4)

	ip := frame[etherHdrLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	ip[8] = 64 // TTL
	ip[9] = byte(t.Proto)
	copy(ip[12:16], t.SrcIP[:])
	copy(ip[16:20], t.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:20]))

	l4 := ip[20:]
	switch t.Proto {
	case ProtoTCP:
		binary.BigEndian.PutUint16(l4[0:2], t.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], t.DstPort)
		l4[12] = 5 << 4 // data offset
		l4[13] = 0x10   // ACK
	case ProtoUDP:
		binary.BigEndian.PutUint16(l4[0:2], t.SrcPort)
		binary.BigEndian.PutUint16(l4[2:4], t.DstPort)
		binary.BigEndian.PutUint16(l4[4:6], uint16(8+payloadLen))
	}
	return frame
}

// ipv4Checksum computes the standard Internet checksum over the header with
// the checksum field treated as zero.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ValidateIPv4Checksum reports whether the header checksum of an encoded
// IPv4 header is correct.
func ValidateIPv4Checksum(hdr []byte) bool {
	if len(hdr) < 20 {
		return false
	}
	return binary.BigEndian.Uint16(hdr[10:12]) == ipv4Checksum(hdr[:20])
}
