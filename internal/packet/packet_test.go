package packet

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func tuple() FiveTuple {
	return FiveTuple{
		SrcIP:   [4]byte{10, 0, 0, 1},
		DstIP:   [4]byte{192, 168, 1, 2},
		SrcPort: 12345,
		DstPort: 443,
		Proto:   ProtoTCP,
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	for _, proto := range []Proto{ProtoTCP, ProtoUDP, ProtoICMP} {
		tu := tuple()
		tu.Proto = proto
		if proto == ProtoICMP {
			tu.SrcPort, tu.DstPort = 0, 0
		}
		frame := EncodeEthernetIPv4(tu, 16)
		got, err := ParseEthernet(frame)
		if err != nil {
			t.Fatalf("%s: parse: %v", proto, err)
		}
		if got != tu {
			t.Errorf("%s: round trip mismatch: got %+v want %+v", proto, got, tu)
		}
	}
}

func TestEncodeParseQuick(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, udp bool, payload uint8) bool {
		tu := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: ProtoTCP}
		if udp {
			tu.Proto = ProtoUDP
		}
		frame := EncodeEthernetIPv4(tu, int(payload))
		got, err := ParseEthernet(frame)
		return err == nil && got == tu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChecksumValid(t *testing.T) {
	frame := EncodeEthernetIPv4(tuple(), 0)
	if !ValidateIPv4Checksum(frame[etherHdrLen:]) {
		t.Error("encoded IPv4 header has invalid checksum")
	}
	// Corrupt a byte: checksum must fail.
	frame[etherHdrLen+12] ^= 0xff
	if ValidateIPv4Checksum(frame[etherHdrLen:]) {
		t.Error("corrupted header still validates")
	}
}

func TestParseVLAN(t *testing.T) {
	inner := EncodeEthernetIPv4(tuple(), 0)
	// Splice a VLAN tag between the MAC addresses and the ethertype.
	frame := make([]byte, 0, len(inner)+4)
	frame = append(frame, inner[:12]...)
	frame = append(frame, 0x81, 0x00, 0x00, 0x64) // VLAN 100
	frame = append(frame, inner[12:]...)
	got, err := ParseEthernet(frame)
	if err != nil {
		t.Fatalf("parse vlan: %v", err)
	}
	if got != tuple() {
		t.Errorf("vlan round trip mismatch: %+v", got)
	}
}

func TestParseIPv6(t *testing.T) {
	b := make([]byte, 40+8)
	b[0] = 6 << 4
	b[6] = byte(ProtoUDP)
	// Low 4 bytes of the addresses become the folded key.
	copy(b[8+12:8+16], []byte{1, 2, 3, 4})
	copy(b[24+12:24+16], []byte{5, 6, 7, 8})
	binary.BigEndian.PutUint16(b[40:42], 53)
	binary.BigEndian.PutUint16(b[42:44], 5353)
	got, err := ParseIPv6(b)
	if err != nil {
		t.Fatal(err)
	}
	want := FiveTuple{SrcIP: [4]byte{1, 2, 3, 4}, DstIP: [4]byte{5, 6, 7, 8},
		SrcPort: 53, DstPort: 5353, Proto: ProtoUDP}
	if got != want {
		t.Errorf("got %+v want %+v", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"short ethernet", make([]byte, 10)},
		{"short ipv4", append(make([]byte, 12), 0x08, 0x00, 0x45)},
		{"bad ethertype", append(make([]byte, 12), 0x08, 0x06, 1, 2, 3, 4, 5, 6, 7, 8)},
	}
	for _, c := range cases {
		if _, err := ParseEthernet(c.frame); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Wrong IP version inside an IPv4 ethertype.
	frame := EncodeEthernetIPv4(tuple(), 0)
	frame[etherHdrLen] = 0x65
	if _, err := ParseEthernet(frame); err == nil {
		t.Error("wrong ip version: expected error")
	}
}

func TestParseIPv4Options(t *testing.T) {
	// Build a header with IHL=6 (one 4-byte option word).
	tu := tuple()
	base := EncodeEthernetIPv4(tu, 0)[etherHdrLen:]
	withOpts := make([]byte, len(base)+4)
	copy(withOpts, base[:20])
	withOpts[0] = 0x46 // IHL 6
	// options: 4 NOPs
	copy(withOpts[20:24], []byte{1, 1, 1, 1})
	copy(withOpts[24:], base[20:])
	got, err := ParseIPv4(withOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got != tu {
		t.Errorf("options parse mismatch: %+v", got)
	}
}

func TestFragmentHasNoPorts(t *testing.T) {
	tu := tuple()
	frame := EncodeEthernetIPv4(tu, 0)
	ip := frame[etherHdrLen:]
	binary.BigEndian.PutUint16(ip[6:8], 100) // fragment offset 100
	got, err := ParseEthernet(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 0 || got.DstPort != 0 {
		t.Errorf("non-first fragment should have zero ports, got %+v", got)
	}
}

func TestKeyOf(t *testing.T) {
	tu := tuple()
	cases := []struct {
		kind KeyKind
		len  uint8
	}{
		{KeySrcIP, 4}, {KeyDstIP, 4}, {KeySrcDst, 8}, {KeyFiveTuple, 13},
	}
	for _, c := range cases {
		k := KeyOf(tu, c.kind)
		if k.Len != c.len {
			t.Errorf("kind %d: len %d want %d", c.kind, k.Len, c.len)
		}
		if int(c.len) != c.kind.KeySize() {
			t.Errorf("kind %d: KeySize %d disagrees with key len %d", c.kind, c.kind.KeySize(), c.len)
		}
	}
	if k := KeyOf(tu, KeySrcIP); k.Buf[0] != 10 || k.Buf[3] != 1 {
		t.Errorf("srcip key wrong: %v", k.Buf[:4])
	}
	if k := KeyOf(tu, KeyDstIP); k.Buf[0] != 192 {
		t.Errorf("dstip key wrong: %v", k.Buf[:4])
	}
}

func TestKeyComparable(t *testing.T) {
	a := KeyOf(tuple(), KeyFiveTuple)
	b := KeyOf(tuple(), KeyFiveTuple)
	if a != b {
		t.Error("identical tuples produce unequal keys")
	}
	m := map[Key]int{a: 1}
	if m[b] != 1 {
		t.Error("key not usable as map key")
	}
	tu2 := tuple()
	tu2.SrcPort++
	if KeyOf(tu2, KeyFiveTuple) == a {
		t.Error("different tuples produce equal 5-tuple keys")
	}
	if KeyOf(tu2, KeySrcIP) != KeyOf(tuple(), KeySrcIP) {
		t.Error("srcIP key should ignore ports")
	}
}

func TestKeyString(t *testing.T) {
	tu := tuple()
	if got := KeyOf(tu, KeySrcIP).String(); got != "10.0.0.1" {
		t.Errorf("srcip string = %q", got)
	}
	if got := KeyOf(tu, KeyFiveTuple).String(); got != "10.0.0.1:12345->192.168.1.2:443/tcp" {
		t.Errorf("5-tuple string = %q", got)
	}
	if got := (FiveTuple{SrcIP: [4]byte{1, 1, 1, 1}, Proto: 89}).String(); got == "" {
		t.Error("empty tuple string")
	}
}

func BenchmarkParseEthernet(b *testing.B) {
	frame := EncodeEthernetIPv4(tuple(), 64)
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if _, err := ParseEthernet(frame); err != nil {
			b.Fatal(err)
		}
	}
}
