package difftest

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/packet"
	"github.com/fcmsketch/fcm/internal/trace"
)

// FuzzSketchOps state-machine-fuzzes the ingest surface: the input is a
// program over Update/UpdateBatch/Snapshot/Rotate/Merge/Reset/Estimate,
// interpreted in lockstep against a serial sketch, a sharded sketch and an
// exact oracle. See RunSketchOps for the opcode table.
func FuzzSketchOps(f *testing.F) {
	for _, seed := range sketchOpsSeedPrograms() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 4096 {
			return
		}
		if err := RunSketchOps(program); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzWindowOps state-machine-fuzzes the temporal layer: the input is a
// program over Update/UpdateBatch/Rotate/Coarsen/audit/query, interpreted
// in lockstep against per-window serial reference sketches (scalar-merge
// folds) and per-window exact oracles. See RunWindowOps for the opcode
// table. Its seed corpus is pinned by TestWindowSeedCorpus.
func FuzzWindowOps(f *testing.F) {
	for _, seed := range windowOpsSeedPrograms() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 2048 {
			return
		}
		if err := RunWindowOps(program); err != nil {
			t.Fatal(err)
		}
	})
}

// fuzzPcapGeometry is the tiny fixed geometry both pcap ingest paths use;
// constant so every corpus entry reproduces byte-identical placement.
var fuzzPcapGeometry = Geometry{K: 2, Trees: 2, Widths: []int{2, 4, 8}, LeafWidth: 8, Seed: 9}

// FuzzPcapIngest differentially fuzzes the two pcap ingest paths: the
// streaming ReplayPcap (reused frame buffer, zero-alloc) versus
// ReadPcap-then-Replay (materialized trace). For any byte string the two
// must agree on error/success, packet and skip counts, and — on success —
// produce bit-identical sketches.
func FuzzPcapIngest(f *testing.F) {
	for _, seed := range pcapSeedInputs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		stream, err := fuzzPcapGeometry.NewCore()
		if err != nil {
			t.Fatal(err)
		}
		pkts, skipped, errStream := trace.ReplayPcap(bytes.NewReader(data), packet.KeySrcIP, stream)
		tr, skipped2, errRead := trace.ReadPcap(bytes.NewReader(data), packet.KeySrcIP)
		if (errStream == nil) != (errRead == nil) {
			t.Fatalf("paths disagree on validity: stream err=%v, read err=%v", errStream, errRead)
		}
		if errStream != nil {
			return
		}
		if pkts != tr.NumPackets() || skipped != skipped2 {
			t.Fatalf("paths disagree on counts: stream (%d pkts, %d skipped) vs read (%d pkts, %d skipped)",
				pkts, skipped, tr.NumPackets(), skipped2)
		}
		loaded, err := fuzzPcapGeometry.NewCore()
		if err != nil {
			t.Fatal(err)
		}
		tr.Replay(loaded)
		if d := stream.FirstRegisterDiff(loaded); d != "" {
			t.Fatalf("streaming and materialized ingest diverged: %s", d)
		}
	})
}

// FuzzEMInput fuzzes the EM estimator with arbitrary virtual-counter
// arrays — the shape a controller decodes off the wire. Whatever the
// input, em.Run must return an error or a finite, non-negative
// distribution; it must never panic or allocate proportionally to a forged
// counter value (the MaxSpan guard).
func FuzzEMInput(f *testing.F) {
	for _, seed := range emSeedInputs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 2048 {
			return
		}
		cfg, vcs := parseEMInput(data)
		if len(vcs) == 0 {
			return
		}
		res, err := em.Run(cfg, [][]core.VirtualCounter{vcs})
		if err != nil {
			return
		}
		if math.IsNaN(res.N) || math.IsInf(res.N, 0) || res.N < 0 {
			t.Fatalf("estimated flow count is degenerate: %v", res.N)
		}
		for j, v := range res.Dist {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("dist[%d] is degenerate: %v", j, v)
			}
		}
	})
}

// parseEMInput decodes a fuzz input into an EM config and one tree of
// virtual counters. Values are masked under 2^16 so the distribution array
// stays small, except when the input's control bit asks to exercise the
// MaxSpan rejection path with a huge forged value.
func parseEMInput(data []byte) (em.Config, []core.VirtualCounter) {
	if len(data) < 2 {
		return em.Config{}, nil
	}
	ctl := data[0]
	cfg := em.Config{
		W1:         1 << (1 + int(data[1])%10), // 2..1024 leaves
		Theta1:     uint64(ctl % 8),
		Iterations: 2,
		Workers:    1,
	}
	data = data[2:]
	var vcs []core.VirtualCounter
	for len(data) >= 4 && len(vcs) < 256 {
		deg := 1 + int(data[0])%16
		val := uint64(binary.BigEndian.Uint16(data[1:3]))
		if ctl&0x80 != 0 && data[3]&1 != 0 {
			// Forged counter far past MaxSpan: Run must reject it before
			// sizing anything off it.
			val |= 1 << 40
		}
		vcs = append(vcs, core.VirtualCounter{Value: val, Degree: deg, Level: 1})
		data = data[4:]
	}
	return cfg, vcs
}
