package difftest

import (
	"encoding/binary"
	"math/rand"

	"github.com/fcmsketch/fcm/internal/trace"
)

// Distribution selects how a random workload spreads packets over flows.
// The harness sweeps all of them: a differential bug in the carry path only
// surfaces when counters actually overflow, which uniform traffic over a
// large key space may never cause.
type Distribution int

// Supported workload distributions.
const (
	// DistUniform draws each packet's flow uniformly from the flow set.
	DistUniform Distribution = iota
	// DistZipf draws flows rank-Zipf (a few elephants, many mice) — the
	// paper's traffic model, via internal/trace's generator.
	DistZipf
	// DistHot hammers a handful of flows with almost all packets, forcing
	// promotion through every stage up to root saturation.
	DistHot
)

// distributions is the sweep order; Workload indexes it by trial.
var distributions = []Distribution{DistUniform, DistZipf, DistHot}

// Workload is one deterministic packet stream: keys in arrival order, every
// packet incrementing by 1. Keys alias a single backing table, so replays
// through any path are allocation-free and byte-identical.
type Workload struct {
	Keys [][]byte
}

// NumPackets returns the stream length.
func (w *Workload) NumPackets() int { return len(w.Keys) }

// Split deals the stream round-robin into n sub-streams whose concatenation
// (in any interleaving) is packet-equivalent to the original — the shape
// shard and merge invariants consume.
func (w *Workload) Split(n int) []*Workload {
	if n <= 1 {
		return []*Workload{w}
	}
	parts := make([]*Workload, n)
	for i := range parts {
		parts[i] = &Workload{}
	}
	for i, k := range w.Keys {
		p := parts[i%n]
		p.Keys = append(p.Keys, k)
	}
	return parts
}

// Windows cuts the stream into n consecutive windows (for rotate
// linearity).
func (w *Workload) Windows(n int) []*Workload {
	if n <= 1 {
		return []*Workload{w}
	}
	out := make([]*Workload, 0, n)
	per := len(w.Keys) / n
	for i := 0; i < n; i++ {
		lo, hi := i*per, (i+1)*per
		if i == n-1 {
			hi = len(w.Keys)
		}
		out = append(out, &Workload{Keys: w.Keys[lo:hi]})
	}
	return out
}

// flowKey encodes flow id f as the 4-byte big-endian key the harness uses
// everywhere (the same width as the paper's source-IP keying).
func flowKey(table []byte, f uint32) []byte {
	off := int(f) * 4
	binary.BigEndian.PutUint32(table[off:off+4], f^0xa5a5a5a5)
	return table[off : off+4 : off+4]
}

// RandomWorkload draws a deterministic workload from seed: the distribution,
// flow count and packet count all derive from it. Streams are sized so a
// full equivalence trial (seven paths) stays in the low milliseconds while
// still overflowing small geometries.
func RandomWorkload(seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	dist := distributions[rng.Intn(len(distributions))]
	flows := 16 + rng.Intn(241)     // 16..256 flows
	packets := 200 + rng.Intn(1801) // 200..2000 packets
	return GenerateWorkload(rng, dist, flows, packets)
}

// GenerateWorkload materializes a workload with the given shape. The rng
// carries all randomness, so equal rng states yield equal streams.
func GenerateWorkload(rng *rand.Rand, dist Distribution, flows, packets int) *Workload {
	if flows < 1 {
		flows = 1
	}
	table := make([]byte, flows*4)
	keys := make([][]byte, 0, packets)
	switch dist {
	case DistZipf:
		tr, err := trace.Generate(trace.Config{
			Model:        trace.ModelRankZipf,
			Alpha:        1.0,
			TotalPackets: packets,
			AvgFlowSize:  float64(packets)/float64(flows) + 1,
			Seed:         rng.Int63(),
			Shuffle:      true,
		})
		if err != nil {
			// Parameters above are always valid; a failure here is a
			// harness bug, not a trial outcome.
			panic("difftest: trace generation failed: " + err.Error())
		}
		w := &Workload{}
		tr.ForEachPacket(func(_ int, key []byte) {
			w.Keys = append(w.Keys, key)
		})
		return w
	case DistHot:
		hot := 1 + rng.Intn(4)
		for i := 0; i < packets; i++ {
			var f uint32
			if rng.Intn(20) == 0 {
				f = uint32(rng.Intn(flows))
			} else {
				f = uint32(rng.Intn(hot))
			}
			keys = append(keys, flowKey(table, f))
		}
	default: // DistUniform
		for i := 0; i < packets; i++ {
			keys = append(keys, flowKey(table, uint32(rng.Intn(flows))))
		}
	}
	return &Workload{Keys: keys}
}
