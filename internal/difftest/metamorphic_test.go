package difftest

import (
	"net"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/faultnet"
)

// TestMergeCommutativeAssociative checks merge algebra over random
// geometries and workload pairs/triples: A∪B == B∪A == serial(A++B) and
// (A∪B)∪C == A∪(B∪C), all bit-for-bit.
func TestMergeCommutativeAssociative(t *testing.T) {
	t.Parallel()
	trials(t, 0x3e76e001, 60, func(t *testing.T, seed int64) {
		g := RandomGeometry(newRng(seed))
		a := RandomWorkload(DeriveSeed(seed, 1))
		b := RandomWorkload(DeriveSeed(seed, 2))
		c := RandomWorkload(DeriveSeed(seed, 3))
		if err := CheckMergeCommutative(g, a, b); err != nil {
			t.Fatalf("geometry %s: %v", g, err)
		}
		if err := CheckMergeAssociative(g, a, b, c); err != nil {
			t.Fatalf("geometry %s: %v", g, err)
		}
	})
}

// TestShardMergeEqualsSerialAnyPartition checks that any partition of the
// stream over any shard count collapses back to the serial sketch — the
// invariant the distributed-collection story rests on.
func TestShardMergeEqualsSerialAnyPartition(t *testing.T) {
	t.Parallel()
	trials(t, 0x5a4dbeef, 60, func(t *testing.T, seed int64) {
		g := RandomGeometry(newRng(seed))
		w := RandomWorkload(DeriveSeed(seed, 1))
		ref, err := Serial(g, w)
		if err != nil {
			t.Fatal(err)
		}
		parts := w.Split(1 + int(uint64(seed)%9))
		merged, err := Serial(g, parts[0])
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parts[1:] {
			s, err := Serial(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := merged.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := requireEqual("partition merge", ref, merged); err != nil {
			t.Fatalf("geometry %s, %d parts: %v", g, len(parts), err)
		}
	})
}

// TestCodecRoundTripRandomGeometry checks snapshot → encode → decode →
// restore is the identity on register state for random geometries in both
// hash modes, not just the fixed matrix CheckAll sweeps.
func TestCodecRoundTripRandomGeometry(t *testing.T) {
	t.Parallel()
	trials(t, 0xc0dec001, 60, func(t *testing.T, seed int64) {
		g := RandomGeometry(newRng(seed))
		w := RandomWorkload(DeriveSeed(seed, 1))
		ref, err := Serial(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckCodecRoundTrip(g, ref); err != nil {
			t.Fatalf("geometry %s: %v", g, err)
		}
	})
}

// TestCollectionUnderFaultsBitExact runs the full collection loop —
// snapshot server behind a seeded fault injector, retrying client — and
// asserts the sketch that survives refusals, mid-frame resets, bit flips
// and short writes is bit-identical to the one the server held. The CRC
// trailer must reject every corrupted frame; a corrupt snapshot that
// decodes cleanly is a harness failure, not bad luck.
func TestCollectionUnderFaultsBitExact(t *testing.T) {
	t.Parallel()
	trials(t, 0xfa01f001, 8, func(t *testing.T, seed int64) {
		g := Geometries()[int(uint64(seed)>>8)%len(Geometries())]
		w := RandomWorkload(DeriveSeed(seed, 1))
		ref, err := Serial(g, w)
		if err != nil {
			t.Fatal(err)
		}

		inj := faultnet.New(faultnet.Config{
			Seed:          seed,
			RefuseProb:    0.2,
			ResetProb:     0.25,
			CorruptProb:   0.25,
			ResetAfterMax: 256,
			MaxWriteChunk: 7,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := collect.Serve(faultnet.Listen(ln, inj), collect.NewLockedSketch(ref), collect.ServerConfig{
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
			IdleTimeout:  2 * time.Second,
		})
		defer srv.Close()

		cl, err := collect.NewClient(collect.ClientConfig{
			Addr:        srv.Addr(),
			MaxRetries:  200,
			IOTimeout:   2 * time.Second,
			BackoffBase: 200 * time.Microsecond,
			BackoffMax:  2 * time.Millisecond,
			JitterSeed:  seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()

		snap, err := cl.ReadSketch()
		if err != nil {
			t.Fatalf("collection never recovered (injector stats %+v): %v", inj.Stats(), err)
		}
		restored, err := snap.Restore(g.CoreConfig().Hash)
		if err != nil {
			t.Fatal(err)
		}
		if err := requireEqual("collected snapshot", ref, restored); err != nil {
			t.Fatalf("injector stats %+v: %v", inj.Stats(), err)
		}
	})
}
