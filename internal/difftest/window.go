package difftest

import (
	"fmt"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/window"
)

// Windowed invariants. The headline claim of the temporal layer is that
// FCM's exact merge (§5) makes over-time composition lossless: any
// over-time query against the ring must equal the same query against a
// serial ingest of the concatenated covering windows — bit-exact, not
// approximately. Coverage reports exactly which windows a fold ceil'd to,
// so the reference is reconstructed from the ring's own answer and the
// invariant stays honest under exponential-histogram coarsening.

// newRing builds an owned-mode ring for this geometry. The clock is a
// deterministic fake so trials never depend on wall time.
func newRing(g Geometry, shards, spanCap, maxWindows int) (*window.Ring, error) {
	return window.New(window.Config{
		Sketch:         g.FCMConfig(),
		Shards:         shards,
		SpanCap:        spanCap,
		MaxWindows:     maxWindows,
		BucketDuration: time.Second,
		Now:            fakeClock(),
	})
}

// fakeClock returns a deterministic monotonic clock: every call advances
// one second from a fixed epoch.
func fakeClock() func() time.Time {
	t := time.Unix(1_700_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

// serialWindows ingests windows[from..to] (1-based generation ordinals,
// inclusive) serially into one sketch — the reference for a fold whose
// Coverage reports that generation range.
func serialWindows(g Geometry, parts []*Workload, from, to uint64) (*core.Sketch, error) {
	s, err := g.NewCore()
	if err != nil {
		return nil, err
	}
	for gen := from; gen <= to; gen++ {
		if gen == 0 || int(gen) > len(parts) {
			return nil, fmt.Errorf("coverage generation %d outside 1..%d", gen, len(parts))
		}
		for _, k := range parts[gen-1].Keys {
			s.Update(k, 1)
		}
	}
	return s, nil
}

// ringOf cuts w into n windows and ingests them through a ring, rotating
// after each, returning the ring and the window partition.
func ringOf(g Geometry, w *Workload, windows, shards, spanCap int) (*window.Ring, []*Workload, error) {
	r, err := newRing(g, shards, spanCap, 4*windows+4)
	if err != nil {
		return nil, nil, err
	}
	parts := w.Windows(windows)
	for _, p := range parts {
		for _, k := range p.Keys {
			if err := r.Update(k, 1); err != nil {
				return nil, nil, err
			}
		}
		if err := r.Rotate(); err != nil {
			return nil, nil, err
		}
	}
	return r, parts, nil
}

// CheckWindowFoldEqualsSerial is the core windowed invariant: for every
// lookback depth, SnapshotOverTime must be register-bit-identical to a
// serial ingest of the covering windows Coverage reports — and the
// ceiling must never cover fewer windows than requested while that much
// history is retained.
func CheckWindowFoldEqualsSerial(g Geometry, w *Workload, windows, shards, spanCap int) error {
	r, parts, err := ringOf(g, w, windows, shards, spanCap)
	if err != nil {
		return err
	}
	for lb := 1; lb <= windows; lb++ {
		got, cov, err := r.SnapshotOverTime(window.LastWindows(lb))
		if err != nil {
			return fmt.Errorf("lookback %d: %w", lb, err)
		}
		if cov.Windows < lb {
			return fmt.Errorf("lookback %d: ceiling covered only %d windows", lb, cov.Windows)
		}
		if cov.LastGeneration != uint64(windows) {
			return fmt.Errorf("lookback %d: newest covered generation %d, want %d",
				lb, cov.LastGeneration, windows)
		}
		ref, err := serialWindows(g, parts, cov.FirstGeneration, cov.LastGeneration)
		if err != nil {
			return fmt.Errorf("lookback %d: building reference: %w", lb, err)
		}
		if err := requireEqual(fmt.Sprintf("over-time fold (lookback %d, covering [%d,%d])",
			lb, cov.FirstGeneration, cov.LastGeneration), ref, got); err != nil {
			return err
		}
	}
	return nil
}

// CheckWindowLiveFoldEqualsSerial asserts the live-edge semantics: a
// full-history fold with IncludeLive equals serial ingest of the whole
// stream, with part of it still sitting un-rotated in the live window.
func CheckWindowLiveFoldEqualsSerial(g Geometry, w *Workload, windows, shards, spanCap int) error {
	r, err := newRing(g, shards, spanCap, 4*windows+4)
	if err != nil {
		return err
	}
	parts := w.Windows(windows)
	// Rotate all but the last part; the last stays live.
	for i, p := range parts {
		for _, k := range p.Keys {
			if err := r.Update(k, 1); err != nil {
				return err
			}
		}
		if i < len(parts)-1 {
			if err := r.Rotate(); err != nil {
				return err
			}
		}
	}
	ref, err := Serial(g, w)
	if err != nil {
		return err
	}
	got, cov, err := r.SnapshotOverTime(window.LastWindows(0).WithLive())
	if err != nil {
		return err
	}
	if !cov.IncludesLive {
		return fmt.Errorf("live fold did not report IncludesLive")
	}
	return requireEqual("over-time fold (all closed + live)", ref, got)
}

// CheckWindowQueriesEqualFold asserts every query method answers from the
// same fold SnapshotOverTime returns: per-key estimates, cardinality and
// heavy hitters must match querying the fold sketch directly.
func CheckWindowQueriesEqualFold(g Geometry, w *Workload, windows, shards, spanCap int, lookback int) error {
	r, _, err := ringOf(g, w, windows, shards, spanCap)
	if err != nil {
		return err
	}
	lb := window.LastWindows(lookback)
	fold, cov, err := r.SnapshotOverTime(lb)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	var candidates [][]byte
	var threshold uint64 = 1
	for _, k := range w.Keys {
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		candidates = append(candidates, k)
		est, qcov, err := r.QueryOverTime(k, lb)
		if err != nil {
			return err
		}
		if qcov != cov {
			return fmt.Errorf("QueryOverTime coverage %+v deviates from fold coverage %+v", qcov, cov)
		}
		if want := fold.Estimate(k); est != want {
			return fmt.Errorf("QueryOverTime(%x) = %d, fold says %d", k, est, want)
		}
		if est > threshold {
			threshold = est // highest estimate: a non-trivial HH threshold below
		}
	}
	card, _, err := r.CardinalityOverTime(lb)
	if err != nil {
		return err
	}
	if want := fold.Cardinality(); card != want {
		return fmt.Errorf("CardinalityOverTime = %v, fold says %v", card, want)
	}
	threshold = threshold/2 + 1
	hh, _, err := r.HeavyHittersOverTime(candidates, threshold, lb)
	if err != nil {
		return err
	}
	for _, k := range candidates {
		est := fold.Estimate(k)
		got, reported := hh[string(k)]
		if (est >= threshold) != reported {
			return fmt.Errorf("HeavyHittersOverTime(%x): reported=%v but fold estimate %d vs threshold %d",
				k, reported, est, threshold)
		}
		if reported && got != est {
			return fmt.Errorf("HeavyHittersOverTime(%x) = %d, fold says %d", k, got, est)
		}
	}
	return nil
}

// CheckWindowCoarsenInvariance asserts the fold is independent of the
// coarsening structure: the same window stream through rings with
// different span caps — including forced Coarsen compactions — yields
// bit-identical full-history folds. Coarsening changes which buckets
// exist, never what they sum to.
func CheckWindowCoarsenInvariance(g Geometry, w *Workload, windows, shards int) error {
	parts := w.Windows(windows)
	build := func(spanCap int, forceEvery int) (*core.Sketch, error) {
		r, err := newRing(g, shards, spanCap, 4*windows+4)
		if err != nil {
			return nil, err
		}
		for i, p := range parts {
			for _, k := range p.Keys {
				if err := r.Update(k, 1); err != nil {
					return nil, err
				}
			}
			if err := r.Rotate(); err != nil {
				return nil, err
			}
			if forceEvery > 0 && (i+1)%forceEvery == 0 {
				r.Coarsen()
			}
		}
		sk, _, err := r.SnapshotOverTime(window.LastWindows(0))
		return sk, err
	}
	ref, err := build(windows+1, 0) // cap beyond window count: no coarsening at all
	if err != nil {
		return err
	}
	for _, tc := range []struct {
		name       string
		spanCap    int
		forceEvery int
	}{
		{"spancap=1", 1, 0},
		{"spancap=2", 2, 0},
		{"spancap=3+forced", 3, 2},
	} {
		got, err := build(tc.spanCap, tc.forceEvery)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.name, err)
		}
		if err := requireEqual("coarsening variant "+tc.name, ref, got); err != nil {
			return err
		}
	}
	return nil
}

// CheckWindowLookbackMonotonic asserts per-key estimates never decrease
// as the lookback grows: a longer lookback folds a superset of windows,
// and FCM estimates are monotone under merge.
func CheckWindowLookbackMonotonic(g Geometry, w *Workload, windows, shards, spanCap int) error {
	r, _, err := ringOf(g, w, windows, shards, spanCap)
	if err != nil {
		return err
	}
	prev := make(map[string]uint64)
	for lb := 1; lb <= windows; lb++ {
		for _, k := range w.Keys {
			est, _, err := r.QueryOverTime(k, window.LastWindows(lb))
			if err != nil {
				return err
			}
			if p, ok := prev[string(k)]; ok && est < p {
				return fmt.Errorf("estimate for %x dropped from %d to %d when lookback grew to %d",
					k, p, est, lb)
			}
			prev[string(k)] = est
		}
	}
	// The live edge is a superset of every closed-only lookback too.
	for _, k := range w.Keys {
		est, _, err := r.QueryOverTime(k, window.LastWindows(0).WithLive())
		if err != nil {
			return err
		}
		if p := prev[string(k)]; est < p {
			return fmt.Errorf("estimate for %x dropped from %d to %d when live was included",
				k, p, est)
		}
	}
	return nil
}

// CheckWindowRotateAtomic asserts a query racing Rotate returns either
// the pre- or the post-rotation view, never a torn one: the closed-only
// full fold concurrent with a rotation must equal the fold over the first
// n-1 windows or over all n, bit-exactly.
func CheckWindowRotateAtomic(g Geometry, w *Workload, windows, shards, spanCap int) error {
	parts := w.Windows(windows)
	pre, err := serialWindows(g, parts, 1, uint64(windows-1))
	if err != nil {
		return err
	}
	post, err := serialWindows(g, parts, 1, uint64(windows))
	if err != nil {
		return err
	}
	r, err := newRing(g, shards, spanCap, 4*windows+4)
	if err != nil {
		return err
	}
	for i, p := range parts {
		for _, k := range p.Keys {
			if err := r.Update(k, 1); err != nil {
				return err
			}
		}
		if i < len(parts)-1 {
			if err := r.Rotate(); err != nil {
				return err
			}
		}
	}
	// The last window is still live. Race the rotation against the query.
	type result struct {
		sk  *core.Sketch
		err error
	}
	done := make(chan result, 1)
	go func() {
		sk, _, err := r.SnapshotOverTime(window.LastWindows(0))
		done <- result{sk, err}
	}()
	rotErr := r.Rotate()
	got := <-done
	if rotErr != nil {
		return rotErr
	}
	if got.err != nil {
		return got.err
	}
	if pre.FirstRegisterDiff(got.sk) == "" || post.FirstRegisterDiff(got.sk) == "" {
		return nil
	}
	return fmt.Errorf("rotate-racing fold is torn: matches neither the %d- nor the %d-window view",
		windows-1, windows)
}

// CheckWindowAll runs the whole windowed battery for one (geometry,
// workload) pair, deriving window/shard/span-cap variety from the seed
// like CheckAll does.
func CheckWindowAll(g Geometry, w *Workload, seed int64) error {
	windows := 3 + int(uint64(seed)%6)       // 3..8 windows
	shards := 1 + int((uint64(seed)>>16)%4)  // 1..4 shards
	spanCap := 1 + int((uint64(seed)>>32)%3) // 1..3 per-level buckets
	lookback := 1 + int((uint64(seed)>>40)%uint64(windows))
	if err := CheckWindowFoldEqualsSerial(g, w, windows, shards, spanCap); err != nil {
		return err
	}
	if err := CheckWindowLiveFoldEqualsSerial(g, w, windows, shards, spanCap); err != nil {
		return err
	}
	if err := CheckWindowQueriesEqualFold(g, w, windows, shards, spanCap, lookback); err != nil {
		return err
	}
	if err := CheckWindowCoarsenInvariance(g, w, windows, shards); err != nil {
		return err
	}
	if err := CheckWindowLookbackMonotonic(g, w, windows, shards, spanCap); err != nil {
		return err
	}
	return CheckWindowRotateAtomic(g, w, windows, shards, spanCap)
}
