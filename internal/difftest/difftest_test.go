package difftest

import (
	"sync"
	"testing"
	"time"

	fcm "github.com/fcmsketch/fcm"
)

// TestDifferentialEquivalence is the tentpole sweep: for every fixed
// geometry, ≥100 seeded random workloads run through all ingest paths —
// serial, batch, sharded, engine-batcher, PISA — plus codec round-trip,
// rotate linearity and the exact oracle. Any divergence fails with the
// seed that reproduces it.
func TestDifferentialEquivalence(t *testing.T) {
	for gi, g := range Geometries() {
		g := g
		t.Run(g.String(), func(t *testing.T) {
			t.Parallel()
			trials(t, int64(0xd1ff0000)+int64(gi), 105, func(t *testing.T, seed int64) {
				w := RandomWorkload(seed)
				if err := CheckAll(g, w, seed); err != nil {
					t.Fatalf("workload %d packets: %v", w.NumPackets(), err)
				}
			})
		})
	}
}

// TestRandomGeometryEquivalence extends the sweep to randomly drawn
// geometries: arity, depth, widths, leaf width, seed and hash mode all
// derive from the trial seed, so the equivalence claim is not an artifact
// of the fixed geometry matrix.
func TestRandomGeometryEquivalence(t *testing.T) {
	t.Parallel()
	trials(t, 0x9e0000001, 80, func(t *testing.T, seed int64) {
		rng := newRng(seed)
		g := RandomGeometry(rng)
		w := RandomWorkload(DeriveSeed(seed, 1))
		if err := CheckAll(g, w, seed); err != nil {
			t.Fatalf("geometry %s, %d packets: %v", g, w.NumPackets(), err)
		}
	})
}

// TestConcurrentShardIngestBitExact drives the sharded engine from many
// goroutines at once and asserts the merged snapshot is still bit-identical
// to serial ingest. Under -race this doubles as the harness's concurrency
// gate: any unsynchronized counter access in the shard path trips here.
func TestConcurrentShardIngestBitExact(t *testing.T) {
	t.Parallel()
	trials(t, 0xc0c0c0c0c, 12, func(t *testing.T, seed int64) {
		g := Geometries()[int(uint64(seed)>>8)%len(Geometries())]
		w := RandomWorkload(seed)
		ref, err := Serial(g, w)
		if err != nil {
			t.Fatal(err)
		}
		writers := 2 + int(uint64(seed)%7)
		sh, err := newSharded(g, 1+int((uint64(seed)>>16)%7))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for _, part := range w.Split(writers) {
			part := part
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, k := range part.Keys {
					sh.Update(k, 1)
				}
			}()
		}
		wg.Wait()
		if err := requireEqual("concurrent sharded", ref, sh.Snapshot().Core()); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRotateUnderConcurrentLoad rotates windows while writers are mid-
// stream. Each update must land in exactly one window, so merging every
// closed window with the final snapshot recovers the serial sketch
// bit-for-bit regardless of where the rotations fell.
func TestRotateUnderConcurrentLoad(t *testing.T) {
	t.Parallel()
	trials(t, 0x40747e00, 10, func(t *testing.T, seed int64) {
		g := Geometries()[int(uint64(seed)>>8)%len(Geometries())]
		w := RandomWorkload(seed)
		ref, err := Serial(g, w)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := newSharded(g, 1+int((uint64(seed)>>16)%7))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for _, part := range w.Split(3) {
			part := part
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, k := range part.Keys {
					sh.Update(k, 1)
				}
			}()
		}
		var closed []*fcm.Sketch
		for r := 2 + int(uint64(seed)%3); r > 0; r-- {
			time.Sleep(200 * time.Microsecond)
			closed = append(closed, sh.Rotate())
		}
		wg.Wait()
		total := sh.Snapshot()
		for _, c := range closed {
			if err := total.Merge(c); err != nil {
				t.Fatalf("merging closed window: %v", err)
			}
		}
		if err := requireEqual("rotate under load", ref, total.Core()); err != nil {
			t.Fatal(err)
		}
	})
}
