package difftest

import (
	"encoding/binary"
	"fmt"

	fcm "github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/core"
)

// The sketch-ops state machine interprets an arbitrary byte string as a
// program over two lockstep implementations — a serial core.Sketch and an
// fcm.Sharded — plus an exact oracle. After every mutating op the machine
// can be asked (by the program itself) to compare the sharded snapshot
// against the serial sketch bit-for-bit and to re-validate the oracle's
// one-sidedness, so any interleaving of Update/Merge/Rotate/Snapshot/Reset
// that breaks equivalence is a fuzzing counterexample.
//
// Opcodes (one byte, operands follow):
//
//	0x00 key inc  — Update(key, 1+inc%16) on both paths
//	0x01 n        — UpdateBatch of the next n%32+1 derived keys, inc 1
//	0x02          — Snapshot: sharded merge must equal serial bit-for-bit
//	0x03          — Rotate: closed window must equal serial; both restart
//	0x04 key inc  — Merge a side sketch holding one flow into both paths
//	0x05          — Reset both paths and the oracle
//	0x06 key      — Estimate: both paths agree and are ≥ the oracle
//
// Anything else is a no-op, so every byte string is a valid program.

// smGeometries is the geometry table programs index with their first byte.
// Shapes are tiny so fuzz executions stay microseconds while still
// overflowing into every stage.
var smGeometries = []Geometry{
	{K: 2, Trees: 2, Widths: []int{2, 4, 8}, LeafWidth: 8, Seed: 1},
	{K: 2, Trees: 1, Widths: []int{3, 5}, LeafWidth: 8, Seed: 2},
	{K: 4, Trees: 2, Widths: []int{2, 5, 9}, LeafWidth: 16, Seed: 3},
	{K: 2, Trees: 2, Widths: []int{2, 4, 8}, LeafWidth: 8, Seed: 4, PerTreeHash: true},
}

// machine holds the lockstep state.
type machine struct {
	g      Geometry
	serial *core.Sketch
	shard  *fcm.Sharded
	oracle map[uint32]uint64
	keybuf [4]byte
}

// oneSidedOK reports whether one-sidedness is assertable: once any root
// counter sits at its counting capacity the sketch may have clamped (by
// update or by merge) and estimates can legitimately drop below the
// oracle. The check is conservative — a root that landed exactly on the
// capacity without clamping also disables the assertion — which is the
// right trade for a fuzzer that must never report false divergence.
func (m *machine) oneSidedOK() bool {
	return !rootSaturated(m.serial)
}

// key derives the 4-byte key for flow id f (masked small so collisions and
// overflow are common).
func (m *machine) key(f byte) []byte {
	binary.BigEndian.PutUint32(m.keybuf[:], uint32(f%24)^0x5eed)
	return m.keybuf[:]
}

// RunSketchOps executes program over the lockstep machine and returns the
// first broken invariant, or nil. It is the body of FuzzSketchOps and is
// also replayed over the checked-in corpus by the unit suite.
func RunSketchOps(program []byte) error {
	if len(program) == 0 {
		return nil
	}
	g := smGeometries[int(program[0])%len(smGeometries)]
	program = program[1:]

	serial, err := g.NewCore()
	if err != nil {
		return fmt.Errorf("building serial sketch: %w", err)
	}
	shards := 1 + len(program)%4
	sh, err := newSharded(g, shards)
	if err != nil {
		return fmt.Errorf("building sharded sketch: %w", err)
	}
	m := &machine{g: g, serial: serial, shard: sh, oracle: make(map[uint32]uint64)}

	steps := 0
	for i := 0; i < len(program) && steps < 4096; steps++ {
		op := program[i]
		i++
		arg := func() byte {
			if i < len(program) {
				b := program[i]
				i++
				return b
			}
			return 0
		}
		switch op {
		case 0x00:
			k, inc := m.key(arg()), uint64(1+arg()%16)
			m.serial.Update(k, inc)
			m.shard.Update(k, inc)
			m.oracle[binary.BigEndian.Uint32(k)] += inc
		case 0x01:
			n := int(arg())%32 + 1
			keys := make([][]byte, 0, n)
			for j := 0; j < n; j++ {
				kb := make([]byte, 4)
				copy(kb, m.key(arg()))
				keys = append(keys, kb)
				m.oracle[binary.BigEndian.Uint32(kb)]++
			}
			m.serial.UpdateBatch(keys, 1)
			m.shard.UpdateBatch(keys, 1)
		case 0x02:
			if d := m.serial.FirstRegisterDiff(m.shard.Snapshot().Core()); d != "" {
				return fmt.Errorf("step %d: snapshot diverged from serial: %s", steps, d)
			}
		case 0x03:
			closed := m.shard.Rotate()
			if d := m.serial.FirstRegisterDiff(closed.Core()); d != "" {
				return fmt.Errorf("step %d: rotated window diverged from serial: %s", steps, d)
			}
			m.serial.Reset()
			clear(m.oracle)
		case 0x04:
			side, err := m.g.NewCore()
			if err != nil {
				return err
			}
			k, inc := m.key(arg()), uint64(1+arg()%16)
			side.Update(k, inc)
			if err := m.serial.Merge(side); err != nil {
				return fmt.Errorf("step %d: serial merge: %w", steps, err)
			}
			sideFCM, err := fcm.NewSketch(fcm.Config{
				K: m.g.K, Trees: m.g.Trees, Widths: m.g.Widths, LeafWidth: m.g.LeafWidth,
				Seed: m.g.Seed, PerTreeHash: m.g.PerTreeHash,
			})
			if err != nil {
				return err
			}
			sideFCM.Update(k, inc)
			if err := m.shard.MergeFrom(sideFCM); err != nil {
				return fmt.Errorf("step %d: sharded merge: %w", steps, err)
			}
			m.oracle[binary.BigEndian.Uint32(k)] += inc
		case 0x05:
			m.serial.Reset()
			m.shard.Reset()
			clear(m.oracle)
		case 0x06:
			k := m.key(arg())
			se, he := m.serial.Estimate(k), m.shard.Estimate(k)
			if se != he {
				return fmt.Errorf("step %d: estimate for %x: serial %d vs sharded %d", steps, k, se, he)
			}
			if want := m.oracle[binary.BigEndian.Uint32(k)]; se < want && m.oneSidedOK() {
				return fmt.Errorf("step %d: estimate for %x underestimates: %d < exact %d", steps, k, se, want)
			}
		}
	}

	// Terminal audit: full bit-exactness plus oracle one-sidedness over
	// every flow the program touched.
	if d := m.serial.FirstRegisterDiff(m.shard.Snapshot().Core()); d != "" {
		return fmt.Errorf("final state diverged from serial: %s", d)
	}
	if m.oneSidedOK() {
		var kb [4]byte
		for f, want := range m.oracle {
			binary.BigEndian.PutUint32(kb[:], f)
			if got := m.serial.Estimate(kb[:]); got < want {
				return fmt.Errorf("final estimate for %x underestimates: %d < exact %d", kb, got, want)
			}
		}
	}
	return nil
}
