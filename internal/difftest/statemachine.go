package difftest

import (
	"encoding/binary"
	"fmt"

	fcm "github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/core"
)

// The sketch-ops state machine interprets an arbitrary byte string as a
// program over four lockstep implementations — a serial core.Sketch (the
// compact typed-lane layout), an fcm.Sharded, a serial sketch built on
// the 32-bit widening shim, and a scalar-merge twin that routes every
// merge through MergeScalar instead of the word-wide path — plus an exact
// oracle. After every mutating op the machine can be asked (by the
// program itself) to compare the sharded snapshot, the wide-shim sketch
// and the scalar twin against the serial sketch bit-for-bit and to
// re-validate the oracle's one-sidedness, so any interleaving of
// Update/Merge/Rotate/Snapshot/Reset that breaks equivalence — including a
// compact-lane divergence from the uniform 32-bit layout, or a SWAR merge
// diverging from the scalar reference — is a fuzzing counterexample.
//
// Opcodes (one byte, operands follow):
//
//	0x00 key inc  — Update(key, 1+inc%16) on all paths
//	0x01 n        — UpdateBatch of the next n%32+1 derived keys, inc 1
//	0x02          — Snapshot: sharded merge and wide shim must equal serial
//	0x03          — Rotate: closed window must equal serial; all restart
//	0x04 key inc  — Merge a side sketch holding one flow into all paths
//	0x05          — Reset all paths and the oracle
//	0x06 key      — Estimate: all paths agree and are ≥ the oracle
//	0x07 key n    — Saturation burst: Update(key, (1+n)·8192), driving the
//	                byte lane across its 254 boundary immediately and the
//	                uint16 lane across 65534 within a few repeats
//
// Anything else is a no-op, so every byte string is a valid program.

// smGeometries is the geometry table programs index with their first byte.
// Shapes are tiny so fuzz executions stay microseconds while still
// overflowing into every stage. The {8,16,32} entry is the paper's
// hardware layout at fuzz scale: its stages sit in three different lane
// widths, so the 254/65534 saturation boundaries of the compact storage
// are reachable by the burst opcode.
var smGeometries = []Geometry{
	{K: 2, Trees: 2, Widths: []int{2, 4, 8}, LeafWidth: 8, Seed: 1},
	{K: 2, Trees: 1, Widths: []int{3, 5}, LeafWidth: 8, Seed: 2},
	{K: 4, Trees: 2, Widths: []int{2, 5, 9}, LeafWidth: 16, Seed: 3},
	{K: 2, Trees: 2, Widths: []int{2, 4, 8}, LeafWidth: 8, Seed: 4, PerTreeHash: true},
	{K: 2, Trees: 2, Widths: []int{8, 16, 32}, LeafWidth: 8, Seed: 5},
}

// machine holds the lockstep state. wide is the 32-bit widening-shim twin
// of serial: same geometry and hash placement, uniform uint32 storage.
type machine struct {
	g      Geometry
	serial *core.Sketch
	wide   *core.Sketch
	// scalar sees the identical op stream but merges via MergeScalar: any
	// divergence from serial is a word-wide merge kernel bug.
	scalar *core.Sketch
	shard  *fcm.Sharded
	oracle map[uint32]uint64
	keybuf [4]byte
}

// checkWide compares the wide-shim twin against the serial sketch; any
// difference is a compact-lane storage bug (promotion mark read at the
// wrong width, narrowing truncation, saturation clamp mismatch).
func (m *machine) checkWide(step int) error {
	if d := m.serial.FirstRegisterDiff(m.wide); d != "" {
		return fmt.Errorf("step %d: wide shim diverged from compact lanes: %s", step, d)
	}
	if d := m.serial.FirstRegisterDiff(m.scalar); d != "" {
		return fmt.Errorf("step %d: word merge diverged from scalar twin: %s", step, d)
	}
	return nil
}

// oneSidedOK reports whether one-sidedness is assertable: once any root
// counter sits at its counting capacity the sketch may have clamped (by
// update or by merge) and estimates can legitimately drop below the
// oracle. The check is conservative — a root that landed exactly on the
// capacity without clamping also disables the assertion — which is the
// right trade for a fuzzer that must never report false divergence.
func (m *machine) oneSidedOK() bool {
	return !rootSaturated(m.serial)
}

// key derives the 4-byte key for flow id f (masked small so collisions and
// overflow are common).
func (m *machine) key(f byte) []byte {
	binary.BigEndian.PutUint32(m.keybuf[:], uint32(f%24)^0x5eed)
	return m.keybuf[:]
}

// RunSketchOps executes program over the lockstep machine and returns the
// first broken invariant, or nil. It is the body of FuzzSketchOps and is
// also replayed over the checked-in corpus by the unit suite.
func RunSketchOps(program []byte) error {
	if len(program) == 0 {
		return nil
	}
	g := smGeometries[int(program[0])%len(smGeometries)]
	program = program[1:]

	serial, err := g.NewCore()
	if err != nil {
		return fmt.Errorf("building serial sketch: %w", err)
	}
	wide, err := g.NewWideCore()
	if err != nil {
		return fmt.Errorf("building wide-shim sketch: %w", err)
	}
	scalar, err := g.NewCore()
	if err != nil {
		return fmt.Errorf("building scalar-merge twin: %w", err)
	}
	shards := 1 + len(program)%4
	sh, err := newSharded(g, shards)
	if err != nil {
		return fmt.Errorf("building sharded sketch: %w", err)
	}
	m := &machine{g: g, serial: serial, wide: wide, scalar: scalar, shard: sh, oracle: make(map[uint32]uint64)}

	steps := 0
	for i := 0; i < len(program) && steps < 4096; steps++ {
		op := program[i]
		i++
		arg := func() byte {
			if i < len(program) {
				b := program[i]
				i++
				return b
			}
			return 0
		}
		switch op {
		case 0x00:
			k, inc := m.key(arg()), uint64(1+arg()%16)
			m.serial.Update(k, inc)
			m.wide.Update(k, inc)
			m.scalar.Update(k, inc)
			m.shard.Update(k, inc)
			m.oracle[binary.BigEndian.Uint32(k)] += inc
		case 0x01:
			n := int(arg())%32 + 1
			keys := make([][]byte, 0, n)
			for j := 0; j < n; j++ {
				kb := make([]byte, 4)
				copy(kb, m.key(arg()))
				keys = append(keys, kb)
				m.oracle[binary.BigEndian.Uint32(kb)]++
			}
			m.serial.UpdateBatch(keys, 1)
			m.wide.UpdateBatch(keys, 1)
			m.scalar.UpdateBatch(keys, 1)
			m.shard.UpdateBatch(keys, 1)
		case 0x02:
			if d := m.serial.FirstRegisterDiff(m.shard.Snapshot().Core()); d != "" {
				return fmt.Errorf("step %d: snapshot diverged from serial: %s", steps, d)
			}
			if err := m.checkWide(steps); err != nil {
				return err
			}
		case 0x03:
			closed := m.shard.Rotate()
			if d := m.serial.FirstRegisterDiff(closed.Core()); d != "" {
				return fmt.Errorf("step %d: rotated window diverged from serial: %s", steps, d)
			}
			if err := m.checkWide(steps); err != nil {
				return err
			}
			m.serial.Reset()
			m.wide.Reset()
			m.scalar.Reset()
			clear(m.oracle)
		case 0x04:
			side, err := m.g.NewCore()
			if err != nil {
				return err
			}
			k, inc := m.key(arg()), uint64(1+arg()%16)
			side.Update(k, inc)
			if err := m.serial.Merge(side); err != nil {
				return fmt.Errorf("step %d: serial merge: %w", steps, err)
			}
			// Merging a compact side sketch into the wide shim exercises the
			// cross-layout merge seam on every 0x04 op.
			if err := m.wide.Merge(side); err != nil {
				return fmt.Errorf("step %d: wide-shim merge: %w", steps, err)
			}
			if err := m.scalar.MergeScalar(side); err != nil {
				return fmt.Errorf("step %d: scalar twin merge: %w", steps, err)
			}
			sideFCM, err := fcm.NewSketch(fcm.Config{
				K: m.g.K, Trees: m.g.Trees, Widths: m.g.Widths, LeafWidth: m.g.LeafWidth,
				Seed: m.g.Seed, PerTreeHash: m.g.PerTreeHash,
			})
			if err != nil {
				return err
			}
			sideFCM.Update(k, inc)
			if err := m.shard.MergeFrom(sideFCM); err != nil {
				return fmt.Errorf("step %d: sharded merge: %w", steps, err)
			}
			m.oracle[binary.BigEndian.Uint32(k)] += inc
		case 0x05:
			m.serial.Reset()
			m.wide.Reset()
			m.scalar.Reset()
			m.shard.Reset()
			clear(m.oracle)
		case 0x06:
			k := m.key(arg())
			se, he := m.serial.Estimate(k), m.shard.Estimate(k)
			if se != he {
				return fmt.Errorf("step %d: estimate for %x: serial %d vs sharded %d", steps, k, se, he)
			}
			if we := m.wide.Estimate(k); se != we {
				return fmt.Errorf("step %d: estimate for %x: compact %d vs wide shim %d", steps, k, se, we)
			}
			if want := m.oracle[binary.BigEndian.Uint32(k)]; se < want && m.oneSidedOK() {
				return fmt.Errorf("step %d: estimate for %x underestimates: %d < exact %d", steps, k, se, want)
			}
		case 0x07:
			// Saturation burst: a single large increment crosses the byte
			// lane's 254 capacity immediately; repeats walk the uint16 lane
			// to 65534 and onward to the root. Both layouts must promote and
			// clamp identically at every boundary.
			k, inc := m.key(arg()), uint64(1+arg())*8192
			m.serial.Update(k, inc)
			m.wide.Update(k, inc)
			m.scalar.Update(k, inc)
			m.shard.Update(k, inc)
			m.oracle[binary.BigEndian.Uint32(k)] += inc
		}
	}

	// Terminal audit: full bit-exactness plus oracle one-sidedness over
	// every flow the program touched.
	if d := m.serial.FirstRegisterDiff(m.shard.Snapshot().Core()); d != "" {
		return fmt.Errorf("final state diverged from serial: %s", d)
	}
	if d := m.serial.FirstRegisterDiff(m.wide); d != "" {
		return fmt.Errorf("final wide-shim state diverged from compact lanes: %s", d)
	}
	if d := m.serial.FirstRegisterDiff(m.scalar); d != "" {
		return fmt.Errorf("final word-merge state diverged from scalar twin: %s", d)
	}
	if m.oneSidedOK() {
		var kb [4]byte
		for f, want := range m.oracle {
			binary.BigEndian.PutUint32(kb[:], f)
			if got := m.serial.Estimate(kb[:]); got < want {
				return fmt.Errorf("final estimate for %x underestimates: %d < exact %d", kb, got, want)
			}
		}
	}
	return nil
}
