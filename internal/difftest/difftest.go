// Package difftest is the repository's differential/metamorphic correctness
// harness. The codebase carries four distinct ingest paths — serial
// (core.Sketch.Update), batched (UpdateBatch and the engine Batcher),
// sharded (fcm.Sharded / engine.Engine) and PISA-simulated (pisa.Switch) —
// plus two hash modes (one-pass wide and per-tree), and the paper's §8
// hardware result rests on the claim that all of them agree bit-for-bit.
// This package turns that claim from an informal assertion into enforced
// invariants:
//
//   - oracle-backed equivalence: identical traces run through the exact
//     tracker (internal/exact), the software sketch, the sharded engine,
//     the batched paths and the PISA pipeline; counter state must be
//     bit-exact across sketch paths and estimates must be one-sided and
//     bounded against the oracle;
//   - metamorphic invariants: batch==serial, shard-merge==serial,
//     snapshot/merge commutativity and associativity, rotate-under-load
//     linearity, wire-codec round-trip identity — over randomized
//     geometries, key distributions and fault schedules;
//   - state-machine and input fuzzing: native go test fuzz targets
//     (FuzzSketchOps, FuzzPcapIngest, FuzzEMInput) with checked-in seed
//     corpora under testdata/fuzz.
//
// Every randomized check derives from a single int64 seed and prints it on
// failure, so any differential divergence reproduces with
// `go test ./internal/difftest -run <test> -seed <printed seed>`.
package difftest

import (
	"fmt"
	"math/rand"

	fcm "github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/pisa"
)

// coreSeedBase is the XOR constant both fcm.Config.coreConfig and
// pisa.NewSwitch fold the user seed into before constructing the hash
// family. The harness must mirror it exactly: a sketch built here is only
// bit-comparable to the fcm/pisa planes if all three derive the same hash
// functions from the same Geometry.Seed.
const coreSeedBase = 0xfc3141

// Geometry pins one complete sketch shape: tree arity, count, stage widths,
// leaf width, hash seed and hash mode. Two data planes built from the same
// Geometry place every increment in the same counter, so "bit-exact" is a
// meaningful cross-path assertion.
type Geometry struct {
	K           int
	Trees       int
	Widths      []int
	LeafWidth   int
	Seed        uint32
	PerTreeHash bool
}

// String names the geometry compactly for subtest labels and failures.
func (g Geometry) String() string {
	mode := "wide"
	if g.PerTreeHash {
		mode = "pertree"
	}
	return fmt.Sprintf("k%d_d%d_w%v_leaf%d_%s", g.K, g.Trees, g.Widths, g.LeafWidth, mode)
}

// CoreConfig returns the internal/core configuration for this geometry,
// with the hash family derived exactly as fcm.Config and pisa.SwitchConfig
// derive it.
func (g Geometry) CoreConfig() core.Config {
	return core.Config{
		K:           g.K,
		Trees:       g.Trees,
		Widths:      append([]int(nil), g.Widths...),
		LeafWidth:   g.LeafWidth,
		Hash:        hashing.NewBobFamily(coreSeedBase ^ g.Seed),
		PerTreeHash: g.PerTreeHash,
	}
}

// NewCore builds a software sketch with this geometry.
func (g Geometry) NewCore() (*core.Sketch, error) {
	return core.New(g.CoreConfig())
}

// NewWideCore builds the widening-shim variant of this geometry: identical
// hash placement and register semantics, but every stage stored in a
// uniform 32-bit lane instead of the compact typed lanes. The harness uses
// it as the reference layout the compact storage must match bit-for-bit.
func (g Geometry) NewWideCore() (*core.Sketch, error) {
	cfg := g.CoreConfig()
	cfg.WideLanes = true
	return core.New(cfg)
}

// SwitchConfig returns the PISA pipeline configuration that yields a data
// plane bit-identical to NewCore (same geometry, same seed derivation, same
// hash mode).
func (g Geometry) SwitchConfig() pisa.SwitchConfig {
	return pisa.SwitchConfig{
		Program:     pisa.ProgramFCM,
		Trees:       g.Trees,
		K:           g.K,
		Widths:      append([]int(nil), g.Widths...),
		LeafWidth:   g.LeafWidth,
		Seed:        g.Seed,
		PerTreeHash: g.PerTreeHash,
	}
}

// FCMConfig returns the public fcm.Config equivalent of this geometry.
func (g Geometry) FCMConfig() fcm.Config {
	return fcm.Config{
		K: g.K, Trees: g.Trees, Widths: append([]int(nil), g.Widths...),
		LeafWidth: g.LeafWidth, Seed: g.Seed, PerTreeHash: g.PerTreeHash,
	}
}

// newSharded builds the public sharded sketch for this geometry.
func newSharded(g Geometry, shards int) (*fcm.Sharded, error) {
	return fcm.NewSharded(g.FCMConfig(), shards)
}

// newRng is the package's one seeding idiom for math/rand sources.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Geometries returns the fixed geometry matrix the equivalence suite sweeps:
// the paper's byte-aligned default shape, a deep narrow tree that overflows
// constantly (so carry/promotion seams are exercised, not just leaf hits), a
// binary tree with sub-byte widths, and a per-tree-hash variant of the
// default so both placement modes face the same invariants.
func Geometries() []Geometry {
	return []Geometry{
		{K: 8, Trees: 2, Widths: []int{8, 16, 32}, LeafWidth: 512, Seed: 0},
		{K: 4, Trees: 2, Widths: []int{3, 5, 8, 16}, LeafWidth: 256, Seed: 7},
		{K: 2, Trees: 3, Widths: []int{2, 4, 8}, LeafWidth: 64, Seed: 21},
		{K: 8, Trees: 2, Widths: []int{8, 16, 32}, LeafWidth: 512, Seed: 0, PerTreeHash: true},
	}
}

// RandomGeometry draws a small random geometry from rng: arity in
// {2,4,8,16}, 1–3 trees, 2–4 strictly increasing stage widths, and a leaf
// width of 1–4 alignment units. Every draw is constructible (core.New
// cannot reject it) so fuzzers and trial loops never waste a seed.
func RandomGeometry(rng *rand.Rand) Geometry {
	ks := []int{2, 4, 8, 16}
	k := ks[rng.Intn(len(ks))]
	depth := 2 + rng.Intn(3)
	widths := make([]int, 0, depth)
	// Strictly increasing widths in [2,32]: draw gaps and cap the root.
	w := 2 + rng.Intn(4)
	for i := 0; i < depth; i++ {
		if w > 32 {
			w = 32
		}
		widths = append(widths, w)
		w += 1 + rng.Intn(8)
	}
	align := 1
	for i := 1; i < depth; i++ {
		align *= k
	}
	g := Geometry{
		K:           k,
		Trees:       1 + rng.Intn(3),
		Widths:      widths,
		LeafWidth:   align * (1 + rng.Intn(4)),
		Seed:        rng.Uint32(),
		PerTreeHash: rng.Intn(4) == 0,
	}
	return g
}

// splitmix64 advances the canonical SplitMix64 state — the harness's seed
// deriver, so one printed trial seed regenerates geometry, workload and
// fault schedule alike without chaining math/rand state across checks.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed returns the i-th child seed of base, stable across runs.
func DeriveSeed(base int64, i int) int64 {
	s := uint64(base)
	for j := 0; j <= i%16; j++ {
		splitmix64(&s)
	}
	s ^= uint64(i) * 0x9e3779b97f4a7c15
	return int64(splitmix64(&s))
}
