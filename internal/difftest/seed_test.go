package difftest

import (
	"flag"
	"fmt"
	"testing"
)

// flagSeed pins every randomized trial in this package to one seed. The
// normal run derives trial seeds with DeriveSeed and each failing subtest
// prints its own seed; re-running with
//
//	go test ./internal/difftest -run <TestName> -seed <printed seed>
//
// replays exactly that trial and nothing else.
var flagSeed = flag.Int64("seed", 0, "replay a single trial with this seed instead of the derived sweep")

// trials runs fn over n seeds derived from base, each as its own subtest
// named by its seed. With -seed set it runs exactly one trial with that
// seed. Every failure reports the one number needed to reproduce it.
func trials(t *testing.T, base int64, n int, fn func(t *testing.T, seed int64)) {
	t.Helper()
	run := func(seed int64) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Cleanup(func() {
				if t.Failed() {
					t.Logf("reproduce: go test ./internal/difftest -run '%s' -seed %d", t.Name(), seed)
				}
			})
			fn(t, seed)
		})
	}
	if *flagSeed != 0 {
		run(*flagSeed)
		return
	}
	for i := 0; i < n; i++ {
		run(DeriveSeed(base, i))
	}
}
