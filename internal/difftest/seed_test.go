package difftest

import (
	"flag"
	"fmt"
	"testing"
)

// flagSeed pins every randomized trial in this package to one seed. The
// normal run derives trial seeds with DeriveSeed and each failing subtest
// prints its own seed; re-running with
//
//	go test ./internal/difftest -run <TestName> -seed <printed seed>
//
// replays exactly that trial and nothing else.
var flagSeed = flag.Int64("seed", 0, "replay a single trial with this seed instead of the derived sweep")

// runWithSeedLog invokes fn and guarantees the reproduce line for (name,
// seed) reaches logf before any panic escapes: a panicking check is
// caught, the seed is logged, and the panic is rethrown. The t.Cleanup
// path alone is not enough — it fires during teardown, after the panic
// has started unwinding, and a secondary failure there (or a crash
// before cleanups run) loses the one number needed to reproduce the
// trial. Logging inside the recover window runs first, in the trial's
// own goroutine, while the state that caused the panic is still live.
func runWithSeedLog(logf func(format string, args ...any), name string, seed int64, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			logf("reproduce: go test ./internal/difftest -run '%s' -seed %d", name, seed)
			panic(r)
		}
	}()
	fn()
}

// trials runs fn over n seeds derived from base, each as its own subtest
// named by its seed. With -seed set it runs exactly one trial with that
// seed. Every failure — including a panic inside a check — reports the
// one number needed to reproduce it, exactly once.
func trials(t *testing.T, base int64, n int, fn func(t *testing.T, seed int64)) {
	t.Helper()
	run := func(seed int64) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			logged := false
			logSeed := func(format string, args ...any) {
				if !logged {
					logged = true
					t.Logf(format, args...)
				}
			}
			t.Cleanup(func() {
				if t.Failed() {
					logSeed("reproduce: go test ./internal/difftest -run '%s' -seed %d", t.Name(), seed)
				}
			})
			runWithSeedLog(logSeed, t.Name(), seed, func() { fn(t, seed) })
		})
	}
	if *flagSeed != 0 {
		run(*flagSeed)
		return
	}
	for i := 0; i < n; i++ {
		run(DeriveSeed(base, i))
	}
}

// TestSeedLoggedBeforePanic pins the panic path of runWithSeedLog: a
// check that panics (instead of failing the test) must still emit the
// reproduce line, before the panic propagates, and the panic value must
// survive the rethrow.
func TestSeedLoggedBeforePanic(t *testing.T) {
	var lines []string
	logf := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	recovered := func() (r any) {
		defer func() { r = recover() }()
		runWithSeedLog(logf, "TestSeedLoggedBeforePanic/seed=42", 42, func() {
			panic("check blew up")
		})
		return nil
	}()
	if recovered != "check blew up" {
		t.Fatalf("panic value not rethrown: got %v", recovered)
	}
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want exactly 1: %q", len(lines), lines)
	}
	want := "reproduce: go test ./internal/difftest -run 'TestSeedLoggedBeforePanic/seed=42' -seed 42"
	if lines[0] != want {
		t.Fatalf("seed line mismatch:\n got %q\nwant %q", lines[0], want)
	}

	// The happy path must stay silent.
	lines = nil
	runWithSeedLog(logf, "TestSeedLoggedBeforePanic", 7, func() {})
	if len(lines) != 0 {
		t.Fatalf("non-failing trial logged %q", lines)
	}
}
