package difftest

import (
	"encoding/binary"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/insight"
)

// insightKey builds a distinct 4-byte key for flow f.
func insightKey(f uint32) []byte {
	k := make([]byte, 4)
	binary.BigEndian.PutUint32(k, f^0x15a9e7b1)
	return k
}

// TestInsightAgainstOracle drives a deliberately tiny sketch toward root
// saturation window by window and checks the live accuracy self-report
// against exact ground truth at every step:
//
//   - The saturation forecast must fire (a finite windows-to-saturation
//     estimate inside the warning horizon) strictly before the root
//     actually clamps — the report warns while there is still headroom.
//   - While unsaturated, the measured error must stay inside the reported
//     Theorem 5.1 bound: the mean per-flow overestimate stays under
//     ErrorBound packets, and the same error relative to stream mass
//     stays under RelativeErrorBound (the bound's documented
//     normalization). The bound is one-sided — counts only undercount
//     after saturation, which is exactly what Saturated flags.
func TestInsightAgainstOracle(t *testing.T) {
	t.Parallel()
	seed := *flagSeed
	if seed == 0 {
		seed = DeriveSeed(0x1a51647, 0)
	}
	t.Logf("hash seed %d (override with -seed)", seed)

	sk, err := core.New(core.Config{
		K:         2,
		Trees:     2,
		Widths:    []int{4, 6, 8},
		LeafWidth: 16,
		Hash:      hashing.NewBobFamily(uint32(seed)),
	})
	if err != nil {
		t.Fatal(err)
	}
	sk.SetStats(core.NewStats(sk.Depth()))
	const horizon = 8
	an := insight.NewAnalyzer(insight.Config{ForecastHorizon: horizon})

	const (
		background = 12 // light flows, one packet per window
		hotStep    = 12 // hot flow packets per window — root grows ~linearly
		maxWindows = 80
	)
	truth := map[uint32]uint64{}
	var totalTrue uint64
	update := func(f uint32, inc uint64) {
		sk.Update(insightKey(f), inc)
		truth[f] += inc
		totalTrue += inc
	}

	forecastAt, saturatedAt := -1, -1
	var lastUnsat insight.Report
	for w := 1; w <= maxWindows && saturatedAt < 0; w++ {
		update(0, hotStep)
		for f := uint32(1); f <= background; f++ {
			update(f, 1)
		}

		obs := insight.Observe(sk)
		obs.ExactMaxDegree = sk.MaxDegree()
		rep := an.Note(obs)

		if rep.Saturated {
			saturatedAt = w
			break
		}
		lastUnsat = rep
		if forecastAt < 0 && rep.ForecastWindows >= 0 && rep.ForecastWindows <= horizon {
			forecastAt = w
		}

		// Oracle check: every flow's estimate against its true count.
		var sumErr float64
		for f, want := range truth {
			got := sk.Estimate(insightKey(f))
			if got < want {
				t.Fatalf("window %d: flow %d undercounted (%d < %d) before saturation", w, f, got, want)
			}
			sumErr += float64(got - want)
		}
		meanErr := sumErr / float64(len(truth))
		if meanErr > rep.ErrorBound {
			t.Fatalf("window %d: mean overestimate %.2f packets exceeds reported bound %.2f",
				w, meanErr, rep.ErrorBound)
		}
		if are := meanErr / float64(totalTrue); are > rep.RelativeErrorBound {
			t.Fatalf("window %d: measured relative error %.4f exceeds reported relative bound %.4f",
				w, are, rep.RelativeErrorBound)
		}
	}

	if saturatedAt < 0 {
		t.Fatalf("root never saturated in %d windows (workload too light for the geometry)", maxWindows)
	}
	if forecastAt < 0 {
		t.Fatalf("saturation forecast never fired; root clamped at window %d", saturatedAt)
	}
	if forecastAt >= saturatedAt {
		t.Fatalf("forecast fired at window %d, not before actual saturation at window %d",
			forecastAt, saturatedAt)
	}
	t.Logf("forecast fired at window %d, root saturated at window %d (%d windows of warning)",
		forecastAt, saturatedAt, saturatedAt-forecastAt)

	// The last pre-saturation report should already have been pushing the
	// operator to grow the root stage.
	root := lastUnsat.Stages[len(lastUnsat.Stages)-1]
	if root.Recommendation != insight.RecGrow {
		t.Errorf("last unsaturated report recommends %q for the root, want %q",
			root.Recommendation, insight.RecGrow)
	}
}
