package difftest

import (
	"fmt"

	fcm "github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/exact"
	"github.com/fcmsketch/fcm/internal/packet"
	"github.com/fcmsketch/fcm/internal/pisa"
)

// Serial ingests w through the plain serial Update path — the reference
// every other path is measured against.
func Serial(g Geometry, w *Workload) (*core.Sketch, error) {
	s, err := g.NewCore()
	if err != nil {
		return nil, err
	}
	for _, k := range w.Keys {
		s.Update(k, 1)
	}
	return s, nil
}

// requireEqual formats the register diff between got and the serial
// reference want, or returns nil when bit-exact.
func requireEqual(path string, want, got *core.Sketch) error {
	if d := want.FirstRegisterDiff(got); d != "" {
		return fmt.Errorf("%s diverged from serial: %s", path, d)
	}
	return nil
}

// CheckBatchEqualsSerial asserts UpdateBatch over any chunking of the
// stream is bit-identical to per-packet Update.
func CheckBatchEqualsSerial(g Geometry, w *Workload, ref *core.Sketch, batch int) error {
	s, err := g.NewCore()
	if err != nil {
		return err
	}
	for lo := 0; lo < len(w.Keys); lo += batch {
		hi := lo + batch
		if hi > len(w.Keys) {
			hi = len(w.Keys)
		}
		s.UpdateBatch(w.Keys[lo:hi], 1)
	}
	return requireEqual(fmt.Sprintf("batch(%d)", batch), ref, s)
}

// CheckCompactEqualsWide asserts the compact typed-lane storage (the
// default layout: uint8/uint16 low stages, uint32 root) is register-exact
// against the 32-bit widening shim on the same stream — through both the
// serial and the batched ingest path. FirstRegisterDiff widens both sides
// on load, so "" here means every counter holds the same value regardless
// of the lane width it is stored at.
func CheckCompactEqualsWide(g Geometry, w *Workload, ref *core.Sketch, batch int) error {
	wide, err := g.NewWideCore()
	if err != nil {
		return err
	}
	for _, k := range w.Keys {
		wide.Update(k, 1)
	}
	if err := requireEqual("wide shim (serial)", ref, wide); err != nil {
		return err
	}
	wideBatch, err := g.NewWideCore()
	if err != nil {
		return err
	}
	for lo := 0; lo < len(w.Keys); lo += batch {
		hi := lo + batch
		if hi > len(w.Keys) {
			hi = len(w.Keys)
		}
		wideBatch.UpdateBatch(w.Keys[lo:hi], 1)
	}
	return requireEqual(fmt.Sprintf("wide shim (batch %d)", batch), ref, wideBatch)
}

// CheckShardedEqualsSerial asserts the sharded engine — key-affinity
// updates merged into one snapshot — is bit-identical to serial ingest.
func CheckShardedEqualsSerial(g Geometry, w *Workload, ref *core.Sketch, shards int) error {
	sh, err := newSharded(g, shards)
	if err != nil {
		return err
	}
	for _, k := range w.Keys {
		sh.Update(k, 1)
	}
	return requireEqual(fmt.Sprintf("sharded(%d)", shards), ref, sh.Snapshot().Core())
}

// CheckEngineBatcherEqualsSerial asserts the batched shard-affinity path
// (engine.Batcher: arena-copied keys, one lock per flush) is bit-identical
// to serial ingest.
func CheckEngineBatcherEqualsSerial(g Geometry, w *Workload, ref *core.Sketch, shards, batch int) error {
	sh, err := newSharded(g, shards)
	if err != nil {
		return err
	}
	b := sh.Engine().NewBatcher(batch, 1)
	for _, k := range w.Keys {
		b.Add(k)
	}
	b.Flush()
	return requireEqual(fmt.Sprintf("batcher(%d,%d)", shards, batch), ref, sh.Snapshot().Core())
}

// CheckPisaEqualsSerial asserts the PISA-simulated data plane — the
// hardware claim of §8.2.1 — is bit-identical to the software sketch, and
// answers identical count queries for every flow in the stream.
func CheckPisaEqualsSerial(g Geometry, w *Workload, ref *core.Sketch) error {
	sw, err := pisa.NewSwitch(g.SwitchConfig())
	if err != nil {
		return err
	}
	for _, k := range w.Keys {
		sw.Update(k, 1)
	}
	if err := requireEqual("pisa", ref, sw.Sketch()); err != nil {
		return err
	}
	for _, k := range w.Keys {
		if hw, sw2 := sw.Estimate(k), ref.Estimate(k); hw != sw2 {
			return fmt.Errorf("pisa estimate for %x: hardware %d vs software %d", k, hw, sw2)
		}
	}
	return nil
}

// CheckCodecRoundTrip asserts the collect wire codec is the identity on
// register state: snapshot → encode → decode → restore is bit-exact.
func CheckCodecRoundTrip(g Geometry, ref *core.Sketch) error {
	data, err := collect.TakeSnapshot(ref).Encode()
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	snap, err := collect.DecodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	restored, err := snap.Restore(g.CoreConfig().Hash)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	return requireEqual("codec round-trip", ref, restored)
}

// CheckMergeCommutative asserts merge(A,B) == merge(B,A) bit-for-bit, and
// that both equal the serial ingest of the concatenated streams.
func CheckMergeCommutative(g Geometry, a, b *Workload) error {
	build := func(w *Workload) (*core.Sketch, error) { return Serial(g, w) }
	ab1, err := build(a)
	if err != nil {
		return err
	}
	ab2, err := build(b)
	if err != nil {
		return err
	}
	if err := ab1.Merge(ab2); err != nil {
		return fmt.Errorf("merge A<-B: %w", err)
	}
	ba1, err := build(a)
	if err != nil {
		return err
	}
	ba2, err := build(b)
	if err != nil {
		return err
	}
	if err := ba2.Merge(ba1); err != nil {
		return fmt.Errorf("merge B<-A: %w", err)
	}
	if err := requireEqual("merge(B,A) vs merge(A,B)", ab1, ba2); err != nil {
		return err
	}
	whole, err := Serial(g, &Workload{Keys: append(append([][]byte{}, a.Keys...), b.Keys...)})
	if err != nil {
		return err
	}
	return requireEqual("merge(A,B) vs serial(A++B)", whole, ab1)
}

// CheckMergeAssociative asserts (A∪B)∪C == A∪(B∪C) bit-for-bit.
func CheckMergeAssociative(g Geometry, a, b, c *Workload) error {
	left := make([]*core.Sketch, 3)
	right := make([]*core.Sketch, 3)
	for i, w := range []*Workload{a, b, c} {
		var err error
		if left[i], err = Serial(g, w); err != nil {
			return err
		}
		if right[i], err = Serial(g, w); err != nil {
			return err
		}
	}
	if err := left[0].Merge(left[1]); err != nil {
		return err
	}
	if err := left[0].Merge(left[2]); err != nil {
		return err
	}
	if err := right[1].Merge(right[2]); err != nil {
		return err
	}
	if err := right[0].Merge(right[1]); err != nil {
		return err
	}
	return requireEqual("right-associated merge", left[0], right[0])
}

// CheckSWARMergeEqualsScalar asserts the word-wide merge path is
// bit-identical to the exported scalar reference walk on the workload's
// halves — and again after a saturation burst has driven overflow markers
// (and the carry chain) through every stage, so the fallback spans are
// exercised, not just the all-unmarked fast path.
func CheckSWARMergeEqualsScalar(g Geometry, w *Workload) error {
	halves := w.Windows(2)
	if len(halves) < 2 {
		halves = []*Workload{w, w}
	}
	compare := func(label string, wa, wb *Workload) error {
		a, err := Serial(g, wa)
		if err != nil {
			return err
		}
		b, err := Serial(g, wb)
		if err != nil {
			return err
		}
		sa, err := Serial(g, wa)
		if err != nil {
			return err
		}
		sb, err := Serial(g, wb)
		if err != nil {
			return err
		}
		if err := a.Merge(b); err != nil {
			return fmt.Errorf("%s: merge: %w", label, err)
		}
		if err := sa.MergeScalar(sb); err != nil {
			return fmt.Errorf("%s: scalar merge: %w", label, err)
		}
		return requireEqual(label, sa, a)
	}
	if err := compare("word merge vs scalar", halves[0], halves[1]); err != nil {
		return err
	}
	if len(w.Keys) == 0 {
		return nil
	}
	// Saturation burst: hammer a handful of keys hard enough to overflow
	// low stages on both sides, so merged words hold marks and nonzero
	// carries.
	burst := &Workload{Keys: append([][]byte{}, halves[0].Keys...)}
	for i := 0; i < 4 && i < len(w.Keys); i++ {
		for r := 0; r < 4096; r++ {
			burst.Keys = append(burst.Keys, w.Keys[i])
		}
	}
	return compare("word merge vs scalar (saturated)", burst, halves[1])
}

// CheckRotateLinearity asserts window rotation is linear: ingesting the
// stream in consecutive windows with a Rotate between each, then merging
// every closed window with the live remainder, is bit-identical to serial
// ingest of the whole stream.
func CheckRotateLinearity(g Geometry, w *Workload, ref *core.Sketch, windows, shards int) error {
	sh, err := newSharded(g, shards)
	if err != nil {
		return err
	}
	parts := w.Windows(windows)
	var closed []*fcm.Sketch
	for i, p := range parts {
		for _, k := range p.Keys {
			sh.Update(k, 1)
		}
		if i < len(parts)-1 {
			closed = append(closed, sh.Rotate())
		}
	}
	total := sh.Snapshot()
	for _, c := range closed {
		if err := total.Merge(c); err != nil {
			return fmt.Errorf("merging closed window: %w", err)
		}
	}
	return requireEqual(fmt.Sprintf("rotate(%d windows)", windows), ref, total.Core())
}

// rootSaturated reports whether any root-stage counter sits at its counting
// capacity. Once that happens the sketch may have clamped (by update or by
// merge) and estimates can legitimately fall below the exact count, so
// one-sidedness stops being assertable. The check is conservative — a root
// that landed exactly on capacity without clamping also returns true —
// which is the right trade for a harness that must never report false
// divergence.
func rootSaturated(s *core.Sketch) bool {
	over := s.OverflowedNodes()
	return over[len(over)-1] > 0
}

// oracleOf replays w into the exact tracker.
func oracleOf(w *Workload) *exact.Tracker {
	tr := exact.New()
	for _, kb := range w.Keys {
		var k packet.Key
		copy(k.Buf[:], kb)
		k.Len = uint8(len(kb))
		tr.UpdateKey(k, 1)
	}
	return tr
}

// CheckOracle scores the sketch against the exact oracle: every estimate
// must be one-sided (never below the true count — Theorem 5.1's premise),
// the recorded total must be conserved per tree (no packets lost below the
// root saturation point), and, when maxAvgRelErr ≥ 0, the mean relative
// error over distinct flows must not exceed it.
func CheckOracle(g Geometry, w *Workload, ref *core.Sketch, maxAvgRelErr float64) error {
	if rootSaturated(ref) {
		// The workload pushed some root counter to capacity: estimates may
		// clamp below the truth, which is saturation semantics, not a
		// divergence. Bit-exactness across paths is still enforced by the
		// other checks.
		return nil
	}
	tr := oracleOf(w)
	var relSum float64
	var flows int
	var oneSidedErr error
	tr.Flows(func(k packet.Key, want uint64) {
		if oneSidedErr != nil {
			return
		}
		got := ref.Estimate(k.Bytes())
		if got < want {
			oneSidedErr = fmt.Errorf("estimate for %s underestimates: %d < exact %d", k.String(), got, want)
			return
		}
		relSum += float64(got-want) / float64(want)
		flows++
	})
	if oneSidedErr != nil {
		return oneSidedErr
	}
	// Total-count conservation: saturation clamps at the root, so only
	// assert when the stream could not have saturated the root stage.
	rootCap := ref.StageMax(len(g.Widths) - 1)
	if uint64(w.NumPackets()) <= rootCap {
		for t := 0; t < ref.NumTrees(); t++ {
			if got, want := ref.TotalCount(t), uint64(w.NumPackets()); got != want {
				return fmt.Errorf("tree %d total count %d, oracle saw %d packets", t, got, want)
			}
		}
	}
	if maxAvgRelErr >= 0 && flows > 0 {
		if are := relSum / float64(flows); are > maxAvgRelErr {
			return fmt.Errorf("average relative error %.4f exceeds bound %.4f (%d flows)",
				are, maxAvgRelErr, flows)
		}
	}
	return nil
}

// CheckAll runs the full differential battery for one (geometry, workload)
// pair: serial reference, then batch, wide-shim layout, sharded,
// engine-batcher, PISA, codec, rotation, SWAR-vs-scalar merge and oracle
// checks. Parameters that need
// variety (batch size, shard count) derive from the trial seed.
func CheckAll(g Geometry, w *Workload, seed int64) error {
	ref, err := Serial(g, w)
	if err != nil {
		return fmt.Errorf("serial reference: %w", err)
	}
	batch := 1 + int(uint64(seed)%511)
	shards := 1 + int((uint64(seed)>>16)%7)
	windows := 2 + int((uint64(seed)>>32)%3)
	if err := CheckBatchEqualsSerial(g, w, ref, batch); err != nil {
		return err
	}
	if err := CheckCompactEqualsWide(g, w, ref, batch); err != nil {
		return err
	}
	if err := CheckShardedEqualsSerial(g, w, ref, shards); err != nil {
		return err
	}
	if err := CheckEngineBatcherEqualsSerial(g, w, ref, shards, batch); err != nil {
		return err
	}
	if err := CheckPisaEqualsSerial(g, w, ref); err != nil {
		return err
	}
	if err := CheckCodecRoundTrip(g, ref); err != nil {
		return err
	}
	if err := CheckRotateLinearity(g, w, ref, windows, shards); err != nil {
		return err
	}
	if err := CheckSWARMergeEqualsScalar(g, w); err != nil {
		return err
	}
	return CheckOracle(g, w, ref, -1)
}
