package difftest

import (
	"encoding/binary"
	"math"
	"testing"

	fcm "github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/exact"
	"github.com/fcmsketch/fcm/internal/packet"
	"github.com/fcmsketch/fcm/internal/trace"
)

// trackerOfTrace replays a generated trace's ground truth into the exact
// oracle.
func trackerOfTrace(tr *trace.Trace) *exact.Tracker {
	ex := exact.New()
	for i, k := range tr.Keys {
		ex.UpdateKey(k, uint64(tr.Sizes[i]))
	}
	return ex
}

// TestEntropyAgainstOracle is table-driven over traffic skews: the EM-based
// entropy estimate from the sketch must stay within an explicit relative
// error bound of the exact oracle's entropy on the same seeded trace.
func TestEntropyAgainstOracle(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name      string
		alpha     float64
		packets   int
		memBytes  int
		maxRelErr float64
	}{
		{"mild-skew", 0.8, 15_000, 64 << 10, 0.10},
		{"caida-like", 1.0, 20_000, 64 << 10, 0.10},
		{"heavy-skew", 1.3, 20_000, 64 << 10, 0.10},
		{"tight-memory", 1.0, 15_000, 16 << 10, 0.15},
	}
	for ci, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			seed := *flagSeed
			if seed == 0 {
				seed = DeriveSeed(0xe7a0b1, ci)
			}
			t.Logf("trace seed %d (override with -seed)", seed)
			tr, err := trace.Generate(trace.Config{
				Model:        trace.ModelRankZipf,
				Alpha:        tc.alpha,
				TotalPackets: tc.packets,
				Seed:         seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			fw, err := fcm.NewFramework(fcm.Config{MemoryBytes: tc.memBytes, Seed: uint32(uint64(seed))})
			if err != nil {
				t.Fatal(err)
			}
			tr.Replay(fw)
			got, err := fw.Entropy(&fcm.EMOptions{Iterations: 4})
			if err != nil {
				t.Fatal(err)
			}
			want := trackerOfTrace(tr).Entropy()
			if want <= 0 || math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("degenerate entropy: est %f, exact %f", got, want)
			}
			if re := math.Abs(got-want) / want; re > tc.maxRelErr {
				t.Errorf("entropy relative error %.4f exceeds bound %.4f (est %.4f, exact %.4f)",
					re, tc.maxRelErr, got, want)
			}
		})
	}
}

// hcKey builds the 4-byte key for heavy-change flow f.
func hcKey(f uint32) packet.Key {
	var k packet.Key
	binary.BigEndian.PutUint32(k.Buf[:], f^0x7e57f10a)
	k.Len = 4
	return k
}

// TestHeavyChangesAgainstOracle is table-driven over memory regimes: the
// sketch's heavy-change report across two windows is compared against
// exact.HeavyChanges on the same flows, with explicit slack bounds. In the
// sparse regime (memory far exceeding flow count) the detected set must
// match the oracle exactly; in the tight regime every true change well
// above threshold must still be detected and every detection must be a
// genuine change of at least half the threshold (one-sided error can only
// inflate deltas by bounded collision noise).
func TestHeavyChangesAgainstOracle(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name      string
		memBytes  int
		threshold uint64
		// exactSet demands detected == oracle set; otherwise the
		// recall/precision slack bounds below apply.
		exactSet    bool
		recallAbove uint64 // every true |Δ| ≥ this must be detected
		minTrueAbs  uint64 // every detection must have true |Δ| ≥ this
	}{
		{"sparse-exact", 1 << 20, 200, true, 0, 0},
		{"tight-memory", 4 << 10, 200, false, 400, 100},
	}
	for ci, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			seed := *flagSeed
			if seed == 0 {
				seed = DeriveSeed(0x4ea7c4a6, ci)
			}
			t.Logf("workload seed %d (override with -seed)", seed)
			rng := newRng(seed)

			const flows = 300
			fw, err := fcm.NewFramework(fcm.Config{MemoryBytes: tc.memBytes, Seed: uint32(uint64(seed))})
			if err != nil {
				t.Fatal(err)
			}
			prevEx, curEx := exact.New(), exact.New()
			candidates := make([][]byte, 0, flows)
			for f := uint32(0); f < flows; f++ {
				k := hcKey(f)
				candidates = append(candidates, append([]byte(nil), k.Bytes()...))
				prev := uint64(1 + rng.Intn(150))
				cur := prev
				switch {
				case f%23 == 0: // grower: crosses the threshold upward
					cur = prev + tc.threshold*2 + uint64(rng.Intn(300))
				case f%29 == 0: // shrinker: crosses downward
					prev += tc.threshold*2 + uint64(rng.Intn(300))
				default: // jitter well below threshold/2
					cur = prev + uint64(rng.Intn(int(tc.threshold/4)))
				}
				prevEx.UpdateKey(k, prev)
				curEx.UpdateKey(k, cur)
				fw.Update(k.Bytes(), prev)
			}
			fw.Rotate()
			for f := uint32(0); f < flows; f++ {
				k := hcKey(f)
				fw.Update(k.Bytes(), curEx.Count(k))
			}

			got, err := fw.HeavyChanges(candidates, tc.threshold)
			if err != nil {
				t.Fatal(err)
			}
			gotSet := make(map[string]int64, len(got))
			for _, h := range got {
				gotSet[h.Key] = h.Delta()
			}
			want := exact.HeavyChanges(prevEx, curEx, tc.threshold)

			if tc.exactSet {
				if len(gotSet) != len(want) {
					t.Fatalf("detected %d changes, oracle has %d", len(gotSet), len(want))
				}
				for k, d := range want {
					gd, ok := gotSet[string(k.Bytes())]
					if !ok {
						t.Fatalf("missed exact change %s (Δ=%d)", k.String(), d)
					}
					if gd != d {
						t.Fatalf("change %s: detected Δ=%d, exact Δ=%d", k.String(), gd, d)
					}
				}
				return
			}
			// Tight regime: recall on large true changes...
			for k, d := range want {
				abs := uint64(d)
				if d < 0 {
					abs = uint64(-d)
				}
				if abs >= tc.recallAbove {
					if _, ok := gotSet[string(k.Bytes())]; !ok {
						t.Errorf("missed true change %s with |Δ|=%d ≥ %d", k.String(), abs, tc.recallAbove)
					}
				}
			}
			// ...and bounded false positives: every detection is a genuine
			// change of at least minTrueAbs.
			for ks := range gotSet {
				var k packet.Key
				copy(k.Buf[:], ks)
				k.Len = uint8(len(ks))
				p, c := prevEx.Count(k), curEx.Count(k)
				abs := c - p
				if p > c {
					abs = p - c
				}
				if abs < tc.minTrueAbs {
					t.Errorf("detection %s has true |Δ|=%d < %d (estimate noise exceeded slack)",
						k.String(), abs, tc.minTrueAbs)
				}
			}
		})
	}
}
