package difftest

import (
	"net"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/engine"
)

// TestDeltaCollectionEquivalence closes the differential loop over the
// codec v3 delta protocol: for every geometry in the equivalence matrix, a
// workload is replayed into a live engine in windows, and after each
// window the state assembled by a delta-mode client over real TCP —
// baseline plus applied deltas, with a mid-run injected baseline loss —
// must be register-bit-identical to a snapshot taken directly from the
// engine. The delta path is an optimization of the collection plane; this
// test is the claim that it is *only* an optimization.
func TestDeltaCollectionEquivalence(t *testing.T) {
	t.Parallel()
	for gi, g := range Geometries() {
		g := g
		t.Run(g.String(), func(t *testing.T) {
			t.Parallel()
			seed := *flagSeed
			if seed == 0 {
				seed = DeriveSeed(0xde17a9, gi)
			}
			t.Logf("workload seed %d (override with -seed)", seed)
			w := RandomWorkload(DeriveSeed(seed, 1))

			eng, err := engine.New(engine.Config{Build: func() (*core.Sketch, error) {
				return core.New(g.CoreConfig())
			}})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := collect.Serve(ln, eng, collect.ServerConfig{
				ReadTimeout:  time.Second,
				WriteTimeout: time.Second,
			})
			defer srv.Close() //nolint:errcheck // teardown
			cli, err := collect.NewClient(collect.ClientConfig{
				Addr:        srv.Addr(),
				DialTimeout: time.Second,
				IOTimeout:   time.Second,
				Delta:       true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close() //nolint:errcheck // teardown

			windows := w.Windows(8)
			for wi, win := range windows {
				for _, k := range win.Keys {
					eng.Update(k, 1)
				}
				if wi == len(windows)/2 {
					// Injected generation loss mid-run: the session must
					// degrade to a full snapshot, then resume deltas —
					// without perturbing a single register.
					cli.InvalidateDeltaState()
				}
				snap, err := cli.ReadSketch()
				if err != nil {
					t.Fatalf("window %d: %v", wi, err)
				}
				got, err := snap.Restore(nil)
				if err != nil {
					t.Fatalf("window %d: %v", wi, err)
				}
				direct := eng.SnapshotSketch()
				if d := direct.FirstRegisterDiff(got); d != "" {
					t.Fatalf("window %d: delta-collected state diverged from direct snapshot: %s", wi, d)
				}
			}

			// The loop must actually have exercised both protocol modes:
			// deltas in steady state, fulls at session start and after the
			// injected loss.
			st := cli.Stats()
			if st.DeltasApplied == 0 {
				t.Error("no deltas applied: the test never left the full-snapshot path")
			}
			if st.FullSnapshots < 2 {
				t.Errorf("expected ≥2 full snapshots (session start + injected loss), got %d", st.FullSnapshots)
			}
			if st.V2Downgrades != 0 {
				t.Errorf("client downgraded to v2 against a v3 server (%d times)", st.V2Downgrades)
			}
			fb := srv.Stats().Fallbacks["no_baseline"]
			if fb < 2 {
				t.Errorf("server counted %d no_baseline fallbacks, want ≥2", fb)
			}
		})
	}
}
