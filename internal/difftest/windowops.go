package difftest

import (
	"encoding/binary"
	"fmt"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/window"
)

// The window-ops state machine interprets a byte string as a program over
// the temporal layer: an owned-mode window.Ring driven in lockstep with a
// reference model — one serial core.Sketch per closed window plus one for
// the live window, and one map-of-exact-counts oracle per window. Queries
// fold the reference windows through MergeScalar (the exported scalar
// walk), so every ring answer — produced by the word-wide SWAR fold over
// possibly coarsened buckets — is checked bit-for-bit against a scalar
// fold of the exact covering windows, at every lookback depth, and
// one-sided against the summed per-window oracles.
//
// Opcodes (one byte, operands follow):
//
//	0x00 key inc  — Update(key, 1+inc%16) on ring and reference
//	0x01 n        — UpdateBatch of the next n%32+1 derived keys, inc 1
//	0x02          — Rotate: close the live window on both sides
//	0x03          — Coarsen: force one ring compaction (reference unchanged:
//	                coarsening must not alter any fold)
//	0x04          — Audit: at every lookback 1..windows, ring fold ==
//	                scalar fold of the covering windows; plus the full
//	                fold with the live window included
//	0x05 key      — QueryOverTime(key): equals the scalar fold's estimate
//	                and is one-sided against the summed oracles
//	0x06 key n    — Saturation burst: Update(key, (1+n)·8192), driving
//	                lane saturation through rotation and coarsening merges
//
// Anything else is a no-op, so every byte string is a valid program.

// wmMaxWindows caps rotations per program: each audit folds every
// lookback, so cost is quadratic in windows.
const wmMaxWindows = 24

// windowMachine is the lockstep state.
type windowMachine struct {
	g      Geometry
	ring   *window.Ring
	closed []*core.Sketch // reference: one serial sketch per closed window
	live   *core.Sketch
	// oracles[i] is the exact per-flow count of closed window i;
	// oracleLive covers the live window.
	oracles    []map[uint32]uint64
	oracleLive map[uint32]uint64
	keybuf     [4]byte
}

// key derives the 4-byte key for flow id f (masked small so collisions
// and overflow are common).
func (m *windowMachine) key(f byte) []byte {
	binary.BigEndian.PutUint32(m.keybuf[:], uint32(f%24)^0x5eed)
	return m.keybuf[:]
}

// update applies one increment to ring, reference and oracle.
func (m *windowMachine) update(k []byte, inc uint64) error {
	if err := m.ring.Update(k, inc); err != nil {
		return err
	}
	m.live.Update(k, inc)
	m.oracleLive[binary.BigEndian.Uint32(k)] += inc
	return nil
}

// rotate closes the live window on both sides.
func (m *windowMachine) rotate() error {
	if err := m.ring.Rotate(); err != nil {
		return err
	}
	m.closed = append(m.closed, m.live)
	m.oracles = append(m.oracles, m.oracleLive)
	live, err := m.g.NewCore()
	if err != nil {
		return err
	}
	m.live = live
	m.oracleLive = make(map[uint32]uint64)
	return nil
}

// scalarFold folds reference windows [from..to] (1-based, inclusive)
// through MergeScalar, with the live reference appended when withLive.
// A [0,0] range means "no closed windows covered" (live-only fold).
func (m *windowMachine) scalarFold(from, to uint64, withLive bool) (*core.Sketch, error) {
	sk, err := m.g.NewCore()
	if err != nil {
		return nil, err
	}
	for gen := from; gen != 0 && gen <= to; gen++ {
		if int(gen) > len(m.closed) {
			return nil, fmt.Errorf("coverage generation %d outside 1..%d", gen, len(m.closed))
		}
		if err := sk.MergeScalar(m.closed[gen-1]); err != nil {
			return nil, err
		}
	}
	if withLive {
		if err := sk.MergeScalar(m.live); err != nil {
			return nil, err
		}
	}
	return sk, nil
}

// audit checks the ring fold against the scalar reference fold at every
// lookback depth, then the full fold with the live window.
func (m *windowMachine) audit(step int) error {
	for lb := 1; lb <= len(m.closed); lb++ {
		got, cov, err := m.ring.SnapshotOverTime(window.LastWindows(lb))
		if err != nil {
			return fmt.Errorf("step %d: lookback %d: %v", step, lb, err)
		}
		if cov.Windows < lb {
			return fmt.Errorf("step %d: lookback %d ceiling covered only %d windows", step, lb, cov.Windows)
		}
		if cov.LastGeneration != uint64(len(m.closed)) {
			return fmt.Errorf("step %d: lookback %d newest covered generation %d, want %d",
				step, lb, cov.LastGeneration, len(m.closed))
		}
		ref, err := m.scalarFold(cov.FirstGeneration, cov.LastGeneration, false)
		if err != nil {
			return fmt.Errorf("step %d: lookback %d reference: %v", step, lb, err)
		}
		if d := ref.FirstRegisterDiff(got); d != "" {
			return fmt.Errorf("step %d: lookback %d (covering [%d,%d]) diverged from scalar fold: %s",
				step, lb, cov.FirstGeneration, cov.LastGeneration, d)
		}
	}
	// Full fold including the live window.
	got, cov, err := m.ring.SnapshotOverTime(window.LastWindows(0).WithLive())
	if err != nil {
		if err == window.ErrEmpty && len(m.closed) == 0 {
			return nil
		}
		return fmt.Errorf("step %d: live fold: %v", step, err)
	}
	var from, to uint64
	if len(m.closed) > 0 {
		from, to = cov.FirstGeneration, cov.LastGeneration
	}
	ref, err := m.scalarFold(from, to, true)
	if err != nil {
		return fmt.Errorf("step %d: live fold reference: %v", step, err)
	}
	if d := ref.FirstRegisterDiff(got); d != "" {
		return fmt.Errorf("step %d: live fold diverged from scalar fold: %s", step, d)
	}
	return nil
}

// queryKey checks QueryOverTime against the scalar fold and the summed
// oracles for one key, over the full live-inclusive lookback.
func (m *windowMachine) queryKey(step int, k []byte) error {
	est, cov, err := m.ring.QueryOverTime(k, window.LastWindows(0).WithLive())
	if err != nil {
		if err == window.ErrEmpty && len(m.closed) == 0 {
			return nil
		}
		return fmt.Errorf("step %d: query: %v", step, err)
	}
	var from, to uint64
	if len(m.closed) > 0 {
		from, to = cov.FirstGeneration, cov.LastGeneration
	}
	ref, err := m.scalarFold(from, to, true)
	if err != nil {
		return err
	}
	if want := ref.Estimate(k); est != want {
		return fmt.Errorf("step %d: QueryOverTime(%x) = %d, scalar fold says %d", step, k, est, want)
	}
	if rootSaturated(ref) {
		return nil
	}
	var exact uint64
	f := binary.BigEndian.Uint32(k)
	for gen := from; gen != 0 && gen <= to; gen++ {
		exact += m.oracles[gen-1][f]
	}
	exact += m.oracleLive[f]
	if est < exact {
		return fmt.Errorf("step %d: QueryOverTime(%x) underestimates: %d < exact %d", step, k, est, exact)
	}
	return nil
}

// RunWindowOps executes program over the lockstep window machine and
// returns the first broken invariant, or nil. It is the body of
// FuzzWindowOps and is also replayed over the checked-in corpus.
func RunWindowOps(program []byte) error {
	if len(program) == 0 {
		return nil
	}
	g := smGeometries[int(program[0])%len(smGeometries)]
	program = program[1:]
	shards := 1 + len(program)%4
	spanCap := 1 + len(program)%3
	ring, err := window.New(window.Config{
		Sketch:     g.FCMConfig(),
		Shards:     shards,
		SpanCap:    spanCap,
		MaxWindows: 4 * wmMaxWindows, // retention never truncates the reference
		Now:        fakeClock(),
	})
	if err != nil {
		return fmt.Errorf("building ring: %w", err)
	}
	live, err := g.NewCore()
	if err != nil {
		return fmt.Errorf("building live reference: %w", err)
	}
	m := &windowMachine{g: g, ring: ring, live: live, oracleLive: make(map[uint32]uint64)}

	steps := 0
	for i := 0; i < len(program) && steps < 512; steps++ {
		op := program[i]
		i++
		arg := func() byte {
			if i < len(program) {
				b := program[i]
				i++
				return b
			}
			return 0
		}
		switch op {
		case 0x00:
			if err := m.update(m.key(arg()), uint64(1+arg()%16)); err != nil {
				return err
			}
		case 0x01:
			n := int(arg())%32 + 1
			keys := make([][]byte, 0, n)
			for j := 0; j < n; j++ {
				kb := make([]byte, 4)
				copy(kb, m.key(arg()))
				keys = append(keys, kb)
				m.oracleLive[binary.BigEndian.Uint32(kb)]++
			}
			if err := m.ring.UpdateBatch(keys, 1); err != nil {
				return err
			}
			m.live.UpdateBatch(keys, 1)
		case 0x02:
			if len(m.closed) >= wmMaxWindows {
				continue
			}
			if err := m.rotate(); err != nil {
				return err
			}
		case 0x03:
			m.ring.Coarsen()
		case 0x04:
			if err := m.audit(steps); err != nil {
				return err
			}
		case 0x05:
			if err := m.queryKey(steps, m.key(arg())); err != nil {
				return err
			}
		case 0x06:
			if err := m.update(m.key(arg()), uint64(1+arg())*8192); err != nil {
				return err
			}
		}
	}
	// Terminal audit regardless of how the program ended.
	return m.audit(steps)
}
