package difftest

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/fcmsketch/fcm/internal/trace"
)

// updateCorpus rewrites the checked-in fuzz seed corpora under
// testdata/fuzz from the in-code seed definitions below:
//
//	go test ./internal/difftest -run TestSeedCorpora -update-corpus
var updateCorpus = flag.Bool("update-corpus", false, "rewrite the checked-in fuzz seed corpora")

// sketchOpsSeedPrograms returns handwritten programs that walk every
// opcode on every geometry, including the merge/rotate/reset seams a
// random mutator takes a while to discover.
func sketchOpsSeedPrograms() [][]byte {
	var progs [][]byte
	for geom := byte(0); geom < 5; geom++ {
		progs = append(progs,
			// Update a few flows, snapshot-compare, estimate.
			[]byte{geom, 0x00, 1, 5, 0x00, 2, 9, 0x00, 1, 5, 0x02, 0x06, 1, 0x06, 3},
			// Batch vs serial then rotate and keep going in the new window.
			[]byte{geom, 0x01, 17, 1, 2, 3, 4, 5, 0x02, 0x03, 0x00, 7, 15, 0x02, 0x06, 7},
			// Merge a side sketch in, then reset, then rebuild.
			[]byte{geom, 0x00, 4, 3, 0x04, 4, 12, 0x02, 0x06, 4, 0x05, 0x00, 4, 1, 0x06, 4},
		)
	}
	// Hot-loop a single flow far past the leaf and mid-stage capacity so
	// carry propagation and (on tiny roots) saturation are in the corpus.
	hot := []byte{0}
	for i := 0; i < 120; i++ {
		hot = append(hot, 0x00, 9, 255)
	}
	hot = append(hot, 0x02, 0x06, 9)
	progs = append(progs, hot)
	// Saturation bursts on the {8,16,32} geometry (table index 4): one burst
	// crosses the byte lane's 254 capacity, nine cross the uint16 lane's
	// 65534, many walk the root toward its clamp — with a wide-shim compare
	// and estimate after each phase.
	burst := []byte{4, 0x07, 3, 0, 0x02, 0x06, 3}
	for i := 0; i < 24; i++ {
		burst = append(burst, 0x07, 3, 255)
	}
	burst = append(burst, 0x02, 0x06, 3, 0x03, 0x07, 3, 7, 0x02)
	progs = append(progs, burst)
	// Merge/saturation interleaving on the {8,16,32} geometry: side-sketch
	// merges against registers that bursts keep pushing across the 254 and
	// 65534 lane boundaries, compared after every phase — the word-wide
	// merge's mark/carry fallback spans vs the scalar twin.
	mergeSat := []byte{4, 0x00, 3, 9, 0x04, 3, 15}
	for i := 0; i < 12; i++ {
		mergeSat = append(mergeSat, 0x07, 3, 255, 0x04, 3, byte(i), 0x02)
	}
	mergeSat = append(mergeSat, 0x06, 3, 0x03, 0x04, 3, 5, 0x07, 3, 9, 0x02)
	progs = append(progs, mergeSat)
	return progs
}

// pcapSeedInputs returns pcap byte strings: a well-formed capture written
// by the repo's own writer, plus truncation and corruption variants that
// must fail identically on both ingest paths.
func pcapSeedInputs() [][]byte {
	tr, err := trace.Generate(trace.Config{
		Model:        trace.ModelRankZipf,
		Alpha:        1.0,
		TotalPackets: 40,
		AvgFlowSize:  5,
		Seed:         11,
	})
	if err != nil {
		panic("difftest: corpus trace generation failed: " + err.Error())
	}
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf, 0, 1_000_000_000); err != nil {
		panic("difftest: corpus pcap write failed: " + err.Error())
	}
	whole := buf.Bytes()
	truncated := append([]byte(nil), whole[:len(whole)-7]...)
	headerOnly := append([]byte(nil), whole[:24]...)
	badMagic := append([]byte(nil), whole...)
	badMagic[0] ^= 0xff
	// Forged record length: global header claims SnapLen 0 and the first
	// record claims gigabytes — the reader must refuse, not allocate.
	forged := append([]byte(nil), whole...)
	forged[16], forged[17], forged[18], forged[19] = 0, 0, 0, 0 // SnapLen = 0
	forged[24+8], forged[24+9], forged[24+10], forged[24+11] = 0xff, 0xff, 0xff, 0x7f
	return [][]byte{whole, truncated, headerOnly, badMagic, forged}
}

// emSeedInputs returns virtual-counter encodings for FuzzEMInput: plain
// degree-1 counters, mixed degrees, an infeasible high-degree group, and a
// forged huge value that must trip the MaxSpan guard.
func emSeedInputs() [][]byte {
	return [][]byte{
		{0x02, 0x04, 0, 0, 3, 0, 0, 0, 7, 0, 1, 0, 12, 0},
		{0x06, 0x06, 1, 0, 40, 0, 2, 1, 44, 0, 0, 0, 0, 0, 4, 2, 200, 0},
		{0x07, 0x03, 15, 0, 2, 0},                             // degree 16, value 2: infeasible under theta
		{0x87, 0x05, 0, 0, 9, 1, 3, 0, 50, 0, 1, 255, 255, 1}, // control bit: forge past MaxSpan
	}
}

// windowOpsSeedPrograms returns handwritten programs for FuzzWindowOps
// that walk every opcode on every geometry, including deep rotation runs
// (coarsening cascades), forced compactions, and saturation bursts
// crossing lane boundaries inside coarsened buckets.
func windowOpsSeedPrograms() [][]byte {
	var progs [][]byte
	for geom := byte(0); geom < 5; geom++ {
		progs = append(progs,
			// Two windows, audit between and after, then a key query.
			[]byte{geom, 0x00, 1, 5, 0x00, 2, 9, 0x02, 0x04, 0x00, 7, 3, 0x02, 0x04, 0x05, 1},
			// Batch ingest, rotate, forced coarsen, audit at every lookback.
			[]byte{geom, 0x01, 17, 1, 2, 3, 0x02, 0x01, 9, 4, 5, 0x02, 0x03, 0x04, 0x05, 4},
			// Empty-window rotations interleaved with queries (ceiling over
			// zero-packet buckets must still fold exactly).
			[]byte{geom, 0x02, 0x02, 0x00, 3, 1, 0x02, 0x04, 0x05, 3},
		)
	}
	// Deep rotation run on the default-shaped geometry: enough windows to
	// cascade the exponential histogram through several levels, audited
	// mid-run and at the end.
	deep := []byte{4}
	for w := 0; w < 16; w++ {
		deep = append(deep, 0x00, byte(w), byte(w), 0x02)
		if w%5 == 4 {
			deep = append(deep, 0x04)
		}
	}
	deep = append(deep, 0x04, 0x05, 3)
	progs = append(progs, deep)
	// Saturation bursts across rotations: lane boundaries (254/65534) are
	// crossed inside closed buckets, so coarsening merges see marks and
	// carries; forced Coarsen compacts them further.
	burst := []byte{4}
	for i := 0; i < 8; i++ {
		burst = append(burst, 0x06, 3, 255, 0x02)
	}
	burst = append(burst, 0x03, 0x03, 0x04, 0x05, 3)
	progs = append(progs, burst)
	return progs
}

// corpusTargets maps each fuzz target to its seed inputs.
func corpusTargets() map[string][][]byte {
	return map[string][][]byte{
		"FuzzSketchOps":  sketchOpsSeedPrograms(),
		"FuzzPcapIngest": pcapSeedInputs(),
		"FuzzEMInput":    emSeedInputs(),
	}
}

// corpusEntry renders one seed in the native `go test fuzz v1` corpus
// encoding for a single []byte argument.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// pinCorpus pins one target's checked-in corpus to its in-code seeds:
// with -update-corpus it rewrites testdata/fuzz/<target>, without it it
// fails if the corpus directory is missing, empty, or stale.
func pinCorpus(t *testing.T, target string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if *updateCorpus {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, corpusEntry(s), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corpus for %s unreadable (run with -update-corpus to regenerate): %v", target, err)
	}
	if len(ents) < len(seeds) {
		t.Fatalf("corpus for %s has %d entries, want ≥ %d (run with -update-corpus)", target, len(ents), len(seeds))
	}
	for i, s := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("corpus for %s: %v (run with -update-corpus)", target, err)
		}
		if !bytes.Equal(got, corpusEntry(s)) {
			t.Fatalf("corpus entry %s is stale (run with -update-corpus)", name)
		}
	}
}

// TestSeedCorpora pins the checked-in corpora to the in-code seed
// definitions. CI relies on this plus an explicit non-empty check in
// ci.sh.
func TestSeedCorpora(t *testing.T) {
	for target, seeds := range corpusTargets() {
		pinCorpus(t, target, seeds)
	}
}

// TestWindowSeedCorpus pins the FuzzWindowOps corpus; regenerate with
//
//	go test ./internal/difftest -run TestWindowSeedCorpus -update-corpus
func TestWindowSeedCorpus(t *testing.T) {
	pinCorpus(t, "FuzzWindowOps", windowOpsSeedPrograms())
}
