package difftest

import (
	"sync"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/window"
)

// TestWindowedDifferentialEquivalence is the headline windowed sweep: for
// every fixed geometry, seeded random workloads are cut into windows,
// ingested through the temporal ring (rotating after each), and every
// over-time query is checked bit-for-bit against a serial ingest of the
// covering windows Coverage reports — across lookback depths, coarsening
// structures, live-edge inclusion and rotate/query races. Any divergence
// fails with the seed that reproduces it.
func TestWindowedDifferentialEquivalence(t *testing.T) {
	for gi, g := range Geometries() {
		g := g
		t.Run(g.String(), func(t *testing.T) {
			t.Parallel()
			trials(t, int64(0x817d0000)+int64(gi), 30, func(t *testing.T, seed int64) {
				w := RandomWorkload(seed)
				if err := CheckWindowAll(g, w, seed); err != nil {
					t.Fatalf("workload %d packets: %v", w.NumPackets(), err)
				}
			})
		})
	}
}

// TestWindowedRandomGeometry extends the windowed sweep to randomly drawn
// geometries, so the over-time invariant is not an artifact of the fixed
// matrix: arity, depth, widths, leaf width, seed and hash mode all derive
// from the trial seed.
func TestWindowedRandomGeometry(t *testing.T) {
	t.Parallel()
	trials(t, 0x817d9e03, 25, func(t *testing.T, seed int64) {
		rng := newRng(seed)
		g := RandomGeometry(rng)
		w := RandomWorkload(DeriveSeed(seed, 1))
		if err := CheckWindowAll(g, w, seed); err != nil {
			t.Fatalf("geometry %s, %d packets: %v", g, w.NumPackets(), err)
		}
	})
}

// TestWindowRotateRacingWriters rotates the ring while writers are mid-
// stream and over-time queries run concurrently. Each update must land in
// exactly one window, so after quiescing and closing the live remainder,
// the full-history fold recovers the serial sketch bit-for-bit regardless
// of where the rotations fell. Under -race this is the temporal layer's
// concurrency gate: rotation swaps, covering-set scans and pooled scratch
// reuse all race live SWAR writers here.
func TestWindowRotateRacingWriters(t *testing.T) {
	t.Parallel()
	trials(t, 0x817d4ace, 8, func(t *testing.T, seed int64) {
		g := Geometries()[int(uint64(seed)>>8)%len(Geometries())]
		w := RandomWorkload(seed)
		ref, err := Serial(g, w)
		if err != nil {
			t.Fatal(err)
		}
		r, err := newRing(g, 1+int((uint64(seed)>>16)%4), 1+int((uint64(seed)>>32)%3), 256)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for _, part := range w.Split(3) {
			part := part
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, k := range part.Keys {
					if err := r.Update(k, 1); err != nil {
						panic(err)
					}
				}
			}()
		}
		// Concurrent readers: over-time folds must never tear while
		// rotations and writers are in flight.
		stop := make(chan struct{})
		var readers sync.WaitGroup
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := r.SnapshotOverTime(window.LastWindows(0).WithLive()); err != nil && err != window.ErrEmpty {
					panic(err)
				}
			}
		}()
		for n := 2 + int(uint64(seed)%3); n > 0; n-- {
			time.Sleep(200 * time.Microsecond)
			if err := r.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		close(stop)
		readers.Wait()
		// Close the live remainder, then fold everything.
		if err := r.Rotate(); err != nil {
			t.Fatal(err)
		}
		got, cov, err := r.SnapshotOverTime(window.LastWindows(0))
		if err != nil {
			t.Fatal(err)
		}
		if cov.FirstGeneration != 1 {
			t.Fatalf("full fold starts at generation %d, want 1", cov.FirstGeneration)
		}
		if err := requireEqual("rotate racing writers", ref, got); err != nil {
			t.Fatal(err)
		}
	})
}

// TestWindowOpsCorpusReplay replays the checked-in FuzzWindowOps seed
// corpus through the lockstep machine directly, so the corpus stays a
// regression suite even in runs that never invoke the fuzz engine.
func TestWindowOpsCorpusReplay(t *testing.T) {
	t.Parallel()
	for i, prog := range windowOpsSeedPrograms() {
		if err := RunWindowOps(prog); err != nil {
			t.Errorf("seed program %d: %v", i, err)
		}
	}
}
