// Word-wide (SWAR) fold kernels for the merge plane. The typed counter
// lanes of PR 6 store a stage contiguously at its native width — []uint8,
// []uint16 or []uint32 — so one 64-bit load carries 8, 4 or 2 counters.
// Merging two sketches is then mostly a vector add: for a word where
// neither source holds an overflow marker, no per-counter sum reaches the
// stage's counting capacity, and no carry is pending from the child stage,
// the merged word is the plain field-wise sum, computed and stored in a
// handful of ALU ops. Words that do contain marks, would overflow, or have
// incoming carry fall back to the scalar reference walk for exactly those
// counters, so the result is bit-identical to MergeScalar by construction
// (and the difftest harness re-proves it on every geometry).
//
// The field-wise tests use two classic SWAR identities over a word with
// the per-field high bits masked by hi:
//
//	sum  = ((a &^ hi) + (b &^ hi)) ^ ((a ^ b) & hi)      field-wise a+b
//	cout = ((a & b) | ((a | b) &^ sum)) & hi             per-field carry-out
//
// and detect "any field ≥ mark" by adding the bias (fieldCap − mark) to
// every field of the sum and watching for carry-out: sum + bias overflows
// a field exactly when sum ≥ mark. Because stage values never exceed the
// overflow marker, a field sum below the mark also proves neither source
// field was the mark — one test covers both fast-path conditions.
package core

import (
	"encoding/binary"

	"github.com/fcmsketch/fcm/internal/sketch"
)

// Per-field high-bit masks and single-field replication factors for the
// three lane widths.
const (
	hi8  = 0x8080808080808080
	rep8 = 0x0101010101010101

	hi16  = 0x8000800080008000
	rep16 = 0x0001000100010001

	hi32  = 0x8000000080000000
	rep32 = 0x0000000100000001
)

// swarFold adds a and b field-wise under the high-bit mask hi and reports
// whether the whole word took the fast path: no field carried out and no
// field sum reached the stage mark (encoded in bias, see the package
// comment). When ok is false the returned sum must be discarded.
func swarFold(a, b, hi, bias uint64) (sum uint64, ok bool) {
	low := (a &^ hi) + (b &^ hi)
	sum = low ^ ((a ^ b) & hi)
	cout := ((a & b) | ((a | b) &^ sum)) & hi
	low2 := (sum &^ hi) + (bias &^ hi)
	s2 := low2 ^ ((sum ^ bias) & hi)
	over := ((sum & bias) | ((sum | bias) &^ s2)) & hi
	return sum, cout|over == 0
}

// carryScratch is a reusable per-sketch carry buffer. take returns a
// zeroed prefix; only the prefix a previous merge actually dirtied is
// cleared, so a merge whose fast path never promotes (the common case)
// touches no carry memory at all beyond the slice header.
type carryScratch struct {
	buf   []uint64
	dirty int // prefix that may hold nonzero entries
}

// take returns buf[:n] with every entry zero.
func (c *carryScratch) take(n int) []uint64 {
	if cap(c.buf) < n {
		c.buf = make([]uint64, n)
		c.dirty = 0
	}
	c.buf = c.buf[:cap(c.buf)]
	clear(c.buf[:c.dirty])
	c.dirty = 0
	return c.buf[:n]
}

// note records that entries of the last take-n prefix may now be nonzero.
func (c *carryScratch) note(n int) {
	if n > c.dirty {
		c.dirty = n
	}
}

// mergeStage folds stage l of tree b into tree a. carry holds per-node
// incoming promotions from the child stage (nil means provably all-zero);
// next accumulates promotions into the parent stage (nil at the root).
// It reports whether any entry of next became nonzero.
func (s *Sketch) mergeStage(a, b *tree, l int, carry, next []uint64) bool {
	sa, sb := a.views[l], b.views[l]
	if sa.kind != sb.kind {
		// Cross-layout merge (compact vs the 32-bit widening shim): the
		// lanes disagree, so this stage walks the scalar reference.
		return s.mergeSpanScalar(a, b, l, 0, sa.n, carry, next)
	}
	mark := uint64(a.mark[l])
	switch sa.kind {
	case laneU8:
		return s.mergeStageWords(a, b, l,
			a.lane8[sa.base:sa.base+sa.n], b.lane8[sb.base:sb.base+sb.n],
			1, hi8, (0x100-mark)*rep8, carry, next)
	case laneU16:
		return s.mergeStageWords(a, b, l,
			sketch.BytesU16(a.lane16[sa.base:sa.base+sa.n]),
			sketch.BytesU16(b.lane16[sb.base:sb.base+sb.n]),
			2, hi16, (0x1_0000-mark)*rep16, carry, next)
	default:
		return s.mergeStageWords(a, b, l,
			sketch.BytesU32(a.lane32[sa.base:sa.base+sa.n]),
			sketch.BytesU32(b.lane32[sb.base:sb.base+sb.n]),
			4, hi32, (0x1_0000_0000-mark)*rep32, carry, next)
	}
}

// mergeStageWords is the word loop shared by the three lane widths: ab and
// bb are the two stages' raw lane bytes (native order), fieldBytes the
// counter width, hi/bias the width's SWAR masks. Whole words take the one-
// add fast path; a word with pending carry, a marker, or an overflowing
// field falls back to the scalar span, as does the sub-word tail.
func (s *Sketch) mergeStageWords(a, b *tree, l int, ab, bb []byte, fieldBytes int, hi, bias uint64, carry, next []uint64) bool {
	n := a.views[l].n
	epw := 8 / fieldBytes // counters per 64-bit word
	produced := false
	i := 0
	for ; i+epw <= n; i += epw {
		if carry != nil {
			cw := uint64(0)
			for j := 0; j < epw; j++ {
				cw |= carry[i+j]
			}
			if cw != 0 {
				if s.mergeSpanScalar(a, b, l, i, i+epw, carry, next) {
					produced = true
				}
				continue
			}
		}
		off := i * fieldBytes
		aw := binary.NativeEndian.Uint64(ab[off:])
		bw := binary.NativeEndian.Uint64(bb[off:])
		if sum, ok := swarFold(aw, bw, hi, bias); ok {
			binary.NativeEndian.PutUint64(ab[off:], sum)
			continue
		}
		if s.mergeSpanScalar(a, b, l, i, i+epw, carry, next) {
			produced = true
		}
	}
	if i < n {
		if s.mergeSpanScalar(a, b, l, i, n, carry, next) {
			produced = true
		}
	}
	return produced
}

// mergeSpanScalar merges registers [lo,hi) of stage l one counter at a
// time — the reference semantics (see MergeScalar) the word path defers to
// for counters it cannot prove safe. It reports whether it promoted any
// excess into next.
func (s *Sketch) mergeSpanScalar(a, b *tree, l, lo, hi int, carry, next []uint64) bool {
	last := len(s.widths) - 1
	max := uint64(a.max[l])
	mark := a.mark[l]
	produced := false
	for i := lo; i < hi; i++ {
		va, vb := a.load(l, i), b.load(l, i)
		var c uint64
		if carry != nil {
			c = carry[i]
		}
		if l == last {
			// Root stage saturates like the update path.
			c += uint64(va) + uint64(vb)
			if c > max {
				c = max
			}
			a.store(l, i, uint32(c))
			continue
		}
		overflowed := va == mark || vb == mark
		if va == mark {
			c += max
		} else {
			c += uint64(va)
		}
		if vb == mark {
			c += max
		} else {
			c += uint64(vb)
		}
		if overflowed || c > max {
			a.store(l, i, mark)
			if c > max {
				next[i/s.k] += c - max
				produced = true
			}
		} else {
			a.store(l, i, uint32(c))
		}
	}
	return produced
}
