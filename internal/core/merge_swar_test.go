package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// swarGeometries covers the lane shapes the word kernel has to get right:
// the paper's byte-aligned default (8×u8 / 4×u16 / 2×u32 counters per
// word), tiny widths that saturate constantly, a leaf width that is not a
// multiple of 8 (sub-word tails), the flag-bit encoding (different mark),
// and the 32-bit widening shim (every stage in the u32 lane).
func swarGeometries() []Config {
	return []Config{
		{K: 8, Trees: 2, LeafWidth: 4096, Widths: []int{8, 16, 32}},
		{K: 2, Trees: 2, LeafWidth: 16, Widths: []int{3, 5, 8}},
		{K: 2, Trees: 3, LeafWidth: 44, Widths: []int{4, 9, 20}},
		{K: 2, Trees: 2, LeafWidth: 16, Widths: []int{3, 5, 8}, FlagBitIndicator: true},
		{K: 4, Trees: 2, LeafWidth: 64, Widths: []int{8, 16, 32}, WideLanes: true},
	}
}

// fillPair builds two independently loaded sketches of cfg plus identical
// copies for the scalar reference, loading burst keys hot enough to drive
// marks and carries through every stage when hot is large.
func fillPair(t *testing.T, cfg Config, seed int64, hot int) (a, b, sa, sb *Sketch) {
	t.Helper()
	mk := func() *Sketch {
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	a, b, sa, sb = mk(), mk(), mk(), mk()
	rng := rand.New(rand.NewSource(seed))
	key := make([]byte, 4)
	load := func(dst, ref *Sketch, n int) {
		for i := 0; i < n; i++ {
			k := rng.Uint32() % 64
			reps := 1 + rng.Intn(3)
			if rng.Intn(8) == 0 {
				reps += hot
			}
			for r := 0; r < reps; r++ {
				key[0], key[1], key[2], key[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
				dst.Update(key, 1)
				ref.Update(key, 1)
			}
		}
	}
	load(a, sa, 400)
	load(b, sb, 400)
	return a, b, sa, sb
}

func TestMergeMatchesScalar(t *testing.T) {
	for gi, cfg := range swarGeometries() {
		for _, hot := range []int{0, 500, 50000} {
			t.Run(fmt.Sprintf("g%d/hot%d", gi, hot), func(t *testing.T) {
				a, b, sa, sb := fillPair(t, cfg, int64(gi*31+hot), hot)
				if err := a.Merge(b); err != nil {
					t.Fatalf("Merge: %v", err)
				}
				if err := sa.MergeScalar(sb); err != nil {
					t.Fatalf("MergeScalar: %v", err)
				}
				if d := a.FirstRegisterDiff(sa); d != "" {
					t.Fatalf("word merge diverged from scalar: %s", d)
				}
				// Repeated folds keep the two paths in lockstep (carry
				// scratch from the first merge must not leak into the next).
				if err := a.Merge(sb); err != nil {
					t.Fatalf("second Merge: %v", err)
				}
				if err := sa.MergeScalar(b); err != nil {
					t.Fatalf("second MergeScalar: %v", err)
				}
				if d := a.FirstRegisterDiff(sa); d != "" {
					t.Fatalf("second fold diverged: %s", d)
				}
			})
		}
	}
}

// TestMergeMatchesScalarCrossLayout folds the 32-bit widening shim into a
// compact sketch and vice versa: the per-stage lane kinds disagree, so the
// kernel must route every stage through the scalar span.
func TestMergeMatchesScalarCrossLayout(t *testing.T) {
	compact := Config{K: 2, Trees: 2, LeafWidth: 32, Widths: []int{4, 8, 16}}
	wide := compact
	wide.WideLanes = true

	for _, dir := range []struct {
		name     string
		dst, src Config
	}{
		{"wide-into-compact", compact, wide},
		{"compact-into-wide", wide, compact},
	} {
		t.Run(dir.name, func(t *testing.T) {
			mk := func(c Config) *Sketch {
				s, err := New(c)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				return s
			}
			a, sa := mk(dir.dst), mk(dir.dst)
			b, sb := mk(dir.src), mk(dir.src)
			rng := rand.New(rand.NewSource(7))
			key := make([]byte, 4)
			for i := 0; i < 3000; i++ {
				k := rng.Uint32() % 48
				key[0], key[1], key[2], key[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
				if i%2 == 0 {
					a.Update(key, 1)
					sa.Update(key, 1)
				} else {
					b.Update(key, 1)
					sb.Update(key, 1)
				}
			}
			if err := a.Merge(b); err != nil {
				t.Fatalf("Merge: %v", err)
			}
			if err := sa.MergeScalar(sb); err != nil {
				t.Fatalf("MergeScalar: %v", err)
			}
			if d := a.FirstRegisterDiff(sa); d != "" {
				t.Fatalf("cross-layout merge diverged from scalar: %s", d)
			}
		})
	}
}

// TestMergeAllocs pins the zero-alloc contract: after the first call has
// sized the carry scratch, Merge allocates nothing.
func TestMergeAllocs(t *testing.T) {
	cfg := Config{K: 8, Trees: 2, LeafWidth: 4096, Widths: []int{8, 16, 32}}
	a, b, _, _ := fillPair(t, cfg, 1, 500)
	if err := a.Merge(b); err != nil { // warm-up sizes the scratch
		t.Fatalf("Merge: %v", err)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := a.Merge(b); err != nil {
			t.Fatalf("Merge: %v", err)
		}
	}); n != 0 {
		t.Fatalf("Merge allocates %.1f objects/op after warm-up, want 0", n)
	}
}

// TestFirstRegisterDiffPrescreen exercises the lane-bytes equality fast
// path: identical state short-circuits, any single-register perturbation
// in any lane is still found, and a compact/wide pair with equal values
// compares equal through the scalar walk.
func TestFirstRegisterDiffPrescreen(t *testing.T) {
	cfg := Config{K: 2, Trees: 2, LeafWidth: 32, Widths: []int{4, 12, 24}}
	a, _, b, _ := fillPair(t, cfg, 3, 200)
	if d := a.FirstRegisterDiff(b); d != "" {
		t.Fatalf("identically loaded sketches differ: %s", d)
	}
	for l := 0; l < a.Depth(); l++ {
		vals := a.StageValues(1, l)
		saved := vals[3]
		bumped := append([]uint32(nil), vals...)
		bumped[3] = saved + 1
		if err := a.SetStageValues(1, l, bumped); err != nil {
			t.Fatalf("SetStageValues: %v", err)
		}
		if d := a.FirstRegisterDiff(b); d == "" {
			t.Fatalf("stage %d perturbation not detected", l)
		}
		bumped[3] = saved
		if err := a.SetStageValues(1, l, bumped); err != nil {
			t.Fatalf("SetStageValues restore: %v", err)
		}
	}
	if d := a.FirstRegisterDiff(b); d != "" {
		t.Fatalf("restore left a diff: %s", d)
	}

	wideCfg := cfg
	wideCfg.WideLanes = true
	w, err := New(wideCfg)
	if err != nil {
		t.Fatalf("New wide: %v", err)
	}
	for tr := 0; tr < a.NumTrees(); tr++ {
		for l := 0; l < a.Depth(); l++ {
			if err := w.SetStageValues(tr, l, a.StageValues(tr, l)); err != nil {
				t.Fatalf("SetStageValues wide: %v", err)
			}
		}
	}
	if d := a.FirstRegisterDiff(w); d != "" {
		t.Fatalf("compact vs wide with equal values differ: %s", d)
	}
}

// benchPair builds the paper's default geometry (K=8, {8,16,32}, 4096
// leaves × 2 trees ≈ 36 KB of counters) loaded with a realistic skewed
// mix, plus an accumulator of the same shape.
func benchPair(b *testing.B) (acc, x, y *Sketch) {
	b.Helper()
	cfg := Config{K: 8, Trees: 2, LeafWidth: 4096, Widths: []int{8, 16, 32}}
	mk := func() *Sketch {
		s, err := New(cfg)
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		return s
	}
	acc, x, y = mk(), mk(), mk()
	rng := rand.New(rand.NewSource(42))
	key := make([]byte, 4)
	for i := 0; i < 60000; i++ {
		k := uint32(rng.ExpFloat64() * 700)
		key[0], key[1], key[2], key[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
		if i%2 == 0 {
			x.Update(key, 1)
		} else {
			y.Update(key, 1)
		}
	}
	return acc, x, y
}

func BenchmarkMergePair(b *testing.B) {
	acc, x, y := benchPair(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		if err := acc.Merge(x); err != nil {
			b.Fatal(err)
		}
		if err := acc.Merge(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergePairScalar is the recorded baseline BenchmarkMergePair is
// judged against (BENCH_foldpath.json).
func BenchmarkMergePairScalar(b *testing.B) {
	acc, x, y := benchPair(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		if err := acc.MergeScalar(x); err != nil {
			b.Fatal(err)
		}
		if err := acc.MergeScalar(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEqualRegisters(b *testing.B) {
	_, x, _ := benchPair(b)
	y := x.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.EqualRegisters(y) {
			b.Fatal("clones differ")
		}
	}
}
