// Package core implements FCM-Sketch (§3 of the paper): a k-ary tree of
// counter stages where small counters at the leaves overflow into fewer,
// larger counters toward the root. The overflow indicator is the counter's
// maximum value (2^b−1 means "count 2^b−2 and overflowed"), so no separate
// flag bits are spent. A multi-tree sketch takes the minimum estimate over
// d independent trees, exactly like Count-Min.
//
// The package also implements the data-plane queries of §3.3 (count query,
// Linear-Counting cardinality) and the control-plane conversion of the
// sketch into virtual counters (§4.1) consumed by the EM estimator.
package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/fcmsketch/fcm/internal/hashing"
)

// Stats is the sketch's optional hot-path self-telemetry: update volume,
// per-boundary overflow promotions, and root-stage saturations, all plain
// atomics so readers (a scraping goroutine) never coordinate with the
// writer. A sketch with no Stats attached pays only a nil check per stage
// visited; with Stats attached, Update adds one uncontended atomic add
// (promotions and saturations are off the common path — they fire only
// when a counter actually overflows).
//
// Counts are cumulative over the sketch's lifetime; Reset does not clear
// them (scrapers take deltas). Several sketches may share one Stats to
// aggregate, or each shard may carry its own for per-shard series.
type Stats struct {
	// Updates counts Update calls (not packets×trees: one per call).
	Updates atomic.Uint64
	// Promotions[l] counts nodes of stage l (0-based, leaves first) that
	// reached their overflow marker and promoted their excess to stage
	// l+1 — the 8-bit → 16-bit → 32-bit escalation of §3.1. Length is
	// depth−1: the root has no parent to promote into.
	Promotions []atomic.Uint64
	// Saturations counts updates clamped at the root stage's counting
	// capacity — the sketch's hard overflow, after which counts are
	// underestimates.
	Saturations atomic.Uint64
}

// NewStats builds a Stats sized for a sketch of the given stage depth.
func NewStats(depth int) *Stats {
	if depth < 1 {
		depth = 1
	}
	return &Stats{Promotions: make([]atomic.Uint64, depth-1)}
}

// PromotionCount returns Promotions[l], or 0 when l is out of range.
func (s *Stats) PromotionCount(l int) uint64 {
	if l < 0 || l >= len(s.Promotions) {
		return 0
	}
	return s.Promotions[l].Load()
}

// Config parameterizes an FCM-Sketch.
type Config struct {
	// K is the tree arity; stage l+1 has 1/K the nodes of stage l. The
	// paper recommends 8 for FCM and 16 for FCM+TopK (§7.4).
	K int
	// Trees is the number of independent trees d (default/paper: 2).
	Trees int
	// Widths is the counter bit width of each stage, leaves first. The
	// paper's deployment uses byte-aligned {8, 16, 32}; smaller widths
	// (e.g. the {2, 4, 8} of Fig. 4) are accepted for testing.
	Widths []int
	// MemoryBytes is the total counter budget across all trees. Exactly
	// one of MemoryBytes and LeafWidth must be set.
	MemoryBytes int
	// LeafWidth directly sets w1 (nodes at stage 1 per tree), bypassing
	// the memory solver. Must be a positive multiple of K^(stages-1).
	LeafWidth int
	// Hash provides the independent per-tree hash functions; nil selects
	// BobHash with a fixed seed.
	Hash hashing.Family
	// FlagBitIndicator switches to the explicit overflow-flag encoding
	// used by earlier counter-sharing designs [19, 60]: one bit of every
	// node is spent on the flag, halving the counting range. The paper's
	// design intuition #2 argues the max-value marker is strictly better;
	// this option exists for the ablation experiment that verifies it.
	FlagBitIndicator bool
	// Conservative enables conservative-update semantics across trees
	// (Estan & Varghese [26], generalized to FCM): on update, only trees
	// whose current count query falls below min+inc are raised, and only
	// up to that target. §7.1 notes CU improves FCM about as much as it
	// improves CM; the paper skips it in the evaluation, so it is off by
	// default and exercised by the ablation benchmarks. Multi-tree only —
	// with a single tree it is a no-op. Not implementable on PISA (it
	// needs all trees' reads before any write).
	Conservative bool
}

// DefaultWidths is the paper's byte-aligned stage layout.
func DefaultWidths() []int { return []int{8, 16, 32} }

// tree is a single k-ary FCM tree.
type tree struct {
	k      int
	stages [][]uint32 // node values per stage
	max    []uint32   // counting capacity per stage: 2^b − 2
	mark   []uint32   // overflow marker per stage: 2^b − 1
	hasher hashing.Hasher
	stats  *Stats // shared with the owning Sketch; nil = uninstrumented
}

// Sketch is a (possibly multi-tree) FCM-Sketch.
type Sketch struct {
	trees        []*tree
	k            int
	widths       []int
	w1           int
	conservative bool
	stats        *Stats // nil = uninstrumented
}

// New builds an FCM-Sketch from cfg.
func New(cfg Config) (*Sketch, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("core: K must be ≥ 2, got %d", cfg.K)
	}
	if cfg.Trees <= 0 {
		return nil, fmt.Errorf("core: Trees must be positive, got %d", cfg.Trees)
	}
	widths := cfg.Widths
	if len(widths) == 0 {
		widths = DefaultWidths()
	}
	if len(widths) < 2 {
		return nil, fmt.Errorf("core: need at least 2 stages, got %d", len(widths))
	}
	for i, b := range widths {
		if b < 2 || b > 32 {
			return nil, fmt.Errorf("core: stage %d width %d out of range [2,32]", i, b)
		}
		if i > 0 && b <= widths[i-1] {
			return nil, fmt.Errorf("core: stage widths must increase, got %v", widths)
		}
	}
	depth := len(widths)
	leafAlign := 1
	for i := 1; i < depth; i++ {
		leafAlign *= cfg.K
	}

	w1 := cfg.LeafWidth
	switch {
	case w1 > 0 && cfg.MemoryBytes > 0:
		return nil, fmt.Errorf("core: set only one of MemoryBytes and LeafWidth")
	case w1 > 0:
		if w1%leafAlign != 0 {
			return nil, fmt.Errorf("core: LeafWidth %d not a multiple of K^(stages-1) = %d", w1, leafAlign)
		}
	case cfg.MemoryBytes > 0:
		w1 = solveLeafWidth(cfg.MemoryBytes, cfg.Trees, cfg.K, widths)
		if w1 < leafAlign {
			return nil, fmt.Errorf("core: memory %dB too small for %d trees of %d-ary depth %d",
				cfg.MemoryBytes, cfg.Trees, cfg.K, depth)
		}
	default:
		return nil, fmt.Errorf("core: one of MemoryBytes or LeafWidth is required")
	}

	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0xfc0fc0)
	}
	// Copy widths so a caller mutating its Config slice after New cannot
	// corrupt the sketch geometry.
	s := &Sketch{k: cfg.K, widths: append([]int(nil), widths...), w1: w1, conservative: cfg.Conservative}
	for t := 0; t < cfg.Trees; t++ {
		tr := &tree{k: cfg.K, hasher: fam.New(t)}
		w := w1
		for _, b := range widths {
			tr.stages = append(tr.stages, make([]uint32, w))
			if cfg.FlagBitIndicator {
				// Counting bits: b−1; the marker position stands in
				// for the dedicated flag bit.
				m := uint32(1) << uint(b-1)
				tr.mark = append(tr.mark, m)
				tr.max = append(tr.max, m-1)
			} else {
				m := uint32(1)<<uint(b) - 1
				tr.mark = append(tr.mark, m)
				tr.max = append(tr.max, m-1)
			}
			w /= cfg.K
		}
		s.trees = append(s.trees, tr)
	}
	return s, nil
}

// solveLeafWidth computes the largest w1 (multiple of k^(depth−1)) whose
// full tree fits the per-tree byte budget.
func solveLeafWidth(memBytes, trees, k int, widths []int) int {
	perTree := float64(memBytes) / float64(trees)
	bytesPerLeaf := 0.0 // bytes consumed per leaf slot across all stages
	div := 1.0
	for _, b := range widths {
		bytesPerLeaf += float64(b) / 8 / div
		div *= float64(k)
	}
	w1 := int(perTree / bytesPerLeaf)
	align := 1
	for i := 1; i < len(widths); i++ {
		align *= k
	}
	return w1 / align * align
}

// Update implements sketch.Updater: Algorithm 1 applied to every tree.
// Counting capacity absorbed at a stage is max−value; everything beyond
// (including the marker-setting increment) feeds forward to the parent.
func (s *Sketch) Update(key []byte, inc uint64) {
	if inc == 0 {
		return
	}
	if s.stats != nil {
		s.stats.Updates.Add(1)
	}
	if s.conservative && len(s.trees) > 1 {
		s.updateConservative(key, inc)
		return
	}
	for _, t := range s.trees {
		t.update(key, inc)
	}
}

// updateConservative raises each tree's count query only up to
// min-over-trees + inc, the CU rule generalized to FCM. The estimate stays
// one-sided (it never drops below the true count) because the minimum tree
// was a valid overestimate before the update and gains the full increment.
func (s *Sketch) updateConservative(key []byte, inc uint64) {
	min := uint64(math.MaxUint64)
	for _, t := range s.trees {
		if v := t.query(key); v < min {
			min = v
		}
	}
	target := min + inc
	for _, t := range s.trees {
		if cur := t.query(key); cur < target {
			t.update(key, target-cur)
		}
	}
}

func (t *tree) update(key []byte, inc uint64) {
	idx := hashing.Reduce(t.hasher.Hash(key), len(t.stages[0]))
	last := len(t.stages) - 1
	rem := inc
	for l := 0; ; l++ {
		v := t.stages[l][idx]
		if l == last {
			// Final stage: saturate at the counting capacity.
			sum := uint64(v) + rem
			if sum > uint64(t.max[l]) {
				sum = uint64(t.max[l])
				if t.stats != nil {
					t.stats.Saturations.Add(1)
				}
			}
			t.stages[l][idx] = uint32(sum)
			return
		}
		if v != t.mark[l] {
			capacity := uint64(t.max[l] - v)
			if rem <= capacity {
				t.stages[l][idx] = v + uint32(rem)
				return
			}
			t.stages[l][idx] = t.mark[l]
			rem -= capacity
			if t.stats != nil {
				t.stats.Promotions[l].Add(1)
			}
		}
		idx /= t.k
	}
}

// Estimate implements sketch.Estimator: the count query of §3.2, minimized
// over trees.
func (s *Sketch) Estimate(key []byte) uint64 {
	min := uint64(math.MaxUint64)
	for _, t := range s.trees {
		if v := t.query(key); v < min {
			min = v
		}
	}
	return min
}

func (t *tree) query(key []byte) uint64 {
	idx := hashing.Reduce(t.hasher.Hash(key), len(t.stages[0]))
	last := len(t.stages) - 1
	est := uint64(0)
	for l := 0; ; l++ {
		v := t.stages[l][idx]
		if l == last || v != t.mark[l] {
			est += uint64(v)
			return est
		}
		est += uint64(t.max[l])
		idx /= t.k
	}
}

// Cardinality implements the Linear-Counting estimator of §3.3:
// n̂ = −w1·ln(w0/w1) with w0 averaged over the trees' stage-1 arrays.
func (s *Sketch) Cardinality() float64 {
	w0 := s.EmptyLeaves()
	w1 := float64(s.w1)
	if w0 <= 0 {
		// Linear counting saturates when no leaf is empty; return its
		// limit with a single empty slot, the standard LC fallback.
		w0 = 1
	}
	return -w1 * math.Log(w0/w1)
}

// EmptyLeaves returns the number of zero-valued stage-1 nodes averaged over
// the trees (the w0 of §3.3).
func (s *Sketch) EmptyLeaves() float64 {
	total := 0
	for _, t := range s.trees {
		for _, v := range t.stages[0] {
			if v == 0 {
				total++
			}
		}
	}
	return float64(total) / float64(len(s.trees))
}

// MemoryBytes implements sketch.Sized: the exact bit cost of all counters.
func (s *Sketch) MemoryBytes() int {
	bits := 0
	for _, t := range s.trees {
		for l, st := range t.stages {
			bits += len(st) * s.widths[l]
		}
	}
	return bits / 8
}

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for _, t := range s.trees {
		for _, st := range t.stages {
			for i := range st {
				st[i] = 0
			}
		}
	}
}

// Clone returns a deep copy of the sketch: counters are copied, hash
// functions (stateless after construction) are shared. The clone ingests
// and merges independently of the original, so it serves as a consistent
// read snapshot or as a per-shard replica. Telemetry is NOT carried over:
// a clone is a snapshot, and double-counting its updates into the
// original's Stats would corrupt the series.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		k:            s.k,
		widths:       append([]int(nil), s.widths...),
		w1:           s.w1,
		conservative: s.conservative,
	}
	for _, t := range s.trees {
		ct := &tree{
			k:      t.k,
			max:    append([]uint32(nil), t.max...),
			mark:   append([]uint32(nil), t.mark...),
			hasher: t.hasher,
		}
		for _, st := range t.stages {
			ct.stages = append(ct.stages, append([]uint32(nil), st...))
		}
		c.trees = append(c.trees, ct)
	}
	return c
}

// SetStats attaches (or, with nil, detaches) hot-path telemetry. st's
// Promotions must cover depth−1 boundaries (NewStats(s.Depth())). Attach
// before concurrent ingest starts: the pointer write is not synchronized
// with in-flight updates.
func (s *Sketch) SetStats(st *Stats) {
	if st != nil && len(st.Promotions) < len(s.widths)-1 {
		panic(fmt.Sprintf("core: Stats sized for %d boundaries, sketch has %d",
			len(st.Promotions), len(s.widths)-1))
	}
	s.stats = st
	for _, t := range s.trees {
		t.stats = st
	}
}

// Stats returns the attached telemetry, or nil.
func (s *Sketch) Stats() *Stats { return s.stats }

// StageOccupancy returns, per stage, the fraction of non-zero nodes
// averaged over the trees — the saturation signal for the 8/16/32-bit
// levels (stage-1 occupancy is also what drives Linear Counting error).
// It scans every register: call it on snapshots at scrape time, not on
// the ingest path.
func (s *Sketch) StageOccupancy() []float64 {
	occ := make([]float64, len(s.widths))
	for _, t := range s.trees {
		for l, st := range t.stages {
			nz := 0
			for _, v := range st {
				if v != 0 {
					nz++
				}
			}
			occ[l] += float64(nz) / float64(len(st))
		}
	}
	for l := range occ {
		occ[l] /= float64(len(s.trees))
	}
	return occ
}

// OverflowedNodes returns, per stage, the number of nodes sitting at the
// overflow marker summed across trees (the root stage reports clamped
// nodes). Like StageOccupancy, it scans registers — scrape time only.
func (s *Sketch) OverflowedNodes() []int {
	over := make([]int, len(s.widths))
	last := len(s.widths) - 1
	for _, t := range s.trees {
		for l, st := range t.stages {
			bound := t.mark[l]
			if l == last {
				bound = t.max[l]
			}
			for _, v := range st {
				if v >= bound {
					over[l]++
				}
			}
		}
	}
	return over
}

// K returns the tree arity.
func (s *Sketch) K() int { return s.k }

// Depth returns the number of stages.
func (s *Sketch) Depth() int { return len(s.widths) }

// NumTrees returns the number of trees d.
func (s *Sketch) NumTrees() int { return len(s.trees) }

// LeafWidth returns w1, the number of stage-1 nodes per tree.
func (s *Sketch) LeafWidth() int { return s.w1 }

// Widths returns the per-stage counter bit widths.
func (s *Sketch) Widths() []int { return append([]int(nil), s.widths...) }

// StageMax returns θ_l, the counting capacity 2^b−2 of stage l (0-based).
func (s *Sketch) StageMax(l int) uint64 { return uint64(s.trees[0].max[l]) }

// StageValues returns the raw node values of stage l of tree t. The slice
// aliases internal state; callers must treat it as read-only. It exists for
// the control-plane collector and the PISA compiler.
func (s *Sketch) StageValues(t, l int) []uint32 { return s.trees[t].stages[l] }

// SetStageValues overwrites stage l of tree t, used when reconstructing a
// sketch from a collected snapshot. The length must match.
func (s *Sketch) SetStageValues(t, l int, vals []uint32) error {
	dst := s.trees[t].stages[l]
	if len(vals) != len(dst) {
		return fmt.Errorf("core: stage %d/%d length %d, want %d", t, l, len(vals), len(dst))
	}
	copy(dst, vals)
	return nil
}

// TotalCount returns the sum of counts recorded in tree t (each overflowed
// node contributes its capacity, terminals their value). It equals the
// number of packets fed in, absent final-stage saturation, and is the
// invariant the virtual-counter conversion must preserve.
func (s *Sketch) TotalCount(t int) uint64 {
	tr := s.trees[t]
	total := uint64(0)
	for l, st := range tr.stages {
		for _, v := range st {
			if v == tr.mark[l] && l < len(tr.stages)-1 {
				total += uint64(tr.max[l])
			} else {
				total += uint64(v)
			}
		}
	}
	return total
}
