// Package core implements FCM-Sketch (§3 of the paper): a k-ary tree of
// counter stages where small counters at the leaves overflow into fewer,
// larger counters toward the root. The overflow indicator is the counter's
// maximum value (2^b−1 means "count 2^b−2 and overflowed"), so no separate
// flag bits are spent. A multi-tree sketch takes the minimum estimate over
// d independent trees, exactly like Count-Min.
//
// The package also implements the data-plane queries of §3.3 (count query,
// Linear-Counting cardinality) and the control-plane conversion of the
// sketch into virtual counters (§4.1) consumed by the EM estimator.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/sketch"
)

// Stats is the sketch's optional hot-path self-telemetry: update volume,
// per-boundary overflow promotions, and root-stage saturations, all plain
// atomics so readers (a scraping goroutine) never coordinate with the
// writer. A sketch with no Stats attached pays only a nil check per stage
// visited; with Stats attached, Update adds one uncontended atomic add
// (promotions and saturations are off the common path — they fire only
// when a counter actually overflows).
//
// Counts are cumulative over the sketch's lifetime; Reset does not clear
// them (scrapers take deltas). Several sketches may share one Stats to
// aggregate, or each shard may carry its own for per-shard series.
type Stats struct {
	// Updates counts Update calls (not packets×trees: one per call).
	Updates atomic.Uint64
	// Promotions[l] counts nodes of stage l (0-based, leaves first) that
	// reached their overflow marker and promoted their excess to stage
	// l+1 — the 8-bit → 16-bit → 32-bit escalation of §3.1. Length is
	// depth−1: the root has no parent to promote into.
	Promotions []atomic.Uint64
	// Saturations counts updates clamped at the root stage's counting
	// capacity — the sketch's hard overflow, after which counts are
	// underestimates.
	Saturations atomic.Uint64
}

// NewStats builds a Stats sized for a sketch of the given stage depth.
func NewStats(depth int) *Stats {
	if depth < 1 {
		depth = 1
	}
	return &Stats{Promotions: make([]atomic.Uint64, depth-1)}
}

// PromotionCount returns Promotions[l], or 0 when l is out of range.
func (s *Stats) PromotionCount(l int) uint64 {
	if l < 0 || l >= len(s.Promotions) {
		return 0
	}
	return s.Promotions[l].Load()
}

// Config parameterizes an FCM-Sketch.
type Config struct {
	// K is the tree arity; stage l+1 has 1/K the nodes of stage l. The
	// paper recommends 8 for FCM and 16 for FCM+TopK (§7.4).
	K int
	// Trees is the number of independent trees d (default/paper: 2).
	Trees int
	// Widths is the counter bit width of each stage, leaves first. The
	// paper's deployment uses byte-aligned {8, 16, 32}; smaller widths
	// (e.g. the {2, 4, 8} of Fig. 4) are accepted for testing.
	Widths []int
	// MemoryBytes is the total counter budget across all trees. Exactly
	// one of MemoryBytes and LeafWidth must be set.
	MemoryBytes int
	// LeafWidth directly sets w1 (nodes at stage 1 per tree), bypassing
	// the memory solver. Must be a positive multiple of K^(stages-1).
	LeafWidth int
	// Hash provides the independent per-tree hash functions; nil selects
	// BobHash with a fixed seed.
	Hash hashing.Family
	// FlagBitIndicator switches to the explicit overflow-flag encoding
	// used by earlier counter-sharing designs [19, 60]: one bit of every
	// node is spent on the flag, halving the counting range. The paper's
	// design intuition #2 argues the max-value marker is strictly better;
	// this option exists for the ablation experiment that verifies it.
	FlagBitIndicator bool
	// PerTreeHash forces one independent hash evaluation per tree (the
	// pre-one-pass behavior), even when Hash supports deriving all tree
	// indexes from a single pass (hashing.WideFamily). Counter placement
	// differs between the two modes, so sketches are only mergeable with
	// sketches of the same mode; the default (one-pass, when available) is
	// faster and statistically equivalent.
	PerTreeHash bool
	// Conservative enables conservative-update semantics across trees
	// (Estan & Varghese [26], generalized to FCM): on update, only trees
	// whose current count query falls below min+inc are raised, and only
	// up to that target. §7.1 notes CU improves FCM about as much as it
	// improves CM; the paper skips it in the evaluation, so it is off by
	// default and exercised by the ablation benchmarks. Multi-tree only —
	// with a single tree it is a no-op. Not implementable on PISA (it
	// needs all trees' reads before any write).
	Conservative bool
	// WideLanes stores every stage in the 32-bit lane — the pre-compaction
	// uniform layout. Counter semantics (placement, marks, capacities) are
	// bit-identical to the default compact layout; only the resident bytes
	// differ. It exists as the widening reference shim for the
	// differential harness and for memory-ablation benchmarks.
	WideLanes bool
}

// DefaultWidths is the paper's byte-aligned stage layout.
func DefaultWidths() []int { return []int{8, 16, 32} }

// laneKind selects which typed counter lane a stage's nodes live in.
type laneKind uint8

const (
	laneU8  laneKind = iota // stage widths ≤ 8 bits: one byte per node
	laneU16                 // 9–16 bits: two bytes per node
	laneU32                 // 17–32 bits: four bytes per node
)

// laneKindFor returns the narrowest lane that holds a b-bit counter, or
// the 32-bit lane when the widening shim is requested.
func laneKindFor(b int, wide bool) laneKind {
	switch {
	case wide:
		return laneU32
	case b <= 8:
		return laneU8
	case b <= 16:
		return laneU16
	default:
		return laneU32
	}
}

// stageView locates one stage inside its typed lane.
type stageView struct {
	kind laneKind
	base int // node offset inside the lane
	n    int // node count
}

// tree is a single k-ary FCM tree. Stages live in three typed counter
// lanes — bytes, uint16s and uint32s — each contiguous, leaves first
// within a lane, so the paper's width-heterogeneous hardware layout (§3.1:
// level 1 saturates at 254, level 2 at 65534) is also the software
// resident layout: the leaf stage costs one byte per node instead of four,
// and the update walk touches 1+2+4 bytes per tree instead of 12.
type tree struct {
	// Hot-walk fields lead the struct so the unrolled walk's working set
	// (three lane headers plus the denormalized limits) spans the fewest
	// cache lines.
	lane8  []uint8
	lane16 []uint16
	lane32 []uint32
	kshift uint // log2(K) when K is a power of two; the parent step is then a shift
	// std3 marks the hardware-shaped fast layout — exactly three stages,
	// one whole stage per lane — whose walk is fully unrolled with each
	// level's mark and capacity denormalized at the lane's native width.
	std3     bool
	m8, c8   uint8  // stage-0 overflow marker and counting capacity
	m16, c16 uint16 // stage-1 overflow marker and counting capacity
	cap32    uint32 // root counting capacity
	k        int
	w0       int         // leaf-stage width, denormalized for the hot walk
	stats    *Stats      // shared with the owning Sketch; nil = uninstrumented
	views    []stageView // per-stage lane placement (cold paths index through load/store)
	lims     []limits    // per-stage mark+max pairs for the generic walk
	max      []uint32    // counting capacity per stage: 2^b − 2
	mark     []uint32    // overflow marker per stage: 2^b − 1
	hasher   hashing.Hasher
}

// limits pairs a stage's overflow marker with its counting capacity so the
// generic walk reads both with a single slice access.
type limits struct {
	mark, max uint32
}

// parent returns the stage-(l+1) index of leaf-walk index idx.
func (t *tree) parent(idx int) int {
	if t.kshift != 0 {
		return idx >> t.kshift
	}
	return idx / t.k
}

// initLanes allocates the typed counter lanes and builds the per-stage
// views for a tree of the sketch's geometry — the one place (shared by New
// and Clone) that knows how stages pack into lanes.
func (s *Sketch) initLanes(t *tree) {
	var n8, n16, n32 int
	w := s.w1
	for _, b := range s.widths {
		t.views = append(t.views, stageView{kind: laneKindFor(b, s.wideLanes), n: w})
		switch t.views[len(t.views)-1].kind {
		case laneU8:
			t.views[len(t.views)-1].base = n8
			n8 += w
		case laneU16:
			t.views[len(t.views)-1].base = n16
			n16 += w
		default:
			t.views[len(t.views)-1].base = n32
			n32 += w
		}
		w /= s.k
	}
	t.lane8 = make([]uint8, n8)
	t.lane16 = make([]uint16, n16)
	t.lane32 = make([]uint32, n32)

	t.std3 = len(s.widths) == 3 &&
		t.views[0].kind == laneU8 && t.views[1].kind == laneU16 && t.views[2].kind == laneU32
	if t.std3 {
		t.m8, t.c8 = uint8(t.mark[0]), uint8(t.max[0])
		t.m16, t.c16 = uint16(t.mark[1]), uint16(t.max[1])
		t.cap32 = t.max[2]
	}
}

// load returns the value of node i of stage l at uniform 32-bit width.
// Cold paths (merge, conversion, scans, collection) go through load/store;
// the ingest walks address the lanes directly.
func (t *tree) load(l, i int) uint32 {
	sv := t.views[l]
	switch sv.kind {
	case laneU8:
		return uint32(t.lane8[sv.base+i])
	case laneU16:
		return uint32(t.lane16[sv.base+i])
	default:
		return t.lane32[sv.base+i]
	}
}

// store writes node i of stage l. v must fit the stage's width; callers
// inside this package only store values bounded by the stage mark.
func (t *tree) store(l, i int, v uint32) {
	sv := t.views[l]
	switch sv.kind {
	case laneU8:
		t.lane8[sv.base+i] = uint8(v)
	case laneU16:
		t.lane16[sv.base+i] = uint16(v)
	default:
		t.lane32[sv.base+i] = v
	}
}

// stageLen returns the node count of stage l.
func (t *tree) stageLen(l int) int { return t.views[l].n }

// Sketch is a (possibly multi-tree) FCM-Sketch.
type Sketch struct {
	trees        []*tree
	k            int
	widths       []int
	w1           int
	conservative bool
	wideLanes    bool
	// std3 mirrors the trees' fast-layout flag so the per-packet dispatch
	// is one field read on the sketch already in cache.
	std3 bool
	// wide, when non-nil, selects one-pass multi-index hashing: a single
	// lookup3 pass per packet yields every tree's leaf index (the concrete
	// type devirtualizes the per-packet hash call). nil falls back to one
	// hasher evaluation per tree.
	wide  *hashing.BobWide
	stats *Stats // nil = uninstrumented
	// Carry scratch for Merge, lazily sized to stageLen(1) and alternated
	// by level parity so a stage never reads the buffer it writes. Owned by
	// the destination sketch; Clone deliberately does not copy it.
	mergeCarry [2]carryScratch
}

// New builds an FCM-Sketch from cfg.
func New(cfg Config) (*Sketch, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("core: K must be ≥ 2, got %d", cfg.K)
	}
	if cfg.Trees <= 0 {
		return nil, fmt.Errorf("core: Trees must be positive, got %d", cfg.Trees)
	}
	widths := cfg.Widths
	if len(widths) == 0 {
		widths = DefaultWidths()
	}
	if len(widths) < 2 {
		return nil, fmt.Errorf("core: need at least 2 stages, got %d", len(widths))
	}
	for i, b := range widths {
		if b < 2 || b > 32 {
			return nil, fmt.Errorf("core: stage %d width %d out of range [2,32]", i, b)
		}
		if i > 0 && b <= widths[i-1] {
			return nil, fmt.Errorf("core: stage widths must increase, got %v", widths)
		}
	}
	depth := len(widths)
	leafAlign := 1
	for i := 1; i < depth; i++ {
		leafAlign *= cfg.K
	}

	w1 := cfg.LeafWidth
	switch {
	case w1 > 0 && cfg.MemoryBytes > 0:
		return nil, fmt.Errorf("core: set only one of MemoryBytes and LeafWidth")
	case w1 > 0:
		if w1%leafAlign != 0 {
			return nil, fmt.Errorf("core: LeafWidth %d not a multiple of K^(stages-1) = %d", w1, leafAlign)
		}
	case cfg.MemoryBytes > 0:
		w1 = solveLeafWidth(cfg.MemoryBytes, cfg.Trees, cfg.K, widths)
		if w1 < leafAlign {
			return nil, fmt.Errorf("core: memory %dB too small for %d trees of %d-ary depth %d",
				cfg.MemoryBytes, cfg.Trees, cfg.K, depth)
		}
	default:
		return nil, fmt.Errorf("core: one of MemoryBytes or LeafWidth is required")
	}

	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0xfc0fc0)
	}
	// Copy widths so a caller mutating its Config slice after New cannot
	// corrupt the sketch geometry.
	s := &Sketch{
		k:            cfg.K,
		widths:       append([]int(nil), widths...),
		w1:           w1,
		conservative: cfg.Conservative,
		wideLanes:    cfg.WideLanes,
	}
	if !cfg.PerTreeHash {
		if wf, ok := fam.(hashing.WideFamily); ok {
			s.wide = wf.Wide()
		}
	}
	var kshift uint
	if cfg.K&(cfg.K-1) == 0 {
		kshift = uint(bits.TrailingZeros(uint(cfg.K)))
	}
	for t := 0; t < cfg.Trees; t++ {
		tr := &tree{k: cfg.K, kshift: kshift, w0: w1, hasher: fam.New(t)}
		for _, b := range widths {
			if cfg.FlagBitIndicator {
				// Counting bits: b−1; the marker position stands in
				// for the dedicated flag bit.
				m := uint32(1) << uint(b-1)
				tr.mark = append(tr.mark, m)
				tr.max = append(tr.max, m-1)
			} else {
				m := uint32(1)<<uint(b) - 1
				tr.mark = append(tr.mark, m)
				tr.max = append(tr.max, m-1)
			}
		}
		for l := range tr.mark {
			tr.lims = append(tr.lims, limits{mark: tr.mark[l], max: tr.max[l]})
		}
		s.initLanes(tr)
		s.trees = append(s.trees, tr)
	}
	s.std3 = s.trees[0].std3
	return s, nil
}

// OnePassHash reports whether the sketch derives all tree indexes from a
// single hash pass (the default with a hashing.WideFamily such as
// BobFamily) rather than evaluating one hash per tree. The two modes place
// counters differently and are therefore not mergeable with each other.
func (s *Sketch) OnePassHash() bool { return s.wide != nil }

// solveLeafWidth computes the largest w1 (multiple of k^(depth−1)) whose
// full tree fits the per-tree byte budget.
func solveLeafWidth(memBytes, trees, k int, widths []int) int {
	perTree := float64(memBytes) / float64(trees)
	bytesPerLeaf := 0.0 // bytes consumed per leaf slot across all stages
	div := 1.0
	for _, b := range widths {
		bytesPerLeaf += float64(b) / 8 / div
		div *= float64(k)
	}
	w1 := int(perTree / bytesPerLeaf)
	align := 1
	for i := 1; i < len(widths); i++ {
		align *= k
	}
	return w1 / align * align
}

// Update implements sketch.Updater: Algorithm 1 applied to every tree.
// Counting capacity absorbed at a stage is max−value; everything beyond
// (including the marker-setting increment) feeds forward to the parent.
func (s *Sketch) Update(key []byte, inc uint64) {
	if inc == 0 {
		return
	}
	if s.stats != nil {
		s.stats.Updates.Add(1)
	}
	if s.conservative && len(s.trees) > 1 {
		s.updateConservative(key, inc)
		return
	}
	if w := s.wide; w != nil {
		// One hash pass for all trees; indexes derive from its two lanes.
		pc, pb := w.Pair(key)
		if ts := s.trees; len(ts) == 2 {
			// The paper's default shape, with the lane derivations
			// inlined (WideIndex itself is over the inlining budget).
			i0 := hashing.WideIndex0(pc, pb, s.w1)
			i1 := hashing.WideIndex1(pc, pb, s.w1)
			if s.std3 {
				ts[0].updateAt3(i0, inc)
				ts[1].updateAt3(i1, inc)
			} else {
				ts[0].updateAtAny(i0, inc)
				ts[1].updateAtAny(i1, inc)
			}
			return
		}
		for i, t := range s.trees {
			t.updateAt(hashing.WideIndex(pc, pb, i, s.w1), inc)
		}
		return
	}
	for _, t := range s.trees {
		t.updateAt(t.leafIndex(key), inc)
	}
}

// UpdateBatch implements sketch.BatchUpdater: it records inc occurrences
// of every key in keys, equivalent to (but cheaper than) one Update call
// per key. Batching amortizes the per-call overhead — the stats check, the
// conservative/wide dispatch, and the interface call the caller paid to
// reach the sketch — and keeps keys cache-hot across the per-tree walks.
// It performs no allocation.
func (s *Sketch) UpdateBatch(keys [][]byte, inc uint64) {
	if inc == 0 || len(keys) == 0 {
		return
	}
	if s.stats != nil {
		s.stats.Updates.Add(uint64(len(keys)))
	}
	if s.conservative && len(s.trees) > 1 {
		for _, key := range keys {
			s.updateConservative(key, inc)
		}
		return
	}
	if w := s.wide; w != nil {
		if ts := s.trees; len(ts) == 2 {
			t0, t1, w1 := ts[0], ts[1], s.w1
			if s.std3 {
				for _, key := range keys {
					pc, pb := w.Pair(key)
					t0.updateAt3(hashing.WideIndex0(pc, pb, w1), inc)
					t1.updateAt3(hashing.WideIndex1(pc, pb, w1), inc)
				}
				return
			}
			for _, key := range keys {
				pc, pb := w.Pair(key)
				t0.updateAtAny(hashing.WideIndex0(pc, pb, w1), inc)
				t1.updateAtAny(hashing.WideIndex1(pc, pb, w1), inc)
			}
			return
		}
		for _, key := range keys {
			pc, pb := w.Pair(key)
			for i, t := range s.trees {
				t.updateAt(hashing.WideIndex(pc, pb, i, s.w1), inc)
			}
		}
		return
	}
	for _, key := range keys {
		for _, t := range s.trees {
			t.updateAt(t.leafIndex(key), inc)
		}
	}
}

// leafIndex returns the per-tree-hash leaf index for key (the fallback
// when one-pass wide hashing is unavailable or disabled).
func (t *tree) leafIndex(key []byte) int {
	return hashing.Reduce(t.hasher.Hash(key), t.w0)
}

// leafIndexes fills dst (length = number of trees) with every tree's leaf
// index for key, using one wide pass when available.
func (s *Sketch) leafIndexes(key []byte, dst []int) {
	if w := s.wide; w != nil {
		pc, pb := w.Pair(key)
		for i := range dst {
			dst[i] = hashing.WideIndex(pc, pb, i, s.w1)
		}
		return
	}
	for i, t := range s.trees {
		dst[i] = t.leafIndex(key)
	}
}

// treeIndexes returns every tree's leaf index for key, on the stack for
// the common tree counts.
func (s *Sketch) treeIndexes(key []byte, buf *[8]int) []int {
	var idxs []int
	if d := len(s.trees); d <= len(buf) {
		idxs = buf[:d]
	} else {
		idxs = make([]int, d)
	}
	s.leafIndexes(key, idxs)
	return idxs
}

// updateConservative raises each tree's count query only up to
// min-over-trees + inc, the CU rule generalized to FCM. The estimate stays
// one-sided (it never drops below the true count) because the minimum tree
// was a valid overestimate before the update and gains the full increment.
func (s *Sketch) updateConservative(key []byte, inc uint64) {
	var buf [8]int
	idxs := s.treeIndexes(key, &buf)
	min := uint64(math.MaxUint64)
	for i, t := range s.trees {
		if v := t.queryAt(idxs[i]); v < min {
			min = v
		}
	}
	target := min + inc
	for i, t := range s.trees {
		if cur := t.queryAt(idxs[i]); cur < target {
			t.updateAt(idxs[i], target-cur)
		}
	}
}

// updateAt runs Algorithm 1's leaf-to-root walk from leaf index idx,
// dispatching to the unrolled three-lane walk when the tree has the
// hardware-shaped layout.
func (t *tree) updateAt(idx int, inc uint64) {
	if t.std3 {
		t.updateAt3(idx, inc)
		return
	}
	t.updateAtAny(idx, inc)
}

// updateAt3 is the walk for the standard three-stage layout, unrolled over
// the byte, uint16 and uint32 lanes. Overflow checks compare against the
// marker at the lane's native width (254/65534 for the paper's 8/16-bit
// levels), and each level touches exactly one node of one lane — 1, 2 and
// 4 bytes — so the whole walk usually stays inside two cache lines.
func (t *tree) updateAt3(idx int, inc uint64) {
	// Fields are read into locals before each lane store (a []uint8 store
	// could alias the tree struct as far as the compiler knows, forcing
	// reloads), and nothing a level doesn't need is touched before its
	// early return: the dominant no-overflow leaf update reads exactly the
	// lane header, the two denormalized limits and one byte.
	lane8, m8 := t.lane8, t.m8
	if v := lane8[idx]; v != m8 {
		c := uint64(t.c8 - v)
		if inc <= c {
			lane8[idx] = v + uint8(inc)
			return
		}
		lane8[idx] = m8
		inc -= c
		if st := t.stats; st != nil {
			st.Promotions[0].Add(1)
		}
	}
	kshift := t.kshift
	if kshift != 0 {
		idx >>= kshift
	} else {
		idx /= t.k
	}
	lane16, m16 := t.lane16, t.m16
	if v := lane16[idx]; v != m16 {
		c := uint64(t.c16 - v)
		if inc <= c {
			lane16[idx] = v + uint16(inc)
			return
		}
		lane16[idx] = m16
		inc -= c
		if st := t.stats; st != nil {
			st.Promotions[1].Add(1)
		}
	}
	if kshift != 0 {
		idx >>= kshift
	} else {
		idx /= t.k
	}
	// Root stage: saturate at the counting capacity.
	lane32 := t.lane32
	sum := uint64(lane32[idx]) + inc
	if mx := uint64(t.cap32); sum > mx {
		sum = mx
		if st := t.stats; st != nil {
			st.Saturations.Add(1)
		}
	}
	lane32[idx] = uint32(sum)
}

// updateAtAny is the generic walk for non-standard geometries (sub-byte
// widths, depth ≠ 3, the widening shim): per level it resolves the stage's
// lane through load/store and checks the fused (mark,max) limits.
func (t *tree) updateAtAny(idx int, inc uint64) {
	lims := t.lims
	last := len(lims) - 1
	// Non-root stages; the root is peeled out of the loop because it
	// saturates instead of promoting.
	for l := 0; l < last; l++ {
		v := t.load(l, idx)
		if lim := lims[l]; v != lim.mark {
			capacity := uint64(lim.max - v)
			if inc <= capacity {
				t.store(l, idx, v+uint32(inc))
				return
			}
			t.store(l, idx, lim.mark)
			inc -= capacity
			if t.stats != nil {
				t.stats.Promotions[l].Add(1)
			}
		}
		idx = t.parent(idx)
	}
	// Root stage: saturate at the counting capacity.
	sum := uint64(t.load(last, idx)) + inc
	if mx := uint64(lims[last].max); sum > mx {
		sum = mx
		if t.stats != nil {
			t.stats.Saturations.Add(1)
		}
	}
	t.store(last, idx, uint32(sum))
}

// Estimate implements sketch.Estimator: the count query of §3.2, minimized
// over trees.
func (s *Sketch) Estimate(key []byte) uint64 {
	min := uint64(math.MaxUint64)
	if w := s.wide; w != nil {
		pc, pb := w.Pair(key)
		if ts := s.trees; len(ts) == 2 && s.std3 {
			v0 := ts[0].queryAt3(hashing.WideIndex0(pc, pb, s.w1))
			v1 := ts[1].queryAt3(hashing.WideIndex1(pc, pb, s.w1))
			if v1 < v0 {
				return v1
			}
			return v0
		}
		for i, t := range s.trees {
			if v := t.queryAt(hashing.WideIndex(pc, pb, i, s.w1)); v < min {
				min = v
			}
		}
		return min
	}
	for _, t := range s.trees {
		if v := t.queryAt(t.leafIndex(key)); v < min {
			min = v
		}
	}
	return min
}

// queryAt answers the count query of §3.2 from leaf index idx, walking the
// lanes like updateAt.
func (t *tree) queryAt(idx int) uint64 {
	if t.std3 {
		return t.queryAt3(idx)
	}
	lims := t.lims
	last := len(lims) - 1
	est := uint64(0)
	for l := 0; ; l++ {
		v := t.load(l, idx)
		if l == last || v != lims[l].mark {
			est += uint64(v)
			return est
		}
		est += uint64(lims[l].max)
		idx = t.parent(idx)
	}
}

// queryAt3 is the count query unrolled over the three typed lanes.
func (t *tree) queryAt3(idx int) uint64 {
	kshift, k := t.kshift, t.k
	v0 := t.lane8[idx]
	if v0 != t.m8 {
		return uint64(v0)
	}
	est := uint64(t.c8)
	if kshift != 0 {
		idx >>= kshift
	} else {
		idx /= k
	}
	v1 := t.lane16[idx]
	if v1 != t.m16 {
		return est + uint64(v1)
	}
	est += uint64(t.c16)
	if kshift != 0 {
		idx >>= kshift
	} else {
		idx /= k
	}
	return est + uint64(t.lane32[idx])
}

// Cardinality implements the Linear-Counting estimator of §3.3:
// n̂ = −w1·ln(w0/w1) with w0 averaged over the trees' stage-1 arrays.
func (s *Sketch) Cardinality() float64 {
	w0 := s.EmptyLeaves()
	w1 := float64(s.w1)
	if w0 <= 0 {
		// Linear counting saturates when no leaf is empty; return its
		// limit with a single empty slot, the standard LC fallback.
		w0 = 1
	}
	// +0 normalizes the empty-sketch result: log(w1/w1) is +0 and
	// negating it would otherwise surface as -0 in reports and JSON.
	return -w1*math.Log(w0/w1) + 0
}

// EmptyLeaves returns the number of zero-valued stage-1 nodes averaged over
// the trees (the w0 of §3.3).
func (s *Sketch) EmptyLeaves() float64 {
	total := 0
	for _, t := range s.trees {
		sv := t.views[0]
		switch sv.kind {
		case laneU8:
			for _, v := range t.lane8[sv.base : sv.base+sv.n] {
				if v == 0 {
					total++
				}
			}
		case laneU16:
			for _, v := range t.lane16[sv.base : sv.base+sv.n] {
				if v == 0 {
					total++
				}
			}
		default:
			for _, v := range t.lane32[sv.base : sv.base+sv.n] {
				if v == 0 {
					total++
				}
			}
		}
	}
	return float64(total) / float64(len(s.trees))
}

// MemoryBytes implements sketch.Sized: the exact bit cost of all counters,
// the way the paper accounts memory (a 2-bit stage costs 2 bits per node
// regardless of the byte lane it resides in).
func (s *Sketch) MemoryBytes() int {
	bits := 0
	for _, t := range s.trees {
		for l := range t.views {
			bits += t.views[l].n * s.widths[l]
		}
	}
	return bits / 8
}

// ResidentBytes reports the bytes of counter storage actually allocated:
// one byte per node in the byte lane, two in the uint16 lane, four in the
// uint32 lane. For the paper's {8,16,32} geometry this is 1.3125·w1 per
// tree versus 4.5625·w1 for the uniform 32-bit layout (≈29%); telemetry
// exports it as fcm_sketch_resident_bytes.
func (s *Sketch) ResidentBytes() int {
	n := 0
	for _, t := range s.trees {
		n += len(t.lane8) + 2*len(t.lane16) + 4*len(t.lane32)
	}
	return n
}

// WideLanes reports whether the sketch stores every stage at uniform
// 32-bit width (the widening shim) instead of the compact typed lanes.
func (s *Sketch) WideLanes() bool { return s.wideLanes }

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for _, t := range s.trees {
		clear(t.lane8)
		clear(t.lane16)
		clear(t.lane32)
	}
}

// Clone returns a deep copy of the sketch: counters are copied, hash
// functions (stateless after construction) are shared. The clone ingests
// and merges independently of the original, so it serves as a consistent
// read snapshot or as a per-shard replica. Telemetry is NOT carried over:
// a clone is a snapshot, and double-counting its updates into the
// original's Stats would corrupt the series.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		k:            s.k,
		widths:       append([]int(nil), s.widths...),
		w1:           s.w1,
		conservative: s.conservative,
		wideLanes:    s.wideLanes,
		std3:         s.std3,
		wide:         s.wide, // stateless after construction, like hashers
	}
	for _, t := range s.trees {
		ct := &tree{
			k:      t.k,
			kshift: t.kshift,
			w0:     t.w0,
			lims:   append([]limits(nil), t.lims...),
			max:    append([]uint32(nil), t.max...),
			mark:   append([]uint32(nil), t.mark...),
			hasher: t.hasher,
		}
		c.initLanes(ct)
		copy(ct.lane8, t.lane8)
		copy(ct.lane16, t.lane16)
		copy(ct.lane32, t.lane32)
		c.trees = append(c.trees, ct)
	}
	return c
}

// SetStats attaches (or, with nil, detaches) hot-path telemetry. st's
// Promotions must cover depth−1 boundaries (NewStats(s.Depth())). Attach
// before concurrent ingest starts: the pointer write is not synchronized
// with in-flight updates.
func (s *Sketch) SetStats(st *Stats) {
	if st != nil && len(st.Promotions) < len(s.widths)-1 {
		panic(fmt.Sprintf("core: Stats sized for %d boundaries, sketch has %d",
			len(st.Promotions), len(s.widths)-1))
	}
	s.stats = st
	for _, t := range s.trees {
		t.stats = st
	}
}

// Stats returns the attached telemetry, or nil.
func (s *Sketch) Stats() *Stats { return s.stats }

// StageOccupancy returns, per stage, the fraction of non-zero nodes
// averaged over the trees — the saturation signal for the 8/16/32-bit
// levels (stage-1 occupancy is also what drives Linear Counting error).
// It scans every register: call it on snapshots at scrape time, not on
// the ingest path.
func (s *Sketch) StageOccupancy() []float64 {
	occ := make([]float64, len(s.widths))
	for _, t := range s.trees {
		for l := range t.views {
			nz := 0
			for i := 0; i < t.views[l].n; i++ {
				if t.load(l, i) != 0 {
					nz++
				}
			}
			occ[l] += float64(nz) / float64(t.views[l].n)
		}
	}
	for l := range occ {
		occ[l] /= float64(len(s.trees))
	}
	return occ
}

// OverflowedNodes returns, per stage, the number of nodes sitting at the
// overflow marker summed across trees (the root stage reports clamped
// nodes). Like StageOccupancy, it scans registers — scrape time only.
func (s *Sketch) OverflowedNodes() []int {
	over := make([]int, len(s.widths))
	last := len(s.widths) - 1
	for _, t := range s.trees {
		for l := range t.views {
			bound := t.mark[l]
			if l == last {
				bound = t.max[l]
			}
			for i := 0; i < t.views[l].n; i++ {
				if t.load(l, i) >= bound {
					over[l]++
				}
			}
		}
	}
	return over
}

// K returns the tree arity.
func (s *Sketch) K() int { return s.k }

// Depth returns the number of stages.
func (s *Sketch) Depth() int { return len(s.widths) }

// NumTrees returns the number of trees d.
func (s *Sketch) NumTrees() int { return len(s.trees) }

// LeafWidth returns w1, the number of stage-1 nodes per tree.
func (s *Sketch) LeafWidth() int { return s.w1 }

// Widths returns the per-stage counter bit widths.
func (s *Sketch) Widths() []int { return append([]int(nil), s.widths...) }

// StageMax returns θ_l, the counting capacity 2^b−2 of stage l (0-based).
func (s *Sketch) StageMax(l int) uint64 { return uint64(s.trees[0].max[l]) }

// StageValues returns the node values of stage l of tree t at uniform
// 32-bit width — the control plane's view of the registers, used by the
// collect codec and the PISA compiler. Stages resident in the 32-bit lane
// alias internal state; narrower stages return a freshly widened copy.
// Callers must treat the result as read-only either way; use
// SetStageValues to write registers.
func (s *Sketch) StageValues(t, l int) []uint32 {
	tr := s.trees[t]
	sv := tr.views[l]
	switch sv.kind {
	case laneU8:
		return sketch.WidenU8(make([]uint32, sv.n), tr.lane8[sv.base:sv.base+sv.n])
	case laneU16:
		return sketch.WidenU16(make([]uint32, sv.n), tr.lane16[sv.base:sv.base+sv.n])
	default:
		return tr.lane32[sv.base : sv.base+sv.n : sv.base+sv.n]
	}
}

// StageValuesInto widens stage l of tree t into dst and returns it,
// reusing dst's backing array when it has the capacity — the alloc-free
// variant of StageValues for per-poll snapshot paths. Unlike StageValues
// it always copies, so the result never aliases sketch state.
func (s *Sketch) StageValuesInto(dst []uint32, t, l int) []uint32 {
	tr := s.trees[t]
	sv := tr.views[l]
	if cap(dst) < sv.n {
		dst = make([]uint32, sv.n)
	}
	dst = dst[:sv.n]
	switch sv.kind {
	case laneU8:
		sketch.WidenU8(dst, tr.lane8[sv.base:sv.base+sv.n])
	case laneU16:
		sketch.WidenU16(dst, tr.lane16[sv.base:sv.base+sv.n])
	default:
		copy(dst, tr.lane32[sv.base:sv.base+sv.n])
	}
	return dst
}

// StageWidth returns the counter bit width of stage l — the per-stage,
// alloc-free accessor behind Widths.
func (s *Sketch) StageWidth(l int) int { return s.widths[l] }

// SetStageValues overwrites stage l of tree t, used when reconstructing a
// sketch from a collected snapshot. The length must match, and every value
// must fit the stage's resident lane (a snapshot taken from a real sketch
// always does: stage values never exceed the overflow marker).
func (s *Sketch) SetStageValues(t, l int, vals []uint32) error {
	tr := s.trees[t]
	sv := tr.views[l]
	if len(vals) != sv.n {
		return fmt.Errorf("core: stage %d/%d length %d, want %d", t, l, len(vals), sv.n)
	}
	switch sv.kind {
	case laneU8:
		if i := sketch.NarrowU8(tr.lane8[sv.base:sv.base+sv.n], vals); i >= 0 {
			return fmt.Errorf("core: stage %d/%d value %d at index %d exceeds byte lane", t, l, vals[i], i)
		}
	case laneU16:
		if i := sketch.NarrowU16(tr.lane16[sv.base:sv.base+sv.n], vals); i >= 0 {
			return fmt.Errorf("core: stage %d/%d value %d at index %d exceeds uint16 lane", t, l, vals[i], i)
		}
	default:
		copy(tr.lane32[sv.base:sv.base+sv.n], vals)
	}
	return nil
}

// TotalCount returns the sum of counts recorded in tree t (each overflowed
// node contributes its capacity, terminals their value). It equals the
// number of packets fed in, absent final-stage saturation, and is the
// invariant the virtual-counter conversion must preserve.
func (s *Sketch) TotalCount(t int) uint64 {
	tr := s.trees[t]
	last := len(tr.views) - 1
	total := uint64(0)
	for l := range tr.views {
		for i := 0; i < tr.views[l].n; i++ {
			v := tr.load(l, i)
			if v == tr.mark[l] && l < last {
				total += uint64(tr.max[l])
			} else {
				total += uint64(v)
			}
		}
	}
	return total
}
