// Package core implements FCM-Sketch (§3 of the paper): a k-ary tree of
// counter stages where small counters at the leaves overflow into fewer,
// larger counters toward the root. The overflow indicator is the counter's
// maximum value (2^b−1 means "count 2^b−2 and overflowed"), so no separate
// flag bits are spent. A multi-tree sketch takes the minimum estimate over
// d independent trees, exactly like Count-Min.
//
// The package also implements the data-plane queries of §3.3 (count query,
// Linear-Counting cardinality) and the control-plane conversion of the
// sketch into virtual counters (§4.1) consumed by the EM estimator.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"github.com/fcmsketch/fcm/internal/hashing"
)

// Stats is the sketch's optional hot-path self-telemetry: update volume,
// per-boundary overflow promotions, and root-stage saturations, all plain
// atomics so readers (a scraping goroutine) never coordinate with the
// writer. A sketch with no Stats attached pays only a nil check per stage
// visited; with Stats attached, Update adds one uncontended atomic add
// (promotions and saturations are off the common path — they fire only
// when a counter actually overflows).
//
// Counts are cumulative over the sketch's lifetime; Reset does not clear
// them (scrapers take deltas). Several sketches may share one Stats to
// aggregate, or each shard may carry its own for per-shard series.
type Stats struct {
	// Updates counts Update calls (not packets×trees: one per call).
	Updates atomic.Uint64
	// Promotions[l] counts nodes of stage l (0-based, leaves first) that
	// reached their overflow marker and promoted their excess to stage
	// l+1 — the 8-bit → 16-bit → 32-bit escalation of §3.1. Length is
	// depth−1: the root has no parent to promote into.
	Promotions []atomic.Uint64
	// Saturations counts updates clamped at the root stage's counting
	// capacity — the sketch's hard overflow, after which counts are
	// underestimates.
	Saturations atomic.Uint64
}

// NewStats builds a Stats sized for a sketch of the given stage depth.
func NewStats(depth int) *Stats {
	if depth < 1 {
		depth = 1
	}
	return &Stats{Promotions: make([]atomic.Uint64, depth-1)}
}

// PromotionCount returns Promotions[l], or 0 when l is out of range.
func (s *Stats) PromotionCount(l int) uint64 {
	if l < 0 || l >= len(s.Promotions) {
		return 0
	}
	return s.Promotions[l].Load()
}

// Config parameterizes an FCM-Sketch.
type Config struct {
	// K is the tree arity; stage l+1 has 1/K the nodes of stage l. The
	// paper recommends 8 for FCM and 16 for FCM+TopK (§7.4).
	K int
	// Trees is the number of independent trees d (default/paper: 2).
	Trees int
	// Widths is the counter bit width of each stage, leaves first. The
	// paper's deployment uses byte-aligned {8, 16, 32}; smaller widths
	// (e.g. the {2, 4, 8} of Fig. 4) are accepted for testing.
	Widths []int
	// MemoryBytes is the total counter budget across all trees. Exactly
	// one of MemoryBytes and LeafWidth must be set.
	MemoryBytes int
	// LeafWidth directly sets w1 (nodes at stage 1 per tree), bypassing
	// the memory solver. Must be a positive multiple of K^(stages-1).
	LeafWidth int
	// Hash provides the independent per-tree hash functions; nil selects
	// BobHash with a fixed seed.
	Hash hashing.Family
	// FlagBitIndicator switches to the explicit overflow-flag encoding
	// used by earlier counter-sharing designs [19, 60]: one bit of every
	// node is spent on the flag, halving the counting range. The paper's
	// design intuition #2 argues the max-value marker is strictly better;
	// this option exists for the ablation experiment that verifies it.
	FlagBitIndicator bool
	// PerTreeHash forces one independent hash evaluation per tree (the
	// pre-one-pass behavior), even when Hash supports deriving all tree
	// indexes from a single pass (hashing.WideFamily). Counter placement
	// differs between the two modes, so sketches are only mergeable with
	// sketches of the same mode; the default (one-pass, when available) is
	// faster and statistically equivalent.
	PerTreeHash bool
	// Conservative enables conservative-update semantics across trees
	// (Estan & Varghese [26], generalized to FCM): on update, only trees
	// whose current count query falls below min+inc are raised, and only
	// up to that target. §7.1 notes CU improves FCM about as much as it
	// improves CM; the paper skips it in the evaluation, so it is off by
	// default and exercised by the ablation benchmarks. Multi-tree only —
	// with a single tree it is a no-op. Not implementable on PISA (it
	// needs all trees' reads before any write).
	Conservative bool
}

// DefaultWidths is the paper's byte-aligned stage layout.
func DefaultWidths() []int { return []int{8, 16, 32} }

// tree is a single k-ary FCM tree. All stages live in one contiguous
// counter slab (leaves first), with per-stage views aliasing into it: the
// update walk from a leaf to the root touches one small region of one
// allocation instead of chasing per-stage slice headers.
type tree struct {
	k      int
	kshift uint       // log2(K) when K is a power of two; the parent step is then a shift
	w0     int        // leaf-stage width, denormalized for the hot walk
	slab   []uint32   // every stage's nodes, contiguous, leaves first
	lims   []limits   // per-stage mark+max pairs: one bounds check per level in the hot walk
	stages [][]uint32 // per-stage views into slab (cold paths: merge, conversion, collection)
	max    []uint32   // counting capacity per stage: 2^b − 2
	mark   []uint32   // overflow marker per stage: 2^b − 1
	hasher hashing.Hasher
	stats  *Stats // shared with the owning Sketch; nil = uninstrumented
}

// limits pairs a stage's overflow marker with its counting capacity so the
// hot walk reads both with a single slice access.
type limits struct {
	mark, max uint32
}

// parent returns the stage-(l+1) index of leaf-walk index idx.
func (t *tree) parent(idx int) int {
	if t.kshift != 0 {
		return idx >> t.kshift
	}
	return idx / t.k
}

// Sketch is a (possibly multi-tree) FCM-Sketch.
type Sketch struct {
	trees        []*tree
	k            int
	widths       []int
	w1           int
	conservative bool
	// wide, when non-nil, selects one-pass multi-index hashing: a single
	// lookup3 pass per packet yields every tree's leaf index (the concrete
	// type devirtualizes the per-packet hash call). nil falls back to one
	// hasher evaluation per tree.
	wide  *hashing.BobWide
	stats *Stats // nil = uninstrumented
}

// New builds an FCM-Sketch from cfg.
func New(cfg Config) (*Sketch, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("core: K must be ≥ 2, got %d", cfg.K)
	}
	if cfg.Trees <= 0 {
		return nil, fmt.Errorf("core: Trees must be positive, got %d", cfg.Trees)
	}
	widths := cfg.Widths
	if len(widths) == 0 {
		widths = DefaultWidths()
	}
	if len(widths) < 2 {
		return nil, fmt.Errorf("core: need at least 2 stages, got %d", len(widths))
	}
	for i, b := range widths {
		if b < 2 || b > 32 {
			return nil, fmt.Errorf("core: stage %d width %d out of range [2,32]", i, b)
		}
		if i > 0 && b <= widths[i-1] {
			return nil, fmt.Errorf("core: stage widths must increase, got %v", widths)
		}
	}
	depth := len(widths)
	leafAlign := 1
	for i := 1; i < depth; i++ {
		leafAlign *= cfg.K
	}

	w1 := cfg.LeafWidth
	switch {
	case w1 > 0 && cfg.MemoryBytes > 0:
		return nil, fmt.Errorf("core: set only one of MemoryBytes and LeafWidth")
	case w1 > 0:
		if w1%leafAlign != 0 {
			return nil, fmt.Errorf("core: LeafWidth %d not a multiple of K^(stages-1) = %d", w1, leafAlign)
		}
	case cfg.MemoryBytes > 0:
		w1 = solveLeafWidth(cfg.MemoryBytes, cfg.Trees, cfg.K, widths)
		if w1 < leafAlign {
			return nil, fmt.Errorf("core: memory %dB too small for %d trees of %d-ary depth %d",
				cfg.MemoryBytes, cfg.Trees, cfg.K, depth)
		}
	default:
		return nil, fmt.Errorf("core: one of MemoryBytes or LeafWidth is required")
	}

	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0xfc0fc0)
	}
	// Copy widths so a caller mutating its Config slice after New cannot
	// corrupt the sketch geometry.
	s := &Sketch{k: cfg.K, widths: append([]int(nil), widths...), w1: w1, conservative: cfg.Conservative}
	if !cfg.PerTreeHash {
		if wf, ok := fam.(hashing.WideFamily); ok {
			s.wide = wf.Wide()
		}
	}
	var kshift uint
	if cfg.K&(cfg.K-1) == 0 {
		kshift = uint(bits.TrailingZeros(uint(cfg.K)))
	}
	for t := 0; t < cfg.Trees; t++ {
		tr := &tree{k: cfg.K, kshift: kshift, hasher: fam.New(t)}
		total := 0
		w := w1
		for range widths {
			total += w
			w /= cfg.K
		}
		tr.slab = make([]uint32, total)
		w, off := w1, 0
		for _, b := range widths {
			tr.stages = append(tr.stages, tr.slab[off:off+w:off+w])
			off += w
			if cfg.FlagBitIndicator {
				// Counting bits: b−1; the marker position stands in
				// for the dedicated flag bit.
				m := uint32(1) << uint(b-1)
				tr.mark = append(tr.mark, m)
				tr.max = append(tr.max, m-1)
			} else {
				m := uint32(1)<<uint(b) - 1
				tr.mark = append(tr.mark, m)
				tr.max = append(tr.max, m-1)
			}
			w /= cfg.K
		}
		tr.w0 = w1
		for l := range tr.mark {
			tr.lims = append(tr.lims, limits{mark: tr.mark[l], max: tr.max[l]})
		}
		s.trees = append(s.trees, tr)
	}
	return s, nil
}

// OnePassHash reports whether the sketch derives all tree indexes from a
// single hash pass (the default with a hashing.WideFamily such as
// BobFamily) rather than evaluating one hash per tree. The two modes place
// counters differently and are therefore not mergeable with each other.
func (s *Sketch) OnePassHash() bool { return s.wide != nil }

// solveLeafWidth computes the largest w1 (multiple of k^(depth−1)) whose
// full tree fits the per-tree byte budget.
func solveLeafWidth(memBytes, trees, k int, widths []int) int {
	perTree := float64(memBytes) / float64(trees)
	bytesPerLeaf := 0.0 // bytes consumed per leaf slot across all stages
	div := 1.0
	for _, b := range widths {
		bytesPerLeaf += float64(b) / 8 / div
		div *= float64(k)
	}
	w1 := int(perTree / bytesPerLeaf)
	align := 1
	for i := 1; i < len(widths); i++ {
		align *= k
	}
	return w1 / align * align
}

// Update implements sketch.Updater: Algorithm 1 applied to every tree.
// Counting capacity absorbed at a stage is max−value; everything beyond
// (including the marker-setting increment) feeds forward to the parent.
func (s *Sketch) Update(key []byte, inc uint64) {
	if inc == 0 {
		return
	}
	if s.stats != nil {
		s.stats.Updates.Add(1)
	}
	if s.conservative && len(s.trees) > 1 {
		s.updateConservative(key, inc)
		return
	}
	if w := s.wide; w != nil {
		// One hash pass for all trees; indexes derive from its two lanes.
		pc, pb := w.Pair(key)
		if ts := s.trees; len(ts) == 2 {
			// The paper's default shape, with the lane derivations
			// inlined (WideIndex itself is over the inlining budget).
			ts[0].updateAt(hashing.WideIndex0(pc, pb, s.w1), inc)
			ts[1].updateAt(hashing.WideIndex1(pc, pb, s.w1), inc)
			return
		}
		for i, t := range s.trees {
			t.updateAt(hashing.WideIndex(pc, pb, i, s.w1), inc)
		}
		return
	}
	for _, t := range s.trees {
		t.updateAt(t.leafIndex(key), inc)
	}
}

// UpdateBatch implements sketch.BatchUpdater: it records inc occurrences
// of every key in keys, equivalent to (but cheaper than) one Update call
// per key. Batching amortizes the per-call overhead — the stats check, the
// conservative/wide dispatch, and the interface call the caller paid to
// reach the sketch — and keeps keys cache-hot across the per-tree walks.
// It performs no allocation.
func (s *Sketch) UpdateBatch(keys [][]byte, inc uint64) {
	if inc == 0 || len(keys) == 0 {
		return
	}
	if s.stats != nil {
		s.stats.Updates.Add(uint64(len(keys)))
	}
	if s.conservative && len(s.trees) > 1 {
		for _, key := range keys {
			s.updateConservative(key, inc)
		}
		return
	}
	if w := s.wide; w != nil {
		if ts := s.trees; len(ts) == 2 {
			t0, t1, w1 := ts[0], ts[1], s.w1
			for _, key := range keys {
				pc, pb := w.Pair(key)
				t0.updateAt(hashing.WideIndex0(pc, pb, w1), inc)
				t1.updateAt(hashing.WideIndex1(pc, pb, w1), inc)
			}
			return
		}
		for _, key := range keys {
			pc, pb := w.Pair(key)
			for i, t := range s.trees {
				t.updateAt(hashing.WideIndex(pc, pb, i, s.w1), inc)
			}
		}
		return
	}
	for _, key := range keys {
		for _, t := range s.trees {
			t.updateAt(t.leafIndex(key), inc)
		}
	}
}

// leafIndex returns the per-tree-hash leaf index for key (the fallback
// when one-pass wide hashing is unavailable or disabled).
func (t *tree) leafIndex(key []byte) int {
	return hashing.Reduce(t.hasher.Hash(key), len(t.stages[0]))
}

// leafIndexes fills dst (length = number of trees) with every tree's leaf
// index for key, using one wide pass when available.
func (s *Sketch) leafIndexes(key []byte, dst []int) {
	if w := s.wide; w != nil {
		pc, pb := w.Pair(key)
		for i := range dst {
			dst[i] = hashing.WideIndex(pc, pb, i, s.w1)
		}
		return
	}
	for i, t := range s.trees {
		dst[i] = t.leafIndex(key)
	}
}

// treeIndexes returns every tree's leaf index for key, on the stack for
// the common tree counts.
func (s *Sketch) treeIndexes(key []byte, buf *[8]int) []int {
	var idxs []int
	if d := len(s.trees); d <= len(buf) {
		idxs = buf[:d]
	} else {
		idxs = make([]int, d)
	}
	s.leafIndexes(key, idxs)
	return idxs
}

// updateConservative raises each tree's count query only up to
// min-over-trees + inc, the CU rule generalized to FCM. The estimate stays
// one-sided (it never drops below the true count) because the minimum tree
// was a valid overestimate before the update and gains the full increment.
func (s *Sketch) updateConservative(key []byte, inc uint64) {
	var buf [8]int
	idxs := s.treeIndexes(key, &buf)
	min := uint64(math.MaxUint64)
	for i, t := range s.trees {
		if v := t.queryAt(idxs[i]); v < min {
			min = v
		}
	}
	target := min + inc
	for i, t := range s.trees {
		if cur := t.queryAt(idxs[i]); cur < target {
			t.updateAt(idxs[i], target-cur)
		}
	}
}

// updateAt runs Algorithm 1's leaf-to-root walk from leaf index idx. The
// walk addresses the contiguous slab through precomputed stage bases, and
// the idx/K parent step is a shift whenever K is a power of two (the
// paper's K=8/16 always is).
func (t *tree) updateAt(idx int, inc uint64) {
	slab, lims := t.slab, t.lims
	kshift := t.kshift
	last := len(lims) - 1
	base := 0
	width := t.w0
	rem := inc
	// Non-root stages; the root is peeled out of the loop because it
	// saturates instead of promoting.
	for l := 0; l < last; l++ {
		j := base + idx
		v := slab[j]
		if lim := lims[l]; v != lim.mark {
			capacity := uint64(lim.max - v)
			if rem <= capacity {
				slab[j] = v + uint32(rem)
				return
			}
			slab[j] = lim.mark
			rem -= capacity
			if t.stats != nil {
				t.stats.Promotions[l].Add(1)
			}
		}
		base += width
		if kshift != 0 {
			idx >>= kshift
			width >>= kshift
		} else {
			idx /= t.k
			width /= t.k
		}
	}
	// Root stage: saturate at the counting capacity.
	j := base + idx
	sum := uint64(slab[j]) + rem
	if mx := uint64(lims[last].max); sum > mx {
		sum = mx
		if t.stats != nil {
			t.stats.Saturations.Add(1)
		}
	}
	slab[j] = uint32(sum)
}

// Estimate implements sketch.Estimator: the count query of §3.2, minimized
// over trees.
func (s *Sketch) Estimate(key []byte) uint64 {
	min := uint64(math.MaxUint64)
	if w := s.wide; w != nil {
		pc, pb := w.Pair(key)
		for i, t := range s.trees {
			if v := t.queryAt(hashing.WideIndex(pc, pb, i, s.w1)); v < min {
				min = v
			}
		}
		return min
	}
	for _, t := range s.trees {
		if v := t.queryAt(t.leafIndex(key)); v < min {
			min = v
		}
	}
	return min
}

// queryAt answers the count query of §3.2 from leaf index idx, walking the
// slab like updateAt.
func (t *tree) queryAt(idx int) uint64 {
	slab, lims := t.slab, t.lims
	kshift := t.kshift
	last := len(lims) - 1
	base := 0
	width := t.w0
	est := uint64(0)
	for l := 0; ; l++ {
		v := slab[base+idx]
		if l == last || v != lims[l].mark {
			est += uint64(v)
			return est
		}
		est += uint64(lims[l].max)
		base += width
		if kshift != 0 {
			idx >>= kshift
			width >>= kshift
		} else {
			idx /= t.k
			width /= t.k
		}
	}
}

// Cardinality implements the Linear-Counting estimator of §3.3:
// n̂ = −w1·ln(w0/w1) with w0 averaged over the trees' stage-1 arrays.
func (s *Sketch) Cardinality() float64 {
	w0 := s.EmptyLeaves()
	w1 := float64(s.w1)
	if w0 <= 0 {
		// Linear counting saturates when no leaf is empty; return its
		// limit with a single empty slot, the standard LC fallback.
		w0 = 1
	}
	return -w1 * math.Log(w0/w1)
}

// EmptyLeaves returns the number of zero-valued stage-1 nodes averaged over
// the trees (the w0 of §3.3).
func (s *Sketch) EmptyLeaves() float64 {
	total := 0
	for _, t := range s.trees {
		for _, v := range t.stages[0] {
			if v == 0 {
				total++
			}
		}
	}
	return float64(total) / float64(len(s.trees))
}

// MemoryBytes implements sketch.Sized: the exact bit cost of all counters.
func (s *Sketch) MemoryBytes() int {
	bits := 0
	for _, t := range s.trees {
		for l, st := range t.stages {
			bits += len(st) * s.widths[l]
		}
	}
	return bits / 8
}

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for _, t := range s.trees {
		clear(t.slab)
	}
}

// Clone returns a deep copy of the sketch: counters are copied, hash
// functions (stateless after construction) are shared. The clone ingests
// and merges independently of the original, so it serves as a consistent
// read snapshot or as a per-shard replica. Telemetry is NOT carried over:
// a clone is a snapshot, and double-counting its updates into the
// original's Stats would corrupt the series.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		k:            s.k,
		widths:       append([]int(nil), s.widths...),
		w1:           s.w1,
		conservative: s.conservative,
		wide:         s.wide, // stateless after construction, like hashers
	}
	for _, t := range s.trees {
		ct := &tree{
			k:      t.k,
			kshift: t.kshift,
			w0:     t.w0,
			slab:   append([]uint32(nil), t.slab...),
			lims:   append([]limits(nil), t.lims...),
			max:    append([]uint32(nil), t.max...),
			mark:   append([]uint32(nil), t.mark...),
			hasher: t.hasher,
		}
		off := 0
		for _, st := range t.stages {
			w := len(st)
			ct.stages = append(ct.stages, ct.slab[off:off+w:off+w])
			off += w
		}
		c.trees = append(c.trees, ct)
	}
	return c
}

// SetStats attaches (or, with nil, detaches) hot-path telemetry. st's
// Promotions must cover depth−1 boundaries (NewStats(s.Depth())). Attach
// before concurrent ingest starts: the pointer write is not synchronized
// with in-flight updates.
func (s *Sketch) SetStats(st *Stats) {
	if st != nil && len(st.Promotions) < len(s.widths)-1 {
		panic(fmt.Sprintf("core: Stats sized for %d boundaries, sketch has %d",
			len(st.Promotions), len(s.widths)-1))
	}
	s.stats = st
	for _, t := range s.trees {
		t.stats = st
	}
}

// Stats returns the attached telemetry, or nil.
func (s *Sketch) Stats() *Stats { return s.stats }

// StageOccupancy returns, per stage, the fraction of non-zero nodes
// averaged over the trees — the saturation signal for the 8/16/32-bit
// levels (stage-1 occupancy is also what drives Linear Counting error).
// It scans every register: call it on snapshots at scrape time, not on
// the ingest path.
func (s *Sketch) StageOccupancy() []float64 {
	occ := make([]float64, len(s.widths))
	for _, t := range s.trees {
		for l, st := range t.stages {
			nz := 0
			for _, v := range st {
				if v != 0 {
					nz++
				}
			}
			occ[l] += float64(nz) / float64(len(st))
		}
	}
	for l := range occ {
		occ[l] /= float64(len(s.trees))
	}
	return occ
}

// OverflowedNodes returns, per stage, the number of nodes sitting at the
// overflow marker summed across trees (the root stage reports clamped
// nodes). Like StageOccupancy, it scans registers — scrape time only.
func (s *Sketch) OverflowedNodes() []int {
	over := make([]int, len(s.widths))
	last := len(s.widths) - 1
	for _, t := range s.trees {
		for l, st := range t.stages {
			bound := t.mark[l]
			if l == last {
				bound = t.max[l]
			}
			for _, v := range st {
				if v >= bound {
					over[l]++
				}
			}
		}
	}
	return over
}

// K returns the tree arity.
func (s *Sketch) K() int { return s.k }

// Depth returns the number of stages.
func (s *Sketch) Depth() int { return len(s.widths) }

// NumTrees returns the number of trees d.
func (s *Sketch) NumTrees() int { return len(s.trees) }

// LeafWidth returns w1, the number of stage-1 nodes per tree.
func (s *Sketch) LeafWidth() int { return s.w1 }

// Widths returns the per-stage counter bit widths.
func (s *Sketch) Widths() []int { return append([]int(nil), s.widths...) }

// StageMax returns θ_l, the counting capacity 2^b−2 of stage l (0-based).
func (s *Sketch) StageMax(l int) uint64 { return uint64(s.trees[0].max[l]) }

// StageValues returns the raw node values of stage l of tree t. The slice
// aliases internal state; callers must treat it as read-only. It exists for
// the control-plane collector and the PISA compiler.
func (s *Sketch) StageValues(t, l int) []uint32 { return s.trees[t].stages[l] }

// SetStageValues overwrites stage l of tree t, used when reconstructing a
// sketch from a collected snapshot. The length must match.
func (s *Sketch) SetStageValues(t, l int, vals []uint32) error {
	dst := s.trees[t].stages[l]
	if len(vals) != len(dst) {
		return fmt.Errorf("core: stage %d/%d length %d, want %d", t, l, len(vals), len(dst))
	}
	copy(dst, vals)
	return nil
}

// TotalCount returns the sum of counts recorded in tree t (each overflowed
// node contributes its capacity, terminals their value). It equals the
// number of packets fed in, absent final-stage saturation, and is the
// invariant the virtual-counter conversion must preserve.
func (s *Sketch) TotalCount(t int) uint64 {
	tr := s.trees[t]
	total := uint64(0)
	for l, st := range tr.stages {
		for _, v := range st {
			if v == tr.mark[l] && l < len(tr.stages)-1 {
				total += uint64(tr.max[l])
			} else {
				total += uint64(v)
			}
		}
	}
	return total
}
