// Package core implements FCM-Sketch (§3 of the paper): a k-ary tree of
// counter stages where small counters at the leaves overflow into fewer,
// larger counters toward the root. The overflow indicator is the counter's
// maximum value (2^b−1 means "count 2^b−2 and overflowed"), so no separate
// flag bits are spent. A multi-tree sketch takes the minimum estimate over
// d independent trees, exactly like Count-Min.
//
// The package also implements the data-plane queries of §3.3 (count query,
// Linear-Counting cardinality) and the control-plane conversion of the
// sketch into virtual counters (§4.1) consumed by the EM estimator.
package core

import (
	"fmt"
	"math"

	"github.com/fcmsketch/fcm/internal/hashing"
)

// Config parameterizes an FCM-Sketch.
type Config struct {
	// K is the tree arity; stage l+1 has 1/K the nodes of stage l. The
	// paper recommends 8 for FCM and 16 for FCM+TopK (§7.4).
	K int
	// Trees is the number of independent trees d (default/paper: 2).
	Trees int
	// Widths is the counter bit width of each stage, leaves first. The
	// paper's deployment uses byte-aligned {8, 16, 32}; smaller widths
	// (e.g. the {2, 4, 8} of Fig. 4) are accepted for testing.
	Widths []int
	// MemoryBytes is the total counter budget across all trees. Exactly
	// one of MemoryBytes and LeafWidth must be set.
	MemoryBytes int
	// LeafWidth directly sets w1 (nodes at stage 1 per tree), bypassing
	// the memory solver. Must be a positive multiple of K^(stages-1).
	LeafWidth int
	// Hash provides the independent per-tree hash functions; nil selects
	// BobHash with a fixed seed.
	Hash hashing.Family
	// FlagBitIndicator switches to the explicit overflow-flag encoding
	// used by earlier counter-sharing designs [19, 60]: one bit of every
	// node is spent on the flag, halving the counting range. The paper's
	// design intuition #2 argues the max-value marker is strictly better;
	// this option exists for the ablation experiment that verifies it.
	FlagBitIndicator bool
	// Conservative enables conservative-update semantics across trees
	// (Estan & Varghese [26], generalized to FCM): on update, only trees
	// whose current count query falls below min+inc are raised, and only
	// up to that target. §7.1 notes CU improves FCM about as much as it
	// improves CM; the paper skips it in the evaluation, so it is off by
	// default and exercised by the ablation benchmarks. Multi-tree only —
	// with a single tree it is a no-op. Not implementable on PISA (it
	// needs all trees' reads before any write).
	Conservative bool
}

// DefaultWidths is the paper's byte-aligned stage layout.
func DefaultWidths() []int { return []int{8, 16, 32} }

// tree is a single k-ary FCM tree.
type tree struct {
	k      int
	stages [][]uint32 // node values per stage
	max    []uint32   // counting capacity per stage: 2^b − 2
	mark   []uint32   // overflow marker per stage: 2^b − 1
	hasher hashing.Hasher
}

// Sketch is a (possibly multi-tree) FCM-Sketch.
type Sketch struct {
	trees        []*tree
	k            int
	widths       []int
	w1           int
	conservative bool
}

// New builds an FCM-Sketch from cfg.
func New(cfg Config) (*Sketch, error) {
	if cfg.K < 2 {
		return nil, fmt.Errorf("core: K must be ≥ 2, got %d", cfg.K)
	}
	if cfg.Trees <= 0 {
		return nil, fmt.Errorf("core: Trees must be positive, got %d", cfg.Trees)
	}
	widths := cfg.Widths
	if len(widths) == 0 {
		widths = DefaultWidths()
	}
	if len(widths) < 2 {
		return nil, fmt.Errorf("core: need at least 2 stages, got %d", len(widths))
	}
	for i, b := range widths {
		if b < 2 || b > 32 {
			return nil, fmt.Errorf("core: stage %d width %d out of range [2,32]", i, b)
		}
		if i > 0 && b <= widths[i-1] {
			return nil, fmt.Errorf("core: stage widths must increase, got %v", widths)
		}
	}
	depth := len(widths)
	leafAlign := 1
	for i := 1; i < depth; i++ {
		leafAlign *= cfg.K
	}

	w1 := cfg.LeafWidth
	switch {
	case w1 > 0 && cfg.MemoryBytes > 0:
		return nil, fmt.Errorf("core: set only one of MemoryBytes and LeafWidth")
	case w1 > 0:
		if w1%leafAlign != 0 {
			return nil, fmt.Errorf("core: LeafWidth %d not a multiple of K^(stages-1) = %d", w1, leafAlign)
		}
	case cfg.MemoryBytes > 0:
		w1 = solveLeafWidth(cfg.MemoryBytes, cfg.Trees, cfg.K, widths)
		if w1 < leafAlign {
			return nil, fmt.Errorf("core: memory %dB too small for %d trees of %d-ary depth %d",
				cfg.MemoryBytes, cfg.Trees, cfg.K, depth)
		}
	default:
		return nil, fmt.Errorf("core: one of MemoryBytes or LeafWidth is required")
	}

	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0xfc0fc0)
	}
	// Copy widths so a caller mutating its Config slice after New cannot
	// corrupt the sketch geometry.
	s := &Sketch{k: cfg.K, widths: append([]int(nil), widths...), w1: w1, conservative: cfg.Conservative}
	for t := 0; t < cfg.Trees; t++ {
		tr := &tree{k: cfg.K, hasher: fam.New(t)}
		w := w1
		for _, b := range widths {
			tr.stages = append(tr.stages, make([]uint32, w))
			if cfg.FlagBitIndicator {
				// Counting bits: b−1; the marker position stands in
				// for the dedicated flag bit.
				m := uint32(1) << uint(b-1)
				tr.mark = append(tr.mark, m)
				tr.max = append(tr.max, m-1)
			} else {
				m := uint32(1)<<uint(b) - 1
				tr.mark = append(tr.mark, m)
				tr.max = append(tr.max, m-1)
			}
			w /= cfg.K
		}
		s.trees = append(s.trees, tr)
	}
	return s, nil
}

// solveLeafWidth computes the largest w1 (multiple of k^(depth−1)) whose
// full tree fits the per-tree byte budget.
func solveLeafWidth(memBytes, trees, k int, widths []int) int {
	perTree := float64(memBytes) / float64(trees)
	bytesPerLeaf := 0.0 // bytes consumed per leaf slot across all stages
	div := 1.0
	for _, b := range widths {
		bytesPerLeaf += float64(b) / 8 / div
		div *= float64(k)
	}
	w1 := int(perTree / bytesPerLeaf)
	align := 1
	for i := 1; i < len(widths); i++ {
		align *= k
	}
	return w1 / align * align
}

// Update implements sketch.Updater: Algorithm 1 applied to every tree.
// Counting capacity absorbed at a stage is max−value; everything beyond
// (including the marker-setting increment) feeds forward to the parent.
func (s *Sketch) Update(key []byte, inc uint64) {
	if inc == 0 {
		return
	}
	if s.conservative && len(s.trees) > 1 {
		s.updateConservative(key, inc)
		return
	}
	for _, t := range s.trees {
		t.update(key, inc)
	}
}

// updateConservative raises each tree's count query only up to
// min-over-trees + inc, the CU rule generalized to FCM. The estimate stays
// one-sided (it never drops below the true count) because the minimum tree
// was a valid overestimate before the update and gains the full increment.
func (s *Sketch) updateConservative(key []byte, inc uint64) {
	min := uint64(math.MaxUint64)
	for _, t := range s.trees {
		if v := t.query(key); v < min {
			min = v
		}
	}
	target := min + inc
	for _, t := range s.trees {
		if cur := t.query(key); cur < target {
			t.update(key, target-cur)
		}
	}
}

func (t *tree) update(key []byte, inc uint64) {
	idx := hashing.Reduce(t.hasher.Hash(key), len(t.stages[0]))
	last := len(t.stages) - 1
	rem := inc
	for l := 0; ; l++ {
		v := t.stages[l][idx]
		if l == last {
			// Final stage: saturate at the counting capacity.
			sum := uint64(v) + rem
			if sum > uint64(t.max[l]) {
				sum = uint64(t.max[l])
			}
			t.stages[l][idx] = uint32(sum)
			return
		}
		if v != t.mark[l] {
			capacity := uint64(t.max[l] - v)
			if rem <= capacity {
				t.stages[l][idx] = v + uint32(rem)
				return
			}
			t.stages[l][idx] = t.mark[l]
			rem -= capacity
		}
		idx /= t.k
	}
}

// Estimate implements sketch.Estimator: the count query of §3.2, minimized
// over trees.
func (s *Sketch) Estimate(key []byte) uint64 {
	min := uint64(math.MaxUint64)
	for _, t := range s.trees {
		if v := t.query(key); v < min {
			min = v
		}
	}
	return min
}

func (t *tree) query(key []byte) uint64 {
	idx := hashing.Reduce(t.hasher.Hash(key), len(t.stages[0]))
	last := len(t.stages) - 1
	est := uint64(0)
	for l := 0; ; l++ {
		v := t.stages[l][idx]
		if l == last || v != t.mark[l] {
			est += uint64(v)
			return est
		}
		est += uint64(t.max[l])
		idx /= t.k
	}
}

// Cardinality implements the Linear-Counting estimator of §3.3:
// n̂ = −w1·ln(w0/w1) with w0 averaged over the trees' stage-1 arrays.
func (s *Sketch) Cardinality() float64 {
	w0 := s.EmptyLeaves()
	w1 := float64(s.w1)
	if w0 <= 0 {
		// Linear counting saturates when no leaf is empty; return its
		// limit with a single empty slot, the standard LC fallback.
		w0 = 1
	}
	return -w1 * math.Log(w0/w1)
}

// EmptyLeaves returns the number of zero-valued stage-1 nodes averaged over
// the trees (the w0 of §3.3).
func (s *Sketch) EmptyLeaves() float64 {
	total := 0
	for _, t := range s.trees {
		for _, v := range t.stages[0] {
			if v == 0 {
				total++
			}
		}
	}
	return float64(total) / float64(len(s.trees))
}

// MemoryBytes implements sketch.Sized: the exact bit cost of all counters.
func (s *Sketch) MemoryBytes() int {
	bits := 0
	for _, t := range s.trees {
		for l, st := range t.stages {
			bits += len(st) * s.widths[l]
		}
	}
	return bits / 8
}

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for _, t := range s.trees {
		for _, st := range t.stages {
			for i := range st {
				st[i] = 0
			}
		}
	}
}

// Clone returns a deep copy of the sketch: counters are copied, hash
// functions (stateless after construction) are shared. The clone ingests
// and merges independently of the original, so it serves as a consistent
// read snapshot or as a per-shard replica.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{
		k:            s.k,
		widths:       append([]int(nil), s.widths...),
		w1:           s.w1,
		conservative: s.conservative,
	}
	for _, t := range s.trees {
		ct := &tree{
			k:      t.k,
			max:    append([]uint32(nil), t.max...),
			mark:   append([]uint32(nil), t.mark...),
			hasher: t.hasher,
		}
		for _, st := range t.stages {
			ct.stages = append(ct.stages, append([]uint32(nil), st...))
		}
		c.trees = append(c.trees, ct)
	}
	return c
}

// K returns the tree arity.
func (s *Sketch) K() int { return s.k }

// Depth returns the number of stages.
func (s *Sketch) Depth() int { return len(s.widths) }

// NumTrees returns the number of trees d.
func (s *Sketch) NumTrees() int { return len(s.trees) }

// LeafWidth returns w1, the number of stage-1 nodes per tree.
func (s *Sketch) LeafWidth() int { return s.w1 }

// Widths returns the per-stage counter bit widths.
func (s *Sketch) Widths() []int { return append([]int(nil), s.widths...) }

// StageMax returns θ_l, the counting capacity 2^b−2 of stage l (0-based).
func (s *Sketch) StageMax(l int) uint64 { return uint64(s.trees[0].max[l]) }

// StageValues returns the raw node values of stage l of tree t. The slice
// aliases internal state; callers must treat it as read-only. It exists for
// the control-plane collector and the PISA compiler.
func (s *Sketch) StageValues(t, l int) []uint32 { return s.trees[t].stages[l] }

// SetStageValues overwrites stage l of tree t, used when reconstructing a
// sketch from a collected snapshot. The length must match.
func (s *Sketch) SetStageValues(t, l int, vals []uint32) error {
	dst := s.trees[t].stages[l]
	if len(vals) != len(dst) {
		return fmt.Errorf("core: stage %d/%d length %d, want %d", t, l, len(vals), len(dst))
	}
	copy(dst, vals)
	return nil
}

// TotalCount returns the sum of counts recorded in tree t (each overflowed
// node contributes its capacity, terminals their value). It equals the
// number of packets fed in, absent final-stage saturation, and is the
// invariant the virtual-counter conversion must preserve.
func (s *Sketch) TotalCount(t int) uint64 {
	tr := s.trees[t]
	total := uint64(0)
	for l, st := range tr.stages {
		for _, v := range st {
			if v == tr.mark[l] && l < len(tr.stages)-1 {
				total += uint64(tr.max[l])
			} else {
				total += uint64(v)
			}
		}
	}
	return total
}
