package core

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fcmsketch/fcm/internal/hashing"
)

func k8(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func newTest(t testing.TB, cfg Config) *Sketch {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func defaultSmall(t testing.TB) *Sketch {
	return newTest(t, Config{K: 8, Trees: 2, MemoryBytes: 1 << 16})
}

// fixedFamily returns the same Hasher for every tree index.
type fixedFamily struct{ h hashing.Hasher }

func (f *fixedFamily) New(int) hashing.Hasher { return f.h }

// leafHasher maps keys directly to a leaf index by returning a hash whose
// Reduce(·, w1) lands exactly on the index.
type leafHasher struct {
	m  map[string]int
	w1 int
}

func (h *leafHasher) Hash(key []byte) uint64 {
	idx := h.m[string(key)]
	// Reduce(h, n) = hi64(h*n); choosing h = idx * 2^64/n + 1 lands in
	// bucket idx for any idx < n.
	return uint64(idx)*(math.MaxUint64/uint64(h.w1)+1) + 1
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 1, Trees: 1, MemoryBytes: 1 << 16},                          // arity too small
		{K: 8, Trees: 0, MemoryBytes: 1 << 16},                          // no trees
		{K: 8, Trees: 1},                                                // no sizing
		{K: 8, Trees: 1, MemoryBytes: 1 << 16, LeafWidth: 64},           // both sizings
		{K: 8, Trees: 1, MemoryBytes: 16},                               // too little memory
		{K: 8, Trees: 1, LeafWidth: 100},                                // misaligned leaf width
		{K: 8, Trees: 1, MemoryBytes: 1 << 16, Widths: []int{8}},        // one stage
		{K: 8, Trees: 1, MemoryBytes: 1 << 16, Widths: []int{8, 8}},     // non-increasing
		{K: 8, Trees: 1, MemoryBytes: 1 << 16, Widths: []int{1, 8}},     // width too small
		{K: 8, Trees: 1, MemoryBytes: 1 << 16, Widths: []int{16, 100}},  // width too large
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected config error for %+v", i, cfg)
		}
	}
}

func TestGeometry(t *testing.T) {
	s := newTest(t, Config{K: 8, Trees: 2, MemoryBytes: 1 << 20})
	if s.K() != 8 || s.NumTrees() != 2 || s.Depth() != 3 {
		t.Fatalf("geometry: k=%d d=%d depth=%d", s.K(), s.NumTrees(), s.Depth())
	}
	if s.LeafWidth()%64 != 0 {
		t.Errorf("leaf width %d not multiple of k^2", s.LeafWidth())
	}
	if s.MemoryBytes() > 1<<20 {
		t.Errorf("memory %d exceeds budget %d", s.MemoryBytes(), 1<<20)
	}
	// Budget utilization should be high (≥ 90%).
	if float64(s.MemoryBytes()) < 0.9*float64(1<<20) {
		t.Errorf("memory %d underuses budget %d", s.MemoryBytes(), 1<<20)
	}
	if got, want := s.StageMax(0), uint64(254); got != want {
		t.Errorf("stage-1 max %d want %d", got, want)
	}
	if got, want := s.StageMax(1), uint64(65534); got != want {
		t.Errorf("stage-2 max %d want %d", got, want)
	}
	w := s.Widths()
	w[0] = 99
	if s.Widths()[0] == 99 {
		t.Error("Widths() exposes internal slice")
	}
}

func TestPaperMemoryCheck(t *testing.T) {
	// §5: "For 1.3MB memory, w1·θ1 is about 133M using two 8-ary trees
	// with 8,16,32-bit counters".
	s := newTest(t, Config{K: 8, Trees: 2, MemoryBytes: 1.3e6})
	got := float64(s.LeafWidth()) * float64(s.StageMax(0))
	if got < 100e6 || got > 140e6 {
		t.Errorf("w1*theta1 = %g, paper says ~133M", got)
	}
}

func TestExactWhenSparse(t *testing.T) {
	s := defaultSmall(t)
	for i := uint64(0); i < 50; i++ {
		s.Update(k8(i), i+1)
	}
	for i := uint64(0); i < 50; i++ {
		if got := s.Estimate(k8(i)); got != i+1 {
			t.Errorf("flow %d: got %d want %d", i, got, i+1)
		}
	}
	if got := s.Estimate(k8(999)); got != 0 {
		t.Errorf("unseen flow: got %d want 0", got)
	}
}

func TestOverflowAcrossStages(t *testing.T) {
	// A single large flow must overflow the 8-bit and 16-bit stages and
	// still be counted exactly by the query.
	s := defaultSmall(t)
	const n = 1_000_000
	s.Update(k8(42), n)
	if got := s.Estimate(k8(42)); got != n {
		t.Errorf("large flow: got %d want %d", got, n)
	}
}

func TestBulkEqualsUnitUpdates(t *testing.T) {
	a := newTest(t, Config{K: 4, Trees: 2, LeafWidth: 64, Widths: []int{4, 8, 16}})
	b := newTest(t, Config{K: 4, Trees: 2, LeafWidth: 64, Widths: []int{4, 8, 16}})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		key := k8(uint64(rng.Intn(30)))
		inc := uint64(rng.Intn(40) + 1)
		a.Update(key, inc)
		for j := uint64(0); j < inc; j++ {
			b.Update(key, 1)
		}
	}
	for tr := 0; tr < 2; tr++ {
		for l := 0; l < 3; l++ {
			av, bv := a.StageValues(tr, l), b.StageValues(tr, l)
			for i := range av {
				if av[i] != bv[i] {
					t.Fatalf("tree %d stage %d idx %d: bulk %d unit %d", tr, l, i, av[i], bv[i])
				}
			}
		}
	}
}

func TestZeroIncrementIsNoop(t *testing.T) {
	s := defaultSmall(t)
	s.Update(k8(1), 0)
	if got := s.Estimate(k8(1)); got != 0 {
		t.Errorf("zero increment changed state: %d", got)
	}
}

func TestNeverUnderestimates(t *testing.T) {
	s := newTest(t, Config{K: 8, Trees: 2, LeafWidth: 512})
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		id := uint64(rng.Intn(3000))
		truth[id]++
		s.Update(k8(id), 1)
	}
	for id, c := range truth {
		if got := s.Estimate(k8(id)); got < c {
			t.Fatalf("flow %d underestimated: %d < %d", id, got, c)
		}
	}
}

func TestMoreTreesNotWorse(t *testing.T) {
	// Error with 3 trees of the same total memory shouldn't blow up, and
	// with the same per-tree size must be ≤ the 1-tree error.
	mk := func(trees int) *Sketch {
		return newTest(t, Config{K: 8, Trees: trees, LeafWidth: 512})
	}
	s1, s3 := mk(1), mk(3)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		id := uint64(rng.Intn(2000))
		truth[id]++
		s1.Update(k8(id), 1)
		s3.Update(k8(id), 1)
	}
	var e1, e3 float64
	for id, c := range truth {
		e1 += float64(s1.Estimate(k8(id)) - c)
		e3 += float64(s3.Estimate(k8(id)) - c)
	}
	if e3 > e1 {
		t.Errorf("3-tree error %f exceeds 1-tree error %f at same per-tree size", e3, e1)
	}
}

func TestPaperFigure4(t *testing.T) {
	// Reproduce the worked update/query example of Fig. 4: binary tree,
	// widths {2,4,8}, initial state C1=[3,0,2,3], C2=[15,4], C3=[9].
	// f1 hashes to leaf 2, f2 to leaf 0.
	h := &leafHasher{m: map[string]int{"f1": 2, "f2": 0}, w1: 4}
	s := newTest(t, Config{
		K: 2, Trees: 1, LeafWidth: 4, Widths: []int{2, 4, 8},
		Hash: &fixedFamily{h: h},
	})
	mustSet := func(l int, vals []uint32) {
		t.Helper()
		if err := s.SetStageValues(0, l, vals); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(0, []uint32{3, 0, 2, 3})
	mustSet(1, []uint32{15, 4})
	mustSet(2, []uint32{9})

	// Update f1: leaf 2 has value 2 = max(2-bit) → becomes 3 (marker) and
	// the increment moves to stage 2 node 1: 4 → 5.
	s.Update([]byte("f1"), 1)
	if got := s.StageValues(0, 0)[2]; got != 3 {
		t.Errorf("leaf 2 after update = %d, want 3 (marker)", got)
	}
	if got := s.StageValues(0, 1)[1]; got != 5 {
		t.Errorf("stage-2 node 1 after update = %d, want 5", got)
	}
	if got := s.StageValues(0, 2)[0]; got != 9 {
		t.Errorf("stage-3 node 0 must be untouched, got %d", got)
	}

	// Count queries (Fig. 4b): f1 = 2+5 = 7, f2 = 2+14+9 = 25.
	if got := s.Estimate([]byte("f1")); got != 7 {
		t.Errorf("count(f1) = %d, want 7", got)
	}
	if got := s.Estimate([]byte("f2")); got != 25 {
		t.Errorf("count(f2) = %d, want 25", got)
	}
}

func TestPaperFigure5Conversion(t *testing.T) {
	// Fig. 5: same tree state after the f1 update; conversion must yield
	// V=25/deg1 (paths through stage 3), V=0/deg1 (empty leaf 1), and
	// V=9/deg2 (leaves 2,3 merged at stage-2 node 1).
	s := newTest(t, Config{K: 2, Trees: 1, LeafWidth: 4, Widths: []int{2, 4, 8}})
	s.SetStageValues(0, 0, []uint32{3, 0, 3, 3})
	s.SetStageValues(0, 1, []uint32{15, 5})
	s.SetStageValues(0, 2, []uint32{9})

	vcs := s.VirtualCounters()[0]
	if len(vcs) != 3 {
		t.Fatalf("got %d virtual counters, want 3: %+v", len(vcs), vcs)
	}
	want := map[VirtualCounter]bool{
		{Value: 25, Degree: 1, Level: 3}: true,
		{Value: 0, Degree: 1, Level: 1}:  true,
		{Value: 9, Degree: 2, Level: 2}:  true,
	}
	for _, vc := range vcs {
		if !want[vc] {
			t.Errorf("unexpected virtual counter %+v", vc)
		}
		delete(want, vc)
	}
	for vc := range want {
		t.Errorf("missing virtual counter %+v", vc)
	}
}

func TestConversionPreservesTotalCount(t *testing.T) {
	s := newTest(t, Config{K: 4, Trees: 2, LeafWidth: 256, Widths: []int{4, 8, 16}})
	rng := rand.New(rand.NewSource(6))
	total := uint64(0)
	for i := 0; i < 30000; i++ {
		inc := uint64(rng.Intn(5) + 1)
		s.Update(k8(uint64(rng.Intn(500))), inc)
		total += inc
	}
	for tr, vcs := range s.VirtualCounters() {
		sum := uint64(0)
		degSum := 0
		for _, vc := range vcs {
			sum += vc.Value
			degSum += vc.Degree
		}
		if sum != s.TotalCount(tr) {
			t.Errorf("tree %d: VC sum %d != tree total %d", tr, sum, s.TotalCount(tr))
		}
		if sum != total {
			t.Errorf("tree %d: VC sum %d != stream total %d (final-stage saturation?)", tr, sum, total)
		}
		if degSum != s.LeafWidth() {
			t.Errorf("tree %d: degrees sum to %d, want w1=%d", tr, degSum, s.LeafWidth())
		}
	}
}

func TestConversionQuick(t *testing.T) {
	// Property: for random small streams, conversion preserves the total
	// and degrees sum to w1.
	f := func(ids []uint16, seed int64) bool {
		s, err := New(Config{K: 2, Trees: 1, LeafWidth: 32, Widths: []int{2, 4, 8, 16}})
		if err != nil {
			return false
		}
		total := uint64(0)
		for _, id := range ids {
			s.Update(k8(uint64(id%64)), 1)
			total++
		}
		vcs := s.VirtualCounters()[0]
		sum, deg := uint64(0), 0
		for _, vc := range vcs {
			sum += vc.Value
			deg += vc.Degree
		}
		return sum == total && deg == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	vcs := []VirtualCounter{
		{Value: 5, Degree: 1}, {Value: 0, Degree: 1}, {Value: 9, Degree: 2},
		{Value: 3, Degree: 2}, {Value: 8, Degree: 4},
	}
	h := DegreeHistogram(vcs)
	if h[1] != 1 || h[2] != 2 || h[4] != 1 {
		t.Errorf("histogram %v", h)
	}
	if len(DegreeHistogram(nil)) != 1 {
		t.Errorf("empty histogram should have length 1")
	}
}

func TestCardinality(t *testing.T) {
	s := newTest(t, Config{K: 8, Trees: 2, MemoryBytes: 1 << 18})
	const n = 5000
	for i := 0; i < n; i++ {
		s.Update(k8(uint64(i)), uint64(1+i%3))
	}
	got := s.Cardinality()
	if math.Abs(got-n)/n > 0.05 {
		t.Errorf("cardinality %f, want ~%d (±5%%)", got, n)
	}
}

func TestCardinalityEmpty(t *testing.T) {
	s := defaultSmall(t)
	if got := s.Cardinality(); got != 0 {
		t.Errorf("empty cardinality = %f", got)
	}
}

func TestCardinalitySaturated(t *testing.T) {
	// Fill every leaf: the estimator must return a finite saturated value.
	s := newTest(t, Config{K: 2, Trees: 1, LeafWidth: 4, Widths: []int{8, 16}})
	for i := 0; i < 10000; i++ {
		s.Update(k8(uint64(i)), 1)
	}
	got := s.Cardinality()
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("saturated cardinality = %f", got)
	}
}

func TestReset(t *testing.T) {
	s := defaultSmall(t)
	s.Update(k8(1), 1_000_000)
	s.Reset()
	if got := s.Estimate(k8(1)); got != 0 {
		t.Errorf("after reset: %d", got)
	}
	if got := s.EmptyLeaves(); got != float64(s.LeafWidth()) {
		t.Errorf("after reset empty leaves %f want %d", got, s.LeafWidth())
	}
}

func TestSetStageValuesErrors(t *testing.T) {
	s := defaultSmall(t)
	if err := s.SetStageValues(0, 0, []uint32{1}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestLastStageSaturation(t *testing.T) {
	// Overflowing the final stage must saturate, not wrap.
	s := newTest(t, Config{K: 2, Trees: 1, LeafWidth: 4, Widths: []int{2, 4}})
	s.Update(k8(7), 1000) // far beyond 2 + 14
	got := s.Estimate(k8(7))
	if got != 2+14 {
		t.Errorf("saturated estimate = %d, want 16", got)
	}
	s.Update(k8(7), 1)
	if s.Estimate(k8(7)) != 16 {
		t.Error("post-saturation update wrapped")
	}
}

func TestEstimateQuickOverestimates(t *testing.T) {
	s := newTest(t, Config{K: 4, Trees: 2, LeafWidth: 64, Widths: []int{4, 8, 32}})
	truth := map[string]uint64{}
	f := func(key []byte, inc8 uint8) bool {
		inc := uint64(inc8%16) + 1
		s.Update(key, inc)
		truth[string(key)] += inc
		return s.Estimate(key) >= truth[string(key)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpdateFCM(b *testing.B) {
	s, err := New(Config{K: 8, Trees: 2, MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	var key [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i%100000))
		s.Update(key[:], 1)
	}
}

func BenchmarkEstimateFCM(b *testing.B) {
	s, err := New(Config{K: 8, Trees: 2, MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	var key [8]byte
	for i := 0; i < 100000; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i))
		s.Update(key[:], 1)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i%100000))
		sink += s.Estimate(key[:])
	}
	_ = sink
}

func BenchmarkVirtualCounters(b *testing.B) {
	s, err := New(Config{K: 8, Trees: 2, MemoryBytes: 1 << 18})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		s.Update(k8(uint64(rng.Intn(5000))), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.VirtualCounters(); len(got) != 2 {
			b.Fatal("bad conversion")
		}
	}
}
