package core

import (
	"encoding/binary"
	"strings"
	"testing"

	"github.com/fcmsketch/fcm/internal/hashing"
)

func modeSketch(t *testing.T, perTree bool, seed uint32) *Sketch {
	t.Helper()
	s, err := New(Config{
		K: 2, Trees: 2, Widths: []int{8, 16, 32}, LeafWidth: 64,
		Hash:        hashing.NewBobFamily(seed),
		PerTreeHash: perTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMergeRefusesHashModeMismatch pins the mode seam: a one-pass sketch
// and a per-tree sketch place counters differently, so merging them would
// silently corrupt counts. Both directions must refuse.
func TestMergeRefusesHashModeMismatch(t *testing.T) {
	onePass := modeSketch(t, false, 1)
	perTree := modeSketch(t, true, 1)
	for _, dir := range []struct {
		name string
		dst  *Sketch
		src  *Sketch
	}{
		{"one-pass absorbs per-tree", onePass, perTree},
		{"per-tree absorbs one-pass", perTree, onePass},
	} {
		err := dir.dst.Merge(dir.src)
		if err == nil {
			t.Fatalf("%s: merge accepted a hash-mode mismatch", dir.name)
		}
		if !strings.Contains(err.Error(), "hash-mode mismatch") {
			t.Fatalf("%s: wrong error: %v", dir.name, err)
		}
	}
}

// TestMergeRefusesWideSeedMismatch: two one-pass sketches only agree on
// placement when their wide hashers share a seed.
func TestMergeRefusesWideSeedMismatch(t *testing.T) {
	a := modeSketch(t, false, 1)
	b := modeSketch(t, false, 2)
	err := a.Merge(b)
	if err == nil {
		t.Fatal("merge accepted sketches with different wide-hash seeds")
	}
	if !strings.Contains(err.Error(), "hash-seed mismatch") {
		t.Fatalf("wrong error: %v", err)
	}
}

// TestMergeRefusesNilAndGeometryMismatch covers the remaining refusal
// paths: nil source, arity, leaf width, depth and stage-width mismatches.
func TestMergeRefusesNilAndGeometryMismatch(t *testing.T) {
	base := modeSketch(t, false, 1)
	if err := base.Merge(nil); err == nil {
		t.Fatal("merge accepted nil")
	}
	mk := func(mut func(*Config)) *Sketch {
		cfg := Config{
			K: 2, Trees: 2, Widths: []int{8, 16, 32}, LeafWidth: 64,
			Hash: hashing.NewBobFamily(1),
		}
		mut(&cfg)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		o    *Sketch
		want string
	}{
		{"arity", mk(func(c *Config) { c.K = 4; c.LeafWidth = 64 }), "geometry mismatch"},
		{"leaf width", mk(func(c *Config) { c.LeafWidth = 128 }), "geometry mismatch"},
		{"depth", mk(func(c *Config) { c.Widths = []int{8, 16} }), "depth mismatch"},
		{"stage width", mk(func(c *Config) { c.Widths = []int{8, 16, 31} }), "width mismatch"},
	}
	for _, tc := range cases {
		err := base.Merge(tc.o)
		if err == nil {
			t.Fatalf("%s: merge accepted mismatched sketch", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestHashModesPlaceDifferently is the premise behind the refusals above:
// with equal geometry and seeds, the two modes really do route the same
// stream to different counters. If this ever starts passing registers
// bit-equal, the mode flag has silently stopped doing anything.
func TestHashModesPlaceDifferently(t *testing.T) {
	onePass := modeSketch(t, false, 1)
	perTree := modeSketch(t, true, 1)
	var key [4]byte
	for f := uint32(0); f < 200; f++ {
		binary.BigEndian.PutUint32(key[:], f)
		onePass.Update(key[:], 1)
		perTree.Update(key[:], 1)
	}
	if onePass.EqualRegisters(perTree) {
		t.Fatal("one-pass and per-tree modes produced identical register state over 200 flows")
	}
}
