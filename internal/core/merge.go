package core

import "fmt"

// Merge folds another sketch into s. Both must have identical geometry and
// identical hash functions (same family and seed); the hash requirement
// cannot be verified here and is the caller's contract.
//
// The merge is exact: because every node's state is a pure function of the
// counts it received, and received counts add under stream concatenation,
// the merged sketch is bit-identical to one that ingested both streams.
// Per node (bottom-up): the combined count is the two absorbed counts plus
// the carry from merged children; if either source overflowed or the
// combined count exceeds the capacity, the node is marked and only the
// *new* excess is carried up — the sources' own excesses already live in
// their parents, which merge at the next level.
//
// This makes FCM-Sketch practical for network-wide monitoring: per-switch
// (or per-shard) sketches collect independently and merge in the control
// plane.
//
// The implementation folds whole 64-bit lane words at a time (see swar.go)
// and keeps its carry buffers as per-sketch scratch, so a merge performs
// no allocations after the first call on a destination. MergeScalar is the
// register-at-a-time reference it must stay bit-identical to.
func (s *Sketch) Merge(o *Sketch) error {
	if err := s.compatible(o); err != nil {
		return err
	}
	last := len(s.widths) - 1
	carryLen := 0
	if last > 0 {
		carryLen = s.trees[0].stageLen(1)
	}
	for ti := range s.trees {
		a, b := s.trees[ti], o.trees[ti]
		// carry=nil at the leaves (no child stage) and whenever the level
		// below provably promoted nothing, which lets the word loop skip
		// the per-word carry test entirely.
		var carry []uint64
		for l := 0; l <= last; l++ {
			var next []uint64
			if l < last {
				next = s.mergeCarry[l&1].take(carryLen)
			}
			if s.mergeStage(a, b, l, carry, next) {
				s.mergeCarry[l&1].note(a.stageLen(l + 1))
				carry = next
			} else {
				carry = nil
			}
		}
	}
	return nil
}

// MergeScalar folds another sketch into s one register at a time — the
// original walk Merge's word-wide path is differentially tested against.
// Semantics are identical to Merge; only the traversal (and its per-call
// carry allocations) differ. Keep this the reference: change it only when
// the merge semantics themselves change.
func (s *Sketch) MergeScalar(o *Sketch) error {
	if err := s.compatible(o); err != nil {
		return err
	}
	last := len(s.widths) - 1
	for ti := range s.trees {
		a, b := s.trees[ti], o.trees[ti]
		carry := make([]uint64, s.w1)
		for l := 0; l <= last; l++ {
			n := a.stageLen(l)
			max := uint64(a.max[l])
			mark := a.mark[l]
			var nextCarry []uint64
			if l < last {
				nextCarry = make([]uint64, a.stageLen(l+1))
			}
			for i := 0; i < n; i++ {
				va, vb := a.load(l, i), b.load(l, i)
				c := carry[i]
				overflowed := false
				if l < last {
					overflowed = va == mark || vb == mark
				}
				if va == mark && l < last {
					c += max
				} else {
					c += uint64(va)
				}
				if vb == mark && l < last {
					c += max
				} else {
					c += uint64(vb)
				}
				if l == last {
					// Root stage saturates like the update path.
					if c > max {
						c = max
					}
					a.store(l, i, uint32(c))
					continue
				}
				if overflowed || c > max {
					a.store(l, i, mark)
					if c > max {
						nextCarry[i/s.k] += c - max
					}
				} else {
					a.store(l, i, uint32(c))
				}
			}
			carry = nextCarry
		}
	}
	return nil
}

// compatible verifies the two sketches share a geometry.
func (s *Sketch) compatible(o *Sketch) error {
	if o == nil {
		return fmt.Errorf("core: merge with nil sketch")
	}
	if s.k != o.k || s.w1 != o.w1 || len(s.trees) != len(o.trees) {
		return fmt.Errorf("core: merge geometry mismatch: k=%d/%d w1=%d/%d trees=%d/%d",
			s.k, o.k, s.w1, o.w1, len(s.trees), len(o.trees))
	}
	if len(s.widths) != len(o.widths) {
		return fmt.Errorf("core: merge depth mismatch: %d vs %d", len(s.widths), len(o.widths))
	}
	for i := range s.widths {
		if s.widths[i] != o.widths[i] {
			return fmt.Errorf("core: merge width mismatch at stage %d: %d vs %d",
				i, s.widths[i], o.widths[i])
		}
	}
	for i := range s.trees {
		if s.trees[i].mark[0] != o.trees[i].mark[0] {
			return fmt.Errorf("core: merge encoding mismatch (flag-bit vs marker)")
		}
	}
	// One-pass and per-tree hashing place counters differently, and two
	// wide hashers only agree when their seeds do. (Per-tree hasher
	// equality remains unverifiable, as documented above.)
	sw, ow := s.wide, o.wide
	switch {
	case (sw == nil) != (ow == nil):
		return fmt.Errorf("core: merge hash-mode mismatch (one-pass vs per-tree)")
	case sw != nil && sw.Seed() != ow.Seed():
		return fmt.Errorf("core: merge hash-seed mismatch")
	}
	return nil
}
