package core

import (
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// laneConfig is the paper's default geometry pinned small enough for
// exhaustive register comparisons.
func laneConfig() Config {
	return Config{K: 8, Trees: 2, Widths: []int{8, 16, 32}, LeafWidth: 512}
}

// TestResidentBytesTypedLanes pins the compaction arithmetic: with the
// paper's {8,16,32} widths every leaf costs 1 byte, every level-2 node 2
// and every root 4, so a tree holds w1·(1 + 2/k + 4/k²) resident bytes —
// 1.3125·w1 at k=8 — versus 4·(1 + 1/k + 1/k²) = 4.578·w1 for the uniform
// 32-bit shim. The ISSUE's acceptance bound is ≤55% of the wide layout;
// the typed lanes land at ≈29%.
func TestResidentBytesTypedLanes(t *testing.T) {
	cfg := laneConfig()
	compact, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WideLanes = true
	wide, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	w1, trees := 512, 2
	wantCompact := trees * (w1 + 2*w1/8 + 4*w1/64)
	if got := compact.ResidentBytes(); got != wantCompact {
		t.Errorf("compact resident bytes %d, want %d", got, wantCompact)
	}
	wantWide := trees * 4 * (w1 + w1/8 + w1/64)
	if got := wide.ResidentBytes(); got != wantWide {
		t.Errorf("wide resident bytes %d, want %d", got, wantWide)
	}
	if ratio := float64(compact.ResidentBytes()) / float64(wide.ResidentBytes()); ratio > 0.55 {
		t.Errorf("compact/wide resident ratio %.3f exceeds the 0.55 acceptance bound", ratio)
	}
	// The paper's memory accounting (bit cost) must not change with the
	// storage layout: both layouts report the same MemoryBytes.
	if cm, wm := compact.MemoryBytes(), wide.MemoryBytes(); cm != wm {
		t.Errorf("MemoryBytes differs across layouts: compact %d vs wide %d", cm, wm)
	}
	// For byte-aligned widths the bit cost and the compact resident bytes
	// coincide — the typed lanes waste nothing on the default geometry.
	if cm := compact.MemoryBytes(); cm != wantCompact {
		t.Errorf("MemoryBytes %d != compact resident %d for byte-aligned widths", cm, wantCompact)
	}
}

// TestWideShimRegisterEquality drives an identical stream through the
// compact typed lanes and the 32-bit widening shim and requires
// bit-identical registers, estimates and virtual counters. This is the
// in-package smoke of the invariant internal/difftest sweeps broadly.
func TestWideShimRegisterEquality(t *testing.T) {
	cfg := laneConfig()
	compact, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WideLanes = true
	wide, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if compact.WideLanes() || !wide.WideLanes() {
		t.Fatal("WideLanes accessor disagrees with configuration")
	}

	rng := rand.New(rand.NewSource(0x1a9e5))
	var key [4]byte
	for i := 0; i < 20000; i++ {
		binary.BigEndian.PutUint32(key[:], uint32(rng.Intn(300)))
		inc := uint64(1 + rng.Intn(500)) // large incs force promotions
		compact.Update(key[:], inc)
		wide.Update(key[:], inc)
	}
	if d := compact.FirstRegisterDiff(wide); d != "" {
		t.Fatalf("compact and wide layouts diverged: %s", d)
	}
	for f := uint32(0); f < 300; f++ {
		binary.BigEndian.PutUint32(key[:], f)
		if c, w := compact.Estimate(key[:]), wide.Estimate(key[:]); c != w {
			t.Fatalf("estimate for flow %d differs: compact %d vs wide %d", f, c, w)
		}
	}
}

// TestSaturationBoundariesNativeWidth exercises the exact 254/65534 lane
// boundaries of the paper's hardware layout: the byte lane counts to 254
// and marks at 255, the uint16 lane counts to 65534 and marks at 65535.
func TestSaturationBoundariesNativeWidth(t *testing.T) {
	s, err := New(laneConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := []byte{9, 9, 9, 9}

	s.Update(key, 254)
	if got := s.Estimate(key); got != 254 {
		t.Fatalf("estimate at byte-lane capacity: %d, want 254", got)
	}
	// One more increment crosses the 254 boundary: the leaf marks at 255
	// and the excess promotes into the uint16 lane.
	s.Update(key, 1)
	if got := s.Estimate(key); got != 255 {
		t.Fatalf("estimate across byte-lane boundary: %d, want 255", got)
	}
	// Fill to the uint16 boundary: 254 + 65534 total, then one more.
	s.Update(key, 65534-1)
	if got, want := s.Estimate(key), uint64(254+65534); got != want {
		t.Fatalf("estimate at uint16-lane capacity: %d, want %d", got, want)
	}
	s.Update(key, 1)
	if got, want := s.Estimate(key), uint64(254+65534+1); got != want {
		t.Fatalf("estimate across uint16-lane boundary: %d, want %d", got, want)
	}
}

// TestSetStageValuesLaneRange: values that cannot be represented at a
// stage's native lane width must be rejected with the offending index, not
// silently truncated.
func TestSetStageValuesLaneRange(t *testing.T) {
	s, err := New(Config{K: 2, Trees: 1, Widths: []int{8, 16, 32}, LeafWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetStageValues(0, 0, []uint32{0, 255, 0, 0}); err != nil {
		t.Fatalf("in-range byte-lane values rejected: %v", err)
	}
	err = s.SetStageValues(0, 0, []uint32{0, 256, 0, 0})
	if err == nil || !strings.Contains(err.Error(), "index 1") {
		t.Fatalf("over-wide byte-lane value not rejected with its index: %v", err)
	}
	err = s.SetStageValues(0, 1, []uint32{70000, 0})
	if err == nil || !strings.Contains(err.Error(), "index 0") {
		t.Fatalf("over-wide uint16-lane value not rejected with its index: %v", err)
	}
	// The root lane is full-width: any uint32 value is representable.
	if err := s.SetStageValues(0, 2, []uint32{1 << 31}); err != nil {
		t.Fatalf("root-lane value rejected: %v", err)
	}
}

// TestCloneSharesLayout: clones of compact and wide sketches keep their
// source's lane layout and stay independent after cloning.
func TestCloneSharesLayout(t *testing.T) {
	for _, wide := range []bool{false, true} {
		cfg := laneConfig()
		cfg.WideLanes = wide
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		key := []byte{1, 2, 3, 4}
		s.Update(key, 300) // crosses the byte lane into the uint16 lane
		c := s.Clone()
		if c.WideLanes() != wide {
			t.Fatalf("clone lane layout drifted (wide=%v)", wide)
		}
		if got := c.ResidentBytes(); got != s.ResidentBytes() {
			t.Fatalf("clone resident bytes %d, want %d", got, s.ResidentBytes())
		}
		if d := s.FirstRegisterDiff(c); d != "" {
			t.Fatalf("clone differs from source: %s", d)
		}
		c.Update(key, 1)
		if s.Estimate(key) == c.Estimate(key) {
			t.Fatal("clone shares counter storage with its source")
		}
	}
}

// TestMergeAcrossLayouts: merging the widening shim into a compact sketch
// (and vice versa) is exact — load/store widen both sides, so the merge
// only sees register values, never lane widths.
func TestMergeAcrossLayouts(t *testing.T) {
	cfg := laneConfig()
	compact, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WideLanes = true
	wide, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(laneConfig())
	if err != nil {
		t.Fatal(err)
	}

	var key [4]byte
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		binary.BigEndian.PutUint32(key[:], uint32(rng.Intn(100)))
		compact.Update(key[:], 1)
		ref.Update(key[:], 1)
	}
	for i := 0; i < 5000; i++ {
		binary.BigEndian.PutUint32(key[:], uint32(rng.Intn(100)))
		wide.Update(key[:], 1)
		ref.Update(key[:], 1)
	}
	if err := compact.Merge(wide); err != nil {
		t.Fatalf("merging wide into compact: %v", err)
	}
	if d := ref.FirstRegisterDiff(compact); d != "" {
		t.Fatalf("cross-layout merge diverged from serial: %s", d)
	}
}
