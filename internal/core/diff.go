package core

import (
	"bytes"
	"fmt"

	"github.com/fcmsketch/fcm/internal/sketch"
)

// EqualRegisters reports whether s and o share a geometry and hold
// bit-identical counter state in every stage of every tree. It is the
// equality the differential harness enforces between ingest paths: two
// sketches that EqualRegisters answer every query — count, cardinality,
// virtual-counter conversion — identically.
func (s *Sketch) EqualRegisters(o *Sketch) bool {
	return s.FirstRegisterDiff(o) == ""
}

// FirstRegisterDiff returns "" when EqualRegisters would hold, otherwise a
// human-readable description of the first difference found (geometry first,
// then registers in tree/stage/index order). Differential tests print it so
// a failure names the exact counter that diverged rather than two opaque
// dumps.
func (s *Sketch) FirstRegisterDiff(o *Sketch) string {
	if o == nil {
		return "other sketch is nil"
	}
	if s.k != o.k {
		return fmt.Sprintf("arity differs: K=%d vs %d", s.k, o.k)
	}
	if s.w1 != o.w1 {
		return fmt.Sprintf("leaf width differs: w1=%d vs %d", s.w1, o.w1)
	}
	if len(s.trees) != len(o.trees) {
		return fmt.Sprintf("tree count differs: %d vs %d", len(s.trees), len(o.trees))
	}
	if len(s.widths) != len(o.widths) {
		return fmt.Sprintf("depth differs: %d vs %d stages", len(s.widths), len(o.widths))
	}
	for l := range s.widths {
		if s.widths[l] != o.widths[l] {
			return fmt.Sprintf("stage %d width differs: %d vs %d bits", l, s.widths[l], o.widths[l])
		}
	}
	for ti := range s.trees {
		a, b := s.trees[ti], o.trees[ti]
		if s.wideLanes == o.wideLanes && equalLanes(a, b) {
			// Same lane layout and byte-identical slabs: the per-register
			// walk cannot find a difference, so skip it. memeq compares a
			// word at a time, which is what makes EqualRegisters cheap
			// enough for per-poll convergence checks on equal fleets.
			continue
		}
		for l := range a.views {
			// load widens both sides to uint32, so the comparison is
			// layout-independent: a compact sketch and the 32-bit widening
			// shim compare equal exactly when their register values agree.
			for i := 0; i < a.stageLen(l); i++ {
				if va, vb := a.load(l, i), b.load(l, i); va != vb {
					return fmt.Sprintf("tree %d stage %d index %d differs: %d vs %d",
						ti, l, i, va, vb)
				}
			}
		}
	}
	return ""
}

// equalLanes reports whether two same-geometry trees hold byte-identical
// counter slabs. Only valid as an equality prescreen when both sketches
// share a lane layout (wideLanes agrees): then every register lives at the
// same offset of the same typed lane on both sides.
func equalLanes(a, b *tree) bool {
	return bytes.Equal(a.lane8, b.lane8) &&
		bytes.Equal(sketch.BytesU16(a.lane16), sketch.BytesU16(b.lane16)) &&
		bytes.Equal(sketch.BytesU32(a.lane32), sketch.BytesU32(b.lane32))
}
