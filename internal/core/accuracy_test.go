package core

import (
	"math/rand"
	"testing"
)

func TestEtaXiPaperExamples(t *testing.T) {
	// Appendix B walks a binary tree with capacities θ1, θ2, θ3:
	// η1=0, η2=θ1, η3=2θ1+θ2, η4=3θ1+θ2, η5=4θ1+2θ2+θ3.
	thetas := []uint64{100, 1000, 10000} // distinct so mistakes show up
	cases := []struct {
		xi   int
		want uint64
	}{
		{1, 0},
		{2, 100},
		{3, 2*100 + 1000},
		{4, 3*100 + 1000},
		{5, 4*100 + 2*1000 + 10000},
	}
	for _, c := range cases {
		if got := EtaXi(2, thetas, c.xi); got != c.want {
			t.Errorf("eta_%d = %d, want %d", c.xi, got, c.want)
		}
	}
}

func TestEtaXiLowerBound(t *testing.T) {
	// Appendix B.2: η_ξ ≥ (ξ−1)·θ1 for every ξ, which is what reduces
	// Lemma B.1 to Theorem 5.1.
	thetas := []uint64{254, 65534, 4294967294}
	for _, k := range []int{2, 4, 8, 16} {
		for xi := 1; xi <= 64; xi++ {
			if got, lo := EtaXi(k, thetas, xi), uint64(xi-1)*thetas[0]; got < lo {
				t.Errorf("k=%d xi=%d: eta %d below (xi-1)theta1 %d", k, xi, got, lo)
			}
		}
	}
}

func TestEtaXiMonotone(t *testing.T) {
	thetas := []uint64{254, 65534, 4294967294}
	prev := uint64(0)
	for xi := 1; xi <= 100; xi++ {
		got := EtaXi(8, thetas, xi)
		if got < prev {
			t.Fatalf("eta not monotone at xi=%d: %d < %d", xi, got, prev)
		}
		prev = got
	}
}

func TestThetas(t *testing.T) {
	s := newTest(t, Config{K: 8, Trees: 1, LeafWidth: 512})
	th := s.Thetas()
	if len(th) != 3 || th[0] != 254 || th[1] != 65534 || th[2] != 4294967294 {
		t.Errorf("thetas %v", th)
	}
}

func TestBoundsOrdering(t *testing.T) {
	// Theorem 5.1 is a relaxation of Lemma B.1: its bound must never be
	// smaller.
	s := newTest(t, Config{K: 8, Trees: 2, LeafWidth: 512})
	for _, norm1 := range []uint64{1000, 100000, 10_000_000} {
		for _, d := range []int{1, 2, 5, 20} {
			lb := s.LemmaB1Bound(norm1, d)
			tb := s.Theorem51Bound(norm1, d)
			if tb < lb-1e-6 {
				t.Errorf("norm1=%d D=%d: thm bound %f below lemma bound %f", norm1, d, tb, lb)
			}
		}
	}
}

func TestBoundHoldsEmpirically(t *testing.T) {
	// Stream a skewed workload through a small sketch and check the
	// fraction of flows whose error exceeds the Theorem 5.1 bound is at
	// most δ = e^-d.
	s := newTest(t, Config{K: 8, Trees: 2, LeafWidth: 1024})
	rng := rand.New(rand.NewSource(9))
	truth := map[uint64]uint64{}
	var total uint64
	for i := 0; i < 200000; i++ {
		id := uint64(rng.Intn(5000))
		truth[id]++
		s.Update(k8(id), 1)
		total++
	}
	bound := s.Theorem51Bound(total, s.MaxDegree())
	violations := 0
	for id, c := range truth {
		if float64(s.Estimate(k8(id))) > float64(c)+bound {
			violations++
		}
	}
	delta := 0.1353 // e^-2
	if frac := float64(violations) / float64(len(truth)); frac > delta {
		t.Errorf("violation fraction %f exceeds delta %f (bound %f)", frac, delta, bound)
	}
}

func TestMaxDegree(t *testing.T) {
	s := newTest(t, Config{K: 2, Trees: 1, LeafWidth: 4, Widths: []int{2, 4, 8}})
	if got := s.MaxDegree(); got != 1 {
		t.Errorf("empty sketch max degree %d", got)
	}
	// Overflow both leaves of one parent: degree 2 at least.
	s.SetStageValues(0, 0, []uint32{3, 3, 0, 0})
	s.SetStageValues(0, 1, []uint32{5, 0})
	if got := s.MaxDegree(); got != 2 {
		t.Errorf("max degree %d, want 2", got)
	}
}
