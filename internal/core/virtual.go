package core

// VirtualCounter is one entry of the control plane's linear counter array
// (§4.1). Value is the exact total count of the merged sub-tree; Degree is
// the number of leaf paths merged into it; Level is the stage (1-based) of
// the terminal node where the paths met, which the EM estimator can use to
// tighten its collision constraints.
type VirtualCounter struct {
	Value  uint64
	Degree int
	Level  int
}

// VirtualCounters runs the conversion algorithm of §4.1 on every tree and
// returns one virtual counter array per tree. Empty leaves produce
// degree-1, value-0 counters (as in the paper's example V¹₂ = 0).
//
// The conversion is bottom-up: every leaf starts a path carrying one degree
// and its counted value; overflowed nodes forward their accumulated
// (value, degree) to their parent, counting their own capacity once; a node
// that has not overflowed (or the root stage) terminates all paths that
// reached it as one virtual counter.
func (s *Sketch) VirtualCounters() [][]VirtualCounter {
	out := make([][]VirtualCounter, len(s.trees))
	for i, t := range s.trees {
		out[i] = t.virtualCounters()
	}
	return out
}

func (t *tree) virtualCounters() []VirtualCounter {
	last := len(t.views) - 1
	var vcs []VirtualCounter

	// carryVal/carryDeg accumulate, for each node of the current stage,
	// the total value and path count forwarded from overflowed children.
	carryVal := make([]uint64, t.stageLen(0))
	carryDeg := make([]int, t.stageLen(0))
	// Every leaf starts one path with no inherited carry.
	for i := range carryDeg {
		carryDeg[i] = 1
	}

	for l := 0; ; l++ {
		n := t.stageLen(l)
		if l == last {
			// Root stage: everything that arrived here terminates.
			for i := 0; i < n; i++ {
				if carryDeg[i] == 0 {
					continue
				}
				vcs = append(vcs, VirtualCounter{
					Value:  carryVal[i] + uint64(t.load(l, i)),
					Degree: carryDeg[i],
					Level:  l + 1,
				})
			}
			return vcs
		}
		nextVal := make([]uint64, t.stageLen(l+1))
		nextDeg := make([]int, t.stageLen(l+1))
		for i := 0; i < n; i++ {
			v := t.load(l, i)
			if carryDeg[i] == 0 {
				continue // no path reaches this node
			}
			if v == t.mark[l] {
				// Overflowed: contribute capacity once, forward.
				parent := i / t.k
				nextVal[parent] += carryVal[i] + uint64(t.max[l])
				nextDeg[parent] += carryDeg[i]
				continue
			}
			// Terminal: all paths that reached this node merge here.
			vcs = append(vcs, VirtualCounter{
				Value:  carryVal[i] + uint64(v),
				Degree: carryDeg[i],
				Level:  l + 1,
			})
		}
		carryVal, carryDeg = nextVal, nextDeg
	}
}

// DegreeHistogram counts non-empty virtual counters per degree, the data
// behind Fig. 8. The returned slice is indexed by degree (index 0 unused).
func DegreeHistogram(vcs []VirtualCounter) []int {
	maxDeg := 0
	for _, vc := range vcs {
		if vc.Degree > maxDeg {
			maxDeg = vc.Degree
		}
	}
	h := make([]int, maxDeg+1)
	for _, vc := range vcs {
		if vc.Value > 0 {
			h[vc.Degree]++
		}
	}
	return h
}
