package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mergeConfig builds small sketches that overflow readily, so merges
// exercise every carry path.
func mergeConfig() Config {
	return Config{K: 2, Trees: 2, LeafWidth: 16, Widths: []int{3, 5, 8}}
}

func statesEqual(a, b *Sketch) (bool, int, int, int) {
	for t := 0; t < a.NumTrees(); t++ {
		for l := 0; l < a.Depth(); l++ {
			av, bv := a.StageValues(t, l), b.StageValues(t, l)
			for i := range av {
				if av[i] != bv[i] {
					return false, t, l, i
				}
			}
		}
	}
	return true, 0, 0, 0
}

func TestMergeEqualsConcatenatedStream(t *testing.T) {
	// The headline property: merge(sketch(A), sketch(B)) is bit-identical
	// to sketch(A ++ B), for random streams that heavily overflow.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		a, err := New(mergeConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(mergeConfig())
		if err != nil {
			t.Fatal(err)
		}
		both, err := New(mergeConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			key := k8(uint64(rng.Intn(40)))
			inc := uint64(1 + rng.Intn(20))
			if rng.Intn(2) == 0 {
				a.Update(key, inc)
			} else {
				b.Update(key, inc)
			}
			both.Update(key, inc)
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if ok, tr, l, i := statesEqual(a, both); !ok {
			t.Fatalf("trial %d: merged state differs at tree %d stage %d idx %d: %d vs %d",
				trial, tr, l, i, a.StageValues(tr, l)[i], both.StageValues(tr, l)[i])
		}
	}
}

func TestMergeQuick(t *testing.T) {
	f := func(split []bool, ids []uint8, incs []uint8) bool {
		a, _ := New(mergeConfig())
		b, _ := New(mergeConfig())
		both, _ := New(mergeConfig())
		n := len(split)
		if len(ids) < n {
			n = len(ids)
		}
		if len(incs) < n {
			n = len(incs)
		}
		for i := 0; i < n; i++ {
			key := k8(uint64(ids[i] % 32))
			inc := uint64(incs[i]%15) + 1
			if split[i] {
				a.Update(key, inc)
			} else {
				b.Update(key, inc)
			}
			both.Update(key, inc)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		ok, _, _, _ := statesEqual(a, both)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeDefaultWidths(t *testing.T) {
	// Same property at the paper's production widths with elephants that
	// punch through all three stages.
	cfg := Config{K: 8, Trees: 2, LeafWidth: 64}
	a, _ := New(cfg)
	b, _ := New(cfg)
	both, _ := New(cfg)
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 200; i++ {
		key := k8(uint64(rng.Intn(30)))
		inc := uint64(1 + rng.Intn(100000))
		if i%2 == 0 {
			a.Update(key, inc)
		} else {
			b.Update(key, inc)
		}
		both.Update(key, inc)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if ok, tr, l, i := statesEqual(a, both); !ok {
		t.Fatalf("merged state differs at tree %d stage %d idx %d", tr, l, i)
	}
	// Queries agree too.
	for id := uint64(0); id < 30; id++ {
		if a.Estimate(k8(id)) != both.Estimate(k8(id)) {
			t.Fatalf("estimate differs for flow %d", id)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	a, _ := New(mergeConfig())
	b, _ := New(mergeConfig())
	a.Update(k8(1), 99)
	want := a.Estimate(k8(1))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(k8(1)); got != want {
		t.Errorf("merging an empty sketch changed the estimate: %d vs %d", got, want)
	}
}

func TestMergeIncompatible(t *testing.T) {
	base, _ := New(mergeConfig())
	cases := map[string]Config{
		"arity":  {K: 4, Trees: 2, LeafWidth: 16, Widths: []int{3, 5, 8}},
		"width":  {K: 2, Trees: 2, LeafWidth: 32, Widths: []int{3, 5, 8}},
		"trees":  {K: 2, Trees: 1, LeafWidth: 16, Widths: []int{3, 5, 8}},
		"stages": {K: 2, Trees: 2, LeafWidth: 16, Widths: []int{3, 8}},
		"bits":   {K: 2, Trees: 2, LeafWidth: 16, Widths: []int{4, 5, 8}},
	}
	for name, cfg := range cases {
		o, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := base.Merge(o); err == nil {
			t.Errorf("%s: expected incompatibility error", name)
		}
	}
	if err := base.Merge(nil); err == nil {
		t.Error("nil: expected error")
	}
	// Flag-bit encoding differs from marker encoding.
	fb, _ := New(Config{K: 2, Trees: 2, LeafWidth: 16, Widths: []int{3, 5, 8}, FlagBitIndicator: true})
	if err := base.Merge(fb); err == nil {
		t.Error("flag-bit: expected encoding mismatch error")
	}
}

func TestMergePreservesTotalCount(t *testing.T) {
	// A 20-bit root cannot saturate at this stream size, so the merged
	// trees must preserve the exact packet total.
	cfg := Config{K: 2, Trees: 2, LeafWidth: 16, Widths: []int{3, 5, 20}}
	a, _ := New(cfg)
	b, _ := New(cfg)
	rng := rand.New(rand.NewSource(33))
	var total uint64
	for i := 0; i < 500; i++ {
		inc := uint64(1 + rng.Intn(5))
		key := k8(uint64(rng.Intn(64)))
		if i%2 == 0 {
			a.Update(key, inc)
		} else {
			b.Update(key, inc)
		}
		total += inc
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for tr := 0; tr < a.NumTrees(); tr++ {
		if got := a.TotalCount(tr); got != total {
			t.Errorf("tree %d: merged total %d want %d", tr, got, total)
		}
	}
}
