package core

import "math"

// This file implements the quantities of the accuracy analysis (§5 and
// Appendix B): the per-degree overestimation floor η_ξ and the error
// bounds of Lemma B.1 and Theorem 5.1. They are exercised by property
// tests and by the thm51 experiment.

// EtaXi computes η_ξ of Eqn. 7: the minimum overestimation a degree-ξ
// virtual counter adds on top of a member flow's own path,
//
//	η_ξ = Σ_{j=1..⌈log_k ξ⌉} (⌈ξ/k^(j−1)⌉ − 1)·θ_j
//
// where θ_j is the counting capacity of stage j (1-based). For ξ = 1 it is
// zero: a lone path overestimates nothing beyond ordinary collisions.
func EtaXi(k int, thetas []uint64, xi int) uint64 {
	if xi <= 1 {
		return 0
	}
	levels := int(math.Ceil(math.Log(float64(xi)) / math.Log(float64(k))))
	eta := uint64(0)
	div := 1
	for j := 0; j < levels && j < len(thetas); j++ {
		paths := (xi + div - 1) / div // ⌈ξ/k^(j−1)⌉
		eta += uint64(paths-1) * thetas[j]
		div *= k
	}
	return eta
}

// Thetas returns the per-stage counting capacities θ_l of the sketch.
func (s *Sketch) Thetas() []uint64 {
	out := make([]uint64, len(s.widths))
	for l := range s.widths {
		out[l] = s.StageMax(l)
	}
	return out
}

// MaxDegree returns the largest virtual-counter degree D currently
// realized in any tree (the D of Theorem 5.1).
func (s *Sketch) MaxDegree() int {
	max := 0
	for _, vcs := range s.VirtualCounters() {
		for _, vc := range vcs {
			if vc.Degree > max {
				max = vc.Degree
			}
		}
	}
	return max
}

// LemmaB1Bound evaluates the general error bound of Lemma B.1 for a stream
// of norm1 total packets:
//
//	err ≤ ε · max_{1≤ξ≤D} (ξ·|x|₁ − w1·η_ξ),  ε = e/w1.
func (s *Sketch) LemmaB1Bound(norm1 uint64, maxDegree int) float64 {
	w1 := float64(s.w1)
	eps := math.E / w1
	thetas := s.Thetas()
	best := math.Inf(-1)
	for xi := 1; xi <= maxDegree; xi++ {
		v := float64(xi)*float64(norm1) - w1*float64(EtaXi(s.k, thetas, xi))
		if v > best {
			best = v
		}
	}
	if best < 0 {
		best = 0
	}
	return eps * best
}

// Theorem51Bound evaluates the simplified bound of Theorem 5.1:
//
//	err ≤ ε·|x|₁ + ε·(D−1)·(|x|₁ − w1·θ1)·𝟙{|x|₁ > w1·θ1}.
func (s *Sketch) Theorem51Bound(norm1 uint64, maxDegree int) float64 {
	w1 := float64(s.w1)
	eps := math.E / w1
	bound := eps * float64(norm1)
	if cap := w1 * float64(s.StageMax(0)); float64(norm1) > cap {
		bound += eps * float64(maxDegree-1) * (float64(norm1) - cap)
	}
	return bound
}
