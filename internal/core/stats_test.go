package core

import "testing"

// statSketch builds a tiny instrumented sketch: 1 tree of {2,4,8}-bit
// stages so overflows are easy to force (leaf capacity 2, marker 3).
func statSketch(t *testing.T) (*Sketch, *Stats) {
	t.Helper()
	s, err := New(Config{K: 2, Trees: 1, Widths: []int{2, 4, 8}, LeafWidth: 8})
	if err != nil {
		t.Fatal(err)
	}
	st := NewStats(s.Depth())
	s.SetStats(st)
	return s, st
}

func TestStatsCountsUpdatesAndPromotions(t *testing.T) {
	s, st := statSketch(t)
	key := []byte("flow-a")
	// Leaf capacity is 2^2−2 = 2: the third packet promotes to stage 2.
	for i := 0; i < 3; i++ {
		s.Update(key, 1)
	}
	if got := st.Updates.Load(); got != 3 {
		t.Errorf("updates %d, want 3", got)
	}
	if got := st.PromotionCount(0); got != 1 {
		t.Errorf("stage-0 promotions %d, want 1", got)
	}
	if got := st.PromotionCount(1); got != 0 {
		t.Errorf("stage-1 promotions %d, want 0", got)
	}
	// Stage-2 capacity is 2^4−2 = 14; pushing the same flow past
	// 2+14 = 16 total promotes again.
	s.Update(key, 20)
	if got := st.PromotionCount(1); got != 1 {
		t.Errorf("stage-1 promotions %d, want 1", got)
	}
	// Root capacity is 2^8−2 = 254; exceed 2+14+254 to saturate.
	s.Update(key, 1000)
	if got := st.Saturations.Load(); got == 0 {
		t.Error("expected a root saturation")
	}
	// Estimates still behave (saturated at the root's capacity).
	if est := s.Estimate(key); est != 2+14+254 {
		t.Errorf("estimate %d, want %d", est, 2+14+254)
	}
	// Out-of-range promotion reads are safe.
	if st.PromotionCount(99) != 0 || st.PromotionCount(-1) != 0 {
		t.Error("out-of-range PromotionCount not zero")
	}
}

func TestStatsSurviveResetAndSkipClone(t *testing.T) {
	s, st := statSketch(t)
	s.Update([]byte("x"), 5)
	c := s.Clone()
	if c.Stats() != nil {
		t.Error("clone inherited stats")
	}
	c.Update([]byte("x"), 1)
	if got := st.Updates.Load(); got != 1 {
		t.Errorf("clone update leaked into stats: %d", got)
	}
	s.Reset()
	if st.Updates.Load() != 1 {
		t.Error("Reset cleared cumulative stats")
	}
	s.SetStats(nil)
	s.Update([]byte("x"), 1)
	if st.Updates.Load() != 1 {
		t.Error("detached stats still counting")
	}
}

func TestSetStatsDepthMismatchPanics(t *testing.T) {
	s, _ := statSketch(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for undersized Stats")
		}
	}()
	s.SetStats(&Stats{})
}

func TestOccupancyAndOverflowedNodes(t *testing.T) {
	s, _ := statSketch(t)
	occ := s.StageOccupancy()
	for l, o := range occ {
		if o != 0 {
			t.Errorf("stage %d occupancy %v on empty sketch", l, o)
		}
	}
	// One overflowed flow: its leaf sits at the marker, stage 2 non-zero.
	s.Update([]byte("flow-a"), 5)
	occ = s.StageOccupancy()
	if occ[0] != 1.0/8 {
		t.Errorf("stage-0 occupancy %v, want 1/8", occ[0])
	}
	if occ[1] != 1.0/4 {
		t.Errorf("stage-1 occupancy %v, want 1/4", occ[1])
	}
	over := s.OverflowedNodes()
	if over[0] != 1 || over[1] != 0 {
		t.Errorf("overflowed %v, want [1 0 0]", over)
	}
	// Saturate the root: the root stage must report one clamped node.
	s.Update([]byte("flow-a"), 10_000)
	over = s.OverflowedNodes()
	if over[2] != 1 {
		t.Errorf("root overflowed %v, want 1", over[2])
	}
}
