package core

// This file holds the register scans behind the live accuracy
// introspection (internal/insight): per-stage count mass and headroom.
// Like StageOccupancy/OverflowedNodes they walk every register — call
// them on snapshots or behind a scrape-time TTL probe, never on the
// ingest path.

// StageLoad returns, per stage, the count mass resident at that stage
// summed across trees: overflowed nodes contribute their counting
// capacity θ_l, terminal nodes their value. Dividing by NumTrees gives
// the per-tree mass; the stage-0 entry divided by NumTrees equals
// TotalCount absent promotions. The per-stage split is what prices each
// stage's collision error (ε_l = e/w_l applies to the mass that reached
// stage l).
func (s *Sketch) StageLoad() []uint64 {
	load := make([]uint64, len(s.widths))
	last := len(s.widths) - 1
	for _, tr := range s.trees {
		for l := range tr.views {
			for i := 0; i < tr.views[l].n; i++ {
				v := tr.load(l, i)
				if v == tr.mark[l] && l < last {
					load[l] += uint64(tr.max[l])
				} else {
					load[l] += uint64(v)
				}
			}
		}
	}
	return load
}

// MaxStageValue returns the largest register value at stage l across all
// trees — at the root stage, the saturation headroom signal: the sketch
// starts clamping (silently undercounting) when this reaches StageMax.
func (s *Sketch) MaxStageValue(l int) uint64 {
	max := uint32(0)
	for _, tr := range s.trees {
		for i := 0; i < tr.views[l].n; i++ {
			if v := tr.load(l, i); v > max {
				max = v
			}
		}
	}
	return uint64(max)
}
