package core

import (
	"math/rand"
	"testing"
)

func cuPair(t *testing.T) (plain, cu *Sketch) {
	t.Helper()
	plain = newTest(t, Config{K: 8, Trees: 2, LeafWidth: 512})
	cu = newTest(t, Config{K: 8, Trees: 2, LeafWidth: 512, Conservative: true})
	return plain, cu
}

func TestCUNeverUnderestimates(t *testing.T) {
	_, cu := cuPair(t)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100000; i++ {
		id := uint64(rng.Intn(3000))
		inc := uint64(1 + rng.Intn(3))
		truth[id] += inc
		cu.Update(k8(id), inc)
	}
	for id, c := range truth {
		if got := cu.Estimate(k8(id)); got < c {
			t.Fatalf("flow %d underestimated: %d < %d", id, got, c)
		}
	}
}

func TestCUNotWorseThanPlain(t *testing.T) {
	plain, cu := cuPair(t)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 100000; i++ {
		id := uint64(rng.Intn(3000))
		truth[id]++
		plain.Update(k8(id), 1)
		cu.Update(k8(id), 1)
	}
	var errPlain, errCU float64
	for id, c := range truth {
		errPlain += float64(plain.Estimate(k8(id)) - c)
		errCU += float64(cu.Estimate(k8(id)) - c)
	}
	if errPlain == 0 {
		t.Fatal("no collisions; shrink the sketch")
	}
	if errCU > errPlain {
		t.Errorf("CU total error %f exceeds plain %f", errCU, errPlain)
	}
}

func TestCUSingleTreeIsPlain(t *testing.T) {
	a := newTest(t, Config{K: 8, Trees: 1, LeafWidth: 512})
	b := newTest(t, Config{K: 8, Trees: 1, LeafWidth: 512, Conservative: true})
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20000; i++ {
		key := k8(uint64(rng.Intn(1000)))
		a.Update(key, 1)
		b.Update(key, 1)
	}
	for l := 0; l < a.Depth(); l++ {
		av, bv := a.StageValues(0, l), b.StageValues(0, l)
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("single-tree CU diverged at stage %d idx %d", l, i)
			}
		}
	}
}

func TestCUExactWhenSparse(t *testing.T) {
	cu := newTest(t, Config{K: 8, Trees: 2, LeafWidth: 4096, Conservative: true})
	for i := uint64(0); i < 50; i++ {
		cu.Update(k8(i), i*7+1)
	}
	for i := uint64(0); i < 50; i++ {
		if got := cu.Estimate(k8(i)); got != i*7+1 {
			t.Errorf("flow %d: %d want %d", i, got, i*7+1)
		}
	}
}

func TestFlagBitHalvesCapacity(t *testing.T) {
	s := newTest(t, Config{K: 2, Trees: 1, LeafWidth: 4, Widths: []int{8, 16}, FlagBitIndicator: true})
	if got := s.StageMax(0); got != 127 {
		t.Errorf("flag-bit stage-1 capacity %d, want 127", got)
	}
	if got := s.StageMax(1); got != 32767 {
		t.Errorf("flag-bit stage-2 capacity %d, want 32767", got)
	}
	// Counting still works across the overflow boundary.
	s.Update(k8(1), 500)
	if got := s.Estimate(k8(1)); got != 500 {
		t.Errorf("flag-bit estimate %d want 500", got)
	}
}
