package elastic

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"github.com/fcmsketch/fcm/internal/metrics"
)

func k(i uint64) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

func newTest(t testing.TB, mem int) *Sketch {
	t.Helper()
	s, err := New(Config{MemoryBytes: mem, TopKLevels: 2, TopKEntries: 512})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	// Heavy part bigger than the budget.
	if _, err := New(Config{MemoryBytes: 100, TopKLevels: 4, TopKEntries: 8192}); err == nil {
		t.Error("expected error when heavy part exceeds budget")
	}
}

func TestHeavyFlowExact(t *testing.T) {
	s := newTest(t, 1<<16)
	for i := 0; i < 5000; i++ {
		s.Update(k(1), 1)
	}
	if got := s.Estimate(k(1)); got != 5000 {
		t.Errorf("heavy estimate %d want 5000", got)
	}
}

func TestMiceViaLightPart(t *testing.T) {
	s := newTest(t, 1<<18)
	truth := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		id := uint64(rng.Intn(8000))
		truth[id]++
		s.Update(k(id), 1)
	}
	// Estimates must be reasonable: ARE below 1 (8-bit light counters
	// saturate at 255, so mice dominate accuracy).
	var tv, ev []float64
	for id, c := range truth {
		tv = append(tv, float64(c))
		ev = append(ev, float64(s.Estimate(k(id))))
	}
	if are := metrics.ARE(tv, ev); are > 1 {
		t.Errorf("ARE %f too high", are)
	}
}

func TestHeavyHitters(t *testing.T) {
	s := newTest(t, 1<<18)
	rng := rand.New(rand.NewSource(2))
	stream := make([]uint64, 0, 80000)
	for h := uint64(0); h < 10; h++ {
		for i := 0; i < 3000; i++ {
			stream = append(stream, h)
		}
	}
	for m := 0; m < 50000; m++ {
		stream = append(stream, 100+uint64(rng.Intn(20000)))
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, id := range stream {
		s.Update(k(id), 1)
	}
	hh := s.HeavyHitters(2500)
	for h := uint64(0); h < 10; h++ {
		if _, ok := hh[string(k(h))]; !ok {
			t.Errorf("heavy flow %d missed", h)
		}
	}
	for key, c := range hh {
		id := uint64(binary.LittleEndian.Uint32([]byte(key)))
		if id >= 10 && c > 4000 {
			t.Errorf("mouse %d reported with count %d", id, c)
		}
	}
}

func TestCardinality(t *testing.T) {
	s, err := New(Config{MemoryBytes: 1 << 18, TopKLevels: 1, TopKEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		s.Update(k(uint64(i)), 1)
	}
	got := s.Cardinality()
	if math.Abs(got-n)/n > 0.15 {
		t.Errorf("cardinality %f want ~%d", got, n)
	}
}

func TestEstimateDistribution(t *testing.T) {
	s := newTest(t, 1<<18)
	rng := rand.New(rand.NewSource(3))
	truth := make([]float64, 5001)
	for f := uint64(0); f < 5000; f++ {
		size := 1 + rng.Intn(3)
		if f%100 == 0 {
			size = 1000 + rng.Intn(3000)
		}
		for i := 0; i < size; i++ {
			s.Update(k(f), 1)
		}
		truth[size]++
	}
	dist, err := s.EstimateDistribution(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w := metrics.WMRE(truth, dist); w > 0.6 {
		t.Errorf("WMRE %f too high", w)
	}
}

func TestMemoryAndReset(t *testing.T) {
	s := newTest(t, 1<<16)
	if s.MemoryBytes() > 1<<16 {
		t.Errorf("memory %d over budget", s.MemoryBytes())
	}
	if s.HeavyMemoryBytes() >= s.MemoryBytes() {
		t.Error("heavy part swallowed the whole budget")
	}
	s.Update(k(1), 500)
	s.Reset()
	if got := s.Estimate(k(1)); got != 0 {
		t.Errorf("after reset %d", got)
	}
}

func TestNoEvictionVariantBuilds(t *testing.T) {
	s, err := New(Config{MemoryBytes: 1 << 16, TopKLevels: 1, TopKEntries: 512,
		NoEviction: true, LightRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.Update(k(uint64(i%50)), 1)
	}
	if got := s.Estimate(k(0)); got < 20 {
		t.Errorf("estimate %d too low", got)
	}
}

func BenchmarkUpdateElastic(b *testing.B) {
	s, err := New(Config{MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	var key [4]byte
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint32(key[:], uint32(i%100000))
		s.Update(key[:], 1)
	}
}
