// Package elastic implements ElasticSketch (Yang et al., SIGCOMM 2018
// [59]): a Top-K heavy-part filter (internal/topk) in front of a light
// part of small (8-bit) Count-Min counters. It is the strongest generic
// baseline the FCM paper compares against (§7.5), and §8 emulates it on
// Tofino as CM(d)+TopK with a single-level no-eviction filter.
package elastic

import (
	"fmt"
	"math"

	"github.com/fcmsketch/fcm/internal/cmsketch"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/topk"
)

// Config parameterizes ElasticSketch.
type Config struct {
	// MemoryBytes is the total budget: the Top-K part takes
	// Levels×EntriesPerLevel buckets, the light part gets the rest.
	MemoryBytes int
	// TopKLevels is the heavy-part depth (software default 4; the Tofino
	// emulation uses 1).
	TopKLevels int
	// TopKEntries is the bucket count per level (software default 8192).
	TopKEntries int
	// LightRows is the light-part row count d (default 1; the CM(d)+TopK
	// hardware emulation sweeps 2/4/8).
	LightRows int
	// LightBits is the light counter width (default 8, per the paper).
	LightBits int
	// KeySize is the flow-key byte length for accounting (default 4).
	KeySize int
	// NoEviction selects the Tofino-feasible single-probe heavy part.
	NoEviction bool
	// Hash supplies hash functions; nil selects BobHash.
	Hash hashing.Family
}

// Sketch is an ElasticSketch instance.
type Sketch struct {
	heavy *topk.Filter
	light *cmsketch.Sketch
}

// New builds an ElasticSketch.
func New(cfg Config) (*Sketch, error) {
	levels := cfg.TopKLevels
	if levels == 0 {
		levels = 4
	}
	entries := cfg.TopKEntries
	if entries == 0 {
		entries = 8192
	}
	rows := cfg.LightRows
	if rows == 0 {
		rows = 1
	}
	bits := cfg.LightBits
	if bits == 0 {
		bits = 8
	}
	var fam hashing.Family = cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0xe1a571c)
	}
	heavy, err := topk.New(topk.Config{
		Levels:          levels,
		EntriesPerLevel: entries,
		KeySize:         cfg.KeySize,
		NoEviction:      cfg.NoEviction,
		Hash:            &offsetFamily{fam, 0},
	})
	if err != nil {
		return nil, fmt.Errorf("elastic: heavy part: %w", err)
	}
	lightBytes := cfg.MemoryBytes - heavy.MemoryBytes()
	if lightBytes < rows*bits/8 {
		return nil, fmt.Errorf("elastic: memory %dB leaves no room for the light part (heavy uses %dB)",
			cfg.MemoryBytes, heavy.MemoryBytes())
	}
	light, err := cmsketch.New(cmsketch.Config{
		MemoryBytes: lightBytes,
		Rows:        rows,
		Bits:        bits,
		Hash:        &offsetFamily{fam, 16},
	})
	if err != nil {
		return nil, fmt.Errorf("elastic: light part: %w", err)
	}
	return &Sketch{heavy: heavy, light: light}, nil
}

// offsetFamily shifts family indices so the heavy and light parts draw
// disjoint hash functions from one base family.
type offsetFamily struct {
	fam hashing.Family
	off int
}

func (o *offsetFamily) New(i int) hashing.Hasher { return o.fam.New(i + o.off) }

// Update implements sketch.Updater.
func (s *Sketch) Update(key []byte, inc uint64) {
	rk, rc := s.heavy.Update(key, inc)
	if rc != 0 {
		s.light.Update(rk, rc)
	}
}

// Estimate implements sketch.Estimator (§6: heavy count, plus the light
// estimate when the resident flow was installed by eviction).
func (s *Sketch) Estimate(key []byte) uint64 {
	count, found, flagged := s.heavy.Lookup(key)
	if !found {
		return s.light.Estimate(key)
	}
	if flagged {
		return count + s.light.Estimate(key)
	}
	return count
}

// HeavyHitters returns resident flows whose full estimate reaches the
// threshold, keyed by the raw flow-key bytes.
func (s *Sketch) HeavyHitters(threshold uint64) map[string]uint64 {
	hh := make(map[string]uint64)
	s.heavy.Entries(func(key []byte, count uint64, flagged bool) {
		if flagged {
			count += s.light.Estimate(key)
		}
		if count >= threshold {
			hh[string(key)] = count
		}
	})
	return hh
}

// Cardinality implements sketch.CardinalityEstimator: linear counting over
// the light part plus the resident heavy flows (ElasticSketch §4.3).
func (s *Sketch) Cardinality() float64 {
	row := s.light.Row(0)
	zeros := 0
	for _, v := range row {
		if v == 0 {
			zeros++
		}
	}
	m := float64(len(row))
	lc := 0.0
	if zeros == 0 {
		zeros = 1
	}
	lc = -m * math.Log(float64(zeros)/m)
	// Unflagged residents never touched the light part; add them.
	extra := 0
	s.heavy.Entries(func(_ []byte, _ uint64, flagged bool) {
		if !flagged {
			extra++
		}
	})
	return lc + float64(extra)
}

// EstimateDistribution estimates the flow-size distribution: EM over the
// light part's first row (degree-1 counters) plus the heavy residents
// counted exactly (the ElasticSketch FSD method).
func (s *Sketch) EstimateDistribution(iterations, workers int) ([]float64, error) {
	row := s.light.Row(0)
	vcs := make([]core.VirtualCounter, len(row))
	for i, v := range row {
		vcs[i] = core.VirtualCounter{Value: uint64(v), Degree: 1, Level: 1}
	}
	res, err := em.Run(em.Config{
		W1:         len(row),
		Iterations: iterations,
		Workers:    workers,
	}, [][]core.VirtualCounter{vcs})
	if err != nil {
		return nil, err
	}
	dist := res.Dist
	s.heavy.Entries(func(key []byte, count uint64, flagged bool) {
		total := count
		if flagged {
			total += s.light.Estimate(key)
		}
		if total == 0 {
			return
		}
		for uint64(len(dist)) <= total {
			dist = append(dist, 0)
		}
		dist[total]++
	})
	return dist, nil
}

// MemoryBytes implements sketch.Sized.
func (s *Sketch) MemoryBytes() int { return s.heavy.MemoryBytes() + s.light.MemoryBytes() }

// HeavyMemoryBytes returns the heavy part's share.
func (s *Sketch) HeavyMemoryBytes() int { return s.heavy.MemoryBytes() }

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	s.heavy.Reset()
	s.light.Reset()
}
