package insight

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fcmsketch/fcm/internal/telemetry"
)

// Prober rate-limits the expensive register scan behind a report
// source: Report re-observes at most once per TTL and serves the cached
// report between scans — the same discipline the sketch gauges use, so
// an aggressive scraper cannot turn introspection into ingest overhead.
type Prober struct {
	an      *Analyzer
	observe func() Observation
	ttl     time.Duration

	mu   sync.Mutex
	at   time.Time
	last Report
}

// NewProber wraps an analyzer and an observation source with a TTL
// (default 1s when ttl <= 0).
func NewProber(an *Analyzer, observe func() Observation, ttl time.Duration) *Prober {
	if ttl <= 0 {
		ttl = time.Second
	}
	return &Prober{an: an, observe: observe, ttl: ttl}
}

// Report returns the current report, re-observing if the cache expired.
func (p *Prober) Report() Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	if now := time.Now(); now.Sub(p.at) >= p.ttl {
		p.at = now
		p.last = p.an.Note(p.observe())
	}
	return p.last
}

// Handler serves a report source as the /debug/insight endpoint: JSON by
// default, the fcmctl rendering with ?format=text.
func Handler(report func() Report) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep := report()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteText(w, rep)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep) //nolint:errcheck // client went away
	})
}

// recScore encodes a recommendation as a gauge value: grow pressure is
// positive so alerts read naturally (1 grow, 0 ok, −1 shrink).
func recScore(rec string) float64 {
	switch rec {
	case RecGrow:
		return 1
	case RecShrink:
		return -1
	default:
		return 0
	}
}

// Instrument registers the report's headline numbers as gauges so the
// accuracy self-report rides the ordinary scrape path. report is called
// at scrape time — hand it a Prober's Report (or an Analyzer's cached
// Last), never a raw register scan. depth fixes how many per-stage
// series are registered (series sets are static in Prometheus; pass the
// sketch's stage count).
func Instrument(reg *telemetry.Registry, depth int, report func() Report) {
	g := func(name, help string, f func(Report) float64) {
		reg.GaugeFunc(name, help, func() float64 { return f(report()) })
	}
	g("fcm_insight_norm1_packets",
		"Stream size |x|1 the accuracy bounds are evaluated at (packets, averaged over trees).",
		func(r Report) float64 { return r.Norm1 })
	g("fcm_insight_error_bound_packets",
		"Theorem 5.1 per-flow count-error bound at the current window (packets, one-sided overestimate).",
		func(r Report) float64 { return r.ErrorBound })
	g("fcm_insight_relative_error_bound",
		"Theorem 5.1 error bound divided by |x|1.",
		func(r Report) float64 { return r.RelativeErrorBound })
	g("fcm_insight_max_degree",
		"Virtual-counter degree D used in the bound (exact when fcm_insight_max_degree_exact is 1, else the structural upper bound).",
		func(r Report) float64 { return float64(r.MaxDegree) })
	g("fcm_insight_max_degree_exact",
		"1 when the reported max degree came from a full virtual-counter walk.",
		func(r Report) float64 { return b2f(r.MaxDegreeExact) })
	g("fcm_insight_cardinality_valid",
		"1 while the linear-counting cardinality estimate is trustworthy (empty leaves remain and rel-std-err is under threshold).",
		func(r Report) float64 { return b2f(r.CardinalityValid) })
	g("fcm_insight_cardinality_rel_std_err",
		"Linear-counting relative standard error of the cardinality estimate (-1 once no leaves are empty).",
		func(r Report) float64 { return r.CardinalityRelStdErr })
	g("fcm_insight_root_headroom",
		"Fraction of root counting capacity still unused by the largest root register (0 = saturating).",
		func(r Report) float64 { return r.RootHeadroom })
	g("fcm_insight_saturated",
		"1 once any root register clamped (counts may be underestimates).",
		func(r Report) float64 { return b2f(r.Saturated) })
	g("fcm_insight_saturation_forecast_windows",
		"Extrapolated windows until the first root register saturates (0 = saturated, -1 = no growth trend).",
		func(r Report) float64 { return r.ForecastWindows })

	stage := func(r Report, l int) StageReport {
		if l < len(r.Stages) {
			return r.Stages[l]
		}
		return StageReport{}
	}
	for l := 0; l < depth; l++ {
		l := l
		lbl := fmt.Sprintf(`level="%d"`, l)
		reg.GaugeFuncL("fcm_insight_stage_error_bound_packets", lbl,
			"Per-stage collision-error price: e/w_l times the count mass that reached stage l (packets).",
			func() float64 { return stage(report(), l).ErrorBound })
		reg.GaugeFuncL("fcm_insight_stage_promotion_rate", lbl,
			"Promotions out of this stage per window, over the trend history.",
			func() float64 { return stage(report(), l).PromotionRate })
		reg.GaugeFuncL("fcm_insight_stage_recommendation", lbl,
			"Geometry recommendation for this stage: 1 grow, 0 ok, -1 shrink.",
			func() float64 { return recScore(stage(report(), l).Recommendation) })
	}
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// WriteText renders a report the way fcmctl -insight shows it.
func WriteText(w io.Writer, r Report) {
	fmt.Fprintf(w, "insight @ window %d (%s)\n", r.Window, r.At.Format(time.RFC3339))
	fmt.Fprintf(w, "geometry: k=%d trees=%d depth=%d w1=%d\n",
		r.Geometry.K, r.Geometry.Trees, r.Geometry.Depth, r.Geometry.LeafWidth)
	exact := "bound"
	if r.MaxDegreeExact {
		exact = "exact"
	}
	fmt.Fprintf(w, "stream:   |x|1=%.0f packets, max degree D=%d (%s)\n", r.Norm1, r.MaxDegree, exact)
	fmt.Fprintf(w, "error:    <= %.1f packets per flow (%.4f relative, eps=%.2e)\n",
		r.ErrorBound, r.RelativeErrorBound, r.Epsilon)
	card := "VALID"
	if !r.CardinalityValid {
		card = "INVALID"
	}
	se := "n/a"
	if r.CardinalityRelStdErr >= 0 {
		se = fmt.Sprintf("%.4f", r.CardinalityRelStdErr)
	}
	fmt.Fprintf(w, "cardinality: %.0f flows [%s, rel-std-err %s]\n", r.CardinalityEstimate, card, se)
	switch {
	case r.Saturated:
		fmt.Fprintf(w, "saturation: SATURATED (root max %d / %d) — counts may undercount\n",
			r.RootMax, r.RootCapacity)
	case r.ForecastWindows >= 0:
		fmt.Fprintf(w, "saturation: root max %d / %d (headroom %.1f%%), forecast %.1f windows\n",
			r.RootMax, r.RootCapacity, 100*r.RootHeadroom, r.ForecastWindows)
	default:
		fmt.Fprintf(w, "saturation: root max %d / %d (headroom %.1f%%), no growth trend\n",
			r.RootMax, r.RootCapacity, 100*r.RootHeadroom)
	}
	fmt.Fprintln(w, "stages:")
	for _, s := range r.Stages {
		fmt.Fprintf(w, "  L%d: %6d nodes  occ %5.1f%%  overflowed %d  load/tree %.0f  err <= %.1f  promo/window %.1f  -> %s\n",
			s.Level, s.Nodes, 100*s.Occupancy, s.Overflowed, s.LoadPerTree,
			s.ErrorBound, s.PromotionRate, strings.ToUpper(s.Recommendation))
	}
}

// FleetReport is fcmagg's /debug/insight payload: the region rollup plus
// every member switch's own report, keyed by address.
type FleetReport struct {
	Region  *Report           `json:"region,omitempty"`
	Members map[string]Report `json:"members"`
}

// FleetHandler serves a FleetReport source as /debug/insight on an
// aggregator: JSON by default, per-member text with ?format=text.
func FleetHandler(report func() FleetReport) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fr := report()
		if fr.Members == nil {
			fr.Members = map[string]Report{}
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteFleetText(w, fr)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fr) //nolint:errcheck // client went away
	})
}

// WriteFleetText renders the fleet rollup: region first, then members
// sorted by address with one summary line each plus flagged conditions.
func WriteFleetText(w io.Writer, fr FleetReport) {
	if fr.Region != nil {
		fmt.Fprintln(w, "== region ==")
		WriteText(w, *fr.Region)
		fmt.Fprintln(w)
	}
	addrs := make([]string, 0, len(fr.Members))
	for a := range fr.Members {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	fmt.Fprintf(w, "== members (%d) ==\n", len(addrs))
	for _, a := range addrs {
		r := fr.Members[a]
		flags := ""
		if r.Saturated {
			flags += "  SATURATED"
		} else if r.ForecastWindows >= 0 && r.ForecastWindows <= 3 {
			flags += fmt.Sprintf("  SATURATING(%.1fw)", r.ForecastWindows)
		}
		if !r.CardinalityValid {
			flags += "  LC-INVALID"
		}
		fmt.Fprintf(w, "%s: window %d, |x|1=%.0f, err<=%.1f (%.4f rel), card=%.0f%s\n",
			a, r.Window, r.Norm1, r.ErrorBound, r.RelativeErrorBound, r.CardinalityEstimate, flags)
	}
}
