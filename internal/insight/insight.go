// Package insight turns the sketch's occupancy/promotion/saturation
// series into a live accuracy self-report: what the current register
// state implies about answer quality, per collection window.
//
// Everything here is computed from quantities the paper's analysis (§5,
// Appendix B) prices:
//
//   - Count-error bounds. Theorem 5.1 bounds any flow's overestimate by
//     ε·|x|₁ + ε·(D−1)·(|x|₁ − w1·θ1)·𝟙{|x|₁ > w1·θ1} with ε = e/w1.
//     The report evaluates it online, plus a per-stage split: stage l
//     prices ε_l = e/w_l against the count mass that reached stage l.
//   - Linear-counting validity. The cardinality estimate −w1·ln(V) is
//     only trustworthy while empty leaves remain; the report carries the
//     LC relative standard error √(e^α − α − 1)/(α·√w1) and flags the
//     estimate invalid once it crosses a threshold (or V hits zero).
//   - Time-to-saturation forecast. The root stage clamps silently; the
//     report extrapolates the max root counter's growth rate over the
//     recent observation history into "windows until saturation", so
//     operators get warned while there is still headroom.
//   - Geometry recommendation. Per stage: grow under collision pressure
//     or imminent saturation, shrink when nearly idle — the sensor half
//     of an auto-tuner control loop.
//
// The package is deliberately split from core: core scans registers
// (Observe), insight interprets series of those scans (Analyzer). The
// Analyzer never touches a sketch, so aggregators can run it on
// remote-collected snapshots.
package insight

import (
	"math"
	"sync"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
)

// Geometry is the sketch shape an analysis is anchored to. Observations
// against a different geometry reset the analyzer's history (a rotation
// or re-provisioning invalidates trend extrapolation).
type Geometry struct {
	K         int      `json:"k"`
	Trees     int      `json:"trees"`
	Depth     int      `json:"depth"`
	LeafWidth int      `json:"leaf_width"`
	StageNodes []int   `json:"stage_nodes"` // per-tree node counts, leaves first
	StageCaps  []uint64 `json:"stage_caps"` // counting capacities θ_l
}

// GeometryOf captures a sketch's shape.
func GeometryOf(sk *core.Sketch) Geometry {
	g := Geometry{
		K:         sk.K(),
		Trees:     sk.NumTrees(),
		Depth:     sk.Depth(),
		LeafWidth: sk.LeafWidth(),
	}
	n := sk.LeafWidth()
	for l := 0; l < sk.Depth(); l++ {
		g.StageNodes = append(g.StageNodes, n)
		g.StageCaps = append(g.StageCaps, sk.StageMax(l))
		n /= sk.K()
	}
	return g
}

func (g Geometry) equal(o Geometry) bool {
	if g.K != o.K || g.Trees != o.Trees || g.Depth != o.Depth || g.LeafWidth != o.LeafWidth {
		return false
	}
	for l := range g.StageNodes {
		if g.StageNodes[l] != o.StageNodes[l] || g.StageCaps[l] != o.StageCaps[l] {
			return false
		}
	}
	return true
}

// Counts carries the cumulative hot-path counters (core.Stats) when the
// observer has them. All-zero is fine: snapshot-only observers (the
// collection plane) fall back to register-derived signals.
type Counts struct {
	Updates     uint64   `json:"updates"`
	Promotions  []uint64 `json:"promotions,omitempty"` // per boundary l→l+1, len depth−1
	Saturations uint64   `json:"saturations"`
}

// Observation is one register scan: everything the analyzer needs,
// decoupled from *core.Sketch so remote snapshots feed the same math.
type Observation struct {
	At     time.Time `json:"at"`
	Window uint64    `json:"window"` // monotonic; 0 lets the analyzer assign the next seq

	Geometry   Geometry  `json:"geometry"`
	Norm1      float64   `json:"norm1"`      // |x|₁ ≈ packets, averaged over trees
	Occupancy  []float64 `json:"occupancy"`  // per stage, fraction non-zero
	Overflowed []int     `json:"overflowed"` // per stage, nodes at the overflow marker (summed over trees)
	StageLoad  []uint64  `json:"stage_load"` // per stage, count mass (summed over trees)
	MaxRoot    uint64    `json:"max_root"`   // largest root register across trees

	Cardinality   float64 `json:"cardinality"`
	EmptyFraction float64 `json:"empty_fraction"` // V: empty stage-1 fraction

	Counts Counts `json:"counts"`

	// ExactMaxDegree, when > 0, is core.Sketch.MaxDegree() (a full
	// virtual-counter walk). Zero means unknown; the analyzer uses the
	// cheap upper bound k^L with L the deepest stage holding any mass.
	ExactMaxDegree int `json:"exact_max_degree,omitempty"`
}

// Observe scans a sketch into an Observation. It walks every register —
// scrape-time or per-window only. Attached core.Stats are carried along;
// exact max degree is not computed (set ExactMaxDegree yourself if you
// can afford the virtual-counter walk).
func Observe(sk *core.Sketch) Observation {
	geo := GeometryOf(sk)
	load := sk.StageLoad()
	norm1 := uint64(0)
	for _, m := range load {
		norm1 += m
	}
	obs := Observation{
		At:            time.Now(),
		Geometry:      geo,
		Norm1:         float64(norm1) / float64(geo.Trees),
		Occupancy:     sk.StageOccupancy(),
		Overflowed:    sk.OverflowedNodes(),
		StageLoad:     load,
		MaxRoot:       sk.MaxStageValue(geo.Depth - 1),
		Cardinality:   sk.Cardinality(),
		EmptyFraction: sk.EmptyLeaves() / float64(geo.LeafWidth),
	}
	if st := sk.Stats(); st != nil {
		obs.Counts.Updates = st.Updates.Load()
		obs.Counts.Saturations = st.Saturations.Load()
		for l := range st.Promotions {
			obs.Counts.Promotions = append(obs.Counts.Promotions, st.Promotions[l].Load())
		}
	}
	return obs
}

// Recommendation values for StageReport.Recommendation.
const (
	RecGrow   = "grow"
	RecOK     = "ok"
	RecShrink = "shrink"
)

// StageReport is one stage's slice of the self-report.
type StageReport struct {
	Level           int     `json:"level"` // 0 = leaves
	Nodes           int     `json:"nodes"` // per tree
	CapacityPerNode uint64  `json:"capacity_per_node"`
	Occupancy       float64 `json:"occupancy"`
	Overflowed      int     `json:"overflowed"`
	LoadPerTree     float64 `json:"load_per_tree"`
	// ErrorBound is this stage's collision-error price in packets:
	// ε_l·(mass at or above stage l), ε_l = e/w_l. The level-0 entry is
	// Theorem 5.1's first term ε·|x|₁.
	ErrorBound float64 `json:"error_bound"`
	// PromotionRate is newly overflowed nodes per window at this stage
	// (from Counts.Promotions when available, else Overflowed deltas).
	// Zero until two observations exist.
	PromotionRate  float64 `json:"promotion_rate"`
	Recommendation string  `json:"recommendation"`
}

// Report is the per-window accuracy self-report.
type Report struct {
	At       time.Time `json:"at"`
	Window   uint64    `json:"window"`
	Geometry Geometry  `json:"geometry"`

	Norm1   float64 `json:"norm1"`
	Epsilon float64 `json:"epsilon"` // e/w1

	// MaxDegree is the D of Theorem 5.1 — exact when the observation
	// carried one, else the structural upper bound k^(deepest loaded
	// stage); MaxDegreeExact says which.
	MaxDegree      int  `json:"max_degree"`
	MaxDegreeExact bool `json:"max_degree_exact"`

	// ErrorBound is Theorem 5.1 evaluated at this window: any single
	// flow's count overestimate is at most this many packets (one-sided;
	// undercounting only once Saturated). RelativeErrorBound divides by
	// |x|₁.
	ErrorBound         float64 `json:"error_bound"`
	RelativeErrorBound float64 `json:"relative_error_bound"`

	CardinalityEstimate  float64 `json:"cardinality_estimate"`
	CardinalityValid     bool    `json:"cardinality_valid"`
	CardinalityRelStdErr float64 `json:"cardinality_rel_std_err"` // -1 once V = 0

	RootMax      uint64  `json:"root_max"`
	RootCapacity uint64  `json:"root_capacity"`
	RootHeadroom float64 `json:"root_headroom"` // 1 − RootMax/RootCapacity
	Saturated    bool    `json:"saturated"`
	// ForecastWindows extrapolates the root max counter's growth over
	// the observation history: windows until the first root register
	// clamps. 0 when already saturated; -1 when there is no growth trend
	// (or fewer than two observations).
	ForecastWindows float64 `json:"saturation_forecast_windows"`

	Stages []StageReport `json:"stages"`
}

// Config tunes an Analyzer. The zero value takes the defaults.
type Config struct {
	// History is how many observations the trend window holds (default 8).
	History int
	// CardinalityRelStdErrMax invalidates the LC estimate above this
	// relative standard error (default 0.05).
	CardinalityRelStdErrMax float64
	// GrowOccupancy recommends growing a stage at or above this
	// occupancy (default 0.85: collision pressure).
	GrowOccupancy float64
	// ShrinkOccupancy recommends shrinking a stage at or below this
	// occupancy (default 0.10), provided nothing is promoting into it.
	ShrinkOccupancy float64
	// ForecastHorizon recommends growing the root once the saturation
	// forecast is within this many windows (default 3).
	ForecastHorizon float64
}

func (c Config) withDefaults() Config {
	if c.History <= 0 {
		c.History = 8
	}
	if c.CardinalityRelStdErrMax <= 0 {
		c.CardinalityRelStdErrMax = 0.05
	}
	if c.GrowOccupancy <= 0 {
		c.GrowOccupancy = 0.85
	}
	if c.ShrinkOccupancy <= 0 {
		c.ShrinkOccupancy = 0.10
	}
	if c.ForecastHorizon <= 0 {
		c.ForecastHorizon = 3
	}
	return c
}

// Analyzer folds a series of observations into reports. Safe for
// concurrent use; one Analyzer watches one sketch (or one merged region).
type Analyzer struct {
	cfg Config

	mu       sync.Mutex
	geo      Geometry
	haveGeo  bool
	hist     []Observation // oldest first, ≤ cfg.History
	seq      uint64
	last     Report
	haveLast bool
}

// NewAnalyzer builds an analyzer with cfg (zero value = defaults).
func NewAnalyzer(cfg Config) *Analyzer {
	return &Analyzer{cfg: cfg.withDefaults()}
}

// ObserveSketch scans sk and folds the observation in — the one-call
// path for callers that hold the sketch.
func (a *Analyzer) ObserveSketch(sk *core.Sketch) Report {
	return a.Note(Observe(sk))
}

// Note folds one observation into the history and returns the updated
// report. A geometry change resets the trend history.
func (a *Analyzer) Note(obs Observation) Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.haveGeo || !a.geo.equal(obs.Geometry) {
		a.geo = obs.Geometry
		a.haveGeo = true
		a.hist = a.hist[:0]
	}
	if obs.Window == 0 {
		a.seq++
		obs.Window = a.seq
	} else if obs.Window > a.seq {
		a.seq = obs.Window
	}
	if obs.At.IsZero() {
		obs.At = time.Now()
	}
	a.hist = append(a.hist, obs)
	if len(a.hist) > a.cfg.History {
		a.hist = a.hist[len(a.hist)-a.cfg.History:]
	}
	a.last = a.analyzeLocked()
	a.haveLast = true
	return a.last
}

// Last returns the most recent report, if any observation was folded.
func (a *Analyzer) Last() (Report, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last, a.haveLast
}

func (a *Analyzer) analyzeLocked() Report {
	cur := a.hist[len(a.hist)-1]
	geo := cur.Geometry
	w1 := float64(geo.LeafWidth)
	eps := math.E / w1

	rep := Report{
		At:                  cur.At,
		Window:              cur.Window,
		Geometry:            geo,
		Norm1:               cur.Norm1,
		Epsilon:             eps,
		CardinalityEstimate: cur.Cardinality,
		RootMax:             cur.MaxRoot,
		RootCapacity:        geo.StageCaps[geo.Depth-1],
	}

	// Max degree: exact when offered, else the structural bound k^L for
	// the deepest stage holding any count mass (promotions can only fan
	// a virtual counter out by k per escalated stage).
	if cur.ExactMaxDegree > 0 {
		rep.MaxDegree, rep.MaxDegreeExact = cur.ExactMaxDegree, true
	} else {
		deepest := 0
		for l := 1; l < geo.Depth; l++ {
			if l < len(cur.StageLoad) && cur.StageLoad[l] > 0 {
				deepest = l
			}
		}
		d := 1
		for l := 0; l < deepest; l++ {
			d *= geo.K
		}
		rep.MaxDegree = d
	}

	// Theorem 5.1: err ≤ ε·|x|₁ + ε·(D−1)·(|x|₁ − w1·θ1)·𝟙{|x|₁ > w1·θ1}.
	rep.ErrorBound = eps * cur.Norm1
	if leafCap := w1 * float64(geo.StageCaps[0]); cur.Norm1 > leafCap {
		rep.ErrorBound += eps * float64(rep.MaxDegree-1) * (cur.Norm1 - leafCap)
	}
	if cur.Norm1 > 0 {
		rep.RelativeErrorBound = rep.ErrorBound / cur.Norm1
	}

	// Linear-counting validity: rel-std-err ≈ √(e^α − α − 1)/(α·√w1)
	// with load factor α = n̂/w1. Dead once V = 0 (α unbounded).
	switch {
	case cur.EmptyFraction <= 0:
		rep.CardinalityRelStdErr = -1
	case cur.Cardinality <= 0:
		rep.CardinalityValid = true // empty sketch: the estimate (0) is exact
	default:
		alpha := cur.Cardinality / w1
		rep.CardinalityRelStdErr = math.Sqrt(math.Exp(alpha)-alpha-1) / (alpha * math.Sqrt(w1))
		rep.CardinalityValid = rep.CardinalityRelStdErr <= a.cfg.CardinalityRelStdErrMax
	}

	// Saturation: current state + forecast by linear extrapolation of
	// the max root counter across the history window.
	rootLevel := geo.Depth - 1
	rep.Saturated = cur.Counts.Saturations > 0 ||
		(rootLevel < len(cur.Overflowed) && cur.Overflowed[rootLevel] > 0) ||
		cur.MaxRoot >= rep.RootCapacity
	if rep.RootCapacity > 0 {
		rep.RootHeadroom = 1 - float64(cur.MaxRoot)/float64(rep.RootCapacity)
	}
	rep.ForecastWindows = -1
	if rep.Saturated {
		rep.ForecastWindows = 0
	} else if len(a.hist) >= 2 {
		first := a.hist[0]
		dw := float64(cur.Window) - float64(first.Window)
		if dw > 0 {
			rate := (float64(cur.MaxRoot) - float64(first.MaxRoot)) / dw
			if rate > 0 {
				rep.ForecastWindows = (float64(rep.RootCapacity) - float64(cur.MaxRoot)) / rate
			}
		}
	}

	rep.Stages = a.stageReportsLocked(cur, rep)
	return rep
}

func (a *Analyzer) stageReportsLocked(cur Observation, rep Report) []StageReport {
	geo := cur.Geometry
	trees := float64(geo.Trees)
	out := make([]StageReport, geo.Depth)

	// Promotion rates over the history window: prefer the hot-path
	// counters (events), fall back to overflowed-node deltas (first
	// overflow per node only — an undercount, but snapshot-derivable).
	promRate := make([]float64, geo.Depth)
	if len(a.hist) >= 2 {
		first := a.hist[0]
		if dw := float64(cur.Window) - float64(first.Window); dw > 0 {
			for l := 0; l < geo.Depth-1; l++ {
				if l < len(cur.Counts.Promotions) && l < len(first.Counts.Promotions) &&
					cur.Counts.Promotions[l] > 0 {
					promRate[l] = (float64(cur.Counts.Promotions[l]) - float64(first.Counts.Promotions[l])) / dw
				} else if l < len(cur.Overflowed) && l < len(first.Overflowed) {
					promRate[l] = (float64(cur.Overflowed[l]) - float64(first.Overflowed[l])) / dw
				}
			}
		}
	}

	for l := 0; l < geo.Depth; l++ {
		sr := StageReport{
			Level:           l,
			Nodes:           geo.StageNodes[l],
			CapacityPerNode: geo.StageCaps[l],
			PromotionRate:   promRate[l],
		}
		if l < len(cur.Occupancy) {
			sr.Occupancy = cur.Occupancy[l]
		}
		if l < len(cur.Overflowed) {
			sr.Overflowed = cur.Overflowed[l]
		}
		// Mass at or above stage l prices this stage's collisions.
		above := uint64(0)
		for j := l; j < len(cur.StageLoad); j++ {
			above += cur.StageLoad[j]
		}
		if l < len(cur.StageLoad) {
			sr.LoadPerTree = float64(cur.StageLoad[l]) / trees
		}
		sr.ErrorBound = (math.E / float64(geo.StageNodes[l])) * (float64(above) / trees)

		// Recommendation: grow under collision pressure (or, at the
		// root, imminent saturation); shrink when nearly idle and
		// nothing is promoting into the stage.
		promotingIn := l > 0 && promRate[l-1] > 0
		switch {
		case l == geo.Depth-1 && (rep.Saturated ||
			(rep.ForecastWindows >= 0 && rep.ForecastWindows <= a.cfg.ForecastHorizon)):
			sr.Recommendation = RecGrow
		case sr.Occupancy >= a.cfg.GrowOccupancy:
			sr.Recommendation = RecGrow
		case sr.Occupancy <= a.cfg.ShrinkOccupancy && !promotingIn:
			sr.Recommendation = RecShrink
		default:
			sr.Recommendation = RecOK
		}
		out[l] = sr
	}
	return out
}
