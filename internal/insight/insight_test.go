package insight

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/telemetry"
)

// tiny builds a sketch small enough to drive through its whole lifecycle
// (w1=64 leaves, caps 254/65534/2^32-2 with the default widths).
func tiny(t *testing.T) *core.Sketch {
	t.Helper()
	sk, err := core.New(core.Config{K: 8, Trees: 2, LeafWidth: 64})
	if err != nil {
		t.Fatal(err)
	}
	sk.SetStats(core.NewStats(sk.Depth()))
	return sk
}

func key(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

// TestObserveMatchesSketch pins the observation against the sketch's own
// accessors on a small deterministic load.
func TestObserveMatchesSketch(t *testing.T) {
	sk := tiny(t)
	for i := uint64(0); i < 40; i++ {
		sk.Update(key(i), 3)
	}
	obs := Observe(sk)
	if got, want := obs.Geometry, GeometryOf(sk); !got.equal(want) {
		t.Fatalf("geometry %+v, want %+v", got, want)
	}
	// 40 flows × 3 packets, no stage can have promoted at value 3.
	if obs.Norm1 != 120 {
		t.Fatalf("norm1 = %v, want 120", obs.Norm1)
	}
	if obs.Counts.Updates != 40 {
		t.Fatalf("updates = %d, want 40", obs.Counts.Updates)
	}
	if obs.MaxRoot != 0 {
		t.Fatalf("max root = %d, want 0 (nothing promoted)", obs.MaxRoot)
	}
	if obs.EmptyFraction <= 0 || obs.EmptyFraction >= 1 {
		t.Fatalf("empty fraction = %v, want in (0,1)", obs.EmptyFraction)
	}
	load := sk.StageLoad()
	if load[0] != 240 || load[1] != 0 || load[2] != 0 {
		t.Fatalf("stage load = %v, want [240 0 0] (2 trees)", load)
	}
}

// TestErrorBoundMatchesTheorem51 checks the analyzer's bound equals
// core.Theorem51Bound for the same norm1 and degree.
func TestErrorBoundMatchesTheorem51(t *testing.T) {
	sk := tiny(t)
	// One heavy flow pushes past the leaf: degree grows, second term arms.
	for i := uint64(0); i < 60; i++ {
		sk.Update(key(i), 400) // 400 > leaf cap 254: every flow promotes
	}
	an := NewAnalyzer(Config{})
	obs := Observe(sk)
	obs.ExactMaxDegree = sk.MaxDegree()
	rep := an.Note(obs)
	if !rep.MaxDegreeExact || rep.MaxDegree != sk.MaxDegree() {
		t.Fatalf("max degree %d exact=%v, want %d exact", rep.MaxDegree, rep.MaxDegreeExact, sk.MaxDegree())
	}
	want := sk.Theorem51Bound(uint64(rep.Norm1), rep.MaxDegree)
	if math.Abs(rep.ErrorBound-want) > 1e-6*want {
		t.Fatalf("error bound %v, want Theorem51Bound %v", rep.ErrorBound, want)
	}
	if rep.RelativeErrorBound <= 0 {
		t.Fatalf("relative bound %v, want > 0", rep.RelativeErrorBound)
	}
	// Stage-0 bound is the theorem's first term ε·|x|₁.
	eps := math.E / float64(sk.LeafWidth())
	if first := rep.Stages[0].ErrorBound; math.Abs(first-eps*rep.Norm1) > 1e-6*first {
		t.Fatalf("stage-0 bound %v, want eps*norm1 %v", first, eps*rep.Norm1)
	}
}

// TestMaxDegreeBoundWithoutExact: with no exact degree, the analyzer
// uses k^L for the deepest loaded stage — an upper bound on the truth.
func TestMaxDegreeBoundWithoutExact(t *testing.T) {
	sk := tiny(t)
	sk.Update(key(1), 400) // promotes into stage 1 only
	rep := NewAnalyzer(Config{}).ObserveSketch(sk)
	if rep.MaxDegreeExact {
		t.Fatal("degree marked exact without a virtual-counter walk")
	}
	if rep.MaxDegree != sk.K() {
		t.Fatalf("degree bound %d, want k=%d (deepest loaded stage 1)", rep.MaxDegree, sk.K())
	}
	if exact := sk.MaxDegree(); rep.MaxDegree < exact {
		t.Fatalf("bound %d below exact %d", rep.MaxDegree, exact)
	}
}

// TestCardinalityValidity drives LC from valid to dead: a lightly loaded
// sketch has a trustworthy estimate, a fully occupied stage 1 does not.
func TestCardinalityValidity(t *testing.T) {
	sk := tiny(t)
	// 64 leaves give LC a floor around 9% rel-std-err even lightly
	// loaded; the default 5% threshold is sized for production widths.
	an := NewAnalyzer(Config{CardinalityRelStdErrMax: 0.2})
	rep := an.ObserveSketch(sk)
	if !rep.CardinalityValid || rep.CardinalityEstimate != 0 {
		t.Fatalf("empty sketch: valid=%v card=%v, want valid 0", rep.CardinalityValid, rep.CardinalityEstimate)
	}
	for i := uint64(0); i < 20; i++ {
		sk.Update(key(i), 1)
	}
	rep = an.ObserveSketch(sk)
	if !rep.CardinalityValid {
		t.Fatalf("light load: LC invalid (rel-std-err %v)", rep.CardinalityRelStdErr)
	}
	if rep.CardinalityRelStdErr <= 0 {
		t.Fatalf("rel-std-err %v, want > 0 under load", rep.CardinalityRelStdErr)
	}
	// Flood every leaf: V → 0, the estimate must be flagged dead.
	for i := uint64(0); i < 100000; i++ {
		sk.Update(key(i), 1)
	}
	rep = an.ObserveSketch(sk)
	if rep.CardinalityValid {
		t.Fatal("fully occupied stage 1 still marked valid")
	}
	if rep.CardinalityRelStdErr != -1 {
		t.Fatalf("rel-std-err %v, want -1 sentinel at V=0", rep.CardinalityRelStdErr)
	}
}

// TestSaturationForecast feeds a steady heavy flow and checks the
// forecast fires (finite, shrinking) before actual saturation, then
// reports 0 once the root clamps.
func TestSaturationForecast(t *testing.T) {
	sk, err := core.New(core.Config{K: 2, Trees: 2, LeafWidth: 8, Widths: []int{4, 6, 8}})
	if err != nil {
		t.Fatal(err)
	}
	sk.SetStats(core.NewStats(sk.Depth()))
	an := NewAnalyzer(Config{History: 16})

	// Per window, the one hot flow gains 20 packets; root cap is 2^8−2 =
	// 254, so the root max grows ~20/window once the lower stages fill.
	hot := key(99)
	var rep Report
	fired, firedAt, satAt := false, 0, 0
	for w := 1; w <= 40; w++ {
		sk.Update(hot, 20)
		rep = an.ObserveSketch(sk)
		if !fired && rep.ForecastWindows >= 0 && !rep.Saturated {
			fired, firedAt = true, w
		}
		if rep.Saturated {
			satAt = w
			break
		}
	}
	if !fired {
		t.Fatal("forecast never fired before saturation")
	}
	if satAt == 0 {
		t.Fatal("root never saturated (test geometry too large?)")
	}
	if firedAt >= satAt {
		t.Fatalf("forecast fired at window %d, not before saturation at %d", firedAt, satAt)
	}
	if rep.ForecastWindows != 0 {
		t.Fatalf("saturated forecast %v, want 0", rep.ForecastWindows)
	}
	if rep.Stages[len(rep.Stages)-1].Recommendation != RecGrow {
		t.Fatal("saturated root not recommended to grow")
	}
}

// TestRecommendations pins the occupancy thresholds.
func TestRecommendations(t *testing.T) {
	an := NewAnalyzer(Config{})
	geo := Geometry{K: 8, Trees: 1, Depth: 2, LeafWidth: 64,
		StageNodes: []int{64, 8}, StageCaps: []uint64{254, 65534}}
	obs := Observation{
		Geometry:      geo,
		Norm1:         100,
		Occupancy:     []float64{0.95, 0.05},
		Overflowed:    []int{0, 0},
		StageLoad:     []uint64{100, 0},
		EmptyFraction: 0.05,
		Cardinality:   60,
	}
	rep := an.Note(obs)
	if rep.Stages[0].Recommendation != RecGrow {
		t.Fatalf("95%% occupied leaves -> %q, want grow", rep.Stages[0].Recommendation)
	}
	if rep.Stages[1].Recommendation != RecShrink {
		t.Fatalf("idle root -> %q, want shrink", rep.Stages[1].Recommendation)
	}
	// Midband occupancy: ok.
	obs.Occupancy = []float64{0.5, 0.5}
	rep = an.Note(obs)
	for l, s := range rep.Stages {
		if s.Recommendation != RecOK {
			t.Fatalf("stage %d at 50%% -> %q, want ok", l, s.Recommendation)
		}
	}
}

// TestGeometryChangeResetsHistory: a re-provisioned sketch must not
// inherit the old trend.
func TestGeometryChangeResetsHistory(t *testing.T) {
	an := NewAnalyzer(Config{})
	geoA := Geometry{K: 8, Trees: 1, Depth: 2, LeafWidth: 64,
		StageNodes: []int{64, 8}, StageCaps: []uint64{254, 65534}}
	obs := Observation{Geometry: geoA, Occupancy: []float64{0, 0},
		Overflowed: []int{0, 0}, StageLoad: []uint64{0, 0}, EmptyFraction: 1}
	obs.MaxRoot = 10
	an.Note(obs)
	obs.MaxRoot = 20
	rep := an.Note(obs)
	if rep.ForecastWindows < 0 {
		t.Fatalf("growing root gave no forecast: %v", rep.ForecastWindows)
	}
	geoB := geoA
	geoB.LeafWidth, geoB.StageNodes = 128, []int{128, 16}
	obs.Geometry = geoB
	rep = an.Note(obs)
	if rep.ForecastWindows != -1 {
		t.Fatalf("forecast survived geometry change: %v", rep.ForecastWindows)
	}
}

// TestHandlerAndGauges serves a report over HTTP and through the metrics
// registry, checking JSON shape, the text format, and JSON-safety of
// every gauge (no Inf/NaN sentinels).
func TestHandlerAndGauges(t *testing.T) {
	sk := tiny(t)
	for i := uint64(0); i < 30; i++ {
		sk.Update(key(i), 5)
	}
	an := NewAnalyzer(Config{})
	pr := NewProber(an, func() Observation { return Observe(sk) }, time.Hour)

	srv := httptest.NewServer(Handler(pr.Report))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("/debug/insight JSON did not parse: %v", err)
	}
	if rep.Norm1 != 150 || len(rep.Stages) != sk.Depth() {
		t.Fatalf("report = %+v", rep)
	}

	var sb strings.Builder
	WriteText(&sb, rep)
	for _, want := range []string{"|x|1=150", "cardinality", "stages:", "L0:"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("text rendering missing %q:\n%s", want, sb.String())
		}
	}

	reg := telemetry.NewRegistry()
	Instrument(reg, sk.Depth(), pr.Report)
	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if rr.Code != 200 {
		t.Fatalf("metrics JSON export failed: %d %s", rr.Code, rr.Body.String())
	}
	var m map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
		t.Fatalf("gauge JSON export did not parse (Inf leaked?): %v", err)
	}
	txt := httptest.NewRecorder()
	reg.ServeHTTP(txt, httptest.NewRequest("GET", "/metrics", nil))
	for _, want := range []string{
		"fcm_insight_error_bound_packets", "fcm_insight_cardinality_valid",
		"fcm_insight_saturation_forecast_windows",
		`fcm_insight_stage_recommendation{level="0"}`,
	} {
		if !strings.Contains(txt.Body.String(), want) {
			t.Fatalf("prometheus export missing %q", want)
		}
	}
}

// TestProberTTL: within the TTL the prober must not re-scan.
func TestProberTTL(t *testing.T) {
	calls := 0
	obs := Observation{Geometry: Geometry{K: 8, Trees: 1, Depth: 1, LeafWidth: 8,
		StageNodes: []int{8}, StageCaps: []uint64{254}},
		Occupancy: []float64{0}, Overflowed: []int{0}, StageLoad: []uint64{0}, EmptyFraction: 1}
	pr := NewProber(NewAnalyzer(Config{}), func() Observation { calls++; return obs }, time.Hour)
	pr.Report()
	pr.Report()
	pr.Report()
	if calls != 1 {
		t.Fatalf("prober scanned %d times inside TTL, want 1", calls)
	}
}

// TestFleetTextHighlights: member rollup flags saturating and LC-dead
// members.
func TestFleetTextHighlights(t *testing.T) {
	fr := FleetReport{Members: map[string]Report{
		"10.0.0.1:9401": {Window: 3, Norm1: 100, CardinalityValid: true, ForecastWindows: -1},
		"10.0.0.2:9401": {Window: 3, Norm1: 900, Saturated: true, CardinalityRelStdErr: -1},
	}}
	var sb strings.Builder
	WriteFleetText(&sb, fr)
	out := sb.String()
	if !strings.Contains(out, "10.0.0.2:9401") || !strings.Contains(out, "SATURATED") {
		t.Fatalf("fleet text missing saturated flag:\n%s", out)
	}
	if !strings.Contains(out, "LC-INVALID") {
		t.Fatalf("fleet text missing LC flag:\n%s", out)
	}
}
