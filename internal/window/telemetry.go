package window

import (
	"github.com/fcmsketch/fcm/internal/telemetry"
)

// Instrument registers the ring's occupancy and coarsening series on reg:
//
//	fcm_window_buckets                 gauge   retained closed buckets
//	fcm_window_span_windows            gauge   original windows those buckets cover
//	fcm_window_max_level               gauge   deepest coarsening level present
//	fcm_window_resident_bytes          gauge   counter bytes held by retained buckets
//	fcm_window_generation              gauge   newest closed window ordinal
//	fcm_window_rotations_total         counter windows closed into the ring
//	fcm_window_coarsen_merges_total    counter exponential-histogram merges performed
//	fcm_window_dropped_windows_total   counter windows aged out of retention
func (r *Ring) Instrument(reg *telemetry.Registry) {
	reg.GaugeFunc("fcm_window_buckets",
		"Closed buckets currently retained by the over-time ring.",
		func() float64 { return float64(r.Stats().Buckets) })
	reg.GaugeFunc("fcm_window_span_windows",
		"Original measurement windows covered by the retained buckets.",
		func() float64 { return float64(r.Stats().SpanWindows) })
	reg.GaugeFunc("fcm_window_max_level",
		"Deepest exponential-histogram coarsening level present (-1 when empty).",
		func() float64 { return float64(r.Stats().MaxLevel) })
	reg.GaugeFunc("fcm_window_resident_bytes",
		"Bytes of counter storage held by the ring's retained buckets.",
		func() float64 { return float64(r.Stats().ResidentBytes) })
	reg.GaugeFunc("fcm_window_generation",
		"Ordinal of the newest closed measurement window.",
		func() float64 { return float64(r.Generation()) })
	reg.CounterFunc("fcm_window_rotations_total",
		"Measurement windows closed into the over-time ring.",
		func() float64 { return float64(r.rotations.Load()) })
	reg.CounterFunc("fcm_window_coarsen_merges_total",
		"Exponential-histogram coarsening merges performed by the ring.",
		func() float64 { return float64(r.coarsenMerges.Load()) })
	reg.CounterFunc("fcm_window_dropped_windows_total",
		"Measurement windows aged out of the ring's retention horizon.",
		func() float64 { return float64(r.droppedWindows.Load()) })
}
