// Package window is the sliding-window temporal layer of the FCM
// framework: a ring of closed-window sketches over a live fcm.Sharded (or
// fcm.Framework) data plane, answering *_over_time queries — per-flow
// count, heavy hitters, cardinality, entropy and flow-size distribution
// over an arbitrary lookback — without stopping ingest.
//
// The design leans entirely on the property the paper proves in §5: FCM's
// merge is exact, so the fold of any set of window sketches is register-
// bit-identical to a single sketch that ingested those windows' packets
// serially. That makes temporal composition lossless, which approximate
// mergeable sketches (UnivMon-style *_over_time layers) cannot claim, and
// it is what internal/difftest's windowed harness pins: any over-time
// query equals the same query against a serial ingest of the concatenated
// covering windows.
//
// # Ring + exponential-histogram coarsening
//
// Rotate closes the live window into a span-1 bucket carrying
// minTime/maxTime/generation metadata. To keep long lookbacks cheap the
// ring maintains an exponential histogram over bucket spans: whenever more
// than SpanCap buckets share a coarsening level, the two oldest of that
// level are merged (word-wide SWAR kernel) into one bucket of the next
// level with double the span. A retention of n windows therefore holds
// O(SpanCap · log n) buckets, and any lookback folds O(log n) sketches.
// Coarsening always allocates the merged sketch fresh — buckets are
// immutable once filed — so queries that collected bucket references
// before a coarsen or rotate still fold a consistent pre-step view.
//
// # Edge semantics (floor/ceil)
//
// Lookbacks resolve to whole buckets, never partial ones:
//
//   - The old edge is a ceiling: a coarsened bucket that straddles the
//     requested boundary is included whole, so a query never covers less
//     history than asked for (while retained). Coverage reports the exact
//     generation range actually folded.
//   - The new edge is a floor by default: only closed windows are folded.
//     Lookback.IncludeLive extends the fold through the live, partially
//     filled window.
//
// Queries fold the covering buckets into a pooled scratch sketch outside
// the ring lock, so rotation-vs-query races resolve to either the pre- or
// the post-rotation view, never a torn one.
package window

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	fcm "github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/em"
)

// Defaults for Config's zero fields.
const (
	defaultBucketDuration = 5 * time.Second
	defaultMaxWindows     = 1024
	defaultSpanCap        = 3
)

// ErrEmpty is returned by queries whose lookback covers no data at all —
// no closed bucket intersects it and the live window was not requested
// (or does not exist, in collector mode).
var ErrEmpty = errors.New("window: lookback covers no data")

// Config parameterizes a Ring.
type Config struct {
	// Sketch is the geometry of every window (owned mode). Attached rings
	// take it from the framework; collector rings adopt the geometry of
	// the first filed window.
	Sketch fcm.Config
	// Shards is the live data plane's shard count in owned mode
	// (default 1).
	Shards int
	// BucketDuration is the nominal duration of one window. It stamps
	// bucket metadata and resolves Duration lookbacks; the ring itself
	// never sets timers — the owner calls Rotate on its own cadence.
	BucketDuration time.Duration
	// MaxWindows is the retention horizon in original windows
	// (default 1024). Buckets whose newest window falls outside it are
	// dropped and counted.
	MaxWindows int
	// SpanCap is the exponential histogram's per-level bucket cap k
	// (default 3): a (k+1)-th bucket at any level triggers a coarsening
	// merge of that level's two oldest. 1 coarsens most aggressively.
	SpanCap int
	// Now is the clock (default time.Now); tests inject a fake one.
	Now func() time.Time
}

// withDefaults normalizes the configuration.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.BucketDuration <= 0 {
		c.BucketDuration = defaultBucketDuration
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = defaultMaxWindows
	}
	if c.SpanCap <= 0 {
		c.SpanCap = defaultSpanCap
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// bucket is one closed, immutable entry of the ring: a sketch plus the
// metadata that locates it on the time and generation axes.
type bucket struct {
	sk       *core.Sketch
	level    int // coarsening level; a fresh window is level 0
	span     int // original windows folded into this bucket
	firstGen uint64
	lastGen  uint64
	minTime  time.Time
	maxTime  time.Time
	packets  uint64
}

// BucketInfo is the exported metadata of one retained bucket, oldest
// first, as reported by Ring.Buckets and the /debug/overtime handler.
type BucketInfo struct {
	Level           int       `json:"level"`
	Span            int       `json:"span"`
	FirstGeneration uint64    `json:"first_generation"`
	Generation      uint64    `json:"generation"`
	MinTime         time.Time `json:"min_time"`
	MaxTime         time.Time `json:"max_time"`
	Packets         uint64    `json:"packets"`
	ResidentBytes   int       `json:"resident_bytes"`
}

// Lookback selects how far back an over-time query reaches. Exactly one
// of Windows and Duration should be set; both zero means "all retained
// history". See the package comment for the floor/ceil edge semantics.
type Lookback struct {
	// Windows covers the most recent n original windows (ceil'd to whole
	// buckets). 0 = unbounded.
	Windows int
	// Duration covers buckets whose maxTime falls after now-Duration
	// (straddling buckets included whole). 0 = unbounded.
	Duration time.Duration
	// IncludeLive extends the fold through the live, partially filled
	// window (ignored in collector mode, which has none).
	IncludeLive bool
}

// LastWindows covers the n most recent closed windows (0 = all retained).
func LastWindows(n int) Lookback { return Lookback{Windows: n} }

// LastDuration covers the trailing duration d; time-based lookbacks reach
// the present, so the live window is included.
func LastDuration(d time.Duration) Lookback {
	return Lookback{Duration: d, IncludeLive: true}
}

// WithLive returns the lookback with the live window included.
func (lb Lookback) WithLive() Lookback {
	lb.IncludeLive = true
	return lb
}

// Coverage reports what an over-time query actually folded, so callers
// (and the differential harness) know the exact window set behind an
// answer — the ceiling can cover more than the request.
type Coverage struct {
	// Buckets is the number of closed buckets folded.
	Buckets int `json:"buckets"`
	// Windows is the number of original windows those buckets span.
	Windows int `json:"windows"`
	// FirstGeneration..LastGeneration is the covered range of window
	// ordinals (1-based; both 0 when no closed window is covered).
	FirstGeneration uint64 `json:"first_generation"`
	LastGeneration  uint64 `json:"last_generation"`
	// From/To bound the covered wall-clock span of closed windows.
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
	// IncludesLive reports whether the live window joined the fold.
	IncludesLive bool `json:"includes_live"`
	// Packets totals the packets recorded by the covered windows.
	Packets uint64 `json:"packets"`
}

// Ring is the temporal layer: closed-window buckets (oldest first) behind
// one of three ingest frontends — an owned fcm.Sharded, an attached
// fcm.Framework, or none at all (collector mode, fed via FileWindow).
// All methods are safe for concurrent use; Update never takes the ring
// lock, so the ingest hot path is exactly the underlying data plane's.
type Ring struct {
	cfg Config

	// live/fw is the ingest frontend; at most one is non-nil.
	live *fcm.Sharded
	fw   *fcm.Framework

	// mu orders rotation, filing, coarsening and the covering-set scan of
	// queries. The fold itself runs outside it.
	mu        sync.Mutex
	buckets   []*bucket
	gen       uint64 // ordinal of the newest closed window
	liveStart time.Time

	// scratch pools fold targets so steady-state queries allocate no
	// sketch state. A collector ring can adopt a new geometry once
	// retention has emptied it, so scratchFor verifies each pooled entry
	// against the fold's model sketch and discards stale ones.
	scratch sync.Pool

	rotations      atomic.Uint64
	coarsenMerges  atomic.Uint64
	droppedWindows atomic.Uint64
}

// New builds a ring that owns its live data plane: an fcm.Sharded with
// cfg.Shards shards and cfg.Sketch geometry.
func New(cfg Config) (*Ring, error) {
	cfg = cfg.withDefaults()
	live, err := fcm.NewSharded(cfg.Sketch, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("window: %w", err)
	}
	cfg.Sketch = live.Config()
	r := &Ring{cfg: cfg, live: live}
	r.liveStart = cfg.Now()
	return r, nil
}

// Attach wraps an existing fcm.Framework in a ring — the framework's
// windowed mode. The framework keeps working as before (Update,
// HeavyChanges, ...); Ring.Rotate rotates it and files every closed
// window, so over-time queries become available on top. cfg.Sketch and
// cfg.Shards are taken from the framework.
func Attach(fw *fcm.Framework, cfg Config) (*Ring, error) {
	if fw == nil {
		return nil, errors.New("window: cannot attach a nil framework")
	}
	cfg = cfg.withDefaults()
	cfg.Sketch = fw.Config()
	cfg.Shards = fw.Shards()
	r := &Ring{cfg: cfg, fw: fw}
	r.liveStart = cfg.Now()
	return r, nil
}

// NewCollector builds a ring with no live data plane: an aggregation tier
// (fcmagg) files each collection round's merged region sketch with
// FileWindow, and the ring serves over-time queries across rounds. The
// geometry is adopted from the first filed window.
func NewCollector(cfg Config) *Ring {
	cfg = cfg.withDefaults()
	return &Ring{cfg: cfg}
}

// Config returns the ring's effective configuration.
func (r *Ring) Config() Config { return r.cfg }

// Update records inc occurrences of key in the live window. It goes
// straight to the data plane — no ring lock — so the ingest hot path is
// unchanged by the temporal layer. Errors only in collector mode.
func (r *Ring) Update(key []byte, inc uint64) error {
	switch {
	case r.live != nil:
		r.live.Update(key, inc)
	case r.fw != nil:
		r.fw.Update(key, inc)
	default:
		return errors.New("window: collector ring has no live window; use FileWindow")
	}
	return nil
}

// UpdateBatch records inc occurrences of every key in keys in the live
// window. Errors only in collector mode.
func (r *Ring) UpdateBatch(keys [][]byte, inc uint64) error {
	switch {
	case r.live != nil:
		r.live.UpdateBatch(keys, inc)
	case r.fw != nil:
		for _, k := range keys {
			r.fw.Update(k, inc)
		}
	default:
		return errors.New("window: collector ring has no live window; use FileWindow")
	}
	return nil
}

// Rotate closes the live window into a fresh span-1 bucket, assigns it
// the next generation, and runs the coarsening and retention passes.
// Updates racing Rotate land in exactly one window (the underlying data
// plane's guarantee), and queries racing it see either the pre- or the
// post-rotation bucket set.
func (r *Ring) Rotate() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.cfg.Now()
	var sk *core.Sketch
	var packets uint64
	switch {
	case r.live != nil:
		closed := r.live.Rotate()
		sk = closed.Core()
		// The sharded plane has no per-window packet counter; the per-tree
		// total is exact below root saturation and a floor above it.
		packets = sk.TotalCount(0)
	case r.fw != nil:
		closed, n := r.fw.RotateClosed()
		sk, packets = closed.Core(), n
	default:
		return errors.New("window: collector ring has no live window to rotate; use FileWindow")
	}
	r.fileLocked(sk, r.liveStart, now, packets)
	r.liveStart = now
	return nil
}

// FileWindow appends an externally closed window — collector mode's
// ingest path. sk must share the geometry of previously filed windows
// (the first call adopts it) and must not be mutated by the caller
// afterwards: the ring treats buckets as immutable.
func (r *Ring) FileWindow(sk *core.Sketch, minTime, maxTime time.Time, packets uint64) error {
	if sk == nil {
		return errors.New("window: cannot file a nil sketch")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buckets) > 0 {
		if d := describeIncompatible(r.buckets[len(r.buckets)-1].sk, sk); d != "" {
			return fmt.Errorf("window: filed window geometry mismatch: %s", d)
		}
	}
	r.fileLocked(sk, minTime, maxTime, packets)
	return nil
}

// describeIncompatible reports a human-readable geometry mismatch between
// a retained bucket and a candidate, or "" when they are mergeable.
func describeIncompatible(have, cand *core.Sketch) string {
	// A zero-value clone merge is the authoritative compatibility check —
	// but cloning per file is wasteful, so compare the cheap axes first.
	if have.K() != cand.K() || have.NumTrees() != cand.NumTrees() ||
		have.Depth() != cand.Depth() || have.LeafWidth() != cand.LeafWidth() {
		return fmt.Sprintf("k/trees/depth/leaf %d/%d/%d/%d vs %d/%d/%d/%d",
			cand.K(), cand.NumTrees(), cand.Depth(), cand.LeafWidth(),
			have.K(), have.NumTrees(), have.Depth(), have.LeafWidth())
	}
	for l := 0; l < have.Depth(); l++ {
		if have.StageWidth(l) != cand.StageWidth(l) {
			return fmt.Sprintf("stage %d width %d vs %d", l, cand.StageWidth(l), have.StageWidth(l))
		}
	}
	return ""
}

// fileLocked appends a closed window and re-establishes the exponential
// histogram and retention invariants. Callers hold r.mu.
func (r *Ring) fileLocked(sk *core.Sketch, minTime, maxTime time.Time, packets uint64) {
	r.gen++
	r.buckets = append(r.buckets, &bucket{
		sk: sk, level: 0, span: 1,
		firstGen: r.gen, lastGen: r.gen,
		minTime: minTime, maxTime: maxTime, packets: packets,
	})
	r.rotations.Add(1)
	r.coarsenLocked()
	r.retainLocked()
}

// coarsenLocked restores the exponential-histogram invariant: no level
// holds more than SpanCap buckets. Overfull levels cascade upward — the
// two oldest buckets of the lowest overfull level merge into one bucket
// one level up, which may overfill that level in turn. Merged sketches
// are freshly allocated (clone + SWAR merge); the source buckets stay
// untouched for any fold that already collected them.
func (r *Ring) coarsenLocked() {
	for {
		lvl, i := r.lowestOverfullLocked()
		if lvl < 0 {
			return
		}
		r.mergeAdjacentLocked(i)
	}
}

// lowestOverfullLocked finds the lowest coarsening level holding more
// than SpanCap buckets, returning the level and the index of its oldest
// bucket, or (-1, -1) when the invariant holds.
func (r *Ring) lowestOverfullLocked() (int, int) {
	counts := make(map[int]int)
	oldest := make(map[int]int)
	for i, b := range r.buckets {
		if counts[b.level] == 0 {
			oldest[b.level] = i
		}
		counts[b.level]++
	}
	best := -1
	for lvl, c := range counts {
		if c > r.cfg.SpanCap && (best < 0 || lvl < best) {
			best = lvl
		}
	}
	if best < 0 {
		return -1, -1
	}
	return best, oldest[best]
}

// mergeAdjacentLocked merges buckets[i] and buckets[i+1] into one bucket
// at the next coarsening level. Levels are non-increasing oldest→newest,
// so the two oldest buckets of any level are always adjacent.
func (r *Ring) mergeAdjacentLocked(i int) {
	a, b := r.buckets[i], r.buckets[i+1]
	sk := a.sk.Clone()
	// Same geometry by construction; Merge cannot fail.
	if err := sk.Merge(b.sk); err != nil {
		panic("window: coarsening merge of same-geometry buckets failed: " + err.Error())
	}
	merged := &bucket{
		sk:       sk,
		level:    max(a.level, b.level) + 1,
		span:     a.span + b.span,
		firstGen: a.firstGen,
		lastGen:  b.lastGen,
		minTime:  a.minTime,
		maxTime:  b.maxTime,
		packets:  a.packets + b.packets,
	}
	r.buckets[i] = merged
	r.buckets = append(r.buckets[:i+1], r.buckets[i+2:]...)
	r.coarsenMerges.Add(1)
}

// Coarsen forces one compaction step — the two oldest buckets merge into
// one — regardless of the per-level cap. It trades old-edge granularity
// (the ceiling covers more once buckets are wider) for fold cost, and is
// exposed so operators and the fuzzer can drive the histogram into every
// shape. A ring with fewer than two buckets is left unchanged.
func (r *Ring) Coarsen() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buckets) < 2 {
		return
	}
	r.mergeAdjacentLocked(0)
	// A forced merge can overfill the level it lands on.
	r.coarsenLocked()
}

// retainLocked drops buckets whose newest window has aged out of the
// MaxWindows horizon. Dropping is all-or-nothing per bucket: a coarsened
// bucket straddling the horizon is kept whole (the ceiling again).
func (r *Ring) retainLocked() {
	if r.gen < uint64(r.cfg.MaxWindows) {
		return
	}
	floor := r.gen - uint64(r.cfg.MaxWindows)
	for len(r.buckets) > 0 && r.buckets[0].lastGen <= floor {
		r.droppedWindows.Add(uint64(r.buckets[0].span))
		r.buckets = r.buckets[1:]
	}
}

// Generation returns the ordinal of the newest closed window (0 before
// the first rotation).
func (r *Ring) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Buckets returns the retained buckets' metadata, oldest first.
func (r *Ring) Buckets() []BucketInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BucketInfo, len(r.buckets))
	for i, b := range r.buckets {
		out[i] = BucketInfo{
			Level: b.level, Span: b.span,
			FirstGeneration: b.firstGen, Generation: b.lastGen,
			MinTime: b.minTime, MaxTime: b.maxTime,
			Packets: b.packets, ResidentBytes: b.sk.ResidentBytes(),
		}
	}
	return out
}

// coveringLocked resolves a lookback to the covering bucket set (oldest
// first) under the ceiling semantics. Callers hold r.mu.
func (r *Ring) coveringLocked(lb Lookback) []*bucket {
	bs := r.buckets
	i := 0
	switch {
	case lb.Windows > 0:
		covered := 0
		i = len(bs)
		for i > 0 && covered < lb.Windows {
			i--
			covered += bs[i].span
		}
	case lb.Duration > 0:
		cutoff := r.cfg.Now().Add(-lb.Duration)
		i = len(bs)
		for i > 0 && bs[i-1].maxTime.After(cutoff) {
			i--
		}
	}
	return append([]*bucket(nil), bs[i:]...)
}

// fold resolves the lookback, collects the covering bucket references and
// (if requested) a live snapshot under the ring lock, then SWAR-folds
// them into a pooled scratch sketch outside it. The caller must hand the
// scratch back via release. The two-phase shape is what makes
// rotate-during-query atomic: the reference set is fixed in one critical
// section, and buckets are immutable, so the fold sees exactly the pre-
// or post-rotation ring — never a mix.
func (r *Ring) fold(lb Lookback) (*core.Sketch, Coverage, error) {
	r.mu.Lock()
	covering := r.coveringLocked(lb)
	cov := Coverage{Buckets: len(covering)}
	for _, b := range covering {
		cov.Windows += b.span
		cov.Packets += b.packets
	}
	if len(covering) > 0 {
		cov.FirstGeneration = covering[0].firstGen
		cov.LastGeneration = covering[len(covering)-1].lastGen
		cov.From = covering[0].minTime
		cov.To = covering[len(covering)-1].maxTime
	}
	var liveCore *core.Sketch
	if lb.IncludeLive {
		// The live snapshot is taken inside the same critical section that
		// fixed the bucket set, so a racing Rotate cannot move packets
		// between "closed" and "live" mid-scan.
		switch {
		case r.live != nil:
			liveCore = r.live.Snapshot().Core()
		case r.fw != nil:
			liveCore = r.fw.Sketch().Core()
		}
		if liveCore != nil {
			cov.IncludesLive = true
			cov.Packets += liveCore.TotalCount(0)
			cov.To = r.cfg.Now()
		}
	}
	r.mu.Unlock()

	if len(covering) == 0 && liveCore == nil {
		return nil, cov, ErrEmpty
	}
	var model *core.Sketch
	if len(covering) > 0 {
		model = covering[0].sk
	} else {
		model = liveCore
	}
	sk := r.scratchFor(model)
	for _, b := range covering {
		if err := sk.Merge(b.sk); err != nil {
			r.release(sk)
			return nil, cov, fmt.Errorf("window: folding bucket [%d,%d]: %w", b.firstGen, b.lastGen, err)
		}
	}
	if liveCore != nil {
		if err := sk.Merge(liveCore); err != nil {
			r.release(sk)
			return nil, cov, fmt.Errorf("window: folding live window: %w", err)
		}
	}
	return sk, cov, nil
}

// scratchFor returns a cleared scratch sketch sharing model's geometry,
// from the pool when possible. Pooled entries are verified against the
// model: after a collector-mode geometry change (FileWindow adopts a new
// shape once retention empties the ring) the pool can still hold
// old-geometry sketches, and reusing one would fail every fold until the
// pool happened to drain.
func (r *Ring) scratchFor(model *core.Sketch) *core.Sketch {
	for {
		v := r.scratch.Get()
		if v == nil {
			break
		}
		sk := v.(*core.Sketch)
		if describeIncompatible(model, sk) == "" {
			sk.Reset()
			return sk
		}
		// Stale geometry: drop it and try the next pooled entry.
	}
	sk := model.Clone()
	sk.Reset()
	return sk
}

// release hands a fold scratch back to the pool.
func (r *Ring) release(sk *core.Sketch) { r.scratch.Put(sk) }

// SnapshotOverTime returns a caller-owned sketch holding the exact fold
// of the lookback's covering windows — the primitive every other
// over-time query is defined in terms of.
func (r *Ring) SnapshotOverTime(lb Lookback) (*core.Sketch, Coverage, error) {
	sk, cov, err := r.fold(lb)
	if err != nil {
		return nil, cov, err
	}
	out := sk.Clone()
	r.release(sk)
	return out, cov, nil
}

// QueryOverTime answers the per-flow count query over the lookback. Like
// the single-window estimate it is one-sided over the covered stream.
func (r *Ring) QueryOverTime(key []byte, lb Lookback) (uint64, Coverage, error) {
	sk, cov, err := r.fold(lb)
	if err != nil {
		return 0, cov, err
	}
	est := sk.Estimate(key)
	r.release(sk)
	return est, cov, nil
}

// CardinalityOverTime estimates distinct flows over the lookback by
// Linear Counting on the folded sketch (§3.3): distinct across windows,
// not a per-window sum, because the fold is the union stream's sketch.
func (r *Ring) CardinalityOverTime(lb Lookback) (float64, Coverage, error) {
	sk, cov, err := r.fold(lb)
	if err != nil {
		return 0, cov, err
	}
	card := sk.Cardinality()
	r.release(sk)
	return card, cov, nil
}

// HeavyHittersOverTime scans candidate keys over the lookback and returns
// those whose folded estimates reach threshold. Like the single-window
// query, candidates come from the application.
func (r *Ring) HeavyHittersOverTime(candidates [][]byte, threshold uint64, lb Lookback) (map[string]uint64, Coverage, error) {
	sk, cov, err := r.fold(lb)
	if err != nil {
		return nil, cov, err
	}
	hh := make(map[string]uint64)
	for _, k := range candidates {
		if est := sk.Estimate(k); est >= threshold {
			hh[string(k)] = est
		}
	}
	r.release(sk)
	return hh, cov, nil
}

// FSDOverTime runs the control-plane EM estimator (§4.2) over the folded
// lookback: dist[j] estimates the number of flows with exactly j packets
// across the covered windows.
func (r *Ring) FSDOverTime(lb Lookback, opt *fcm.EMOptions) ([]float64, Coverage, error) {
	sk, cov, err := r.fold(lb)
	if err != nil {
		return nil, cov, err
	}
	dist, runErr := fsdOf(sk, opt)
	r.release(sk)
	if runErr != nil {
		return nil, cov, runErr
	}
	return dist, cov, nil
}

// fsdOf runs the control-plane EM estimator over an already-folded sketch
// — shared by FSDOverTime and the HTTP handler, which derives every field
// of one response from a single fold.
func fsdOf(sk *core.Sketch, opt *fcm.EMOptions) ([]float64, error) {
	var o fcm.EMOptions
	if opt != nil {
		o = *opt
	}
	res, err := em.Run(em.Config{
		W1:          sk.LeafWidth(),
		Theta1:      sk.StageMax(0),
		Iterations:  o.Iterations,
		Workers:     o.Workers,
		OnIteration: o.OnIteration,
	}, sk.VirtualCounters())
	if err != nil {
		return nil, fmt.Errorf("window: %w", err)
	}
	return res.Dist, nil
}

// EntropyOverTime estimates the flow entropy of the lookback from the EM
// distribution: H = −Σ_k n_k·(k/m)·log2(k/m) (§4.4).
func (r *Ring) EntropyOverTime(lb Lookback, opt *fcm.EMOptions) (float64, Coverage, error) {
	dist, cov, err := r.FSDOverTime(lb, opt)
	if err != nil {
		return 0, cov, err
	}
	return fcm.EntropyOf(dist), cov, nil
}

// Stats is a point-in-time summary of the ring for telemetry.
type Stats struct {
	// Buckets and SpanWindows describe occupancy: retained buckets and
	// the original windows they cover.
	Buckets     int
	SpanWindows int
	// MaxLevel is the deepest coarsening level present (-1 when empty).
	MaxLevel int
	// Generation is the newest closed window's ordinal.
	Generation uint64
	// Rotations, CoarsenMerges and DroppedWindows are lifetime counters.
	Rotations      uint64
	CoarsenMerges  uint64
	DroppedWindows uint64
	// ResidentBytes is the counter storage held by retained buckets.
	ResidentBytes int
}

// Stats returns the ring's current statistics.
func (r *Ring) Stats() Stats {
	r.mu.Lock()
	st := Stats{
		Buckets:    len(r.buckets),
		MaxLevel:   -1,
		Generation: r.gen,
	}
	for _, b := range r.buckets {
		st.SpanWindows += b.span
		st.ResidentBytes += b.sk.ResidentBytes()
		if b.level > st.MaxLevel {
			st.MaxLevel = b.level
		}
	}
	r.mu.Unlock()
	st.Rotations = r.rotations.Load()
	st.CoarsenMerges = r.coarsenMerges.Load()
	st.DroppedWindows = r.droppedWindows.Load()
	return st
}
