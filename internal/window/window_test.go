package window

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	fcm "github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/telemetry"
)

// testClock returns a deterministic monotonic clock: every call advances
// one second from a fixed epoch.
func testClock() func() time.Time {
	t := time.Unix(1_700_000_000, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

// testRing builds a small owned-mode ring with a deterministic clock.
func testRing(t *testing.T, maxWindows, spanCap int) *Ring {
	t.Helper()
	r, err := New(Config{
		Sketch:         fcm.Config{LeafWidth: 512},
		MaxWindows:     maxWindows,
		SpanCap:        spanCap,
		BucketDuration: time.Second,
		Now:            testClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// key returns a 4-byte key for flow id f.
func key(f uint32) []byte {
	k := make([]byte, 4)
	binary.BigEndian.PutUint32(k, f)
	return k
}

// fillWindows ingests perWindow packets of flow 1 into each of n windows,
// rotating after each.
func fillWindows(t *testing.T, r *Ring, n, perWindow int) {
	t.Helper()
	for w := 0; w < n; w++ {
		for p := 0; p < perWindow; p++ {
			if err := r.Update(key(1), 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAttachFrameworkWindowedMode pins the framework's windowed mode: a
// ring attached to an existing fcm.Framework rotates it, files every
// closed window, and answers over-time queries — while the framework's
// own query surface keeps working.
func TestAttachFrameworkWindowedMode(t *testing.T) {
	fw, err := fcm.NewFramework(fcm.Config{LeafWidth: 512})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Attach(fw, Config{BucketDuration: time.Second, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	// Two windows of 3 + 5 packets for flow 7, rotated through the ring.
	for i := 0; i < 3; i++ {
		fw.Update(key(7), 1)
	}
	if err := r.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fw.Update(key(7), 1)
	}
	if err := r.Rotate(); err != nil {
		t.Fatal(err)
	}

	est, cov, err := r.QueryOverTime(key(7), LastWindows(0))
	if err != nil {
		t.Fatal(err)
	}
	if est != 8 {
		t.Fatalf("over-time estimate %d, want 8", est)
	}
	if cov.FirstGeneration != 1 || cov.LastGeneration != 2 || cov.Windows != 2 {
		t.Fatalf("coverage %+v, want generations [1,2] over 2 windows", cov)
	}
	if cov.Packets != 8 {
		t.Fatalf("coverage packets %d, want 8 (framework counts per-window packets exactly)", cov.Packets)
	}
	// A single-window lookback sees only the newest window.
	est, _, err = r.QueryOverTime(key(7), LastWindows(1))
	if err != nil {
		t.Fatal(err)
	}
	if est != 5 {
		t.Fatalf("last-window estimate %d, want 5", est)
	}
	// The framework's own (prev-window) surface still answers: Rotate
	// retains the closed window as the framework's previous window.
	if got := fw.PreviousEstimate(key(7)); got != 5 {
		t.Fatalf("framework prev-window estimate %d, want 5", got)
	}
}

// TestCollectorRejectsGeometryDrift pins collector-mode validation: a
// filed window whose geometry deviates from the retained buckets must be
// refused, naming the mismatched axis.
func TestCollectorRejectsGeometryDrift(t *testing.T) {
	r := NewCollector(Config{BucketDuration: time.Second, Now: testClock()})
	a, err := fcm.NewSketch(fcm.Config{LeafWidth: 512})
	if err != nil {
		t.Fatal(err)
	}
	a.Update(key(1), 1)
	now := time.Unix(1_700_000_000, 0)
	if err := r.FileWindow(a.Core(), now, now.Add(time.Second), 1); err != nil {
		t.Fatal(err)
	}
	b, err := fcm.NewSketch(fcm.Config{LeafWidth: 256})
	if err != nil {
		t.Fatal(err)
	}
	err = r.FileWindow(b.Core(), now, now.Add(time.Second), 0)
	if err == nil {
		t.Fatal("ring accepted a window with a different geometry")
	}
	if !strings.Contains(err.Error(), "geometry mismatch") {
		t.Fatalf("unhelpful mismatch error: %v", err)
	}
	// Updates have no live plane to land in.
	if err := r.Update(key(1), 1); err == nil {
		t.Fatal("collector ring accepted a live update")
	}
}

// TestScratchPoolDiscardsStaleGeometry pins the fold path against stale
// pooled scratch sketches: if the pool holds a sketch of a different
// geometry (a collector ring that adopted a new shape, or any other
// poisoning), scratchFor must discard it and fall back to cloning the
// model instead of failing every query until the pool drains.
func TestScratchPoolDiscardsStaleGeometry(t *testing.T) {
	r := NewCollector(Config{BucketDuration: time.Second, Now: testClock()})
	a, err := fcm.NewSketch(fcm.Config{LeafWidth: 512})
	if err != nil {
		t.Fatal(err)
	}
	a.Update(key(7), 3)
	now := time.Unix(1_700_000_000, 0)
	if err := r.FileWindow(a.Core(), now, now.Add(time.Second), 3); err != nil {
		t.Fatal(err)
	}
	stale, err := fcm.NewSketch(fcm.Config{LeafWidth: 256})
	if err != nil {
		t.Fatal(err)
	}
	r.scratch.Put(stale.Core())
	for i := 0; i < 2; i++ { // second query exercises the repopulated pool
		est, cov, err := r.QueryOverTime(key(7), LastWindows(0))
		if err != nil {
			t.Fatalf("query %d with stale pooled scratch: %v", i, err)
		}
		if est != 3 || cov.Windows != 1 {
			t.Fatalf("query %d: estimate %d coverage %+v, want 3 over 1 window", i, est, cov)
		}
	}
}

// TestRetentionDropsOldestWindows pins the retention bound: with
// MaxWindows retained, older windows coarsen and then fall off, the drop
// counter advances, and Coverage reports the truncated range honestly.
func TestRetentionDropsOldestWindows(t *testing.T) {
	const maxW = 8
	r := testRing(t, maxW, 2)
	fillWindows(t, r, 3*maxW, 2)

	st := r.Stats()
	if st.DroppedWindows == 0 {
		t.Fatal("no windows dropped after 3x the retention bound")
	}
	if st.SpanWindows > maxW {
		t.Fatalf("ring retains %d windows, bound is %d", st.SpanWindows, maxW)
	}
	if st.Generation != 3*maxW {
		t.Fatalf("generation %d, want %d", st.Generation, 3*maxW)
	}
	// Asking for more history than retained answers with what exists.
	_, cov, err := r.SnapshotOverTime(LastWindows(2 * maxW))
	if err != nil {
		t.Fatal(err)
	}
	if cov.FirstGeneration == 1 {
		t.Fatal("coverage claims generation 1 after it was dropped")
	}
	if cov.LastGeneration != uint64(3*maxW) {
		t.Fatalf("coverage newest generation %d, want %d", cov.LastGeneration, 3*maxW)
	}
	if cov.Windows != st.SpanWindows {
		t.Fatalf("coverage windows %d, retained %d", cov.Windows, st.SpanWindows)
	}
}

// TestDurationLookback pins the duration edge semantics: a duration
// lookback includes every bucket whose span overlaps [now-d, now] — whole
// buckets (ceiling), never partial ones.
func TestDurationLookback(t *testing.T) {
	r := testRing(t, 64, 3)
	fillWindows(t, r, 6, 1) // 6 one-second windows on the fake clock
	// The fake clock has observed epoch+1 (construction) through epoch+7
	// (sixth rotation); this query observes epoch+8. A 1.1s lookback puts
	// the cutoff at epoch+6.9, so exactly the newest closed bucket
	// (maxTime epoch+7) is covered — whole, per the ceiling rule.
	_, cov, err := r.SnapshotOverTime(Lookback{Duration: 1100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Windows != 1 || cov.FirstGeneration != 6 {
		t.Fatalf("1.1s lookback coverage %+v, want exactly the newest window", cov)
	}
	// A very long lookback covers everything.
	_, cov, err = r.SnapshotOverTime(Lookback{Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Windows != 6 || cov.FirstGeneration != 1 {
		t.Fatalf("hour lookback coverage %+v, want all 6 windows", cov)
	}
}

// TestHandlerJSONAndFrames drives the HTTP surface end to end: the JSON
// query (coverage, cardinality, per-key estimate, EM entropy/FSD) and the
// FCMW frame export, whose frames must decode back to the ring's buckets.
func TestHandlerJSONAndFrames(t *testing.T) {
	r := testRing(t, 64, 3)
	for w := 0; w < 4; w++ {
		for f := uint32(1); f <= 5; f++ {
			for p := uint32(0); p < f; p++ {
				if err := r.Update(key(f), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := r.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	h := Handler(r)

	// JSON: full lookback, per-key estimate, 3 EM iterations.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/overtime?key=00000003&em=3", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Coverage.Windows != 4 || resp.Coverage.FirstGeneration != 1 || resp.Coverage.LastGeneration != 4 {
		t.Fatalf("coverage %+v, want all 4 windows", resp.Coverage)
	}
	if resp.Estimate == nil || *resp.Estimate != 12 {
		t.Fatalf("estimate %v, want 12 (flow 3 over 4 windows)", resp.Estimate)
	}
	if resp.Cardinality < 3 || resp.Cardinality > 8 {
		t.Fatalf("cardinality %v implausible for 5 flows", resp.Cardinality)
	}
	if resp.Entropy == nil || len(resp.FSDHead) == 0 {
		t.Fatal("em=3 did not produce entropy + FSD head")
	}
	if len(resp.Buckets) == 0 {
		t.Fatal("response has no ring occupancy")
	}

	// Frames: every covering bucket as a decodable FCMW frame.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/overtime?format=frames", nil))
	if rec.Code != 200 {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body)
	}
	data := rec.Body.Bytes()
	infos := r.Buckets()
	var frames int
	for len(data) > 0 {
		// Frames are self-delimiting via the body-length field; decode
		// greedily by scanning the declared body length.
		bodyLen := binary.BigEndian.Uint32(data[52:56])
		frameLen := 56 + int(bodyLen) + 4
		meta, snap, err := collect.DecodeWindow(data[:frameLen])
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		info := infos[frames]
		if meta.FirstGeneration != info.FirstGeneration || meta.Generation != info.Generation ||
			meta.Packets != info.Packets || int(meta.Level) != info.Level || int(meta.Span) != info.Span {
			t.Fatalf("frame %d metadata %+v does not match bucket %+v", frames, meta, info)
		}
		if snap.W1 != 512 {
			t.Fatalf("frame %d geometry w1=%d, want 512", frames, snap.W1)
		}
		data = data[frameLen:]
		frames++
	}
	if frames != len(infos) {
		t.Fatalf("exported %d frames, ring holds %d buckets", frames, len(infos))
	}

	// Bad requests are rejected.
	for _, q := range []string{"?windows=-1", "?duration=zzz", "?key=xyz", "?em=999", "?windows=2&duration=1m"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/overtime"+q, nil))
		if rec.Code != 400 {
			t.Errorf("query %q: HTTP %d, want 400", q, rec.Code)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/overtime", nil))
	if rec.Code != 405 {
		t.Fatalf("POST: HTTP %d, want 405", rec.Code)
	}
}

// TestInstrumentExportsRingSeries pins the telemetry surface: the ring's
// occupancy, coarsening and retention series must appear in a Prometheus
// scrape with live values.
func TestInstrumentExportsRingSeries(t *testing.T) {
	r := testRing(t, 8, 1)
	fillWindows(t, r, 12, 1)
	reg := telemetry.NewRegistry()
	r.Instrument(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, series := range []string{
		"fcm_window_buckets",
		"fcm_window_span_windows",
		"fcm_window_max_level",
		"fcm_window_resident_bytes",
		"fcm_window_generation 12",
		"fcm_window_rotations_total 12",
		"fcm_window_coarsen_merges_total",
		"fcm_window_dropped_windows_total",
	} {
		if !strings.Contains(scrape, series) {
			t.Errorf("scrape lacks %q:\n%s", series, scrape)
		}
	}
	if errs := reg.Lint(); len(errs) > 0 {
		t.Fatalf("registry lint: %v", errs)
	}
}

// TestOverTimeQueryFloor is the CI floor on over-time query throughput at
// the 64-bucket lookback: queries fold the coarsened covering set into
// pooled scratch, so even deep lookbacks must sustain well over 100
// queries/s. The bound is generous (the measured rate is ~1000x higher)
// so it only trips on an algorithmic regression — e.g. the fold going
// quadratic or scratch pooling breaking — never on a slow CI machine.
func TestOverTimeQueryFloor(t *testing.T) {
	r := testRing(t, 64, 3)
	fillWindows(t, r, 64, 16)
	k := key(1)

	// Warm the scratch pool, and sanity-check the answer once.
	est, cov, err := r.QueryOverTime(k, LastWindows(64))
	if err != nil {
		t.Fatal(err)
	}
	if est != 64*16 {
		t.Fatalf("64-window estimate %d, want %d", est, 64*16)
	}
	if cov.Windows != 64 {
		t.Fatalf("coverage %d windows, want 64", cov.Windows)
	}

	const minQPS = 100.0
	start := time.Now()
	queries := 0
	for time.Since(start) < 200*time.Millisecond {
		if _, _, err := r.QueryOverTime(k, LastWindows(64)); err != nil {
			t.Fatal(err)
		}
		queries++
	}
	qps := float64(queries) / time.Since(start).Seconds()
	t.Logf("64-bucket lookback: %.0f queries/s (%d in %s)", qps, queries, time.Since(start).Round(time.Millisecond))
	if qps < minQPS {
		t.Fatalf("over-time query throughput %.0f qps below the %.0f floor at 64-bucket lookback", qps, minQPS)
	}
}

// BenchmarkQueryOverTime measures over-time query latency vs lookback
// depth on a 64-window ring — the scaling claim behind the exponential
// histogram (covering buckets grow O(log n), not O(n)).
func BenchmarkQueryOverTime(b *testing.B) {
	for _, lb := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("lookback=%d", lb), func(b *testing.B) {
			r, err := New(Config{
				Sketch:         fcm.Config{LeafWidth: 512},
				MaxWindows:     64,
				BucketDuration: time.Second,
				Now:            testClock(),
			})
			if err != nil {
				b.Fatal(err)
			}
			k := key(1)
			for w := 0; w < 64; w++ {
				for p := 0; p < 16; p++ {
					r.Update(k, 1) //nolint:errcheck // owned mode cannot fail
				}
				if err := r.Rotate(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := r.QueryOverTime(k, LastWindows(lb)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRotate measures the rotation cost including coarsening
// cascades and retention on a bounded ring.
func BenchmarkRotate(b *testing.B) {
	r, err := New(Config{
		Sketch:         fcm.Config{LeafWidth: 512},
		MaxWindows:     64,
		BucketDuration: time.Second,
		Now:            testClock(),
	})
	if err != nil {
		b.Fatal(err)
	}
	k := key(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Update(k, 1) //nolint:errcheck // owned mode cannot fail
		if err := r.Rotate(); err != nil {
			b.Fatal(err)
		}
	}
}
