package window

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	fcm "github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/collect"
)

// QueryResponse is the JSON shape of GET /debug/overtime: the coverage
// actually folded plus whichever answers the query parameters selected.
type QueryResponse struct {
	Coverage    Coverage     `json:"coverage"`
	Cardinality float64      `json:"cardinality"`
	Key         string       `json:"key,omitempty"`
	Estimate    *uint64      `json:"estimate,omitempty"`
	Entropy     *float64     `json:"entropy,omitempty"`
	FSDHead     []float64    `json:"fsd_head,omitempty"`
	Buckets     []BucketInfo `json:"buckets"`
}

// Handler serves over-time queries from the ring:
//
//	GET /debug/overtime?windows=8            last 8 closed windows
//	GET /debug/overtime?duration=1m&live=1   trailing minute incl. live window
//	GET /debug/overtime?windows=8&key=<hex>  adds the per-flow estimate
//	GET /debug/overtime?windows=8&em=5       adds entropy + FSD head (EM rounds)
//	GET /debug/overtime?windows=8&format=frames
//
// format=frames streams the covering buckets as codec "FCMW" window
// frames (collect.EncodeWindow) instead of JSON, so a controller can pull
// the raw windows and re-fold them itself.
func Handler(r *Ring) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		lb, err := parseLookback(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.URL.Query().Get("format") == "frames" {
			serveFrames(w, r, lb)
			return
		}
		// Validate the optional parameters before folding anything.
		var key []byte
		keyHex := req.URL.Query().Get("key")
		if keyHex != "" {
			key, err = hex.DecodeString(keyHex)
			if err != nil {
				http.Error(w, "bad key hex: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		emIters := 0
		if emStr := req.URL.Query().Get("em"); emStr != "" {
			emIters, err = strconv.Atoi(emStr)
			if err != nil || emIters < 1 || emIters > 64 {
				http.Error(w, "em must be 1..64 iterations", http.StatusBadRequest)
				return
			}
		}
		// One fold answers every field: cardinality, the per-key estimate
		// and the EM distribution all derive from the same covering-bucket
		// set, so the response is internally consistent even when a Rotate
		// races the request — and the O(log n) fold cost is paid once, not
		// once per field.
		resp := QueryResponse{Buckets: r.Buckets()}
		sk, cov, err := r.fold(lb)
		resp.Coverage = cov
		switch {
		case err == nil:
			resp.Cardinality = sk.Cardinality()
			if key != nil {
				est := sk.Estimate(key)
				resp.Key = keyHex
				resp.Estimate = &est
			}
			if emIters > 0 {
				dist, emErr := fsdOf(sk, &fcm.EMOptions{Iterations: emIters})
				if emErr != nil {
					r.release(sk)
					http.Error(w, emErr.Error(), http.StatusInternalServerError)
					return
				}
				h := fcm.EntropyOf(dist)
				resp.Entropy = &h
				if len(dist) > 17 {
					dist = dist[:17]
				}
				resp.FSDHead = dist
			}
			r.release(sk)
		case err == ErrEmpty:
			// Coverage and ring occupancy still describe the (empty) ring.
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// Headers are gone; nothing useful left to do.
			return
		}
	})
}

// parseLookback reads windows=/duration=/live= query parameters.
func parseLookback(req *http.Request) (Lookback, error) {
	q := req.URL.Query()
	var lb Lookback
	if s := q.Get("windows"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return lb, fmt.Errorf("windows must be a non-negative integer")
		}
		lb.Windows = n
	}
	if s := q.Get("duration"); s != "" {
		if lb.Windows != 0 {
			return lb, fmt.Errorf("set windows or duration, not both")
		}
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			return lb, fmt.Errorf("bad duration %q", s)
		}
		lb.Duration = d
		lb.IncludeLive = true
	}
	if s := q.Get("live"); s != "" {
		on, err := strconv.ParseBool(s)
		if err != nil {
			return lb, fmt.Errorf("bad live flag %q", s)
		}
		lb.IncludeLive = on
	}
	return lb, nil
}

// serveFrames streams the covering buckets as FCMW frames, oldest first.
func serveFrames(w http.ResponseWriter, r *Ring, lb Lookback) {
	frames, err := r.ExportFrames(lb)
	if err != nil && err != ErrEmpty {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	for _, f := range frames {
		if _, err := w.Write(f); err != nil {
			return
		}
	}
}

// ExportFrames encodes the lookback's covering buckets (closed windows
// only — frames carry closed-window metadata) as codec "FCMW" frames,
// oldest first. The live window is never framed: it has no final
// maxTime/generation yet.
func (r *Ring) ExportFrames(lb Lookback) ([][]byte, error) {
	r.mu.Lock()
	covering := r.coveringLocked(lb)
	r.mu.Unlock()
	if len(covering) == 0 {
		return nil, ErrEmpty
	}
	frames := make([][]byte, 0, len(covering))
	for _, b := range covering {
		meta := collect.WindowMeta{
			Level:           uint8(b.level),
			Span:            uint32(b.span),
			FirstGeneration: b.firstGen,
			Generation:      b.lastGen,
			MinTimeUnixNano: b.minTime.UnixNano(),
			MaxTimeUnixNano: b.maxTime.UnixNano(),
			Packets:         b.packets,
		}
		frame, err := collect.EncodeWindow(meta, collect.TakeSnapshot(b.sk))
		if err != nil {
			return nil, fmt.Errorf("window: encoding bucket [%d,%d]: %w", b.firstGen, b.lastGen, err)
		}
		frames = append(frames, frame)
	}
	return frames, nil
}
