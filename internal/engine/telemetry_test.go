package engine

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/fcmsketch/fcm/internal/telemetry"
)

func TestEngineInstrument(t *testing.T) {
	e, err := New(Config{Shards: 4, Build: build(geometries[0], 0)})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	e.Instrument(reg)

	// Shard-owned writers: each shard's counter sees only its own traffic.
	var wg sync.WaitGroup
	const per = 2000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.UpdateShard(w, key(uint64(w*per+i)), 1)
			}
		}(w)
	}
	wg.Wait()
	_ = e.Rotate()
	if sk, _ := e.Snapshot(); sk == nil {
		t.Fatal("nil snapshot")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fcm_sketch_updates_total 8000",
		`fcm_engine_shard_updates_total{shard="0"} 2000`,
		`fcm_engine_shard_updates_total{shard="3"} 2000`,
		"fcm_engine_shards 4",
		"fcm_sketch_saturations_total 0",
		`fcm_sketch_promotions_total{level="0"}`,
		`fcm_sketch_level_occupancy{level="0"}`,
		`fcm_sketch_level_overflowed{level="2"}`,
		"fcm_sketch_cardinality_estimate",
		"fcm_sketch_memory_bytes",
		"fcm_engine_memory_bytes",
		"fcm_sketch_resident_bytes",
		"fcm_engine_resident_bytes",
		"fcm_engine_rotate_seconds_count 1",
		"fcm_engine_snapshot_seconds_count 1",
		"fcm_engine_merge_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}

	// The occupancy probe caches within its TTL: the engine generation can
	// move without every gauge read paying a snapshot+scan. We can't observe
	// the cache directly, but the gauges must at least be self-consistent
	// (occupancy in [0,1], rotated window ≈ empty before new traffic).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fcm_sketch_level_occupancy") {
			f := strings.Fields(line)
			if len(f) != 2 || f[1] < "0" {
				t.Errorf("occupancy line %q", line)
			}
		}
	}
}

// TestResidentBytesGauges pins the typed-lane resident gauges to the values
// computed from the sketch itself: fcm_sketch_resident_bytes reports one
// logical replica (the merged snapshot), fcm_engine_resident_bytes the sum
// over all shard replicas. For the paper geometry {8,16,32} at K=8 with
// w1=512 and 2 trees, a replica is 2*(512*1 + 64*2 + 8*4) = 1344 bytes.
func TestResidentBytesGauges(t *testing.T) {
	e, err := New(Config{Shards: 4, Build: build(geometries[0], 0)})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	e.Instrument(reg)

	sk, _ := e.Snapshot()
	wantReplica := sk.ResidentBytes()
	if wantReplica != 1344 {
		t.Fatalf("replica resident bytes %d, want 1344 for the compact paper geometry", wantReplica)
	}
	if got := e.ResidentBytes(); got != 4*wantReplica {
		t.Fatalf("engine resident bytes %d, want %d (4 shards)", got, 4*wantReplica)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fcm_sketch_resident_bytes 1344",
		"fcm_engine_resident_bytes 5376",
		// The bit-cost gauge must keep reporting the paper's accounting,
		// which coincides with resident bytes for byte-aligned widths.
		"fcm_sketch_memory_bytes 1344",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
}

func TestInstrumentSketch(t *testing.T) {
	sk, err := build(geometries[2], 7)()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	InstrumentSketch(reg, sk, sk.Clone)
	sk.Update([]byte("a"), 3)
	sk.Update([]byte("b"), 1)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fcm_sketch_updates_total 2") {
		t.Errorf("missing update count:\n%s", out)
	}
	if !strings.Contains(out, `fcm_sketch_level_occupancy{level="0"}`) {
		t.Errorf("missing occupancy series:\n%s", out)
	}
}
