package engine

import (
	"math/rand"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
)

// TestUpdateShardBatchEquivalence: a batched ingest must leave registers
// bit-identical to the same stream fed through UpdateShard one key at a
// time.
func TestUpdateShardBatchEquivalence(t *testing.T) {
	for gi, geom := range geometries {
		rng := rand.New(rand.NewSource(int64(gi)))
		serial, err := New(Config{Shards: 2, Build: build(geom, 5)})
		if err != nil {
			t.Fatal(err)
		}
		batched, err := New(Config{Shards: 2, Build: build(geom, 5)})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 40; round++ {
			n := 1 + rng.Intn(64)
			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = key(uint64(rng.Intn(300)))
			}
			inc := uint64(1 + rng.Intn(5))
			sh := rng.Intn(2)
			for _, k := range keys {
				serial.UpdateShard(sh, k, inc)
			}
			batched.UpdateShardBatch(sh, keys, inc)
		}
		a, _ := serial.Snapshot()
		b, _ := batched.Snapshot()
		registersEqual(t, a, b)
		if serial.Generation() != batched.Generation() {
			t.Errorf("generation %d != %d: batch must advance by len(keys)",
				serial.Generation(), batched.Generation())
		}
	}
}

// TestBatcherEquivalence: routing a stream through a Batcher (key-affinity
// Add) must match unbatched key-affinity Update exactly, including keys
// held back until the final Flush.
func TestBatcherEquivalence(t *testing.T) {
	geom := geometries[0]
	rng := rand.New(rand.NewSource(42))
	plain, err := New(Config{Shards: 4, Build: build(geom, 3)})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Shards: 4, Build: build(geom, 3)})
	if err != nil {
		t.Fatal(err)
	}
	b := eng.NewBatcher(32, 1)
	const n = 10_007 // not a multiple of the batch size: Flush must drain the tail
	for i := 0; i < n; i++ {
		k := key(uint64(rng.Intn(500)))
		plain.Update(k, 1)
		b.Add(k)
	}
	b.Flush()
	pa, _ := plain.Snapshot()
	ba, _ := eng.Snapshot()
	registersEqual(t, pa, ba)
	if got := eng.Generation(); got != n {
		t.Errorf("generation %d after flush, want %d", got, n)
	}
}

// TestBatcherCopiesKeys: the Batcher must copy key bytes on Add, so a
// caller reusing one buffer per packet (the pcap reader) still counts
// distinct keys.
func TestBatcherCopiesKeys(t *testing.T) {
	eng, err := New(Config{Shards: 1, Build: build(geometries[0], 1)})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(Config{Shards: 1, Build: build(geometries[0], 1)})
	if err != nil {
		t.Fatal(err)
	}
	b := eng.NewBatcher(128, 1)
	buf := make([]byte, 4)
	for i := 0; i < 100; i++ {
		copy(buf, key(uint64(i)))
		b.AddShard(0, buf)
		ref.UpdateShard(0, key(uint64(i)), 1)
	}
	b.Flush()
	snap, _ := eng.Snapshot()
	refSnap, _ := ref.Snapshot()
	registersEqual(t, refSnap, snap)
}

// TestBatcherSteadyStateAllocs: after warm-up (arena and view slices at
// full capacity), Add and Flush must not allocate — the engine half of the
// zero-alloc replay acceptance criterion.
func TestBatcherSteadyStateAllocs(t *testing.T) {
	eng, err := New(Config{Shards: 2, Build: build(geometries[0], 1)})
	if err != nil {
		t.Fatal(err)
	}
	b := eng.NewBatcher(64, 1)
	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = key(uint64(i))
	}
	// Warm-up: grow arenas and view slices to steady-state capacity.
	for _, k := range keys {
		b.Add(k)
	}
	b.Flush()
	if avg := testing.AllocsPerRun(20, func() {
		for _, k := range keys {
			b.Add(k)
		}
		b.Flush()
	}); avg != 0 {
		t.Errorf("Batcher steady state allocates %.1f times per 256-key round, want 0", avg)
	}
}

// TestUpdateShardBatchAllocs: the locked batch update itself is
// allocation-free.
func TestUpdateShardBatchAllocs(t *testing.T) {
	eng, err := New(Config{Shards: 1, Build: build(geometries[0], 1)})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = key(uint64(i))
	}
	if avg := testing.AllocsPerRun(50, func() {
		eng.UpdateShardBatch(0, keys, 1)
	}); avg != 0 {
		t.Errorf("UpdateShardBatch allocates %.1f per call, want 0", avg)
	}
}

var _ interface {
	Update(key []byte, inc uint64)
	UpdateBatch(keys [][]byte, inc uint64)
} = (*core.Sketch)(nil)
