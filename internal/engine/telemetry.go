package engine

import (
	"fmt"
	"sync"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/insight"
	"github.com/fcmsketch/fcm/internal/telemetry"
)

// Instrument attaches self-telemetry to the engine and registers its
// series: per-shard ingest counters (the paper's data plane measuring
// itself), sketch-level promotion/saturation/occupancy series aggregated
// over the shards, and snapshot/merge/rotate latency histograms.
//
// Hot-path contract: an instrumented UpdateShard adds exactly one
// uncontended atomic add (the shard's own core.Stats); everything else —
// occupancy scans, cardinality, memory — is computed at scrape time from
// a cached merged snapshot. Call before ingest starts; attaching races
// no locks but the first updates on a not-yet-attached shard would go
// uncounted.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	depth := 0
	stats := make([]*core.Stats, len(e.shards))
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		if depth == 0 {
			depth = sh.sk.Depth()
		}
		st := core.NewStats(depth)
		sh.sk.SetStats(st)
		sh.mu.Unlock()
		stats[i] = st
	}

	reg.GaugeFunc("fcm_engine_shards", "Number of ingest shards.",
		func() float64 { return float64(len(e.shards)) })
	for i := range stats {
		st := stats[i]
		reg.CounterFuncL("fcm_engine_shard_updates_total", fmt.Sprintf(`shard="%d"`, i),
			"Sketch updates ingested per shard.",
			func() float64 { return float64(st.Updates.Load()) })
	}
	reg.GaugeFunc("fcm_engine_memory_bytes",
		"Combined counter footprint of all shard replicas (configured bit cost).",
		func() float64 { return float64(e.MemoryBytes()) })
	reg.GaugeFunc("fcm_engine_resident_bytes",
		"Combined bytes of counter storage actually allocated by all shard replicas (typed lanes).",
		func() float64 { return float64(e.ResidentBytes()) })

	e.snapSeconds = reg.Histogram("fcm_engine_snapshot_seconds",
		"Latency of a full engine snapshot (per-shard register copies plus exact merge).", nil)
	e.mergeSeconds = reg.Histogram("fcm_engine_merge_seconds",
		"Latency of the exact-merge phase of snapshots and rotations.", nil)
	e.rotateSeconds = reg.Histogram("fcm_engine_rotate_seconds",
		"Latency of a window rotation (snapshot+clear each shard, then merge).", nil)

	registerSketchSeries(reg, depth, stats, func() *core.Sketch {
		sk, _ := e.Snapshot()
		return sk
	})
}

// InstrumentSketch registers the same sketch-level series for a
// single-writer sketch (the non-sharded fcmswitch programs): sk gets a
// core.Stats attached, and snapshot provides consistent register copies
// for the scrape-time scans (e.g. collect.LockedSketch.SnapshotSketch).
func InstrumentSketch(reg *telemetry.Registry, sk *core.Sketch, snapshot func() *core.Sketch) {
	st := core.NewStats(sk.Depth())
	sk.SetStats(st)
	registerSketchSeries(reg, sk.Depth(), []*core.Stats{st}, snapshot)
}

// ObserveInsight scans a merged snapshot into an insight.Observation.
// Snapshot clones drop the shards' Stats attachment, so the cumulative
// hot-path counters are re-derived by summing across shards (zero when
// the engine was never instrumented — the analyzer falls back to
// register-derived signals). Walks every register: scrape-time or
// per-window only.
func (e *Engine) ObserveInsight() insight.Observation {
	sk, _ := e.Snapshot()
	obs := insight.Observe(sk)
	prom := make([]uint64, sk.Depth()-1)
	have := false
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		st := sh.sk.Stats()
		sh.mu.Unlock()
		if st == nil {
			continue
		}
		have = true
		obs.Counts.Updates += st.Updates.Load()
		obs.Counts.Saturations += st.Saturations.Load()
		for l := range prom {
			prom[l] += st.PromotionCount(l)
		}
	}
	if have {
		obs.Counts.Promotions = prom
	}
	return obs
}

// InsightProber wraps ObserveInsight in a TTL-cached accuracy analyzer —
// the report source for the /debug/insight endpoint and the insight
// gauges (ttl <= 0 takes the Prober default of 1s).
func (e *Engine) InsightProber(cfg insight.Config, ttl time.Duration) *insight.Prober {
	return insight.NewProber(insight.NewAnalyzer(cfg), e.ObserveInsight, ttl)
}

// InstrumentInsight registers the accuracy self-report gauges
// (insight.Instrument) backed by a fresh prober, and returns that prober
// so the caller can also mount it as /debug/insight.
func (e *Engine) InstrumentInsight(reg *telemetry.Registry, cfg insight.Config, ttl time.Duration) *insight.Prober {
	sh := &e.shards[0]
	sh.mu.Lock()
	depth := sh.sk.Depth()
	sh.mu.Unlock()
	p := e.InsightProber(cfg, ttl)
	insight.Instrument(reg, depth, p.Report)
	return p
}

// registerSketchSeries exports the FCM sketch's self-telemetry: update
// volume, per-level overflow promotions, root saturations, and the
// scrape-time occupancy/cardinality probe.
func registerSketchSeries(reg *telemetry.Registry, depth int, stats []*core.Stats, snapshot func() *core.Sketch) {
	sum := func(read func(*core.Stats) uint64) func() float64 {
		return func() float64 {
			var total uint64
			for _, st := range stats {
				total += read(st)
			}
			return float64(total)
		}
	}
	reg.CounterFunc("fcm_sketch_updates_total", "Total sketch updates ingested.",
		sum(func(st *core.Stats) uint64 { return st.Updates.Load() }))
	for l := 0; l < depth-1; l++ {
		l := l
		reg.CounterFuncL("fcm_sketch_promotions_total", fmt.Sprintf(`level="%d"`, l),
			"Counter-overflow promotions from this stage into the next (8b->16b->32b escalation).",
			sum(func(st *core.Stats) uint64 { return st.PromotionCount(l) }))
	}
	reg.CounterFunc("fcm_sketch_saturations_total",
		"Updates clamped at the root stage's counting capacity (hard overflow).",
		sum(func(st *core.Stats) uint64 { return st.Saturations.Load() }))

	probe := &sketchProbe{snapshot: snapshot, depth: depth}
	for l := 0; l < depth; l++ {
		l := l
		reg.GaugeFuncL("fcm_sketch_level_occupancy", fmt.Sprintf(`level="%d"`, l),
			"Fraction of non-zero counters per stage, averaged over trees (from a cached merged snapshot).",
			func() float64 { return probe.get().occ[l] })
		reg.GaugeFuncL("fcm_sketch_level_overflowed", fmt.Sprintf(`level="%d"`, l),
			"Counters sitting at the overflow marker per stage, summed over trees.",
			func() float64 { return float64(probe.get().over[l]) })
	}
	reg.GaugeFunc("fcm_sketch_cardinality_estimate",
		"Linear-Counting cardinality estimate of the current window.",
		func() float64 { return probe.get().card })
	reg.GaugeFunc("fcm_sketch_memory_bytes",
		"Counter footprint of the logical sketch (one replica), as the paper accounts it: exact bit cost.",
		func() float64 { return probe.get().mem })
	reg.GaugeFunc("fcm_sketch_resident_bytes",
		"Bytes of counter storage actually allocated for one replica: typed lanes cost 1/2/4 bytes per node by stage width, not a uniform 4.",
		func() float64 { return probe.get().resident })
}

// sketchProbe caches the expensive register scans behind a short TTL so
// one scrape's many gauge reads trigger one snapshot, not a dozen, and
// back-to-back scrapes during heavy ingest stay cheap.
type sketchProbe struct {
	snapshot func() *core.Sketch
	depth    int

	mu sync.Mutex
	at time.Time
	v  probeValues
}

type probeValues struct {
	occ      []float64
	over     []int
	card     float64
	mem      float64
	resident float64
}

// probeTTL bounds how stale scrape-time register scans may be.
const probeTTL = time.Second

func (p *sketchProbe) get() probeValues {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.at.IsZero() && time.Since(p.at) < probeTTL {
		return p.v
	}
	sk := p.snapshot()
	p.v = probeValues{
		occ:      sk.StageOccupancy(),
		over:     sk.OverflowedNodes(),
		card:     sk.Cardinality(),
		mem:      float64(sk.MemoryBytes()),
		resident: float64(sk.ResidentBytes()),
	}
	p.at = time.Now()
	return p.v
}
