package engine

import (
	"strings"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
)

// TestMergeShardRefusesMismatch pins that MergeShard surfaces the core
// merge refusals — geometry and hash-mode mismatches — instead of
// swallowing them, and that a refused merge leaves the shard's registers
// untouched.
func TestMergeShardRefusesMismatch(t *testing.T) {
	e, err := New(Config{Shards: 2, Build: build(geometries[0], 1)})
	if err != nil {
		t.Fatal(err)
	}
	e.Update(key(7), 3)

	mk := func(mut func(*core.Config)) *core.Sketch {
		cfg := geometries[0]
		cfg.Hash = hashing.NewBobFamily(0xfc3141 ^ 1)
		mut(&cfg)
		s, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	before, _ := e.Snapshot()

	cases := []struct {
		name string
		o    *core.Sketch
		want string
	}{
		{"geometry", mk(func(c *core.Config) { c.LeafWidth = 256 }), "geometry mismatch"},
		{"hash mode", mk(func(c *core.Config) { c.PerTreeHash = true }), "hash-mode mismatch"},
		{"hash seed", mk(func(c *core.Config) { c.Hash = hashing.NewBobFamily(99) }), "hash-seed mismatch"},
	}
	for _, tc := range cases {
		err := e.MergeShard(0, tc.o)
		if err == nil {
			t.Fatalf("%s: MergeShard accepted a mismatched sketch", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	after, _ := e.Snapshot()
	registersEqual(t, before, after)
}
