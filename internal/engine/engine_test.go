package engine

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
)

func key(i uint64) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

// geometries are the sketch shapes the equivalence property is checked on:
// the paper's byte-aligned default, a narrow deep ablation shape, and a
// single-tree tall one. Small widths force heavy overflow traffic through
// the merge's carry logic.
var geometries = []core.Config{
	{K: 8, Trees: 2, LeafWidth: 512, Widths: []int{8, 16, 32}},
	{K: 4, Trees: 3, LeafWidth: 256, Widths: []int{4, 8, 16, 32}},
	{K: 2, Trees: 1, LeafWidth: 64, Widths: []int{2, 4, 8}},
}

func build(cfg core.Config, seed uint32) func() (*core.Sketch, error) {
	return func() (*core.Sketch, error) {
		c := cfg
		c.Hash = hashing.NewBobFamily(0xfc3141 ^ seed)
		return core.New(c)
	}
}

func registersEqual(t *testing.T, a, b *core.Sketch) {
	t.Helper()
	if a.NumTrees() != b.NumTrees() || a.Depth() != b.Depth() {
		t.Fatalf("geometry differs: trees %d/%d depth %d/%d",
			a.NumTrees(), b.NumTrees(), a.Depth(), b.Depth())
	}
	for tr := 0; tr < a.NumTrees(); tr++ {
		for l := 0; l < a.Depth(); l++ {
			av, bv := a.StageValues(tr, l), b.StageValues(tr, l)
			if len(av) != len(bv) {
				t.Fatalf("tree %d stage %d: %d vs %d nodes", tr, l, len(av), len(bv))
			}
			for i := range av {
				if av[i] != bv[i] {
					t.Fatalf("tree %d stage %d node %d: %d != %d", tr, l, i, av[i], bv[i])
				}
			}
		}
	}
}

// TestShardedMergeEquivalence is the merge-equivalence property test: for
// every geometry and several random streams, sharded ingest + merge must be
// register-bit-identical to serial ingest of the same stream.
func TestShardedMergeEquivalence(t *testing.T) {
	for gi, geom := range geometries {
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(int64(gi*100 + trial)))
			serial, err := build(geom, 7)()
			if err != nil {
				t.Fatal(err)
			}
			shards := 1 + rng.Intn(8)
			eng, err := New(Config{Shards: shards, Build: build(geom, 7)})
			if err != nil {
				t.Fatal(err)
			}
			// A skewed stream with increments large enough to overflow
			// the small geometries' leaves.
			n := 5_000 + rng.Intn(5_000)
			for i := 0; i < n; i++ {
				k := key(uint64(rng.Intn(400)))
				inc := uint64(1 + rng.Intn(7))
				serial.Update(k, inc)
				// Mix both writer modes; the merge result must not
				// depend on which shard absorbed which packet.
				if rng.Intn(2) == 0 {
					eng.Update(k, inc)
				} else {
					eng.UpdateShard(rng.Intn(shards), k, inc)
				}
			}
			merged, _ := eng.Snapshot()
			registersEqual(t, serial, merged)
		}
	}
}

// TestConcurrentWritersWithSnapshots hammers the engine with more writers
// than shards while snapshots are taken concurrently, then verifies the
// final merge is bit-identical to serial ingest. Run under -race this is
// the multi-writer safety test of the concurrency model.
func TestConcurrentWritersWithSnapshots(t *testing.T) {
	geom := geometries[0]
	const writers = 6
	const perWriter = 20_000
	eng, err := New(Config{Shards: 4, Build: build(geom, 3)})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				k := key(uint64(rng.Intn(1000)))
				if w%2 == 0 {
					eng.Update(k, 1)
				} else {
					eng.UpdateShard(w%eng.NumShards(), k, 1)
				}
			}
		}(w)
	}
	// Concurrent reader: snapshots must never block ingest or observe a
	// torn register state (merge panics on inconsistent geometry; -race
	// flags unsynchronized access).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			sk, _ := eng.Snapshot()
			if sk.TotalCount(0) > uint64(writers)*perWriter {
				t.Error("snapshot observed more packets than were sent")
				return
			}
		}
	}()
	wg.Wait()
	<-done

	// Replay the same deterministic streams serially and compare.
	serial, err := build(geom, 3)()
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWriter; i++ {
			serial.Update(key(uint64(rng.Intn(1000))), 1)
		}
	}
	merged, _ := eng.Snapshot()
	registersEqual(t, serial, merged)
}

func TestRotateReturnsClosedWindow(t *testing.T) {
	eng, err := New(Config{Shards: 3, Build: build(geometries[0], 9)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		eng.Update(key(uint64(i%50)), 1)
	}
	closed := eng.Rotate()
	if got := closed.Estimate(key(7)); got != 20 {
		t.Errorf("closed-window estimate %d want 20", got)
	}
	fresh, _ := eng.Snapshot()
	if got := fresh.Estimate(key(7)); got != 0 {
		t.Errorf("post-rotate estimate %d want 0", got)
	}
}

func TestGenerationTracksUpdates(t *testing.T) {
	eng, err := New(Config{Shards: 2, Build: build(geometries[0], 1)})
	if err != nil {
		t.Fatal(err)
	}
	g0 := eng.Generation()
	eng.Update(key(1), 1)
	if eng.Generation() == g0 {
		t.Error("generation did not advance on update")
	}
	g1 := eng.Generation()
	if eng.Generation() != g1 {
		t.Error("generation advanced without updates")
	}
}

func TestEngineConfigErrors(t *testing.T) {
	if _, err := New(Config{Shards: 2}); err == nil {
		t.Error("expected error for missing Build")
	}
	if _, err := New(Config{Shards: -1, Build: build(geometries[0], 1)}); err == nil {
		t.Error("expected error for negative shards")
	}
	bad := func() (*core.Sketch, error) {
		return nil, errOops
	}
	if _, err := New(Config{Shards: 1, Build: bad}); err == nil {
		t.Error("expected build error to propagate")
	}
}

var errOops = &buildError{}

type buildError struct{}

func (*buildError) Error() string { return "oops" }
