// Package engine provides the sharded concurrent ingest engine: N
// identically-configured FCM-Sketch shards fed by multiple writers, with
// exact merge (internal/core's Merge, §5 of the paper) into a consistent
// read snapshot on demand. Because the merge is exact, the merged snapshot
// is bit-identical to a single sketch that ingested the whole stream
// serially — sharding costs nothing in accuracy, only memory for the
// per-shard replicas.
//
// Writers pick shards two ways:
//
//   - Key affinity (Update): the shard is chosen by an independent hash of
//     the key, so one flow's packets always serialize on the same shard
//     lock. This is the drop-in mode for arbitrary goroutine pools.
//   - Shard ownership (UpdateShard): the caller assigns one shard per
//     writer goroutine. The per-shard mutex is then uncontended and the
//     engine scales with writer count.
//
// Readers never stall ingest: Snapshot copies each shard's registers under
// that shard's lock only for the duration of the copy, then merges the
// copies outside all locks. A shard is blocked for one memcpy, not for the
// encode or network write of a collection.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/telemetry"
)

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of per-writer sketch replicas (default 1).
	Shards int
	// Build constructs one shard. It must return identically-configured
	// sketches (same geometry AND same hash family) on every call, or
	// merging is silently meaningless; geometry mismatches are caught.
	Build func() (*core.Sketch, error)
	// ShardHash picks the shard for key-affinity updates; nil selects a
	// BobHash decorrelated from the sketch's own hash functions.
	ShardHash hashing.Hasher
}

// shard pads each slot so neighbouring shard locks do not false-share a
// cache line under concurrent writers.
type shard struct {
	mu  sync.Mutex
	sk  *core.Sketch
	gen atomic.Uint64 // bumped on every update; snapshot cache validity
	_   [64 - 8]byte
}

// Engine is a sharded multi-writer FCM-Sketch.
type Engine struct {
	shards []shard
	hasher hashing.Hasher

	// Latency histograms, nil until Instrument; read-plane only, so a nil
	// check per Snapshot/Rotate is the whole uninstrumented cost.
	snapSeconds   *telemetry.Histogram
	mergeSeconds  *telemetry.Histogram
	rotateSeconds *telemetry.Histogram
}

// New builds an engine with cfg.Shards replicas from cfg.Build.
func New(cfg Config) (*Engine, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("engine: Build is required")
	}
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 || n > 1024 {
		return nil, fmt.Errorf("engine: shard count %d out of range [1,1024]", n)
	}
	h := cfg.ShardHash
	if h == nil {
		// A seed unrelated to the sketch families (0xfc3141-derived) so
		// shard choice is independent of counter placement.
		h = hashing.NewBob(0x5eedca7e)
	}
	e := &Engine{shards: make([]shard, n), hasher: h}
	for i := range e.shards {
		sk, err := cfg.Build()
		if err != nil {
			return nil, fmt.Errorf("engine: building shard %d: %w", i, err)
		}
		e.shards[i].sk = sk
	}
	return e, nil
}

// NumShards returns the shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// ShardOf returns the key-affinity shard index for key.
func (e *Engine) ShardOf(key []byte) int {
	if len(e.shards) == 1 {
		return 0
	}
	return hashing.Reduce(e.hasher.Hash(key), len(e.shards))
}

// Update records inc occurrences of key on its key-affinity shard. Safe
// for any number of concurrent callers.
func (e *Engine) Update(key []byte, inc uint64) {
	e.UpdateShard(e.ShardOf(key), key, inc)
}

// UpdateShard records inc occurrences of key on shard i — the
// shard-ownership path for writer goroutines that each own one shard. The
// per-shard lock is still taken (so snapshots stay consistent) but is
// uncontended when each goroutine sticks to its own shard.
func (e *Engine) UpdateShard(i int, key []byte, inc uint64) {
	sh := &e.shards[i]
	sh.mu.Lock()
	sh.sk.Update(key, inc)
	sh.gen.Add(1)
	sh.mu.Unlock()
}

// UpdateShardBatch records inc occurrences of every key in keys on shard
// i under ONE lock acquisition. For shard-owning writers this amortizes
// the mutex and the sketch's per-call setup across the whole batch, which
// is the engine-level half of the zero-alloc batched replay path. The
// shard generation advances by len(keys) so Generation still counts
// updates, not calls.
func (e *Engine) UpdateShardBatch(i int, keys [][]byte, inc uint64) {
	if len(keys) == 0 {
		return
	}
	sh := &e.shards[i]
	sh.mu.Lock()
	sh.sk.UpdateBatch(keys, inc)
	sh.gen.Add(uint64(len(keys)))
	sh.mu.Unlock()
}

// MergeShard folds o — which must share the shards' geometry and hash
// functions — into shard i under that shard's lock. The caller keeps
// ownership of o. Because FCM's merge is exact, this is equivalent to
// replaying o's whole stream into shard i.
func (e *Engine) MergeShard(i int, o *core.Sketch) error {
	sh := &e.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := sh.sk.Merge(o); err != nil {
		return err
	}
	sh.gen.Add(1)
	return nil
}

// Batcher accumulates keys per shard and flushes each shard's pending
// batch with a single UpdateShardBatch call once it reaches the batch
// size. Key bytes are copied into a per-shard arena on Add — the caller
// may reuse its buffer immediately (the pcap reader does) — and both the
// arena and the key-view slice are recycled across flushes, so a warmed-up
// Batcher adds and flushes without allocating. A Batcher is single-writer:
// use one per ingesting goroutine.
type Batcher struct {
	e     *Engine
	inc   uint64
	batch int
	keys  [][][]byte // per-shard views into arena, reused across flushes
	arena [][]byte   // per-shard copied key bytes, reused across flushes
}

// NewBatcher returns a Batcher that applies increment inc per key and
// flushes a shard after batch keys (default 256).
func (e *Engine) NewBatcher(batch int, inc uint64) *Batcher {
	if batch <= 0 {
		batch = 256
	}
	b := &Batcher{
		e:     e,
		inc:   inc,
		batch: batch,
		keys:  make([][][]byte, len(e.shards)),
		arena: make([][]byte, len(e.shards)),
	}
	for i := range b.keys {
		b.keys[i] = make([][]byte, 0, batch)
	}
	return b
}

// Add buffers key for its key-affinity shard, flushing that shard's batch
// if it is full.
func (b *Batcher) Add(key []byte) {
	b.AddShard(b.e.ShardOf(key), key)
}

// AddShard buffers key for shard i — the shard-ownership analogue of Add.
func (b *Batcher) AddShard(i int, key []byte) {
	a := b.arena[i]
	start := len(a)
	a = append(a, key...)
	b.arena[i] = a
	b.keys[i] = append(b.keys[i], a[start:len(a):len(a)])
	if len(b.keys[i]) >= b.batch {
		b.flushShard(i)
	}
}

func (b *Batcher) flushShard(i int) {
	if len(b.keys[i]) == 0 {
		return
	}
	b.e.UpdateShardBatch(i, b.keys[i], b.inc)
	b.keys[i] = b.keys[i][:0]
	b.arena[i] = b.arena[i][:0]
}

// Flush drains every shard's pending batch. Call it at end of stream —
// keys since the last full batch are not in the engine until flushed.
func (b *Batcher) Flush() {
	for i := range b.keys {
		b.flushShard(i)
	}
}

// Generation returns a counter that increases with every update on any
// shard. Two equal readings with no snapshot in between mean the engine's
// contents did not change, which lets callers cache merged snapshots.
func (e *Engine) Generation() uint64 {
	var g uint64
	for i := range e.shards {
		g += e.shards[i].gen.Load()
	}
	return g
}

// Snapshot returns the exact merge of every shard as a sketch the caller
// owns, plus the engine generation the snapshot corresponds to (a lower
// bound: updates racing with the copy may or may not be included, exactly
// as with any streaming snapshot). Each shard is locked only while its
// registers are copied; the merge runs outside all locks.
func (e *Engine) Snapshot() (*core.Sketch, uint64) {
	if e.snapSeconds != nil {
		defer e.snapSeconds.ObserveSince(time.Now())
	}
	clones := make([]*core.Sketch, len(e.shards))
	var gen uint64
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		clones[i] = sh.sk.Clone()
		gen += sh.gen.Load()
		sh.mu.Unlock()
	}
	return e.mergeClones(clones), gen
}

// mergeClones folds per-shard register copies into one sketch outside all
// shard locks, timing the exact-merge phase when instrumented.
func (e *Engine) mergeClones(clones []*core.Sketch) *core.Sketch {
	if e.mergeSeconds != nil {
		defer e.mergeSeconds.ObserveSince(time.Now())
	}
	merged := clones[0]
	for _, c := range clones[1:] {
		if err := merged.Merge(c); err != nil {
			// Build returned inconsistent geometries — a constructor
			// contract violation, not a runtime condition.
			panic(fmt.Sprintf("engine: shards not mergeable: %v", err))
		}
	}
	return merged
}

// Rotate atomically snapshots and clears each shard, returning the exact
// merge of the closed window. Updates concurrent with Rotate land in
// either the closed or the new window (never both, never neither).
func (e *Engine) Rotate() *core.Sketch {
	if e.rotateSeconds != nil {
		defer e.rotateSeconds.ObserveSince(time.Now())
	}
	clones := make([]*core.Sketch, len(e.shards))
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		clones[i] = sh.sk.Clone()
		sh.sk.Reset()
		sh.gen.Add(1)
		sh.mu.Unlock()
	}
	return e.mergeClones(clones)
}

// Reset clears every shard.
func (e *Engine) Reset() {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		sh.sk.Reset()
		sh.gen.Add(1)
		sh.mu.Unlock()
	}
}

// MemoryBytes returns the combined footprint of all shard replicas.
func (e *Engine) MemoryBytes() int {
	total := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		total += sh.sk.MemoryBytes()
		sh.mu.Unlock()
	}
	return total
}

// ResidentBytes returns the combined bytes of counter storage actually
// allocated by all shard replicas (the typed-lane footprint, as opposed to
// MemoryBytes' configured bit cost).
func (e *Engine) ResidentBytes() int {
	total := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		total += sh.sk.ResidentBytes()
		sh.mu.Unlock()
	}
	return total
}

// SnapshotSketch implements the collect.Source contract: a consistent
// copy-on-read register snapshot for the collection server.
func (e *Engine) SnapshotSketch() *core.Sketch {
	sk, _ := e.Snapshot()
	return sk
}

// SnapshotSketchGen implements collect.GenerationalSource: the snapshot
// together with the generation it was taken at. Equal generations imply
// bit-identical registers within one process lifetime (every update bumps
// a shard generation under that shard's lock), which is what lets the
// delta-collection server answer an unchanged engine with an empty delta.
func (e *Engine) SnapshotSketchGen() (*core.Sketch, uint64) {
	return e.Snapshot()
}

// ResetSketch implements the collect.Source contract (window rotation over
// the wire).
func (e *Engine) ResetSketch() { e.Reset() }
