package exp

import (
	"fmt"
	"math"
	"sort"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/metrics"
	"github.com/fcmsketch/fcm/internal/pisa"
	"github.com/fcmsketch/fcm/internal/sketch"
)

// hwMemory is §8's 1.3MB configuration, scaled.
func (o Options) hwMemory() int { return int(1_300_000 * o.Scale) }

// hwTopKEntries is the hardware filter size (§8.2.2 uses 16K entries),
// clamped to ~1/8 of the hardware memory budget (see TopKEntries for why
// the count is not scaled with the trace).
func (o Options) hwTopKEntries() int {
	n := 16384
	if cap := o.hwMemory() / (8 * 13); n > cap {
		n = cap
	}
	if n < 16 {
		n = 16
	}
	return n
}

// RunFig13 reproduces Fig. 13: software vs Tofino-model accuracy for FCM
// and FCM+TopK at the 1.3MB hardware configuration. The FCM data plane is
// bit-identical; FCM+TopK differs only by the single-level no-eviction
// filter approximation of §8.1.
func RunFig13(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.hwMemory()
	truthDist := trueDistribution(tr)
	emo := &fcm.EMOptions{Iterations: o.EMIterations, Workers: o.Workers}

	// Software versions (same implementations as §7.5).
	softFCM, err := newFCM(o, 8, mem)
	if err != nil {
		return nil, err
	}
	softTopK, err := fcm.NewTopK(fcm.TopKConfig{
		Config:      fcm.Config{MemoryBytes: mem, K: 16, Seed: uint32(o.Seed)},
		TopKEntries: o.hwTopKEntries(),
	})
	if err != nil {
		return nil, err
	}
	// Hardware (PISA) versions.
	hwFCM, err := pisa.NewSwitch(pisa.SwitchConfig{
		Program: pisa.ProgramFCM, MemoryBytes: mem, Seed: uint32(o.Seed)})
	if err != nil {
		return nil, err
	}
	hwTopK, err := pisa.NewSwitch(pisa.SwitchConfig{
		Program: pisa.ProgramFCMTopK, MemoryBytes: mem,
		TopKEntries: o.hwTopKEntries(), Seed: uint32(o.Seed)})
	if err != nil {
		return nil, err
	}
	ingest(tr, softFCM, softTopK, hwFCM, hwTopK)

	fsARE, fsAAE := flowErrors(tr, softFCM)
	tsARE, tsAAE := flowErrors(tr, softTopK)
	fhARE, fhAAE := flowErrors(tr, hwFCM)
	thARE, thAAE := flowErrors(tr, hwTopK)

	acc := &Table{ID: "fig13a", Title: "ARE and AAE of flow size: software vs Tofino model",
		PaperNote: "FCM identical on both; FCM+TopK slightly worse on Tofino (1.01→1.11 ARE)",
		Headers:   []string{"variant", "platform", "ARE", "AAE"}}
	acc.AddRow("FCM", "software", fsARE, fsAAE)
	acc.AddRow("FCM", "tofino-model", fhARE, fhAAE)
	acc.AddRow("FCM+TopK", "software", tsARE, tsAAE)
	acc.AddRow("FCM+TopK", "tofino-model", thARE, thAAE)

	softDist, err := softFCM.FlowSizeDistribution(emo)
	if err != nil {
		return nil, err
	}
	softTDist, err := softTopK.FlowSizeDistribution(emo)
	if err != nil {
		return nil, err
	}
	hwDist, err := distFromSwitch(hwFCM, emo, o.EMMetrics)
	if err != nil {
		return nil, err
	}
	hwTDist, err := distFromSwitch(hwTopK, emo, o.EMMetrics)
	if err != nil {
		return nil, err
	}
	wm := &Table{ID: "fig13b", Title: "Flow size distribution WMRE: software vs Tofino model",
		PaperNote: "paper: FCM 0.035/0.035, FCM+TopK 0.031/0.033",
		Headers:   []string{"variant", "platform", "WMRE"}}
	wm.AddRow("FCM", "software", metrics.WMRE(truthDist, softDist))
	wm.AddRow("FCM", "tofino-model", metrics.WMRE(truthDist, hwDist))
	wm.AddRow("FCM+TopK", "software", metrics.WMRE(truthDist, softTDist))
	wm.AddRow("FCM+TopK", "tofino-model", metrics.WMRE(truthDist, hwTDist))
	return []*Table{acc, wm}, nil
}

// distFromSwitch runs the control-plane EM on a hardware switch's
// collected registers (plus exact filter residents when present).
func distFromSwitch(sw *pisa.Switch, emo *fcm.EMOptions, m *em.Metrics) ([]float64, error) {
	sk := sw.Sketch()
	res, err := em.Run(em.Config{
		W1:         sk.LeafWidth(),
		Theta1:     sk.StageMax(0),
		Iterations: emo.Iterations,
		Workers:    emo.Workers,
		Metrics:    m,
	}, sk.VirtualCounters())
	if err != nil {
		return nil, err
	}
	dist := res.Dist
	if f := sw.Filter(); f != nil {
		f.Entries(func(key []byte, count uint64, flagged bool) {
			total := count
			if flagged {
				total += sk.Estimate(key)
			}
			if total == 0 {
				return
			}
			for uint64(len(dist)) <= total {
				dist = append(dist, 0)
			}
			dist[total]++
		})
	}
	return dist, nil
}

// cmSwitchDistribution estimates the FSD of a CM(d)+TopK switch: degree-1
// EM over the first light row plus exact filter residents.
func cmSwitchDistribution(sw *pisa.Switch, o Options) ([]float64, error) {
	cm := sw.CM()
	row := cm.Row(0)
	vcs := make([]core.VirtualCounter, len(row))
	for i, v := range row {
		vcs[i] = core.VirtualCounter{Value: uint64(v), Degree: 1, Level: 1}
	}
	res, err := em.Run(em.Config{
		W1:         len(row),
		Iterations: o.EMIterations,
		Workers:    o.Workers,
		Metrics:    o.EMMetrics,
	}, [][]core.VirtualCounter{vcs})
	if err != nil {
		return nil, err
	}
	dist := res.Dist
	if f := sw.Filter(); f != nil {
		f.Entries(func(key []byte, count uint64, flagged bool) {
			total := count
			if flagged {
				total += cm.Estimate(key)
			}
			if total == 0 {
				return
			}
			for uint64(len(dist)) <= total {
				dist = append(dist, 0)
			}
			dist[total]++
		})
	}
	return dist, nil
}

// RunFig14 reproduces Fig. 14: normalized hardware resources and accuracy
// of FCM, FCM+TopK and CM(2/4/8)+TopK on the Tofino model.
func RunFig14(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.hwMemory()
	truthDist := trueDistribution(tr)
	truthH := trueEntropy(tr)
	emo := &fcm.EMOptions{Iterations: o.EMIterations, Workers: o.Workers}

	type variant struct {
		name string
		sw   *pisa.Switch
	}
	var variants []variant
	fcmSW, err := pisa.NewSwitch(pisa.SwitchConfig{
		Program: pisa.ProgramFCM, MemoryBytes: mem, Seed: uint32(o.Seed)})
	if err != nil {
		return nil, err
	}
	variants = append(variants, variant{"FCM", fcmSW})
	topkSW, err := pisa.NewSwitch(pisa.SwitchConfig{
		Program: pisa.ProgramFCMTopK, MemoryBytes: mem,
		TopKEntries: o.hwTopKEntries(), Seed: uint32(o.Seed)})
	if err != nil {
		return nil, err
	}
	variants = append(variants, variant{"FCM+TopK", topkSW})
	for _, d := range []int{2, 4, 8} {
		sw, err := pisa.NewSwitch(pisa.SwitchConfig{
			Program: pisa.ProgramCMTopK, MemoryBytes: mem, CMRows: d,
			TopKEntries: o.hwTopKEntries(), Seed: uint32(o.Seed)})
		if err != nil {
			return nil, fmt.Errorf("fig14 CM(%d): %w", d, err)
		}
		variants = append(variants, variant{fmt.Sprintf("CM(%d)+TopK", d), sw})
	}

	// Fig. 14a: resources normalized to FCM.
	res := &Table{ID: "fig14a", Title: "Hardware resources normalized to FCM",
		PaperNote: "paper: FCM+TopK 1.7x sALU, 2.0x stages; CM(8)+TopK 2.0x sALU, 1.5x stages",
		Headers:   []string{"variant", "SRAM", "sALU", "HashBits", "Stages"}}
	base := fcmSW.Allocation()
	baseTot := base.Totals()
	for _, v := range variants {
		tot := v.sw.Allocation().Totals()
		res.AddRow(v.name,
			float64(tot.SRAMBlocks)/float64(baseTot.SRAMBlocks),
			float64(tot.SALUs)/float64(baseTot.SALUs),
			float64(tot.HashBits)/float64(baseTot.HashBits),
			float64(v.sw.Allocation().NumStages())/float64(base.NumStages()))
	}

	// Ingest once for all.
	updaters := make([]sketch.Updater, len(variants))
	for i := range variants {
		updaters[i] = variants[i].sw
	}
	ingest(tr, updaters...)

	aae := &Table{ID: "fig14b", Title: "AAE of flow size on the Tofino model",
		PaperNote: "paper: FCM 2.87, FCM+TopK 2.73, CM(2/4/8)+TopK 6.98/6.65/8.25 — ≥50% lower for FCM",
		Headers:   []string{"variant", "AAE"}}
	cdf := &Table{ID: "fig14c", Title: "Absolute-error quantiles per variant (CDF summary)",
		PaperNote: "CM+TopK error concentrates on large flows (8-bit light counters overflow)",
		Headers:   []string{"variant", "p50", "p90", "p99", "max"}}
	wm := &Table{ID: "fig14d", Title: "Flow size distribution WMRE on the Tofino model",
		PaperNote: "paper: FCM 0.035, FCM+TopK 0.033, CM+TopK 0.070/0.167/0.604",
		Headers:   []string{"variant", "WMRE"}}
	ent := &Table{ID: "fig14e", Title: "Entropy RE on the Tofino model",
		PaperNote: "paper: FCM 0.002, FCM+TopK 0.001, CM+TopK 0.018/0.021/0.032",
		Headers:   []string{"variant", "RE"}}

	for _, v := range variants {
		_, a := flowErrors(tr, v.sw)
		aae.AddRow(v.name, a)
		truth := make([]float64, tr.NumFlows())
		est := make([]float64, tr.NumFlows())
		for i, key := range tr.Keys {
			truth[i] = float64(tr.Sizes[i])
			est[i] = float64(v.sw.Estimate(key.Bytes()))
		}
		errs := sortedAbsErrors(truth, est)
		q := func(p float64) float64 { return errs[int(p*float64(len(errs)-1))] }
		cdf.AddRow(v.name, q(0.50), q(0.90), q(0.99), errs[len(errs)-1])
		if sk := v.sw.Sketch(); sk != nil {
			dist, err := distFromSwitch(v.sw, emo, o.EMMetrics)
			if err != nil {
				return nil, err
			}
			wm.AddRow(v.name, metrics.WMRE(truthDist, dist))
			ent.AddRow(v.name, metrics.RE(truthH, fcm.EntropyOf(dist)))
		} else {
			// CM(d)+TopK estimates the FSD from its light counters via
			// the same degree-1 EM machinery.
			dist, err := cmSwitchDistribution(v.sw, o)
			if err != nil {
				return nil, err
			}
			wm.AddRow(v.name, metrics.WMRE(truthDist, dist))
			ent.AddRow(v.name, metrics.RE(truthH, fcm.EntropyOf(dist)))
		}
		o.logf("fig14: %s done", v.name)
	}
	return []*Table{res, aae, cdf, wm, ent}, nil
}

// hwGeometry solves the FCM geometry for the hardware memory budget minus
// the filter, mirroring what NewSwitch does internally.
func hwGeometry(o Options, withFilter bool) (pisa.FCMGeometry, pisa.TopKGeometry, error) {
	mem := o.hwMemory()
	tg := pisa.TopKGeometry{Entries: o.hwTopKEntries(), KeyBytes: 4}
	k := 8
	if withFilter {
		mem -= tg.Entries * 13
		k = 16
	}
	sk, err := core.New(core.Config{K: k, Trees: 2, MemoryBytes: mem})
	if err != nil {
		return pisa.FCMGeometry{}, tg, err
	}
	return pisa.FCMGeometry{
		Trees: 2, K: k, LeafWidth: sk.LeafWidth(), Widths: sk.Widths(), KeyBytes: 4,
	}, tg, nil
}

// RunTable4 reproduces Table 4: utilization percentages of FCM and
// FCM+TopK next to the published switch.p4 reference row. As in the paper,
// the optional cardinality extension (extra sALUs, TCAM, one stage) is
// reported separately in §8.3 and excluded here.
func RunTable4(o Options) ([]*Table, error) {
	o = o.withDefaults()
	fg, _, err := hwGeometry(o, false)
	if err != nil {
		return nil, err
	}
	fcmAlloc, err := pisa.CompileFCM(fg, pisa.DefaultLimits())
	if err != nil {
		return nil, err
	}
	tg16, tgeom, err := hwGeometry(o, true)
	if err != nil {
		return nil, err
	}
	topkAlloc, err := pisa.CompileFCMTopK(tg16, tgeom, pisa.DefaultLimits())
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "table4", Title: "Hardware resource consumption (fraction of pipeline)",
		PaperNote: "paper (1.3MB): FCM 9.38% SRAM, 12.50% sALU, 4 stages; FCM+TopK 9.48%, 20.83%, 8 stages",
		Headers:   []string{"resource", "switch.p4(paper)", "FCM-Sketch", "FCM+TopK"}}
	ref := pisa.SwitchP4Reference()
	uf := fcmAlloc.Utilization()
	ut := topkAlloc.Utilization()
	for _, r := range []string{"SRAM", "MatchCrossbar", "TCAM", "StatefulALUs", "HashBits", "VLIWActions"} {
		t.AddRow(r, pct(ref[r]), pct(uf[r]), pct(ut[r]))
	}
	t.AddRow("PhysicalStages", "12",
		fmt.Sprintf("%d", fcmAlloc.NumStages()),
		fmt.Sprintf("%d", topkAlloc.NumStages()))
	return []*Table{t}, nil
}

// RunTable5 reproduces Table 5: stage and stateful-ALU comparison with the
// published numbers for other Tofino measurement systems.
func RunTable5(o Options) ([]*Table, error) {
	o = o.withDefaults()
	fg, _, err := hwGeometry(o, false)
	if err != nil {
		return nil, err
	}
	fcmAlloc, err := pisa.CompileFCM(fg, pisa.DefaultLimits())
	if err != nil {
		return nil, err
	}
	tg16, tgeom, err := hwGeometry(o, true)
	if err != nil {
		return nil, err
	}
	topkAlloc, err := pisa.CompileFCMTopK(tg16, tgeom, pisa.DefaultLimits())
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "table5", Title: "Resource comparison with existing Tofino solutions",
		PaperNote: "FCM rows measured by this model; other rows are the paper's published figures",
		Headers:   []string{"solution", "measurement", "stages", "statefulALUs"}}
	t.AddRow("FCM-Sketch (measured)", "Generic",
		fmt.Sprintf("%d", fcmAlloc.NumStages()),
		pct(fcmAlloc.Utilization()["StatefulALUs"]))
	t.AddRow("FCM+TopK (measured)", "Generic",
		fmt.Sprintf("%d", topkAlloc.NumStages()),
		pct(topkAlloc.Utilization()["StatefulALUs"]))
	for _, r := range pisa.Table5Reference() {
		stages, salu := "BMv2 only", "BMv2 only"
		if r.Stages >= 0 {
			stages = fmt.Sprintf("%d", r.Stages)
			salu = pct(r.SALUFrac)
		}
		t.AddRow(r.Name+" (paper)", r.Measurement, stages, salu)
	}
	return []*Table{t}, nil
}

// RunAppC reproduces Appendix C: the TCAM cardinality table's size and
// additional error at the hardware scale.
func RunAppC(o Options) ([]*Table, error) {
	o = o.withDefaults()
	sw, err := pisa.NewSwitch(pisa.SwitchConfig{Program: pisa.ProgramFCM, MemoryBytes: o.hwMemory()})
	if err != nil {
		return nil, err
	}
	tab := sw.TCAM()
	w1 := sw.Sketch().LeafWidth()
	t := &Table{ID: "appc", Title: "TCAM cardinality lookup table (Appendix C)",
		PaperNote: "paper: ~two orders of magnitude fewer entries, additional error ≤0.2%",
		Headers:   []string{"quantity", "value"}}
	t.AddRow("leaf nodes w1", w1)
	t.AddRow("installed TCAM entries", tab.Entries())
	t.AddRow("compression", fmt.Sprintf("%.0fx", float64(w1)/float64(tab.Entries())))
	t.AddRow("max additional RE", tab.MaxRelativeError())
	return []*Table{t}, nil
}

// RunThm51 empirically validates Theorem 5.1: the count-query error bound
// holds with probability ≥ 1−δ.
func RunThm51(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	// Use a deliberately small sketch so errors are visible.
	mem := o.MemoryBytes() / 8
	f, err := newFCM(o, 8, mem)
	if err != nil {
		return nil, err
	}
	ingest(tr, f)

	c := f.Core()
	w1 := float64(c.LeafWidth())
	theta1 := float64(c.StageMax(0))
	eps := math.E / w1
	d := c.NumTrees()
	delta := math.Exp(-float64(d))
	norm1 := float64(tr.NumPackets())

	// Maximum virtual-counter degree D.
	maxDeg := 0
	for _, vcs := range c.VirtualCounters() {
		for _, vc := range vcs {
			if vc.Degree > maxDeg {
				maxDeg = vc.Degree
			}
		}
	}
	bound := eps * norm1
	if norm1 > w1*theta1 {
		bound += eps * float64(maxDeg-1) * (norm1 - w1*theta1)
	}

	violations := 0
	for i, k := range tr.Keys {
		est := float64(f.Estimate(k.Bytes()))
		if est > float64(tr.Sizes[i])+bound {
			violations++
		}
	}
	frac := float64(violations) / float64(tr.NumFlows())

	t := &Table{ID: "thm51", Title: "Empirical check of Theorem 5.1's error bound",
		PaperNote: "P[err > ε·|x|₁ + ε(D−1)(|x|₁−w1θ1)⁺] ≤ δ = e^(−d)",
		Headers:   []string{"quantity", "value"}}
	t.AddRow("w1", c.LeafWidth())
	t.AddRow("epsilon = e/w1", eps)
	t.AddRow("delta = e^-d", delta)
	t.AddRow("max degree D", maxDeg)
	t.AddRow("bound (packets)", bound)
	t.AddRow("violating flows", violations)
	t.AddRow("violation fraction", frac)
	t.AddRow("bound holds", fmt.Sprintf("%v", frac <= delta))
	return []*Table{t}, nil
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// sortedAbsErrors returns the sorted per-flow absolute errors.
func sortedAbsErrors(truth []float64, est []float64) []float64 {
	errs := make([]float64, len(truth))
	for i := range truth {
		errs[i] = math.Abs(est[i] - truth[i])
	}
	sort.Float64s(errs)
	return errs
}
