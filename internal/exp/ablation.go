package exp

import (
	"fmt"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/metrics"
)

// RunAblation isolates two design choices DESIGN.md calls out:
//
//  1. the overflow indicator — the paper's max-value marker versus a
//     dedicated flag bit per node (design intuition #2 of §3.1), and
//  2. the stage width profile — the paper's 8/16/32 bits versus shallower
//     and deeper alternatives at the same memory.
//
// Both run on the standard CAIDA-like workload at the harness memory.
func RunAblation(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.MemoryBytes()
	truthDist := trueDistribution(tr)

	build := func(widths []int, flagBit bool) (*core.Sketch, error) {
		return core.New(core.Config{
			K:                8,
			Trees:            2,
			Widths:           widths,
			MemoryBytes:      mem,
			Hash:             hashing.NewBobFamily(0xab1a ^ uint32(o.Seed)),
			FlagBitIndicator: flagBit,
		})
	}
	eval := func(s *core.Sketch) (are, aae, wmre float64, err error) {
		ingest(tr, s)
		are, aae = flowErrors(tr, s)
		res, err := em.Run(em.Config{
			W1: s.LeafWidth(), Theta1: s.StageMax(0),
			Iterations: o.EMIterations, Workers: o.Workers,
			Metrics: o.EMMetrics,
		}, s.VirtualCounters())
		if err != nil {
			return 0, 0, 0, err
		}
		return are, aae, metrics.WMRE(truthDist, res.Dist), nil
	}

	ind := &Table{ID: "ablation-indicator",
		Title:     "Overflow indicator: max-value marker vs dedicated flag bit (8-ary, 8/16/32)",
		PaperNote: "§3.1 intuition #2: the marker uses bit-space more efficiently than flag bits [19,60]",
		Headers:   []string{"indicator", "ARE", "AAE", "WMRE"}}
	for _, flagBit := range []bool{false, true} {
		s, err := build(core.DefaultWidths(), flagBit)
		if err != nil {
			return nil, err
		}
		are, aae, wm, err := eval(s)
		if err != nil {
			return nil, err
		}
		name := "max-value marker"
		if flagBit {
			name = "flag bit"
		}
		ind.AddRow(name, are, aae, wm)
		o.logf("ablation: indicator=%s done", name)
	}

	wid := &Table{ID: "ablation-widths",
		Title:     "Stage width profiles at equal memory (8-ary)",
		PaperNote: "the paper's 8/16/32 balances leaf count against overflow frequency",
		Headers:   []string{"widths", "leaf nodes", "ARE", "AAE", "WMRE"}}
	for _, widths := range [][]int{
		{8, 16, 32},
		{4, 8, 32},
		{4, 16, 32},
		{8, 32},
		{4, 8, 16, 32},
	} {
		s, err := build(widths, false)
		if err != nil {
			return nil, fmt.Errorf("ablation widths %v: %w", widths, err)
		}
		are, aae, wm, err := eval(s)
		if err != nil {
			return nil, err
		}
		wid.AddRow(fmt.Sprintf("%v", widths), s.LeafWidth(), are, aae, wm)
		o.logf("ablation: widths=%v done", widths)
	}

	cu := &Table{ID: "ablation-cu",
		Title:     "Conservative update across trees (the §7.1 extension the paper skips)",
		PaperNote: "§7.1: CU improves FCM about as much as it improves CM; not PISA-implementable",
		Headers:   []string{"update rule", "ARE", "AAE"}}
	for _, conservative := range []bool{false, true} {
		s, err := core.New(core.Config{
			K: 8, Trees: 2, MemoryBytes: mem,
			Hash:         hashing.NewBobFamily(0xab1a ^ uint32(o.Seed)),
			Conservative: conservative,
		})
		if err != nil {
			return nil, err
		}
		ingest(tr, s)
		are, aae := flowErrors(tr, s)
		name := "plain"
		if conservative {
			name = "conservative (FCM-CU)"
		}
		cu.AddRow(name, are, aae)
		o.logf("ablation: cu=%v done", conservative)
	}
	return []*Table{ind, wid, cu}, nil
}
