package exp

import (
	"fmt"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/cmsketch"
	"github.com/fcmsketch/fcm/internal/hashpipe"
	"github.com/fcmsketch/fcm/internal/hll"
	"github.com/fcmsketch/fcm/internal/pyramid"
)

// fig6Ks is the arity sweep of §7.3.
var fig6Ks = []int{2, 4, 8, 16, 32}

// newFCM builds a k-ary FCM sketch at the harness memory.
func newFCM(o Options, k int, mem int) (*fcm.Sketch, error) {
	return fcm.NewSketch(fcm.Config{
		MemoryBytes: mem,
		K:           k,
		Seed:        uint32(o.Seed),
	})
}

// newFCMTopK builds a k-ary FCM+TopK at the harness memory.
func newFCMTopK(o Options, k int, mem int) (*fcm.TopKSketch, error) {
	return fcm.NewTopK(fcm.TopKConfig{
		Config:      fcm.Config{MemoryBytes: mem, K: k, Seed: uint32(o.Seed)},
		TopKEntries: o.TopKEntries(mem),
	})
}

// RunFig6 reproduces Fig. 6: accuracy of the data-plane queries (flow size
// ARE/AAE, heavy-hitter F1, cardinality RE) across k-ary configurations,
// against the CM, CU, PCM, HashPipe and HyperLogLog baselines.
func RunFig6(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.MemoryBytes()
	thr := o.HHThreshold()
	o.logf("fig6: %d packets, %d flows, %dB memory, HH threshold %d",
		tr.NumPackets(), tr.NumFlows(), mem, thr)

	// Baselines (k-independent).
	cm, err := cmsketch.New(cmsketch.Config{MemoryBytes: mem, Rows: 3})
	if err != nil {
		return nil, err
	}
	cu, err := cmsketch.New(cmsketch.Config{MemoryBytes: mem, Rows: 3, Conservative: true})
	if err != nil {
		return nil, err
	}
	pcm, err := pyramid.New(pyramid.Config{MemoryBytes: mem})
	if err != nil {
		return nil, err
	}
	hp, err := hashpipe.New(hashpipe.Config{MemoryBytes: mem, Stages: 6})
	if err != nil {
		return nil, err
	}
	hl, err := hll.New(hll.Config{MemoryBytes: mem})
	if err != nil {
		return nil, err
	}
	ingest(tr, cm, cu, pcm, hp, hl)
	cmARE, cmAAE := flowErrors(tr, cm)
	cuARE, cuAAE := flowErrors(tr, cu)
	pcmARE, pcmAAE := flowErrors(tr, pcm)
	hpF1 := hhF1BySet(tr, hp.HeavyHitters(thr), thr)
	hllRE := cardRE(tr, hl.Cardinality())

	are := &Table{ID: "fig6a", Title: "ARE of flow size vs k-ary trees",
		PaperNote: "16-ary FCM and FCM+TopK: 88% lower ARE than CM, 53% lower than PCM",
		Headers:   []string{"k", "CM", "CU", "PCM", "FCM", "FCM+TopK"}}
	aae := &Table{ID: "fig6b", Title: "AAE of flow size vs k-ary trees",
		PaperNote: "16-ary: 84%/86% lower AAE than CM; 53%/60% lower than PCM",
		Headers:   []string{"k", "CM", "CU", "PCM", "FCM", "FCM+TopK"}}
	f1 := &Table{ID: "fig6c", Title: "Heavy-hitter F1 vs k-ary trees",
		PaperNote: "all near 1; FCM dips at k=32, FCM+TopK stays high",
		Headers:   []string{"k", "HashPipe", "FCM", "FCM+TopK"}}
	card := &Table{ID: "fig6d", Title: "Cardinality RE vs k-ary trees",
		PaperNote: "RE decreases with k for FCM and FCM+TopK (~1e-3 band)",
		Headers:   []string{"k", "HLL", "FCM", "FCM+TopK"}}

	for _, k := range fig6Ks {
		f, err := newFCM(o, k, mem)
		if err != nil {
			return nil, fmt.Errorf("fig6 k=%d: %w", k, err)
		}
		ft, err := newFCMTopK(o, k, mem)
		if err != nil {
			return nil, fmt.Errorf("fig6 k=%d topk: %w", k, err)
		}
		ingest(tr, f, ft)

		fARE, fAAE := flowErrors(tr, f)
		tARE, tAAE := flowErrors(tr, ft)
		are.AddRow(k, cmARE, cuARE, pcmARE, fARE, tARE)
		aae.AddRow(k, cmAAE, cuAAE, pcmAAE, fAAE, tAAE)
		f1.AddRow(k, hpF1, hhF1ByQuery(tr, f, thr), hhF1ByQuery(tr, ft, thr))
		card.AddRow(k, hllRE, cardRE(tr, f.Cardinality()), cardRE(tr, ft.Cardinality()))
		o.logf("fig6: k=%d done", k)
	}
	return []*Table{are, aae, f1, card}, nil
}
