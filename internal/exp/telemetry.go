package exp

import (
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/trace"
)

// RunTelemetryOverhead measures what the sketch's self-telemetry costs on
// the ingest hot path: the same trace is replayed through an
// uninstrumented sketch and through one with core.Stats attached (the
// per-update atomic counters behind fcm_sketch_updates_total and the
// promotion/saturation series). The overhead contract is ≤5%; scrape-side
// work (occupancy scans, cardinality) runs off the hot path and is not
// part of this number.
func RunTelemetryOverhead(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	cfg := fcm.Config{MemoryBytes: o.MemoryBytes(), Seed: uint32(o.Seed)}

	// Interleave repetitions so frequency scaling and cache warmth hit
	// both variants evenly, and keep the best run of each (the standard
	// microbenchmark treatment for throughput).
	const reps = 3
	bestOff, bestOn := 0.0, 0.0
	for r := 0; r < reps; r++ {
		off, err := replayMpps(tr, cfg, false)
		if err != nil {
			return nil, err
		}
		on, err := replayMpps(tr, cfg, true)
		if err != nil {
			return nil, err
		}
		if off > bestOff {
			bestOff = off
		}
		if on > bestOn {
			bestOn = on
		}
		o.logf("telemetry: rep %d: %.2f Mpps off, %.2f Mpps on", r+1, off, on)
	}

	overhead := (bestOff - bestOn) / bestOff * 100
	t := &Table{ID: "telemetry",
		Title:     "Ingest throughput with and without sketch self-telemetry",
		PaperNote: "observability add-on: lock-free per-update counters, scrape-time scans",
		Headers:   []string{"variant", "Mpps", "overhead %"}}
	t.AddRow("uninstrumented", bestOff, 0.0)
	t.AddRow("instrumented", bestOn, overhead)
	return []*Table{t}, nil
}

// replayMpps replays the trace through one fresh sketch and returns the
// ingest rate in Mpps; instrumented attaches core.Stats first.
func replayMpps(tr *trace.Trace, cfg fcm.Config, instrumented bool) (float64, error) {
	s, err := fcm.NewSketch(cfg)
	if err != nil {
		return 0, err
	}
	if instrumented {
		s.Core().SetStats(core.NewStats(s.Core().Depth()))
	}
	start := time.Now()
	tr.ForEachPacket(func(_ int, key []byte) { s.Update(key, 1) })
	return float64(tr.NumPackets()) / time.Since(start).Seconds() / 1e6, nil
}
