// Package exp is the experiment harness: one runner per table and figure
// of the FCM paper's evaluation (§7 software, §8 hardware). Each runner
// regenerates the same rows/series the paper reports, printed next to the
// paper's own numbers where the paper states them.
//
// Workloads follow §7.2: CAIDA-like traces of ~20M packets and ~0.5M
// source-IP flows against 1.5MB sketches. Because that takes minutes per
// figure, the harness scales the trace and the memory together by
// Options.Scale (default 0.1); the error *ratios* between schemes — the
// shape of every figure — are preserved under this joint scaling, and
// Scale=1 reproduces the paper-scale run.
package exp

import (
	"fmt"
	"io"
	"math"

	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/exact"
	"github.com/fcmsketch/fcm/internal/metrics"
	"github.com/fcmsketch/fcm/internal/sketch"
	"github.com/fcmsketch/fcm/internal/trace"
)

// Options configures a harness run.
type Options struct {
	// Scale multiplies the paper's trace size and memory (default 0.1).
	Scale float64
	// Seed drives trace generation and hashing.
	Seed int64
	// EMIterations bounds the EM rounds (default 5, where the paper
	// observes convergence).
	EMIterations int
	// Workers is the EM parallelism (0 = all cores).
	Workers int
	// Shards bounds the shard sweep of the shardedspeed experiment
	// (default 8: the sweep covers 1, 2, 4, 8 shards).
	Shards int
	// BatchSize is the keys-per-UpdateBatch of the hotpath experiment's
	// batched variants (default 256).
	BatchSize int
	// HashMode selects the sketch index derivation for the hotpath
	// experiment: "onepass" (default), "pertree", or "both" to compare.
	HashMode string
	// Log receives progress lines; nil discards them.
	Log io.Writer
	// EMMetrics, when non-nil, instruments every EM run the experiments
	// perform (iteration counts and latency on fcmbench's -debug-addr).
	EMMetrics *em.Metrics
}

// withDefaults normalizes the options.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 31337
	}
	if o.EMIterations <= 0 {
		o.EMIterations = 5
	}
	return o
}

// Paper-scale constants (§7.2).
const (
	paperPackets     = 20_000_000
	paperMemoryBytes = 1_500_000
	paperHHFraction  = 0.0005 // 10K packets of 20M
	paperTopKEntries = 4096
)

// Packets returns the scaled trace size.
func (o Options) Packets() int { return int(paperPackets * o.Scale) }

// MemoryBytes returns the scaled default memory (the paper's 1.5MB).
func (o Options) MemoryBytes() int { return int(paperMemoryBytes * o.Scale) }

// HHThreshold returns the scaled heavy-hitter threshold (0.05% of trace).
func (o Options) HHThreshold() uint64 {
	return uint64(math.Round(float64(o.Packets()) * paperHHFraction))
}

// TopKEntries returns the FCM+TopK filter size. The paper's 4096 entries
// are NOT scaled down with the trace: the number of heavy hitters above a
// fixed trace fraction grows only logarithmically with trace size, so a
// proportionally shrunk filter would be overloaded in a way the paper's
// never is. The entry count is clamped so the filter claims at most ~1/8
// of the memory budget mem.
func (o Options) TopKEntries(mem int) int {
	n := paperTopKEntries
	if cap := mem / (8 * 13); n > cap {
		n = cap
	}
	if n < 16 {
		n = 16
	}
	return n
}

// logf writes a progress line.
func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// caidaTrace generates the scaled CAIDA-like workload.
func (o Options) caidaTrace() (*trace.Trace, error) {
	return trace.CAIDALike(o.Packets(), o.Seed)
}

// ---------------------------------------------------------------------------
// Evaluation helpers shared by the runners.
// ---------------------------------------------------------------------------

// ingest streams every packet of tr into each structure, in arrival order.
func ingest(tr *trace.Trace, updaters ...sketch.Updater) {
	tr.ForEachPacket(func(_ int, key []byte) {
		for _, u := range updaters {
			u.Update(key, 1)
		}
	})
}

// flowErrors queries every flow and returns (ARE, AAE) against the truth.
func flowErrors(tr *trace.Trace, est sketch.Estimator) (are, aae float64) {
	truth := make([]float64, tr.NumFlows())
	got := make([]float64, tr.NumFlows())
	for i, k := range tr.Keys {
		truth[i] = float64(tr.Sizes[i])
		got[i] = float64(est.Estimate(k.Bytes()))
	}
	return metrics.ARE(truth, got), metrics.AAE(truth, got)
}

// trueHH returns the ground-truth heavy-hitter set keyed by raw key bytes.
func trueHH(tr *trace.Trace, threshold uint64) map[string]uint64 {
	hh := make(map[string]uint64)
	for i, k := range tr.Keys {
		if uint64(tr.Sizes[i]) >= threshold {
			hh[string(k.Bytes())] = uint64(tr.Sizes[i])
		}
	}
	return hh
}

// hhF1ByQuery scores candidate-query heavy-hitter detection: every flow key
// is queried and reported when the estimate crosses the threshold (how CM,
// FCM and PCM detect heavy hitters).
func hhF1ByQuery(tr *trace.Trace, est sketch.Estimator, threshold uint64) float64 {
	truth := trueHH(tr, threshold)
	reported := make(map[string]uint64)
	for _, k := range tr.Keys {
		if v := est.Estimate(k.Bytes()); v >= threshold {
			reported[string(k.Bytes())] = v
		}
	}
	return metrics.F1Sets(truth, reported)
}

// hhF1BySet scores set-reporting detectors (TopK variants, HashPipe).
func hhF1BySet(tr *trace.Trace, reported map[string]uint64, threshold uint64) float64 {
	return metrics.F1Sets(trueHH(tr, threshold), reported)
}

// trueDistribution computes the exact flow-size distribution of the trace.
func trueDistribution(tr *trace.Trace) []float64 {
	dist := make([]float64, tr.MaxSize()+1)
	for _, s := range tr.Sizes {
		dist[s]++
	}
	return dist
}

// trueEntropy computes the exact flow entropy.
func trueEntropy(tr *trace.Trace) float64 {
	t := exact.New()
	for i, k := range tr.Keys {
		t.UpdateKey(k, uint64(tr.Sizes[i]))
	}
	return t.Entropy()
}

// cardRE returns the relative error of a cardinality estimate.
func cardRE(tr *trace.Trace, est float64) float64 {
	return metrics.RE(float64(tr.NumFlows()), est)
}

// keyBytesOf converts trace keys into a candidate list.
func keyBytesOf(tr *trace.Trace) [][]byte {
	out := make([][]byte, tr.NumFlows())
	for i := range tr.Keys {
		out[i] = tr.Keys[i].Bytes()
	}
	return out
}

