package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one result table: a named grid of string cells with a note
// recording what the paper reports for the same quantity.
type Table struct {
	// ID is the experiment identifier ("fig6a", "table4", ...).
	ID string
	// Title describes the table.
	Title string
	// PaperNote quotes what the paper reports, for side-by-side reading.
	PaperNote string
	// Headers and Rows hold the grid.
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row; values are rendered with %v and floats
// with 4 significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders a float compactly with enough precision for error
// metrics spanning 1e-4 .. 1e3.
func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.001 && v > -0.001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.PaperNote != "" {
		if _, err := fmt.Fprintf(w, "paper: %s\n", t.PaperNote); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
