package exp

import (
	"errors"
	"math/rand"
	"time"

	"github.com/fcmsketch/fcm/internal/collect"
	"github.com/fcmsketch/fcm/internal/core"
)

// errGeometry flags an impossible mismatch inside the measured loops.
var errGeometry = errors.New("foldpath: geometry mismatch")

// foldFleetSize matches the aggregator fleet scenario: members folded into
// the aggregate per export window.
const foldFleetSize = 208

// RunFoldpath measures the fold plane — the paths that merge and compare
// sketches rather than ingest packets: pairwise merge and the 208-member
// fleet fold through both the word-wide (SWAR) kernel and the scalar
// reference walk, plus the snapshot diff and register-equality scans the
// collection plane runs per poll. All variants fold the same loaded
// sketches on the paper's default {8,16,32} geometry, so the ratio column
// isolates the kernel, not the workload.
func RunFoldpath(o Options) ([]*Table, error) {
	o = o.withDefaults()
	cfg := core.Config{K: 8, Trees: 2, LeafWidth: 4096, Widths: []int{8, 16, 32}}
	mk := func() (*core.Sketch, error) { return core.New(cfg) }

	// Two loaded peers for the pair merge, a fleet of lightly-loaded
	// members for the window fold, and a persistent accumulator.
	rng := rand.New(rand.NewSource(o.Seed))
	key := make([]byte, 4)
	load := func(sk *core.Sketch, n int) {
		for i := 0; i < n; i++ {
			k := uint32(rng.ExpFloat64() * 700)
			key[0], key[1], key[2], key[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
			sk.Update(key, 1)
		}
	}
	acc, err := mk()
	if err != nil {
		return nil, err
	}
	x, err := mk()
	if err != nil {
		return nil, err
	}
	y, err := mk()
	if err != nil {
		return nil, err
	}
	load(x, 30000)
	load(y, 30000)
	members := make([]*core.Sketch, foldFleetSize)
	for m := range members {
		sk, err := mk()
		if err != nil {
			return nil, err
		}
		load(sk, 2000)
		members[m] = sk
	}

	// measure runs op repeatedly until enough wall time has accumulated to
	// trust the mean, returning ns/op.
	measure := func(op func() error) (float64, error) {
		const minRun = 200 * time.Millisecond
		iters, elapsed := 0, time.Duration(0)
		for elapsed < minRun {
			start := time.Now()
			if err := op(); err != nil {
				return 0, err
			}
			elapsed += time.Since(start)
			iters++
		}
		return float64(elapsed.Nanoseconds()) / float64(iters), nil
	}

	t := &Table{ID: "foldpath", Title: "Fold plane: word-wide (SWAR) vs scalar (ns/op)",
		PaperNote: "exact lossless merge (§5) at fleet scale; default {8,16,32} geometry, K=8, 2 trees",
		Headers:   []string{"operation", "scalar ns/op", "word ns/op", "speedup"}}

	addPair := func(name string, scalar, word func() error) error {
		sns, err := measure(scalar)
		if err != nil {
			return err
		}
		wns, err := measure(word)
		if err != nil {
			return err
		}
		t.AddRow(name, sns, wns, sns/wns)
		o.logf("foldpath: %s done", name)
		return nil
	}

	if err := addPair("merge pair",
		func() error {
			acc.Reset()
			if err := acc.MergeScalar(x); err != nil {
				return err
			}
			return acc.MergeScalar(y)
		},
		func() error {
			acc.Reset()
			if err := acc.Merge(x); err != nil {
				return err
			}
			return acc.Merge(y)
		}); err != nil {
		return nil, err
	}

	if err := addPair("absorb fleet (208)",
		func() error {
			acc.Reset()
			for _, m := range members {
				if err := acc.MergeScalar(m); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			acc.Reset()
			for _, m := range members {
				if err := acc.Merge(m); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}

	// Per-poll comparison paths: snapshot diff between adjacent polls and
	// the register-equality scan (word-compare prescreen on equal state).
	base := collect.TakeSnapshot(x)
	load(x, 200)
	cur := collect.TakeSnapshot(x)
	diffNs, err := measure(func() error {
		if _, ok := collect.DiffSnapshots(base, cur); !ok {
			return errGeometry
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("diff snapshots (~0.5% changed)", "-", diffNs, "-")

	clone := x.Clone()
	eqNs, err := measure(func() error {
		if !x.EqualRegisters(clone) {
			return errGeometry
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.AddRow("equal registers (identical)", "-", eqNs, "-")
	return []*Table{t}, nil
}
