package exp

import (
	"sync"
	"time"

	"github.com/fcmsketch/fcm"
)

// RunShardedSpeed measures multi-writer ingest throughput of the sharded
// engine across a shard sweep (1, 2, 4, … up to Options.Shards, default 8):
// one goroutine per shard replays its slice of the trace through
// UpdateShard, and the closing exact-merge snapshot is checked bit-identical
// to a serial replay — the §5 merge property that makes sharding lossless.
// Speedup over the 1-shard row depends on available cores; the merge check
// does not.
func RunShardedSpeed(o Options) ([]*Table, error) {
	o = o.withDefaults()
	maxShards := o.Shards
	if maxShards <= 0 {
		maxShards = 8
	}
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	cfg := fcm.Config{MemoryBytes: o.MemoryBytes(), Seed: uint32(o.Seed)}

	// Serial reference for both the speedup baseline and the merge check.
	serial, err := fcm.NewSketch(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	tr.ForEachPacket(func(_ int, key []byte) { serial.Update(key, 1) })
	serialSec := time.Since(start).Seconds()
	serialMpps := float64(tr.NumPackets()) / serialSec / 1e6
	o.logf("shardedspeed: serial baseline %.2f Mpps", serialMpps)

	t := &Table{ID: "shardedspeed",
		Title:     "Sharded concurrent ingest throughput and exact-merge check",
		PaperNote: "§5: shard merge is exact, so parallel ingest is bit-identical to serial",
		Headers:   []string{"shards", "Mpps", "speedup", "bit-identical"}}
	t.AddRow(0, serialMpps, 1.0, true) // shards=0 row: the plain serial Sketch

	for shards := 1; shards <= maxShards; shards *= 2 {
		sh, err := fcm.NewSharded(cfg, shards)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				i := 0
				tr.ForEachPacket(func(_ int, key []byte) {
					if i%shards == w {
						sh.UpdateShard(w, key, 1)
					}
					i++
				})
			}(w)
		}
		wg.Wait()
		sec := time.Since(start).Seconds()
		mpps := float64(tr.NumPackets()) / sec / 1e6
		t.AddRow(shards, mpps, mpps/serialMpps, registersEqual(sh.Snapshot(), serial))
		o.logf("shardedspeed: %d shards done (%.2f Mpps)", shards, mpps)
	}
	return []*Table{t}, nil
}

// registersEqual reports whether two sketches hold bit-identical registers.
func registersEqual(a, b *fcm.Sketch) bool {
	ac, bc := a.Core(), b.Core()
	if ac.NumTrees() != bc.NumTrees() || ac.Depth() != bc.Depth() {
		return false
	}
	for tree := 0; tree < ac.NumTrees(); tree++ {
		for l := 0; l < ac.Depth(); l++ {
			av, bv := ac.StageValues(tree, l), bc.StageValues(tree, l)
			if len(av) != len(bv) {
				return false
			}
			for i := range av {
				if av[i] != bv[i] {
					return false
				}
			}
		}
	}
	return true
}
