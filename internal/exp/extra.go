package exp

import (
	"fmt"
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/cmsketch"
	"github.com/fcmsketch/fcm/internal/elastic"
	"github.com/fcmsketch/fcm/internal/exact"
	"github.com/fcmsketch/fcm/internal/hashpipe"
	"github.com/fcmsketch/fcm/internal/metrics"
	"github.com/fcmsketch/fcm/internal/pyramid"
	"github.com/fcmsketch/fcm/internal/sketch"
	"github.com/fcmsketch/fcm/internal/univmon"
)

// RunHeavyChange evaluates heavy-change detection across adjacent windows
// (§4.4). The paper omits the figure with a footnote — "the result is very
// close to that of heavy hitter detection" — which this experiment checks:
// the F1 of detected heavy changes should sit near Fig. 6c's F1 band.
//
// A stationary trace split in half has no heavy changes, so the second
// window injects realistic ones: a set of previously-small flows burst far
// past the threshold and a set of heavy flows go quiet.
func RunHeavyChange(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	thr := o.HHThreshold() / 2 // per-window threshold
	if thr < 1 {
		thr = 1
	}

	// Per-flow counts of the two windows: an even split, then bursts and
	// drops in window 2.
	n := tr.NumFlows()
	w1 := make([]uint64, n)
	w2 := make([]uint64, n)
	for i, s := range tr.Sizes {
		w1[i] = uint64(s) / 2
		w2[i] = uint64(s) - w1[i]
	}
	const bursts, drops = 15, 10
	for b := 0; b < bursts; b++ {
		// Mice from the middle of the rank order burst to ~4x threshold.
		w2[n/2+b*7] += 4 * thr
	}
	for d := 0; d < drops && d < n; d++ {
		if w2[d] > thr { // heavy head flows go quiet
			w2[d] = w2[d] / 20
		}
	}

	// Exact heavy changes.
	prevT, curT := exact.New(), exact.New()
	for i, kk := range tr.Keys {
		if w1[i] > 0 {
			prevT.UpdateKey(kk, w1[i])
		}
		if w2[i] > 0 {
			curT.UpdateKey(kk, w2[i])
		}
	}
	truth := exact.HeavyChanges(prevT, curT, thr)
	truthSet := make(map[string]bool, len(truth))
	for kk := range truth {
		truthSet[string(kk.Bytes())] = true
	}
	o.logf("hc: %d true heavy changes at threshold %d", len(truthSet), thr)

	t := &Table{ID: "hc", Title: "Heavy-change detection F1 across adjacent windows",
		PaperNote: "footnote 4: results are very close to heavy-hitter detection (Fig. 6c)",
		Headers:   []string{"k", "FCM F1", "FCM+TopK F1"}}

	candidates := keyBytesOf(tr)
	for _, k := range fig6Ks {
		fw, err := fcm.NewFramework(fcm.Config{
			MemoryBytes: o.MemoryBytes(), K: k, Seed: uint32(o.Seed)})
		if err != nil {
			return nil, err
		}
		for i, kk := range tr.Keys {
			if w1[i] > 0 {
				fw.Update(kk.Bytes(), w1[i])
			}
		}
		fw.Rotate()
		for i, kk := range tr.Keys {
			if w2[i] > 0 {
				fw.Update(kk.Bytes(), w2[i])
			}
		}
		got, err := fw.HeavyChanges(candidates, thr)
		if err != nil {
			return nil, err
		}
		gotSet := make(map[string]bool, len(got))
		for _, c := range got {
			gotSet[c.Key] = true
		}
		fcmF1 := metrics.F1Sets(truthSet, gotSet)

		// FCM+TopK via two independent window sketches.
		tk1, err := newFCMTopK(o, 16, o.MemoryBytes())
		if err != nil {
			return nil, err
		}
		tk2, err := newFCMTopK(o, 16, o.MemoryBytes())
		if err != nil {
			return nil, err
		}
		for i, kk := range tr.Keys {
			if w1[i] > 0 {
				tk1.Update(kk.Bytes(), w1[i])
			}
			if w2[i] > 0 {
				tk2.Update(kk.Bytes(), w2[i])
			}
		}
		tkSet := make(map[string]bool)
		for _, key := range candidates {
			d := int64(tk2.Estimate(key)) - int64(tk1.Estimate(key))
			if d >= int64(thr) || -d >= int64(thr) {
				tkSet[string(key)] = true
			}
		}
		t.AddRow(k, fcmF1, metrics.F1Sets(truthSet, tkSet))
		o.logf("hc: k=%d done", k)
	}
	return []*Table{t}, nil
}

// RunSpeed measures single-core ingest throughput (packets/sec) for every
// structure at the harness memory — the software side of §8.3's
// accuracy-complexity trade-off (on PISA all run at line rate; in software
// FCM costs more hashes than CM but stays in the same order).
func RunSpeed(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.MemoryBytes()

	type variant struct {
		name string
		u    sketch.Updater
	}
	var variants []variant
	add := func(name string, u sketch.Updater, err error) error {
		if err != nil {
			return fmt.Errorf("speed: %s: %w", name, err)
		}
		variants = append(variants, variant{name, u})
		return nil
	}
	f, err := newFCM(o, 8, mem)
	if err := add("FCM", f, err); err != nil {
		return nil, err
	}
	ft, err := newFCMTopK(o, 16, mem)
	if err := add("FCM+TopK", ft, err); err != nil {
		return nil, err
	}
	cm, err := cmsketch.New(cmsketch.Config{MemoryBytes: mem, Rows: 3})
	if err := add("CM", cm, err); err != nil {
		return nil, err
	}
	cu, err := cmsketch.New(cmsketch.Config{MemoryBytes: mem, Rows: 3, Conservative: true})
	if err := add("CU", cu, err); err != nil {
		return nil, err
	}
	pcm, err := pyramid.New(pyramid.Config{MemoryBytes: mem})
	if err := add("PCM", pcm, err); err != nil {
		return nil, err
	}
	hp, err := hashpipe.New(hashpipe.Config{MemoryBytes: mem, Stages: 6})
	if err := add("HashPipe", hp, err); err != nil {
		return nil, err
	}
	el, err := elastic.New(elastic.Config{MemoryBytes: mem, TopKLevels: 4,
		TopKEntries: max(16, mem/(4*4*13))})
	if err := add("Elastic", el, err); err != nil {
		return nil, err
	}
	umLevels := 16
	if cap := mem / (3 * 136); umLevels > cap {
		umLevels = cap
	}
	um, err := univmon.New(univmon.Config{MemoryBytes: mem, Levels: umLevels,
		HeapSize: max(8, mem/(2*umLevels*12))})
	if err := add("UnivMon", um, err); err != nil {
		return nil, err
	}

	t := &Table{ID: "speed", Title: "Single-core ingest throughput (million packets/sec)",
		PaperNote: "§8.3: FCM needs more sequential work than CM in software; on PISA both run at line rate",
		Headers:   []string{"structure", "Mpps"}}
	for _, v := range variants {
		start := time.Now()
		tr.ForEachPacket(func(_ int, key []byte) { v.u.Update(key, 1) })
		sec := time.Since(start).Seconds()
		t.AddRow(v.name, float64(tr.NumPackets())/sec/1e6)
		o.logf("speed: %s done", v.name)
	}
	return []*Table{t}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
