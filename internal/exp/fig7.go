package exp

import (
	"fmt"
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/metrics"
	"github.com/fcmsketch/fcm/internal/mrac"
	"github.com/fcmsketch/fcm/internal/trace"
)

// RunFig7 reproduces Fig. 7: control-plane query accuracy (flow-size
// distribution WMRE, entropy RE) across k-ary configurations vs MRAC.
func RunFig7(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.MemoryBytes()
	truthDist := trueDistribution(tr)
	truthH := trueEntropy(tr)
	o.logf("fig7: true entropy %.4f, max flow %d", truthH, tr.MaxSize())

	mr, err := mrac.New(mrac.Config{MemoryBytes: mem})
	if err != nil {
		return nil, err
	}
	ingest(tr, mr)
	mrRes, err := mr.EstimateDistribution(o.EMIterations, o.Workers, nil)
	if err != nil {
		return nil, err
	}
	mrWMRE := metrics.WMRE(truthDist, mrRes.Dist)
	mrHRE := metrics.RE(truthH, fcm.EntropyOf(mrRes.Dist))

	wm := &Table{ID: "fig7a", Title: "Flow size distribution WMRE vs k-ary trees",
		PaperNote: "16-ary FCM/FCM+TopK: 59%/62% lower WMRE than MRAC; MRAC wins only at k=2",
		Headers:   []string{"k", "MRAC", "FCM", "FCM+TopK"}}
	en := &Table{ID: "fig7b", Title: "Entropy RE vs k-ary trees",
		PaperNote: "16-ary: 52%/80% lower RE than MRAC; FCM entropy RE rises again at k=32",
		Headers:   []string{"k", "MRAC", "FCM", "FCM+TopK"}}

	for _, k := range fig6Ks {
		f, err := newFCM(o, k, mem)
		if err != nil {
			return nil, fmt.Errorf("fig7 k=%d: %w", k, err)
		}
		ft, err := newFCMTopK(o, k, mem)
		if err != nil {
			return nil, fmt.Errorf("fig7 k=%d topk: %w", k, err)
		}
		ingest(tr, f, ft)
		emo := &fcm.EMOptions{Iterations: o.EMIterations, Workers: o.Workers}
		fd, err := f.FlowSizeDistribution(emo)
		if err != nil {
			return nil, err
		}
		td, err := ft.FlowSizeDistribution(emo)
		if err != nil {
			return nil, err
		}
		wm.AddRow(k, mrWMRE, metrics.WMRE(truthDist, fd), metrics.WMRE(truthDist, td))
		en.AddRow(k, mrHRE,
			metrics.RE(truthH, fcm.EntropyOf(fd)),
			metrics.RE(truthH, fcm.EntropyOf(td)))
		o.logf("fig7: k=%d done", k)
	}
	return []*Table{wm, en}, nil
}

// RunFig8 reproduces Fig. 8: the histogram of non-empty virtual counters
// per degree, for FCM and FCM+TopK across k, averaged over hash seeds.
func RunFig8(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.MemoryBytes()
	const seeds = 10 // the paper averages 100 seeds; 10 keeps runs short
	const maxDeg = 8

	build := func(topk bool) (*Table, error) {
		name := "FCM"
		if topk {
			name = "FCM+TopK"
		}
		t := &Table{
			ID:    "fig8",
			Title: fmt.Sprintf("Avg non-empty virtual counters per degree (%s, %d seeds)", name, seeds),
			PaperNote: "counts fall roughly exponentially with degree; " +
				"degree>2 counters number under 100 (FCM) / 50 (FCM+TopK) at 16-ary",
			Headers: []string{"degree", "2-ary", "4-ary", "8-ary", "16-ary", "32-ary"},
		}
		acc := make(map[int][]float64) // k -> per-degree sums
		for _, k := range fig6Ks {
			acc[k] = make([]float64, maxDeg+1)
			for s := 0; s < seeds; s++ {
				opt := o
				opt.Seed = o.Seed + int64(s)
				var sk *core.Sketch
				if topk {
					ft, err := newFCMTopK(opt, k, mem)
					if err != nil {
						return nil, err
					}
					ingest(tr, ft)
					sk = ft.Sketch().Core()
				} else {
					f, err := newFCM(opt, k, mem)
					if err != nil {
						return nil, err
					}
					ingest(tr, f)
					sk = f.Core()
				}
				for _, vcs := range sk.VirtualCounters() {
					h := core.DegreeHistogram(vcs)
					for d := 1; d < len(h) && d <= maxDeg; d++ {
						acc[k][d] += float64(h[d])
					}
				}
			}
			o.logf("fig8: %s k=%d done", name, k)
		}
		div := float64(seeds * 2) // seeds × trees
		for d := 1; d <= maxDeg; d++ {
			t.AddRow(d,
				acc[2][d]/div, acc[4][d]/div, acc[8][d]/div,
				acc[16][d]/div, acc[32][d]/div)
		}
		return t, nil
	}

	plain, err := build(false)
	if err != nil {
		return nil, err
	}
	withTopK, err := build(true)
	if err != nil {
		return nil, err
	}
	return []*Table{plain, withTopK}, nil
}

// RunFig9 reproduces Fig. 9: (a) per-iteration EM runtime for MRAC, the
// single-threaded FCM(s) and the multi-threaded FCM(m); (b) WMRE as a
// function of EM iterations for FCM vs MRAC.
func RunFig9(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.MemoryBytes()
	truthDist := trueDistribution(tr)

	// 8-ary per §7.3.2's runtime evaluation.
	f, err := newFCM(o, 8, mem)
	if err != nil {
		return nil, err
	}
	mr, err := mrac.New(mrac.Config{MemoryBytes: mem})
	if err != nil {
		return nil, err
	}
	ingest(tr, f, mr)

	// The paper times the EM iterations themselves; convert once and time
	// em.Run so the one-off conversion/grouping cost is excluded.
	fcmVCs := f.Core().VirtualCounters()
	fcmW1 := f.Core().LeafWidth()
	fcmTheta := f.Core().StageMax(0)
	mrVCs := mr.VirtualCounters()

	const iters = 5
	timePerIter := func(run func() error) (float64, error) {
		start := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds() / float64(iters), nil
	}
	mracSec, err := timePerIter(func() error {
		_, err := em.Run(em.Config{W1: mr.Width(), Iterations: iters, Workers: 1, Metrics: o.EMMetrics},
			[][]core.VirtualCounter{mrVCs})
		return err
	})
	if err != nil {
		return nil, err
	}
	fcmSingle, err := timePerIter(func() error {
		_, err := em.Run(em.Config{W1: fcmW1, Theta1: fcmTheta, Iterations: iters, Workers: 1, Metrics: o.EMMetrics}, fcmVCs)
		return err
	})
	if err != nil {
		return nil, err
	}
	fcmMulti, err := timePerIter(func() error {
		_, err := em.Run(em.Config{W1: fcmW1, Theta1: fcmTheta, Iterations: iters, Workers: 0, Metrics: o.EMMetrics}, fcmVCs)
		return err
	})
	if err != nil {
		return nil, err
	}
	rt := &Table{ID: "fig9a", Title: "EM runtime per iteration (seconds)",
		PaperNote: "paper (20M pkts): MRAC 13.57s, FCM(s) 57.42s, FCM(m) 17.21s — FCM(m) " +
			"3-4x faster than FCM(s) (the speedup needs multiple cores; on one core FCM(m)≈FCM(s))",
		Headers:   []string{"algorithm", "sec/iter"}}
	rt.AddRow("MRAC", mracSec)
	rt.AddRow("FCM(s)", fcmSingle)
	rt.AddRow("FCM(m)", fcmMulti)

	// Convergence: WMRE after each iteration.
	conv := &Table{ID: "fig9b", Title: "WMRE vs EM iterations",
		PaperNote: "FCM stabilizes within ~5 iterations and stays below MRAC throughout",
		Headers:   []string{"iteration", "FCM", "MRAC"}}
	const convIters = 15
	fcmW := make([]float64, convIters+1)
	mracW := make([]float64, convIters+1)
	_, err = f.FlowSizeDistribution(&fcm.EMOptions{Iterations: convIters, Workers: o.Workers,
		OnIteration: func(it int, dist []float64) {
			fcmW[it] = metrics.WMRE(truthDist, dist)
		}})
	if err != nil {
		return nil, err
	}
	_, err = mr.EstimateDistribution(convIters, o.Workers, func(it int, dist []float64) {
		mracW[it] = metrics.WMRE(truthDist, dist)
	})
	if err != nil {
		return nil, err
	}
	for it := 1; it <= convIters; it++ {
		conv.AddRow(it, fcmW[it], mracW[it])
	}
	return []*Table{rt, conv}, nil
}

// zipfTrace builds the §7.4 synthetic workload.
func zipfTrace(o Options, alpha float64) (*trace.Trace, error) {
	return trace.Generate(trace.Config{
		Model:        trace.ModelSizeZipf,
		Alpha:        alpha,
		TotalPackets: o.Packets(),
		AvgFlowSize:  50,
		Seed:         o.Seed,
		Shuffle:      true,
	})
}
