package exp

import (
	"fmt"
	"math/rand"
	"time"

	fcm "github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/window"
)

// overtimeWindows is the ring depth of the scenario: deep enough that the
// exponential histogram has coarsened several levels, and the depth the
// acceptance floor (64-bucket lookback latency) is stated against.
const overtimeWindows = 64

// RunOvertime measures the sliding-window query plane: a 64-window ring
// on the paper's default {8,16,32} geometry, each window loaded with a
// Zipf-like slice of traffic, then over-time query latency swept across
// lookback depths. Because long lookbacks fold coarsened buckets, the
// covering-bucket column grows O(log n) while the lookback grows O(n) —
// the scaling claim of the exponential histogram. The ingest rows restate
// the hot-path contract: Ring.Update goes straight to the data plane, so
// ingest through the temporal layer costs the same as ingest without it.
func RunOvertime(o Options) ([]*Table, error) {
	o = o.withDefaults()
	cfg := fcm.Config{K: 8, Trees: 2, LeafWidth: 4096, Widths: []int{8, 16, 32}}
	perWindow := o.Packets() / overtimeWindows
	if perWindow < 1000 {
		perWindow = 1000
	}

	ring, err := window.New(window.Config{
		Sketch:         cfg,
		MaxWindows:     overtimeWindows,
		BucketDuration: time.Second,
	})
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(o.Seed))
	key := make([]byte, 4)
	setKey := func(k uint32) {
		key[0], key[1], key[2], key[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
	}
	for w := 0; w < overtimeWindows; w++ {
		for i := 0; i < perWindow; i++ {
			setKey(uint32(rng.ExpFloat64() * 700))
			if err := ring.Update(key, 1); err != nil {
				return nil, err
			}
		}
		if err := ring.Rotate(); err != nil {
			return nil, err
		}
	}
	st := ring.Stats()
	o.logf("overtime: %d windows ingested (%d packets each), ring holds %d buckets up to level %d",
		overtimeWindows, perWindow, st.Buckets, st.MaxLevel)

	// measure runs op repeatedly until enough wall time has accumulated to
	// trust the mean, returning ns/op.
	measure := func(op func() error) (float64, error) {
		const minRun = 200 * time.Millisecond
		iters, elapsed := 0, time.Duration(0)
		for elapsed < minRun {
			start := time.Now()
			if err := op(); err != nil {
				return 0, err
			}
			elapsed += time.Since(start)
			iters++
		}
		return float64(elapsed.Nanoseconds()) / float64(iters), nil
	}

	q := &Table{ID: "overtime", Title: "Over-time query latency vs lookback (64-window ring)",
		PaperNote: "exact merge (§5) makes temporal folds lossless; exponential-histogram coarsening keeps covering buckets O(log n)",
		Headers:   []string{"lookback (windows)", "covering buckets", "query ns/op", "queries/s"}}
	setKey(uint32(rng.ExpFloat64() * 700))
	probe := append([]byte(nil), key...)
	for _, lb := range []int{1, 4, 16, overtimeWindows} {
		_, cov, err := ring.QueryOverTime(probe, window.LastWindows(lb))
		if err != nil {
			return nil, err
		}
		ns, err := measure(func() error {
			_, _, err := ring.QueryOverTime(probe, window.LastWindows(lb))
			return err
		})
		if err != nil {
			return nil, err
		}
		q.AddRow(lb, cov.Buckets, ns, 1e9/ns)
		o.logf("overtime: lookback %d done (%d covering buckets)", lb, cov.Buckets)
	}

	// Ingest restatement: the same update stream through the ring and
	// through a bare sharded sketch of the same geometry.
	bare, err := fcm.NewSharded(cfg, 1)
	if err != nil {
		return nil, err
	}
	const ingestBatch = 4096
	ringNs, err := measure(func() error {
		for i := 0; i < ingestBatch; i++ {
			setKey(uint32(rng.ExpFloat64() * 700))
			if err := ring.Update(key, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bareNs, err := measure(func() error {
		for i := 0; i < ingestBatch; i++ {
			setKey(uint32(rng.ExpFloat64() * 700))
			bare.Update(key, 1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	in := &Table{ID: "overtime_ingest", Title: "Ingest through the temporal layer (ns/update)",
		PaperNote: "Ring.Update takes no ring lock: the hot path is exactly the underlying data plane's",
		Headers:   []string{"path", "ns/update", "overhead"}}
	in.AddRow("bare sharded sketch", bareNs/ingestBatch, "-")
	in.AddRow("through window ring", ringNs/ingestBatch,
		fmt.Sprintf("%+.1f%%", 100*(ringNs-bareNs)/bareNs))
	return []*Table{q, in}, nil
}
