package exp

import (
	"fmt"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/elastic"
	"github.com/fcmsketch/fcm/internal/metrics"
	"github.com/fcmsketch/fcm/internal/univmon"
)

// fig12Fractions sweeps memory from 0.5MB to 2.5MB (scaled).
var fig12Fractions = []float64{0.5, 1.0, 1.5, 2.0, 2.5}

// RunFig12 reproduces Fig. 12: the six measurement tasks across a memory
// sweep, comparing FCM (8-ary) and FCM+TopK (16-ary) with ElasticSketch
// and UnivMon.
func RunFig12(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	thr := o.HHThreshold()
	truthDist := trueDistribution(tr)
	truthH := trueEntropy(tr)

	are := &Table{ID: "fig12a", Title: "ARE of flow size vs memory",
		PaperNote: "at 1.5MB FCM 50% and FCM+TopK 63% below ElasticSketch",
		Headers:   []string{"MB(scaled)", "FCM", "FCM+TopK", "Elastic"}}
	aae := &Table{ID: "fig12b", Title: "AAE of flow size vs memory",
		PaperNote: "at 1.5MB FCM 54% and FCM+TopK 63% below ElasticSketch",
		Headers:   []string{"MB(scaled)", "FCM", "FCM+TopK", "Elastic"}}
	f1 := &Table{ID: "fig12c", Title: "Heavy-hitter F1 vs memory",
		PaperNote: "FCM ≥99.4%, FCM+TopK ≥99.7%, all ≥99.9% at ≥1MB; UnivMon clearly lower",
		Headers:   []string{"MB(scaled)", "FCM", "FCM+TopK", "Elastic", "UnivMon"}}
	card := &Table{ID: "fig12d", Title: "Cardinality RE vs memory",
		PaperNote: "FCM and FCM+TopK >10x lower RE than Elastic and UnivMon at all sizes",
		Headers:   []string{"MB(scaled)", "FCM", "FCM+TopK", "Elastic", "UnivMon"}}
	wmre := &Table{ID: "fig12e", Title: "Flow size distribution WMRE vs memory",
		PaperNote: "all three perform well; FCM+TopK always lowest",
		Headers:   []string{"MB(scaled)", "FCM", "FCM+TopK", "Elastic"}}
	ent := &Table{ID: "fig12f", Title: "Entropy RE vs memory",
		PaperNote: "at 1.5MB FCM 34%/80% below Elastic/UnivMon; FCM+TopK 69% below FCM",
		Headers:   []string{"MB(scaled)", "FCM", "FCM+TopK", "Elastic", "UnivMon"}}

	emo := &fcm.EMOptions{Iterations: o.EMIterations, Workers: o.Workers}
	for _, frac := range fig12Fractions {
		mem := int(frac / 1.5 * float64(o.MemoryBytes()))
		label := fmt.Sprintf("%.1f", frac)

		f, err := newFCM(o, 8, mem)
		if err != nil {
			return nil, fmt.Errorf("fig12 %sMB fcm: %w", label, err)
		}
		ft, err := newFCMTopK(o, 16, mem)
		if err != nil {
			return nil, fmt.Errorf("fig12 %sMB fcm+topk: %w", label, err)
		}
		// ElasticSketch software config (§7.2): 4 levels of 8K-entry
		// Top-K, clamped so the heavy part never claims more than a
		// quarter of the budget (same reasoning as Options.TopKEntries).
		elEntries := 8192
		if cap := mem / (4 * 4 * 13); elEntries > cap {
			elEntries = cap
		}
		if elEntries < 16 {
			elEntries = 16
		}
		el, err := elastic.New(elastic.Config{
			MemoryBytes: mem,
			TopKLevels:  4,
			TopKEntries: elEntries,
		})
		if err != nil {
			return nil, fmt.Errorf("fig12 %sMB elastic: %w", label, err)
		}
		// UnivMon (§7.2): 16 levels with 2K-entry heaps, clamped so the
		// heaps never claim more than half the budget; at extreme
		// down-scales the level count shrinks too so the config stays
		// instantiable.
		umLevels := 16
		if cap := mem / (3 * 136); umLevels > cap { // ≥136B minimum per level
			umLevels = cap
		}
		if umLevels < 2 {
			umLevels = 2
		}
		umHeap := 2000
		if cap := mem / (2 * umLevels * 12); umHeap > cap {
			umHeap = cap
		}
		if umHeap < 8 {
			umHeap = 8
		}
		um, err := univmon.New(univmon.Config{
			MemoryBytes: mem,
			Levels:      umLevels,
			HeapSize:    umHeap,
		})
		if err != nil {
			return nil, fmt.Errorf("fig12 %sMB univmon: %w", label, err)
		}
		ingest(tr, f, ft, el, um)

		fARE, fAAE := flowErrors(tr, f)
		tARE, tAAE := flowErrors(tr, ft)
		eARE, eAAE := flowErrors(tr, el)
		are.AddRow(label, fARE, tARE, eARE)
		aae.AddRow(label, fAAE, tAAE, eAAE)
		f1.AddRow(label,
			hhF1ByQuery(tr, f, thr),
			hhF1ByQuery(tr, ft, thr),
			hhF1BySet(tr, el.HeavyHitters(thr), thr),
			hhF1BySet(tr, um.HeavyHitters(thr), thr))
		card.AddRow(label,
			cardRE(tr, f.Cardinality()),
			cardRE(tr, ft.Cardinality()),
			cardRE(tr, el.Cardinality()),
			cardRE(tr, um.Cardinality()))

		fd, err := f.FlowSizeDistribution(emo)
		if err != nil {
			return nil, err
		}
		td, err := ft.FlowSizeDistribution(emo)
		if err != nil {
			return nil, err
		}
		ed, err := el.EstimateDistribution(o.EMIterations, o.Workers)
		if err != nil {
			return nil, err
		}
		wmre.AddRow(label,
			metrics.WMRE(truthDist, fd),
			metrics.WMRE(truthDist, td),
			metrics.WMRE(truthDist, ed))
		ent.AddRow(label,
			metrics.RE(truthH, fcm.EntropyOf(fd)),
			metrics.RE(truthH, fcm.EntropyOf(td)),
			metrics.RE(truthH, fcm.EntropyOf(ed)),
			metrics.RE(truthH, um.Entropy()))
		o.logf("fig12: %sMB done", label)
	}
	return []*Table{are, aae, f1, card, wmre, ent}, nil
}
