package exp

import (
	"fmt"
	"sort"
)

// Runner regenerates one table or figure.
type Runner func(Options) ([]*Table, error)

// Experiment pairs a runner with its description.
type Experiment struct {
	ID          string
	Description string
	Run         Runner
}

// registry holds every experiment, keyed by ID.
var registry = map[string]Experiment{
	"fig6":   {"fig6", "Data-plane query accuracy vs k-ary trees (ARE/AAE/F1/cardinality)", RunFig6},
	"fig7":   {"fig7", "Control-plane query accuracy vs k-ary trees (FSD WMRE, entropy RE)", RunFig7},
	"fig8":   {"fig8", "Histogram of non-empty virtual counters per degree", RunFig8},
	"fig9":   {"fig9", "EM runtime per iteration and convergence", RunFig9},
	"fig10":  {"fig10", "Normalized flow-size errors on Zipf(α) traces", RunFig10},
	"fig11":  {"fig11", "Normalized FSD WMRE on Zipf(α) traces", RunFig11},
	"table3": {"table3", "Accuracy vs number of trees", RunTable3},
	"fig12":  {"fig12", "Six tasks across a memory sweep vs Elastic and UnivMon", RunFig12},
	"fig13":  {"fig13", "Software vs Tofino-model accuracy", RunFig13},
	"fig14":  {"fig14", "Hardware resources and accuracy vs CM(d)+TopK", RunFig14},
	"table4": {"table4", "Hardware resource consumption vs switch.p4", RunTable4},
	"table5": {"table5", "Resource comparison with existing Tofino solutions", RunTable5},
	"appc":   {"appc", "TCAM cardinality table size and added error", RunAppC},
	"thm51":  {"thm51", "Empirical validation of the Theorem 5.1 bound", RunThm51},
	"ablation": {"ablation", "Design ablations: overflow indicator, widths, conservative update", RunAblation},
	"hc":       {"hc", "Heavy-change detection across windows (footnote 4)", RunHeavyChange},
	"speed":    {"speed", "Single-core ingest throughput of every structure", RunSpeed},
	"shardedspeed": {"shardedspeed", "Multi-writer sharded ingest throughput + exact-merge check", RunShardedSpeed},
	"telemetry":    {"telemetry", "Ingest throughput overhead of sketch self-telemetry (≤5% contract)", RunTelemetryOverhead},
	"hotpath":      {"hotpath", "Ingest hot path: one-pass vs per-tree hashing, batched vs unbatched", RunHotpath},
	"foldpath":     {"foldpath", "Fold plane: word-wide (SWAR) vs scalar merge, fleet fold, snapshot diff", RunFoldpath},
	"overtime":     {"overtime", "Sliding-window query plane: over-time query latency vs lookback depth", RunOvertime},
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("exp: unknown experiment %q (use List)", id)
	}
	return e, nil
}

// List returns every experiment sorted by ID (figures first, then tables).
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts fig6..fig14 numerically before tables and appendices.
func orderKey(id string) string {
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return fmt.Sprintf("a%02d", n)
	}
	if _, err := fmt.Sscanf(id, "table%d", &n); err == nil {
		return fmt.Sprintf("b%02d", n)
	}
	return "c" + id
}
