package exp

import (
	"fmt"
	"time"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/trace"
)

// RunHotpath measures the ingest hot path end to end: per-tree vs one-pass
// index derivation, unbatched vs batched replay, and the engine-level
// shard batcher. All variants ingest the same CAIDA-like trace into
// identically-sized sketches, so the Mpps column isolates the cost of the
// path, not the workload. Options.HashMode narrows the hash modes run
// ("onepass", "pertree", default "both"); Options.BatchSize sets the batch
// (default 256).
func RunHotpath(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.MemoryBytes()
	batch := o.BatchSize
	if batch <= 0 {
		batch = 256
	}
	mode := o.HashMode
	if mode == "" {
		mode = "both"
	}
	if mode != "both" && mode != "onepass" && mode != "pertree" {
		return nil, fmt.Errorf("hotpath: unknown hash mode %q (onepass, pertree, both)", mode)
	}

	build := func(perTree bool) (*fcm.Sketch, error) {
		return fcm.NewSketch(fcm.Config{
			MemoryBytes: mem,
			Seed:        uint32(o.Seed),
			PerTreeHash: perTree,
		})
	}

	t := &Table{ID: "hotpath", Title: "Ingest hot path (million packets/sec)",
		PaperNote: "one-pass dual-lane hashing + flat slabs + batching; same trace, same geometry",
		Headers:   []string{"variant", "Mpps"}}
	run := func(name string, replay func() error) error {
		start := time.Now()
		if err := replay(); err != nil {
			return err
		}
		sec := time.Since(start).Seconds()
		t.AddRow(name, float64(tr.NumPackets())/sec/1e6)
		o.logf("hotpath: %s done", name)
		return nil
	}

	if mode != "onepass" {
		sk, err := build(true)
		if err != nil {
			return nil, err
		}
		if err := run("per-tree unbatched", func() error { tr.Replay(sk); return nil }); err != nil {
			return nil, err
		}
	}
	if mode != "pertree" {
		sk, err := build(false)
		if err != nil {
			return nil, err
		}
		if err := run("one-pass unbatched", func() error { tr.Replay(sk); return nil }); err != nil {
			return nil, err
		}

		bsk, err := build(false)
		if err != nil {
			return nil, err
		}
		br := trace.NewBatchReplayer(batch)
		br.Replay(tr, bsk) // warm-up outside the timed run
		bsk.Reset()
		if err := run(fmt.Sprintf("one-pass batched(%d)", batch), func() error {
			br.Replay(tr, bsk)
			return nil
		}); err != nil {
			return nil, err
		}

		sh, err := fcm.NewSharded(fcm.Config{MemoryBytes: mem, Seed: uint32(o.Seed)}, 1)
		if err != nil {
			return nil, err
		}
		b := sh.Engine().NewBatcher(batch, 1)
		if err := run(fmt.Sprintf("engine batcher(%d)", batch), func() error {
			tr.ForEachPacket(func(_ int, key []byte) { b.AddShard(0, key) })
			b.Flush()
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return []*Table{t}, nil
}
