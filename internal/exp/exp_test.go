package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny returns options small enough for unit tests (~50K packets).
func tiny() Options {
	return Options{Scale: 0.0025, Seed: 7, EMIterations: 2, Workers: 0}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 0.1 || o.Seed == 0 || o.EMIterations != 5 {
		t.Errorf("defaults %+v", o)
	}
	if o.Packets() != 2_000_000 {
		t.Errorf("packets %d", o.Packets())
	}
	if o.MemoryBytes() != 150_000 {
		t.Errorf("memory %d", o.MemoryBytes())
	}
	if o.HHThreshold() != 1000 {
		t.Errorf("threshold %d", o.HHThreshold())
	}
}

func TestRegistry(t *testing.T) {
	if _, err := Lookup("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("expected unknown-experiment error")
	}
	list := List()
	if len(list) != 22 {
		t.Errorf("registry has %d experiments", len(list))
	}
	// Figures come before tables, sorted numerically.
	if list[0].ID != "fig6" || list[1].ID != "fig7" {
		t.Errorf("ordering: %s %s", list[0].ID, list[1].ID)
	}
	var sawTable bool
	for _, e := range list {
		if strings.HasPrefix(e.ID, "table") {
			sawTable = true
		}
		if strings.HasPrefix(e.ID, "fig") && sawTable {
			t.Errorf("figure %s after a table", e.ID)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", PaperNote: "note",
		Headers: []string{"a", "b"}}
	tab.AddRow("r1", 0.123456)
	tab.AddRow("r2", 1234567.0)
	tab.AddRow("r3", 0.0)
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "note", "0.1235", "1.235e+06", "r3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Errorf("CSV has %d lines", lines)
	}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestRunFig6Shape(t *testing.T) {
	tables, err := RunFig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("%d tables", len(tables))
	}
	are := tables[0]
	if len(are.Rows) != 5 {
		t.Fatalf("%d k rows", len(are.Rows))
	}
	// Headline: FCM (col 4) must beat CM (col 1) at k=8 and k=16.
	for _, row := range are.Rows {
		if row[0] == "8" || row[0] == "16" {
			if parse(t, row[4]) >= parse(t, row[1]) {
				t.Errorf("k=%s: FCM ARE %s not below CM %s", row[0], row[4], row[1])
			}
		}
	}
	// F1 scores are valid probabilities. At this tiny test scale (3.75KB
	// of sketch) collision noise keeps absolute F1 well below the paper's
	// ≥0.99; only the recommended arities get a floor check.
	for _, row := range tables[2].Rows {
		for col := 1; col <= 3; col++ {
			if v := parse(t, row[col]); v < 0 || v > 1 {
				t.Errorf("k=%s col %d F1 %f invalid", row[0], col, v)
			}
		}
		if row[0] == "8" || row[0] == "16" {
			if v := parse(t, row[2]); v < 0.7 {
				t.Errorf("k=%s FCM F1 %f below floor", row[0], v)
			}
		}
	}
}

func TestRunFig9Shape(t *testing.T) {
	tables, err := RunFig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rt, conv := tables[0], tables[1]
	if len(rt.Rows) != 3 {
		t.Fatalf("runtime rows %d", len(rt.Rows))
	}
	for _, row := range rt.Rows {
		if parse(t, row[1]) <= 0 {
			t.Errorf("%s: nonpositive runtime", row[0])
		}
	}
	if len(conv.Rows) != 15 {
		t.Fatalf("convergence rows %d", len(conv.Rows))
	}
	// WMRE must improve (or hold) between iteration 1 and 15 for FCM.
	first := parse(t, conv.Rows[0][1])
	last := parse(t, conv.Rows[len(conv.Rows)-1][1])
	if last > first*1.1 {
		t.Errorf("FCM WMRE diverged: %f -> %f", first, last)
	}
}

func TestRunTable4Shape(t *testing.T) {
	tables, err := RunTable4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 7 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	// Stateful ALU row: FCM must read 12.50%.
	for _, row := range tab.Rows {
		if row[0] == "StatefulALUs" && row[2] != "12.50%" {
			t.Errorf("FCM sALU = %s, want 12.50%%", row[2])
		}
		if row[0] == "PhysicalStages" && (row[2] != "4" || row[3] != "8") {
			t.Errorf("stages = %s/%s, want 4/8", row[2], row[3])
		}
	}
}

func TestRunTable5Shape(t *testing.T) {
	tables, err := RunTable5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 8 {
		t.Errorf("rows %d, want 2 measured + 6 reference", len(tables[0].Rows))
	}
}

func TestRunAppCShape(t *testing.T) {
	tables, err := RunAppC(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if rows[3][0] != "max additional RE" {
		t.Fatalf("unexpected layout %v", rows)
	}
	if re := parse(t, rows[3][1]); re > 0.002+1e-9 {
		t.Errorf("TCAM extra error %f exceeds 0.2%%", re)
	}
}

func TestRunThm51Holds(t *testing.T) {
	tables, err := RunThm51(tiny())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	holds := rows[len(rows)-1][1]
	if holds != "true" {
		var buf bytes.Buffer
		tables[0].Fprint(&buf) //nolint:errcheck
		t.Errorf("Theorem 5.1 bound violated:\n%s", buf.String())
	}
}

func TestRunAblationShape(t *testing.T) {
	tables, err := RunAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	ind := tables[0]
	if len(ind.Rows) != 2 {
		t.Fatalf("indicator rows %d", len(ind.Rows))
	}
	// The max-value marker must not be worse than the flag-bit encoding:
	// it strictly increases every stage's counting capacity.
	marker := parse(t, ind.Rows[0][2])
	flag := parse(t, ind.Rows[1][2])
	if marker > flag*1.05 {
		t.Errorf("marker AAE %f worse than flag-bit AAE %f", marker, flag)
	}
	if len(tables[1].Rows) != 5 {
		t.Errorf("width rows %d", len(tables[1].Rows))
	}
}

func TestRunFig8Shape(t *testing.T) {
	tables, err := RunFig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 8 {
			t.Fatalf("%s: %d degree rows", tab.Title, len(tab.Rows))
		}
		// Degree-1 counters must dominate degree-2 for every k.
		for col := 1; col <= 5; col++ {
			d1 := parse(t, tab.Rows[0][col])
			d2 := parse(t, tab.Rows[1][col])
			if d2 > d1 {
				t.Errorf("%s col %d: degree-2 count %f exceeds degree-1 %f", tab.Title, col, d2, d1)
			}
		}
	}
}

func TestRunFig13BitIdentical(t *testing.T) {
	tables, err := RunFig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	acc := tables[0]
	// Rows 0/1 are FCM software vs tofino-model: must match exactly.
	if acc.Rows[0][2] != acc.Rows[1][2] || acc.Rows[0][3] != acc.Rows[1][3] {
		t.Errorf("FCM software vs hardware differ: %v vs %v", acc.Rows[0], acc.Rows[1])
	}
}
