package exp

import (
	"testing"
)

// These shape tests run the remaining experiment runners at the tiny test
// scale and assert structural properties plus the paper's coarse ordering
// claims that survive down-scaling.

func TestRunFig7Shape(t *testing.T) {
	tables, err := RunFig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	wm := tables[0]
	if len(wm.Rows) != 5 {
		t.Fatalf("%d rows", len(wm.Rows))
	}
	// The MRAC column is constant across k.
	for _, row := range wm.Rows[1:] {
		if row[1] != wm.Rows[0][1] {
			t.Errorf("MRAC WMRE varies across k: %s vs %s", row[1], wm.Rows[0][1])
		}
	}
	// All WMREs are positive and finite.
	for _, tab := range tables {
		for _, row := range tab.Rows {
			for col := 1; col < len(row); col++ {
				if v := parse(t, row[col]); v < 0 || v > 10 {
					t.Errorf("%s k=%s col %d out of band: %f", tab.ID, row[0], col, v)
				}
			}
		}
	}
}

func TestRunFig10Shape(t *testing.T) {
	tables, err := RunFig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	are := tables[0]
	if len(are.Rows) != 9 { // CM + 4 FCM + 4 FCM+TopK
		t.Fatalf("%d rows", len(are.Rows))
	}
	if are.Rows[0][0] != "CM" {
		t.Fatalf("first row %s", are.Rows[0][0])
	}
	// CM normalizes to exactly 1 everywhere.
	for col := 1; col <= 4; col++ {
		if v := parse(t, are.Rows[0][col]); v != 1 {
			t.Errorf("CM norm col %d = %f", col, v)
		}
	}
	// Headline: every FCM variant beats CM on every alpha (normalized <1).
	for _, row := range are.Rows[1:] {
		for col := 1; col <= 4; col++ {
			if v := parse(t, row[col]); v >= 1 {
				t.Errorf("%s col %d: normalized ARE %f not below CM", row[0], col, v)
			}
		}
	}
}

func TestRunFig11Shape(t *testing.T) {
	tables, err := RunFig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 9 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Values positive; MRAC row all ones.
	for col := 1; col <= 4; col++ {
		if v := parse(t, tab.Rows[0][col]); v != 1 {
			t.Errorf("MRAC norm col %d = %f", col, v)
		}
	}
	for _, row := range tab.Rows[1:] {
		for col := 1; col <= 4; col++ {
			if v := parse(t, row[col]); v <= 0 || v > 5 {
				t.Errorf("%s col %d: normalized WMRE %f out of band", row[0], col, v)
			}
		}
	}
}

func TestRunTable3Shape(t *testing.T) {
	tables, err := RunTable3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 6 { // {FCM, FCM+TopK} × {2,3,4} trees
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Flow-size ARE should improve (or hold) with more trees for FCM —
	// the paper's Table 3 trend.
	var fcmARE []float64
	for _, row := range tab.Rows {
		if row[0] == "FCM" {
			fcmARE = append(fcmARE, parse(t, row[2]))
		}
	}
	if len(fcmARE) != 3 {
		t.Fatalf("FCM rows %d", len(fcmARE))
	}
	if fcmARE[2] > fcmARE[0]*1.25 {
		t.Errorf("4-tree ARE %f much worse than 2-tree %f", fcmARE[2], fcmARE[0])
	}
}

func TestRunFig12Shape(t *testing.T) {
	tables, err := RunFig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("%d tables", len(tables))
	}
	are := tables[0]
	if len(are.Rows) != 5 {
		t.Fatalf("%d memory rows", len(are.Rows))
	}
	// ARE decreases (or holds) from the smallest to the largest memory
	// for FCM.
	first := parse(t, are.Rows[0][1])
	last := parse(t, are.Rows[len(are.Rows)-1][1])
	if last > first {
		t.Errorf("FCM ARE grew with memory: %f -> %f", first, last)
	}
	// F1 and cardinality tables include the UnivMon column.
	if len(tables[2].Headers) != 5 || len(tables[3].Headers) != 5 {
		t.Errorf("headers: %v / %v", tables[2].Headers, tables[3].Headers)
	}
}

func TestRunFig14Shape(t *testing.T) {
	tables, err := RunFig14(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("%d tables", len(tables))
	}
	res := tables[0]
	if len(res.Rows) != 5 { // FCM, FCM+TopK, CM(2/4/8)+TopK
		t.Fatalf("%d resource rows", len(res.Rows))
	}
	// FCM normalizes to 1.0 on every resource.
	for col := 1; col <= 4; col++ {
		if v := parse(t, res.Rows[0][col]); v != 1 {
			t.Errorf("FCM resource col %d = %f", col, v)
		}
	}
	// FCM+TopK needs 2x the stages of FCM (8 vs 4), as in the paper.
	if v := parse(t, res.Rows[1][4]); v != 2 {
		t.Errorf("FCM+TopK stage ratio %f, want 2", v)
	}
}

func TestRunHeavyChangeShape(t *testing.T) {
	tables, err := RunHeavyChange(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for col := 1; col <= 2; col++ {
			if v := parse(t, row[col]); v < 0 || v > 1 {
				t.Errorf("k=%s col %d F1 %f invalid", row[0], col, v)
			}
		}
	}
}

func TestRunSpeedShape(t *testing.T) {
	tables, err := RunSpeed(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 8 {
		t.Fatalf("%d structures", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if v := parse(t, row[1]); v <= 0 {
			t.Errorf("%s throughput %f", row[0], v)
		}
	}
}
