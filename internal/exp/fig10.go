package exp

import (
	"fmt"

	"github.com/fcmsketch/fcm"
	"github.com/fcmsketch/fcm/internal/cmsketch"
	"github.com/fcmsketch/fcm/internal/metrics"
	"github.com/fcmsketch/fcm/internal/mrac"
)

// fig10Alphas is the Zipf skewness sweep of §7.4.
var fig10Alphas = []float64{1.1, 1.3, 1.5, 1.7}

// fig10Ks is the arity sweep of §7.4.
var fig10Ks = []int{4, 8, 16, 32}

// RunFig10 reproduces Fig. 10: flow-size ARE and AAE of FCM{4..32} and
// FCM{4..32}+TopK on Zipf(α) traces, normalized to CM-Sketch.
func RunFig10(o Options) ([]*Table, error) {
	o = o.withDefaults()
	mem := o.MemoryBytes()

	are := &Table{ID: "fig10a", Title: "Normalized ARE of flow size on Zipf(α) traces (CM = 1)",
		PaperNote: "all FCM variants below CM for every α; 32-ary can trail 4-ary at α=1.3/1.5",
		Headers:   append([]string{"variant"}, alphaHeaders()...)}
	aae := &Table{ID: "fig10b", Title: "Normalized AAE of flow size on Zipf(α) traces (CM = 1)",
		PaperNote: "FCM32 shows ~2x the AAE of FCM4 at α=1.3/1.5; TopK variants less sensitive",
		Headers:   append([]string{"variant"}, alphaHeaders()...)}

	type cell struct{ are, aae float64 }
	results := make(map[string][]cell)
	order := []string{"CM"}
	for _, k := range fig10Ks {
		order = append(order, fmt.Sprintf("FCM%d", k))
	}
	for _, k := range fig10Ks {
		order = append(order, fmt.Sprintf("FCM%d+TopK", k))
	}

	for _, alpha := range fig10Alphas {
		tr, err := zipfTrace(o, alpha)
		if err != nil {
			return nil, err
		}
		o.logf("fig10: alpha=%.1f trace: %d pkts %d flows max %d",
			alpha, tr.NumPackets(), tr.NumFlows(), tr.MaxSize())

		cm, err := cmsketch.New(cmsketch.Config{MemoryBytes: mem, Rows: 3})
		if err != nil {
			return nil, err
		}
		ingest(tr, cm)
		cmARE, cmAAE := flowErrors(tr, cm)
		results["CM"] = append(results["CM"], cell{1, 1})

		for _, k := range fig10Ks {
			f, err := newFCM(o, k, mem)
			if err != nil {
				return nil, err
			}
			ft, err := newFCMTopK(o, k, mem)
			if err != nil {
				return nil, err
			}
			ingest(tr, f, ft)
			fARE, fAAE := flowErrors(tr, f)
			tARE, tAAE := flowErrors(tr, ft)
			results[fmt.Sprintf("FCM%d", k)] = append(results[fmt.Sprintf("FCM%d", k)],
				cell{fARE / cmARE, fAAE / cmAAE})
			results[fmt.Sprintf("FCM%d+TopK", k)] = append(results[fmt.Sprintf("FCM%d+TopK", k)],
				cell{tARE / cmARE, tAAE / cmAAE})
		}
	}

	for _, name := range order {
		rowA := []any{name}
		rowB := []any{name}
		for _, c := range results[name] {
			rowA = append(rowA, c.are)
			rowB = append(rowB, c.aae)
		}
		are.AddRow(rowA...)
		aae.AddRow(rowB...)
	}
	return []*Table{are, aae}, nil
}

// RunFig11 reproduces Fig. 11: flow-size-distribution WMRE on Zipf(α)
// traces normalized to MRAC.
func RunFig11(o Options) ([]*Table, error) {
	o = o.withDefaults()
	mem := o.MemoryBytes()

	t := &Table{ID: "fig11", Title: "Normalized WMRE of flow size distribution on Zipf(α) (MRAC = 1)",
		PaperNote: "all FCM/FCM+TopK below MRAC for every α; 32-ary slightly above 8-ary",
		Headers:   append([]string{"variant"}, alphaHeaders()...)}

	rows := map[string][]float64{"MRAC": nil}
	order := []string{"MRAC"}
	for _, k := range fig10Ks {
		order = append(order, fmt.Sprintf("FCM%d", k))
	}
	for _, k := range fig10Ks {
		order = append(order, fmt.Sprintf("FCM%d+TopK", k))
	}

	for _, alpha := range fig10Alphas {
		tr, err := zipfTrace(o, alpha)
		if err != nil {
			return nil, err
		}
		truthDist := trueDistribution(tr)

		mr, err := mrac.New(mrac.Config{MemoryBytes: mem})
		if err != nil {
			return nil, err
		}
		ingest(tr, mr)
		mrRes, err := mr.EstimateDistribution(o.EMIterations, o.Workers, nil)
		if err != nil {
			return nil, err
		}
		base := metrics.WMRE(truthDist, mrRes.Dist)
		rows["MRAC"] = append(rows["MRAC"], 1)

		emo := &fcm.EMOptions{Iterations: o.EMIterations, Workers: o.Workers}
		for _, k := range fig10Ks {
			f, err := newFCM(o, k, mem)
			if err != nil {
				return nil, err
			}
			ft, err := newFCMTopK(o, k, mem)
			if err != nil {
				return nil, err
			}
			ingest(tr, f, ft)
			fd, err := f.FlowSizeDistribution(emo)
			if err != nil {
				return nil, err
			}
			td, err := ft.FlowSizeDistribution(emo)
			if err != nil {
				return nil, err
			}
			rows[fmt.Sprintf("FCM%d", k)] = append(rows[fmt.Sprintf("FCM%d", k)],
				metrics.WMRE(truthDist, fd)/base)
			rows[fmt.Sprintf("FCM%d+TopK", k)] = append(rows[fmt.Sprintf("FCM%d+TopK", k)],
				metrics.WMRE(truthDist, td)/base)
		}
		o.logf("fig11: alpha=%.1f done", alpha)
	}

	for _, name := range order {
		row := []any{name}
		for _, v := range rows[name] {
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

func alphaHeaders() []string {
	out := make([]string, len(fig10Alphas))
	for i, a := range fig10Alphas {
		out[i] = fmt.Sprintf("Zipf(%.1f)", a)
	}
	return out
}

// RunTable3 reproduces Table 3: FCM (8-ary) and FCM+TopK (16-ary) accuracy
// across 2, 3 and 4 trees.
func RunTable3(o Options) ([]*Table, error) {
	o = o.withDefaults()
	tr, err := o.caidaTrace()
	if err != nil {
		return nil, err
	}
	mem := o.MemoryBytes()
	truthDist := trueDistribution(tr)
	truthH := trueEntropy(tr)

	t := &Table{ID: "table3", Title: "FCM (8-ary) and FCM+TopK (16-ary) vs number of trees",
		PaperNote: "more trees: better flow-size ARE/AAE, worse FSD WMRE and entropy RE (paper picks 2)",
		Headers: []string{"variant", "trees", "ARE", "AAE", "WMRE", "entropyRE", "cardRE"}}

	emo := &fcm.EMOptions{Iterations: o.EMIterations, Workers: o.Workers}
	for _, trees := range []int{2, 3, 4} {
		f, err := fcm.NewSketch(fcm.Config{MemoryBytes: mem, K: 8, Trees: trees, Seed: uint32(o.Seed)})
		if err != nil {
			return nil, err
		}
		ft, err := fcm.NewTopK(fcm.TopKConfig{
			Config:      fcm.Config{MemoryBytes: mem, K: 16, Trees: trees, Seed: uint32(o.Seed)},
			TopKEntries: o.TopKEntries(mem),
		})
		if err != nil {
			return nil, err
		}
		ingest(tr, f, ft)

		fARE, fAAE := flowErrors(tr, f)
		fd, err := f.FlowSizeDistribution(emo)
		if err != nil {
			return nil, err
		}
		t.AddRow("FCM", trees, fARE, fAAE,
			metrics.WMRE(truthDist, fd),
			metrics.RE(truthH, fcm.EntropyOf(fd)),
			cardRE(tr, f.Cardinality()))

		tARE, tAAE := flowErrors(tr, ft)
		td, err := ft.FlowSizeDistribution(emo)
		if err != nil {
			return nil, err
		}
		t.AddRow("FCM+TopK", trees, tARE, tAAE,
			metrics.WMRE(truthDist, td),
			metrics.RE(truthH, fcm.EntropyOf(td)),
			cardRE(tr, ft.Cardinality()))
		o.logf("table3: trees=%d done", trees)
	}
	return []*Table{t}, nil
}
