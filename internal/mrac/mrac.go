// Package mrac implements MRAC (Kumar et al., "Data streaming algorithms
// for efficient and accurate estimation of flow size distribution",
// SIGMETRICS 2004 [38]) — the flow-size-distribution baseline of the FCM
// paper. MRAC is a single array of counters; its estimation step runs the
// same EM machinery as FCM with every counter treated as a degree-1
// virtual counter with one path.
package mrac

import (
	"fmt"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/em"
	"github.com/fcmsketch/fcm/internal/hashing"
)

// Sketch is a single-array counting sketch for FSD estimation.
type Sketch struct {
	counters []uint32
	hasher   hashing.Hasher
}

// Config parameterizes MRAC.
type Config struct {
	// MemoryBytes sets the array size: MemoryBytes/4 32-bit counters.
	MemoryBytes int
	// Hash supplies the hash function; nil selects BobHash.
	Hash hashing.Family
}

// New builds an MRAC sketch.
func New(cfg Config) (*Sketch, error) {
	w := cfg.MemoryBytes / 4
	if w < 1 {
		return nil, fmt.Errorf("mrac: memory %dB too small", cfg.MemoryBytes)
	}
	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0x00ac1dc0)
	}
	return &Sketch{counters: make([]uint32, w), hasher: fam.New(0)}, nil
}

// Update implements sketch.Updater.
func (s *Sketch) Update(key []byte, inc uint64) {
	i := hashing.Reduce(s.hasher.Hash(key), len(s.counters))
	sum := uint64(s.counters[i]) + inc
	if sum > 0xffffffff {
		sum = 0xffffffff
	}
	s.counters[i] = uint32(sum)
}

// Estimate implements sketch.Estimator (single-row Count-Min semantics).
func (s *Sketch) Estimate(key []byte) uint64 {
	return uint64(s.counters[hashing.Reduce(s.hasher.Hash(key), len(s.counters))])
}

// MemoryBytes implements sketch.Sized.
func (s *Sketch) MemoryBytes() int { return 4 * len(s.counters) }

// Width returns the number of counters.
func (s *Sketch) Width() int { return len(s.counters) }

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for i := range s.counters {
		s.counters[i] = 0
	}
}

// VirtualCounters exposes the array as degree-1 virtual counters so the
// shared EM engine can run on it.
func (s *Sketch) VirtualCounters() []core.VirtualCounter {
	vcs := make([]core.VirtualCounter, len(s.counters))
	for i, v := range s.counters {
		vcs[i] = core.VirtualCounter{Value: uint64(v), Degree: 1, Level: 1}
	}
	return vcs
}

// EstimateDistribution runs EM and returns the estimated flow-size
// distribution. iterations ≤ 0 selects the engine default. onIter, when
// non-nil, observes the estimate after each round.
func (s *Sketch) EstimateDistribution(iterations, workers int, onIter func(int, []float64)) (*em.Result, error) {
	return em.Run(em.Config{
		W1:          len(s.counters),
		Iterations:  iterations,
		Workers:     workers,
		OnIteration: onIter,
	}, [][]core.VirtualCounter{s.VirtualCounters()})
}
