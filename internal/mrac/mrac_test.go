package mrac

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"github.com/fcmsketch/fcm/internal/metrics"
)

func k(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 2}); err == nil {
		t.Error("expected error for tiny memory")
	}
}

func TestUpdateEstimate(t *testing.T) {
	s, err := New(Config{MemoryBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(k(1), 5)
	s.Update(k(1), 2)
	if got := s.Estimate(k(1)); got != 7 {
		t.Errorf("estimate %d want 7", got)
	}
	if s.MemoryBytes() != 1<<16 {
		t.Errorf("memory %d", s.MemoryBytes())
	}
	if s.Width() != 1<<14 {
		t.Errorf("width %d", s.Width())
	}
	s.Reset()
	if got := s.Estimate(k(1)); got != 0 {
		t.Errorf("after reset %d", got)
	}
}

func TestSaturation(t *testing.T) {
	s, err := New(Config{MemoryBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(k(1), 1<<34)
	s.Update(k(1), 1)
	if got := s.Estimate(k(1)); got != 0xffffffff {
		t.Errorf("saturated estimate %d", got)
	}
}

func TestVirtualCounters(t *testing.T) {
	s, err := New(Config{MemoryBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Update(k(1), 9)
	vcs := s.VirtualCounters()
	if len(vcs) != 16 {
		t.Fatalf("vc count %d", len(vcs))
	}
	sum := uint64(0)
	for _, vc := range vcs {
		if vc.Degree != 1 {
			t.Fatalf("degree %d", vc.Degree)
		}
		sum += vc.Value
	}
	if sum != 9 {
		t.Errorf("vc sum %d want 9", sum)
	}
}

func TestEstimateDistribution(t *testing.T) {
	s, err := New(Config{MemoryBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	truth := make([]float64, 2001)
	for f := uint64(0); f < 4000; f++ {
		size := 1 + rng.Intn(3)
		if f%80 == 0 {
			size = 300 + rng.Intn(1500)
		}
		s.Update(k(f), uint64(size))
		truth[size]++
	}
	res, err := s.EstimateDistribution(6, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w := metrics.WMRE(truth, res.Dist); w > 0.5 {
		t.Errorf("MRAC WMRE %f too high", w)
	}
	if math.Abs(res.N-4000)/4000 > 0.15 {
		t.Errorf("N %f want ~4000", res.N)
	}
}
