package exact

import (
	"math"
	"testing"

	"github.com/fcmsketch/fcm/internal/packet"
)

func key(b byte) packet.Key {
	var t packet.FiveTuple
	t.SrcIP = [4]byte{b, 0, 0, 1}
	return packet.KeyOf(t, packet.KeySrcIP)
}

func TestTrackerBasics(t *testing.T) {
	tr := New()
	tr.UpdateKey(key(1), 3)
	tr.UpdateKey(key(2), 1)
	tr.UpdateKey(key(1), 2)
	if got := tr.Count(key(1)); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := tr.Count(key(9)); got != 0 {
		t.Errorf("missing flow count = %d, want 0", got)
	}
	if tr.Total() != 6 {
		t.Errorf("total = %d, want 6", tr.Total())
	}
	if tr.Cardinality() != 2 {
		t.Errorf("cardinality = %d, want 2", tr.Cardinality())
	}
}

func TestFlowsIteration(t *testing.T) {
	tr := New()
	tr.UpdateKey(key(1), 1)
	tr.UpdateKey(key(2), 2)
	sum := uint64(0)
	n := 0
	tr.Flows(func(k packet.Key, c uint64) {
		sum += c
		n++
	})
	if sum != 3 || n != 2 {
		t.Errorf("iterated sum=%d n=%d", sum, n)
	}
}

func TestHeavyHitters(t *testing.T) {
	tr := New()
	tr.UpdateKey(key(1), 100)
	tr.UpdateKey(key(2), 10)
	tr.UpdateKey(key(3), 50)
	hh := tr.HeavyHitters(50)
	if len(hh) != 2 {
		t.Fatalf("hh size %d want 2", len(hh))
	}
	if hh[key(1)] != 100 || hh[key(3)] != 50 {
		t.Errorf("hh contents wrong: %v", hh)
	}
}

func TestDistribution(t *testing.T) {
	tr := New()
	tr.UpdateKey(key(1), 3)
	tr.UpdateKey(key(2), 3)
	tr.UpdateKey(key(3), 1)
	d := tr.Distribution()
	if len(d) != 4 {
		t.Fatalf("dist len %d want 4", len(d))
	}
	if d[1] != 1 || d[3] != 2 || d[2] != 0 {
		t.Errorf("dist %v", d)
	}
}

func TestEntropyUniform(t *testing.T) {
	// n equal flows → entropy log2(n).
	tr := New()
	for i := 0; i < 16; i++ {
		tr.UpdateKey(key(byte(i)), 10)
	}
	if got, want := tr.Entropy(), 4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("entropy %f want %f", got, want)
	}
}

func TestEntropySingleFlow(t *testing.T) {
	tr := New()
	tr.UpdateKey(key(1), 100)
	if got := tr.Entropy(); got != 0 {
		t.Errorf("entropy of single flow = %f, want 0", got)
	}
	if got := New().Entropy(); got != 0 {
		t.Errorf("entropy of empty tracker = %f, want 0", got)
	}
}

func TestEntropyOfDistributionMatchesTracker(t *testing.T) {
	tr := New()
	counts := []uint64{1, 1, 2, 3, 5, 8, 13, 21}
	for i, c := range counts {
		tr.UpdateKey(key(byte(i)), c)
	}
	got := EntropyOfDistribution(tr.Distribution())
	want := tr.Entropy()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("distribution entropy %f, tracker entropy %f", got, want)
	}
	if EntropyOfDistribution(nil) != 0 {
		t.Error("entropy of empty distribution should be 0")
	}
}

func TestHeavyChanges(t *testing.T) {
	a, b := New(), New()
	a.UpdateKey(key(1), 100) // drops to 10: change -90
	b.UpdateKey(key(1), 10)
	a.UpdateKey(key(2), 5) // grows to 95: change +90
	b.UpdateKey(key(2), 95)
	a.UpdateKey(key(3), 50) // stable
	b.UpdateKey(key(3), 55)
	b.UpdateKey(key(4), 70) // new flow: +70

	hc := HeavyChanges(a, b, 60)
	if len(hc) != 3 {
		t.Fatalf("heavy changes %v, want 3 entries", hc)
	}
	if hc[key(1)] != -90 || hc[key(2)] != 90 || hc[key(4)] != 70 {
		t.Errorf("heavy changes %v", hc)
	}
}
