// Package exact maintains exact per-flow statistics as the ground truth all
// sketch estimates are scored against: per-flow counts, flow-size
// distribution, entropy, cardinality and the heavy-hitter set.
package exact

import (
	"math"

	"github.com/fcmsketch/fcm/internal/packet"
)

// Tracker counts flows exactly using a hash map. It implements the same
// Update interface as the sketches so harness code can treat it uniformly.
type Tracker struct {
	counts map[packet.Key]uint64
	total  uint64
}

// New returns an empty Tracker.
func New() *Tracker {
	return &Tracker{counts: make(map[packet.Key]uint64)}
}

// UpdateKey adds inc to the count of the flow identified by k.
func (t *Tracker) UpdateKey(k packet.Key, inc uint64) {
	t.counts[k] += inc
	t.total += inc
}

// Count returns the exact count of flow k.
func (t *Tracker) Count(k packet.Key) uint64 { return t.counts[k] }

// Total returns the total number of recorded packets.
func (t *Tracker) Total() uint64 { return t.total }

// Cardinality returns the exact number of distinct flows.
func (t *Tracker) Cardinality() int { return len(t.counts) }

// Flows calls fn for every flow and its exact count.
func (t *Tracker) Flows(fn func(k packet.Key, count uint64)) {
	for k, c := range t.counts {
		fn(k, c)
	}
}

// HeavyHitters returns the set of flows with count ≥ threshold.
func (t *Tracker) HeavyHitters(threshold uint64) map[packet.Key]uint64 {
	hh := make(map[packet.Key]uint64)
	for k, c := range t.counts {
		if c >= threshold {
			hh[k] = c
		}
	}
	return hh
}

// Distribution returns the exact flow-size distribution: dist[s] is the
// number of flows with exactly s packets. Index 0 is unused.
func (t *Tracker) Distribution() []float64 {
	var max uint64
	for _, c := range t.counts {
		if c > max {
			max = c
		}
	}
	dist := make([]float64, max+1)
	for _, c := range t.counts {
		dist[c]++
	}
	return dist
}

// Entropy returns the exact flow entropy
// H = -Σ_i (x_i/m)·log2(x_i/m) over flows i with total m packets.
func (t *Tracker) Entropy() float64 {
	if t.total == 0 {
		return 0
	}
	m := float64(t.total)
	h := 0.0
	for _, c := range t.counts {
		p := float64(c) / m
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyOfDistribution computes flow entropy from a flow-size distribution
// (dist[s] = number of flows of size s), the form both the exact tracker and
// the EM estimate can share: H = -Σ_s n_s·(s/m)·log2(s/m).
func EntropyOfDistribution(dist []float64) float64 {
	m := 0.0
	for s := 1; s < len(dist); s++ {
		m += float64(s) * dist[s]
	}
	if m == 0 {
		return 0
	}
	h := 0.0
	for s := 1; s < len(dist); s++ {
		if dist[s] <= 0 {
			continue
		}
		p := float64(s) / m
		h -= dist[s] * p * math.Log2(p)
	}
	return h
}

// HeavyChanges compares two trackers (adjacent time windows) and returns
// flows whose count changed by at least threshold in absolute value.
func HeavyChanges(a, b *Tracker, threshold uint64) map[packet.Key]int64 {
	out := make(map[packet.Key]int64)
	for k, ca := range a.counts {
		d := int64(b.counts[k]) - int64(ca)
		if d >= int64(threshold) || -d >= int64(threshold) {
			out[k] = d
		}
	}
	for k, cb := range b.counts {
		if _, seen := a.counts[k]; seen {
			continue
		}
		if cb >= threshold {
			out[k] = int64(cb)
		}
	}
	return out
}
