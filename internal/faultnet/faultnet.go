// Package faultnet is a seeded, deterministic network-fault injector for
// testing the collection plane's degradation paths. It wraps a
// net.Listener so that every accepted net.Conn executes a "fault plan"
// drawn from a seeded PRNG: connection refusal, mid-frame resets after a
// byte budget, latency injection, partial (short) writes, byte corruption,
// and black-holing (reads stall until the deadline, writes vanish).
//
// Determinism: plans are drawn in accept order from a single seeded
// source, and each connection gets its own child PRNG derived from the
// seed and its accept index, so per-operation draws (latency, corruption
// positions) do not depend on goroutine interleaving. Two runs with the
// same seed and the same accept order inject the same faults — the
// property the chaos tests rely on, including under -race.
//
// Healing: SetConfig (or Heal) atomically replaces the fault program.
// Connections accepted afterwards get clean plans; connections accepted
// under the old program keep their faults until closed, which mirrors how
// a real outage drains.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Config is a fault program: per-class probabilities plus shape
// parameters. The zero value injects nothing (a transparent wrapper).
type Config struct {
	// Seed seeds the injector's PRNG. Plans drawn from equal seeds over
	// equal accept sequences are identical.
	Seed int64

	// RefuseProb is the probability an accepted connection is torn down
	// immediately — the peer observes a reset on first use, as with a
	// refused or instantly dropped connection.
	RefuseProb float64

	// BlackholeProb is the probability a connection black-holes: reads
	// block until the read deadline (or close) and writes report success
	// but deliver nothing — a silently partitioned peer.
	BlackholeProb float64

	// ResetProb is the probability a connection is reset mid-stream:
	// after ResetAfter bytes of combined traffic the next operation
	// performs a partial write (if writing) and then fails, and the
	// underlying connection is torn down — a mid-frame RST.
	ResetProb float64
	// ResetAfterMax bounds the byte budget before an injected reset;
	// the budget is drawn uniformly from [1, ResetAfterMax].
	// Defaults to 64 — small enough to hit mid-frame on real traffic.
	ResetAfterMax int

	// CorruptProb is the probability a connection corrupts traffic: each
	// Write flips one bit at a PRNG-chosen offset before forwarding.
	CorruptProb float64

	// MaxLatency, when positive, sleeps a uniform [0, MaxLatency) before
	// every read and write on every connection.
	MaxLatency time.Duration

	// MaxWriteChunk, when positive, caps how many bytes a single
	// underlying write forwards; larger writes are forwarded in chunks
	// (short writes at the syscall boundary, exercising any caller that
	// assumes one Write is one packet).
	MaxWriteChunk int
}

// Stats counts injected faults since the injector was created.
type Stats struct {
	Accepted  uint64 // connections wrapped
	Refused   uint64 // plans with immediate teardown
	Blackhole uint64 // plans with black-holing
	Resets    uint64 // connections reset mid-stream
	Corrupted uint64 // writes that had a bit flipped
	Delayed   uint64 // operations that slept injected latency
}

// Injector draws fault plans for accepted connections. Safe for
// concurrent use; draws are serialized so accept order alone determines
// the plan sequence.
type Injector struct {
	mu   sync.Mutex
	rng  *rand.Rand
	cfg  Config
	next int64 // accept index, feeds per-conn child PRNGs

	liveMu sync.Mutex
	live   map[*Conn]struct{}

	accepted  atomic.Uint64
	refused   atomic.Uint64
	blackhole atomic.Uint64
	resets    atomic.Uint64
	corrupted atomic.Uint64
	delayed   atomic.Uint64
}

// New builds an injector executing the given fault program.
func New(cfg Config) *Injector {
	if cfg.ResetAfterMax <= 0 {
		cfg.ResetAfterMax = 64
	}
	return &Injector{
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		cfg:  cfg,
		live: make(map[*Conn]struct{}),
	}
}

// SetConfig atomically replaces the fault program. The PRNG keeps its
// stream, so healing and re-breaking stay deterministic for a fixed
// accept sequence.
func (inj *Injector) SetConfig(cfg Config) {
	if cfg.ResetAfterMax <= 0 {
		cfg.ResetAfterMax = 64
	}
	inj.mu.Lock()
	inj.cfg = cfg
	inj.mu.Unlock()
}

// Heal drops every fault class: connections accepted from now on are
// clean. In-flight connections keep their plans until closed.
func (inj *Injector) Heal() { inj.SetConfig(Config{}) }

// Cut resets every live wrapped connection — the cable-pull primitive: a
// total outage is Cut plus a refuse-all SetConfig. It returns how many
// connections were cut. Black-holed reads waiting inside a cut connection
// fail immediately.
func (inj *Injector) Cut() int {
	inj.liveMu.Lock()
	conns := make([]*Conn, 0, len(inj.live))
	for c := range inj.live {
		conns = append(conns, c)
	}
	inj.liveMu.Unlock()
	for _, c := range conns {
		c.trip()
	}
	return len(conns)
}

func (inj *Injector) track(c *Conn) {
	inj.liveMu.Lock()
	inj.live[c] = struct{}{}
	inj.liveMu.Unlock()
}

func (inj *Injector) untrack(c *Conn) {
	inj.liveMu.Lock()
	delete(inj.live, c)
	inj.liveMu.Unlock()
}

// Stats returns fault counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		Accepted:  inj.accepted.Load(),
		Refused:   inj.refused.Load(),
		Blackhole: inj.blackhole.Load(),
		Resets:    inj.resets.Load(),
		Corrupted: inj.corrupted.Load(),
		Delayed:   inj.delayed.Load(),
	}
}

// plan is one connection's drawn faults.
type plan struct {
	refuse     bool
	blackhole  bool
	resetAfter int // bytes of combined traffic before a reset; 0 = never
	corrupt    bool
	latency    time.Duration // max per-op latency; 0 = none
	writeChunk int           // max bytes per underlying write; 0 = unlimited
	rng        *rand.Rand    // per-conn child PRNG for per-op draws
}

// drawPlan serializes plan draws: one connection, one draw sequence.
func (inj *Injector) drawPlan() plan {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	cfg := inj.cfg
	idx := inj.next
	inj.next++
	p := plan{
		latency:    cfg.MaxLatency,
		writeChunk: cfg.MaxWriteChunk,
		// Child PRNG from seed and accept index: per-op draws are
		// independent of scheduler interleaving across connections.
		rng: rand.New(rand.NewSource(cfg.Seed ^ (idx+1)*0x5851f42d4c957f2d)),
	}
	switch {
	case inj.rng.Float64() < cfg.RefuseProb:
		p.refuse = true
	case inj.rng.Float64() < cfg.BlackholeProb:
		p.blackhole = true
	case inj.rng.Float64() < cfg.ResetProb:
		p.resetAfter = 1 + inj.rng.Intn(cfg.ResetAfterMax)
	}
	if inj.rng.Float64() < cfg.CorruptProb {
		p.corrupt = true
	}
	inj.accepted.Add(1)
	if p.refuse {
		inj.refused.Add(1)
	}
	if p.blackhole {
		inj.blackhole.Add(1)
	}
	return p
}

// Listener wraps ln so every accepted connection executes a plan drawn
// from inj. Close and Addr pass through.
func Listen(ln net.Listener, inj *Injector) net.Listener {
	return &listener{Listener: ln, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.WrapConn(c), nil
}

// WrapConn applies a freshly drawn plan to an existing connection —
// usable on the dialing side too, for client-path fault injection.
func (inj *Injector) WrapConn(c net.Conn) net.Conn {
	p := inj.drawPlan()
	fc := &Conn{
		conn: c, plan: p, inj: inj,
		closed:    make(chan struct{}),
		tripped:   make(chan struct{}),
		dlChanged: make(chan struct{}),
	}
	if p.refuse {
		// Immediate teardown: the peer sees a reset on first use.
		abortConn(c)
		c.Close() //nolint:errcheck // teardown is the fault
		fc.broken.Store(true)
	} else {
		inj.track(fc)
	}
	return fc
}

// abortConn arranges for close to send RST instead of FIN where the
// platform supports it, so "refusal" looks like a hard failure rather
// than a clean EOF.
func abortConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0) //nolint:errcheck // best effort
	}
}

// errInjectedReset is what a reset connection's operations return.
type injectedError struct{ op string }

func (e injectedError) Error() string   { return "faultnet: injected connection reset during " + e.op }
func (e injectedError) Timeout() bool   { return false }
func (e injectedError) Temporary() bool { return false }

// Conn is a fault-wrapped connection.
type Conn struct {
	conn net.Conn
	plan plan
	inj  *Injector

	// opMu serializes per-op PRNG draws and the reset byte budget. The
	// collection protocol is strictly request/response per connection, so
	// this adds no real contention.
	opMu sync.Mutex
	used int // bytes counted against plan.resetAfter

	broken   atomic.Bool // reset tripped (or refused): all ops fail
	tripOnce sync.Once
	tripped  chan struct{} // closed by trip, wakes black-holed reads

	// Deadlines are tracked locally so black-holed reads can honor them
	// without touching the (never-reading) underlying connection.
	dlMu      sync.Mutex
	readDL    time.Time
	dlChanged chan struct{}

	closeOnce sync.Once
	closed    chan struct{}
}

// sleepLatency injects a deterministic per-op delay, bounded so a fault
// program can never stall a test longer than MaxLatency.
func (c *Conn) sleepLatency() {
	if c.plan.latency <= 0 {
		return
	}
	c.opMu.Lock()
	d := time.Duration(c.plan.rng.Int63n(int64(c.plan.latency)))
	c.opMu.Unlock()
	if d <= 0 {
		return
	}
	c.inj.delayed.Add(1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

// chargeBytes debits n bytes from the reset budget. It returns the number
// of bytes that may still be transferred and whether the reset fires now.
func (c *Conn) chargeBytes(n int) (allowed int, reset bool) {
	if c.plan.resetAfter == 0 {
		return n, false
	}
	c.opMu.Lock()
	defer c.opMu.Unlock()
	left := c.plan.resetAfter - c.used
	if left <= 0 {
		return 0, true
	}
	if n >= left {
		c.used = c.plan.resetAfter
		return left, true
	}
	c.used += n
	return n, false
}

func (c *Conn) trip() {
	if c.broken.CompareAndSwap(false, true) {
		c.inj.resets.Add(1)
		c.inj.untrack(c)
		c.tripOnce.Do(func() { close(c.tripped) })
		abortConn(c.conn)
		c.conn.Close() //nolint:errcheck // teardown is the fault
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.broken.Load() {
		return 0, injectedError{"read"}
	}
	c.sleepLatency()
	if c.plan.blackhole {
		return 0, c.waitReadDeadline()
	}
	if _, reset := c.chargeBytes(0); reset {
		c.trip()
		return 0, injectedError{"read"}
	}
	n, err := c.conn.Read(p)
	if n > 0 {
		if allowed, reset := c.chargeBytes(n); reset {
			c.trip()
			return allowed, injectedError{"read"}
		}
	}
	return n, err
}

// waitReadDeadline blocks a black-holed read until the deadline passes,
// the connection closes, or the deadline is moved.
func (c *Conn) waitReadDeadline() error {
	for {
		c.dlMu.Lock()
		dl := c.readDL
		changed := c.dlChanged
		c.dlMu.Unlock()

		var timeout <-chan time.Time
		var timer *time.Timer
		if !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return os.ErrDeadlineExceeded
			}
			timer = time.NewTimer(d)
			timeout = timer.C
		}
		select {
		case <-c.closed:
			if timer != nil {
				timer.Stop()
			}
			return net.ErrClosed
		case <-c.tripped:
			if timer != nil {
				timer.Stop()
			}
			return injectedError{"read"}
		case <-changed:
			if timer != nil {
				timer.Stop()
			}
			continue
		case <-timeout:
			return os.ErrDeadlineExceeded
		}
	}
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.broken.Load() {
		return 0, injectedError{"write"}
	}
	c.sleepLatency()
	if c.plan.blackhole {
		// Black hole: the write "succeeds" and the bytes vanish.
		return len(p), nil
	}
	buf := p
	if c.plan.corrupt && len(buf) > 0 {
		c.opMu.Lock()
		pos := c.plan.rng.Intn(len(buf))
		bit := byte(1) << c.plan.rng.Intn(8)
		c.opMu.Unlock()
		mutated := make([]byte, len(buf))
		copy(mutated, buf)
		mutated[pos] ^= bit
		buf = mutated
		c.inj.corrupted.Add(1)
	}
	allowed, reset := c.chargeBytes(len(buf))
	written := 0
	for written < allowed {
		chunk := allowed - written
		if c.plan.writeChunk > 0 && chunk > c.plan.writeChunk {
			chunk = c.plan.writeChunk
		}
		n, err := c.conn.Write(buf[written : written+chunk])
		written += n
		if err != nil {
			return written, err
		}
	}
	if reset {
		// Partial write then hard failure: a mid-frame RST.
		c.trip()
		return written, injectedError{"write"}
	}
	return written, nil
}

func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.inj.untrack(c)
		close(c.closed)
		err = c.conn.Close()
	})
	return err
}

func (c *Conn) LocalAddr() net.Addr  { return c.conn.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

func (c *Conn) SetDeadline(t time.Time) error {
	c.noteReadDeadline(t)
	return c.conn.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.noteReadDeadline(t)
	return c.conn.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	return c.conn.SetWriteDeadline(t)
}

// noteReadDeadline records the deadline for black-holed reads and wakes
// any read currently waiting on the old one.
func (c *Conn) noteReadDeadline(t time.Time) {
	c.dlMu.Lock()
	c.readDL = t
	close(c.dlChanged)
	c.dlChanged = make(chan struct{})
	c.dlMu.Unlock()
}

// String describes the connection's plan, for test logs.
func (c *Conn) String() string {
	p := c.plan
	return fmt.Sprintf("faultnet.Conn{refuse=%v blackhole=%v resetAfter=%d corrupt=%v latency=%v chunk=%d}",
		p.refuse, p.blackhole, p.resetAfter, p.corrupt, p.latency, p.writeChunk)
}
