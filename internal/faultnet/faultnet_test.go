package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// acceptPlans dials n connections through a wrapped loopback listener and
// returns each accepted connection's plan description, in accept order.
func acceptPlans(t *testing.T, inj *Injector, n int) []string {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Listen(raw, inj)
	defer ln.Close()

	plans := make([]string, 0, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			c, err := ln.Accept()
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			plans = append(plans, c.(*Conn).String())
			c.Close()
		}
	}()
	for i := 0; i < n; i++ {
		// A refused plan can RST the handshake before Dial returns; the
		// server still accepted (and drew the plan), so a dial error is
		// just the fault arriving early.
		if c, err := net.Dial("tcp", ln.Addr().String()); err == nil {
			c.Close()
		}
	}
	<-done
	return plans
}

func TestDeterministicPlans(t *testing.T) {
	cfg := Config{
		Seed:          7,
		RefuseProb:    0.2,
		BlackholeProb: 0.2,
		ResetProb:     0.3,
		CorruptProb:   0.25,
		MaxLatency:    3 * time.Millisecond,
		MaxWriteChunk: 5,
	}
	a := acceptPlans(t, New(cfg), 32)
	b := acceptPlans(t, New(cfg), 32)
	if len(a) != len(b) {
		t.Fatalf("plan counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d differs under equal seed:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	// A different seed must draw a different sequence.
	cfg.Seed = 8
	c := acceptPlans(t, New(cfg), 32)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds drew identical plan sequences")
	}
}

// pipePair returns a fault-wrapped server side and the raw client side.
func pipePair(inj *Injector) (wrapped net.Conn, peer net.Conn) {
	a, b := net.Pipe()
	return inj.WrapConn(a), b
}

func TestTransparentWhenZero(t *testing.T) {
	w, peer := pipePair(New(Config{Seed: 1}))
	defer w.Close()
	defer peer.Close()
	msg := []byte("hello fault-free world")
	go func() {
		peer.Write(msg) //nolint:errcheck
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(w, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("payload mangled: %q", got)
	}
}

func TestBlackholeHonorsReadDeadline(t *testing.T) {
	inj := New(Config{Seed: 1, BlackholeProb: 1})
	w, peer := pipePair(inj)
	defer w.Close()
	defer peer.Close()

	if err := w.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := w.Read(make([]byte, 8))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read: got %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond || d > 2*time.Second {
		t.Fatalf("deadline fired after %v", d)
	}
	// Writes into a black hole report success and deliver nothing.
	if n, err := w.Write([]byte("vanishes")); err != nil || n != 8 {
		t.Fatalf("blackholed write: n=%d err=%v", n, err)
	}
	if s := inj.Stats(); s.Blackhole != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestBlackholeWakesOnDeadlineMove(t *testing.T) {
	w, peer := pipePair(New(Config{Seed: 1, BlackholeProb: 1}))
	defer w.Close()
	defer peer.Close()

	// Start with no deadline, then move it while a read is in flight —
	// the read must observe the new, earlier deadline.
	errc := make(chan error, 1)
	go func() {
		_, err := w.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := w.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read ignored the moved deadline")
	}
}

func TestResetMidStream(t *testing.T) {
	inj := New(Config{Seed: 3, ResetProb: 1, ResetAfterMax: 1})
	// ResetAfterMax 1 → budget is exactly 1 byte: the first write is
	// partial (1 byte forwarded) and then fails.
	w, peer := pipePair(inj)
	defer w.Close()
	defer peer.Close()

	go io.Copy(io.Discard, peer) //nolint:errcheck
	n, err := w.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("expected injected reset")
	}
	if n != 1 {
		t.Fatalf("partial write forwarded %d bytes, want 1", n)
	}
	// The connection is dead for every subsequent operation.
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write after reset succeeded")
	}
	if _, err := w.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after reset succeeded")
	}
	if s := inj.Stats(); s.Resets != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	inj := New(Config{Seed: 5, CorruptProb: 1})
	w, peer := pipePair(inj)
	defer w.Close()
	defer peer.Close()

	msg := bytes.Repeat([]byte{0xAA}, 64)
	go func() {
		w.Write(msg) //nolint:errcheck
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range msg {
		x := msg[i] ^ got[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
	// The caller's buffer must not be mutated.
	if !bytes.Equal(msg, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	if s := inj.Stats(); s.Corrupted != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestShortWritesChunkButDeliverAll(t *testing.T) {
	w, peer := pipePair(New(Config{Seed: 2, MaxWriteChunk: 3}))
	defer w.Close()
	defer peer.Close()

	msg := []byte("0123456789abcdef")
	go func() {
		if n, err := w.Write(msg); err != nil || n != len(msg) {
			t.Errorf("chunked write: n=%d err=%v", n, err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("chunked payload mangled: %q", got)
	}
}

func TestRefusedConnectionFailsFast(t *testing.T) {
	inj := New(Config{Seed: 9, RefuseProb: 1})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := Listen(raw, inj)
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		// The server side is already dead; serving it is a no-op.
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Error("read on refused conn succeeded")
		}
		c.Close()
	}()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err == nil {
		// Refusal may land as a reset on the first read, or (when the RST
		// outruns the handshake) as a dial error — both are fail-fast.
		defer c.Close()
		c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("expected refused connection to fail the peer's read")
		}
	}
	if s := inj.Stats(); s.Refused != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestLatencyInjected(t *testing.T) {
	inj := New(Config{Seed: 11, MaxLatency: 10 * time.Millisecond})
	w, peer := pipePair(inj)
	defer w.Close()
	defer peer.Close()

	go func() {
		peer.Write(bytes.Repeat([]byte("x"), 32)) //nolint:errcheck
	}()
	if _, err := io.ReadFull(w, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if s := inj.Stats(); s.Delayed == 0 {
		t.Fatalf("no latency injected: %+v", s)
	}
}

func TestHealStopsNewFaults(t *testing.T) {
	inj := New(Config{Seed: 13, RefuseProb: 1})
	a, _ := net.Pipe()
	first := inj.WrapConn(a)
	if _, err := first.Write([]byte("x")); err == nil {
		t.Fatal("pre-heal connection should be refused")
	}
	first.Close()

	inj.Heal()
	w, peer := pipePair(inj)
	defer w.Close()
	defer peer.Close()
	go func() {
		peer.Write([]byte("ok")) //nolint:errcheck
	}()
	got := make([]byte, 2)
	if _, err := io.ReadFull(w, got); err != nil {
		t.Fatalf("post-heal connection still faulty: %v", err)
	}
	if string(got) != "ok" {
		t.Fatalf("payload %q", got)
	}
}
