package trace

import (
	"bytes"
	"math"
	"testing"

	"github.com/fcmsketch/fcm/internal/packet"
)

func TestGenerateRankZipf(t *testing.T) {
	tr, err := Generate(Config{
		Model: ModelRankZipf, Alpha: 1.0, TotalPackets: 100000,
		AvgFlowSize: 40, Seed: testSeed(t, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.NumPackets(); math.Abs(float64(got-100000)) > 1000 {
		t.Errorf("total packets %d, want ~100000", got)
	}
	if got := tr.NumFlows(); got != 2500 {
		t.Errorf("flows %d, want 2500", got)
	}
	// Rank model: sizes must be non-increasing (modulo the drift absorbed
	// by flow 0).
	for i := 2; i < len(tr.Sizes); i++ {
		if tr.Sizes[i] > tr.Sizes[i-1] {
			t.Fatalf("sizes not monotone at %d: %d > %d", i, tr.Sizes[i], tr.Sizes[i-1])
		}
	}
	// The top flow must be an elephant well above avg.
	if tr.Sizes[0] < 100*40 {
		t.Errorf("top flow %d too small for a rank-zipf elephant", tr.Sizes[0])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	seed := testSeed(t, 7)
	cfg := Config{Model: ModelSizeZipf, Alpha: 1.3, TotalPackets: 20000, Seed: seed, Shuffle: true}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumFlows() != b.NumFlows() || a.NumPackets() != b.NumPackets() {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("same seed produced different order at %d", i)
		}
	}
	c, err := Generate(Config{Model: ModelSizeZipf, Alpha: 1.3, TotalPackets: 20000, Seed: seed + 1, Shuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Keys {
		if a.Keys[i] != c.Keys[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical keys")
	}
}

func TestSizeZipfMeanAndMax(t *testing.T) {
	// §7.4: avg ~50, max size solved from alpha. For alpha=1.1 the solved
	// max should be a few hundred; for alpha=1.7 tens of thousands.
	cases := []struct {
		alpha        float64
		maxLo, maxHi uint32
	}{
		{1.1, 300, 3000},
		{1.7, 10000, 300000},
	}
	for _, c := range cases {
		tr, err := Generate(Config{
			Model: ModelSizeZipf, Alpha: c.alpha, TotalPackets: 500000,
			AvgFlowSize: 50, Seed: testSeed(t, 3),
		})
		if err != nil {
			t.Fatal(err)
		}
		mean := float64(tr.NumPackets()) / float64(tr.NumFlows())
		if mean < 30 || mean > 75 {
			t.Errorf("alpha %.1f: mean flow size %.1f, want ~50", c.alpha, mean)
		}
		smax := solveSmax(c.alpha, 50)
		if uint32(smax) < c.maxLo || uint32(smax) > c.maxHi {
			t.Errorf("alpha %.1f: solved smax %d outside [%d,%d]", c.alpha, smax, c.maxLo, c.maxHi)
		}
	}
}

func TestSolveSmaxMonotone(t *testing.T) {
	prev := 0
	for _, alpha := range []float64{1.1, 1.3, 1.5, 1.7} {
		s := solveSmax(alpha, 50)
		if s <= prev {
			t.Errorf("smax not increasing with alpha: alpha=%.1f smax=%d prev=%d", alpha, s, prev)
		}
		prev = s
	}
}

func TestSizesMatchOrder(t *testing.T) {
	tr, err := CAIDALike(50000, testSeed(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]uint32, tr.NumFlows())
	tr.ForEachPacket(func(id int, key []byte) {
		counts[id]++
		if !bytes.Equal(key, tr.Keys[id].Bytes()) {
			t.Fatalf("flow %d: key mismatch", id)
		}
	})
	for i, c := range counts {
		if c != tr.Sizes[i] {
			t.Fatalf("flow %d: order count %d != size %d", i, c, tr.Sizes[i])
		}
	}
}

func TestKeysDistinct(t *testing.T) {
	tr, err := CAIDALike(20000, testSeed(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[packet.Key]bool)
	for _, k := range tr.Keys {
		if seen[k] {
			t.Fatalf("duplicate flow key %v", k)
		}
		seen[k] = true
	}
}

func TestTrueCounts(t *testing.T) {
	tr, err := CAIDALike(20000, testSeed(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	m := tr.TrueCounts()
	if len(m) != tr.NumFlows() {
		t.Fatalf("TrueCounts has %d entries, want %d", len(m), tr.NumFlows())
	}
	for i, k := range tr.Keys {
		if m[k] != tr.Sizes[i] {
			t.Fatalf("flow %d: count %d want %d", i, m[k], tr.Sizes[i])
		}
	}
}

func TestWindows(t *testing.T) {
	tr, err := CAIDALike(30000, testSeed(t, 6))
	if err != nil {
		t.Fatal(err)
	}
	ws := tr.Windows(4)
	if len(ws) != 4 {
		t.Fatalf("got %d windows", len(ws))
	}
	totalPkts := 0
	sumSizes := make([]uint32, tr.NumFlows())
	for _, w := range ws {
		totalPkts += w.NumPackets()
		for i, s := range w.Sizes {
			sumSizes[i] += s
		}
	}
	if totalPkts != tr.NumPackets() {
		t.Errorf("windows lost packets: %d vs %d", totalPkts, tr.NumPackets())
	}
	for i := range sumSizes {
		if sumSizes[i] != tr.Sizes[i] {
			t.Fatalf("flow %d: window sizes sum %d != %d", i, sumSizes[i], tr.Sizes[i])
		}
	}
	if got := tr.Windows(0); len(got) != 1 {
		t.Errorf("Windows(0) should clamp to 1, got %d", len(got))
	}
}

func TestMaxSize(t *testing.T) {
	tr := &Trace{Sizes: []uint32{3, 9, 1}}
	if tr.MaxSize() != 9 {
		t.Errorf("MaxSize %d", tr.MaxSize())
	}
}

func TestPcapRoundTrip(t *testing.T) {
	tr, err := CAIDALike(5000, testSeed(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf, 1e9, 15e9); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadPcap(&buf, packet.KeySrcIP)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("%d frames skipped", skipped)
	}
	if got.NumPackets() != tr.NumPackets() {
		t.Fatalf("packets %d want %d", got.NumPackets(), tr.NumPackets())
	}
	want := tr.TrueCounts()
	gotCounts := got.TrueCounts()
	if len(gotCounts) != len(want) {
		t.Fatalf("flows %d want %d", len(gotCounts), len(want))
	}
	for k, v := range want {
		if gotCounts[k] != v {
			t.Fatalf("flow %v: count %d want %d", k, gotCounts[k], v)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Alpha: 1, TotalPackets: 0}); err == nil {
		t.Error("expected error for zero packets")
	}
	if _, err := Generate(Config{Alpha: 0, TotalPackets: 10}); err == nil {
		t.Error("expected error for zero alpha")
	}
	if _, err := Generate(Config{Model: Model(99), Alpha: 1, TotalPackets: 10}); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestShuffleChangesOrder(t *testing.T) {
	base := Config{Model: ModelRankZipf, Alpha: 1.0, TotalPackets: 10000, AvgFlowSize: 10, Seed: testSeed(t, 1)}
	a, _ := Generate(base)
	base.Shuffle = true
	b, _ := Generate(base)
	if a.NumPackets() != b.NumPackets() {
		t.Fatal("shuffle changed packet count")
	}
	same := 0
	for i := range a.Order {
		if a.Order[i] == b.Order[i] {
			same++
		}
	}
	if same == len(a.Order) {
		t.Error("shuffle produced identical order")
	}
}

func BenchmarkGenerateCAIDALike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CAIDALike(200000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGenerateFiveTupleKeys(t *testing.T) {
	tr, err := Generate(Config{
		Model: ModelRankZipf, Alpha: 1.0, TotalPackets: 20000,
		AvgFlowSize: 20, Seed: testSeed(t, 3), KeyKind: packet.KeyFiveTuple,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[packet.Key]bool)
	for _, k := range tr.Keys {
		if k.Len != 13 {
			t.Fatalf("key length %d, want 13", k.Len)
		}
		if seen[k] {
			t.Fatal("duplicate 5-tuple key")
		}
		seen[k] = true
	}
	// 5-tuple traces round-trip through pcap keyed by 5-tuple.
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadPcap(&buf, packet.KeyFiveTuple)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPackets() != tr.NumPackets() {
		t.Errorf("packets %d want %d", got.NumPackets(), tr.NumPackets())
	}
}

func TestFiveTuplePcapPreservesKeys(t *testing.T) {
	tr, err := Generate(Config{
		Model: ModelRankZipf, Alpha: 1.0, TotalPackets: 5000,
		AvgFlowSize: 10, Seed: testSeed(t, 11), KeyKind: packet.KeyFiveTuple,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadPcap(&buf, packet.KeyFiveTuple)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d skipped", skipped)
	}
	want := tr.TrueCounts()
	gotCounts := got.TrueCounts()
	for k, v := range want {
		if gotCounts[k] != v {
			t.Fatalf("5-tuple %v: count %d want %d", k, gotCounts[k], v)
		}
	}
}
