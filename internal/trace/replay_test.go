package trace

import (
	"bytes"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/packet"
)

// countingUpdater is an exact reference sink for replay equivalence tests.
type countingUpdater struct{ counts map[string]uint64 }

func newCountingUpdater() *countingUpdater {
	return &countingUpdater{counts: make(map[string]uint64)}
}

func (c *countingUpdater) Update(key []byte, inc uint64) { c.counts[string(key)] += inc }

func (c *countingUpdater) UpdateBatch(keys [][]byte, inc uint64) {
	for _, k := range keys {
		c.counts[string(k)] += inc
	}
}

func replaySketch(t *testing.T) *core.Sketch {
	t.Helper()
	sk, err := core.New(core.Config{
		K: 8, Trees: 2, LeafWidth: 4096, Widths: []int{8, 16, 32},
		Hash: hashing.NewBobFamily(0xfc3141),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// TestReplayMatchesGroundTruth: Replay must deliver exactly the trace's
// per-flow packet counts, once per packet, in arrival order semantics.
func TestReplayMatchesGroundTruth(t *testing.T) {
	tr, err := CAIDALike(20_000, testSeed(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	u := newCountingUpdater()
	tr.Replay(u)
	for k, want := range tr.TrueCounts() {
		kk := k
		if got := u.counts[string(kk.Bytes())]; got != uint64(want) {
			t.Fatalf("flow %v: replayed %d packets, want %d", k, got, want)
		}
	}
}

// TestBatchReplayerMatchesReplay: the batched replay must deliver the same
// multiset of updates as the unbatched one, including the final short
// batch, across batch sizes that do and do not divide the packet count.
func TestBatchReplayerMatchesReplay(t *testing.T) {
	tr, err := CAIDALike(10_007, testSeed(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	want := newCountingUpdater()
	tr.Replay(want)
	for _, batch := range []int{1, 7, 256, 1 << 20} {
		got := newCountingUpdater()
		NewBatchReplayer(batch).Replay(tr, got)
		if len(got.counts) != len(want.counts) {
			t.Fatalf("batch %d: %d flows, want %d", batch, len(got.counts), len(want.counts))
		}
		for k, v := range want.counts {
			if got.counts[k] != v {
				t.Fatalf("batch %d flow %x: %d updates, want %d", batch, k, got.counts[k], v)
			}
		}
	}
}

// TestBatchReplayerZeroAllocs: replaying into a real sketch through the
// batch path must not allocate at all — the acceptance criterion for the
// zero-alloc replay loop.
func TestBatchReplayerZeroAllocs(t *testing.T) {
	tr, err := CAIDALike(20_000, testSeed(t, 13))
	if err != nil {
		t.Fatal(err)
	}
	sk := replaySketch(t)
	r := NewBatchReplayer(256)
	r.Replay(tr, sk) // warm-up: buffer at capacity
	if avg := testing.AllocsPerRun(3, func() { r.Replay(tr, sk) }); avg != 0 {
		t.Errorf("batched replay allocates %.1f times per run, want 0", avg)
	}
}

// TestReplayZeroAllocs: even the unbatched replay loop is allocation-free,
// since key views point into the trace's key table.
func TestReplayZeroAllocs(t *testing.T) {
	tr, err := CAIDALike(20_000, testSeed(t, 14))
	if err != nil {
		t.Fatal(err)
	}
	sk := replaySketch(t)
	tr.Replay(sk)
	if avg := testing.AllocsPerRun(3, func() { tr.Replay(sk) }); avg != 0 {
		t.Errorf("unbatched replay allocates %.1f times per run, want 0", avg)
	}
}

// TestReplayPcapMatchesReadPcap: streaming a capture straight into an
// updater must count exactly what materializing the Trace first would.
func TestReplayPcapMatchesReadPcap(t *testing.T) {
	tr, err := CAIDALike(5_000, testSeed(t, 15))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf, 1e9, 15e9); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	u := newCountingUpdater()
	packets, skipped, err := ReplayPcap(bytes.NewReader(data), packet.KeySrcIP, u)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("%d frames skipped", skipped)
	}
	if packets != tr.NumPackets() {
		t.Errorf("replayed %d packets, want %d", packets, tr.NumPackets())
	}
	ref, _, err := ReadPcap(bytes.NewReader(data), packet.KeySrcIP)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range ref.TrueCounts() {
		kk := k
		if got := u.counts[string(kk.Bytes())]; got != uint64(want) {
			t.Fatalf("flow %v: streamed %d packets, want %d", k, got, want)
		}
	}
}

// TestReplayPcapPerPacketAllocs: the streaming pcap→sketch loop must not
// allocate per packet. Setup (bufio reader, frame buffer, the hoisted key)
// costs a fixed handful of allocations; amortized over the capture they
// must vanish.
func TestReplayPcapPerPacketAllocs(t *testing.T) {
	tr, err := CAIDALike(20_000, testSeed(t, 16))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf, 1e9, 15e9); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	sk := replaySketch(t)
	rd := bytes.NewReader(data)
	total := testing.AllocsPerRun(3, func() {
		rd.Reset(data)
		if _, _, err := ReplayPcap(rd, packet.KeySrcIP, sk); err != nil {
			t.Fatal(err)
		}
	})
	perPacket := total / float64(tr.NumPackets())
	if perPacket > 0.01 {
		t.Errorf("pcap replay allocates %.4f per packet (%.0f per run), want ~0", perPacket, total)
	}
}
