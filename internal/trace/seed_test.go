package trace

import (
	"flag"
	"testing"
)

// flagSeed overrides the generation seed of every randomized test in this
// package, so a failure seen in one trace shape reproduces directly:
//
//	go test ./internal/trace -run <TestName> -seed <printed seed>
var flagSeed = flag.Int64("seed", 0, "override the seed of every randomized trace test")

// testSeed returns the seed a randomized test should generate with: the
// -seed override when set, otherwise def. Either way the choice is logged,
// so every failure report carries the one number needed to replay it.
func testSeed(tb testing.TB, def int64) int64 {
	tb.Helper()
	s := def
	if *flagSeed != 0 {
		s = *flagSeed
	}
	tb.Logf("trace seed %d (override with -seed)", s)
	return s
}
