// Package trace generates and loads the packet traces the evaluation runs
// on. Two synthetic models are provided:
//
//   - RankZipf: flow i (by rank) has size ∝ i^(-alpha). This mimics real
//     backbone traces (CAIDA): an enormous number of mice plus a few
//     elephants far above the heavy-hitter threshold. CAIDALike uses this
//     model with alpha=1.0 and an average flow size of 40 packets, matching
//     the trace statistics the paper reports (§7.2: ~20M packets, ~0.5M
//     source-IP flows per 15s window).
//
//   - SizeZipf: flow sizes are drawn i.i.d. from a truncated power law
//     P(s) ∝ s^(-alpha), 1 ≤ s ≤ smax, with smax solved so the mean flow
//     size is ~50 packets. This reproduces the synthetic traces of §7.4:
//     for alpha between 1.1 and 1.7 the solved smax ranges from a few
//     hundred to ~100K packets, exactly the "maximum flow size varies
//     between 400 to 100K" the paper states.
//
// Traces can be exported to and imported from pcap files (via
// internal/pcap), so the ingest path used by the examples is the same one a
// real capture would take.
package trace

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"github.com/fcmsketch/fcm/internal/packet"
	"github.com/fcmsketch/fcm/internal/pcap"
	"github.com/fcmsketch/fcm/internal/sketch"
)

// Model selects the flow-size model of a synthetic trace.
type Model int

// Supported models.
const (
	// ModelRankZipf assigns flow sizes by rank: size(i) ∝ i^(-alpha).
	ModelRankZipf Model = iota
	// ModelSizeZipf draws flow sizes i.i.d. from a truncated power law.
	ModelSizeZipf
)

// Config parameterizes trace generation.
type Config struct {
	// Model selects the flow-size model.
	Model Model
	// Alpha is the Zipf skewness parameter.
	Alpha float64
	// TotalPackets is the approximate target packet count.
	TotalPackets int
	// AvgFlowSize is the target mean flow size in packets (default 50).
	AvgFlowSize float64
	// MaxFlowSize caps flow sizes for ModelSizeZipf. Zero means "solve
	// from AvgFlowSize", the paper's construction.
	MaxFlowSize int
	// Seed makes generation deterministic.
	Seed int64
	// Shuffle randomizes packet arrival order (needed by the TopK /
	// HashPipe eviction dynamics). Off, packets arrive interleaved
	// round-robin, which is cheaper and sufficient for pure sketches.
	Shuffle bool
	// KeyKind selects the flow-key granularity (default source IP, the
	// paper's keying; KeyFiveTuple generates distinct 5-tuples instead).
	KeyKind packet.KeyKind
}

// Trace is a generated or loaded packet trace with exact ground truth.
type Trace struct {
	// Keys holds one flow key per flow; the index is the flow ID.
	Keys []packet.Key
	// Sizes holds the exact packet count of each flow.
	Sizes []uint32
	// Order is the packet arrival order as flow IDs.
	Order []uint32
}

// NumFlows returns the number of distinct flows.
func (t *Trace) NumFlows() int { return len(t.Keys) }

// NumPackets returns the total number of packets.
func (t *Trace) NumPackets() int { return len(t.Order) }

// ForEachPacket calls fn for every packet in arrival order with the flow ID
// and the encoded flow key.
func (t *Trace) ForEachPacket(fn func(flowID int, key []byte)) {
	for _, id := range t.Order {
		fn(int(id), t.Keys[id].Bytes())
	}
}

// Replay feeds every packet to u in arrival order with increment 1 — the
// unbatched ingest baseline. The key views point into the trace's own key
// table, so no bytes are copied and nothing is allocated per packet.
func (t *Trace) Replay(u sketch.Updater) {
	for _, id := range t.Order {
		u.Update(t.Keys[id].Bytes(), 1)
	}
}

// BatchReplayer replays traces through the batched ingest path with a
// reusable key-view buffer: after construction, a replay performs zero
// allocations per packet. One BatchReplayer serves any number of
// consecutive replays; it is not safe for concurrent use.
type BatchReplayer struct {
	batch int
	keys  [][]byte
}

// NewBatchReplayer sizes the reusable buffer to batch keys (default 256).
func NewBatchReplayer(batch int) *BatchReplayer {
	if batch <= 0 {
		batch = 256
	}
	return &BatchReplayer{batch: batch, keys: make([][]byte, 0, batch)}
}

// Replay feeds t's packets to bu in arrival order, batch keys per
// UpdateBatch call, with increment 1. The final short batch is flushed
// before returning. The key views are stable (they point into t's key
// table), so the BatchUpdater's no-retention rule is trivially satisfied.
func (r *BatchReplayer) Replay(t *Trace, bu sketch.BatchUpdater) {
	keys := r.keys[:0]
	for _, id := range t.Order {
		keys = append(keys, t.Keys[id].Bytes())
		if len(keys) == r.batch {
			bu.UpdateBatch(keys, 1)
			keys = keys[:0]
		}
	}
	bu.UpdateBatch(keys, 1)
	r.keys = keys[:0]
}

// TrueCounts returns the ground-truth per-flow counts keyed by flow key.
func (t *Trace) TrueCounts() map[packet.Key]uint32 {
	m := make(map[packet.Key]uint32, len(t.Keys))
	for i, k := range t.Keys {
		m[k] = t.Sizes[i]
	}
	return m
}

// MaxSize returns the largest flow size in the trace.
func (t *Trace) MaxSize() uint32 {
	var mx uint32
	for _, s := range t.Sizes {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Windows splits the packet stream into n equal consecutive windows, each a
// Trace sharing the flow-key table but with per-window sizes and order.
// Used by the heavy-change experiments (§4.4).
func (t *Trace) Windows(n int) []*Trace {
	if n <= 0 {
		n = 1
	}
	out := make([]*Trace, n)
	per := len(t.Order) / n
	for w := 0; w < n; w++ {
		lo := w * per
		hi := lo + per
		if w == n-1 {
			hi = len(t.Order)
		}
		sizes := make([]uint32, len(t.Keys))
		order := t.Order[lo:hi]
		for _, id := range order {
			sizes[id]++
		}
		out[w] = &Trace{Keys: t.Keys, Sizes: sizes, Order: order}
	}
	return out
}

// Generate builds a synthetic trace from cfg.
func Generate(cfg Config) (*Trace, error) {
	if cfg.TotalPackets <= 0 {
		return nil, fmt.Errorf("trace: TotalPackets must be positive, got %d", cfg.TotalPackets)
	}
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("trace: Alpha must be positive, got %f", cfg.Alpha)
	}
	if cfg.AvgFlowSize <= 0 {
		cfg.AvgFlowSize = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var sizes []uint32
	switch cfg.Model {
	case ModelRankZipf:
		sizes = rankZipfSizes(cfg.TotalPackets, cfg.Alpha, cfg.AvgFlowSize)
	case ModelSizeZipf:
		sizes = sizeZipfSizes(rng, cfg.TotalPackets, cfg.Alpha, cfg.AvgFlowSize, cfg.MaxFlowSize)
	default:
		return nil, fmt.Errorf("trace: unknown model %d", cfg.Model)
	}

	tr := &Trace{Sizes: sizes}
	tr.Keys = distinctKeys(rng, len(sizes), cfg.KeyKind)
	tr.Order = buildOrder(rng, sizes, cfg.Shuffle)
	return tr, nil
}

// CAIDALike generates a trace with the statistics of the paper's CAIDA
// Equinix-NYC windows: source-IP flows, average size ~40 packets, a handful
// of elephants well above the 0.05% heavy-hitter threshold.
func CAIDALike(totalPackets int, seed int64) (*Trace, error) {
	return Generate(Config{
		Model:        ModelRankZipf,
		Alpha:        1.0,
		TotalPackets: totalPackets,
		AvgFlowSize:  40,
		Seed:         seed,
		Shuffle:      true,
	})
}

// rankZipfSizes assigns size(i) = C * (i+1)^(-alpha) with N chosen from the
// average flow size and C normalized so the total is ~totalPackets.
func rankZipfSizes(totalPackets int, alpha, avg float64) []uint32 {
	n := int(float64(totalPackets) / avg)
	if n < 1 {
		n = 1
	}
	// Harmonic-like normalizer H = sum i^(-alpha).
	h := 0.0
	for i := 1; i <= n; i++ {
		h += math.Pow(float64(i), -alpha)
	}
	c := float64(totalPackets) / h
	sizes := make([]uint32, n)
	assigned := 0
	for i := 0; i < n; i++ {
		s := int(c * math.Pow(float64(i+1), -alpha))
		if s < 1 {
			s = 1
		}
		sizes[i] = uint32(s)
		assigned += s
	}
	// Absorb rounding drift in the largest flow so the total is exact
	// when possible.
	if diff := totalPackets - assigned; diff > 0 {
		sizes[0] += uint32(diff)
	} else if diff < 0 && sizes[0] > uint32(-diff) {
		sizes[0] -= uint32(-diff)
	}
	return sizes
}

// sizeZipfSizes draws i.i.d. flow sizes from P(s) ∝ s^(-alpha) on
// [1, smax]. When smax is zero it is solved so the distribution mean is avg
// (§7.4's construction). The number of flows is totalPackets/avg.
func sizeZipfSizes(rng *rand.Rand, totalPackets int, alpha, avg float64, smax int) []uint32 {
	if smax <= 0 {
		smax = solveSmax(alpha, avg)
	}
	cdf := powerLawCDF(alpha, smax)
	n := int(float64(totalPackets) / avg)
	if n < 1 {
		n = 1
	}
	sizes := make([]uint32, n)
	for i := range sizes {
		u := rng.Float64()
		// Invert the CDF by binary search: first index with cdf ≥ u.
		s := sort.SearchFloat64s(cdf, u) + 1
		if s > smax {
			s = smax
		}
		sizes[i] = uint32(s)
	}
	return sizes
}

// powerLawCDF tabulates the CDF of P(s) ∝ s^(-alpha) for s in [1, smax].
func powerLawCDF(alpha float64, smax int) []float64 {
	cdf := make([]float64, smax)
	total := 0.0
	for s := 1; s <= smax; s++ {
		total += math.Pow(float64(s), -alpha)
		cdf[s-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

// solveSmax binary-searches the truncation point of the power law so its
// mean equals avg.
func solveSmax(alpha, avg float64) int {
	mean := func(smax int) float64 {
		num, den := 0.0, 0.0
		for s := 1; s <= smax; s++ {
			p := math.Pow(float64(s), -alpha)
			num += float64(s) * p
			den += p
		}
		return num / den
	}
	lo, hi := 2, 1
	// Grow hi until the mean exceeds the target (the mean is monotone in
	// smax for alpha > 0).
	for {
		hi *= 2
		if mean(hi) >= avg || hi >= 1<<24 {
			break
		}
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if mean(mid) < avg {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// distinctKeys generates n distinct random flow keys of the given kind.
func distinctKeys(rng *rand.Rand, n int, kind packet.KeyKind) []packet.Key {
	keys := make([]packet.Key, 0, n)
	seen := make(map[packet.Key]struct{}, n)
	for len(keys) < n {
		var t packet.FiveTuple
		ip := rng.Uint32()
		t.SrcIP[0] = byte(ip >> 24)
		t.SrcIP[1] = byte(ip >> 16)
		t.SrcIP[2] = byte(ip >> 8)
		t.SrcIP[3] = byte(ip)
		if kind != packet.KeySrcIP {
			dip := rng.Uint32()
			t.DstIP[0] = byte(dip >> 24)
			t.DstIP[1] = byte(dip >> 16)
			t.DstIP[2] = byte(dip >> 8)
			t.DstIP[3] = byte(dip)
			t.SrcPort = uint16(rng.Uint32())
			t.DstPort = uint16(rng.Uint32())
			t.Proto = packet.ProtoTCP
			if rng.Intn(4) == 0 {
				t.Proto = packet.ProtoUDP
			}
		}
		k := packet.KeyOf(t, kind)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys
}

// buildOrder materializes the packet arrival order. Without shuffling,
// packets are emitted in a round-robin interleave over the flows, which
// avoids pathological bursts while staying O(total).
func buildOrder(rng *rand.Rand, sizes []uint32, shuffle bool) []uint32 {
	total := 0
	for _, s := range sizes {
		total += int(s)
	}
	order := make([]uint32, 0, total)
	remaining := make([]uint32, len(sizes))
	copy(remaining, sizes)
	for left := total; left > 0; {
		emitted := false
		for id := range remaining {
			if remaining[id] > 0 {
				order = append(order, uint32(id))
				remaining[id]--
				left--
				emitted = true
			}
		}
		if !emitted {
			break
		}
	}
	if shuffle {
		rng.Shuffle(len(order), func(i, j int) {
			order[i], order[j] = order[j], order[i]
		})
	}
	return order
}

// ---------------------------------------------------------------------------
// pcap import/export
// ---------------------------------------------------------------------------

// WritePcap encodes the trace as Ethernet/IPv4 frames into w. Timestamps
// are spread uniformly over duration nanoseconds starting at startNS. Every
// flow is emitted as a TCP flow between its source IP and a fixed collector
// address; the source IP is the flow identity, matching the paper's keying.
func (t *Trace) WritePcap(w io.Writer, startNS, durationNS int64) error {
	pw, err := pcap.NewWriter(w, pcap.LinkEthernet, 262144, true)
	if err != nil {
		return err
	}
	n := len(t.Order)
	var step int64 = 1
	if n > 1 && durationNS > int64(n) {
		step = durationNS / int64(n)
	}
	for i, id := range t.Order {
		k := t.Keys[id]
		var tu packet.FiveTuple
		copy(tu.SrcIP[:], k.Buf[0:4])
		if k.Len >= 8 {
			// The key carries its own destination (and, at 13 bytes, the
			// full 5-tuple): preserve it on the wire.
			copy(tu.DstIP[:], k.Buf[4:8])
		} else {
			tu.DstIP = [4]byte{10, 0, 0, 1}
		}
		if k.Len == 13 {
			tu.SrcPort = uint16(k.Buf[8])<<8 | uint16(k.Buf[9])
			tu.DstPort = uint16(k.Buf[10])<<8 | uint16(k.Buf[11])
			tu.Proto = packet.Proto(k.Buf[12])
			if tu.Proto != packet.ProtoTCP && tu.Proto != packet.ProtoUDP {
				tu.Proto = packet.ProtoTCP
			}
		} else {
			tu.SrcPort = uint16(id%60000) + 1024
			tu.DstPort = 80
			tu.Proto = packet.ProtoTCP
		}
		frame := packet.EncodeEthernetIPv4(tu, 0)
		if err := pw.Write(startNS+int64(i)*step, len(frame), frame); err != nil {
			return err
		}
	}
	return pw.Flush()
}

// ReplayPcap streams a pcap capture directly into u without materializing
// a Trace: one pass over the file, reusing the pcap reader's frame buffer
// and a single hoisted Key value, so the steady-state per-packet cost is
// parse + update with no allocation. It returns the number of packets
// ingested and the number of unparsable frames skipped.
func ReplayPcap(r io.Reader, kind packet.KeyKind, u sketch.Updater) (packets, skipped int, err error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return 0, 0, err
	}
	raw := pr.Header().LinkType == pcap.LinkRaw
	// k lives outside the loop: Bytes takes its address, which would
	// otherwise heap-allocate a fresh Key on every packet.
	var k packet.Key
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			return packets, skipped, nil
		}
		if err != nil {
			return packets, skipped, err
		}
		var tu packet.FiveTuple
		var perr error
		if raw {
			tu, perr = packet.ParseIPv4(rec.Data)
			if perr != nil {
				tu, perr = packet.ParseIPv6(rec.Data)
			}
		} else {
			tu, perr = packet.ParseEthernet(rec.Data)
		}
		if perr != nil {
			skipped++
			continue
		}
		k = packet.KeyOf(tu, kind)
		u.Update(k.Bytes(), 1)
		packets++
	}
}

// ReadPcap loads a pcap stream into a Trace, keying flows by kind. Frames
// that fail to parse are skipped and counted in the returned skip count.
func ReadPcap(r io.Reader, kind packet.KeyKind) (*Trace, int, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, 0, err
	}
	raw := pr.Header().LinkType == pcap.LinkRaw
	tr := &Trace{}
	ids := make(map[packet.Key]uint32)
	skipped := 0
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, skipped, err
		}
		var tu packet.FiveTuple
		var perr error
		if raw {
			tu, perr = packet.ParseIPv4(rec.Data)
			if perr != nil {
				tu, perr = packet.ParseIPv6(rec.Data)
			}
		} else {
			tu, perr = packet.ParseEthernet(rec.Data)
		}
		if perr != nil {
			skipped++
			continue
		}
		k := packet.KeyOf(tu, kind)
		id, ok := ids[k]
		if !ok {
			id = uint32(len(tr.Keys))
			ids[k] = id
			tr.Keys = append(tr.Keys, k)
			tr.Sizes = append(tr.Sizes, 0)
		}
		tr.Sizes[id]++
		tr.Order = append(tr.Order, id)
	}
	return tr, skipped, nil
}
