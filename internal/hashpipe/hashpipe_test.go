package hashpipe

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func k(i uint64) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(i))
	return b[:]
}

func newTest(t testing.TB, mem int) *Sketch {
	t.Helper()
	s, err := New(Config{MemoryBytes: mem, Stages: 6})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 100, Stages: 0}); err == nil {
		t.Error("expected stages error")
	}
	if _, err := New(Config{MemoryBytes: 4, Stages: 6}); err == nil {
		t.Error("expected memory error")
	}
	if _, err := New(Config{MemoryBytes: 100, Stages: 2, KeySize: 20}); err == nil {
		t.Error("expected key size error")
	}
}

func TestSingleFlowExact(t *testing.T) {
	s := newTest(t, 1<<14)
	for i := 0; i < 100; i++ {
		s.Update(k(1), 1)
	}
	if got := s.Estimate(k(1)); got != 100 {
		t.Errorf("estimate %d want 100", got)
	}
}

func TestHeavyHittersSurviveChurn(t *testing.T) {
	s := newTest(t, 1<<14)
	rng := rand.New(rand.NewSource(1))
	truth := map[uint64]uint64{}
	// 20 heavy flows interleaved with 20000 mice.
	stream := make([]uint64, 0, 60000)
	for h := uint64(0); h < 20; h++ {
		for i := 0; i < 2000; i++ {
			stream = append(stream, h)
		}
	}
	for m := 0; m < 20000; m++ {
		stream = append(stream, 1000+uint64(rng.Intn(15000)))
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	for _, id := range stream {
		truth[id]++
		s.Update(k(id), 1)
	}
	hh := s.HeavyHitters(1000)
	found := 0
	for h := uint64(0); h < 20; h++ {
		if _, ok := hh[string(k(h))]; ok {
			found++
		}
	}
	if found < 18 {
		t.Errorf("only %d/20 heavy flows retained", found)
	}
	// Precision: almost everything reported should truly be heavy.
	falsePos := 0
	for key := range hh {
		var id uint64
		id = uint64(binary.LittleEndian.Uint32([]byte(key)))
		if truth[id] < 800 {
			falsePos++
		}
	}
	if falsePos > 2 {
		t.Errorf("%d false positives above threshold", falsePos)
	}
}

func TestEvictionKeepsLarger(t *testing.T) {
	// Two flows colliding at stage 1: the pipeline must retain both via
	// downstream stages (merge/claim), so neither count is lost entirely.
	s := newTest(t, 1 << 12)
	for i := 0; i < 500; i++ {
		s.Update(k(1), 1)
		s.Update(k(2), 1)
	}
	e1, e2 := s.Estimate(k(1)), s.Estimate(k(2))
	if e1 == 0 && e2 == 0 {
		t.Error("both flows lost")
	}
	if e1 > 500 || e2 > 500 {
		t.Errorf("overcount: %d %d", e1, e2)
	}
}

func TestUnknownFlowZero(t *testing.T) {
	s := newTest(t, 1<<12)
	s.Update(k(1), 5)
	if got := s.Estimate(k(99)); got != 0 {
		t.Errorf("unknown flow estimate %d", got)
	}
}

func TestMemoryAccounting(t *testing.T) {
	s, err := New(Config{MemoryBytes: 9600, Stages: 6, KeySize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.MemoryBytes() > 9600 {
		t.Errorf("memory %d over budget", s.MemoryBytes())
	}
}

func TestReset(t *testing.T) {
	s := newTest(t, 1<<12)
	s.Update(k(1), 100)
	s.Reset()
	if got := s.Estimate(k(1)); got != 0 {
		t.Errorf("after reset %d", got)
	}
	if len(s.HeavyHitters(1)) != 0 {
		t.Error("heavy hitters after reset")
	}
}

func BenchmarkUpdateHashPipe(b *testing.B) {
	s := newTest(b, 1<<18)
	var key [4]byte
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint32(key[:], uint32(i%50000))
		s.Update(key[:], 1)
	}
}
