// Package hashpipe implements HashPipe (Sivaraman et al., SOSR 2017 [54]),
// the heavy-hitter baseline of §7.1: a pipeline of d (=6) key-value tables.
// The first stage always inserts the incoming key, evicting the occupant;
// later stages either merge the carried key, claim an empty slot, or swap
// with a smaller occupant, so large flows settle in the pipe while mice
// wash out.
package hashpipe

import (
	"fmt"

	"github.com/fcmsketch/fcm/internal/hashing"
)

// slot is one key-value table entry.
type slot struct {
	key   [13]byte
	klen  uint8
	count uint64
	used  bool
}

func (s *slot) matches(key []byte) bool {
	if !s.used || int(s.klen) != len(key) {
		return false
	}
	for i, b := range key {
		if s.key[i] != b {
			return false
		}
	}
	return true
}

func (s *slot) set(key []byte, count uint64) {
	copy(s.key[:], key)
	s.klen = uint8(len(key))
	s.count = count
	s.used = true
}

// Sketch is a HashPipe pipeline.
type Sketch struct {
	stages  [][]slot
	hashers []hashing.Hasher
	w       int
	keySize int
}

// Config parameterizes HashPipe.
type Config struct {
	// MemoryBytes is the table budget; each slot costs KeySize+4 bytes
	// (the accounting the paper uses for key-value tables).
	MemoryBytes int
	// Stages is the pipeline depth d (paper: 6).
	Stages int
	// KeySize is the flow-key byte length used for memory accounting
	// (default 4, source IP).
	KeySize int
	// Hash supplies the stage hash functions; nil selects BobHash.
	Hash hashing.Family
}

// New builds a HashPipe instance.
func New(cfg Config) (*Sketch, error) {
	if cfg.Stages <= 0 {
		return nil, fmt.Errorf("hashpipe: Stages must be positive, got %d", cfg.Stages)
	}
	ks := cfg.KeySize
	if ks == 0 {
		ks = 4
	}
	if ks > 13 {
		return nil, fmt.Errorf("hashpipe: KeySize %d exceeds 13", ks)
	}
	slotBytes := ks + 4
	w := cfg.MemoryBytes / (slotBytes * cfg.Stages)
	if w < 1 {
		return nil, fmt.Errorf("hashpipe: memory %dB too small for %d stages", cfg.MemoryBytes, cfg.Stages)
	}
	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewBobFamily(0x8a5b71e)
	}
	s := &Sketch{w: w, keySize: ks}
	for i := 0; i < cfg.Stages; i++ {
		s.stages = append(s.stages, make([]slot, w))
		s.hashers = append(s.hashers, fam.New(i))
	}
	return s, nil
}

// Update implements sketch.Updater.
func (s *Sketch) Update(key []byte, inc uint64) {
	// Stage 1: always insert, evicting the occupant downstream.
	i := hashing.Reduce(s.hashers[0].Hash(key), s.w)
	sl := &s.stages[0][i]
	if sl.matches(key) {
		sl.count += inc
		return
	}
	var carryKey [13]byte
	var carryLen uint8
	var carryCount uint64
	haveCarry := false
	if sl.used {
		carryKey, carryLen, carryCount = sl.key, sl.klen, sl.count
		haveCarry = true
	}
	sl.set(key, inc)

	for st := 1; st < len(s.stages) && haveCarry; st++ {
		ck := carryKey[:carryLen]
		j := hashing.Reduce(s.hashers[st].Hash(ck), s.w)
		sl := &s.stages[st][j]
		switch {
		case sl.matches(ck):
			sl.count += carryCount
			haveCarry = false
		case !sl.used:
			sl.set(ck, carryCount)
			haveCarry = false
		case carryCount > sl.count:
			// Swap: the larger flow stays, the smaller continues.
			carryKey, sl.key = sl.key, carryKey
			carryLen, sl.klen = sl.klen, carryLen
			carryCount, sl.count = sl.count, carryCount
		}
	}
	// A carry surviving the last stage is dropped (HashPipe's design).
}

// Estimate implements sketch.Estimator: the sum of this key's counts over
// all stages (a key can occupy multiple stages after swaps).
func (s *Sketch) Estimate(key []byte) uint64 {
	total := uint64(0)
	for st := range s.stages {
		i := hashing.Reduce(s.hashers[st].Hash(key), s.w)
		if s.stages[st][i].matches(key) {
			total += s.stages[st][i].count
		}
	}
	return total
}

// HeavyHitters returns every tracked key with aggregate count ≥ threshold.
func (s *Sketch) HeavyHitters(threshold uint64) map[string]uint64 {
	agg := make(map[string]uint64)
	for st := range s.stages {
		for i := range s.stages[st] {
			sl := &s.stages[st][i]
			if sl.used {
				agg[string(sl.key[:sl.klen])] += sl.count
			}
		}
	}
	hh := make(map[string]uint64)
	for k, c := range agg {
		if c >= threshold {
			hh[k] = c
		}
	}
	return hh
}

// MemoryBytes implements sketch.Sized.
func (s *Sketch) MemoryBytes() int {
	return len(s.stages) * s.w * (s.keySize + 4)
}

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for st := range s.stages {
		for i := range s.stages[st] {
			s.stages[st][i] = slot{}
		}
	}
}
