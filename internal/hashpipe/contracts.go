package hashpipe

import "github.com/fcmsketch/fcm/internal/sketch"

// Compile-time contract checks (HashPipe has no cardinality estimator).
var (
	_ sketch.Estimator  = (*Sketch)(nil)
	_ sketch.Sized      = (*Sketch)(nil)
	_ sketch.Resettable = (*Sketch)(nil)
)
