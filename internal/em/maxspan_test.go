package em

import (
	"strings"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
)

// TestRunRejectsForgedSpan pins the MaxSpan guard: the estimator sizes its
// distribution array by the largest virtual-counter value, so a forged or
// corrupt snapshot with an absurd counter must be rejected up front rather
// than translated into a multi-gigabyte allocation.
func TestRunRejectsForgedSpan(t *testing.T) {
	vcs := [][]core.VirtualCounter{{
		{Value: 3, Degree: 1, Level: 1},
		{Value: DefaultMaxSpan + 1, Degree: 1, Level: 1},
	}}
	_, err := Run(Config{W1: 8, Theta1: 254, Iterations: 1, Workers: 1}, vcs)
	if err == nil {
		t.Fatal("Run accepted a counter value past DefaultMaxSpan")
	}
	if !strings.Contains(err.Error(), "span limit") {
		t.Fatalf("wrong error: %v", err)
	}
}

// TestRunMaxSpanRaisable: trusted inputs with genuinely enormous flows can
// opt out by raising MaxSpan explicitly.
func TestRunMaxSpanRaisable(t *testing.T) {
	const big = 1 << 21
	vcs := [][]core.VirtualCounter{{
		{Value: 3, Degree: 1, Level: 1},
		{Value: big, Degree: 1, Level: 1},
	}}
	if _, err := Run(Config{W1: 8, Theta1: 254, Iterations: 1, Workers: 1, MaxSpan: 4}, vcs); err == nil {
		t.Fatal("Run ignored a tightened MaxSpan")
	}
	res, err := Run(Config{W1: 8, Theta1: 254, Iterations: 1, Workers: 1, MaxSpan: big}, vcs)
	if err != nil {
		t.Fatalf("Run rejected a raised MaxSpan: %v", err)
	}
	if len(res.Dist) < big {
		t.Fatalf("distribution truncated: len %d < %d", len(res.Dist), big)
	}
}
