package em

import (
	"math"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
)

// TestPosteriorMatchesBruteForce cross-checks one EM iteration against an
// independent brute-force evaluation of the paper's update rule (Eqn. 1-2)
// on a small instance: the expected flow counts contributed by each
// virtual counter must equal Σ_β p(β|V,φ,n)·β_j computed directly from the
// Poisson prior restricted to Ω(V,ξ).
func TestPosteriorMatchesBruteForce(t *testing.T) {
	const (
		w1     = 16
		theta1 = 6 // 3-bit leaves: capacity 6, overflow at 7
	)
	// One tree with three virtual counters: two degree-1 (values 3 and 9)
	// and one degree-2 of value 17 (≥ 2·(θ1+1) = 14, feasible).
	vcs := [][]core.VirtualCounter{{
		{Value: 3, Degree: 1, Level: 1},
		{Value: 9, Degree: 1, Level: 2},
		{Value: 17, Degree: 2, Level: 2},
	}}

	// One iteration of the engine from a fixed initial distribution.
	var got []float64
	_, err := Run(Config{
		W1: w1, Theta1: theta1, Iterations: 1, Workers: 1,
		OnIteration: func(_ int, dist []float64) {
			got = append([]float64(nil), dist...)
		},
	}, vcs)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct the same initial guess the engine uses: value/degree
	// per counter.
	init := make([]float64, 18)
	init[3] += 1 // V=3 deg 1
	init[9] += 1 // V=9 deg 1
	init[8] += 2 // V=17 deg 2 → two flows of size 8
	lam := func(j int) float64 {
		v := init[j]
		if v < 1e-12 {
			v = 1e-12
		}
		return v / w1
	}

	// Brute force: enumerate multisets exactly as §4.3 truncates them.
	want := make([]float64, 18)
	poisLogW := func(parts []int, xi int) float64 {
		// log Π_j Poisson-weight with the e^-λ factors dropped (they
		// cancel in the normalization): Σ log(λ_j·ξ) − log(mult!).
		lw := 0.0
		mult := map[int]int{}
		for _, p := range parts {
			lw += math.Log(lam(p) * float64(xi))
			mult[p]++
		}
		for _, m := range mult {
			for i := 2; i <= m; i++ {
				lw -= math.Log(float64(i))
			}
		}
		return lw
	}
	accumulate := func(combos [][]int, xi int) {
		total := 0.0
		ws := make([]float64, len(combos))
		maxLog := math.Inf(-1)
		for i, c := range combos {
			ws[i] = poisLogW(c, xi)
			if ws[i] > maxLog {
				maxLog = ws[i]
			}
		}
		for i := range ws {
			ws[i] = math.Exp(ws[i] - maxLog)
			total += ws[i]
		}
		for i, c := range combos {
			for _, p := range c {
				want[p] += ws[i] / total
			}
		}
	}

	// V=3, degree 1: partitions of 3 into ≤3 parts.
	accumulate([][]int{{3}, {2, 1}, {1, 1, 1}}, 1)
	// V=9, degree 1: partitions of 9 into ≤3 parts.
	var nine [][]int
	for a := 9; a >= 1; a-- {
		bMax := 9 - a
		if bMax > a {
			bMax = a
		}
		for b := bMax; b >= 0; b-- {
			c := 9 - a - b
			if c < 0 || c > b {
				continue
			}
			parts := []int{a}
			if b > 0 {
				parts = append(parts, b)
			}
			if c > 0 {
				parts = append(parts, c)
			}
			if sum(parts) == 9 {
				nine = append(nine, parts)
			}
		}
	}
	accumulate(nine, 1)
	// V=17, degree 2: exactly 2 flows, each ≥ θ1+1 = 7: {10,7}, {9,8}.
	accumulate([][]int{{10, 7}, {9, 8}}, 2)

	for j := 1; j < len(want); j++ {
		g := 0.0
		if j < len(got) {
			g = got[j]
		}
		if math.Abs(g-want[j]) > 1e-9 {
			t.Errorf("size %d: engine %.12f brute force %.12f", j, g, want[j])
		}
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
