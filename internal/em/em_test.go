package em

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/exact"
	"github.com/fcmsketch/fcm/internal/metrics"
	"github.com/fcmsketch/fcm/internal/packet"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil {
		t.Error("expected error for missing W1")
	}
	if _, err := Run(Config{W1: 10}, nil); err == nil {
		t.Error("expected error for no trees")
	}
}

func TestEmptySketch(t *testing.T) {
	res, err := Run(Config{W1: 16}, [][]core.VirtualCounter{{
		{Value: 0, Degree: 1}, {Value: 0, Degree: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 0 {
		t.Errorf("empty sketch N = %f", res.N)
	}
}

func TestPartitionEnumeration(t *testing.T) {
	collect := func(v uint64, maxParts int, minPart uint64) [][]uint64 {
		var out [][]uint64
		forEachPartition(v, maxParts, minPart, func(p []uint64) {
			cp := append([]uint64(nil), p...)
			out = append(out, cp)
		})
		return out
	}
	// Partitions of 5 into ≤ 2 parts: {5}, {4,1}, {3,2}.
	got := collect(5, 2, 1)
	if len(got) != 3 {
		t.Fatalf("partitions of 5 into ≤2: %v", got)
	}
	// Partitions of 6 into ≤ 3 parts: 7 of them.
	if got := collect(6, 3, 1); len(got) != 7 {
		t.Fatalf("partitions of 6 into ≤3: %d", len(got))
	}
	// With minPart 3: {6}, {3,3}.
	if got := collect(6, 3, 3); len(got) != 2 {
		t.Fatalf("partitions of 6 with min 3: %v", got)
	}
	// Every partition sums to v and is non-increasing.
	for _, p := range collect(12, 4, 1) {
		sum := uint64(0)
		for i, x := range p {
			sum += x
			if i > 0 && x > p[i-1] {
				t.Fatalf("not non-increasing: %v", p)
			}
		}
		if sum != 12 {
			t.Fatalf("partition %v sums to %d", p, sum)
		}
	}
}

func TestPartitionAtMostZero(t *testing.T) {
	calls := 0
	forEachPartitionAtMost(0, 3, func(p []uint64) {
		if len(p) != 0 {
			t.Errorf("zero partition has parts %v", p)
		}
		calls++
	})
	if calls != 1 {
		t.Errorf("zero value should yield exactly one empty partition, got %d", calls)
	}
}

func TestPaperExampleCombinations(t *testing.T) {
	// §4.3: virtual counter V=9, degree 2, binary tree with 2-bit leaves
	// (θ1 = 2): the feasible 2-flow combinations are {3,6} and {4,5}.
	e := &engine{cfg: Config{W1: 4, Theta1: 2, EnumCap: 500}}
	g := &group{degree: 2, value: 9, count: 1}
	var combos [][]uint64
	ok := e.enumerate(g, func(p []uint64) {
		combos = append(combos, append([]uint64(nil), p...))
	})
	if !ok {
		t.Fatal("enumeration refused")
	}
	if len(combos) != 2 {
		t.Fatalf("combos = %v, want exactly {6,3} and {5,4}", combos)
	}
	want := map[[2]uint64]bool{{6, 3}: true, {5, 4}: true}
	for _, c := range combos {
		if len(c) != 2 || !want[[2]uint64{c[0], c[1]}] {
			t.Errorf("unexpected combination %v", c)
		}
	}
}

func TestInfeasibleDegreeTwo(t *testing.T) {
	// V=3 with degree 2 and θ1=2 requires ≥ 2·3=6 total: infeasible, so
	// the engine must fall back rather than emit combos.
	e := &engine{cfg: Config{W1: 4, Theta1: 2, EnumCap: 500}}
	g := &group{degree: 2, value: 3, count: 1}
	if ok := e.enumerate(g, func([]uint64) {}); ok {
		t.Error("expected deterministic fallback for infeasible counter")
	}
}

func TestDeterministicLargeCounter(t *testing.T) {
	e := &engine{cfg: Config{W1: 4, Theta1: 254, EnumCap: 100}}
	acc := make([]float64, 100001)
	// Degree 3 elephant of 100000: one flow of 100000−2·255, two of 255.
	e.resolveDeterministic(&group{degree: 3, value: 100000, count: 2}, 2, acc)
	if acc[100000-2*255] != 2 {
		t.Errorf("dominant flow weight %f", acc[100000-2*255])
	}
	if acc[255] != 4 {
		t.Errorf("minimal flow weight %f", acc[255])
	}
}

func TestSingleFlowRecovered(t *testing.T) {
	// One VC of value 40 and degree 1 with tiny w1: EM should put most
	// mass near size 40 (single-flow explanation dominates when the
	// expected load per counter is low).
	trees := [][]core.VirtualCounter{{
		{Value: 40, Degree: 1, Level: 1},
	}}
	res, err := Run(Config{W1: 1024, Theta1: 254, Iterations: 10, Workers: 1}, trees)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.N-1) > 0.2 {
		t.Errorf("N = %f, want ~1", res.N)
	}
	if res.Dist[40] < 0.8 {
		t.Errorf("mass at size 40 = %f, want ~1; dist around: %v", res.Dist[40], res.Dist[35:])
	}
}

// synthesize runs a stream through a real FCM sketch, converts, runs EM and
// returns (truth tracker, result).
func synthesize(t *testing.T, workers int) (*exact.Tracker, *Result) {
	t.Helper()
	s, err := core.New(core.Config{K: 8, Trees: 2, LeafWidth: 4096})
	if err != nil {
		t.Fatal(err)
	}
	tracker := exact.New()
	rng := rand.New(rand.NewSource(42))
	// Skewed flows: many mice, few elephants.
	for f := 0; f < 3000; f++ {
		size := 1 + rng.Intn(3)
		if f%100 == 0 {
			size = 200 + rng.Intn(800)
		}
		var key [8]byte
		key[0] = byte(f)
		key[1] = byte(f >> 8)
		key[2] = byte(f >> 16)
		var pk [13]byte
		copy(pk[:], key[:])
		for i := 0; i < size; i++ {
			s.Update(key[:], 1)
		}
		tracker.UpdateKey(keyOf(key), uint64(size))
	}
	res, err := Run(Config{
		W1:         s.LeafWidth(),
		Theta1:     s.StageMax(0),
		Iterations: 6,
		Workers:    workers,
	}, s.VirtualCounters())
	if err != nil {
		t.Fatal(err)
	}
	return tracker, res
}

func keyOf(b [8]byte) (k packet.Key) { copy(k.Buf[:], b[:]); k.Len = 8; return }

func TestEMRecoverDistribution(t *testing.T) {
	tracker, res := synthesize(t, 1)
	truth := distOf(tracker)
	w := metrics.WMRE(truth, res.Dist)
	if w > 0.5 {
		t.Errorf("WMRE %f too high", w)
	}
	// Total flow estimate within 15%.
	if math.Abs(res.N-3000)/3000 > 0.15 {
		t.Errorf("N = %f, want ~3000", res.N)
	}
	// Estimated entropy close to true entropy.
	he := exact.EntropyOfDistribution(res.Dist)
	ht := tracker.Entropy()
	if metrics.RE(ht, he) > 0.1 {
		t.Errorf("entropy RE %f (est %f true %f)", metrics.RE(ht, he), he, ht)
	}
}

func TestEMParallelMatchesSerial(t *testing.T) {
	_, serial := synthesize(t, 1)
	_, par := synthesize(t, 4)
	if len(serial.Dist) != len(par.Dist) {
		t.Fatalf("dist lengths differ: %d vs %d", len(serial.Dist), len(par.Dist))
	}
	for j := range serial.Dist {
		if math.Abs(serial.Dist[j]-par.Dist[j]) > 1e-6*(1+serial.Dist[j]) {
			t.Fatalf("size %d: serial %f parallel %f", j, serial.Dist[j], par.Dist[j])
		}
	}
}

func TestOnIterationCallback(t *testing.T) {
	trees := [][]core.VirtualCounter{{{Value: 5, Degree: 1}}}
	var iters []int
	_, err := Run(Config{W1: 64, Iterations: 3, Workers: 1,
		OnIteration: func(it int, dist []float64) { iters = append(iters, it) },
	}, trees)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 3 || iters[0] != 1 || iters[2] != 3 {
		t.Errorf("iteration callbacks: %v", iters)
	}
}

func TestTotalCountConservedApproximately(t *testing.T) {
	// EM should roughly conserve total packets: Σ j·n_j ≈ Σ VC values.
	trees := [][]core.VirtualCounter{{
		{Value: 10, Degree: 1}, {Value: 3, Degree: 1}, {Value: 7, Degree: 1},
	}}
	res, err := Run(Config{W1: 64, Iterations: 8, Workers: 1}, trees)
	if err != nil {
		t.Fatal(err)
	}
	mass := 0.0
	for j := 1; j < len(res.Dist); j++ {
		mass += float64(j) * res.Dist[j]
	}
	if math.Abs(mass-20) > 0.5 {
		t.Errorf("packet mass %f, want ~20", mass)
	}
}

func distOf(tr *exact.Tracker) []float64 { return tr.Distribution() }

func BenchmarkEMIterationSerial(b *testing.B)   { benchEM(b, 1) }
func BenchmarkEMIterationParallel(b *testing.B) { benchEM(b, 0) }

func benchEM(b *testing.B, workers int) {
	s, err := core.New(core.Config{K: 8, Trees: 2, LeafWidth: 32768})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for f := 0; f < 40000; f++ {
		size := 1 + rng.Intn(4)
		if f%200 == 0 {
			size = 500 + rng.Intn(2000)
		}
		var key [8]byte
		key[0], key[1], key[2] = byte(f), byte(f>>8), byte(f>>16)
		s.Update(key[:], uint64(size))
	}
	vcs := s.VirtualCounters()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{W1: s.LeafWidth(), Theta1: s.StageMax(0),
			Iterations: 1, Workers: workers}, vcs); err != nil {
			b.Fatal(err)
		}
	}
}
