// Package em implements the Expectation-Maximization estimator of the flow
// size distribution (§4.2–§4.3 and Appendix A of the FCM paper). It
// consumes the virtual counter arrays produced by the control-plane
// conversion (internal/core §4.1) and iteratively refines the estimated
// number of flows of each size.
//
// Model: flows of size j land in a virtual counter of degree ξ following
// Poisson(n_j·ξ/w1). For each non-empty virtual counter, the posterior over
// the flow combinations Ω(V,ξ) that could have produced its value is
// computed by Bayes' rule, restricted by the paper's overflow-feasibility
// constraints, and the expected per-size flow counts are accumulated.
//
// The combination sets use the paper's truncation heuristics (§4.3):
//
//   - degree 1: all partitions of V into at most 1+ExtraParts parts are
//     enumerated while V ≤ EnumCap; larger counters are resolved as a
//     single heavy flow (exactly MRAC's large-counter treatment).
//   - degree ξ ≥ 2: each of the ξ merged leaf paths must have overflowed,
//     so every flow is at least θ1+1; the enumeration offsets every part
//     by θ1+1 and partitions only the remainder. Larger remainders resolve
//     deterministically as ξ−1 minimal overflowing flows plus one elephant.
//
// Counters with identical (degree, value) share one enumeration, and the
// multi-threaded driver (Workers > 1) fans work items out over a pool —
// reproducing the FCM(s) vs FCM(m) comparison of Fig. 9a.
package em

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
)

// Config parameterizes the estimator.
type Config struct {
	// W1 is the number of leaf nodes per tree (hash range), required.
	W1 int
	// Theta1 is the leaf counting capacity 2^b1−2. It drives the
	// overflow-feasibility constraint for degree ≥ 2 counters. Zero is
	// valid for MRAC-style inputs, where every counter has degree 1.
	Theta1 uint64
	// Iterations is the number of EM rounds (the paper observes
	// stabilization within 5; default 8).
	Iterations int
	// EnumCap bounds the enumerated remainder value (default 500).
	EnumCap int
	// ExtraParts is how many parts beyond the minimum a combination may
	// have for degree-1 counters (default 2, i.e. up to 3 flows).
	ExtraParts int
	// Workers sets the parallelism: 1 = single-threaded (FCM(s)),
	// 0 = GOMAXPROCS (FCM(m)).
	Workers int
	// MaxSpan bounds the largest virtual-counter value accepted. The
	// estimator allocates O(max value) floats for the distribution, so an
	// absurd counter — a corrupt or hostile snapshot decoded off the wire
	// — would otherwise translate directly into a multi-gigabyte
	// allocation. Zero selects DefaultMaxSpan; raise it explicitly for
	// trusted inputs with genuinely enormous flows.
	MaxSpan uint64
	// OnIteration, when non-nil, receives the distribution estimate after
	// every iteration (used by the Fig. 9b convergence experiment). The
	// slice must not be retained.
	OnIteration func(iter int, dist []float64)
	// Metrics, when non-nil, receives run/iteration counts and latency.
	Metrics *Metrics
}

// DefaultMaxSpan is the default bound on virtual-counter values (and thus
// on the length of the estimated distribution): 2^26 ≈ 67M packets in one
// flow, comfortably above the ~100K-packet elephants of the paper's traces
// while keeping the worst-case distribution allocation around half a
// gigabyte instead of the 32GB a forged 32-bit root counter could demand.
const DefaultMaxSpan = 1 << 26

// Result holds the final estimates.
type Result struct {
	// Dist[j] is the estimated number of flows of size j (index 0 unused).
	Dist []float64
	// N is the estimated total number of flows.
	N float64
	// Iterations is the number of rounds run.
	Iterations int
}

// group is a set of identical virtual counters within one tree.
type group struct {
	tree   int
	degree int
	value  uint64
	count  int
}

// Run executes the EM algorithm over the per-tree virtual counter arrays.
func Run(cfg Config, trees [][]core.VirtualCounter) (*Result, error) {
	if cfg.W1 <= 0 {
		return nil, fmt.Errorf("em: W1 must be positive, got %d", cfg.W1)
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("em: no virtual counter arrays")
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 8
	}
	if cfg.EnumCap <= 0 {
		cfg.EnumCap = 500
	}
	if cfg.ExtraParts < 0 {
		cfg.ExtraParts = 0
	} else if cfg.ExtraParts == 0 {
		cfg.ExtraParts = 2
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	groups, zmax := buildGroups(trees)
	if zmax == 0 {
		// Empty sketch: nothing to estimate.
		return &Result{Dist: make([]float64, 1), Iterations: 0}, nil
	}
	span := cfg.MaxSpan
	if span == 0 {
		span = DefaultMaxSpan
	}
	if zmax > span {
		return nil, fmt.Errorf("em: virtual counter value %d exceeds the %d span limit "+
			"(corrupt snapshot? raise Config.MaxSpan for trusted inputs)", zmax, span)
	}

	e := &engine{cfg: cfg, groups: groups, zmax: zmax, d: len(trees), workers: workers}
	e.init(trees)
	if m := cfg.Metrics; m != nil {
		m.Runs.Inc()
		defer m.RunSeconds.ObserveSince(time.Now())
	}
	for it := 0; it < cfg.Iterations; it++ {
		iterStart := time.Now()
		e.iterate()
		if m := cfg.Metrics; m != nil {
			m.Iterations.Inc()
			m.IterSeconds.ObserveSince(iterStart)
		}
		if cfg.OnIteration != nil {
			cfg.OnIteration(it+1, e.dist)
		}
	}
	n := 0.0
	for _, v := range e.dist[1:] {
		n += v
	}
	return &Result{Dist: e.dist, N: n, Iterations: cfg.Iterations}, nil
}

// buildGroups collapses equal (tree, degree, value) counters and returns
// the groups plus the maximum counter value.
func buildGroups(trees [][]core.VirtualCounter) ([]group, uint64) {
	type gkey struct {
		tree, degree int
		value        uint64
	}
	counts := make(map[gkey]int)
	var zmax uint64
	for t, vcs := range trees {
		for _, vc := range vcs {
			if vc.Value == 0 {
				continue // empty counters admit only the empty combination
			}
			counts[gkey{t, vc.Degree, vc.Value}]++
			if vc.Value > zmax {
				zmax = vc.Value
			}
		}
	}
	groups := make([]group, 0, len(counts))
	for k, c := range counts {
		groups = append(groups, group{tree: k.tree, degree: k.degree, value: k.value, count: c})
	}
	return groups, zmax
}

// engine carries the mutable EM state.
type engine struct {
	cfg     Config
	groups  []group
	zmax    uint64
	d       int
	workers int
	dist    []float64   // current n_j estimates
	logFact []float64   // log(k!) table
	logRun  [16]float64 // log(r) for small run lengths (hot path)
}

// init seeds the estimate with the observed distribution: each counter of
// degree ξ contributes ξ flows of size ≈ value/ξ, the "count queries of all
// hash indices" initialization of §4.3, averaged over trees.
func (e *engine) init(trees [][]core.VirtualCounter) {
	e.dist = make([]float64, e.zmax+1)
	for _, g := range e.groups {
		size := g.value / uint64(g.degree)
		if size < 1 {
			size = 1
		}
		e.dist[size] += float64(g.count*g.degree) / float64(e.d)
	}
	e.logFact = make([]float64, 64)
	for i := 2; i < len(e.logFact); i++ {
		e.logFact[i] = e.logFact[i-1] + math.Log(float64(i))
	}
	for i := 1; i < len(e.logRun); i++ {
		e.logRun[i] = math.Log(float64(i))
	}
	// Order groups by descending enumeration cost so the strided parallel
	// schedule balances the heavy enumerations across workers. Cost is
	// proportional to the partition count, ~v^(parts−1).
	cost := func(g *group) float64 {
		v := float64(g.value)
		if g.value > uint64(e.cfg.EnumCap) {
			return 1 // deterministic resolution
		}
		parts := float64(1 + e.cfg.ExtraParts)
		if g.degree > 1 {
			parts = float64(g.degree)
		}
		return math.Pow(v, parts-1)
	}
	sort.Slice(e.groups, func(i, j int) bool {
		return cost(&e.groups[i]) > cost(&e.groups[j])
	})
}

// iterate performs one E+M round: recompute the expected per-size flow
// counts under the current estimate.
func (e *engine) iterate() {
	// Precompute log(n_j / w1); a small floor keeps unobserved sizes
	// reachable so the posterior never collapses to an empty support.
	logLam := make([]float64, len(e.dist))
	const floor = 1e-12
	logW1 := math.Log(float64(e.cfg.W1))
	for j := 1; j < len(e.dist); j++ {
		v := e.dist[j]
		if v < floor {
			v = floor
		}
		logLam[j] = math.Log(v) - logW1
	}

	next := make([]float64, len(e.dist))
	if e.workers <= 1 {
		var sc scratch
		for i := range e.groups {
			e.processGroup(&e.groups[i], logLam, next, &sc)
		}
	} else {
		// Groups are pre-sorted by descending enumeration cost (init), so
		// a strided assignment balances the expensive few across workers.
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				local := make([]float64, len(e.dist))
				var sc scratch
				for i := start; i < len(e.groups); i += e.workers {
					e.processGroup(&e.groups[i], logLam, local, &sc)
				}
				mu.Lock()
				for j, v := range local {
					next[j] += v
				}
				mu.Unlock()
			}(w)
		}
		wg.Wait()
	}
	// Appendix A: average the per-tree expectations over the d trees.
	inv := 1 / float64(e.d)
	for j := range next {
		next[j] *= inv
	}
	e.dist = next
}

// scratch holds per-worker enumeration buffers.
type scratch struct {
	parts  []uint64  // current partition being built
	combos []combo   // materialized combos of the current group
	sizes  []uint64  // flattened combo parts
}

// combo references a slice of sizes in scratch.sizes plus its log-weight.
type combo struct {
	off, n int
	logw   float64
}

// processGroup enumerates Ω(V,ξ) for one (degree, value) group and adds the
// posterior-weighted expected flow counts (times the group multiplicity)
// into acc.
func (e *engine) processGroup(g *group, logLam, acc []float64, sc *scratch) {
	weight := float64(g.count)
	logXi := math.Log(float64(g.degree))

	sc.combos = sc.combos[:0]
	sc.sizes = sc.sizes[:0]

	emit := func(parts []uint64) {
		// log-weight: Σ_j β_j·log(λ_j·ξ) − log(β_j!) with multiplicities
		// computed over the (non-increasing) parts.
		lw := 0.0
		run := 0
		for i, p := range parts {
			lw += logLam[p] + logXi
			if i > 0 && parts[i-1] == p {
				run++
			} else {
				run = 1
			}
			// Accumulates to −log(β!) per run; run lengths are tiny, so
			// a table lookup replaces math.Log on the hottest path.
			if run < len(e.logRun) {
				lw -= e.logRun[run]
			} else {
				lw -= math.Log(float64(run))
			}
		}
		off := len(sc.sizes)
		sc.sizes = append(sc.sizes, parts...)
		sc.combos = append(sc.combos, combo{off: off, n: len(parts), logw: lw})
	}

	if !e.enumerate(g, emit) {
		// Deterministic resolution for counters past the enumeration cap.
		e.resolveDeterministic(g, weight, acc)
		return
	}
	if len(sc.combos) == 0 {
		// No feasible combination (can only happen for inconsistent
		// inputs); fall back to the deterministic split.
		e.resolveDeterministic(g, weight, acc)
		return
	}

	// Normalize in log space.
	maxLog := math.Inf(-1)
	for _, c := range sc.combos {
		if c.logw > maxLog {
			maxLog = c.logw
		}
	}
	total := 0.0
	for i := range sc.combos {
		sc.combos[i].logw = math.Exp(sc.combos[i].logw - maxLog)
		total += sc.combos[i].logw
	}
	for _, c := range sc.combos {
		p := c.logw / total * weight
		for _, s := range sc.sizes[c.off : c.off+c.n] {
			acc[s] += p
		}
	}
}

// enumerate generates the truncated combination set for g, calling emit for
// each. It reports false when the group exceeds the enumeration caps and
// must be resolved deterministically.
func (e *engine) enumerate(g *group, emit func([]uint64)) bool {
	cap64 := uint64(e.cfg.EnumCap)
	if g.degree <= 1 {
		if g.value > cap64 {
			return false
		}
		// Partitions of value into 1..1+ExtraParts parts.
		forEachPartition(g.value, 1+e.cfg.ExtraParts, 1, emit)
		return true
	}
	// Degree ξ ≥ 2: every flow ≥ θ1+1; enumerate partitions of the
	// remainder into ≤ ξ parts, then offset every slot by θ1+1.
	minFlow := e.cfg.Theta1 + 1
	need := uint64(g.degree) * minFlow
	if g.value < need {
		return false // inconsistent with the overflow constraint
	}
	r := g.value - need
	if r > cap64 || g.degree > 6 {
		return false
	}
	// Combinatorial budget: the partition count grows like
	// r^(ξ−1)/(ξ−1)!, which explodes for wide trees with small leaf
	// capacities. Resolve oversize sets deterministically (§4.3's
	// truncation by value AND degree).
	combos := 1.0
	for i := 1; i < g.degree; i++ {
		combos *= float64(r) / float64(i)
	}
	if combos > 2e5 {
		return false
	}
	buf := make([]uint64, g.degree)
	forEachPartitionAtMost(r, g.degree, func(parts []uint64) {
		for i := range buf {
			if i < len(parts) {
				buf[i] = parts[i] + minFlow
			} else {
				buf[i] = minFlow
			}
		}
		emit(buf)
	})
	return true
}

// resolveDeterministic applies the large-counter heuristic: the value is
// attributed to one dominant flow plus, for degree ξ ≥ 2, ξ−1 minimal
// overflowing flows.
func (e *engine) resolveDeterministic(g *group, weight float64, acc []float64) {
	minFlow := e.cfg.Theta1 + 1
	extra := uint64(g.degree-1) * minFlow
	if g.degree <= 1 || g.value <= extra {
		acc[g.value] += weight
		return
	}
	acc[g.value-extra] += weight
	acc[minFlow] += weight * float64(g.degree-1)
}

// forEachPartition enumerates the partitions of v into between 1 and
// maxParts parts, each ≥ minPart, in non-increasing order.
func forEachPartition(v uint64, maxParts int, minPart uint64, fn func([]uint64)) {
	var parts []uint64
	var rec func(rem, prev uint64)
	rec = func(rem, prev uint64) {
		if rem == 0 {
			fn(parts)
			return
		}
		if len(parts) >= maxParts {
			return
		}
		hi := rem
		if prev < hi {
			hi = prev
		}
		// The remaining slots must be able to absorb rem: with at most
		// (maxParts-len-1) further parts of ≤ p each, p ≥ rem/(slots).
		slots := uint64(maxParts - len(parts))
		lo := (rem + slots - 1) / slots
		if lo < minPart {
			lo = minPart
		}
		for p := hi; p >= lo; p-- {
			parts = append(parts, p)
			rec(rem-p, p)
			parts = parts[:len(parts)-1]
			if p == 0 {
				break
			}
		}
	}
	rec(v, v)
}

// forEachPartitionAtMost enumerates partitions of v into at most maxParts
// parts (possibly zero parts when v == 0), non-increasing.
func forEachPartitionAtMost(v uint64, maxParts int, fn func([]uint64)) {
	if v == 0 {
		fn(nil)
		return
	}
	forEachPartition(v, maxParts, 1, fn)
}
