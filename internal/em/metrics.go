package em

import (
	"github.com/fcmsketch/fcm/internal/telemetry"
)

// Metrics is the estimator's self-telemetry: run/iteration volume and
// latency. Attach one to Config.Metrics; nil leaves the estimator
// unobserved at zero cost.
type Metrics struct {
	Runs        *telemetry.Counter
	Iterations  *telemetry.Counter
	IterSeconds *telemetry.Histogram
	RunSeconds  *telemetry.Histogram
}

// NewMetrics registers the estimator's series on reg. EM iterations run
// milliseconds to minutes depending on scale, so the buckets span
// 100µs … ~26s (and runs 1ms … ~4.4min).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Runs: reg.Counter("fcm_em_runs_total",
			"EM estimator invocations."),
		Iterations: reg.Counter("fcm_em_iterations_total",
			"EM iterations completed across all runs."),
		IterSeconds: reg.Histogram("fcm_em_iteration_seconds",
			"Latency of one EM iteration.", telemetry.ExpBuckets(1e-4, 4, 10)),
		RunSeconds: reg.Histogram("fcm_em_run_seconds",
			"End-to-end latency of one EM run.", telemetry.ExpBuckets(1e-3, 4, 10)),
	}
}
