package hashing

import (
	"encoding/binary"
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func hashers(t *testing.T) map[string]Hasher {
	t.Helper()
	return map[string]Hasher{
		"bob":     NewBob(12345),
		"murmur3": NewMurmur3(12345),
		"xx64":    NewXX64(12345),
		"ms":      NewMultiplyShift(0x243f6a8885a308d3, 0x13198a2e03707344),
	}
}

func TestDeterministic(t *testing.T) {
	key := []byte("192.168.0.1->10.0.0.1:443")
	for name, h := range hashers(t) {
		a, b := h.Hash(key), h.Hash(key)
		if a != b {
			t.Errorf("%s: hash not deterministic: %x vs %x", name, a, b)
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	key := []byte("flowkey")
	pairs := map[string][2]Hasher{
		"bob":     {NewBob(1), NewBob(2)},
		"murmur3": {NewMurmur3(1), NewMurmur3(2)},
		"xx64":    {NewXX64(1), NewXX64(2)},
	}
	for name, p := range pairs {
		if p[0].Hash(key) == p[1].Hash(key) {
			t.Errorf("%s: different seeds produced identical hash", name)
		}
	}
}

func TestAllLengths(t *testing.T) {
	// Exercise every tail length of every hash: 0..40 bytes.
	buf := make([]byte, 40)
	for i := range buf {
		buf[i] = byte(i*7 + 3)
	}
	for name, h := range hashers(t) {
		seen := make(map[uint64][]int)
		for n := 0; n <= len(buf); n++ {
			v := h.Hash(buf[:n])
			seen[v] = append(seen[v], n)
		}
		for v, ns := range seen {
			if len(ns) > 1 {
				t.Errorf("%s: lengths %v collided on %x", name, ns, v)
			}
		}
	}
}

func TestTailBytesMatter(t *testing.T) {
	// Changing any single byte must change the hash (overwhelmingly).
	base := make([]byte, 13) // forces the lookup3 tail path
	for name, h := range hashers(t) {
		if name == "ms" {
			continue // folds long keys; covered by xx64
		}
		orig := h.Hash(base)
		for i := range base {
			mod := make([]byte, len(base))
			copy(mod, base)
			mod[i] = 0xff
			if h.Hash(mod) == orig {
				t.Errorf("%s: flipping byte %d did not change hash", name, i)
			}
		}
	}
}

func TestUniformity(t *testing.T) {
	// Hash 1<<16 sequential keys into 64 buckets; chi-squared should be
	// comfortably below a loose threshold for a usable hash.
	const keys = 1 << 16
	const buckets = 64
	for name, h := range hashers(t) {
		var counts [buckets]int
		var k [8]byte
		for i := 0; i < keys; i++ {
			binary.LittleEndian.PutUint64(k[:], uint64(i))
			counts[Reduce(h.Hash(k[:]), buckets)]++
		}
		expected := float64(keys) / buckets
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 63 degrees of freedom; mean 63, stddev ~11.2. 200 is far out in
		// the tail and catches only broken hashes.
		if chi2 > 200 {
			t.Errorf("%s: chi-squared %f too high, distribution is not uniform", name, chi2)
		}
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	for name, h := range hashers(t) {
		if name == "ms" {
			continue // multiply-shift is only pairwise independent
		}
		var total, flips float64
		var k [8]byte
		for trial := 0; trial < 64; trial++ {
			binary.LittleEndian.PutUint64(k[:], uint64(trial)*0x9e3779b97f4a7c15+1)
			base := h.Hash(k[:])
			for bit := 0; bit < 64; bit++ {
				mod := k
				mod[bit/8] ^= 1 << (bit % 8)
				diff := base ^ h.Hash(mod[:])
				for d := diff; d != 0; d &= d - 1 {
					flips++
				}
				total += 64
			}
		}
		ratio := flips / total
		if math.Abs(ratio-0.5) > 0.05 {
			t.Errorf("%s: avalanche ratio %f, want ~0.5", name, ratio)
		}
	}
}

func TestFamilyIndependence(t *testing.T) {
	families := map[string]Family{
		"bob":     NewBobFamily(7),
		"murmur3": NewMurmur3Family(7),
		"xx64":    NewXX64Family(7),
		"ms":      NewMultiplyShiftFamily(7),
	}
	key := []byte("10.1.2.3")
	for name, f := range families {
		seen := make(map[uint64]int)
		for i := 0; i < 16; i++ {
			v := f.New(i).Hash(key)
			if j, ok := seen[v]; ok {
				t.Errorf("%s: family members %d and %d agree on %x", name, i, j, v)
			}
			seen[v] = i
		}
	}
}

func TestPairwiseIndependenceEmpirical(t *testing.T) {
	// For the multiply-shift family, Pr[h(x)=h(y) into m buckets] should
	// be close to 1/m for x != y, averaged over the family.
	const m = 256
	const trials = 4000
	f := NewMultiplyShiftFamily(99)
	x := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	y := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	coll := 0
	for i := 0; i < trials; i++ {
		h := f.New(i)
		if Reduce(h.Hash(x), m) == Reduce(h.Hash(y), m) {
			coll++
		}
	}
	p := float64(coll) / trials
	if p > 3.0/m {
		t.Errorf("collision probability %f exceeds 3/m = %f", p, 3.0/m)
	}
}

func TestReduceRange(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	for _, n := range []int{1, 2, 3, 7, 64, 1000, 1 << 20} {
		n := n
		err := quick.Check(func(h uint64) bool {
			r := Reduce(h, n)
			return r >= 0 && r < n
		}, cfg)
		if err != nil {
			t.Errorf("Reduce out of range for n=%d: %v", n, err)
		}
	}
}

func TestReduceCoversAllBuckets(t *testing.T) {
	const n = 16
	seen := make(map[int]bool)
	h := NewXX64(3)
	var k [8]byte
	for i := 0; i < 10000 && len(seen) < n; i++ {
		binary.LittleEndian.PutUint64(k[:], uint64(i))
		seen[Reduce(h.Hash(k[:]), n)] = true
	}
	if len(seen) != n {
		t.Errorf("Reduce reached only %d of %d buckets", len(seen), n)
	}
}

func TestReduceMatchesWideMultiply(t *testing.T) {
	// Reduce(h, n) is ⌊h·n/2⁶⁴⌋; check against a big.Int reference.
	cases := []struct {
		h uint64
		n int
	}{
		{0, 1}, {1, 1}, {math.MaxUint64, 7}, {math.MaxUint64, 1 << 20},
		{0x9e3779b97f4a7c15, 1000}, {1 << 63, 2}, {1<<63 - 1, 3},
	}
	shift := new(big.Int).Lsh(big.NewInt(1), 64)
	for _, c := range cases {
		ref := new(big.Int).SetUint64(c.h)
		ref.Mul(ref, big.NewInt(int64(c.n))).Div(ref, shift)
		if got := Reduce(c.h, c.n); int64(got) != ref.Int64() {
			t.Errorf("Reduce(%x, %d) = %d, want %d", c.h, c.n, got, ref.Int64())
		}
	}
}

func TestSplitmix64Stream(t *testing.T) {
	// Known-answer test from the splitmix64 reference with seed 0.
	s := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := splitmix64(&s); got != w {
			t.Fatalf("splitmix64 step %d = %x, want %x", i, got, w)
		}
	}
}

func BenchmarkBob8(b *testing.B)  { benchHash(b, NewBob(1), 8) }
func BenchmarkBob13(b *testing.B) { benchHash(b, NewBob(1), 13) }
func BenchmarkMurmur8(b *testing.B) {
	benchHash(b, NewMurmur3(1), 8)
}
func BenchmarkXX8(b *testing.B) { benchHash(b, NewXX64(1), 8) }

func benchHash(b *testing.B, h Hasher, n int) {
	key := make([]byte, n)
	b.SetBytes(int64(n))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		sink ^= h.Hash(key)
	}
	_ = sink
}
