// Package hashing provides the hash functions used throughout the FCM
// framework: BobHash (Bob Jenkins' lookup3, the default recommended by the
// sketch literature and by the FCM paper §7.1), Murmur3 (32-bit), an
// xxHash64-style 64-bit hash, and a multiply-shift pairwise-independent
// family used by the accuracy-analysis tests.
//
// All implementations are from scratch and depend only on the standard
// library. Hash functions are deterministic for a given seed, so every
// experiment in the repository is reproducible.
package hashing

import (
	"encoding/binary"
	"math/bits"
)

// Hasher is a seeded hash function over byte strings. Implementations must
// be safe for concurrent use (they are stateless after construction).
type Hasher interface {
	// Hash returns a 64-bit hash of key.
	Hash(key []byte) uint64
}

// Family constructs independent Hashers from an integer index. Sketches
// that need d independent hash functions draw them from a Family so that
// multi-tree / multi-row structures are pairwise independent.
type Family interface {
	// New returns the i-th hash function of the family.
	New(i int) Hasher
}

// ---------------------------------------------------------------------------
// BobHash: Bob Jenkins' lookup3 (hashlittle2 variant), the classic "BobHash"
// used by CM-Sketch reference code and recommended by Henke et al. [30].
// ---------------------------------------------------------------------------

// Bob is a seeded BobHash (Jenkins lookup3) instance.
type Bob struct {
	seed uint32
}

// NewBob returns a BobHash instance with the given seed.
func NewBob(seed uint32) *Bob { return &Bob{seed: seed} }

// Hash implements Hasher. It returns the two 32-bit lookup3 results
// combined into one 64-bit value.
func (b *Bob) Hash(key []byte) uint64 {
	pc, pb := lookup3(key, b.seed, b.seed)
	return uint64(pc)<<32 | uint64(pb)
}

func rot32(x uint32, k uint) uint32 { return x<<k | x>>(32-k) }

// mix and final are the lookup3 mixing primitives.
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= c
	a ^= rot32(c, 4)
	c += b
	b -= a
	b ^= rot32(a, 6)
	a += c
	c -= b
	c ^= rot32(b, 8)
	b += a
	a -= c
	a ^= rot32(c, 16)
	c += b
	b -= a
	b ^= rot32(a, 19)
	a += c
	c -= b
	c ^= rot32(b, 4)
	b += a
	return a, b, c
}

func final(a, b, c uint32) (uint32, uint32, uint32) {
	c ^= b
	c -= rot32(b, 14)
	a ^= c
	a -= rot32(c, 11)
	b ^= a
	b -= rot32(a, 25)
	c ^= b
	c -= rot32(b, 16)
	a ^= c
	a -= rot32(c, 4)
	b ^= a
	b -= rot32(a, 14)
	c ^= b
	c -= rot32(b, 24)
	return a, b, c
}

// lookup3 is hashlittle2: it returns two 32-bit hash values (pc, pb).
func lookup3(key []byte, pc, pb uint32) (uint32, uint32) {
	length := len(key)
	a := 0xdeadbeef + uint32(length) + pc
	b := a
	c := a + pb

	i := 0
	for length > 12 {
		a += binary.LittleEndian.Uint32(key[i:])
		b += binary.LittleEndian.Uint32(key[i+4:])
		c += binary.LittleEndian.Uint32(key[i+8:])
		a, b, c = mix(a, b, c)
		i += 12
		length -= 12
	}

	// Tail: read the remaining 0..12 bytes without touching memory past
	// the end of the slice.
	tail := key[i:]
	switch len(tail) {
	case 12:
		c += binary.LittleEndian.Uint32(tail[8:])
		b += binary.LittleEndian.Uint32(tail[4:])
		a += binary.LittleEndian.Uint32(tail)
	case 11:
		c += uint32(tail[10]) << 16
		fallthrough
	case 10:
		c += uint32(tail[9]) << 8
		fallthrough
	case 9:
		c += uint32(tail[8])
		fallthrough
	case 8:
		b += binary.LittleEndian.Uint32(tail[4:])
		a += binary.LittleEndian.Uint32(tail)
	case 7:
		b += uint32(tail[6]) << 16
		fallthrough
	case 6:
		b += uint32(tail[5]) << 8
		fallthrough
	case 5:
		b += uint32(tail[4])
		fallthrough
	case 4:
		a += binary.LittleEndian.Uint32(tail)
	case 3:
		a += uint32(tail[2]) << 16
		fallthrough
	case 2:
		a += uint32(tail[1]) << 8
		fallthrough
	case 1:
		a += uint32(tail[0])
	case 0:
		return c, b
	}
	a, b, c = final(a, b, c)
	return c, b
}

// BobWide is the one-pass multi-index hasher: a single lookup3 pass
// (hashlittle2) yields two independent 32-bit lanes, from which the leaf
// indexes of every tree of a multi-tree sketch are derived without hashing
// the key again. It is the hot-path replacement for d separate BobHash
// evaluations; see WideIndex for the (pinned) derivation.
type BobWide struct {
	seed uint32
}

// NewBobWide returns a one-pass wide hasher with the given seed.
func NewBobWide(seed uint32) *BobWide { return &BobWide{seed: seed} }

// Seed returns the seed, so sketch compatibility checks can verify two
// wide hashers place counters identically.
func (w *BobWide) Seed() uint32 { return w.seed }

// Pair returns the two 32-bit lookup3 lanes for key. This is the single
// hash pass all per-tree indexes derive from.
func (w *BobWide) Pair(key []byte) (pc, pb uint32) {
	return lookup3(key, w.seed, w.seed)
}

// Hash implements Hasher with the same value a Bob of the same seed
// returns, so a BobWide doubles as the tree-0 hasher.
func (w *BobWide) Hash(key []byte) uint64 {
	pc, pb := lookup3(key, w.seed, w.seed)
	return uint64(pc)<<32 | uint64(pb)
}

// WideIndex derives tree i's leaf index in [0, n) from the two lookup3
// lanes of one Pair call. The derivation is a stable contract (counter
// placement on the wire and in snapshots depends on it; a golden test pins
// it):
//
//   - tree 0 reduces pc‖pb — identical to Bob.Hash, so single-tree sketches
//     are unchanged by the one-pass path;
//   - tree 1 reduces pb‖pc, using the second independent lane for the
//     index-deciding high bits (d ≤ 2, the paper's default, costs no extra
//     mixing);
//   - trees ≥ 2 reduce a splitmix64 expansion of the 64-bit pair, keyed by
//     the tree number, which decorrelates any number of further trees.
func WideIndex(pc, pb uint32, i, n int) int {
	if i == 0 {
		return WideIndex0(pc, pb, n)
	}
	if i == 1 {
		return WideIndex1(pc, pb, n)
	}
	return wideIndexDeep(pc, pb, i, n)
}

// WideIndex0 and WideIndex1 are the d ≤ 2 lanes of WideIndex, split out
// so they inline into sketch update loops (WideIndex itself is over the
// inlining budget).
func WideIndex0(pc, pb uint32, n int) int { return Reduce(uint64(pc)<<32|uint64(pb), n) }

// WideIndex1 is tree 1's lane; see WideIndex0.
func WideIndex1(pc, pb uint32, n int) int { return Reduce(uint64(pb)<<32|uint64(pc), n) }

func wideIndexDeep(pc, pb uint32, i, n int) int {
	state := (uint64(pc)<<32 | uint64(pb)) ^ uint64(i)*0x9e3779b97f4a7c15
	return Reduce(splitmix64(&state), n)
}

// WideFamily is implemented by hash families whose d member functions can
// be evaluated with a single pass over the key. Sketches detect it to
// switch to one-pass multi-index hashing.
type WideFamily interface {
	Family
	// Wide returns the one-pass hasher whose WideIndex derivations stand
	// in for the family's members.
	Wide() *BobWide
}

// BobFamily is a Family of BobHash functions derived from a base seed.
type BobFamily struct {
	base uint32
}

// NewBobFamily returns a BobHash family. Different i values produce
// independent hash functions.
func NewBobFamily(base uint32) *BobFamily { return &BobFamily{base: base} }

// New implements Family.
func (f *BobFamily) New(i int) Hasher {
	// Derive the per-function seed by hashing the index with the base
	// seed so that nearby indices do not produce correlated functions.
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(i)*0x9e3779b9+1)
	pc, _ := lookup3(buf[:], f.base, f.base^0x5bd1e995)
	return NewBob(pc)
}

// Wide implements WideFamily: the whole family collapses to one lookup3
// pass seeded like member 0, with per-tree indexes derived via WideIndex.
func (f *BobFamily) Wide() *BobWide {
	b := f.New(0).(*Bob)
	return NewBobWide(b.seed)
}

// ---------------------------------------------------------------------------
// Murmur3 (32-bit)
// ---------------------------------------------------------------------------

// Murmur3 is a seeded MurmurHash3 x86_32 instance.
type Murmur3 struct {
	seed uint32
}

// NewMurmur3 returns a Murmur3 hasher with the given seed.
func NewMurmur3(seed uint32) *Murmur3 { return &Murmur3{seed: seed} }

// Sum32 returns the 32-bit Murmur3 hash of key.
func (m *Murmur3) Sum32(key []byte) uint32 { return murmur3Sum32(m.seed, key) }

// murmur3Sum32 is the seed-parameterized core, so the 64-bit Hash can run
// its decorrelated second pass without constructing a throwaway instance.
func murmur3Sum32(seed uint32, key []byte) uint32 {
	const (
		c1 = 0xcc9e2d51
		c2 = 0x1b873593
	)
	h := seed
	n := len(key)
	i := 0
	for ; i+4 <= n; i += 4 {
		k := binary.LittleEndian.Uint32(key[i:])
		k *= c1
		k = rot32(k, 15)
		k *= c2
		h ^= k
		h = rot32(h, 13)
		h = h*5 + 0xe6546b64
	}
	var k uint32
	switch n & 3 {
	case 3:
		k ^= uint32(key[i+2]) << 16
		fallthrough
	case 2:
		k ^= uint32(key[i+1]) << 8
		fallthrough
	case 1:
		k ^= uint32(key[i])
		k *= c1
		k = rot32(k, 15)
		k *= c2
		h ^= k
	}
	h ^= uint32(n)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Hash implements Hasher. Two passes with decorrelated seeds produce a
// 64-bit result.
func (m *Murmur3) Hash(key []byte) uint64 {
	lo := murmur3Sum32(m.seed, key)
	hi := murmur3Sum32(m.seed^0x9e3779b9, key)
	return uint64(hi)<<32 | uint64(lo)
}

// Murmur3Family is a Family of Murmur3 functions.
type Murmur3Family struct{ base uint32 }

// NewMurmur3Family returns a Murmur3 Family with the given base seed.
func NewMurmur3Family(base uint32) *Murmur3Family { return &Murmur3Family{base: base} }

// New implements Family.
func (f *Murmur3Family) New(i int) Hasher {
	return NewMurmur3(f.base + uint32(i)*0x61c88647 + 1)
}

// ---------------------------------------------------------------------------
// XX64: an xxHash64-style hash for fast 64-bit hashing of short keys.
// ---------------------------------------------------------------------------

// XX64 is a seeded 64-bit hash in the style of xxHash64.
type XX64 struct {
	seed uint64
}

// NewXX64 returns an XX64 hasher with the given seed.
func NewXX64(seed uint64) *XX64 { return &XX64{seed: seed} }

const (
	xxPrime1 = 0x9e3779b185ebca87
	xxPrime2 = 0xc2b2ae3d27d4eb4f
	xxPrime3 = 0x165667b19e3779f9
	xxPrime4 = 0x85ebca77c2b2ae63
	xxPrime5 = 0x27d4eb2f165667c5
)

func rot64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

func xxRound(acc, input uint64) uint64 {
	acc += input * xxPrime2
	acc = rot64(acc, 31)
	acc *= xxPrime1
	return acc
}

func xxMerge(acc, val uint64) uint64 {
	val = xxRound(0, val)
	acc ^= val
	acc = acc*xxPrime1 + xxPrime4
	return acc
}

// Hash implements Hasher.
func (x *XX64) Hash(key []byte) uint64 {
	n := len(key)
	var h uint64
	i := 0
	if n >= 32 {
		v1 := x.seed + xxPrime1 + xxPrime2
		v2 := x.seed + xxPrime2
		v3 := x.seed
		v4 := x.seed - xxPrime1
		for ; i+32 <= n; i += 32 {
			v1 = xxRound(v1, binary.LittleEndian.Uint64(key[i:]))
			v2 = xxRound(v2, binary.LittleEndian.Uint64(key[i+8:]))
			v3 = xxRound(v3, binary.LittleEndian.Uint64(key[i+16:]))
			v4 = xxRound(v4, binary.LittleEndian.Uint64(key[i+24:]))
		}
		h = rot64(v1, 1) + rot64(v2, 7) + rot64(v3, 12) + rot64(v4, 18)
		h = xxMerge(h, v1)
		h = xxMerge(h, v2)
		h = xxMerge(h, v3)
		h = xxMerge(h, v4)
	} else {
		h = x.seed + xxPrime5
	}
	h += uint64(n)
	for ; i+8 <= n; i += 8 {
		h ^= xxRound(0, binary.LittleEndian.Uint64(key[i:]))
		h = rot64(h, 27)*xxPrime1 + xxPrime4
	}
	if i+4 <= n {
		h ^= uint64(binary.LittleEndian.Uint32(key[i:])) * xxPrime1
		h = rot64(h, 23)*xxPrime2 + xxPrime3
		i += 4
	}
	for ; i < n; i++ {
		h ^= uint64(key[i]) * xxPrime5
		h = rot64(h, 11) * xxPrime1
	}
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

// XX64Family is a Family of XX64 functions.
type XX64Family struct{ base uint64 }

// NewXX64Family returns an XX64 Family with the given base seed.
func NewXX64Family(base uint64) *XX64Family { return &XX64Family{base: base} }

// New implements Family.
func (f *XX64Family) New(i int) Hasher {
	return NewXX64(f.base ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
}

// ---------------------------------------------------------------------------
// MultiplyShift: a 2-universal (pairwise independent) family over fixed
// 64-bit keys, used by the theoretical-bound property tests (Thm 5.1).
// ---------------------------------------------------------------------------

// MultiplyShift hashes 64-bit keys with h(x) = (a*x + b) >> s, a classic
// pairwise-independent construction. Keys shorter than 8 bytes are
// zero-extended; longer keys are folded with XX64 first.
type MultiplyShift struct {
	a, b uint64
	fold *XX64
}

// NewMultiplyShift returns a MultiplyShift hasher. a must be odd; the
// constructor forces the low bit.
func NewMultiplyShift(a, b uint64) *MultiplyShift {
	return &MultiplyShift{a: a | 1, b: b, fold: NewXX64(a ^ b)}
}

// Hash implements Hasher.
func (m *MultiplyShift) Hash(key []byte) uint64 {
	var x uint64
	switch {
	case len(key) == 8:
		x = binary.LittleEndian.Uint64(key)
	case len(key) < 8:
		var buf [8]byte
		copy(buf[:], key)
		x = binary.LittleEndian.Uint64(buf[:])
	default:
		x = m.fold.Hash(key)
	}
	return m.a*x + m.b
}

// MultiplyShiftFamily is a Family of MultiplyShift functions seeded from a
// splitmix64 stream.
type MultiplyShiftFamily struct{ base uint64 }

// NewMultiplyShiftFamily returns a pairwise-independent family.
func NewMultiplyShiftFamily(base uint64) *MultiplyShiftFamily {
	return &MultiplyShiftFamily{base: base}
}

// New implements Family.
func (f *MultiplyShiftFamily) New(i int) Hasher {
	s := f.base + uint64(i)*2
	return NewMultiplyShift(splitmix64(&s), splitmix64(&s))
}

// splitmix64 advances the state and returns the next pseudo-random value.
// It is the standard seeding generator from Vigna's splitmix64.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Splitmix64 exposes the splitmix64 step for packages that need cheap
// deterministic seeding (trace generation, experiment harness).
func Splitmix64(state *uint64) uint64 { return splitmix64(state) }

// Reduce maps a 64-bit hash onto [0, n) without modulo bias using the
// fixed-point multiply trick. n must be > 0.
func Reduce(h uint64, n int) int {
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}
