package hashing

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// TestWideMatchesBobTree0 pins the d≤1 compatibility property: tree 0 of
// the one-pass derivation is exactly Bob.Hash of the same seed, so
// single-tree sketches place counters identically in both hash modes.
func TestWideMatchesBobTree0(t *testing.T) {
	w := NewBobWide(4242)
	b := NewBob(4242)
	var k [8]byte
	for i := 0; i < 1000; i++ {
		binary.LittleEndian.PutUint64(k[:], uint64(i)*0x9e3779b97f4a7c15)
		for _, n := range []int{64, 1000, 1 << 16} {
			pc, pb := w.Pair(k[:])
			if got, want := WideIndex(pc, pb, 0, n), Reduce(b.Hash(k[:]), n); got != want {
				t.Fatalf("key %d n %d: wide tree-0 index %d != bob index %d", i, n, got, want)
			}
		}
	}
}

// TestWideFamilySeed checks that BobFamily.Wide derives its seed like
// family member 0, so the wide path and the per-tree path agree on tree 0.
func TestWideFamilySeed(t *testing.T) {
	f := NewBobFamily(0xfc3141)
	w := f.Wide()
	b := f.New(0).(*Bob)
	key := []byte("10.1.2.3")
	if w.Hash(key) != b.Hash(key) {
		t.Fatal("BobFamily.Wide disagrees with family member 0")
	}
	if w.Seed() != b.seed {
		t.Fatalf("wide seed %x != member-0 seed %x", w.Seed(), b.seed)
	}
}

// TestWideIndexUniformity chi-squared-tests each tree's index stream over
// the leaf slots: the one-pass derivation must be as uniform as a full
// independent hash per tree.
func TestWideIndexUniformity(t *testing.T) {
	const keys = 1 << 16
	const buckets = 64
	w := NewBobWide(12345)
	for tree := 0; tree < 4; tree++ {
		var counts [buckets]int
		var k [8]byte
		for i := 0; i < keys; i++ {
			binary.LittleEndian.PutUint64(k[:], uint64(i))
			pc, pb := w.Pair(k[:])
			counts[WideIndex(pc, pb, tree, buckets)]++
		}
		expected := float64(keys) / buckets
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 63 degrees of freedom: mean 63, stddev ~11.2. Same loose bound
		// as TestUniformity — catches broken derivations only.
		if chi2 > 200 {
			t.Errorf("tree %d: chi-squared %f too high, indexes not uniform", tree, chi2)
		}
	}
}

// TestWidePairwiseIndependence chi-squared-tests the joint distribution of
// every tree-index pair on a coarse grid: if two trees' indexes were
// correlated (the risk of deriving both from one hash pass), the joint
// counts would deviate from the product of the marginals.
func TestWidePairwiseIndependence(t *testing.T) {
	const keys = 1 << 16
	const g = 16 // g×g joint cells per pair
	const n = 1024
	w := NewBobWide(777)
	const trees = 4
	idx := make([][]int, trees)
	for ti := range idx {
		idx[ti] = make([]int, keys)
	}
	var k [8]byte
	for i := 0; i < keys; i++ {
		binary.LittleEndian.PutUint64(k[:], uint64(i))
		pc, pb := w.Pair(k[:])
		for ti := 0; ti < trees; ti++ {
			idx[ti][i] = WideIndex(pc, pb, ti, n)
		}
	}
	for a := 0; a < trees; a++ {
		for b := a + 1; b < trees; b++ {
			var joint [g][g]int
			for i := 0; i < keys; i++ {
				joint[idx[a][i]*g/n][idx[b][i]*g/n]++
			}
			expected := float64(keys) / (g * g)
			chi2 := 0.0
			for _, row := range joint {
				for _, c := range row {
					d := float64(c) - expected
					chi2 += d * d / expected
				}
			}
			// 255 degrees of freedom: mean 255, stddev ~22.6. 400 is >6σ
			// out and only fires on real correlation between the lanes.
			if chi2 > 400 {
				t.Errorf("trees %d,%d: joint chi-squared %f, indexes are correlated", a, b, chi2)
			}
		}
	}
}

// TestWideIndexGolden pins the exact index derivation for a fixed seed and
// fixed keys. Counter placement — in snapshots, on the collection wire,
// and across merges — depends on these values: a refactor that changes
// them silently moves every counter and breaks mixed-version merging, so
// any intentional change must update this table AND be treated as a wire
// format break.
func TestWideIndexGolden(t *testing.T) {
	w := NewBobFamily(0xfc3141).Wide()
	n := 4096
	keys := [][]byte{
		{10, 0, 0, 1},
		{192, 168, 0, 42},
		{1, 2, 3, 4, 5, 6, 7, 8},
		[]byte("13-byte-key!!"),
	}
	want := [][4]int{
		{2352, 3788, 2954, 3067},
		{1127, 2645, 2450, 989},
		{1035, 937, 58, 1547},
		{805, 2901, 3914, 1311},
	}
	for ki, key := range keys {
		pc, pb := w.Pair(key)
		for tree := 0; tree < 4; tree++ {
			if got := WideIndex(pc, pb, tree, n); got != want[ki][tree] {
				t.Errorf("key %d tree %d: index %d, want %d", ki, tree, got, want[ki][tree])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Hash micro-benchmarks: per-function cost tracking for the ingest path.
// The Wide benchmarks measure the one-pass derivation against d separate
// Bob evaluations — the hot-path saving of one-pass multi-index hashing.
// ---------------------------------------------------------------------------

func BenchmarkXX13(b *testing.B)     { benchHash(b, NewXX64(1), 13) }
func BenchmarkMurmur13(b *testing.B) { benchHash(b, NewMurmur3(1), 13) }

func BenchmarkReduce(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= Reduce(uint64(i)*0x9e3779b97f4a7c15, 1<<20)
	}
	_ = sink
}

func benchWide(b *testing.B, keyLen, trees int) {
	w := NewBobWide(1)
	key := make([]byte, keyLen)
	b.SetBytes(int64(keyLen))
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		pc, pb := w.Pair(key)
		for ti := 0; ti < trees; ti++ {
			sink ^= WideIndex(pc, pb, ti, 1<<16)
		}
	}
	_ = sink
}

func benchPerTree(b *testing.B, keyLen, trees int) {
	f := NewBobFamily(1)
	hs := make([]Hasher, trees)
	for i := range hs {
		hs[i] = f.New(i)
	}
	key := make([]byte, keyLen)
	b.SetBytes(int64(keyLen))
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		key[0] = byte(i)
		for _, h := range hs {
			sink ^= Reduce(h.Hash(key), 1<<16)
		}
	}
	_ = sink
}

func BenchmarkWideIndexes(b *testing.B) {
	for _, trees := range []int{2, 4} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) { benchWide(b, 4, trees) })
	}
}

func BenchmarkPerTreeIndexes(b *testing.B) {
	for _, trees := range []int{2, 4} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) { benchPerTree(b, 4, trees) })
	}
}
