package hll

import (
	"encoding/binary"
	"math"
	"testing"
)

func k(i uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], i)
	return b[:]
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{MemoryBytes: 4}); err == nil {
		t.Error("expected error for tiny memory")
	}
}

func TestRegistersPowerOfTwo(t *testing.T) {
	s, err := New(Config{MemoryBytes: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Registers() != 2048 {
		t.Errorf("registers %d want 2048", s.Registers())
	}
	if s.MemoryBytes() != 2048 {
		t.Errorf("memory %d", s.MemoryBytes())
	}
}

func TestAccuracy(t *testing.T) {
	cases := []struct {
		mem int
		n   int
		tol float64
	}{
		{1 << 12, 1000, 0.05},  // small-range (linear counting)
		{1 << 12, 100000, 0.1}, // HLL core estimator, ~1.04/sqrt(4096)≈1.6%
		{1 << 14, 500000, 0.05},
	}
	for _, c := range cases {
		s, err := New(Config{MemoryBytes: c.mem})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < c.n; i++ {
			s.Update(k(uint64(i)), 1)
		}
		got := s.Cardinality()
		if re := math.Abs(got-float64(c.n)) / float64(c.n); re > c.tol {
			t.Errorf("mem=%d n=%d: estimate %f (RE %f > %f)", c.mem, c.n, got, re, c.tol)
		}
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	s, err := New(Config{MemoryBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 500; i++ {
			s.Update(k(uint64(i)), 7)
		}
	}
	got := s.Cardinality()
	if math.Abs(got-500)/500 > 0.1 {
		t.Errorf("estimate %f want ~500", got)
	}
}

func TestEmpty(t *testing.T) {
	s, err := New(Config{MemoryBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cardinality(); got != 0 {
		t.Errorf("empty cardinality %f", got)
	}
}

func TestReset(t *testing.T) {
	s, err := New(Config{MemoryBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.Update(k(uint64(i)), 1)
	}
	s.Reset()
	if got := s.Cardinality(); got != 0 {
		t.Errorf("after reset %f", got)
	}
}

func TestMerge(t *testing.T) {
	a, _ := New(Config{MemoryBytes: 1 << 12})
	b, _ := New(Config{MemoryBytes: 1 << 12})
	for i := 0; i < 3000; i++ {
		a.Update(k(uint64(i)), 1)
	}
	for i := 2000; i < 5000; i++ {
		b.Update(k(uint64(i)), 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Cardinality()
	if math.Abs(got-5000)/5000 > 0.1 {
		t.Errorf("merged estimate %f want ~5000", got)
	}
	c, _ := New(Config{MemoryBytes: 64})
	if err := a.Merge(c); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestMonotone(t *testing.T) {
	s, _ := New(Config{MemoryBytes: 1 << 10})
	prev := 0.0
	for i := 0; i < 20000; i++ {
		s.Update(k(uint64(i)), 1)
		if i%2000 == 1999 {
			got := s.Cardinality()
			if got < prev*0.95 {
				t.Fatalf("estimate dropped sharply: %f after %f", got, prev)
			}
			prev = got
		}
	}
}

func BenchmarkUpdateHLL(b *testing.B) {
	s, _ := New(Config{MemoryBytes: 1 << 14})
	var key [8]byte
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(key[:], uint64(i))
		s.Update(key[:], 1)
	}
}
