// Package hll implements HyperLogLog (Flajolet et al. [27]), the paper's
// cardinality baseline (§7.1: an 8-bit register array). The estimator uses
// the standard bias correction plus linear counting for the small range;
// with a 64-bit hash the large-range correction is unnecessary.
package hll

import (
	"fmt"
	"math"

	"github.com/fcmsketch/fcm/internal/hashing"
)

// Sketch is a HyperLogLog cardinality estimator.
type Sketch struct {
	registers []uint8
	p         uint // precision: m = 2^p registers
	hasher    hashing.Hasher
}

// Config parameterizes the sketch.
type Config struct {
	// MemoryBytes sets the register count: the largest power of two that
	// fits (one byte per register, per the paper's implementation).
	MemoryBytes int
	// Hash supplies the hash function; nil selects xxHash64.
	Hash hashing.Family
}

// New builds a HyperLogLog sketch.
func New(cfg Config) (*Sketch, error) {
	if cfg.MemoryBytes < 16 {
		return nil, fmt.Errorf("hll: memory %dB too small (need ≥ 16)", cfg.MemoryBytes)
	}
	p := uint(0)
	for (1 << (p + 1)) <= cfg.MemoryBytes {
		p++
	}
	if p > 31 {
		p = 31
	}
	fam := cfg.Hash
	if fam == nil {
		fam = hashing.NewXX64Family(0x417e11)
	}
	return &Sketch{registers: make([]uint8, 1<<p), p: p, hasher: fam.New(0)}, nil
}

// Update implements sketch.Updater. The increment is ignored: cardinality
// depends only on key occurrence.
func (s *Sketch) Update(key []byte, _ uint64) {
	h := s.hasher.Hash(key)
	idx := h >> (64 - s.p)
	rest := h<<s.p | 1<<(s.p-1) // low bits; sentinel bounds rho
	rho := uint8(1)
	for rest&(1<<63) == 0 {
		rho++
		rest <<= 1
	}
	if rho > s.registers[idx] {
		s.registers[idx] = rho
	}
}

// Cardinality implements sketch.CardinalityEstimator.
func (s *Sketch) Cardinality() float64 {
	m := float64(len(s.registers))
	sum := 0.0
	zeros := 0
	for _, r := range s.registers {
		sum += math.Exp2(-float64(r))
		if r == 0 {
			zeros++
		}
	}
	est := alpha(len(s.registers)) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction: linear counting.
		return m * math.Log(m/float64(zeros))
	}
	return est
}

// alpha is the standard HLL bias-correction constant.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// MemoryBytes implements sketch.Sized.
func (s *Sketch) MemoryBytes() int { return len(s.registers) }

// Registers returns the number of registers m.
func (s *Sketch) Registers() int { return len(s.registers) }

// Reset implements sketch.Resettable.
func (s *Sketch) Reset() {
	for i := range s.registers {
		s.registers[i] = 0
	}
}

// Merge folds another sketch of identical geometry into s (register-wise
// max), the standard distributed-HLL union.
func (s *Sketch) Merge(o *Sketch) error {
	if len(o.registers) != len(s.registers) {
		return fmt.Errorf("hll: merge size mismatch: %d vs %d", len(o.registers), len(s.registers))
	}
	for i, r := range o.registers {
		if r > s.registers[i] {
			s.registers[i] = r
		}
	}
	return nil
}
