package collect

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/fcmsketch/fcm/internal/telemetry"
)

// ClientConfig configures a collection client. Zero fields take the
// defaults below.
type ClientConfig struct {
	// Addr is the collection server address (required).
	Addr string
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// IOTimeout is the per-operation read/write deadline (default 5s).
	// Every frame write and frame read gets a fresh deadline, so a
	// black-holed server costs at most one IOTimeout per attempt.
	IOTimeout time.Duration
	// MaxRetries is how many extra attempts idempotent reads get after a
	// transport failure (default 0: single attempt). Each retry redials.
	// Resets are never retried by the client: a reset whose response was
	// lost may already have rotated the window, and re-sending it would
	// silently discard a window of data.
	MaxRetries int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between retries (defaults 10ms and 1s); each sleep adds up to 50%
	// seeded jitter so synchronized collectors decorrelate.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter PRNG; 0 means 1, keeping
	// retry schedules deterministic for tests.
	JitterSeed int64
	// Dial overrides the transport (e.g. to wrap connections with a
	// fault injector). nil means net.DialTimeout("tcp", ...).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Logger receives structured recovery records (redials, retries,
	// decode failures); nil discards them.
	Logger *slog.Logger
}

const (
	defaultDialTimeout = 5 * time.Second
	defaultIOTimeout   = 5 * time.Second
	defaultBackoffBase = 10 * time.Millisecond
	defaultBackoffMax  = time.Second
)

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = defaultDialTimeout
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = defaultIOTimeout
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = defaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = defaultBackoffMax
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return c
}

// ServerError is a status-error response from the server: the transport
// worked, the request was rejected. Retrying it cannot help.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "collect: server error: " + e.Msg }

// ClientStats count the client's recovery actions.
type ClientStats struct {
	// Dials counts connection establishments (first dial and redials).
	Dials uint64
	// Retries counts retried idempotent reads.
	Retries uint64
	// DecodeFailures counts responses that framed cleanly but failed
	// decoding (e.g. CRC mismatch from a corrupting link).
	DecodeFailures uint64
}

// Client pulls snapshots from a Server over a reused connection. It
// reconnects transparently after transport failures and retries
// idempotent reads with capped exponential backoff. Methods must not be
// called concurrently (a Poller or a CLI drives one client).
type Client struct {
	cfg ClientConfig
	rng *rand.Rand // backoff jitter; guarded by mu

	mu   sync.Mutex // guards conn handoff against Close
	conn net.Conn

	dials          uint64
	retries        uint64
	decodeFailures uint64

	log *slog.Logger
}

// NewClient builds a client. The connection is established lazily on the
// first operation (and re-established after failures).
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("collect: client needs an address")
	}
	cfg = cfg.withDefaults()
	return &Client{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.JitterSeed)),
		log: telemetry.OrNop(cfg.Logger),
	}, nil
}

// Dial connects to a collection server with the given timeout, applying
// it to both the dial and every subsequent operation. Kept for
// compatibility; NewClient exposes the full retry/deadline surface.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	c, err := NewClient(ClientConfig{Addr: addr, DialTimeout: timeout, IOTimeout: timeout})
	if err != nil {
		return nil, err
	}
	if _, err := c.ensureConn(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection (if any). The client stays usable: the
// next operation redials.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}

// Stats returns the client's recovery counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{
		Dials:          c.dials,
		Retries:        c.retries,
		DecodeFailures: c.decodeFailures,
	}
}

// ReadSketch fetches a register snapshot, retrying per the config.
func (c *Client) ReadSketch() (*Snapshot, error) {
	return c.ReadSketchContext(context.Background())
}

// ReadSketchContext is ReadSketch bounded by ctx: cancellation interrupts
// an in-flight network operation (the connection deadline is yanked), so
// callers regain control within one operation, not one timeout.
func (c *Client) ReadSketchContext(ctx context.Context) (*Snapshot, error) {
	// Decoding happens inside the retry loop: a snapshot that framed
	// cleanly but fails its CRC (bit corruption in transit) is an attempt
	// failure like any other — drop the tainted connection and retry.
	var snap *Snapshot
	_, err := c.call(ctx, []byte{OpReadSketch}, true, func(payload []byte) error {
		s, err := DecodeSnapshot(payload)
		if err != nil {
			return err
		}
		snap = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// ResetSketch clears the data plane's registers (window rotation). It is
// never retried — see ClientConfig.MaxRetries.
func (c *Client) ResetSketch() error {
	return c.ResetSketchContext(context.Background())
}

// ResetSketchContext is ResetSketch bounded by ctx.
func (c *Client) ResetSketchContext(ctx context.Context) error {
	_, err := c.call(ctx, []byte{OpResetSketch}, false, nil)
	return err
}

// call runs one request with the retry policy. decode, when non-nil,
// validates the response payload; a decode failure counts as an attempt
// failure — the connection that produced it is dropped (its fault may be
// persistent, e.g. a corrupting link) and idempotent requests retry.
func (c *Client) call(ctx context.Context, req []byte, idempotent bool, decode func([]byte) error) ([]byte, error) {
	attempts := 1
	if idempotent {
		attempts += c.cfg.MaxRetries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			c.log.Debug("retrying read",
				"attempt", attempt, "max", attempts-1, "last_err", lastErr)
			if err := c.backoff(ctx, attempt); err != nil {
				return nil, err
			}
		}
		payload, err := c.attempt(ctx, req)
		if err == nil && decode != nil {
			if derr := decode(payload); derr != nil {
				c.mu.Lock()
				c.decodeFailures++
				c.mu.Unlock()
				c.log.Warn("response decode failed, dropping connection", "err", derr)
				c.dropCurrent()
				err = derr
			}
		}
		if err == nil {
			return payload, nil
		}
		lastErr = err
		var se *ServerError
		if errors.As(err, &se) || ctx.Err() != nil {
			// Deterministic rejection or caller cancellation: retrying
			// cannot help.
			return nil, err
		}
	}
	return nil, lastErr
}

// backoff sleeps the capped exponential delay for the given retry
// attempt (1-based), with up to 50% seeded jitter, honoring ctx.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.cfg.BackoffBase << uint(attempt-1)
	if attempt > 16 || d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	t := time.NewTimer(d + jitter)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ensureConn returns the live connection, dialing if needed.
func (c *Client) ensureConn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		return conn, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conn, err := c.cfg.Dial(c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("collect: dial %s: %w", c.cfg.Addr, err)
	}
	c.mu.Lock()
	c.conn = conn
	dials := c.dials + 1
	c.dials = dials
	c.mu.Unlock()
	if dials > 1 {
		c.log.Debug("reconnected to collection server", "addr", c.cfg.Addr, "dials", dials)
	}
	return conn, nil
}

// dropConn discards a connection after a transport failure so the next
// attempt redials.
func (c *Client) dropConn(conn net.Conn) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
	conn.Close() //nolint:errcheck // already failed
}

// dropCurrent discards whatever connection is live right now (used when a
// response decoded badly: the connection itself may be the fault).
func (c *Client) dropCurrent() {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		conn.Close() //nolint:errcheck // being discarded
	}
}

// roundTrip is a single request attempt with no retries (test hook and
// building block of call).
func (c *Client) roundTrip(req []byte) ([]byte, error) {
	return c.attempt(context.Background(), req)
}

// attempt performs one framed request/response exchange under per-op
// deadlines, interruptible by ctx.
func (c *Client) attempt(ctx context.Context, req []byte) ([]byte, error) {
	conn, err := c.ensureConn(ctx)
	if err != nil {
		return nil, err
	}
	// Cancellation watchdog: yank the deadline so blocked I/O returns
	// immediately instead of waiting out IOTimeout.
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				conn.SetDeadline(time.Unix(1, 0)) //nolint:errcheck // unblocking teardown
			case <-stop:
			}
		}()
	}
	conn.SetWriteDeadline(c.opDeadline(ctx)) //nolint:errcheck // enforced by the write
	if err := writeFrame(conn, req); err != nil {
		c.dropConn(conn)
		return nil, c.ctxErr(ctx, fmt.Errorf("collect: sending request: %w", err))
	}
	conn.SetReadDeadline(c.opDeadline(ctx)) //nolint:errcheck
	resp, err := readFrame(conn)
	if err != nil {
		c.dropConn(conn)
		return nil, c.ctxErr(ctx, fmt.Errorf("collect: reading response: %w", err))
	}
	payload, err := parseResponse(resp)
	if err != nil {
		// Either a server rejection (the server closes its side after
		// any error) or a corrupt status byte (stream untrustworthy):
		// drop the connection in both cases.
		c.dropConn(conn)
		return nil, err
	}
	return payload, nil
}

// opDeadline is the per-operation deadline: IOTimeout from now, tightened
// by the context's own deadline if that is sooner.
func (c *Client) opDeadline(ctx context.Context) time.Time {
	dl := time.Now().Add(c.cfg.IOTimeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(dl) {
		dl = cd
	}
	return dl
}

// ctxErr prefers the context's error once it fired: a deadline-exceeded
// I/O error caused by the cancellation watchdog reports as cancellation.
func (c *Client) ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// parseResponse splits a response payload into status and body. The
// status byte must be exactly statusOK or statusErr — anything else is
// stream corruption, not a server verdict.
func parseResponse(resp []byte) ([]byte, error) {
	if len(resp) < 1 {
		return nil, errors.New("collect: empty response")
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusErr:
		return nil, &ServerError{Msg: string(resp[1:])}
	default:
		return nil, fmt.Errorf("collect: corrupt status byte 0x%02x", resp[0])
	}
}
