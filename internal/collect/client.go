package collect

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
)

// ClientConfig configures a collection client. Zero fields take the
// defaults below.
type ClientConfig struct {
	// Addr is the collection server address (required).
	Addr string
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// IOTimeout is the per-operation read/write deadline (default 5s).
	// Every frame write and frame read gets a fresh deadline, so a
	// black-holed server costs at most one IOTimeout per attempt.
	IOTimeout time.Duration
	// MaxRetries is how many extra attempts idempotent reads get after a
	// transport failure (default 0: single attempt). Each retry redials.
	// Resets are never retried by the client: a reset whose response was
	// lost may already have rotated the window, and re-sending it would
	// silently discard a window of data.
	MaxRetries int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between retries (defaults 10ms and 1s); each sleep adds up to 50%
	// seeded jitter so synchronized collectors decorrelate.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter PRNG; 0 means 1, keeping
	// retry schedules deterministic for tests.
	JitterSeed int64
	// Dial overrides the transport (e.g. to wrap connections with a
	// fault injector). nil means net.DialTimeout("tcp", ...).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Delta enables the codec v3 delta protocol: reads request only the
	// registers changed since the last acked snapshot, falling back to a
	// full snapshot on any baseline mismatch and downgrading permanently
	// to v2 against servers that do not know the opcode. ReadSketch still
	// returns complete snapshots either way — deltas are a transport
	// optimization, invisible to callers.
	Delta bool
	// SessionID identifies this client in the server's delta session
	// store. 0 draws a process-unique ID; set it explicitly when several
	// controller processes poll the same switch (colliding IDs are safe —
	// they just evict each other's baselines into full-snapshot fallbacks).
	SessionID uint64
	// Logger receives structured recovery records (redials, retries,
	// decode failures); nil discards them.
	Logger *slog.Logger
}

const (
	defaultDialTimeout = 5 * time.Second
	defaultIOTimeout   = 5 * time.Second
	defaultBackoffBase = 10 * time.Millisecond
	defaultBackoffMax  = time.Second
)

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = defaultDialTimeout
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = defaultIOTimeout
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = defaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = defaultBackoffMax
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.Dial == nil {
		c.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return c
}

// ServerError is a status-error response from the server: the transport
// worked, the request was rejected. Retrying it cannot help.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "collect: server error: " + e.Msg }

// ClientStats count the client's recovery actions.
type ClientStats struct {
	// Dials counts connection establishments (first dial and redials).
	Dials uint64
	// Retries counts retried idempotent reads.
	Retries uint64
	// DecodeFailures counts responses that framed cleanly but failed
	// decoding (e.g. CRC mismatch from a corrupting link).
	DecodeFailures uint64
	// DeltasApplied counts v3 delta frames applied to the local baseline.
	DeltasApplied uint64
	// FullSnapshots counts full snapshots received on the v3 path (first
	// poll and every fallback the server chose).
	FullSnapshots uint64
	// DeltaFallbacks counts client-side baseline invalidations: a delta
	// arrived that could not be applied safely (unknown base generation,
	// state-CRC mismatch, out-of-range block), so the baseline was
	// discarded and the next request asked for a full snapshot.
	DeltaFallbacks uint64
	// V2Downgrades counts permanent downgrades to the v2 protocol after a
	// server rejected OpReadDelta as unknown.
	V2Downgrades uint64
}

// Client pulls snapshots from a Server over a reused connection. It
// reconnects transparently after transport failures and retries
// idempotent reads with capped exponential backoff. Methods must not be
// called concurrently (a Poller or a CLI drives one client).
type Client struct {
	cfg ClientConfig
	rng *rand.Rand // backoff jitter; guarded by mu

	mu   sync.Mutex // guards conn handoff against Close
	conn net.Conn

	dials          uint64
	retries        uint64
	decodeFailures uint64
	deltasApplied  uint64
	fullSnapshots  uint64
	deltaFallbacks uint64
	v2Downgrades   uint64

	// Delta baseline (guarded by mu so InvalidateDeltaState may be called
	// from another goroutine): the last snapshot whose generation the
	// server has — or will, on our next request — see acked.
	baseline      *Snapshot
	baselineGen   uint64
	haveBaseline  bool
	v3Unsupported bool

	log *slog.Logger
}

// nextSessionID hands out process-unique default delta session IDs.
var nextSessionID atomic.Uint64

// NewClient builds a client. The connection is established lazily on the
// first operation (and re-established after failures).
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("collect: client needs an address")
	}
	cfg = cfg.withDefaults()
	if cfg.Delta && cfg.SessionID == 0 {
		cfg.SessionID = nextSessionID.Add(1)
	}
	return &Client{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.JitterSeed)),
		log: telemetry.OrNop(cfg.Logger),
	}, nil
}

// Dial connects to a collection server with the given timeout, applying
// it to both the dial and every subsequent operation. Kept for
// compatibility; NewClient exposes the full retry/deadline surface.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	c, err := NewClient(ClientConfig{Addr: addr, DialTimeout: timeout, IOTimeout: timeout})
	if err != nil {
		return nil, err
	}
	if _, err := c.ensureConn(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection (if any). The client stays usable: the
// next operation redials.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}

// Stats returns the client's recovery counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{
		Dials:          c.dials,
		Retries:        c.retries,
		DecodeFailures: c.decodeFailures,
		DeltasApplied:  c.deltasApplied,
		FullSnapshots:  c.fullSnapshots,
		DeltaFallbacks: c.deltaFallbacks,
		V2Downgrades:   c.v2Downgrades,
	}
}

// InvalidateDeltaState discards the client's delta baseline, as if the
// acked generation had been lost: the next read declares no baseline and
// receives a full snapshot (counted by the server as a no_baseline
// fallback). Chaos tests use it to inject generation loss; it is also the
// escape hatch if a baseline is ever suspected stale. Safe to call
// concurrently with reads.
func (c *Client) InvalidateDeltaState() {
	c.mu.Lock()
	c.baseline, c.baselineGen, c.haveBaseline = nil, 0, false
	c.mu.Unlock()
}

// ReadSketch fetches a register snapshot, retrying per the config.
func (c *Client) ReadSketch() (*Snapshot, error) {
	return c.ReadSketchContext(context.Background())
}

// ReadSketchContext is ReadSketch bounded by ctx: cancellation interrupts
// an in-flight network operation (the connection deadline is yanked), so
// callers regain control within one operation, not one timeout. With
// Delta enabled it speaks codec v3 (the returned snapshot is still always
// complete); a server that rejects the v3 opcode downgrades this client
// to v2 permanently.
func (c *Client) ReadSketchContext(ctx context.Context) (*Snapshot, error) {
	if c.cfg.Delta {
		c.mu.Lock()
		unsupported := c.v3Unsupported
		c.mu.Unlock()
		if !unsupported {
			snap, err := c.readDelta(ctx)
			var se *ServerError
			if err != nil && errors.As(err, &se) && strings.Contains(se.Msg, "unknown opcode") {
				// Version downgrade: the server predates v3. Fall through
				// to the v2 read below and stop asking.
				c.mu.Lock()
				c.v2Downgrades++
				c.v3Unsupported = true
				c.mu.Unlock()
				c.log.Warn("server does not speak codec v3, downgrading to v2",
					"addr", c.cfg.Addr)
			} else {
				return snap, err
			}
		}
	}
	// Decoding happens inside the retry loop: a snapshot that framed
	// cleanly but fails its CRC (bit corruption in transit) is an attempt
	// failure like any other — drop the tainted connection and retry.
	var snap *Snapshot
	_, err := c.call(ctx, []byte{OpReadSketch}, true, func(payload []byte) error {
		sp := tracing.FromContext(ctx).StartSpan("decode")
		defer sp.End()
		s, err := DecodeSnapshot(payload)
		if err != nil {
			sp.Fail(err)
			return err
		}
		sp.Annotate("bytes", strconv.Itoa(len(payload)))
		snap = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// readDelta runs one v3 read. The request is rebuilt per attempt: an
// attempt that invalidated the baseline (bad delta) must ask for a full
// snapshot on its retry, not re-request the same doomed delta.
func (c *Client) readDelta(ctx context.Context) (*Snapshot, error) {
	var snap *Snapshot
	_, err := c.callReq(ctx, func() []byte {
		c.mu.Lock()
		req := encodeReadDelta(c.cfg.SessionID, c.haveBaseline, c.baselineGen)
		c.mu.Unlock()
		return req
	}, true, func(payload []byte) error {
		dsp := tracing.FromContext(ctx).StartSpan("decode")
		frame, err := DecodeDeltaFrame(payload)
		if err != nil {
			dsp.Fail(err)
			dsp.End()
			return err
		}
		dsp.Annotate("bytes", strconv.Itoa(len(payload)))
		dsp.End()
		asp := tracing.FromContext(ctx).StartSpan("delta.apply")
		defer asp.End()
		s, err := c.applyDeltaFrame(frame)
		if err != nil {
			// The error text names the fallback reason (generation
			// mismatch, bad block, state-CRC disagreement); the span keeps
			// it next to the attempt that triggered the full-snapshot
			// re-request.
			asp.Annotate("fallback", "baseline_invalidated")
			asp.Fail(err)
			return err
		}
		if frame.Full {
			asp.Annotate("kind", "full")
		} else {
			asp.Annotate("kind", "delta")
		}
		snap = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// applyDeltaFrame folds one decoded v3 frame into the baseline and returns
// the complete snapshot it represents (caller-owned). Any inconsistency —
// a delta against a generation we do not hold, a block outside the
// geometry, a post-apply state CRC that disagrees with the server's —
// invalidates the baseline and errors, so the retry (or next poll)
// requests a full snapshot. Wrong merges are structurally impossible: the
// state CRC covers every register of the reconstructed snapshot.
func (c *Client) applyDeltaFrame(frame *DeltaFrame) (*Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if frame.Full {
		c.fullSnapshots++
		c.baseline = frame.Snap.Clone()
		c.baselineGen = frame.NewGen
		c.haveBaseline = true
		return frame.Snap, nil
	}
	if !c.haveBaseline || frame.BaseGen != c.baselineGen {
		c.deltaFallbacks++
		haveGen, had := c.baselineGen, c.haveBaseline
		c.baseline, c.haveBaseline = nil, false
		return nil, fmt.Errorf("collect: delta against generation %d, baseline is %d (have=%v)",
			frame.BaseGen, haveGen, had)
	}
	next, err := ApplyDelta(c.baseline, frame.Blocks)
	if err != nil {
		c.deltaFallbacks++
		c.baseline, c.haveBaseline = nil, false
		return nil, err
	}
	if got := next.StateCRC(); got != frame.StateCRC {
		c.deltaFallbacks++
		c.baseline, c.haveBaseline = nil, false
		return nil, fmt.Errorf("collect: state CRC after delta 0x%08x, server pinned 0x%08x",
			got, frame.StateCRC)
	}
	c.deltasApplied++
	c.baseline = next
	c.baselineGen = frame.NewGen
	return next.Clone(), nil
}

// ResetSketch clears the data plane's registers (window rotation). It is
// never retried — see ClientConfig.MaxRetries.
func (c *Client) ResetSketch() error {
	return c.ResetSketchContext(context.Background())
}

// ResetSketchContext is ResetSketch bounded by ctx.
func (c *Client) ResetSketchContext(ctx context.Context) error {
	_, err := c.call(ctx, []byte{OpResetSketch}, false, nil)
	return err
}

// call runs one fixed request with the retry policy.
func (c *Client) call(ctx context.Context, req []byte, idempotent bool, decode func([]byte) error) ([]byte, error) {
	return c.callReq(ctx, func() []byte { return req }, idempotent, decode)
}

// callReq runs one request with the retry policy, rebuilding the request
// bytes per attempt (delta reads mutate their own baseline state on
// failure, so the retry must re-ask from current state). decode, when
// non-nil, validates the response payload; a decode failure counts as an
// attempt failure — the connection that produced it is dropped (its fault
// may be persistent, e.g. a corrupting link) and idempotent requests
// retry. On exhaustion the error joins every attempt's failure, so a
// flapping link, a CRC rejection, and a timeout in the same read are all
// diagnosable from the one message.
func (c *Client) callReq(ctx context.Context, buildReq func() []byte, idempotent bool, decode func([]byte) error) ([]byte, error) {
	attempts := 1
	if idempotent {
		attempts += c.cfg.MaxRetries
	}
	var attemptErrs []error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			c.mu.Unlock()
			c.log.Debug("retrying read",
				"attempt", attempt, "max", attempts-1, "last_err", attemptErrs[len(attemptErrs)-1])
			if err := c.backoff(ctx, attempt); err != nil {
				return nil, errors.Join(append(attemptErrs, err)...)
			}
		}
		asp := tracing.FromContext(ctx).StartSpan("client.attempt")
		asp.Annotate("attempt", strconv.Itoa(attempt+1))
		payload, err := c.attempt(ctx, buildReq())
		if err == nil && decode != nil {
			if derr := decode(payload); derr != nil {
				c.mu.Lock()
				c.decodeFailures++
				c.mu.Unlock()
				c.log.Warn("response decode failed, dropping connection", "err", derr)
				c.dropCurrent()
				err = derr
			}
		}
		if err == nil {
			asp.End()
			return payload, nil
		}
		asp.Fail(err)
		asp.End()
		attemptErrs = append(attemptErrs, fmt.Errorf("attempt %d: %w", attempt+1, err))
		var se *ServerError
		if errors.As(err, &se) || ctx.Err() != nil {
			// Deterministic rejection or caller cancellation: retrying
			// cannot help.
			return nil, errors.Join(attemptErrs...)
		}
	}
	return nil, errors.Join(attemptErrs...)
}

// backoff sleeps the capped exponential delay for the given retry
// attempt (1-based), with up to 50% seeded jitter, honoring ctx.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.cfg.BackoffBase << uint(attempt-1)
	if attempt > 16 || d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	t := time.NewTimer(d + jitter)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ensureConn returns the live connection, dialing if needed.
func (c *Client) ensureConn(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn != nil {
		return conn, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dsp := tracing.FromContext(ctx).StartSpan("client.dial")
	dsp.Annotate("addr", c.cfg.Addr)
	conn, err := c.cfg.Dial(c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		err = fmt.Errorf("collect: dial %s: %w", c.cfg.Addr, err)
		dsp.Fail(err)
		dsp.End()
		return nil, err
	}
	dsp.End()
	c.mu.Lock()
	c.conn = conn
	dials := c.dials + 1
	c.dials = dials
	c.mu.Unlock()
	if dials > 1 {
		c.log.Debug("reconnected to collection server", "addr", c.cfg.Addr, "dials", dials)
	}
	return conn, nil
}

// dropConn discards a connection after a transport failure so the next
// attempt redials.
func (c *Client) dropConn(conn net.Conn) {
	c.mu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.mu.Unlock()
	conn.Close() //nolint:errcheck // already failed
}

// dropCurrent discards whatever connection is live right now (used when a
// response decoded badly: the connection itself may be the fault).
func (c *Client) dropCurrent() {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		conn.Close() //nolint:errcheck // being discarded
	}
}

// roundTrip is a single request attempt with no retries (test hook and
// building block of call).
func (c *Client) roundTrip(req []byte) ([]byte, error) {
	return c.attempt(context.Background(), req)
}

// attempt performs one framed request/response exchange under per-op
// deadlines, interruptible by ctx.
func (c *Client) attempt(ctx context.Context, req []byte) ([]byte, error) {
	conn, err := c.ensureConn(ctx)
	if err != nil {
		return nil, err
	}
	// Cancellation watchdog: yank the deadline so blocked I/O returns
	// immediately instead of waiting out IOTimeout.
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				conn.SetDeadline(time.Unix(1, 0)) //nolint:errcheck // unblocking teardown
			case <-stop:
			}
		}()
	}
	conn.SetWriteDeadline(c.opDeadline(ctx)) //nolint:errcheck // enforced by the write
	if err := writeFrame(conn, req); err != nil {
		c.dropConn(conn)
		return nil, c.ctxErr(ctx, fmt.Errorf("collect: sending request: %w", err))
	}
	conn.SetReadDeadline(c.opDeadline(ctx)) //nolint:errcheck
	resp, err := readFrame(conn)
	if err != nil {
		c.dropConn(conn)
		return nil, c.ctxErr(ctx, fmt.Errorf("collect: reading response: %w", err))
	}
	payload, err := parseResponse(resp)
	if err != nil {
		// Either a server rejection (the server closes its side after
		// any error) or a corrupt status byte (stream untrustworthy):
		// drop the connection in both cases.
		c.dropConn(conn)
		return nil, err
	}
	return payload, nil
}

// opDeadline is the per-operation deadline: IOTimeout from now, tightened
// by the context's own deadline if that is sooner.
func (c *Client) opDeadline(ctx context.Context) time.Time {
	dl := time.Now().Add(c.cfg.IOTimeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(dl) {
		dl = cd
	}
	return dl
}

// ctxErr prefers the context's error once it fired: a deadline-exceeded
// I/O error caused by the cancellation watchdog reports as cancellation.
func (c *Client) ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// parseResponse splits a response payload into status and body. The
// status byte must be exactly statusOK or statusErr — anything else is
// stream corruption, not a server verdict.
func parseResponse(resp []byte) ([]byte, error) {
	if len(resp) < 1 {
		return nil, errors.New("collect: empty response")
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusErr:
		return nil, &ServerError{Msg: string(resp[1:])}
	default:
		return nil, fmt.Errorf("collect: corrupt status byte 0x%02x", resp[0])
	}
}
