package collect

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/engine"
	"github.com/fcmsketch/fcm/internal/hashing"
)

// buildEngine is a generational leaf source for delta tests.
func buildEngine(t testing.TB) *engine.Engine {
	t.Helper()
	eng, err := engine.New(engine.Config{Build: func() (*core.Sketch, error) {
		return core.New(core.Config{
			K: 4, Trees: 2, LeafWidth: 256, Widths: []int{8, 16, 32},
			Hash: hashing.NewBobFamily(42),
		})
	}})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestDiffApplyRoundTrip(t *testing.T) {
	s := filledSketch(t)
	base := TakeSnapshot(s)
	for i := uint64(0); i < 500; i++ {
		s.Update(k(1000+i%40), 3)
	}
	cur := TakeSnapshot(s)

	blocks, ok := DiffSnapshots(base, cur)
	if !ok {
		t.Fatal("diff refused snapshots of identical geometry")
	}
	if len(blocks) == 0 {
		t.Fatal("500 updates produced an empty diff")
	}
	got, err := ApplyDelta(base, blocks)
	if err != nil {
		t.Fatal(err)
	}
	gotSk, err := got.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	curSk, err := cur.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := curSk.FirstRegisterDiff(gotSk); d != "" {
		t.Fatalf("apply(base, diff(base, cur)) != cur: %s", d)
	}
	if got.StateCRC() != cur.StateCRC() {
		t.Fatal("state CRC differs after exact reconstruction")
	}
	// The base must not have been mutated by the apply.
	if base.StateCRC() == cur.StateCRC() {
		t.Fatal("base snapshot was mutated by ApplyDelta")
	}
}

func TestDiffEmptyAndGeometry(t *testing.T) {
	snap := TakeSnapshot(filledSketch(t))
	blocks, ok := DiffSnapshots(snap, snap.Clone())
	if !ok || len(blocks) != 0 {
		t.Fatalf("identical snapshots: ok=%v blocks=%d, want true/0", ok, len(blocks))
	}
	other := TakeSnapshot(goldenSketch(t))
	if _, ok := DiffSnapshots(snap, other); ok {
		t.Fatal("diff accepted mismatched geometries")
	}
	if _, ok := DiffSnapshots(snap, nil); ok {
		t.Fatal("diff accepted nil current")
	}
}

func TestApplyDeltaRejectsOutOfRange(t *testing.T) {
	base := TakeSnapshot(filledSketch(t))
	for _, tc := range []struct {
		name  string
		block DeltaBlock
	}{
		{"tree", DeltaBlock{Tree: 99, Indexes: []uint32{0}, Values: []uint32{1}}},
		{"stage", DeltaBlock{Stage: 99, Indexes: []uint32{0}, Values: []uint32{1}}},
		{"index", DeltaBlock{Indexes: []uint32{1 << 30}, Values: []uint32{1}}},
		{"length", DeltaBlock{Indexes: []uint32{0, 1}, Values: []uint32{1}}},
	} {
		if _, err := ApplyDelta(base, []DeltaBlock{tc.block}); err == nil {
			t.Errorf("%s: out-of-range block applied without error", tc.name)
		}
	}
}

func TestDeltaFrameRoundTrip(t *testing.T) {
	s := filledSketch(t)
	base := TakeSnapshot(s)
	s.Update(k(9999), 7)
	cur := TakeSnapshot(s)
	blocks, _ := DiffSnapshots(base, cur)

	for _, tc := range []struct {
		name  string
		frame *DeltaFrame
	}{
		{"delta", &DeltaFrame{BaseGen: 10, NewGen: 11, StateCRC: cur.StateCRC(), Blocks: blocks}},
		{"empty", &DeltaFrame{BaseGen: 5, NewGen: 5, StateCRC: base.StateCRC()}},
		{"full", &DeltaFrame{Full: true, NewGen: 3, StateCRC: cur.StateCRC(), Snap: cur}},
	} {
		data, err := tc.frame.Encode()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := DecodeDeltaFrame(data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Full != tc.frame.Full || got.BaseGen != tc.frame.BaseGen ||
			got.NewGen != tc.frame.NewGen || got.StateCRC != tc.frame.StateCRC {
			t.Fatalf("%s: header fields drifted: %+v", tc.name, got)
		}
		if len(got.Blocks) != len(tc.frame.Blocks) {
			t.Fatalf("%s: %d blocks, want %d", tc.name, len(got.Blocks), len(tc.frame.Blocks))
		}
		if tc.frame.Full {
			gotSk, _ := got.Snap.Restore(nil)
			wantSk, _ := tc.frame.Snap.Restore(nil)
			if d := wantSk.FirstRegisterDiff(gotSk); d != "" {
				t.Fatalf("full frame registers drifted: %s", d)
			}
		}
	}
}

func TestDeltaFrameSizeComparison(t *testing.T) {
	s := filledSketch(t)
	base := TakeSnapshot(s)
	s.Update(k(42), 1)
	cur := TakeSnapshot(s)
	blocks, _ := DiffSnapshots(base, cur)
	frame := &DeltaFrame{BaseGen: 1, NewGen: 2, StateCRC: cur.StateCRC(), Blocks: blocks}
	data, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(data), deltaBlocksEncodedSize(blocks); got != want {
		t.Fatalf("deltaBlocksEncodedSize predicted %d, encoded %d", want, got)
	}
	fullBytes, err := cur.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(fullBytes), cur.encodedSizeV2(); got != want {
		t.Fatalf("encodedSizeV2 predicted %d, encoded %d", want, got)
	}
	if len(data) >= len(fullBytes) {
		t.Fatalf("one-update delta (%dB) not smaller than full snapshot (%dB)", len(data), len(fullBytes))
	}
}

// TestDeltaProtocolSteadyState drives the full client/server v3 exchange
// against a live generational engine: first read full, changed reads
// delta, unchanged reads the empty delta — each reconstructing registers
// bit-identical to a direct snapshot, with delta wire bytes strictly below
// full-snapshot wire bytes.
func TestDeltaProtocolSteadyState(t *testing.T) {
	eng := buildEngine(t)
	for i := uint64(0); i < 2000; i++ {
		eng.Update(k(i%300), 1+i%5)
	}
	srv, err := NewServer("127.0.0.1:0", eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := NewClient(ClientConfig{Addr: srv.Addr(), Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	verify := func(step string, snap *Snapshot) {
		t.Helper()
		want := eng.SnapshotSketch()
		got, err := snap.Restore(hashing.NewBobFamily(42))
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if d := want.FirstRegisterDiff(got); d != "" {
			t.Fatalf("%s: collected registers diverge: %s", step, d)
		}
	}

	// First read: no baseline, must arrive as a full snapshot.
	snap, err := cl.ReadSketch()
	if err != nil {
		t.Fatal(err)
	}
	verify("first", snap)
	if st := cl.Stats(); st.FullSnapshots != 1 || st.DeltasApplied != 0 {
		t.Fatalf("first read stats: %+v", st)
	}
	if fb := srv.Stats().Fallbacks["no_baseline"]; fb != 1 {
		t.Fatalf("no_baseline fallbacks = %d, want 1", fb)
	}

	// Change a little, read again: a delta.
	for i := uint64(0); i < 50; i++ {
		eng.Update(k(5000+i), 2)
	}
	snap, err = cl.ReadSketch()
	if err != nil {
		t.Fatal(err)
	}
	verify("delta", snap)
	if st := cl.Stats(); st.DeltasApplied != 1 {
		t.Fatalf("after changed read: %+v", st)
	}

	// No change: the empty delta (generation fast path).
	snap, err = cl.ReadSketch()
	if err != nil {
		t.Fatal(err)
	}
	verify("empty", snap)
	if st := cl.Stats(); st.DeltasApplied != 2 || st.FullSnapshots != 1 {
		t.Fatalf("after unchanged read: %+v", st)
	}

	st := srv.Stats()
	if st.DeltaReads != 3 {
		t.Fatalf("server delta reads = %d, want 3", st.DeltaReads)
	}
	if st.DeltaWireBytes == 0 || st.FullWireBytes == 0 {
		t.Fatalf("wire byte counters not populated: %+v", st)
	}
	if st.DeltaWireBytes >= st.FullWireBytes {
		t.Fatalf("steady-state delta bytes %d not below full bytes %d",
			st.DeltaWireBytes, st.FullWireBytes)
	}
	if st.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", st.Sessions)
	}
}

// TestDeltaProtocolRetransmit pins the two-baseline ack machine at the
// wire level: a response the client never acked must be re-diffed against
// the old acked baseline, not against what the server last sent.
func TestDeltaProtocolRetransmit(t *testing.T) {
	eng := buildEngine(t)
	eng.Update(k(1), 10)
	srv, err := NewServer("127.0.0.1:0", eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck

	exchange := func(hasBaseline bool, ackedGen uint64) *DeltaFrame {
		t.Helper()
		if err := writeFrame(conn, encodeReadDelta(7, hasBaseline, ackedGen)); err != nil {
			t.Fatal(err)
		}
		resp, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := parseResponse(resp)
		if err != nil {
			t.Fatal(err)
		}
		frame, err := DecodeDeltaFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}

	first := exchange(false, 0)
	if !first.Full {
		t.Fatal("first response was not a full snapshot")
	}
	g1 := first.NewGen

	eng.Update(k(2), 20)
	second := exchange(true, g1)
	if second.Full {
		t.Fatal("changed read after ack did not arrive as a delta")
	}
	if second.BaseGen != g1 {
		t.Fatalf("delta base gen %d, want acked %d", second.BaseGen, g1)
	}

	// Pretend the second response was lost: re-ack g1. The server must
	// retransmit a delta against g1 — its sent-candidate (second.NewGen)
	// was never confirmed and must not have been promoted.
	third := exchange(true, g1)
	if third.Full {
		t.Fatalf("retransmission degraded to full (fallbacks: %v)", srv.Stats().Fallbacks)
	}
	if third.BaseGen != g1 {
		t.Fatalf("retransmitted delta base gen %d, want %d", third.BaseGen, g1)
	}
	applied, err := ApplyDelta(first.Snap, third.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if applied.StateCRC() != third.StateCRC {
		t.Fatal("retransmitted delta does not reconstruct the pinned state")
	}

	// Now ack the retransmission: the next delta diffs against it.
	eng.Update(k(3), 30)
	fourth := exchange(true, third.NewGen)
	if fourth.Full || fourth.BaseGen != third.NewGen {
		t.Fatalf("post-promotion read: full=%v base=%d, want delta against %d",
			fourth.Full, fourth.BaseGen, third.NewGen)
	}
}

// TestDeltaProtocolSessionEviction: a session evicted by the LRU cap
// degrades to exactly one full snapshot (gen_mismatch) and then resumes
// deltas.
func TestDeltaProtocolSessionEviction(t *testing.T) {
	eng := buildEngine(t)
	eng.Update(k(1), 5)
	srv, err := NewServerConfig("127.0.0.1:0", eng, ServerConfig{MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	newDeltaClient := func(id uint64) *Client {
		cl, err := NewClient(ClientConfig{Addr: srv.Addr(), Delta: true, SessionID: id})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	a, b := newDeltaClient(1), newDeltaClient(2)
	defer a.Close()
	defer b.Close()

	if _, err := a.ReadSketch(); err != nil { // a: full (no_baseline)
		t.Fatal(err)
	}
	if _, err := b.ReadSketch(); err != nil { // b: full, evicts a
		t.Fatal(err)
	}
	eng.Update(k(2), 5)
	if _, err := a.ReadSketch(); err != nil { // a: evicted → gen_mismatch full
		t.Fatal(err)
	}
	if got := srv.Stats().Fallbacks["gen_mismatch"]; got != 1 {
		t.Fatalf("gen_mismatch fallbacks = %d, want 1 (all: %v)", got, srv.Stats().Fallbacks)
	}
	eng.Update(k(3), 5)
	if _, err := a.ReadSketch(); err != nil { // a: baseline re-seeded → delta
		t.Fatal(err)
	}
	if st := a.Stats(); st.DeltasApplied != 1 || st.FullSnapshots != 2 {
		t.Fatalf("client a stats after eviction cycle: %+v", st)
	}
}

// TestDeltaProtocolInjectedGenerationLoss: InvalidateDeltaState simulates
// a lost ack — the next read declares no baseline and the server's
// fallback counter records it.
func TestDeltaProtocolInjectedGenerationLoss(t *testing.T) {
	eng := buildEngine(t)
	eng.Update(k(1), 5)
	srv, err := NewServer("127.0.0.1:0", eng)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := NewClient(ClientConfig{Addr: srv.Addr(), Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.ReadSketch(); err != nil {
		t.Fatal(err)
	}
	before := srv.Stats().Fallbacks["no_baseline"]
	cl.InvalidateDeltaState()
	snap, err := cl.ReadSketch()
	if err != nil {
		t.Fatal(err)
	}
	if after := srv.Stats().Fallbacks["no_baseline"]; after != before+1 {
		t.Fatalf("no_baseline fallbacks %d → %d, want +1", before, after)
	}
	if st := cl.Stats(); st.FullSnapshots != 2 {
		t.Fatalf("client stats after injected loss: %+v", st)
	}
	want := eng.SnapshotSketch()
	got, err := snap.Restore(hashing.NewBobFamily(42))
	if err != nil {
		t.Fatal(err)
	}
	if d := want.FirstRegisterDiff(got); d != "" {
		t.Fatalf("post-loss snapshot diverges: %s", d)
	}
}

// TestDeltaProtocolV2Downgrade: against a server that predates codec v3
// (rejects the opcode), the client downgrades permanently and keeps
// collecting over v2.
func TestDeltaProtocolV2Downgrade(t *testing.T) {
	payload, err := TakeSnapshot(filledSketch(t)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// A minimal v2-era server: serves OpReadSketch, rejects anything else
	// with the "unknown opcode" error and closes — exactly the legacy
	// serve loop's behavior.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					req, err := readFrame(conn)
					if err != nil {
						return
					}
					if len(req) == 1 && req[0] == OpReadSketch {
						if err := writeFrame(conn, append([]byte{statusOK}, payload...)); err != nil {
							return
						}
						continue
					}
					writeFrame(conn, append([]byte{statusErr}, "unknown opcode 3"...)) //nolint:errcheck
					return
				}
			}(conn)
		}
	}()

	cl, err := NewClient(ClientConfig{Addr: ln.Addr().String(), Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		snap, err := cl.ReadSketch()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if snap == nil {
			t.Fatalf("read %d returned no snapshot", i)
		}
	}
	st := cl.Stats()
	if st.V2Downgrades != 1 {
		t.Fatalf("v2 downgrades = %d, want exactly 1 (the downgrade must stick)", st.V2Downgrades)
	}
	if st.DeltasApplied != 0 || st.FullSnapshots != 0 {
		t.Fatalf("v3 counters moved against a v2 server: %+v", st)
	}
}

// TestClientJoinsAttemptErrors: the satellite errors.Join contract — an
// exhausted retry loop reports every attempt, not just the last.
func TestClientJoinsAttemptErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens: every dial fails
	cl, err := NewClient(ClientConfig{
		Addr:        addr,
		DialTimeout: 200 * time.Millisecond,
		MaxRetries:  2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.ReadSketch()
	if err == nil {
		t.Fatal("read against a dead address succeeded")
	}
	for _, want := range []string{"attempt 1:", "attempt 2:", "attempt 3:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not report %q:\n%v", want, err)
		}
	}
}

// TestServerRejectsConnsOverCap: the satellite MaxConns contract — excess
// connections are counted and closed, not silently stalled.
func TestServerRejectsConnsOverCap(t *testing.T) {
	srv, err := NewServerConfig("127.0.0.1:0", NewLockedSketch(filledSketch(t)), ServerConfig{
		MaxConns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.ReadSketch(); err != nil {
		t.Fatal(err)
	}

	second, err := NewClient(ClientConfig{Addr: srv.Addr(), IOTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if _, err := second.ReadSketch(); err == nil {
		t.Fatal("second connection served beyond MaxConns=1")
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().RejectedConns == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("rejected connection was never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A rejection is not a served connection.
	if st := srv.Stats(); st.Conns != 1 {
		t.Fatalf("served conns = %d, want 1 (rejections must not count)", st.Conns)
	}
}

// TestAggregatorMergeMatchesFlat: a one-aggregator tree over three
// switches re-exports registers bit-identical to a flat merge of the
// three, and ignores resets.
func TestAggregatorMergeMatchesFlat(t *testing.T) {
	fam := hashing.NewBobFamily(42)
	var servers []*Server
	var members []PollerConfig
	var leaves []*core.Sketch
	for i := 0; i < 3; i++ {
		sk := filledSketch(t)
		for j := uint64(0); j < 200; j++ {
			sk.Update(k(uint64(i)*1000+j), j%7+1)
		}
		leaves = append(leaves, sk)
		srv, err := NewServer("127.0.0.1:0", NewLockedSketch(sk))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		members = append(members, PollerConfig{Addr: srv.Addr()})
	}
	agg, err := NewAggregator(AggregatorConfig{
		Members:  members,
		Interval: 20 * time.Millisecond,
		Delta:    true,
		Family:   fam,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Start(); err != nil {
		t.Fatal(err)
	}
	defer agg.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for agg.Stats().MembersReporting < 3 {
		if !time.Now().Before(deadline) {
			t.Fatalf("members reporting = %d after 10s", agg.Stats().MembersReporting)
		}
		time.Sleep(5 * time.Millisecond)
	}

	merged := agg.SnapshotSketch()
	if merged == nil {
		t.Fatal("aggregator exported nil after all members reported")
	}
	flat := leaves[0].Clone()
	for _, sk := range leaves[1:] {
		if err := flat.Merge(sk); err != nil {
			t.Fatal(err)
		}
	}
	if d := flat.FirstRegisterDiff(merged); d != "" {
		t.Fatalf("aggregated merge diverges from flat merge: %s", d)
	}

	agg.ResetSketch()
	if got := agg.Stats().ResetRequests; got != 1 {
		t.Fatalf("reset requests = %d, want 1 (ignored, counted)", got)
	}
	if d := flat.FirstRegisterDiff(agg.SnapshotSketch()); d != "" {
		t.Fatalf("reset mutated the aggregate: %s", d)
	}
}

// TestSchedulerStagger: N pollers sharing one interval get distinct,
// increasing initial delays spread across the interval, and a shared gate.
func TestSchedulerStagger(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewLockedSketch(filledSketch(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	onSnap := func(*Snapshot) {}
	var members []PollerConfig
	for i := 0; i < 8; i++ {
		members = append(members, PollerConfig{Addr: srv.Addr(), OnSnapshot: onSnap})
	}
	interval := 800 * time.Millisecond
	sched, err := NewScheduler(SchedulerConfig{Interval: interval, MaxInFlight: 2, JitterSeed: 7}, members)
	if err != nil {
		t.Fatal(err)
	}
	slot := interval / 8
	var prev time.Duration
	for i, p := range sched.Pollers() {
		d := p.cfg.InitialDelay
		if d <= 0 {
			t.Fatalf("poller %d has no initial delay", i)
		}
		lo, hi := time.Duration(i)*slot, time.Duration(i+2)*slot
		if d <= lo || d > hi {
			t.Errorf("poller %d delay %v outside slot (%v, %v]", i, d, lo, hi)
		}
		if i > 0 && d <= prev {
			t.Errorf("poller %d delay %v not after poller %d's %v", i, d, i-1, prev)
		}
		prev = d
		if p.cfg.Gate != sched.Gate() {
			t.Errorf("poller %d does not share the scheduler gate", i)
		}
	}
}

func TestGate(t *testing.T) {
	g := NewGate(1)
	ctx := t.Context()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 1 {
		t.Fatalf("in flight = %d, want 1", got)
	}
	cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := g.Acquire(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("full gate acquire: %v, want deadline exceeded", err)
	}
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	g.Release()
}
