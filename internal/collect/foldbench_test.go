package collect

import (
	"math/rand"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
)

// fleetSize matches the aggregator fleet scenario (PR 7): one export
// window folds this many member sketches into the aggregate.
const fleetSize = 208

// benchFleet builds fleetSize member sketches of the paper's default
// geometry, each loaded with its own skewed slice of traffic, plus an
// empty accumulator of the same shape.
func benchFleet(b *testing.B) (acc *core.Sketch, members []*core.Sketch) {
	b.Helper()
	cfg := core.Config{K: 8, Trees: 2, LeafWidth: 4096, Widths: []int{8, 16, 32}}
	mk := func() *core.Sketch {
		s, err := core.New(cfg)
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		return s
	}
	acc = mk()
	rng := rand.New(rand.NewSource(99))
	key := make([]byte, 4)
	for m := 0; m < fleetSize; m++ {
		sk := mk()
		for i := 0; i < 2000; i++ {
			k := uint32(rng.ExpFloat64() * 700)
			key[0], key[1], key[2], key[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
			sk.Update(key, 1)
		}
		members = append(members, sk)
	}
	return acc, members
}

// BenchmarkAbsorbFleet is the aggregator's per-window fold: one empty
// accumulator absorbing all fleet members, the shape Aggregator runs on
// every export (aggregator.go). One op = one full 208-member fold.
func BenchmarkAbsorbFleet(b *testing.B) {
	acc, members := benchFleet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		for _, m := range members {
			if err := acc.Merge(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAbsorbFleetScalar is the recorded pre-SWAR baseline the fold
// path is judged against (BENCH_foldpath.json).
func BenchmarkAbsorbFleetScalar(b *testing.B) {
	acc, members := benchFleet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		for _, m := range members {
			if err := acc.MergeScalar(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSnapshots builds a baseline snapshot plus a copy with a small
// fraction of registers changed — the steady-state shape the per-poll
// delta diff sees between scrapes.
func benchSnapshots(b *testing.B) (base, cur *Snapshot) {
	b.Helper()
	sk, err := core.New(core.Config{K: 8, Trees: 2, LeafWidth: 4096, Widths: []int{8, 16, 32}})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	key := make([]byte, 4)
	for i := 0; i < 50000; i++ {
		k := uint32(rng.ExpFloat64() * 700)
		key[0], key[1], key[2], key[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
		sk.Update(key, 1)
	}
	base = TakeSnapshot(sk)
	for i := 0; i < 200; i++ { // ~0.5% of leaves move between polls
		k := rng.Uint32()
		key[0], key[1], key[2], key[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
		sk.Update(key, 1)
	}
	cur = TakeSnapshot(sk)
	return base, cur
}

func BenchmarkDiffSnapshots(b *testing.B) {
	base, cur := benchSnapshots(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := DiffSnapshots(base, cur); !ok {
			b.Fatal("geometry mismatch")
		}
	}
}

func BenchmarkStateCRC(b *testing.B) {
	_, cur := benchSnapshots(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cur.StateCRC()
	}
}

// TestServeEncodeAllocs pins the serve path's encode side alloc-free:
// after the first poll has sized the connection scratch, snapshotting
// into it and encoding the response performs zero allocations. (The
// Source's copy-on-read Clone is outside the pin — handing ownership of
// a fresh copy is the Source contract.)
func TestServeEncodeAllocs(t *testing.T) {
	sk, err := core.New(core.Config{K: 8, Trees: 2, LeafWidth: 512, Widths: []int{8, 16, 32}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	key := make([]byte, 4)
	for i := 0; i < 20000; i++ {
		k := rng.Uint32() % 4096
		key[0], key[1], key[2], key[3] = byte(k), byte(k>>8), byte(k>>16), byte(k>>24)
		sk.Update(key, 1)
	}
	var scr connScratch
	encodeOnce := func() {
		scr.snap = TakeSnapshotInto(scr.snap, sk)
		scr.resp = append(scr.resp[:0], statusOK)
		resp, err := scr.snap.AppendEncode(scr.resp)
		if err != nil {
			t.Fatalf("AppendEncode: %v", err)
		}
		scr.resp = resp
	}
	encodeOnce() // warm-up sizes the scratch
	want, err := TakeSnapshot(sk).Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if string(scr.resp[1:]) != string(want) {
		t.Fatal("scratch encode differs from reference Encode bytes")
	}
	if n := testing.AllocsPerRun(20, encodeOnce); n != 0 {
		t.Fatalf("serve encode allocates %.1f objects/op after warm-up, want 0", n)
	}
}

// TestDeltaAppendEncodeMatchesEncode pins AppendEncode (both frame kinds)
// byte-identical to Encode and alloc-free into a warm buffer.
func TestDeltaAppendEncodeMatchesEncode(t *testing.T) {
	base, cur := func() (*Snapshot, *Snapshot) {
		sk, err := core.New(core.Config{K: 2, Trees: 2, LeafWidth: 64, Widths: []int{4, 8, 16}})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		key := make([]byte, 4)
		for i := 0; i < 5000; i++ {
			key[0], key[1] = byte(i), byte(i>>8)
			sk.Update(key, 1)
		}
		b := TakeSnapshot(sk)
		for i := 0; i < 64; i++ {
			key[0], key[1] = byte(i*3), 0x80
			sk.Update(key, 1)
		}
		return b, TakeSnapshot(sk)
	}()
	blocks, ok := DiffSnapshots(base, cur)
	if !ok {
		t.Fatal("geometry mismatch")
	}
	if len(blocks) == 0 {
		t.Fatal("expected a nonempty delta")
	}
	frames := []*DeltaFrame{
		{BaseGen: 3, NewGen: 4, StateCRC: cur.StateCRC(), Blocks: blocks},
		{Full: true, NewGen: 4, StateCRC: cur.StateCRC(), Snap: cur},
	}
	for fi, f := range frames {
		want, err := f.Encode()
		if err != nil {
			t.Fatalf("frame %d Encode: %v", fi, err)
		}
		buf := make([]byte, 0, len(want))
		got, err := f.AppendEncode(buf)
		if err != nil {
			t.Fatalf("frame %d AppendEncode: %v", fi, err)
		}
		if string(got) != string(want) {
			t.Fatalf("frame %d AppendEncode bytes differ from Encode", fi)
		}
		if n := testing.AllocsPerRun(20, func() {
			if _, err := f.AppendEncode(buf); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Fatalf("frame %d AppendEncode allocates %.1f objects/op into a sized buffer, want 0", fi, n)
		}
	}
}
