package collect

import (
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/engine"
	"github.com/fcmsketch/fcm/internal/faultnet"
	"github.com/fcmsketch/fcm/internal/hashing"
)

// TestFleetTwoLevelConvergence drives a 200+-switch collection tree —
// switches → regional aggregators → one controller — through the full
// failure repertoire the design claims to survive:
//
//   - every switch sits behind a fault injector (corruption, resets,
//     latency, short writes) while the aggregators collect deltas from it;
//   - the controller polls every aggregator with codec v3 sessions and must
//     converge to a merge register-bit-identical to folding all switches
//     flat and serially — the tree must be invisible in the result;
//   - one aggregator suffers a total outage (cable pull + refuse-all); the
//     controller re-homes its members by reading them directly, and the
//     re-homed merge is still bit-identical to the flat one;
//   - the aggregator heals and the tree path converges again over the same
//     delta sessions;
//   - an injected generation loss (client baseline wipe) degrades to a
//     full snapshot — counted, never mis-merged;
//   - across all of it, delta bytes on the controller tier stay strictly
//     below full-snapshot bytes, and nothing leaks a goroutine.
func TestFleetTwoLevelConvergence(t *testing.T) {
	regions, membersPerRegion := 16, 13 // 208 switches
	if testing.Short() {
		regions, membersPerRegion = 4, 4
	}
	switches := regions * membersPerRegion

	baseline := runtime.NumGoroutine()
	// Registered before any server or poller exists, so it runs after all
	// their deferred closes: the whole fleet must unwind cleanly.
	t.Cleanup(func() { checkNoGoroutineLeak(t, baseline) })
	fam := hashing.NewBobFamily(42)
	geometry := core.Config{
		K: 4, Trees: 2, LeafWidth: 64, Widths: []int{8, 16, 32}, Hash: fam,
	}

	// Every switch ingests its slice of one deterministic trace up front,
	// so the fleet state is fixed and the flat reference is exact.
	engines := make([]*engine.Engine, switches)
	for i := range engines {
		eng, err := engine.New(engine.Config{Build: func() (*core.Sketch, error) {
			return core.New(geometry)
		}})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	packets := switches * 150
	for p := 0; p < packets; p++ {
		engines[p%switches].Update(k(uint64(p%1499)), uint64(1+p%5))
	}

	// Flat reference: every switch merged serially, no tree, no network.
	reference := engines[0].SnapshotSketch()
	for _, eng := range engines[1:] {
		if err := reference.Merge(eng.SnapshotSketch()); err != nil {
			t.Fatal(err)
		}
	}

	// Tier 1: every switch serves its registers behind a fault injector
	// with mild-but-real faults.
	memberInjs := make([]*faultnet.Injector, switches)
	memberSrvs := make([]*Server, switches)
	for i := range engines {
		memberInjs[i] = faultnet.New(faultnet.Config{
			Seed:          chaosSeed + int64(i),
			ResetProb:     0.05,
			ResetAfterMax: 4096,
			CorruptProb:   0.05,
			MaxLatency:    time.Millisecond,
			MaxWriteChunk: 64,
		})
		memberSrvs[i] = serveChaos(t, engines[i], memberInjs[i])
		defer memberSrvs[i].Close() //nolint:errcheck // teardown
	}

	// Tier 2: one aggregator per region collects deltas from its members
	// and re-exports the merged region behind its own injector (healthy
	// until we pull its cable).
	aggs := make([]*Aggregator, regions)
	aggInjs := make([]*faultnet.Injector, regions)
	aggSrvs := make([]*Server, regions)
	for r := 0; r < regions; r++ {
		members := make([]PollerConfig, membersPerRegion)
		for m := range members {
			members[m] = PollerConfig{Addr: memberSrvs[r*membersPerRegion+m].Addr()}
		}
		agg, err := NewAggregator(AggregatorConfig{
			Members:     members,
			Interval:    30 * time.Millisecond,
			Timeout:     300 * time.Millisecond,
			Retries:     1,
			Delta:       true,
			MaxInFlight: 4,
			JitterSeed:  int64(r + 1),
			Family:      fam,
		})
		if err != nil {
			t.Fatal(err)
		}
		aggs[r] = agg
		aggInjs[r] = faultnet.New(faultnet.Config{Seed: chaosSeed + 1000 + int64(r)})
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		aggSrvs[r] = Serve(faultnet.Listen(raw, aggInjs[r]), agg, ServerConfig{
			ReadTimeout:  300 * time.Millisecond,
			WriteTimeout: 300 * time.Millisecond,
			IdleTimeout:  5 * time.Second,
		})
		defer aggSrvs[r].Close() //nolint:errcheck // teardown
		if err := agg.Start(); err != nil {
			t.Fatal(err)
		}
		defer agg.Stop()
	}

	// Let every region assemble all of its members before the controller
	// starts reading (free via Stats, no wire cost): the converge loops
	// below then measure the delta protocol's steady state, not the
	// fleet's boot ramp.
	assembleDeadline := time.Now().Add(45 * time.Second)
	for r := 0; r < regions; {
		if aggs[r].Stats().MembersReporting == membersPerRegion {
			r++
			continue
		}
		if time.Now().After(assembleDeadline) {
			t.Fatalf("region %d never assembled: %+v", r, aggs[r].Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Controller: one persistent delta session per aggregator.
	ctrl := make([]*Client, regions)
	for r := range ctrl {
		c, err := NewClient(ClientConfig{
			Addr:        aggSrvs[r].Addr(),
			DialTimeout: 300 * time.Millisecond,
			IOTimeout:   300 * time.Millisecond,
			MaxRetries:  2,
			Delta:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctrl[r] = c
		defer c.Close() //nolint:errcheck // teardown
	}

	// readMerge folds one snapshot read per client into a single sketch;
	// any read or merge error fails the whole round (no partial merges).
	readMerge := func(clients []*Client) (*core.Sketch, error) {
		var merged *core.Sketch
		for _, c := range clients {
			snap, err := c.ReadSketch()
			if err != nil {
				return nil, err
			}
			sk, err := snap.Restore(fam)
			if err != nil {
				return nil, err
			}
			if merged == nil {
				merged = sk
				continue
			}
			if err := merged.Merge(sk); err != nil {
				return nil, err
			}
		}
		return merged, nil
	}

	// converge retries readMerge until the tree's answer is bit-identical
	// to the flat reference.
	converge := func(phase string, clients []*Client, extra []*Client) {
		t.Helper()
		deadline := time.Now().Add(45 * time.Second)
		var lastDiff string
		for time.Now().Before(deadline) {
			merged, err := readMerge(clients)
			if err == nil && extra != nil {
				var more *core.Sketch
				if more, err = readMerge(extra); err == nil {
					err = merged.Merge(more)
				}
			}
			if err != nil {
				lastDiff = err.Error()
				time.Sleep(20 * time.Millisecond)
				continue
			}
			if lastDiff = reference.FirstRegisterDiff(merged); lastDiff == "" {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("%s: tree merge never matched the flat reference: %s", phase, lastDiff)
	}

	// Phase 1: faults active, full tree. The aggregators' staggered delta
	// pollers must still assemble every region, and the controller's merge
	// of 16 regions must equal the flat 208-switch merge bit for bit.
	converge("faulty tree", ctrl, nil)

	// Heal the leaf tier so the remaining phases isolate aggregator faults.
	for _, inj := range memberInjs {
		inj.Heal()
	}

	// Phase 2: total outage of region 0 — refuse new connections and cut
	// the live ones. The controller must see the failure (aggregated across
	// retries), then re-home: poll region 0's switches directly and merge
	// them with the 15 surviving aggregators. Same registers, different
	// collection path.
	aggInjs[0].SetConfig(faultnet.Config{RefuseProb: 1})
	aggInjs[0].Cut()
	if _, err := ctrl[0].ReadSketch(); err == nil {
		t.Fatal("controller read of a cut aggregator succeeded")
	}
	rehomed := make([]*Client, membersPerRegion)
	for m := range rehomed {
		c, err := NewClient(ClientConfig{
			Addr:        aggs[0].MemberAddrs()[m],
			DialTimeout: 300 * time.Millisecond,
			IOTimeout:   300 * time.Millisecond,
			MaxRetries:  2,
			Delta:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rehomed[m] = c
		defer c.Close() //nolint:errcheck // teardown
	}
	converge("re-homed members", ctrl[1:], rehomed)

	// Phase 3: the aggregator heals and the tree path converges again over
	// the controller's existing delta sessions.
	aggInjs[0].Heal()
	converge("healed tree", ctrl, nil)

	// Phase 4: injected generation loss. Wiping one controller client's
	// baseline forces its next request to admit it has none; the server
	// must degrade to a full snapshot and count why.
	before := aggSrvs[1].Stats().Fallbacks["no_baseline"]
	ctrl[1].InvalidateDeltaState()
	if _, err := ctrl[1].ReadSketch(); err != nil {
		t.Fatalf("read after baseline invalidation: %v", err)
	}
	if after := aggSrvs[1].Stats().Fallbacks["no_baseline"]; after <= before {
		t.Fatalf("generation loss not counted: no_baseline %d -> %d", before, after)
	}
	converge("after generation loss", ctrl, nil)

	// The bandwidth ledger: on this steady workload the controller tier
	// must have served real delta traffic, and spent strictly fewer bytes
	// on deltas than on full snapshots.
	var deltaBytes, fullBytes, deltaReads uint64
	for r, srv := range aggSrvs {
		st := srv.Stats()
		deltaBytes += st.DeltaWireBytes
		fullBytes += st.FullWireBytes
		deltaReads += st.DeltaReads
		if st.DeltaReads == 0 {
			t.Errorf("aggregator %d served no v3 reads", r)
		}
	}
	if deltaReads == 0 || deltaBytes == 0 {
		t.Fatal("controller tier never used the delta path")
	}
	if deltaBytes >= fullBytes {
		t.Fatalf("delta bytes (%d) not below full-snapshot bytes (%d)", deltaBytes, fullBytes)
	}
	t.Logf("fleet: %d switches, %d regions; controller tier wire bytes: delta=%d full=%d (%.1f%%)",
		switches, regions, deltaBytes, fullBytes, 100*float64(deltaBytes)/float64(fullBytes))
}
