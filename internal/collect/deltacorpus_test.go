package collect

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var updateDeltaCorpus = flag.Bool("update-delta-corpus", false,
	"rewrite the checked-in FuzzDeltaFrame seed corpus")

// deltaFrameSeeds is the deterministic seed set for FuzzDeltaFrame: the
// three pinned golden vectors plus one representative of each fault class
// the protocol must degrade through — truncation, bit flips in the header
// and body, a lying body length, an absurd block count, a version from the
// future, and the empty input.
func deltaFrameSeeds() [][]byte {
	mustHex := func(s string) []byte {
		b, err := hex.DecodeString(s)
		if err != nil {
			panic(err)
		}
		return b
	}
	empty := mustHex(goldenEmptyDeltaHex)
	delta := mustHex(goldenDeltaHex)
	full := mustHex(goldenFullDeltaHex)

	flip := func(src []byte, i int, mask byte) []byte {
		out := append([]byte(nil), src...)
		out[i] ^= mask
		return out
	}

	return [][]byte{
		empty,
		delta,
		full,
		nil,                                // empty input
		delta[:deltaHeaderLen],             // header only, no body or trailer
		delta[:len(delta)-1],               // trailer truncated
		flip(empty, 4, 0x01),               // version byte: 3 -> 2
		flip(empty, 4, 0x07),               // version byte: 3 -> 4 (future)
		flip(delta, 5, 0x01),               // flags: delta claims to be full
		flip(delta, deltaHeaderLen, 0x80),  // block count goes enormous
		flip(delta, 24, 0x01),              // stateCRC corrupted
		flip(delta, 28, 0x01),              // bodyLen lies by one
		flip(full, deltaHeaderLen+2, 0x01), // embedded v2 version corrupted
		flip(full, len(full)-2, 0xff),      // frame trailer corrupted
	}
}

// TestDeltaSeedCorpus pins the checked-in seed corpus for FuzzDeltaFrame
// to deltaFrameSeeds(), so the regression set that CI fuzzes from is the
// one this file describes. Regenerate with
//
//	go test ./internal/collect/ -run TestDeltaSeedCorpus -update-delta-corpus
func TestDeltaSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDeltaFrame")
	seeds := deltaFrameSeeds()

	if *updateDeltaCorpus {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, deltaCorpusEntry(seed), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d corpus entries in %s", len(seeds), dir)
		return
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (run with -update-delta-corpus): %v", err)
	}
	if len(entries) != len(seeds) {
		t.Fatalf("corpus has %d entries, seeds define %d: rerun with -update-delta-corpus",
			len(entries), len(seeds))
	}
	for i, seed := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("corpus entry missing: %v", err)
		}
		if !bytes.Equal(got, deltaCorpusEntry(seed)) {
			t.Fatalf("%s is stale: rerun with -update-delta-corpus", name)
		}
	}
}

// deltaCorpusEntry renders one seed in the go fuzz corpus file format.
func deltaCorpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}
