package collect

import (
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
)

// FuzzDecodeSnapshot checks the codec never panics or over-allocates on
// malformed snapshots, and that valid snapshots survive re-encoding.
func FuzzDecodeSnapshot(f *testing.F) {
	s, err := core.New(core.Config{K: 2, Trees: 1, LeafWidth: 8, Widths: []int{4, 8}})
	if err != nil {
		f.Fatal(err)
	}
	s.Update([]byte{1, 2, 3, 4}, 77)
	good, err := TakeSnapshot(s).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:8])

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := snap.Encode()
		if err != nil {
			// Decoded geometry can be unencodable only if decode let
			// something invalid through.
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		again, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if again.K != snap.K || again.Trees != snap.Trees || again.W1 != snap.W1 {
			t.Fatal("snapshot geometry changed across round trip")
		}
	})
}
