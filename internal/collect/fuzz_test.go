package collect

import (
	"bytes"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
)

// FuzzDecodeSnapshot checks the codec never panics or over-allocates on
// malformed snapshots, and that valid snapshots survive re-encoding.
func FuzzDecodeSnapshot(f *testing.F) {
	s, err := core.New(core.Config{K: 2, Trees: 1, LeafWidth: 8, Widths: []int{4, 8}})
	if err != nil {
		f.Fatal(err)
	}
	s.Update([]byte{1, 2, 3, 4}, 77)
	good, err := TakeSnapshot(s).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:8])

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := snap.Encode()
		if err != nil {
			// Decoded geometry can be unencodable only if decode let
			// something invalid through.
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		again, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if again.K != snap.K || again.Trees != snap.Trees || again.W1 != snap.W1 {
			t.Fatal("snapshot geometry changed across round trip")
		}
	})
}

// frame builds one length-prefixed frame around payload.
func frame(payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzWireFrame fuzzes the framed wire protocol end-to-end as the client
// consumes it: readFrame over a raw byte stream, status parsing, then
// snapshot decoding. None of the layers may panic, and a lying length
// prefix must not translate into a proportional allocation (readFrame
// grows its buffer chunk-by-chunk as bytes actually arrive).
//
// The seed corpus is the regression set for the fault classes the chaos
// harness injects: truncated frames, oversized length prefixes, length
// prefixes past the stream end, corrupt status bytes, and bit-flipped
// snapshot payloads (which the CRC-32C trailer must reject).
func FuzzWireFrame(f *testing.F) {
	s, err := core.New(core.Config{K: 2, Trees: 1, LeafWidth: 8, Widths: []int{4, 8}})
	if err != nil {
		f.Fatal(err)
	}
	s.Update([]byte{9, 9, 9, 9}, 123)
	encoded, err := TakeSnapshot(s).Encode()
	if err != nil {
		f.Fatal(err)
	}
	good := frame(append([]byte{statusOK}, encoded...))

	f.Add(good)                                        // well-formed response
	f.Add(good[:6])                                    // truncated mid-frame
	f.Add(good[:4])                                    // header only
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})     // length prefix over maxFrame
	f.Add([]byte{0x0f, 0xff, 0xff, 0xff, 0, 0})        // huge-but-legal prefix, no body
	f.Add(frame(nil))                                  // empty response payload
	f.Add(frame([]byte{0x07, 1, 2, 3}))                // corrupt status byte
	f.Add(frame(append([]byte{statusErr}, "boom"...))) // server error
	corrupt := append([]byte{}, good...)
	corrupt[len(corrupt)/2] ^= 0x10 // bit flip mid-snapshot: CRC must catch
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, stream []byte) {
		fr, err := readFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		payload, err := parseResponse(fr)
		if err != nil {
			return
		}
		snap, err := DecodeSnapshot(payload)
		if err != nil {
			return
		}
		// Anything that survived all three layers must round-trip.
		re, err := snap.Encode()
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		if _, err := DecodeSnapshot(re); err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
	})
}
