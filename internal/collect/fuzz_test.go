package collect

import (
	"bytes"
	"testing"

	"github.com/fcmsketch/fcm/internal/core"
)

// FuzzDeltaFrame fuzzes the codec v3 frame as the client consumes it:
// decode, then the client's apply gate against a fixed baseline. The
// invariant is the protocol's core promise — every mutation either decodes
// to a frame whose application reproduces exactly the state its CRC pins,
// or is rejected (which in the protocol means falling back to a full
// snapshot). There is no third outcome: a wrong merge would require a
// frame that passes the frame CRC, applies cleanly, and matches the state
// CRC while encoding different registers — which is what the two CRCs
// exist to rule out.
func FuzzDeltaFrame(f *testing.F) {
	for _, seed := range deltaFrameSeeds() {
		f.Add(seed)
	}
	base := baselineForFuzz()
	baseCRC := base.StateCRC()

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeDeltaFrame(data)
		if err != nil {
			return // rejected: the client falls back to a full snapshot
		}
		// Anything that decoded must round-trip.
		re, err := frame.Encode()
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		again, err := DecodeDeltaFrame(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if again.Full != frame.Full || again.BaseGen != frame.BaseGen ||
			again.NewGen != frame.NewGen || again.StateCRC != frame.StateCRC {
			t.Fatal("frame header changed across round trip")
		}
		if frame.Full {
			// DecodeDeltaFrame already verified the embedded snapshot's own
			// CRC and cross-checked it against the header's state CRC.
			if frame.Snap.StateCRC() != frame.StateCRC {
				t.Fatal("full frame state CRC inconsistent after decode")
			}
			return
		}
		// The client's apply gate: apply to the fixed baseline, accept only
		// if the post-state CRC matches the frame's pin.
		next, err := ApplyDelta(base, frame.Blocks)
		if err != nil {
			return // out-of-range block: fallback, never a wrong merge
		}
		if base.StateCRC() != baseCRC {
			t.Fatal("ApplyDelta mutated the baseline")
		}
		if next.StateCRC() != frame.StateCRC {
			return // state mismatch: fallback, never a wrong merge
		}
		// Accepted. The only remaining obligation is determinism: the same
		// frame against the same baseline reconstructs the same registers.
		next2, err := ApplyDelta(base, frame.Blocks)
		if err != nil || next2.StateCRC() != next.StateCRC() {
			t.Fatal("delta application is not deterministic")
		}
	})
}

// baselineForFuzz is the fixed apply baseline: the pre-update golden
// sketch (small enough to diff exhaustively, saturated enough to carry
// marker values).
func baselineForFuzz() *Snapshot {
	s, err := core.New(core.Config{K: 2, Trees: 1, Widths: []int{2, 4}, LeafWidth: 4})
	if err != nil {
		panic(err)
	}
	for f := uint32(0); f < 6; f++ {
		key := []byte{byte(f >> 24), byte(f >> 16), byte(f >> 8), byte(f)}
		s.Update(key, uint64(f)+1)
	}
	return TakeSnapshot(s)
}

// FuzzDecodeSnapshot checks the codec never panics or over-allocates on
// malformed snapshots, and that valid snapshots survive re-encoding.
func FuzzDecodeSnapshot(f *testing.F) {
	s, err := core.New(core.Config{K: 2, Trees: 1, LeafWidth: 8, Widths: []int{4, 8}})
	if err != nil {
		f.Fatal(err)
	}
	s.Update([]byte{1, 2, 3, 4}, 77)
	good, err := TakeSnapshot(s).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:8])

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := snap.Encode()
		if err != nil {
			// Decoded geometry can be unencodable only if decode let
			// something invalid through.
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		again, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if again.K != snap.K || again.Trees != snap.Trees || again.W1 != snap.W1 {
			t.Fatal("snapshot geometry changed across round trip")
		}
	})
}

// frame builds one length-prefixed frame around payload.
func frame(payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzWireFrame fuzzes the framed wire protocol end-to-end as the client
// consumes it: readFrame over a raw byte stream, status parsing, then
// snapshot decoding. None of the layers may panic, and a lying length
// prefix must not translate into a proportional allocation (readFrame
// grows its buffer chunk-by-chunk as bytes actually arrive).
//
// The seed corpus is the regression set for the fault classes the chaos
// harness injects: truncated frames, oversized length prefixes, length
// prefixes past the stream end, corrupt status bytes, and bit-flipped
// snapshot payloads (which the CRC-32C trailer must reject).
func FuzzWireFrame(f *testing.F) {
	s, err := core.New(core.Config{K: 2, Trees: 1, LeafWidth: 8, Widths: []int{4, 8}})
	if err != nil {
		f.Fatal(err)
	}
	s.Update([]byte{9, 9, 9, 9}, 123)
	encoded, err := TakeSnapshot(s).Encode()
	if err != nil {
		f.Fatal(err)
	}
	good := frame(append([]byte{statusOK}, encoded...))

	f.Add(good)                                        // well-formed response
	f.Add(good[:6])                                    // truncated mid-frame
	f.Add(good[:4])                                    // header only
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})     // length prefix over maxFrame
	f.Add([]byte{0x0f, 0xff, 0xff, 0xff, 0, 0})        // huge-but-legal prefix, no body
	f.Add(frame(nil))                                  // empty response payload
	f.Add(frame([]byte{0x07, 1, 2, 3}))                // corrupt status byte
	f.Add(frame(append([]byte{statusErr}, "boom"...))) // server error
	corrupt := append([]byte{}, good...)
	corrupt[len(corrupt)/2] ^= 0x10 // bit flip mid-snapshot: CRC must catch
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, stream []byte) {
		fr, err := readFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		payload, err := parseResponse(fr)
		if err != nil {
			return
		}
		snap, err := DecodeSnapshot(payload)
		if err != nil {
			return
		}
		// Anything that survived all three layers must round-trip.
		re, err := snap.Encode()
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		if _, err := DecodeSnapshot(re); err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
	})
}
