package collect

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"hash/crc32"
	"testing"
)

// goldenWindowMeta is the fixed temporal metadata the window-frame golden
// vector was produced with: a level-1 bucket spanning windows 3..4 of a
// five-second interval, 21 packets (the golden sketch's total count).
var goldenWindowMeta = WindowMeta{
	Level:           1,
	Span:            2,
	FirstGeneration: 3,
	Generation:      4,
	MinTimeUnixNano: 1_700_000_000_000_000_000,
	MaxTimeUnixNano: 1_700_000_005_000_000_000,
	Packets:         21,
}

// goldenWindowHex is the exact FCMW v1 encoding of goldenWindowMeta over
// goldenSketch's snapshot, outer CRC-32C trailer included. It pins the
// window frame wire format: any change that alters these bytes breaks
// decoding for every deployed collector and must bump windowVersion
// instead of silently shifting the layout.
//
// Layout (big-endian): magic "FCMW", version 1, level 1, reserved 0,
// span 2, firstGen 3, gen 4, minTime/maxTime unix-nanos, packets 21,
// bodyLen, the v2 snapshot body verbatim, then the outer CRC-32C.
const goldenWindowHex = "46434d5701010000000000020000000000000003000000000000000417979cfe362a000017979cff602ff2000000000000000015000000364643" +
	"4d5302010200000000020000000402040000000400000003000000030000000300000002000000020000000b00000002df55663b" +
	"732f8441"

func TestGoldenWindowFrameEncoding(t *testing.T) {
	want, err := hex.DecodeString(goldenWindowHex)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EncodeWindow(goldenWindowMeta, TakeSnapshot(goldenSketch(t)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("window frame encoding drifted from the pinned golden vector:\n got %x\nwant %x", got, want)
	}
	// The outer trailer must be CRC-32C of everything before it — pinned
	// explicitly so the integrity check can't silently become a no-op.
	payload, trailer := got[:len(got)-4], got[len(got)-4:]
	if sum := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)); binary.BigEndian.Uint32(trailer) != sum {
		t.Fatalf("trailer 0x%x is not the CRC-32C of the payload (0x%08x)", trailer, sum)
	}
}

// TestGoldenWindowFrameEmbedsPlainSnapshot pins the body-identity claim:
// the sketch bytes inside a window frame are the plain v2 snapshot
// encoding, byte-for-byte — the temporal layer rides along without
// forking the register wire format.
func TestGoldenWindowFrameEmbedsPlainSnapshot(t *testing.T) {
	frame, err := hex.DecodeString(goldenWindowHex)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := hex.DecodeString(goldenSnapshotHex)
	if err != nil {
		t.Fatal(err)
	}
	body := frame[windowHeaderLen : len(frame)-4]
	if !bytes.Equal(body, plain) {
		t.Fatalf("embedded body is not the plain v2 snapshot:\n got %x\nwant %x", body, plain)
	}
}

func TestGoldenWindowFrameDecodes(t *testing.T) {
	data, _ := hex.DecodeString(goldenWindowHex)
	meta, snap, err := DecodeWindow(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta != goldenWindowMeta {
		t.Fatalf("decoded meta %+v drifted from %+v", meta, goldenWindowMeta)
	}
	if snap.K != 2 || snap.Trees != 1 || snap.W1 != 4 || len(snap.Widths) != 2 {
		t.Fatalf("decoded geometry %+v drifted", snap)
	}
	reenc, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := hex.DecodeString(goldenSnapshotHex); !bytes.Equal(reenc, want) {
		t.Fatalf("decoded body does not round-trip to the plain snapshot:\n got %x\nwant %x", reenc, want)
	}
}

// TestGoldenWindowFrameRejectsEveryBitFlip: the outer CRC must catch a
// flip at any byte position — temporal metadata, embedded body (whose
// inner CRC alone would miss metadata corruption) and the trailer itself.
func TestGoldenWindowFrameRejectsEveryBitFlip(t *testing.T) {
	data, _ := hex.DecodeString(goldenWindowHex)
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x10
		if _, _, err := DecodeWindow(corrupt); err == nil {
			t.Fatalf("decode accepted a bit flip at byte %d", i)
		}
	}
}

// TestWindowFrameRejectsBadMeta pins the encoder-side validation: a zero
// span or an inverted generation range must be refused before any bytes
// are produced, and the decoder must refuse the same shapes even with a
// valid CRC.
func TestWindowFrameRejectsBadMeta(t *testing.T) {
	snap := TakeSnapshot(goldenSketch(t))
	if _, err := EncodeWindow(WindowMeta{Span: 0, FirstGeneration: 1, Generation: 1}, snap); err == nil {
		t.Fatal("encoder accepted a zero span")
	}
	if _, err := EncodeWindow(WindowMeta{Span: 1, FirstGeneration: 5, Generation: 4}, snap); err == nil {
		t.Fatal("encoder accepted inverted generations")
	}
}
