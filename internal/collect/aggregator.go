package collect

import (
	"context"
	"fmt"
	"log/slog"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/insight"
	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
)

// Aggregator is the middle tier of a collection tree: it polls a region of
// switches (through its own staggered Scheduler), keeps each member's
// latest restored sketch, and re-exports the exact merge of the region as
// a collect Source — so a controller polls one aggregator instead of N
// switches, and an aggregator's own server can in turn serve deltas of the
// merged state.
//
// The tree is lossless because FCM merge is exact, commutative and
// associative (difftest proves all three): merging per-switch sketches at
// an aggregator and merging aggregator outputs at the controller is
// bit-identical to merging every switch flat, in any order. That is the
// whole failure model — when an aggregator dies, the controller can poll
// its members directly (or re-home them to another aggregator) and the
// final registers cannot change, only the collection path does.
type Aggregator struct {
	cfg   AggregatorConfig
	sched *Scheduler
	log   *slog.Logger

	mu      sync.Mutex
	latest  map[string]*core.Sketch // member addr → last restored sketch (immutable)
	gen     uint64                  // bumped per stored member snapshot
	pending []*core.Sketch          // snapshots awaiting DrainRound (TrackRounds only)

	memberSnaps   atomic.Uint64
	merges        atomic.Uint64
	resetRequests atomic.Uint64

	// Accuracy introspection: one analyzer per member (fed on every
	// absorbed snapshot, so each member's trend history is per-window)
	// plus one for the merged region, re-observed behind a 1s TTL.
	insightMu     sync.Mutex
	memberInsight map[string]*insight.Analyzer
	regionInsight *insight.Analyzer
	regionAt      time.Time
	regionLast    *insight.Report
}

// AggregatorConfig configures an Aggregator.
type AggregatorConfig struct {
	// Members are the region's switches: one PollerConfig per switch with
	// at least Addr set. Interval, stagger, gate, logger and the snapshot
	// callback are filled in by the aggregator (a member's own OnSnapshot,
	// if set, is chained after the aggregator's).
	Members []PollerConfig
	// Interval is the member collection period (required unless every
	// member sets its own).
	Interval time.Duration
	// Timeout, Retries and Delta apply to members that leave them zero;
	// Delta makes member collection itself use codec v3.
	Timeout time.Duration
	Retries int
	Delta   bool
	// MaxInFlight bounds concurrent member collections (default 8).
	MaxInFlight int
	// JitterSeed decorrelates the member stagger; 0 means 1.
	JitterSeed int64
	// TrackRounds retains every absorbed member snapshot until the next
	// DrainRound call, for windowed aggregation over reset-mode members
	// (each snapshot is one interval's traffic, so each must be counted
	// exactly once). When false, DrainRound always returns nil.
	TrackRounds bool
	// Family, when set, restores member sketches with the data plane's
	// hash family so the merged sketch answers count queries locally. nil
	// restores control-plane-only sketches (registers still merge and
	// serve exactly).
	Family hashing.Family
	// OnMemberState observes member health transitions with the member's
	// address — the hook a controller uses to detect dead members and
	// re-home them. Called from collection goroutines.
	OnMemberState func(addr string, from, to State)
	// Logger receives structured records; nil discards them.
	Logger *slog.Logger
	// Tracer, when non-nil, is handed to every member poller (that does
	// not carry its own) so each member poll records one flight-recorder
	// trace whose spans run gate wait → client attempts → decode →
	// delta apply → aggregator absorb.
	Tracer *tracing.Recorder
}

// NewAggregator builds (but does not start) an aggregator.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("collect: aggregator needs at least one member")
	}
	a := &Aggregator{
		cfg:           cfg,
		latest:        make(map[string]*core.Sketch, len(cfg.Members)),
		log:           telemetry.OrNop(cfg.Logger),
		memberInsight: make(map[string]*insight.Analyzer, len(cfg.Members)),
		regionInsight: insight.NewAnalyzer(insight.Config{}),
	}
	members := make([]PollerConfig, len(cfg.Members))
	for i := range cfg.Members {
		m := cfg.Members[i]
		if m.Addr == "" {
			return nil, fmt.Errorf("collect: aggregator member %d has no address", i)
		}
		if m.Timeout <= 0 {
			m.Timeout = cfg.Timeout
		}
		if m.Retries == 0 {
			m.Retries = cfg.Retries
		}
		if !m.Delta {
			m.Delta = cfg.Delta
		}
		if m.Tracer == nil {
			m.Tracer = cfg.Tracer
		}
		addr := m.Addr
		chained := m.OnSnapshot
		m.OnSnapshot = nil
		m.onSnapshotCtx = func(ctx context.Context, snap *Snapshot) {
			a.absorb(ctx, addr, snap)
			if chained != nil {
				chained(snap)
			}
		}
		chainedState := m.OnStateChange
		m.OnStateChange = func(from, to State) {
			if cfg.OnMemberState != nil {
				cfg.OnMemberState(addr, from, to)
			}
			if chainedState != nil {
				chainedState(from, to)
			}
		}
		members[i] = m
	}
	sched, err := NewScheduler(SchedulerConfig{
		Interval:    cfg.Interval,
		MaxInFlight: cfg.MaxInFlight,
		JitterSeed:  cfg.JitterSeed,
		Logger:      cfg.Logger,
	}, members)
	if err != nil {
		return nil, err
	}
	a.sched = sched
	return a, nil
}

// Start launches the member collection loops.
func (a *Aggregator) Start() error { return a.sched.Start() }

// Stop halts member collection. The last merged state stays serveable.
func (a *Aggregator) Stop() { a.sched.Stop() }

// Scheduler exposes the member scheduler (per-member poller stats and
// health).
func (a *Aggregator) Scheduler() *Scheduler { return a.sched }

// MemberAddrs lists the member switch addresses (re-homing needs them).
func (a *Aggregator) MemberAddrs() []string {
	addrs := make([]string, 0, len(a.cfg.Members))
	for i := range a.cfg.Members {
		addrs = append(addrs, a.cfg.Members[i].Addr)
	}
	return addrs
}

// absorb folds one member snapshot in, as a span of the member's poll
// trace when the poller carries one.
func (a *Aggregator) absorb(ctx context.Context, addr string, snap *Snapshot) {
	sp := tracing.FromContext(ctx).StartSpan("aggregator.absorb")
	sp.Annotate("member", addr)
	if err := a.storeMember(addr, snap); err != nil {
		sp.Fail(err)
	}
	sp.End()
}

// storeMember installs a member's freshest sketch. The restored sketch is
// stored as an immutable value — SnapshotSketchGen merges from these
// references outside the lock, so a stored sketch is never mutated.
func (a *Aggregator) storeMember(addr string, snap *Snapshot) error {
	sk, err := snap.Restore(a.cfg.Family)
	if err != nil {
		a.log.Warn("aggregator dropped unrestorable member snapshot",
			"member", addr, "err", err)
		return err
	}
	a.mu.Lock()
	a.latest[addr] = sk
	a.gen++
	if a.cfg.TrackRounds {
		a.pending = append(a.pending, sk)
	}
	a.mu.Unlock()
	a.memberSnaps.Add(1)
	a.noteMemberInsight(addr, sk)
	return nil
}

// noteMemberInsight feeds the member's accuracy analyzer. The restored
// sketch is immutable and already in memory, so the register scan is the
// only cost — once per member per window, the same order as the restore
// itself.
func (a *Aggregator) noteMemberInsight(addr string, sk *core.Sketch) {
	a.insightMu.Lock()
	an := a.memberInsight[addr]
	if an == nil {
		an = insight.NewAnalyzer(insight.Config{})
		a.memberInsight[addr] = an
	}
	a.insightMu.Unlock()
	an.ObserveSketch(sk)
}

// InsightReport assembles the fleet accuracy rollup: every member's
// latest per-window self-report plus the merged region's, the /debug/
// insight payload of fcmagg. The region merge is rate-limited to once
// per second; between observations the cached report is served.
func (a *Aggregator) InsightReport() insight.FleetReport {
	fr := insight.FleetReport{Members: map[string]insight.Report{}}
	a.insightMu.Lock()
	for addr, an := range a.memberInsight {
		if rep, ok := an.Last(); ok {
			fr.Members[addr] = rep
		}
	}
	refresh := time.Since(a.regionAt) >= time.Second
	if !refresh && a.regionLast != nil {
		rep := *a.regionLast
		fr.Region = &rep
	}
	a.insightMu.Unlock()
	if refresh {
		if sk := a.SnapshotSketch(); sk != nil {
			rep := a.regionInsight.ObserveSketch(sk)
			a.insightMu.Lock()
			a.regionAt, a.regionLast = time.Now(), &rep
			a.insightMu.Unlock()
			fr.Region = &rep
		}
	}
	return fr
}

// SnapshotSketchGen implements GenerationalSource: the exact merge of
// every member's latest sketch, stamped with a generation that advances
// whenever any member contributes a new snapshot — equal generations mean
// the same member sketches, hence bit-identical merges. Returns nil before
// the first member snapshot arrives (the server answers an error status
// and the controller retries).
func (a *Aggregator) SnapshotSketchGen() (*core.Sketch, uint64) {
	a.mu.Lock()
	gen := a.gen
	refs := make([]*core.Sketch, 0, len(a.latest))
	for _, sk := range a.latest {
		refs = append(refs, sk)
	}
	a.mu.Unlock()
	if len(refs) == 0 {
		return nil, 0
	}
	// Merge outside the lock: member updates keep landing while we fold.
	// Map order is arbitrary but irrelevant — FCM merge is commutative and
	// associative, so any order yields the same registers. The fold runs
	// under pprof labels so profiles attribute region-merge CPU.
	var merged *core.Sketch
	pprof.Do(context.Background(), pprof.Labels("subsystem", "aggregator", "op", "fold"),
		func(context.Context) {
			merged = refs[0].Clone()
			for _, sk := range refs[1:] {
				if err := merged.Merge(sk); err != nil {
					// Geometry drift between members (mid-reconfiguration):
					// serve nothing rather than a partial region.
					a.log.Warn("aggregator member geometry mismatch, merge aborted", "err", err)
					merged = nil
					return
				}
			}
		})
	if merged == nil {
		return nil, 0
	}
	a.merges.Add(1)
	return merged, gen
}

// DrainRound returns the exact merge of every member snapshot absorbed
// since the previous drain, or nil when none arrived. Each snapshot joins
// exactly one drained round — unlike SnapshotSketchGen, which re-merges
// every member's latest sketch, a member that misses a poll contributes
// nothing rather than its previous (already drained) snapshot again. That
// exactly-once property is what lets a windowed ring file drained rounds
// as disjoint traffic intervals without double counting.
//
// Requires AggregatorConfig.TrackRounds (otherwise nothing is retained and
// DrainRound returns nil). If the pending snapshots' geometries drifted
// mid-reconfiguration the whole batch is dropped with a warning: counts
// across a reconfiguration are not comparable anyway, and a partial merge
// would silently misattribute the round.
func (a *Aggregator) DrainRound() *core.Sketch {
	a.mu.Lock()
	refs := a.pending
	a.pending = nil
	a.mu.Unlock()
	if len(refs) == 0 {
		return nil
	}
	var merged *core.Sketch
	pprof.Do(context.Background(), pprof.Labels("subsystem", "aggregator", "op", "drain"),
		func(context.Context) {
			merged = refs[0].Clone()
			for _, sk := range refs[1:] {
				if err := merged.Merge(sk); err != nil {
					a.log.Warn("aggregator dropped round: member geometry drift", "err", err)
					merged = nil
					return
				}
			}
		})
	if merged != nil {
		a.merges.Add(1)
	}
	return merged
}

// SnapshotSketch implements Source.
func (a *Aggregator) SnapshotSketch() *core.Sketch {
	sk, _ := a.SnapshotSketchGen()
	return sk
}

// ResetSketch implements Source — as a logged no-op. Forwarding a reset to
// N members is non-idempotent and partial failures would silently split
// the window; rotation in a collection tree is leaf-driven (the pollers'
// Reset flag rotates each switch after a successful read).
func (a *Aggregator) ResetSketch() {
	a.resetRequests.Add(1)
	a.log.Warn("aggregator ignoring reset request: rotation is leaf-driven")
}

// AggregatorStats describe the aggregation tier.
type AggregatorStats struct {
	// Members is the configured member count; MembersReporting is how
	// many have contributed at least one snapshot.
	Members          int
	MembersReporting int
	// MemberSnapshots counts snapshots folded in from members.
	MemberSnapshots uint64
	// Merges counts merged exports served.
	Merges uint64
	// ResetRequests counts ignored reset requests.
	ResetRequests uint64
	// Generation is the current aggregation generation.
	Generation uint64
}

// Stats returns the aggregator's counters.
func (a *Aggregator) Stats() AggregatorStats {
	a.mu.Lock()
	reporting, gen := len(a.latest), a.gen
	a.mu.Unlock()
	return AggregatorStats{
		Members:          len(a.cfg.Members),
		MembersReporting: reporting,
		MemberSnapshots:  a.memberSnaps.Load(),
		Merges:           a.merges.Load(),
		ResetRequests:    a.resetRequests.Load(),
		Generation:       gen,
	}
}

// Instrument registers the aggregator's series.
func (a *Aggregator) Instrument(reg *telemetry.Registry, labels string) {
	bind := statBinder{reg: reg, labels: labels}
	bind.gauge("fcm_aggregator_members",
		"Switches configured under this aggregator.",
		func() float64 { return float64(a.Stats().Members) })
	bind.gauge("fcm_aggregator_members_reporting",
		"Members that have contributed at least one snapshot.",
		func() float64 { return float64(a.Stats().MembersReporting) })
	bind.counter("fcm_aggregator_member_snapshots_total",
		"Member snapshots folded into the aggregate.",
		func() float64 { return float64(a.Stats().MemberSnapshots) })
	bind.counter("fcm_aggregator_merges_total",
		"Merged region exports served.",
		func() float64 { return float64(a.Stats().Merges) })
	bind.counter("fcm_aggregator_reset_requests_total",
		"Reset requests ignored (rotation is leaf-driven).",
		func() float64 { return float64(a.Stats().ResetRequests) })
	a.sched.Instrument(reg, labels)
}
