package collect

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
)

// TestFleetPollTraceCoverage: with the flight recorder enabled, one
// member poll through an aggregator produces a single trace whose spans
// cover the whole collection path — gate wait, client attempt, frame
// decode, delta apply, aggregator absorb, and window delivery — so an
// operator can explain any one window end to end from /debug/traces.
func TestFleetPollTraceCoverage(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewLockedSketch(filledSketch(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := tracing.NewRecorder(tracing.RecorderConfig{})
	var windows atomic.Int64
	agg, err := NewAggregator(AggregatorConfig{
		Members: []PollerConfig{{
			Addr:       srv.Addr(),
			OnSnapshot: func(*Snapshot) { windows.Add(1) },
		}},
		Interval: 20 * time.Millisecond,
		Delta:    true,
		Tracer:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for windows.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	agg.Stop()
	if windows.Load() < 3 {
		t.Fatalf("only %d windows collected before the deadline", windows.Load())
	}

	want := []string{"gate.wait", "client.attempt", "decode", "delta.apply", "aggregator.absorb", "deliver"}
	var covered *tracing.ExportedTrace
	traces := rec.Traces()
	for i := range traces {
		tr := &traces[i]
		if tr.Name != "poll" {
			continue
		}
		have := map[string]bool{}
		for _, sp := range tr.Spans {
			have[sp.Name] = true
		}
		all := true
		for _, w := range want {
			if !have[w] {
				all = false
			}
		}
		if all {
			covered = tr
			break
		}
	}
	if covered == nil {
		var seen []string
		for _, tr := range traces {
			names := make([]string, 0, len(tr.Spans))
			for _, sp := range tr.Spans {
				names = append(names, sp.Name)
			}
			seen = append(seen, tr.Name+"["+strings.Join(names, ",")+"]")
		}
		t.Fatalf("no poll trace covers %v; retained: %s", want, strings.Join(seen, " "))
	}

	// The root span carries the member address, and the delta apply span
	// says whether the frame was a full snapshot or a true delta — the
	// fallback-visibility half of the tentpole.
	if got := covered.Spans[0].Attrs["addr"]; got != srv.Addr() {
		t.Errorf("poll trace addr = %q, want %q", got, srv.Addr())
	}
	for _, sp := range covered.Spans {
		if sp.Name == "delta.apply" {
			if kind := sp.Attrs["kind"]; kind != "full" && kind != "delta" {
				t.Errorf("delta.apply span kind = %q, want full or delta", kind)
			}
		}
	}
	if st := rec.Stats(); st.Started == 0 || st.Finished == 0 {
		t.Errorf("recorder stats %+v: expected started and finished traces", st)
	}
}

// TestFleetTracingDisabledRecordsNothing: a disabled recorder threaded
// through the same fleet path stays empty — the nil-safe span API means
// disabled tracing is free on every poll.
func TestFleetTracingDisabledRecordsNothing(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewLockedSketch(filledSketch(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := tracing.NewRecorder(tracing.RecorderConfig{})
	rec.SetEnabled(false)
	var windows atomic.Int64
	agg, err := NewAggregator(AggregatorConfig{
		Members: []PollerConfig{{
			Addr:       srv.Addr(),
			OnSnapshot: func(*Snapshot) { windows.Add(1) },
		}},
		Interval: 20 * time.Millisecond,
		Tracer:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for windows.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	agg.Stop()
	if windows.Load() < 2 {
		t.Fatalf("only %d windows collected before the deadline", windows.Load())
	}
	if got := rec.Traces(); len(got) != 0 {
		t.Fatalf("disabled recorder retained %d traces", len(got))
	}
	if st := rec.Stats(); st.Started != 0 {
		t.Fatalf("disabled recorder started %d traces", st.Started)
	}
}
