package collect

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// Codec v3 golden vectors, pinned against the same goldenSketch the v2
// vector uses. Any codec change that alters these bytes breaks deployed
// collectors mid-fleet and must bump the version instead of silently
// shifting the layout.
//
// Shared layout (big-endian): magic "FCMD", version 3, flags, pad,
// baseGen u64, newGen u64, stateCRC u32 (CRC-32C over the complete
// post-apply register state), bodyLen u32, body, CRC-32C trailer over
// everything before it.
const (
	// goldenEmptyDeltaHex is the nothing-changed frame: baseGen = newGen
	// = 7, zero delta blocks, state CRC 0xa24a7eba of the unchanged golden
	// registers. At 40 bytes it is the steady-state cost of polling an
	// idle switch — versus 53 bytes for the full golden snapshot (and tens
	// of KB for paper-sized geometries).
	goldenEmptyDeltaHex = "46434d440300000000000000000000070000000000000007a24a7eba0000000400000000e6d30518"

	// goldenDeltaHex carries one changed register: flow 3 of the golden
	// sketch incremented by 2, which lands in tree 0, stage 1, index 1
	// (the leaf stage is already saturated at its overflow marker, so only
	// the stage-1 counter moves: 11 → 13... encoded value 0x04 is the
	// stored register). baseGen 7 → newGen 9, one block, one entry.
	goldenDeltaHex = "46434d44030000000000000000000007000000000000000984eb99520000001400000001000100000000000100000001000000049b180432"

	// goldenFullDeltaHex is the fallback frame: flags bit0 set, baseGen 0,
	// and the body is the complete v2 encoding (magic "FCMS" and its own
	// CRC trailer) of the post-update golden sketch.
	goldenFullDeltaHex = "46434d44030100000000000000000000000000000000000984eb99520000003646434d5302010200000000020000000402040000000400000003000000030000000300000002000000020000000b00000004f9f481d335b0bb9e"
)

// goldenDeltaSketches returns the (base, cur) snapshot pair the delta
// vectors were produced from.
func goldenDeltaSketches(t *testing.T) (*Snapshot, *Snapshot) {
	t.Helper()
	base := TakeSnapshot(goldenSketch(t))
	s := goldenSketch(t)
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], 3)
	s.Update(key[:], 2)
	return base, TakeSnapshot(s)
}

func TestGoldenDeltaFrameEncoding(t *testing.T) {
	base, cur := goldenDeltaSketches(t)

	empty := &DeltaFrame{BaseGen: 7, NewGen: 7, StateCRC: base.StateCRC()}
	eb, err := empty.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(eb); got != goldenEmptyDeltaHex {
		t.Fatalf("empty-delta frame drifted from pinned vector:\n got %s\nwant %s", got, goldenEmptyDeltaHex)
	}

	blocks, ok := DiffSnapshots(base, cur)
	if !ok {
		t.Fatal("golden snapshots refuse to diff")
	}
	delta := &DeltaFrame{BaseGen: 7, NewGen: 9, StateCRC: cur.StateCRC(), Blocks: blocks}
	db, err := delta.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(db); got != goldenDeltaHex {
		t.Fatalf("delta frame drifted from pinned vector:\n got %s\nwant %s", got, goldenDeltaHex)
	}

	full := &DeltaFrame{Full: true, NewGen: 9, StateCRC: cur.StateCRC(), Snap: cur}
	fb, err := full.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(fb); got != goldenFullDeltaHex {
		t.Fatalf("full frame drifted from pinned vector:\n got %s\nwant %s", got, goldenFullDeltaHex)
	}

	// The full frame's body must be exactly the v2 golden encoding of the
	// post-update sketch — v3's fallback rung IS v2, not a near-copy.
	body := fb[deltaHeaderLen : len(fb)-deltaTrailerLen]
	v2, err := cur.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, v2) {
		t.Fatalf("full-frame body is not the v2 encoding:\n got %x\nwant %x", body, v2)
	}
}

func TestGoldenDeltaFrameDecodes(t *testing.T) {
	base, cur := goldenDeltaSketches(t)

	data, _ := hex.DecodeString(goldenDeltaHex)
	frame, err := DecodeDeltaFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Full || frame.BaseGen != 7 || frame.NewGen != 9 {
		t.Fatalf("decoded header drifted: %+v", frame)
	}
	applied, err := ApplyDelta(base, frame.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if applied.StateCRC() != frame.StateCRC {
		t.Fatal("applying the golden delta does not reproduce the pinned state CRC")
	}
	appliedSk, err := applied.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	curSk, err := cur.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := curSk.FirstRegisterDiff(appliedSk); d != "" {
		t.Fatalf("golden delta does not reconstruct the golden registers: %s", d)
	}

	edata, _ := hex.DecodeString(goldenEmptyDeltaHex)
	eframe, err := DecodeDeltaFrame(edata)
	if err != nil {
		t.Fatal(err)
	}
	if len(eframe.Blocks) != 0 || eframe.BaseGen != eframe.NewGen {
		t.Fatalf("empty-delta frame decoded as non-empty: %+v", eframe)
	}
	if eframe.StateCRC != base.StateCRC() {
		t.Fatal("empty-delta state CRC does not pin the unchanged registers")
	}

	fdata, _ := hex.DecodeString(goldenFullDeltaHex)
	fframe, err := DecodeDeltaFrame(fdata)
	if err != nil {
		t.Fatal(err)
	}
	if !fframe.Full || fframe.Snap == nil {
		t.Fatalf("full frame decoded as %+v", fframe)
	}
	fullSk, err := fframe.Snap.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := curSk.FirstRegisterDiff(fullSk); d != "" {
		t.Fatalf("full frame does not carry the golden registers: %s", d)
	}
}

// TestGoldenDeltaRejectsEveryBitFlip: the frame CRC covers every byte of
// every v3 frame shape — header fields, delta entries, the embedded full
// snapshot, and the trailer itself.
func TestGoldenDeltaRejectsEveryBitFlip(t *testing.T) {
	for _, vec := range []struct {
		name string
		hex  string
	}{
		{"empty", goldenEmptyDeltaHex},
		{"delta", goldenDeltaHex},
		{"full", goldenFullDeltaHex},
	} {
		data, err := hex.DecodeString(vec.hex)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			corrupt := append([]byte(nil), data...)
			corrupt[i] ^= 0x10
			if _, err := DecodeDeltaFrame(corrupt); err == nil {
				t.Fatalf("%s frame: decode accepted a bit flip at byte %d", vec.name, i)
			}
		}
	}
}
