// Codec v3: delta snapshots. A full v2 snapshot re-sends every register
// every poll; at fleet scale the registers barely change between polls and
// collection bandwidth — not sketch accuracy — becomes the bottleneck
// (DUNE, the P4 Count-Min telemetry analysis). A v3 frame carries only the
// registers that changed since a baseline generation both sides agree on,
// plus enough redundancy that a wrong reconstruction is impossible:
//
//   - the frame itself is CRC-32C protected (like v2), so transit
//     corruption is rejected before any field is trusted;
//   - the frame pins the CRC-32C of the COMPLETE post-apply register state
//     (StateCRC), so a client that applies a delta to the wrong baseline —
//     or to a stale one — detects the divergence and falls back to a full
//     snapshot instead of merging garbage;
//   - generation numbers tie each delta to the exact server-side snapshot
//     it was diffed against; any mismatch degrades to a full snapshot.
//
// The fallback ladder is therefore: v3 delta → v3 full (server-chosen, and
// also whenever the delta would be larger than the full encoding) → v2
// full (version downgrade against an old server). Every rung re-converges;
// none can merge wrong.
package collect

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"slices"
	"sync"

	"github.com/fcmsketch/fcm/internal/sketch"
)

// v3 codec constants.
const (
	// deltaMagic ("FCMD") is distinct from the v2 snapshot magic so a v3
	// frame can never be mistaken for a raw snapshot by an old decoder.
	deltaMagic = 0x46434d44
	// deltaVersion is the wire version carried by delta frames.
	deltaVersion = 3
	// deltaFlagFull marks a frame whose body is a complete v2 snapshot
	// (the in-band fallback rung).
	deltaFlagFull = 0x01

	// deltaHeaderLen is the fixed prefix before the body: magic(4),
	// version(1), flags(1), pad(2), baseGen(8), newGen(8), stateCRC(4),
	// bodyLen(4).
	deltaHeaderLen = 32
	// deltaTrailerLen is the CRC-32C over everything before it.
	deltaTrailerLen = 4
)

// DeltaBlock is one stage's changed registers: parallel index/value slices,
// indexes strictly within the stage the block names.
type DeltaBlock struct {
	Tree    int
	Stage   int
	Indexes []uint32
	Values  []uint32
}

// DeltaFrame is a decoded v3 collection response: either a delta against
// the baseline snapshot at BaseGen, or (Full) a complete snapshot. In both
// cases NewGen names the server-side generation of the carried state and
// StateCRC pins the CRC-32C of the complete post-apply register state.
type DeltaFrame struct {
	Full     bool
	BaseGen  uint64
	NewGen   uint64
	StateCRC uint32
	// Snap is the embedded full snapshot when Full is set.
	Snap *Snapshot
	// Blocks are the changed registers when Full is not set. An empty
	// slice is the valid "nothing changed" frame.
	Blocks []DeltaBlock
}

// Clone returns a deep copy of the snapshot (geometry and values share
// nothing with the receiver).
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{
		K:      s.K,
		Trees:  s.Trees,
		W1:     s.W1,
		Widths: append([]int(nil), s.Widths...),
	}
	c.Values = make([][][]uint32, len(s.Values))
	for t := range s.Values {
		c.Values[t] = make([][]uint32, len(s.Values[t]))
		for l := range s.Values[t] {
			c.Values[t][l] = append([]uint32(nil), s.Values[t][l]...)
		}
	}
	return c
}

// SameGeometry reports whether two snapshots describe the same sketch
// shape (and may therefore be diffed / delta-applied against each other).
func (s *Snapshot) SameGeometry(o *Snapshot) bool {
	if o == nil || s.K != o.K || s.Trees != o.Trees || s.W1 != o.W1 || len(s.Widths) != len(o.Widths) {
		return false
	}
	for i := range s.Widths {
		if s.Widths[i] != o.Widths[i] {
			return false
		}
	}
	if len(s.Values) != len(o.Values) {
		return false
	}
	for t := range s.Values {
		if len(s.Values[t]) != len(o.Values[t]) {
			return false
		}
		for l := range s.Values[t] {
			if len(s.Values[t][l]) != len(o.Values[t][l]) {
				return false
			}
		}
	}
	return true
}

// StateCRC is the CRC-32C over the snapshot's canonical register stream:
// geometry header, then every stage's values in tree/stage/index order,
// big-endian. A delta frame pins the post-apply state with this value, so
// applying a delta to the wrong baseline cannot go unnoticed.
func (s *Snapshot) StateCRC() uint32 {
	// One pooled buffer carries the header, the width bytes, and then the
	// values a fixed chunk at a time: the byte stream hashed is identical
	// to appending one field at a time, without per-value bookkeeping or
	// per-call allocation (crc32.Update's escape analysis would otherwise
	// heap-allocate every buffer handed to it).
	bufp := crcChunkPool.Get().(*[4096]byte)
	defer crcChunkPool.Put(bufp)
	buf := bufp[:]
	binary.BigEndian.PutUint32(buf[0:], uint32(s.K))
	binary.BigEndian.PutUint32(buf[4:], uint32(s.Trees))
	binary.BigEndian.PutUint32(buf[8:], uint32(s.W1))
	buf[12] = uint8(len(s.Widths))
	n := 13
	for _, w := range s.Widths {
		buf[n] = uint8(w)
		n++
	}
	crc := crc32.Update(0, castagnoli, buf[:n])
	for t := range s.Values {
		for l := range s.Values[t] {
			vals := s.Values[t][l]
			for len(vals) > 0 {
				n := len(vals)
				if n > len(buf)/4 {
					n = len(buf) / 4
				}
				for i, v := range vals[:n] {
					binary.BigEndian.PutUint32(buf[4*i:], v)
				}
				crc = crc32.Update(crc, castagnoli, buf[:4*n])
				vals = vals[n:]
			}
		}
	}
	return crc
}

// crcChunkPool feeds StateCRC's packing buffer; StateCRC runs per poll on
// every served connection concurrently, so the scratch is pooled rather
// than global. Widths caps at 255 stages, so header+widths fit the chunk.
var crcChunkPool = sync.Pool{New: func() any { return new([4096]byte) }}

// DiffSnapshots computes the registers of cur that differ from base, as
// per-stage delta blocks in tree/stage/index order. ok is false when the
// snapshots do not share a geometry (no delta exists between them).
func DiffSnapshots(base, cur *Snapshot) (blocks []DeltaBlock, ok bool) {
	if base == nil || cur == nil || !base.SameGeometry(cur) {
		return nil, false
	}
	for t := range cur.Values {
		for l := range cur.Values[t] {
			bv, cv := base.Values[t][l], cur.Values[t][l]
			// Prescreen 16-value (64-byte) runs with a word-wide memory
			// compare over the slices' raw bytes; only runs that differ are
			// walked per register. Between polls most registers are
			// unchanged, so diff cost becomes proportional to the changed
			// blocks rather than the sketch size.
			bb, cb := sketch.BytesU32(bv), sketch.BytesU32(cv)
			var idx, val []uint32
			const run = 16
			for lo := 0; lo < len(cv); lo += run {
				end := lo + run
				if end > len(cv) {
					end = len(cv)
				}
				if bytes.Equal(bb[4*lo:4*end], cb[4*lo:4*end]) {
					continue
				}
				for i := lo; i < end; i++ {
					if cv[i] != bv[i] {
						idx = append(idx, uint32(i))
						val = append(val, cv[i])
					}
				}
			}
			if len(idx) > 0 {
				blocks = append(blocks, DeltaBlock{Tree: t, Stage: l, Indexes: idx, Values: val})
			}
		}
	}
	return blocks, true
}

// ApplyDelta returns a new snapshot: base with every block's registers
// overwritten. The base is not modified. Any block naming a tree, stage or
// index outside the base's geometry is an error — the delta was diffed
// against a different baseline and must not be merged.
func ApplyDelta(base *Snapshot, blocks []DeltaBlock) (*Snapshot, error) {
	out := base.Clone()
	for bi, b := range blocks {
		if b.Tree < 0 || b.Tree >= len(out.Values) {
			return nil, fmt.Errorf("collect: delta block %d names tree %d of %d", bi, b.Tree, len(out.Values))
		}
		if b.Stage < 0 || b.Stage >= len(out.Values[b.Tree]) {
			return nil, fmt.Errorf("collect: delta block %d names stage %d of %d", bi, b.Stage, len(out.Values[b.Tree]))
		}
		stage := out.Values[b.Tree][b.Stage]
		if len(b.Indexes) != len(b.Values) {
			return nil, fmt.Errorf("collect: delta block %d has %d indexes, %d values", bi, len(b.Indexes), len(b.Values))
		}
		for i, idx := range b.Indexes {
			if int(idx) >= len(stage) {
				return nil, fmt.Errorf("collect: delta block %d index %d outside stage of %d", bi, idx, len(stage))
			}
			stage[idx] = b.Values[i]
		}
	}
	return out, nil
}

// deltaBlocksEncodedSize is the exact encoded size of a delta-frame body
// holding blocks (used to pick delta vs full before encoding anything).
func deltaBlocksEncodedSize(blocks []DeltaBlock) int {
	n := 4 // block count
	for _, b := range blocks {
		n += 8 + 8*len(b.Indexes) // tree, stage, pad, count, entries
	}
	return deltaHeaderLen + n + deltaTrailerLen
}

// encodedSizeV2 is the exact size Encode would produce for the snapshot,
// computed without encoding.
func (s *Snapshot) encodedSizeV2() int {
	n := 16 + len(s.Widths) // header + width bytes
	for t := range s.Values {
		for l := range s.Values[t] {
			n += 4 + 4*len(s.Values[t][l])
		}
	}
	return n + 4 // CRC trailer
}

// Encode serializes the frame.
//
// Layout (all big-endian):
//
//	u32 magic "FCMD", u8 version(3), u8 flags, u16 pad,
//	u64 baseGen, u64 newGen, u32 stateCRC, u32 bodyLen,
//	body (full: a complete v2 snapshot; delta: u32 blockCount, then per
//	block u8 tree, u8 stage, u16 pad, u32 count, count × (u32 idx, u32 val)),
//	u32 crc32c over everything above
func (f *DeltaFrame) Encode() ([]byte, error) {
	return f.AppendEncode(nil)
}

// AppendEncode serializes the frame (see Encode for the layout), appending
// to dst and returning the extended slice. The bytes produced are
// identical to Encode's: the body is appended in place and the header's
// bodyLen patched afterwards, so no intermediate body buffer exists.
func (f *DeltaFrame) AppendEncode(dst []byte) ([]byte, error) {
	flags := uint8(0)
	if f.Full {
		flags |= deltaFlagFull
		if f.Snap == nil {
			return nil, fmt.Errorf("collect: full delta frame without snapshot")
		}
		dst = slices.Grow(dst, deltaHeaderLen+f.Snap.encodedSizeV2()+deltaTrailerLen)
	} else {
		dst = slices.Grow(dst, deltaBlocksEncodedSize(f.Blocks))
	}
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, deltaMagic)
	dst = append(dst, deltaVersion, flags, 0, 0)
	dst = binary.BigEndian.AppendUint64(dst, f.BaseGen)
	dst = binary.BigEndian.AppendUint64(dst, f.NewGen)
	dst = binary.BigEndian.AppendUint32(dst, f.StateCRC)
	dst = binary.BigEndian.AppendUint32(dst, 0) // bodyLen, patched below
	bodyStart := len(dst)
	if f.Full {
		var err error
		dst, err = f.Snap.AppendEncode(dst)
		if err != nil {
			return nil, err
		}
	} else {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Blocks)))
		for _, b := range f.Blocks {
			if b.Tree < 0 || b.Tree > 255 || b.Stage < 0 || b.Stage > 255 {
				return nil, fmt.Errorf("collect: delta block tree/stage out of range: %d/%d", b.Tree, b.Stage)
			}
			if len(b.Indexes) != len(b.Values) {
				return nil, fmt.Errorf("collect: delta block has %d indexes, %d values", len(b.Indexes), len(b.Values))
			}
			dst = append(dst, uint8(b.Tree), uint8(b.Stage), 0, 0)
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(b.Indexes)))
			for i := range b.Indexes {
				dst = binary.BigEndian.AppendUint32(dst, b.Indexes[i])
				dst = binary.BigEndian.AppendUint32(dst, b.Values[i])
			}
		}
	}
	binary.BigEndian.PutUint32(dst[start+28:], uint32(len(dst)-bodyStart))
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli)), nil
}

// DecodeDeltaFrame parses an encoded v3 frame, verifying the frame CRC
// before trusting any field. A full frame's embedded snapshot is decoded
// (its own CRC re-verified) and checked against the frame's StateCRC, so a
// decoded full frame is always internally consistent.
func DecodeDeltaFrame(data []byte) (*DeltaFrame, error) {
	if len(data) < deltaHeaderLen+deltaTrailerLen {
		return nil, fmt.Errorf("collect: delta frame of %dB too short", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if want, got := binary.BigEndian.Uint32(trailer), crc32.Checksum(body, castagnoli); want != got {
		return nil, fmt.Errorf("collect: delta frame checksum mismatch: got 0x%08x want 0x%08x", got, want)
	}
	if m := binary.BigEndian.Uint32(data[0:]); m != deltaMagic {
		return nil, fmt.Errorf("collect: bad delta magic 0x%08x", m)
	}
	if v := data[4]; v != deltaVersion {
		return nil, fmt.Errorf("collect: unsupported delta version %d", v)
	}
	flags := data[5]
	if flags&^uint8(deltaFlagFull) != 0 {
		return nil, fmt.Errorf("collect: unknown delta flags 0x%02x", flags)
	}
	f := &DeltaFrame{
		Full:     flags&deltaFlagFull != 0,
		BaseGen:  binary.BigEndian.Uint64(data[8:]),
		NewGen:   binary.BigEndian.Uint64(data[16:]),
		StateCRC: binary.BigEndian.Uint32(data[24:]),
	}
	bodyLen := binary.BigEndian.Uint32(data[28:])
	payload := data[deltaHeaderLen : len(data)-4]
	if int(bodyLen) != len(payload) {
		return nil, fmt.Errorf("collect: delta body length %d, frame carries %d", bodyLen, len(payload))
	}
	if f.Full {
		snap, err := DecodeSnapshot(payload)
		if err != nil {
			return nil, fmt.Errorf("collect: embedded full snapshot: %w", err)
		}
		if got := snap.StateCRC(); got != f.StateCRC {
			return nil, fmt.Errorf("collect: full frame state CRC 0x%08x does not match payload 0x%08x", f.StateCRC, got)
		}
		if f.BaseGen != 0 {
			return nil, fmt.Errorf("collect: full frame carries base generation %d", f.BaseGen)
		}
		f.Snap = snap
		return f, nil
	}
	r := bytes.NewReader(payload)
	var nBlocks uint32
	if err := binary.Read(r, binary.BigEndian, &nBlocks); err != nil {
		return nil, fmt.Errorf("collect: delta block count: %w", err)
	}
	// Every block costs ≥ 8 bytes on the wire, so the remaining payload
	// bounds the count before any allocation proportional to it.
	if int64(nBlocks)*8 > int64(r.Len()) {
		return nil, fmt.Errorf("collect: %d delta blocks cannot fit %d body bytes", nBlocks, r.Len())
	}
	total := 0
	for bi := uint32(0); bi < nBlocks; bi++ {
		var bh struct {
			Tree  uint8
			Stage uint8
			Pad   uint16
			Count uint32
		}
		if err := binary.Read(r, binary.BigEndian, &bh); err != nil {
			return nil, fmt.Errorf("collect: delta block %d header: %w", bi, err)
		}
		if bh.Pad != 0 {
			return nil, fmt.Errorf("collect: delta block %d nonzero padding", bi)
		}
		if int64(bh.Count)*8 > int64(r.Len()) {
			return nil, fmt.Errorf("collect: delta block %d claims %d entries beyond body", bi, bh.Count)
		}
		total += int(bh.Count) * 8
		if total > maxSaneBytes {
			return nil, fmt.Errorf("collect: delta claims over %dB of entries", maxSaneBytes)
		}
		b := DeltaBlock{
			Tree:    int(bh.Tree),
			Stage:   int(bh.Stage),
			Indexes: make([]uint32, bh.Count),
			Values:  make([]uint32, bh.Count),
		}
		for i := uint32(0); i < bh.Count; i++ {
			var entry [8]byte
			if _, err := r.Read(entry[:]); err != nil {
				return nil, fmt.Errorf("collect: delta block %d entry %d: %w", bi, i, err)
			}
			b.Indexes[i] = binary.BigEndian.Uint32(entry[0:])
			b.Values[i] = binary.BigEndian.Uint32(entry[4:])
		}
		f.Blocks = append(f.Blocks, b)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("collect: %d trailing bytes after delta blocks", r.Len())
	}
	return f, nil
}
