package collect

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"slices"
)

// Window frame codec: a closed measurement window's snapshot plus the
// temporal metadata the over-time ring keeps per bucket (coarsening
// level, window span, generation range, wall-clock bounds, packet count).
// The sketch body is the plain v2 snapshot encoding, byte-identical to
// Snapshot.Encode — the windowed layer rides along without forking the
// register wire format — and the whole frame carries its own CRC-32C
// trailer, so metadata corruption is caught even though the embedded body
// has a valid inner checksum.
const (
	windowMagic = 0x46434d57 // "FCMW"
	// Version 1: fixed 56-byte header, embedded v2 snapshot body, CRC-32C
	// trailer over header+body.
	windowVersion = 1
	// windowHeaderLen is the encoded header size:
	// magic u32, version u8, level u8, reserved u16, span u32,
	// firstGen u64, gen u64, minTime i64, maxTime i64, packets u64,
	// bodyLen u32.
	windowHeaderLen = 4 + 1 + 1 + 2 + 4 + 8 + 8 + 8 + 8 + 8 + 4
)

// WindowMeta is the temporal metadata of one closed-window bucket.
type WindowMeta struct {
	// Level is the exponential-histogram coarsening level (0 = a fresh,
	// uncoarsened window).
	Level uint8
	// Span is how many original windows were folded into this bucket.
	Span uint32
	// FirstGeneration..Generation is the covered range of window
	// ordinals.
	FirstGeneration uint64
	Generation      uint64
	// MinTimeUnixNano/MaxTimeUnixNano bound the bucket's wall-clock span.
	MinTimeUnixNano int64
	MaxTimeUnixNano int64
	// Packets is the total increments the covered windows recorded.
	Packets uint64
}

// EncodeWindow serializes one window frame.
//
// Layout (all big-endian):
//
//	u32 magic "FCMW", u8 version, u8 level, u16 reserved,
//	u32 span, u64 firstGeneration, u64 generation,
//	i64 minTimeUnixNano, i64 maxTimeUnixNano, u64 packets,
//	u32 bodyLen, bodyLen × body (a v2 snapshot, Snapshot.Encode verbatim),
//	u32 crc32c over everything above
func EncodeWindow(meta WindowMeta, snap *Snapshot) ([]byte, error) {
	return AppendEncodeWindow(nil, meta, snap)
}

// AppendEncodeWindow serializes a window frame (see EncodeWindow for the
// layout), appending to dst and returning the extended slice.
func AppendEncodeWindow(dst []byte, meta WindowMeta, snap *Snapshot) ([]byte, error) {
	if meta.Span == 0 {
		return nil, fmt.Errorf("collect: window frame span must be positive")
	}
	if meta.FirstGeneration > meta.Generation {
		return nil, fmt.Errorf("collect: window frame generations inverted: [%d,%d]",
			meta.FirstGeneration, meta.Generation)
	}
	body, err := snap.Encode()
	if err != nil {
		return nil, fmt.Errorf("collect: window frame body: %w", err)
	}
	start := len(dst)
	dst = slices.Grow(dst, windowHeaderLen+len(body)+4)
	dst = binary.BigEndian.AppendUint32(dst, windowMagic)
	dst = append(dst, windowVersion, meta.Level, 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, meta.Span)
	dst = binary.BigEndian.AppendUint64(dst, meta.FirstGeneration)
	dst = binary.BigEndian.AppendUint64(dst, meta.Generation)
	dst = binary.BigEndian.AppendUint64(dst, uint64(meta.MinTimeUnixNano))
	dst = binary.BigEndian.AppendUint64(dst, uint64(meta.MaxTimeUnixNano))
	dst = binary.BigEndian.AppendUint64(dst, meta.Packets)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, body...)
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli)), nil
}

// DecodeWindow parses a window frame, verifying the outer CRC-32C trailer
// before any field is trusted; the embedded snapshot body is then decoded
// through the v2 path (which re-verifies its inner checksum).
func DecodeWindow(data []byte) (WindowMeta, *Snapshot, error) {
	var meta WindowMeta
	if len(data) < windowHeaderLen+4 {
		return meta, nil, fmt.Errorf("collect: window frame of %dB too short", len(data))
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if want, got := binary.BigEndian.Uint32(trailer), crc32.Checksum(payload, castagnoli); want != got {
		return meta, nil, fmt.Errorf("collect: window frame checksum mismatch (corrupt payload): got 0x%08x want 0x%08x", got, want)
	}
	if magic := binary.BigEndian.Uint32(payload[0:4]); magic != windowMagic {
		return meta, nil, fmt.Errorf("collect: bad window frame magic 0x%08x", magic)
	}
	if v := payload[4]; v != windowVersion {
		return meta, nil, fmt.Errorf("collect: unsupported window frame version %d", v)
	}
	meta.Level = payload[5]
	if reserved := binary.BigEndian.Uint16(payload[6:8]); reserved != 0 {
		return meta, nil, fmt.Errorf("collect: window frame reserved field 0x%04x must be zero", reserved)
	}
	meta.Span = binary.BigEndian.Uint32(payload[8:12])
	meta.FirstGeneration = binary.BigEndian.Uint64(payload[12:20])
	meta.Generation = binary.BigEndian.Uint64(payload[20:28])
	meta.MinTimeUnixNano = int64(binary.BigEndian.Uint64(payload[28:36]))
	meta.MaxTimeUnixNano = int64(binary.BigEndian.Uint64(payload[36:44]))
	meta.Packets = binary.BigEndian.Uint64(payload[44:52])
	bodyLen := binary.BigEndian.Uint32(payload[52:56])
	if meta.Span == 0 {
		return meta, nil, fmt.Errorf("collect: window frame span is zero")
	}
	if meta.FirstGeneration > meta.Generation {
		return meta, nil, fmt.Errorf("collect: window frame generations inverted: [%d,%d]",
			meta.FirstGeneration, meta.Generation)
	}
	if int(bodyLen) > maxSaneBytes {
		return meta, nil, fmt.Errorf("collect: window frame claims %dB body", bodyLen)
	}
	if len(payload) != windowHeaderLen+int(bodyLen) {
		return meta, nil, fmt.Errorf("collect: window frame body length %d does not match payload %d",
			bodyLen, len(payload)-windowHeaderLen)
	}
	snap, err := DecodeSnapshot(payload[windowHeaderLen:])
	if err != nil {
		return meta, nil, err
	}
	return meta, snap, nil
}
