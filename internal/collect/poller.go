package collect

import (
	"fmt"
	"sync"
	"time"
)

// Poller periodically collects snapshots from a switch — the "periodically
// collecting FCM-Sketch from the data plane" loop of §4.4. Each interval
// it reads the registers, optionally resets them (window rotation), and
// hands the snapshot to the callback.
type Poller struct {
	addr     string
	interval time.Duration
	reset    bool
	onSnap   func(*Snapshot)
	onErr    func(error)

	mu      sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
}

// PollerConfig configures a Poller.
type PollerConfig struct {
	// Addr is the collection server address.
	Addr string
	// Interval is the collection period.
	Interval time.Duration
	// Reset rotates the window after each collection.
	Reset bool
	// OnSnapshot receives every collected snapshot (required).
	OnSnapshot func(*Snapshot)
	// OnError receives transient collection errors; nil ignores them
	// (the poller keeps trying either way).
	OnError func(error)
}

// NewPoller validates the configuration and returns an unstarted Poller.
func NewPoller(cfg PollerConfig) (*Poller, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("collect: poller needs an address")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("collect: poller interval must be positive, got %v", cfg.Interval)
	}
	if cfg.OnSnapshot == nil {
		return nil, fmt.Errorf("collect: poller needs an OnSnapshot callback")
	}
	return &Poller{
		addr:     cfg.Addr,
		interval: cfg.Interval,
		reset:    cfg.Reset,
		onSnap:   cfg.OnSnapshot,
		onErr:    cfg.OnError,
	}, nil
}

// Start launches the collection loop. It is an error to start a running
// poller.
func (p *Poller) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return fmt.Errorf("collect: poller already running")
	}
	p.stop = make(chan struct{})
	p.stopped = make(chan struct{})
	go p.loop(p.stop, p.stopped)
	return nil
}

// Stop halts the loop and waits for it to finish. Stopping a stopped
// poller is a no-op.
func (p *Poller) Stop() {
	p.mu.Lock()
	stop, stopped := p.stop, p.stopped
	p.stop, p.stopped = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-stopped
}

// loop runs until stop closes.
func (p *Poller) loop(stop <-chan struct{}, stopped chan<- struct{}) {
	defer close(stopped)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			if err := p.collectOnce(); err != nil && p.onErr != nil {
				p.onErr(err)
			}
		}
	}
}

// collectOnce dials, reads (and optionally resets) one snapshot.
func (p *Poller) collectOnce() error {
	cl, err := Dial(p.addr, p.interval)
	if err != nil {
		return err
	}
	defer cl.Close()
	snap, err := cl.ReadSketch()
	if err != nil {
		return err
	}
	if p.reset {
		if err := cl.ResetSketch(); err != nil {
			return err
		}
	}
	p.onSnap(snap)
	return nil
}
