package collect

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
)

// State is the poller's health, derived from consecutive collection
// failures. Transitions are Healthy → Degraded → Down as failures
// accumulate and straight back to Healthy on the first success.
type State int32

const (
	// Healthy: the last collection succeeded.
	Healthy State = iota
	// Degraded: at least DegradedAfter consecutive failures; windows are
	// being skipped but the switch is expected back.
	Degraded
	// Down: at least DownAfter consecutive failures; the switch should
	// be treated as unreachable.
	Down
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// PollerStats describe a poller's progress and health.
type PollerStats struct {
	// Collected counts delivered snapshots.
	Collected uint64
	// Failed counts collection attempts that delivered nothing.
	Failed uint64
	// SkippedWindows counts scheduled collections that produced no
	// snapshot; with Reset enabled these are windows whose traffic stayed
	// in the registers and was folded into a later snapshot, never lost
	// silently.
	SkippedWindows uint64
	// ConsecutiveFailures is the current failure streak (0 when healthy).
	ConsecutiveFailures int
	// State is the current health state.
	State State
	// TransitionsTo counts entries into each state, indexed by State
	// (TransitionsTo[Down] is how often the switch was declared
	// unreachable). The initial Healthy state is not counted.
	TransitionsTo [3]uint64
	// LastSuccess is when the last snapshot was delivered (zero before
	// the first delivery).
	LastSuccess time.Time
}

// Poller periodically collects snapshots from a switch — the "periodically
// collecting FCM-Sketch from the data plane" loop of §4.4. Each interval
// it reads the registers, optionally resets them (window rotation), and
// hands the snapshot to the callback. The loop is context-driven: Stop
// cancels an in-flight collection (returning within one I/O deadline, not
// one interval), failures are tracked into a health state, and skipped
// windows are reported so rotation accounting stays correct.
type Poller struct {
	cfg    PollerConfig
	client *Client

	mu      sync.Mutex
	cancel  context.CancelFunc
	stopped chan struct{}

	// Collection-loop state; written only by the loop goroutine, read
	// via Stats under statMu.
	statMu  sync.Mutex
	stats   PollerStats
	pending int // failures since the last delivered snapshot
	started time.Time

	log *slog.Logger
}

// PollerConfig configures a Poller.
type PollerConfig struct {
	// Addr is the collection server address.
	Addr string
	// Interval is the collection period.
	Interval time.Duration
	// Timeout bounds each read/write within one collection (default:
	// Interval). A black-holed switch costs one Timeout per attempt, and
	// Stop never waits longer than the remainder of one.
	Timeout time.Duration
	// Retries is how many extra in-collect attempts the snapshot read
	// gets (default 0: the next interval is the retry).
	Retries int
	// Reset rotates the window after each collection.
	Reset bool
	// Delta enables the codec v3 delta protocol on the underlying client
	// (see ClientConfig.Delta); SessionID is passed through with it.
	Delta     bool
	SessionID uint64
	// InitialDelay staggers the first collection: the loop sleeps this
	// long, collects once, and only then starts the interval ticker. A
	// Scheduler spreads its pollers' delays across one interval so a
	// controller's fan-in arrives as a steady trickle, not a thundering
	// herd. 0 keeps the legacy behavior (first collection after one full
	// interval).
	InitialDelay time.Duration
	// Gate, when non-nil, bounds how many collections run concurrently
	// across all pollers sharing it (controller fan-in cap). The poller
	// blocks on the gate before each collection; time spent waiting counts
	// against that collection's window.
	Gate *Gate
	// OnSnapshot receives every collected snapshot (required).
	OnSnapshot func(*Snapshot)
	// OnWindow, if set, additionally receives each snapshot with the
	// number of scheduled collections that were skipped since the last
	// delivery — 0 on schedule, n when the snapshot folds n missed
	// windows' traffic (Reset mode) or is simply n polls late.
	OnWindow func(snap *Snapshot, skipped int)
	// OnError receives transient collection errors; nil ignores them
	// (the poller keeps trying either way).
	OnError func(error)
	// OnStateChange observes health transitions. Called from the
	// collection goroutine, never concurrently.
	OnStateChange func(from, to State)
	// DegradedAfter and DownAfter are the consecutive-failure thresholds
	// for Degraded and Down (defaults 1 and 3).
	DegradedAfter int
	DownAfter     int
	// Dial overrides the client transport (e.g. fault injection).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Logger receives structured health and failure records (and is
	// passed through to the underlying client); nil discards them.
	Logger *slog.Logger
	// Tracer, when non-nil, records one flight-recorder trace per
	// scheduled collection: gate wait, connect/retry attempts, frame
	// decode, delta apply (with fallback reason), rotation, and delivery
	// all under one trace ID, which also stamps this poller's log
	// records. nil (the default) costs one pointer check per span site.
	Tracer *tracing.Recorder

	// onSnapshotCtx, when set, is called instead-of-first on delivery
	// with the poll's context so downstream stages (the Aggregator's
	// absorb) join the poll trace. Package-internal: the public
	// callbacks keep their signatures.
	onSnapshotCtx func(context.Context, *Snapshot)
}

// NewPoller validates the configuration and returns an unstarted Poller.
func NewPoller(cfg PollerConfig) (*Poller, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("collect: poller needs an address")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("collect: poller interval must be positive, got %v", cfg.Interval)
	}
	if cfg.OnSnapshot == nil && cfg.OnWindow == nil && cfg.onSnapshotCtx == nil {
		return nil, fmt.Errorf("collect: poller needs an OnSnapshot or OnWindow callback")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	if cfg.DegradedAfter <= 0 {
		cfg.DegradedAfter = 1
	}
	if cfg.DownAfter <= cfg.DegradedAfter {
		cfg.DownAfter = cfg.DegradedAfter + 2
	}
	client, err := NewClient(ClientConfig{
		Addr:        cfg.Addr,
		DialTimeout: cfg.Timeout,
		IOTimeout:   cfg.Timeout,
		MaxRetries:  cfg.Retries,
		Dial:        cfg.Dial,
		Delta:       cfg.Delta,
		SessionID:   cfg.SessionID,
		Logger:      cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	return &Poller{cfg: cfg, client: client, log: telemetry.OrNop(cfg.Logger)}, nil
}

// Start launches the collection loop. It is an error to start a running
// poller.
func (p *Poller) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancel != nil {
		return fmt.Errorf("collect: poller already running")
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.stopped = make(chan struct{})
	p.statMu.Lock()
	p.started = time.Now()
	p.statMu.Unlock()
	go p.loop(ctx, p.stopped)
	return nil
}

// ConvergenceLag is how long ago the controller last held this switch's
// state: seconds since the last delivered snapshot, or since Start if
// nothing has been delivered yet (0 before Start). A healthy fleet keeps
// every poller's lag near its interval; a partition or a dead aggregator
// shows up as a lag that grows without bound.
func (p *Poller) ConvergenceLag() float64 {
	p.statMu.Lock()
	last, started := p.stats.LastSuccess, p.started
	p.statMu.Unlock()
	switch {
	case !last.IsZero():
		return time.Since(last).Seconds()
	case !started.IsZero():
		return time.Since(started).Seconds()
	default:
		return 0
	}
}

// Stop halts the loop and waits for it to finish. An in-flight collection
// is interrupted (its connection deadline is yanked), so Stop returns
// within one I/O operation even against a black-holed switch. Stopping a
// stopped poller is a no-op.
func (p *Poller) Stop() {
	p.mu.Lock()
	cancel, stopped := p.cancel, p.stopped
	p.cancel, p.stopped = nil, nil
	p.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-stopped
}

// Stats returns a consistent copy of the poller's counters and health.
func (p *Poller) Stats() PollerStats {
	p.statMu.Lock()
	defer p.statMu.Unlock()
	return p.stats
}

// loop runs until ctx is canceled. The goroutine carries pprof labels so
// CPU and goroutine profiles attribute collection time per switch.
func (p *Poller) loop(ctx context.Context, stopped chan<- struct{}) {
	pprof.Do(ctx, pprof.Labels("subsystem", "poller", "switch", p.cfg.Addr), func(ctx context.Context) {
		p.run(ctx, stopped)
	})
}

func (p *Poller) run(ctx context.Context, stopped chan<- struct{}) {
	defer close(stopped)
	defer p.client.Close() //nolint:errcheck // teardown
	if p.cfg.InitialDelay > 0 {
		// Staggered start: sleep the assigned slice of the interval, then
		// collect immediately so the steady-state phase (one collection
		// per interval, offset by the delay) begins right away.
		t := time.NewTimer(p.cfg.InitialDelay)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		p.runOnce(ctx)
		if ctx.Err() != nil {
			return
		}
	}
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			p.runOnce(ctx)
			if ctx.Err() != nil {
				return
			}
		}
	}
}

// runOnce performs one scheduled collection, honoring the shared fan-in
// gate when one is configured. With a Tracer configured, the whole
// window — gate wait through delivery — records as one trace.
func (p *Poller) runOnce(ctx context.Context) {
	tr := p.cfg.Tracer.StartTrace("poll")
	defer tr.End()
	tr.Root().Annotate("addr", p.cfg.Addr)
	ctx = tracing.NewContext(ctx, tr)
	if p.cfg.Gate != nil {
		gsp := tr.StartSpan("gate.wait")
		err := p.cfg.Gate.Acquire(ctx)
		if err != nil {
			gsp.Fail(err)
		}
		gsp.End()
		if err != nil {
			return
		}
		defer p.cfg.Gate.Release()
	}
	snap, err := p.collectOnce(ctx)
	if ctx.Err() != nil {
		return
	}
	if err != nil {
		tr.Root().Fail(err)
		p.noteFailure(ctx, err)
		return
	}
	p.noteSuccess(ctx, snap)
}

// collectOnce reads (and optionally resets) one snapshot over the reused
// client connection.
func (p *Poller) collectOnce(ctx context.Context) (*Snapshot, error) {
	snap, err := p.client.ReadSketchContext(ctx)
	if err != nil {
		return nil, err
	}
	if p.cfg.Reset {
		rsp := tracing.FromContext(ctx).StartSpan("rotate")
		err := p.client.ResetSketchContext(ctx)
		if err != nil {
			rsp.Fail(err)
		}
		rsp.End()
		if err != nil {
			// The snapshot is good but the rotation failed: deliver it
			// anyway and let failure accounting flag the window — the
			// next snapshot will fold this window's traffic again.
			p.noteSuccess(ctx, snap)
			return nil, fmt.Errorf("collect: window rotation failed after snapshot: %w", err)
		}
	}
	return snap, nil
}

// noteFailure updates failure accounting and health after a missed
// collection. ctx carries the poll trace: the failure records it emits
// join the flight recorder's errored ring by trace_id.
func (p *Poller) noteFailure(ctx context.Context, err error) {
	log := tracing.FromContext(ctx).LogWith(p.log)
	p.statMu.Lock()
	p.stats.Failed++
	p.stats.SkippedWindows++
	p.stats.ConsecutiveFailures++
	p.pending++
	consecutive := p.stats.ConsecutiveFailures
	from := p.stats.State
	to := p.healthFor(consecutive)
	p.stats.State = to
	if to != from {
		p.stats.TransitionsTo[to]++
	}
	p.statMu.Unlock()
	log.Debug("collection failed",
		"addr", p.cfg.Addr, "err", err, "consecutive", consecutive)
	if p.cfg.OnError != nil {
		p.cfg.OnError(err)
	}
	if to != from {
		log.Warn("switch health degraded",
			"addr", p.cfg.Addr, "from", from.String(), "to", to.String(),
			"consecutive", consecutive)
		if p.cfg.OnStateChange != nil {
			p.cfg.OnStateChange(from, to)
		}
	}
}

// noteSuccess delivers a snapshot, reporting how many scheduled windows
// were skipped since the previous delivery, and restores health. ctx
// carries the poll trace so downstream absorbs join it.
func (p *Poller) noteSuccess(ctx context.Context, snap *Snapshot) {
	p.statMu.Lock()
	p.stats.Collected++
	p.stats.LastSuccess = time.Now()
	p.stats.ConsecutiveFailures = 0
	skipped := p.pending
	p.pending = 0
	from := p.stats.State
	p.stats.State = Healthy
	if from != Healthy {
		p.stats.TransitionsTo[Healthy]++
	}
	p.statMu.Unlock()
	dsp := tracing.FromContext(ctx).StartSpan("deliver")
	if p.cfg.onSnapshotCtx != nil {
		p.cfg.onSnapshotCtx(ctx, snap)
	} else if p.cfg.OnSnapshot != nil {
		p.cfg.OnSnapshot(snap)
	}
	if p.cfg.OnWindow != nil {
		p.cfg.OnWindow(snap, skipped)
	}
	dsp.End()
	if from != Healthy {
		tracing.FromContext(ctx).LogWith(p.log).Info("switch recovered",
			"addr", p.cfg.Addr, "from", from.String(), "skipped_windows", skipped)
		if p.cfg.OnStateChange != nil {
			p.cfg.OnStateChange(from, Healthy)
		}
	}
}

// healthFor maps a failure streak to a state.
func (p *Poller) healthFor(consecutive int) State {
	switch {
	case consecutive >= p.cfg.DownAfter:
		return Down
	case consecutive >= p.cfg.DegradedAfter:
		return Degraded
	default:
		return Healthy
	}
}
