package collect

import (
	"bytes"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/faultnet"
	"github.com/fcmsketch/fcm/internal/hashing"
	"github.com/fcmsketch/fcm/internal/telemetry"
)

// lockedWriter makes a bytes.Buffer safe for the poller goroutine's slog
// handler to write while the test reads.
type lockedWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestPollerHealthTelemetry drives a poller through the full health cycle
// Healthy → Degraded → Down → Healthy with faultnet and checks that the
// registry series, the Stats() transition counters, and the structured
// log all tell the same story.
func TestPollerHealthTelemetry(t *testing.T) {
	sk, err := core.New(core.Config{
		K: 4, Trees: 2, LeafWidth: 256, Widths: []int{8, 16, 32},
		Hash: hashing.NewBobFamily(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := NewLockedSketch(sk)
	src.Update([]byte("flow"), 9)

	inj := faultnet.New(faultnet.Config{Seed: 1})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	logw := &lockedWriter{}
	logger := telemetry.NewLogger(io.MultiWriter(logw), slog.LevelDebug, false)
	srv := Serve(faultnet.Listen(raw, inj), src, ServerConfig{
		ReadTimeout:  250 * time.Millisecond,
		WriteTimeout: 250 * time.Millisecond,
		IdleTimeout:  2 * time.Second,
		Logger:       logger,
	})
	defer srv.Close()

	reg := telemetry.NewRegistry()
	srv.Instrument(reg, "")

	var st struct {
		mu      sync.Mutex
		skipped int
	}
	p, err := NewPoller(PollerConfig{
		Addr:          srv.Addr(),
		Interval:      10 * time.Millisecond,
		Timeout:       100 * time.Millisecond,
		DegradedAfter: 1,
		DownAfter:     3,
		Logger:        logger,
		OnWindow: func(_ *Snapshot, skipped int) {
			st.mu.Lock()
			st.skipped += skipped
			st.mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Instrument(reg, `switch="0"`)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			if !time.Now().Before(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Healthy: at least one delivery.
	waitFor(func() bool { return p.Stats().Collected >= 1 }, "first delivery")

	// Outage: refuse all new connections and cut live ones. The poller
	// must pass through Degraded (1 failure) into Down (3 failures).
	inj.SetConfig(faultnet.Config{Seed: 1, RefuseProb: 1})
	inj.Cut()
	waitFor(func() bool { return p.Stats().State == Down }, "poller to go Down")

	// Heal: first success snaps straight back to Healthy.
	inj.Heal()
	waitFor(func() bool {
		s := p.Stats()
		return s.State == Healthy && s.TransitionsTo[Healthy] >= 1
	}, "poller to recover")
	p.Stop()

	stats := p.Stats()
	if stats.TransitionsTo[Degraded] < 1 || stats.TransitionsTo[Down] < 1 {
		t.Errorf("transition counters %v, want ≥1 into degraded and down", stats.TransitionsTo)
	}
	if stats.SkippedWindows < 3 {
		t.Errorf("skipped windows %d, want ≥3 (the outage spanned DownAfter failures)", stats.SkippedWindows)
	}
	st.mu.Lock()
	seen := st.skipped
	st.mu.Unlock()
	// Every skipped window is eventually reported through OnWindow except
	// any still pending when the poller stopped.
	if seen > int(stats.SkippedWindows) {
		t.Errorf("OnWindow reported %d skipped, stats say %d", seen, stats.SkippedWindows)
	}

	// The registry must carry the same story.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`fcm_poller_state{switch="0"} 0`,
		`fcm_poller_transitions_total{switch="0",state="degraded"}`,
		`fcm_poller_transitions_total{switch="0",state="down"}`,
		`fcm_poller_transitions_total{switch="0",state="healthy"}`,
		`fcm_poller_collected_total{switch="0"}`,
		`fcm_poller_skipped_windows_total{switch="0"}`,
		`fcm_collect_client_dials_total{switch="0"}`,
		"fcm_collect_server_reads_total",
		"fcm_collect_server_conns_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}

	// And so must the structured log.
	logs := logw.String()
	for _, want := range []string{
		"collect server listening",
		"switch health degraded",
		`to=degraded`,
		`to=down`,
		"switch recovered",
		"collection failed",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("missing %q in log output:\n%s", want, logs)
		}
	}
}

// flipConn corrupts one bit at a fixed stream offset past the frame
// header and status byte, so the damage lands in the snapshot payload.
type flipConn struct {
	net.Conn
	off int
}

func (f *flipConn) Read(p []byte) (int, error) {
	n, err := f.Conn.Read(p)
	for i := 0; i < n; i++ {
		f.off++
		if f.off == 50 {
			p[i] ^= 0x01
		}
	}
	return n, err
}

// TestClientDecodeFailureTelemetry checks that a corrupting link shows up
// in the client's decode-failure counter and series.
func TestClientDecodeFailureTelemetry(t *testing.T) {
	sk, err := core.New(core.Config{
		K: 4, Trees: 2, LeafWidth: 256, Widths: []int{8, 16, 32},
		Hash: hashing.NewBobFamily(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := NewLockedSketch(sk)
	src.Update([]byte("flow"), 5)

	srv, err := NewServer("127.0.0.1:0", src)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Flip one bit deep inside every response stream: the frame and the
	// status byte arrive intact, the snapshot payload fails its CRC.
	c, err := NewClient(ClientConfig{
		Addr: srv.Addr(), MaxRetries: 2, IOTimeout: time.Second,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			return &flipConn{Conn: conn}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := telemetry.NewRegistry()
	c.Instrument(reg, "")

	if _, err := c.ReadSketch(); err == nil {
		t.Fatal("expected read through a corrupting link to fail")
	}
	if got := c.Stats().DecodeFailures; got < 1 {
		t.Errorf("decode failures %d, want ≥1", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fcm_collect_client_decode_failures_total") {
		t.Errorf("missing decode-failure series:\n%s", buf.String())
	}
}
