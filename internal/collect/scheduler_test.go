package collect

import (
	"sync/atomic"
	"testing"
	"time"
)

// schedDelays builds an (unstarted) scheduler over n members and returns
// each member's computed initial delay.
func schedDelays(t *testing.T, n int, interval time.Duration, seed int64) []time.Duration {
	t.Helper()
	members := make([]PollerConfig, n)
	for i := range members {
		members[i] = PollerConfig{Addr: "127.0.0.1:1", OnSnapshot: func(*Snapshot) {}}
	}
	sched, err := NewScheduler(SchedulerConfig{Interval: interval, JitterSeed: seed}, members)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]time.Duration, n)
	for i, p := range sched.Pollers() {
		out[i] = p.cfg.InitialDelay
	}
	return out
}

// TestSchedulerSpreadWithinInterval: whatever the fleet size, every
// member's staggered start (slot + jitter) lands inside the first
// collection interval — the property that decorrelates the fleet without
// delaying any member by more than one period.
func TestSchedulerSpreadWithinInterval(t *testing.T) {
	interval := time.Second
	for _, n := range []int{1, 2, 3, 8, 16, 64} {
		delays := schedDelays(t, n, interval, 7)
		for i, d := range delays {
			if d <= 0 {
				t.Errorf("n=%d: member %d has non-positive delay %v", n, i, d)
			}
			if d > interval {
				t.Errorf("n=%d: member %d delay %v exceeds the interval %v", n, i, d, interval)
			}
		}
	}
}

// TestSchedulerJitterReproducible: the jitter is a pure function of the
// seed, so a fleet restarted with the same seed reproduces its schedule
// exactly (and a different seed decorrelates two aggregators sharing an
// interval).
func TestSchedulerJitterReproducible(t *testing.T) {
	a := schedDelays(t, 8, time.Second, 42)
	b := schedDelays(t, 8, time.Second, 42)
	c := schedDelays(t, 8, time.Second, 43)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("member %d: same seed gave %v then %v", i, a[i], b[i])
		}
	}
	differs := false
	for i := range a {
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 42 and 43 produced identical schedules")
	}
}

// TestSchedulerGateBound: under a fleet whose members all want to collect
// at once (tiny interval, slow consumers), the number of concurrently
// delivered collections never exceeds the fan-in bound. The snapshot
// callback runs while the poller still holds its gate slot, so observing
// concurrency inside it observes gate occupancy.
func TestSchedulerGateBound(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewLockedSketch(filledSketch(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const bound = 3
	var cur, peak, windows atomic.Int64
	onSnap := func(*Snapshot) {
		c := cur.Add(1)
		for {
			m := peak.Load()
			if c <= m || peak.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // hold the slot so the fleet piles up
		cur.Add(-1)
		windows.Add(1)
	}
	var members []PollerConfig
	for i := 0; i < 12; i++ {
		members = append(members, PollerConfig{Addr: srv.Addr(), OnSnapshot: onSnap})
	}
	sched, err := NewScheduler(SchedulerConfig{
		Interval:    20 * time.Millisecond,
		MaxInFlight: bound,
		JitterSeed:  7,
	}, members)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for windows.Load() < 24 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	sched.Stop()

	if got := windows.Load(); got < 24 {
		t.Fatalf("only %d windows delivered before the deadline", got)
	}
	if got := peak.Load(); got > bound {
		t.Fatalf("observed %d concurrent collections, gate bound is %d", got, bound)
	}
	if got := sched.Gate().InFlight(); got != 0 {
		t.Fatalf("%d gate slots still held after Stop", got)
	}
}
