package collect

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPollerValidation(t *testing.T) {
	cases := []PollerConfig{
		{Interval: time.Second, OnSnapshot: func(*Snapshot) {}},               // no addr
		{Addr: "x", OnSnapshot: func(*Snapshot) {}},                           // no interval
		{Addr: "x", Interval: time.Second},                                    // no callback
		{Addr: "x", Interval: -time.Second, OnSnapshot: func(*Snapshot) {}},   // negative
	}
	for i, cfg := range cases {
		if _, err := NewPoller(cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestPollerCollectsAndResets(t *testing.T) {
	s := filledSketch(t)
	srv, err := NewServer("127.0.0.1:0", NewLockedSketch(s))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var snaps atomic.Int32
	var nonZero atomic.Int32
	p, err := NewPoller(PollerConfig{
		Addr:     srv.Addr(),
		Interval: 20 * time.Millisecond,
		Reset:    true,
		OnSnapshot: func(snap *Snapshot) {
			snaps.Add(1)
			for _, tree := range snap.Values {
				for _, stage := range tree {
					for _, v := range stage {
						if v != 0 {
							nonZero.Add(1)
							return
						}
					}
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Error("expected already-running error")
	}
	// Wait until at least 3 collections happened.
	deadline := time.Now().Add(5 * time.Second)
	for snaps.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if snaps.Load() < 3 {
		t.Fatalf("only %d collections", snaps.Load())
	}
	// The first collection saw data; subsequent ones saw a reset sketch,
	// so at most the first snapshot is non-zero.
	if nonZero.Load() > 1 {
		t.Errorf("%d non-empty snapshots; reset not applied", nonZero.Load())
	}
	// After stop, no further callbacks fire.
	before := snaps.Load()
	time.Sleep(60 * time.Millisecond)
	if snaps.Load() != before {
		t.Error("poller kept collecting after Stop")
	}
}

func TestPollerSurvivesErrors(t *testing.T) {
	var errs atomic.Int32
	p, err := NewPoller(PollerConfig{
		Addr:       "127.0.0.1:1", // closed port
		Interval:   15 * time.Millisecond,
		OnSnapshot: func(*Snapshot) { t.Error("unexpected snapshot") },
		OnError:    func(error) { errs.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for errs.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	p.Stop()
	if errs.Load() < 2 {
		t.Fatalf("only %d errors surfaced", errs.Load())
	}
}
