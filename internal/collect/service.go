package collect

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fcmsketch/fcm/internal/core"
	"github.com/fcmsketch/fcm/internal/telemetry"
	"github.com/fcmsketch/fcm/internal/telemetry/tracing"
)

// Wire protocol: every message is a 1-byte opcode framed request followed
// by a framed response. Frames are u32 big-endian length + payload; the
// response payload starts with a 1-byte status (0 = ok, 1 = error string).
const (
	// OpReadSketch returns an encoded Snapshot of the sketch registers.
	OpReadSketch = 1
	// OpResetSketch clears the registers (window rotation).
	OpResetSketch = 2
	// OpReadDelta returns a codec v3 delta frame against the client's
	// acked generation (falling back to an embedded full snapshot when no
	// usable baseline exists). Servers predating v3 answer it with an
	// "unknown opcode" error, which clients treat as a version downgrade.
	OpReadDelta = 3

	statusOK  = 0
	statusErr = 1

	// maxFrame bounds a frame to keep a rogue peer from exhausting
	// memory. Large sketches (tens of MB) still fit comfortably.
	maxFrame = 256 << 20

	// frameChunk is the allocation step while reading a frame body: a
	// lying length prefix on a short stream costs at most one chunk, not
	// the full claimed size.
	frameChunk = 1 << 20
)

// Source is the data plane the server collects from. Implementations
// provide copy-on-read snapshots: SnapshotSketch returns a consistent copy
// the server owns, taken under the source's own short-lived
// synchronization, so collection never holds a lock across the encode or
// the network write and ingest is stalled for at most one register copy.
// engine.Engine (sharded multi-writer ingest) and LockedSketch
// (single-writer fallback) both satisfy it.
type Source interface {
	// SnapshotSketch returns a consistent register copy the caller owns.
	SnapshotSketch() *core.Sketch
	// ResetSketch clears the registers (window rotation).
	ResetSketch()
}

// GenerationalSource is a Source that can stamp each snapshot with a
// monotonic generation: equal generations imply bit-identical registers
// within one process lifetime. The delta protocol uses the generation as
// its ack token, and — for genuinely generational sources — as the
// unchanged-sketch fast path (an empty delta with no diff pass at all).
// engine.Engine and Aggregator implement it; plain Sources still get
// deltas, keyed by synthetic per-read generations.
type GenerationalSource interface {
	Source
	// SnapshotSketchGen returns a consistent register copy together with
	// the generation it was taken at.
	SnapshotSketchGen() (*core.Sketch, uint64)
}

// ServerConfig bounds server-side resource use so a slow, stalled, or
// malicious peer cannot pin a handler goroutine or exhaust descriptors.
// Zero fields take the defaults below.
type ServerConfig struct {
	// ReadTimeout is the per-frame read deadline once a frame header has
	// started arriving (default 10s).
	ReadTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s). A peer
	// that stops draining its socket loses the connection instead of
	// pinning the handler.
	WriteTimeout time.Duration
	// IdleTimeout is how long a connection may sit between requests
	// before the server closes it (default 2m).
	IdleTimeout time.Duration
	// MaxConns caps concurrently served connections (default 64). Excess
	// connections are accepted, counted, logged, and closed immediately —
	// the peer sees a clean transport failure and retries, instead of
	// sitting invisibly in the kernel backlog.
	MaxConns int
	// MaxSessions caps the delta-protocol session store (default 64). Each
	// session pins up to two register snapshots server-side; beyond the
	// cap the least-recently-used session is evicted, and its client
	// degrades to one full snapshot on its next poll.
	MaxSessions int
	// Logger receives structured lifecycle and failure records; nil
	// discards them.
	Logger *slog.Logger
	// Tracer, when non-nil, records one flight-recorder trace per served
	// request (snapshot copy, encode, write — and for deltas, the diff
	// and any fallback with its reason). nil costs one pointer check per
	// request.
	Tracer *tracing.Recorder
}

const (
	defaultReadTimeout  = 10 * time.Second
	defaultWriteTimeout = 10 * time.Second
	defaultIdleTimeout  = 2 * time.Minute
	defaultMaxConns     = 64
	defaultMaxSessions  = 64
)

func (c ServerConfig) withDefaults() ServerConfig {
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = defaultReadTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = defaultWriteTimeout
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = defaultIdleTimeout
	}
	if c.MaxConns <= 0 {
		c.MaxConns = defaultMaxConns
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = defaultMaxSessions
	}
	return c
}

// ServerStats are monotonic counters describing the server's health.
type ServerStats struct {
	// AcceptRetries counts accept-loop failures that triggered backoff.
	AcceptRetries uint64
	// Conns counts connections ever served.
	Conns uint64
	// Active is the number of connections being served right now.
	Active int64
	// Reads counts snapshot frames served (OpReadSketch successes).
	Reads uint64
	// Resets counts window rotations performed (OpResetSketch).
	Resets uint64
	// Errors counts requests answered with an error status.
	Errors uint64
	// RejectedConns counts connections closed at the MaxConns cap.
	RejectedConns uint64
	// DeltaReads counts OpReadDelta requests answered (delta or embedded
	// full — every successful v3 response).
	DeltaReads uint64
	// DeltaWireBytes and FullWireBytes are response payload bytes served
	// as deltas vs as full snapshots (v3 embedded fulls and v2 reads
	// both count as full): the bandwidth ledger the delta protocol exists
	// to improve.
	DeltaWireBytes uint64
	FullWireBytes  uint64
	// Fallbacks counts v3 requests that degraded to a full snapshot, by
	// reason (keys: no_baseline, gen_mismatch, geometry, delta_larger).
	Fallbacks map[string]uint64
	// Sessions is the current delta session count.
	Sessions int
}

// Server exposes a data plane's sketch registers over TCP so a controller
// can collect them in batch.
type Server struct {
	src      Source
	gsrc     GenerationalSource // non-nil when src reports generations
	cfg      ServerConfig
	ln       net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
	sem      chan struct{}
	sessions *sessionStore
	synthGen atomic.Uint64 // generation fallback for plain Sources

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	acceptRetries  atomic.Uint64
	totalConns     atomic.Uint64
	activeConns    atomic.Int64
	rejectedConns  atomic.Uint64
	reads          atomic.Uint64
	resets         atomic.Uint64
	reqErrors      atomic.Uint64
	deltaReads     atomic.Uint64
	deltaWireBytes atomic.Uint64
	fullWireBytes  atomic.Uint64
	fallbacks      [fbCount]atomic.Uint64

	log *slog.Logger
}

// NewServer starts serving the source on addr (use "127.0.0.1:0" for an
// ephemeral test port) with default timeouts and connection cap. The
// source may keep receiving updates; every read gets an independent
// copy-on-read snapshot.
func NewServer(addr string, src Source) (*Server, error) {
	return NewServerConfig(addr, src, ServerConfig{})
}

// NewServerConfig is NewServer with explicit resource bounds.
func NewServerConfig(addr string, src Source, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen: %w", err)
	}
	return Serve(ln, src, cfg), nil
}

// Serve runs a collection server on an existing listener — the hook for
// wrapping the accept path (e.g. with faultnet's chaos listener). The
// server owns the listener and closes it on Close.
func Serve(ln net.Listener, src Source, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		src:      src,
		cfg:      cfg,
		ln:       ln,
		closed:   make(chan struct{}),
		sem:      make(chan struct{}, cfg.MaxConns),
		sessions: newSessionStore(cfg.MaxSessions),
		conns:    make(map[net.Conn]struct{}),
		log:      telemetry.OrNop(cfg.Logger),
	}
	if gs, ok := src.(GenerationalSource); ok {
		s.gsrc = gs
	}
	s.log.Info("collect server listening",
		"addr", ln.Addr().String(), "max_conns", cfg.MaxConns)
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns the server's counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		AcceptRetries:  s.acceptRetries.Load(),
		Conns:          s.totalConns.Load(),
		Active:         s.activeConns.Load(),
		Reads:          s.reads.Load(),
		Resets:         s.resets.Load(),
		Errors:         s.reqErrors.Load(),
		RejectedConns:  s.rejectedConns.Load(),
		DeltaReads:     s.deltaReads.Load(),
		DeltaWireBytes: s.deltaWireBytes.Load(),
		FullWireBytes:  s.fullWireBytes.Load(),
		Fallbacks:      make(map[string]uint64, fbCount),
		Sessions:       s.sessions.len(),
	}
	for i := range s.fallbacks {
		st.Fallbacks[fallbackReasons[i]] = s.fallbacks[i].Load()
	}
	return st
}

// LockedSketch adapts a single-writer sketch into a Source: the writer
// wraps updates in Lock/Unlock and the snapshot copy briefly takes the
// same lock. Multi-writer pipelines should use engine.Engine instead,
// whose per-shard locks don't serialize the whole hot path.
type LockedSketch struct {
	mu sync.Mutex
	sk *core.Sketch
}

// NewLockedSketch wraps a sketch with the single-writer lock discipline.
func NewLockedSketch(sk *core.Sketch) *LockedSketch { return &LockedSketch{sk: sk} }

// Lock serializes the writer against snapshot copies; hold it around
// Update calls.
func (l *LockedSketch) Lock() { l.mu.Lock() }

// Unlock releases the writer lock.
func (l *LockedSketch) Unlock() { l.mu.Unlock() }

// Update records one update under the lock.
func (l *LockedSketch) Update(key []byte, inc uint64) {
	l.mu.Lock()
	l.sk.Update(key, inc)
	l.mu.Unlock()
}

// SnapshotSketch implements Source: the lock is held only for the copy.
func (l *LockedSketch) SnapshotSketch() *core.Sketch {
	l.mu.Lock()
	c := l.sk.Clone()
	l.mu.Unlock()
	return c
}

// ResetSketch implements Source.
func (l *LockedSketch) ResetSketch() {
	l.mu.Lock()
	l.sk.Reset()
	l.mu.Unlock()
}

// Close stops the listener, tears down in-flight connections, and waits
// for their handlers. A stalled peer cannot delay shutdown past one
// in-flight operation.
func (s *Server) Close() error {
	close(s.closed)
	err := s.ln.Close()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close() //nolint:errcheck // teardown
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// acceptBackoff is the capped exponential accept-failure backoff: 5ms
// doubling to 1s. Persistent failures (fd exhaustion, interface flap)
// poll at 1Hz instead of busy-spinning; a single transient error costs
// 5ms.
func acceptBackoff(consecutive int) time.Duration {
	const (
		base = 5 * time.Millisecond
		max  = time.Second
	)
	d := base << uint(consecutive-1)
	if consecutive > 8 || d > max {
		return max
	}
	return d
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	failures := 0
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Permanent: the listener is gone (Close, or the socket
			// itself died under us).
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-s.closed:
				return
			default:
			}
			// Transient (e.g. EMFILE, ECONNABORTED): back off instead of
			// busy-spinning, and stay responsive to Close.
			failures++
			s.acceptRetries.Add(1)
			s.log.Warn("accept failed, backing off",
				"err", err, "consecutive", failures, "backoff", acceptBackoff(failures))
			t := time.NewTimer(acceptBackoff(failures))
			select {
			case <-t.C:
			case <-s.closed:
				t.Stop()
				return
			}
			continue
		}
		failures = 0
		// Connection cap: accepted but over MaxConns means an immediate,
		// counted, logged close — a visible transport failure the peer's
		// retry loop handles, never a silent stall in the kernel backlog.
		// No error frame is sent: a status error is a permanent rejection
		// to the client (non-retryable ServerError), and being at capacity
		// is transient.
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejectedConns.Add(1)
			s.log.Warn("connection rejected at connection cap",
				"peer", conn.RemoteAddr().String(), "max_conns", s.cfg.MaxConns)
			conn.Close() //nolint:errcheck // rejected
			continue
		}
		s.totalConns.Add(1)
		s.activeConns.Add(1)
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				s.activeConns.Add(-1)
				<-s.sem
			}()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

// connScratch is the per-connection reuse arena for the serve path: the
// transient snapshot OpReadSketch widens registers into and the response
// buffer every handler encodes into. Both live for the connection, so a
// steady poller costs no encode-side allocations after its first request.
// The delta handler must NOT reuse the snapshot — sessions retain their
// snapshots as baselines across polls.
type connScratch struct {
	snap *Snapshot
	resp []byte
}

// serve handles one connection until EOF, error, or deadline.
func (s *Server) serve(conn net.Conn) {
	var scr connScratch
	for {
		req, err := readFrameServer(conn, s.cfg.IdleTimeout, s.cfg.ReadTimeout)
		if err != nil {
			return
		}
		if len(req) < 1 {
			s.writeError(conn, "empty request") //nolint:errcheck // connection teardown follows
			return
		}
		switch req[0] {
		case OpReadSketch:
			tr := s.cfg.Tracer.StartTrace("serve.read_sketch")
			tr.Root().Annotate("peer", conn.RemoteAddr().String())
			err := s.serveReadSketch(conn, tr, &scr)
			if err != nil {
				tr.Root().Fail(err)
			}
			tr.End()
			if err != nil {
				return
			}
		case OpReadDelta:
			tr := s.cfg.Tracer.StartTrace("serve.read_delta")
			tr.Root().Annotate("peer", conn.RemoteAddr().String())
			err := s.serveDelta(conn, req, tr, &scr)
			if err != nil {
				tr.Root().Fail(err)
			}
			tr.End()
			if err != nil {
				return
			}
		case OpResetSketch:
			tr := s.cfg.Tracer.StartTrace("serve.reset")
			tr.Root().Annotate("peer", conn.RemoteAddr().String())
			s.src.ResetSketch()
			err := s.writeFrameDeadline(conn, []byte{statusOK})
			if err != nil {
				tr.Root().Fail(err)
			}
			tr.End()
			if err != nil {
				return
			}
			s.resets.Add(1)
			s.log.Debug("window rotated", "peer", conn.RemoteAddr().String())
		default:
			s.writeError(conn, fmt.Sprintf("unknown opcode %d", req[0])) //nolint:errcheck
			return
		}
	}
}

// serveReadSketch handles one OpReadSketch request. A non-nil return
// means the connection must close.
func (s *Server) serveReadSketch(conn net.Conn, tr *tracing.Trace, scr *connScratch) error {
	// The source hands over an owned copy; encoding and the network
	// write below run with no data-plane lock held.
	ssp := tr.StartSpan("snapshot")
	sk := s.src.SnapshotSketch()
	ssp.End()
	if sk == nil {
		// An aggregator that has not completed a member poll yet has
		// nothing to serve; the client retries.
		s.writeError(conn, "no sketch available yet") //nolint:errcheck // teardown follows
		return fmt.Errorf("collect: source has no sketch yet")
	}
	esp := tr.StartSpan("encode")
	// The snapshot is transient (unlike serveDelta's, nothing retains it),
	// so it and the response buffer reuse the connection scratch.
	scr.snap = TakeSnapshotInto(scr.snap, sk)
	scr.resp = append(scr.resp[:0], statusOK)
	resp, err := scr.snap.AppendEncode(scr.resp)
	if err != nil {
		esp.Fail(err)
		esp.End()
		s.writeError(conn, err.Error()) //nolint:errcheck // teardown follows
		return err
	}
	scr.resp = resp
	dataLen := len(resp) - 1
	esp.Annotate("bytes", fmt.Sprint(dataLen))
	esp.End()
	wsp := tr.StartSpan("write")
	err = s.writeFrameDeadline(conn, resp)
	if err != nil {
		wsp.Fail(err)
	}
	wsp.End()
	if err != nil {
		return err
	}
	s.reads.Add(1)
	s.fullWireBytes.Add(uint64(dataLen))
	s.log.Debug("snapshot served",
		"peer", conn.RemoteAddr().String(), "bytes", dataLen)
	return nil
}

// writeFrameDeadline writes one frame under the server's write deadline.
func (s *Server) writeFrameDeadline(conn net.Conn, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck // enforced by the write
	return writeFrame(conn, payload)
}

func (s *Server) writeError(conn net.Conn, msg string) error {
	s.reqErrors.Add(1)
	s.log.Warn("request rejected", "peer", conn.RemoteAddr().String(), "reason", msg)
	return s.writeFrameDeadline(conn, append([]byte{statusErr}, msg...))
}

// readFrameServer reads one frame with two deadlines: idle while waiting
// for the header (between requests) and read once a frame is in flight.
func readFrameServer(conn net.Conn, idle, read time.Duration) ([]byte, error) {
	conn.SetReadDeadline(time.Now().Add(idle)) //nolint:errcheck // enforced by the read
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(read)) //nolint:errcheck
	return readFrameBody(conn, binary.BigEndian.Uint32(hdr[:]))
}

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return readFrameBody(r, binary.BigEndian.Uint32(hdr[:]))
}

// readFrameBody reads an n-byte frame payload in bounded chunks, so an
// oversized length prefix costs memory proportional to the bytes that
// actually arrive, not to the number the peer claims.
func readFrameBody(r io.Reader, n uint32) ([]byte, error) {
	if n > maxFrame {
		return nil, fmt.Errorf("collect: frame of %dB exceeds limit", n)
	}
	want := int(n)
	chunk := want
	if chunk > frameChunk {
		chunk = frameChunk
	}
	payload := make([]byte, 0, chunk)
	for len(payload) < want {
		m := want - len(payload)
		if m > frameChunk {
			m = frameChunk
		}
		off := len(payload)
		payload = append(payload, make([]byte, m)...)
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			return nil, err
		}
	}
	return payload, nil
}
